// Package repro is a from-scratch Go reproduction of "Redistribution Aware
// Two-Step Scheduling for Mixed-Parallel Applications" (Hunold, Rauber,
// Suter — IEEE Cluster 2008).
//
// The public API is the rats package: a stable facade exposing the fluent
// DAG builder, the cluster presets, the functional-options Scheduler (two
// mapping strategies plus the HCPA baseline, three allocation procedures)
// and the typed Result with Gantt, Stats, Chrome-trace and JSON output.
// The commands (cmd/dagger, cmd/ratsim) and all examples/ build on rats
// alone; new code should too.
//
// The reproduction itself lives under internal/: the RATS scheduling
// framework (internal/core), the CPA/HCPA/MCPA allocation procedures
// (internal/alloc), the 1-D block redistribution model (internal/redist),
// a SimGrid-like flow-level simulator (internal/sim, internal/simdag), the
// cluster platform model (internal/platform), the workload generators
// (internal/gen) and the evaluation harness (internal/exp,
// internal/metrics).
//
// See README.md for a tour and the quickstart. The benchmarks in
// bench_test.go regenerate a scaled-down version of every table and figure
// of the paper's evaluation; cmd/expdriver regenerates them in full.
package repro
