// Package repro is a from-scratch Go reproduction of "Redistribution Aware
// Two-Step Scheduling for Mixed-Parallel Applications" (Hunold, Rauber,
// Suter — IEEE Cluster 2008).
//
// The library lives under internal/: the RATS scheduling framework
// (internal/core), the CPA/HCPA/MCPA allocation procedures
// (internal/alloc), the 1-D block redistribution model (internal/redist),
// a SimGrid-like flow-level simulator (internal/sim, internal/simdag), the
// cluster platform model (internal/platform), the workload generators
// (internal/gen) and the evaluation harness (internal/exp, internal/metrics).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks in
// bench_test.go regenerate a scaled-down version of every table and figure
// of the paper's evaluation; cmd/expdriver regenerates them in full.
package repro
