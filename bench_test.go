package repro

// One benchmark per table and figure of the paper's evaluation (§IV),
// each running a scaled-down version of the corresponding experiment
// pipeline (use cmd/expdriver for the full 557-configuration evaluation).
// The benches both time the pipelines and assert their structural sanity,
// so `go test -bench=. -benchmem` doubles as an end-to-end smoke test.

import (
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/redist"
	"repro/internal/simdag"
)

// benchScenarios returns a small cross-class scenario sample.
func benchScenarios(stride int) []exp.Scenario {
	return exp.Subsample(exp.Scenarios(), stride)
}

// BenchmarkTableI_CommMatrix regenerates Table I: the communication matrix
// of a 10-unit redistribution from 4 to 5 processors, plus a representative
// large matrix.
func BenchmarkTableI_CommMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := redist.BlockMatrix(10, 4, 5)
		if m.At(0, 0) != 2 || m.At(3, 4) != 2 {
			b.Fatal("Table I corner values wrong")
		}
		redist.BlockMatrix(1e9, 47, 120)
	}
}

// BenchmarkTableII_Platforms builds the three Table II clusters and their
// routing structures.
func BenchmarkTableII_Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cl := range platform.PaperClusters() {
			if err := cl.Validate(); err != nil {
				b.Fatal(err)
			}
			caps := cl.LinkCapacities()
			if len(caps) != cl.NumLinks() {
				b.Fatal("capacity vector mismatch")
			}
		}
	}
}

// BenchmarkTableIII_Workloads enumerates and materializes the Table III
// scenario inventory (one graph per class).
func BenchmarkTableIII_Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scens := exp.Scenarios()
		if len(scens) != 557 {
			b.Fatalf("want 557 scenarios, got %d", len(scens))
		}
		for _, idx := range []int{0, 108, 432, 532} {
			g := scens[idx].Graph()
			if err := g.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2_RelativeMakespan runs the naive-parameter comparison
// (Figure 2) on a grillon subsample.
func BenchmarkFig2_RelativeMakespan(b *testing.B) {
	scens := benchScenarios(40)
	r := exp.NewRunner()
	cl := platform.Grillon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig2And3(r, scens, cl)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.MakespanRatios) != 2 {
			b.Fatal("want two RATS series")
		}
	}
}

// BenchmarkFig3_RelativeWork extracts the Figure 3 work ratios from the
// same pipeline.
func BenchmarkFig3_RelativeWork(b *testing.B) {
	scens := benchScenarios(40)
	r := exp.NewRunner()
	cl := platform.Grillon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig2And3(r, scens, cl)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.WorkSummary {
			if s.N == 0 {
				b.Fatal("empty work summary")
			}
		}
	}
}

// BenchmarkFig4_DeltaSweep sweeps the (mindelta, maxdelta) grid on FFT
// DAGs (Figure 4).
func BenchmarkFig4_DeltaSweep(b *testing.B) {
	scens := exp.Subsample(exp.ScenariosOf(exp.Scenarios(), exp.FFT), 20)
	r := exp.NewRunner()
	cl := platform.Grillon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := exp.RunDeltaSweep(r, scens, cl, exp.FFT)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, avg := ds.Best(); avg <= 0 {
			b.Fatal("degenerate sweep")
		}
	}
}

// BenchmarkFig5_RhoSweep sweeps minrho with and without packing on
// irregular DAGs (Figure 5).
func BenchmarkFig5_RhoSweep(b *testing.B) {
	scens := exp.Subsample(exp.ScenariosOf(exp.Scenarios(), exp.Irregular), 60)
	r := exp.NewRunner()
	cl := platform.Grillon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := exp.RunRhoSweep(r, scens, cl, exp.Irregular)
		if err != nil {
			b.Fatal(err)
		}
		if len(rs.PackingOn) != len(exp.MinRhoGrid) {
			b.Fatal("wrong sweep arity")
		}
	}
}

// BenchmarkTableIV_Tuning runs the full tuning methodology (delta grid +
// rho grid) for one application type on one cluster.
func BenchmarkTableIV_Tuning(b *testing.B) {
	scens := exp.Subsample(exp.ScenariosOf(exp.Scenarios(), exp.Strassen), 5)
	r := exp.NewRunner()
	cl := platform.Chti()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, rs, err := exp.RunTuningSweep(r, scens, cl, exp.Strassen)
		if err != nil {
			b.Fatal(err)
		}
		minD, maxD, _ := ds.Best()
		rho, _ := rs.Best()
		if maxD < minD || rho <= 0 {
			b.Fatal("nonsensical tuned parameters")
		}
	}
}

// tunedSample returns tuned-style parameters for the benchmark subsample
// (running the full Table IV sweep inside a bench would dominate it).
func tunedSample() map[exp.AppKind]exp.Tuned {
	return map[exp.AppKind]exp.Tuned{
		exp.FFT:       {MinDelta: -0.5, MaxDelta: 1, MinRho: 0.4},
		exp.Strassen:  {MinDelta: 0, MaxDelta: 1, MinRho: 0.4},
		exp.Layered:   {MinDelta: -0.25, MaxDelta: 1, MinRho: 0.2},
		exp.Irregular: {MinDelta: -0.75, MaxDelta: 1, MinRho: 0.5},
	}
}

// BenchmarkFig6_TunedMakespan runs the tuned-parameter comparison
// (Figure 6) on a grillon subsample.
func BenchmarkFig6_TunedMakespan(b *testing.B) {
	scens := benchScenarios(40)
	r := exp.NewRunner()
	cl := platform.Grillon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig6And7(r, scens, cl, tunedSample())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.MakespanSummary) != 2 {
			b.Fatal("want two tuned series")
		}
	}
}

// BenchmarkFig7_TunedWork covers the Figure 7 work metric of the same run.
func BenchmarkFig7_TunedWork(b *testing.B) {
	scens := benchScenarios(40)
	r := exp.NewRunner()
	cl := platform.Grillon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig6And7(r, scens, cl, tunedSample())
		if err != nil {
			b.Fatal(err)
		}
		if res.WorkSummary[0].N == 0 {
			b.Fatal("empty work series")
		}
	}
}

// BenchmarkTableV_Pairwise computes the pairwise better/equal/worse counts
// on one cluster subsample.
func BenchmarkTableV_Pairwise(b *testing.B) {
	scens := benchScenarios(40)
	r := exp.NewRunner()
	cl := platform.Chti()
	results, err := r.Run(scens, cl, exp.NaiveAlgos())
	if err != nil {
		b.Fatal(err)
	}
	ms := exp.Makespans(results)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pw := metrics.Pairwise(ms)
		comb := metrics.Combined(pw, 0)
		if comb.Better+comb.Equal+comb.Worse < 99.9 {
			b.Fatal("combined percentages must sum to 100")
		}
	}
}

// BenchmarkTableVI_Degradation computes degradation-from-best on the same
// result matrix.
func BenchmarkTableVI_Degradation(b *testing.B) {
	scens := benchScenarios(40)
	r := exp.NewRunner()
	cl := platform.Grelon()
	results, err := r.Run(scens, cl, exp.NaiveAlgos())
	if err != nil {
		b.Fatal(err)
	}
	ms := exp.Makespans(results)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deg := metrics.DegradationFromBest(ms)
		for _, d := range deg {
			if d.AvgOverAll < 0 {
				b.Fatal("negative degradation")
			}
		}
	}
}

// --- Hot-path benches (mapping & estimation at production scale) --------

// hotPathClusters are the cluster-size sweep of the hot-path benches: the
// paper's largest machine plus the two synthetic production-scale presets,
// and the heterogeneous variants of the first two — those keep the
// vector-aware cost and per-link estimator branches on the recorded
// trajectory next to the uniform fast paths.
func hotPathClusters() []*platform.Cluster {
	return []*platform.Cluster{
		platform.Grelon(), platform.Big512(), platform.Big1024(),
		platform.GrelonHet(), platform.Big512Het(),
	}
}

// BenchmarkRedistTime measures one contention-free redistribution estimate
// — the innermost operation of every candidate placement evaluation — for
// overlapping sender/receiver sets of growing size on each cluster scale,
// plus the zero-cost same-set fast path RATS adoption relies on.
func BenchmarkRedistTime(b *testing.B) {
	for _, cl := range hotPathClusters() {
		for _, p := range []int{8, 32, 128, 512} {
			if 2*p > cl.P {
				continue // keep the receiver overlap partial
			}
			// Receivers overlap the upper half of the senders and extend
			// past them: the general partially-overlapping case.
			senders := make([]int, p)
			receivers := make([]int, p)
			for i := 0; i < p; i++ {
				senders[i] = i
				receivers[i] = p/2 + i
			}
			b.Run(fmt.Sprintf("%s/p=%d", cl.Name, p), func(b *testing.B) {
				est := core.NewEstimator(cl)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					est.RedistTime(1e9, senders, receivers)
				}
			})
		}
		// Same set in a different rank order: the free-redistribution case
		// every RATS snap produces.
		const ss = 32
		senders := make([]int, ss)
		receivers := make([]int, ss)
		for i := 0; i < ss; i++ {
			senders[i] = i
			receivers[i] = ss - 1 - i
		}
		b.Run(fmt.Sprintf("%s/same-set", cl.Name), func(b *testing.B) {
			est := core.NewEstimator(cl)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if est.RedistTime(1e9, senders, receivers) != 0 {
					b.Fatal("same-set redistribution must be free")
				}
			}
		})
	}
}

// BenchmarkAlloc runs the allocation phase (the first step of the two-step
// algorithm) over cluster size × DAG width — the two axes that drive the
// number of refinement grants and the size of the level-repair cones. The
// incremental engine (alloc.Compute) and the preserved full-rewalk oracle
// (alloc.ComputeReference) run on identical inputs, so the per-pair ratio
// is the engine's speedup; cmd/benchtraj tracks it across PRs in
// BENCH_alloc.json. Both sides are asserted byte-identical here too —
// a diverging "speedup" would be a scheduling change, not an optimization.
func BenchmarkAlloc(b *testing.B) {
	for _, cl := range hotPathClusters() {
		for _, n := range []int{100, 400} {
			for _, width := range []float64{0.2, 0.5, 0.8} {
				g := gen.Random(gen.RandomParams{
					N: n, Width: width, Regularity: 0.8, Density: 0.5, Layered: true, Seed: 7})
				costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
				opts := alloc.DefaultOptions()
				want := alloc.Compute(g, costs, cl, opts)
				for _, engine := range []struct {
					name string
					run  func() []int
				}{
					{"incremental", func() []int { return alloc.Compute(g, costs, cl, opts) }},
					{"reference", func() []int { return alloc.ComputeReference(g, costs, cl, opts) }},
				} {
					b.Run(fmt.Sprintf("%s/n=%d/w=%.1f/%s", cl.Name, n, width, engine.name), func(b *testing.B) {
						b.ReportAllocs()
						for i := 0; i < b.N; i++ {
							got := engine.run()
							for t := range want {
								if got[t] != want[t] {
									b.Fatalf("allocation diverged at task %d", t)
								}
							}
						}
					})
				}
			}
		}
	}
}

// BenchmarkMap runs the full mapping phase (time-cost strategy, the most
// estimator-intensive) over cluster size × DAG width, the two axes that
// drive candidate-placement cost. Layered 100-task graphs keep the DAG
// shape comparable across widths. Each shape runs under both speed
// profiles: the reference pipeline keeps the bare <cluster>/w=<w> name so
// the benchtraj trajectory stays continuous with pre-profile entries, and
// the fast profile rides along under a /fast suffix. At this 100-task
// paper scale the profiles mostly coincide (redistributions sit under the
// auto-alignment cap) — the fast profile's headroom lives in the
// ablation's big-scale classes, not here.
func BenchmarkMap(b *testing.B) {
	profiles := []struct {
		suffix string
		opts   core.Options
	}{
		{"", core.DefaultNaive(core.StrategyTimeCost)},
		{"/fast", core.DefaultFast(core.StrategyTimeCost)},
	}
	for _, cl := range hotPathClusters() {
		for _, width := range []float64{0.2, 0.5, 0.8} {
			g := gen.Random(gen.RandomParams{
				N: 100, Width: width, Regularity: 0.8, Density: 0.5, Layered: true, Seed: 7})
			costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
			a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
			for _, prof := range profiles {
				opts := prof.opts
				b.Run(fmt.Sprintf("%s/w=%.1f%s", cl.Name, width, prof.suffix), func(b *testing.B) {
					b.ReportAllocs()
					var last *core.Schedule
					for i := 0; i < b.N; i++ {
						s := core.Map(g, costs, cl, a, opts)
						if len(s.Order) != g.N() {
							b.Fatal("incomplete schedule")
						}
						last = s
					}
					// Serial mapping is deterministic, so any iteration's
					// counters represent the shape; benchtraj lifts this into
					// the map_memo_hit_pct trajectory summary.
					b.ReportMetric(last.Counters.MemoHitPct(), "memo-hit-pct")
				})
			}
		}
	}
}

// BenchmarkMapParallel sweeps the mapper's evaluation-lane count on the
// production-scale presets with a larger graph than BenchmarkMap (400
// tasks: sharding pays off when candidate evaluation, not per-task
// bookkeeping, dominates). workers=1 runs the serial engine and anchors
// the speedup benchtraj derives for the other points; every lane count
// produces the identical schedule, so the sweep is a pure latency axis.
// On a single-core machine the parallel points measure coordination
// overhead, not speedup — interpret recorded numbers against the host's
// GOMAXPROCS.
func BenchmarkMapParallel(b *testing.B) {
	for _, cl := range []*platform.Cluster{platform.Big512(), platform.Big1024()} {
		g := gen.Random(gen.RandomParams{
			N: 400, Width: 0.5, Regularity: 0.8, Density: 0.5, Layered: true, Seed: 7})
		costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
		a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
		for _, workers := range []int{1, 2, 4, 8} {
			opts := core.DefaultNaive(core.StrategyTimeCost)
			opts.Workers = workers
			b.Run(fmt.Sprintf("%s/workers=%d", cl.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := core.Map(g, costs, cl, a, opts)
					if len(s.Order) != g.N() {
						b.Fatal("incomplete schedule")
					}
				}
			})
		}
	}
}

// --- Ablation benches (design choices called out in docs/ARCHITECTURE.md, "Design reconstructions") -------

// BenchmarkAblation_EdgeCostsInCP compares allocation with and without
// edge costs folded into the critical path.
func BenchmarkAblation_EdgeCostsInCP(b *testing.B) {
	benchAblation(b, func(o *exp.Runner, with bool) {
		o.AllocOptions.IncludeEdgeCosts = with
	})
}

// BenchmarkAblation_LevelCap compares allocation with and without the
// level-aware allocation cap of the HCPA reconstruction.
func BenchmarkAblation_LevelCap(b *testing.B) {
	benchAblation(b, func(o *exp.Runner, with bool) {
		o.AllocOptions.LevelCap = with
	})
}

// BenchmarkAblation_Claiming compares RATS-delta with and without the
// one-adoption-per-parent rule (docs/ARCHITECTURE.md, "Design reconstructions"). The measured makespans —
// reported as custom metrics — show why claiming is load-bearing: without
// it, siblings serialize on popular parents.
func BenchmarkAblation_Claiming(b *testing.B) {
	scens := benchScenarios(80)
	cl := platform.Grillon()
	for _, claiming := range []bool{true, false} {
		name := "claiming"
		if !claiming {
			name = "noClaiming"
		}
		b.Run(name, func(b *testing.B) {
			r := exp.NewRunner()
			spec := exp.Delta(-0.5, 0.5)
			spec.Map.NoClaiming = !claiming
			var mean float64
			for i := 0; i < b.N; i++ {
				results, err := r.Run(scens, cl, []exp.AlgoSpec{exp.Baseline(), spec})
				if err != nil {
					b.Fatal(err)
				}
				ms := exp.Makespans(results)
				mean = metrics.Summarize(metrics.Relative(ms[1], ms[0])).Mean
			}
			b.ReportMetric(mean, "ratio-vs-hcpa")
		})
	}
}

// BenchmarkAblation_DeltaEFTGuard compares the delta strategy with and
// without the finish-time guard on adoptions.
func BenchmarkAblation_DeltaEFTGuard(b *testing.B) {
	scens := benchScenarios(80)
	cl := platform.Grillon()
	for _, guard := range []bool{true, false} {
		name := "guard"
		if !guard {
			name = "noGuard"
		}
		b.Run(name, func(b *testing.B) {
			r := exp.NewRunner()
			spec := exp.Delta(-0.5, 0.5)
			spec.Map.DeltaEFTGuard = guard
			var mean float64
			for i := 0; i < b.N; i++ {
				results, err := r.Run(scens, cl, []exp.AlgoSpec{exp.Baseline(), spec})
				if err != nil {
					b.Fatal(err)
				}
				ms := exp.Makespans(results)
				mean = metrics.Summarize(metrics.Relative(ms[1], ms[0])).Mean
			}
			b.ReportMetric(mean, "ratio-vs-hcpa")
		})
	}
}

// BenchmarkAblation_PredOverlap compares the paper-faithful baseline
// (earliest-available processors only) against a stronger fixed-allocation
// mapper that also evaluates predecessor-anchored candidate sets —
// quantifying how much of RATS's gain a smarter two-step mapper could
// recover without adapting allocations.
func BenchmarkAblation_PredOverlap(b *testing.B) {
	scens := benchScenarios(80)
	cl := platform.Grillon()
	for _, overlap := range []bool{false, true} {
		name := "earliestOnly"
		if overlap {
			name = "predOverlap"
		}
		b.Run(name, func(b *testing.B) {
			r := exp.NewRunner()
			base := exp.Baseline()
			strong := exp.Baseline()
			strong.Name = "HCPA+overlap"
			strong.Map.PredOverlap = overlap
			var mean float64
			for i := 0; i < b.N; i++ {
				results, err := r.Run(scens, cl, []exp.AlgoSpec{base, strong})
				if err != nil {
					b.Fatal(err)
				}
				ms := exp.Makespans(results)
				mean = metrics.Summarize(metrics.Relative(ms[1], ms[0])).Mean
			}
			b.ReportMetric(mean, "ratio-vs-hcpa")
		})
	}
}

// BenchmarkAblation_Alignment compares the Hungarian self-communication
// maximization against greedy and disabled receiver-rank alignment.
func BenchmarkAblation_Alignment(b *testing.B) {
	scens := benchScenarios(80)
	cl := platform.Grillon()
	modes := []struct {
		name string
		mode redist.AlignMode
	}{{"hungarian", redist.AlignHungarian}, {"greedy", redist.AlignGreedy}, {"none", redist.AlignNone}}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			r := exp.NewRunner()
			spec := exp.TimeCost(0.5, true)
			spec.Map.Align = m.mode
			var mean float64
			for i := 0; i < b.N; i++ {
				results, err := r.Run(scens, cl, []exp.AlgoSpec{exp.Baseline(), spec})
				if err != nil {
					b.Fatal(err)
				}
				ms := exp.Makespans(results)
				mean = metrics.Summarize(metrics.Relative(ms[1], ms[0])).Mean
			}
			b.ReportMetric(mean, "ratio-vs-hcpa")
		})
	}
}

// BenchmarkAblation_SecondarySort compares the §III-C stable secondary
// ready-list sort (δ / gain) against plain bottom-level ordering.
func BenchmarkAblation_SecondarySort(b *testing.B) {
	scens := benchScenarios(80)
	cl := platform.Grillon()
	for _, sorted := range []bool{true, false} {
		name := "secondarySort"
		if !sorted {
			name = "blOnly"
		}
		b.Run(name, func(b *testing.B) {
			r := exp.NewRunner()
			spec := exp.Delta(-0.5, 0.5)
			spec.Map.SortSecondary = sorted
			var mean float64
			for i := 0; i < b.N; i++ {
				results, err := r.Run(scens, cl, []exp.AlgoSpec{exp.Baseline(), spec})
				if err != nil {
					b.Fatal(err)
				}
				ms := exp.Makespans(results)
				mean = metrics.Summarize(metrics.Relative(ms[1], ms[0])).Mean
			}
			b.ReportMetric(mean, "ratio-vs-hcpa")
		})
	}
}

func benchAblation(b *testing.B, set func(r *exp.Runner, with bool)) {
	b.Helper()
	scens := benchScenarios(80)
	cl := platform.Grillon()
	for _, with := range []bool{false, true} {
		name := "off"
		if with {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			r := exp.NewRunner()
			set(r, with)
			for i := 0; i < b.N; i++ {
				if _, err := r.Run(scens, cl, exp.NaiveAlgos()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// simBenchScenario locates one scenario of a big-scale inventory by its
// benchmark label.
func simBenchScenario(sc exp.Scale, kind exp.AppKind, n int) exp.Scenario {
	for _, s := range exp.ScenariosAt(sc) {
		if s.Kind != kind || s.Sample != 0 {
			continue
		}
		if kind == exp.FFT || (s.Params.N == n && s.Params.Width == 0.8 && s.Params.Density == 0.8) {
			return s
		}
	}
	panic("sim bench scenario not in inventory")
}

// simBenchState caches BenchmarkSim's per-scenario setup (graph,
// schedule, reference makespan): go test re-executes the parent benchmark
// body once per sub-benchmark, and the reference replay that anchors the
// makespan assertion is itself seconds long at these scales.
var simBenchState = map[string]*simBenchCase{}

type simBenchCase struct {
	g     *dag.Graph
	costs *moldable.Costs
	cl    *platform.Cluster
	sched *core.Schedule
	ref   float64
}

// BenchmarkSim replays fixed big512/big1024 schedules under contention on
// both fluid-network engines: the incremental flownet solver (the
// default) and the from-scratch maxmin reference it is verified against.
// The per-(cluster, scenario) ratio is the replay speedup of the
// incremental subsystem; cmd/benchtraj tracks its per-cluster geometric
// mean across PRs in BENCH_sim.json together with the allocs/op ratio of
// the steady-state recompute path. Both engines are asserted to agree on
// the makespan within the fuzz tolerance here too — a diverging
// "speedup" would be a simulation change, not an optimization.
func BenchmarkSim(b *testing.B) {
	for _, bc := range []struct {
		scale exp.Scale
		kind  exp.AppKind
		n     int
		label string
	}{
		{exp.ScaleBig512, exp.Layered, 200, "layered-n200"},
		{exp.ScaleBig512, exp.Layered, 400, "layered-n400"},
		{exp.ScaleBig512, exp.FFT, 0, "fft-k32"},
		{exp.ScaleBig1024, exp.Layered, 400, "layered-n400"},
		{exp.ScaleBig1024, exp.FFT, 0, "fft-k64"},
	} {
		bc := bc
		for _, engine := range []struct {
			name   string
			solver core.FlowSolver
		}{
			{"flownet", core.FlowSolverNet},
			{"maxmin", core.FlowSolverMaxMin},
		} {
			b.Run(fmt.Sprintf("%s/%s/%s", bc.scale.Cluster().Name, bc.label, engine.name), func(b *testing.B) {
				key := bc.scale.String() + "/" + bc.label
				st := simBenchState[key]
				if st == nil {
					cl := bc.scale.Cluster()
					scen := simBenchScenario(bc.scale, bc.kind, bc.n)
					g := scen.Graph()
					costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
					a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
					sched := core.Map(g, costs, cl, a, core.DefaultNaive(core.StrategyTimeCost))
					ref, err := simdag.ExecuteOpts(g, costs, cl, sched, simdag.Options{Solver: core.FlowSolverMaxMin})
					if err != nil {
						b.Fatal(err)
					}
					st = &simBenchCase{g: g, costs: costs, cl: cl, sched: sched, ref: ref.Makespan}
					simBenchState[key] = st
				}
				b.ResetTimer()
				b.ReportAllocs()
				var scratchPct float64
				for i := 0; i < b.N; i++ {
					res, err := simdag.ExecuteOpts(st.g, st.costs, st.cl, st.sched, simdag.Options{Solver: engine.solver})
					if err != nil {
						b.Fatal(err)
					}
					if d := res.Makespan - st.ref; d > 1e-9*st.ref || -d > 1e-9*st.ref {
						b.Fatalf("makespan diverged: %g (%s) vs %g (reference)", res.Makespan, engine.name, st.ref)
					}
					scratchPct = res.Counters.ScratchSolvePct()
				}
				// Replay is deterministic per shape; benchtraj lifts this
				// into the sim_scratch_solve_pct trajectory summary.
				b.ReportMetric(scratchPct, "scratch-solve-pct")
			})
		}
	}
}
