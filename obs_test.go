package repro

// Guards on the observability layer's two core promises: attaching an
// observer never changes a scheduling decision (the wire document stays
// byte-identical), and with observation at its default (counters only, no
// tracer) the mapping hot path stays allocation-neutral.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/rats"
)

// TestObserverByteIdenticalSchedules randomizes DAG shapes across clusters,
// strategies and mapper lane counts and requires the marshaled wire
// document of an observed run to equal the unobserved run's byte for byte.
func TestObserverByteIdenticalSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	clusters := []string{"grillon", "grelon", "grelon-het"}
	strategies := []rats.Strategy{rats.Baseline, rats.Delta, rats.TimeCost}
	workerCounts := []int{1, 2, 7}
	for i := 0; i < 6; i++ {
		d := rats.Random(rats.RandomSpec{
			N: 20 + rng.Intn(30), Width: 0.3 + 0.5*rng.Float64(),
			Density: 0.2 + 0.4*rng.Float64(), Regularity: 0.8,
			Layered: rng.Intn(2) == 0, Seed: rng.Int63(),
		})
		if err := d.Build(); err != nil {
			t.Fatal(err)
		}
		cluster := clusters[rng.Intn(len(clusters))]
		strategy := strategies[rng.Intn(len(strategies))]
		for _, workers := range workerCounts {
			name := fmt.Sprintf("case%d/%s/%v/workers=%d", i, cluster, strategy, workers)
			cl, err := rats.ClusterByName(cluster)
			if err != nil {
				t.Fatal(err)
			}
			base := []rats.Option{rats.WithCluster(cl), rats.WithStrategy(strategy)}
			if workers > 1 {
				base = append(base, rats.WithMapWorkers(workers))
			}
			plain, err := rats.New(base...).Schedule(d)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			observed, err := rats.New(append(base,
				rats.WithObserver(rats.NewTracer(256)))...).Schedule(d)
			if err != nil {
				t.Fatalf("%s observed: %v", name, err)
			}
			pb, err1 := json.Marshal(plain)
			ob, err2 := json.Marshal(observed)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: marshal: %v / %v", name, err1, err2)
			}
			if !bytes.Equal(pb, ob) {
				t.Errorf("%s: observer changed the wire document:\nplain    %s\nobserved %s",
					name, pb, ob)
			}
			// The observed run must actually have counted something.
			if observed.Counters.AllocGrants == 0 {
				t.Errorf("%s: observed run recorded no allocation grants", name)
			}
		}
	}
}

// TestMapCountersAllocationNeutral pins the always-on counter collection
// to the allocation-free mapping path: attaching a ring tracer to core.Map
// may add only bounded overhead over the tracer-free run (whose counters
// ride in fields the mapper owns anyway, costing no allocations).
func TestMapCountersAllocationNeutral(t *testing.T) {
	cl := platform.Grelon()
	g := gen.Random(gen.RandomParams{
		N: 100, Width: 0.5, Regularity: 0.8, Density: 0.5, Layered: true, Seed: 7})
	costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
	a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
	opts := core.DefaultNaive(core.StrategyTimeCost)

	plain := testing.AllocsPerRun(10, func() {
		core.Map(g, costs, cl, a, opts)
	})
	traced := opts
	traced.Tracer = obs.NewTracer(8192)
	withTracer := testing.AllocsPerRun(10, func() {
		core.Map(g, costs, cl, a, traced)
	})
	// The tracer ring is preallocated and its record path allocation-free;
	// the budget leaves headroom for the span-capture closures only.
	if withTracer > plain+8 {
		t.Errorf("tracer adds %.1f allocs/run over the %.1f baseline (budget 8)",
			withTracer-plain, plain)
	}
}
