// Tuning: reproduce the §IV-C methodology on a small scenario sample —
// sweep (mindelta, maxdelta) for the delta strategy and minrho (with and
// without packing) for the time-cost strategy on irregular workflows, then
// report the tuned triple as Table IV does.
//
// Each sweep point schedules the whole workload batch concurrently through
// Scheduler.ScheduleAll, the package's scale-oriented entry point.
//
// Run with: go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"math"

	"repro/rats"
)

// workloads returns the sample of irregular workflows. The DAGs are
// finalized by the first ScheduleAll and reused — read-only — by every
// subsequent sweep point.
func workloads() []*rats.DAG {
	var dags []*rats.DAG
	for _, n := range []int{25, 50} {
		for seed := int64(1); seed <= 3; seed++ {
			dags = append(dags, rats.Random(rats.RandomSpec{
				N: n, Width: 0.5, Density: 0.2, Regularity: 0.8, Jump: 2, Seed: seed,
			}))
		}
	}
	return dags
}

// meanRatio schedules the batch and returns the mean makespan ratio
// against the baseline vector.
func meanRatio(ctx context.Context, s *rats.Scheduler, dags []*rats.DAG, base []float64) float64 {
	results, err := s.ScheduleAll(ctx, dags)
	if err != nil {
		panic(err)
	}
	sum := 0.0
	for i, r := range results {
		sum += r.Makespan / base[i]
	}
	return sum / float64(len(results))
}

func main() {
	ctx := context.Background()
	cl := rats.Grillon()
	dags := workloads()
	fmt.Printf("tuning on %d irregular workflows on %s\n\n", len(dags), cl.Name())

	baseline, err := rats.New(rats.WithCluster(cl)).ScheduleAll(ctx, dags)
	if err != nil {
		panic(err)
	}
	base := make([]float64, len(baseline))
	for i, r := range baseline {
		base[i] = r.Makespan
	}

	// Delta sweep: every (mindelta, maxdelta) pair of the paper's grid.
	fmt.Println("delta strategy: mean makespan ratio vs HCPA")
	fmt.Printf("%10s |", "min\\max")
	maxDeltas := []float64{0.25, 0.5, 0.75, 1}
	minDeltas := []float64{-0.75, -0.5, -0.25}
	for _, maxD := range maxDeltas {
		fmt.Printf("%8.2f", maxD)
	}
	fmt.Println()
	bestD, bestMinD, bestMaxD := math.Inf(1), 0.0, 0.0
	for _, minD := range minDeltas {
		fmt.Printf("%10.2f |", minD)
		for _, maxD := range maxDeltas {
			s := rats.New(rats.WithCluster(cl), rats.WithStrategy(rats.Delta),
				rats.WithDeltaBounds(minD, maxD))
			r := meanRatio(ctx, s, dags, base)
			if r < bestD {
				bestD, bestMinD, bestMaxD = r, minD, maxD
			}
			fmt.Printf("%8.3f", r)
		}
		fmt.Println()
	}

	// Rho sweep: minrho with and without packing.
	fmt.Println("\ntime-cost strategy: mean makespan ratio vs HCPA")
	fmt.Printf("%10s |%8s %8s\n", "minrho", "pack", "no-pack")
	bestR, bestRho := math.Inf(1), 0.0
	for _, rho := range []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		fmt.Printf("%10.1f |", rho)
		for _, packing := range []bool{true, false} {
			s := rats.New(rats.WithCluster(cl), rats.WithStrategy(rats.TimeCost),
				rats.WithMinRho(rho), rats.WithPacking(packing))
			r := meanRatio(ctx, s, dags, base)
			if packing && r < bestR {
				bestR, bestRho = r, rho
			}
			fmt.Printf("%8.3f", r)
		}
		fmt.Println()
	}

	fmt.Printf("\nTable IV-style tuned triple for (irregular, %s): (%g, %g, %g)\n",
		cl.Name(), bestMinD, bestMaxD, bestRho)
}
