// Tuning: reproduce the §IV-C methodology on a small scenario sample —
// sweep (mindelta, maxdelta) for the delta strategy and minrho (with and
// without packing) for the time-cost strategy on irregular workflows, then
// report the tuned triple as Table IV does.
//
// Run with: go run ./examples/tuning   (takes a minute or two)
package main

import (
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/platform"
)

func main() {
	cl := platform.Grillon()
	// Every 12th irregular configuration keeps the example fast while
	// covering the parameter space.
	scens := exp.Subsample(exp.ScenariosOf(exp.Scenarios(), exp.Irregular), 12)
	fmt.Printf("tuning on %d irregular workflows on %s\n\n", len(scens), cl.Name)

	r := exp.NewRunner()
	ds, rs, err := exp.RunTuningSweep(r, scens, cl, exp.Irregular)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	exp.WriteDeltaSweep(os.Stdout, ds)
	fmt.Println()
	exp.WriteRhoSweep(os.Stdout, rs)

	minD, maxD, _ := ds.Best()
	rho, _ := rs.Best()
	fmt.Printf("\nTable IV-style tuned triple for (irregular, %s): (%g, %g, %g)\n",
		cl.Name, minD, maxD, rho)
}
