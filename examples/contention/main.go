// Contention: a minimal demonstration of the network substrate — the
// bounded multi-port model with max-min fair bandwidth sharing that makes
// redistribution timing non-trivial (§II-B, §IV-A).
//
// One producer fans its dataset out to a growing number of consumers. All
// flows leave through the producer's single gigabit link, so per-flow
// bandwidth shrinks as the fan-out grows while aggregate throughput stays
// pinned at link capacity; the schedulers' contention-free estimates
// cannot see this, which is exactly the gap RATS exploits by removing
// redistributions entirely.
//
// Run with: go run ./examples/contention
package main

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/redist"
	"repro/internal/sim"
)

func main() {
	cl := platform.Grillon()
	const bytes = 100e6 // one 100 MB dataset

	fmt.Println("one producer (proc 0) redistributes 100 MB to k consumers")
	fmt.Printf("link: %.0f MB/s, %v latency\n\n", cl.LinkBandwidth/1e6, 100e-6)
	fmt.Printf("%4s %14s %14s %16s\n", "k", "last flow (s)", "ideal solo (s)", "slowdown vs solo")

	for _, k := range []int{1, 2, 4, 8, 16} {
		eng := sim.New(cl.LinkCapacities())
		receivers := make([]int, k)
		for i := range receivers {
			receivers[i] = i + 1
		}
		var last float64
		for _, f := range redist.Flows(bytes, []int{0}, receivers) {
			links, lat := cl.Route(f.SrcProc, f.DstProc)
			eng.StartFlow(links, cl.EffectiveBandwidth(f.SrcProc, f.DstProc), lat, f.Bytes, func() {
				if t := eng.Now(); t > last {
					last = t
				}
			})
		}
		eng.Run()
		solo := 100e-6*2 + (bytes/float64(k))/cl.LinkBandwidth
		fmt.Printf("%4d %14.4f %14.4f %15.1fx\n", k, last, solo, last/solo)
	}

	fmt.Println("\nthe producer's private link is the shared bottleneck: k consumers")
	fmt.Println("finish together at ≈ total/β no matter how the volume is split —")
	fmt.Println("the bounded multi-port behaviour the paper's cluster model specifies.")
}
