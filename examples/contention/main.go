// Contention: a demonstration of the network substrate — the bounded
// multi-port model with max-min fair bandwidth sharing that makes
// redistribution timing non-trivial (§II-B, §IV-A).
//
// One producer fans a 100 MB dataset out to a growing number of consumers
// (a star DAG, each edge carrying an equal share). All flows leave through
// the producer's single gigabit link, so per-flow bandwidth shrinks as the
// fan-out grows while aggregate throughput stays pinned at link capacity.
// The scheduler's contention-free estimate cannot see this — which is
// exactly the gap RATS exploits by removing redistributions entirely.
//
// Run with: go run ./examples/contention
package main

import (
	"fmt"

	"repro/rats"
)

func main() {
	cl := rats.Grillon()
	const bytes = 100e6 // one 100 MB dataset

	fmt.Println("one producer redistributes 100 MB to k single-processor consumers")
	fmt.Printf("link: %.0f MB/s, %v latency\n\n", cl.LinkBandwidth()/1e6, cl.LinkLatency())
	fmt.Printf("%4s %14s %14s %16s\n", "k", "last flow (s)", "ideal solo (s)", "slowdown vs solo")

	for _, k := range []int{1, 2, 4, 8, 16} {
		d := rats.NewDAG().
			Task("src", rats.TaskSpec{Elements: bytes, OpsFactor: 64, Alpha: 0})
		ones := []int{1}
		for i := 0; i < k; i++ {
			name := fmt.Sprintf("c%d", i)
			// Each consumer receives an equal block of the dataset.
			d.Task(name, rats.TaskSpec{Elements: 4e6, OpsFactor: 64, Alpha: 0}).
				EdgeBytes("src", name, bytes/float64(k))
			ones = append(ones, 1)
		}
		s := rats.New(rats.WithCluster(cl), rats.WithFixedAllocation(ones...))
		res, err := s.Schedule(d)
		if err != nil {
			panic(err)
		}
		// Every consumer edge starts when the producer finishes; the
		// largest redistribution exposure is the last flow's completion.
		last := res.Stats().CriticalWait
		solo := 2*cl.LinkLatency() + (bytes/float64(k))/cl.LinkBandwidth()
		fmt.Printf("%4d %14.4f %14.4f %15.1fx\n", k, last, solo, last/solo)
	}

	fmt.Println("\nthe producer's private link is the shared bottleneck: k consumers")
	fmt.Println("finish together at ≈ total/β no matter how the volume is split —")
	fmt.Println("the bounded multi-port behaviour the paper's cluster model specifies.")
}
