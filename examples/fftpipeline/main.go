// FFT pipeline: schedule the Fast Fourier Transform task graph (one of the
// paper's two HPC kernels, §IV-A) on the hierarchical grelon cluster and
// compare the three algorithms across problem sizes.
//
// Every root→exit path of the FFT graph is critical, so the ready-list
// secondary sort and the per-level cost uniformity matter: this is the
// workload family where the paper tunes delta to (mindelta=-0.5,
// maxdelta=1) on grillon.
//
// Run with: go run ./examples/fftpipeline
package main

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/simdag"
)

func main() {
	cl := platform.Grelon()
	fmt.Printf("cluster %s: %d processors in %d cabinets\n\n", cl.Name, cl.P, cl.Cabinets())
	fmt.Printf("%4s %6s | %10s | %10s %8s | %10s %8s\n",
		"k", "tasks", "HCPA (s)", "delta (s)", "ratio", "t-cost (s)", "ratio")

	for _, k := range []int{2, 4, 8, 16} {
		g := gen.FFT(k, 42)
		costs := moldable.NewCosts(g, cl.SpeedGFlops)
		allocation := alloc.Compute(g, costs, cl, alloc.DefaultOptions())

		makespan := func(opts core.Options) float64 {
			sched := core.Map(g, costs, cl, allocation, opts)
			res, err := simdag.Execute(g, costs, cl, sched)
			if err != nil {
				panic(err)
			}
			return res.Makespan
		}
		base := makespan(core.Options{Strategy: core.StrategyNone, SortSecondary: true})

		// Tuned-style delta parameters for FFT (Table IV direction).
		dOpts := core.DefaultNaive(core.StrategyDelta)
		dOpts.MinDelta, dOpts.MaxDelta = -0.5, 1
		d := makespan(dOpts)

		tOpts := core.DefaultNaive(core.StrategyTimeCost)
		tOpts.MinRho = 0.4
		tc := makespan(tOpts)

		fmt.Printf("%4d %6d | %10.3f | %10.3f %8.3f | %10.3f %8.3f\n",
			k, g.RealTaskCount(), base, d, d/base, tc, tc/base)
	}
	fmt.Println("\nratios < 1 mean RATS shortened the schedule relative to HCPA.")
}
