// FFT pipeline: schedule the Fast Fourier Transform task graph (one of the
// paper's two HPC kernels, §IV-A) on the hierarchical grelon cluster and
// compare the three algorithms across problem sizes.
//
// Every root→exit path of the FFT graph is critical, so the ready-list
// secondary sort and the per-level cost uniformity matter: this is the
// workload family where the paper tunes delta to (mindelta=-0.5,
// maxdelta=1) on grillon.
//
// Run with: go run ./examples/fftpipeline
package main

import (
	"fmt"

	"repro/rats"
)

func main() {
	cl := rats.Grelon()
	fmt.Printf("cluster %s: %d processors in %d cabinets\n\n", cl.Name(), cl.Procs(), cl.Cabinets())
	fmt.Printf("%4s %6s | %10s | %10s %8s | %10s %8s\n",
		"k", "tasks", "HCPA (s)", "delta (s)", "ratio", "t-cost (s)", "ratio")

	baseline := rats.New(rats.WithCluster(cl))
	// Tuned-style delta parameters for FFT (Table IV direction).
	delta := rats.New(rats.WithCluster(cl), rats.WithStrategy(rats.Delta),
		rats.WithDeltaBounds(-0.5, 1))
	timeCost := rats.New(rats.WithCluster(cl), rats.WithStrategy(rats.TimeCost),
		rats.WithMinRho(0.4))

	for _, k := range []int{2, 4, 8, 16} {
		fft := rats.FFT(k, 42) // finalized on first schedule, reused read-only
		makespan := func(s *rats.Scheduler) float64 {
			res, err := s.Schedule(fft)
			if err != nil {
				panic(err)
			}
			return res.Makespan
		}
		base := makespan(baseline)
		d := makespan(delta)
		tc := makespan(timeCost)
		fmt.Printf("%4d %6d | %10.3f | %10.3f %8.3f | %10.3f %8.3f\n",
			k, fft.TaskCount(), base, d, d/base, tc, tc/base)
	}
	fmt.Println("\nratios < 1 mean RATS shortened the schedule relative to HCPA.")
}
