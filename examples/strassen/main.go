// Strassen workflow: schedule the 25-task Strassen matrix-multiplication
// graph (the paper's second HPC kernel) on the small chti cluster and show
// how RATS handles a join-heavy DAG: ten concurrent pre-addition tasks
// funnel into seven products and then into the result quadrants, so
// redistributions cluster at the joins.
//
// Run with: go run ./examples/strassen
package main

import (
	"fmt"

	"repro/rats"
)

func main() {
	cl := rats.Chti()
	d := rats.Strassen(7) // finalized on first schedule, reused read-only
	fmt.Printf("Strassen C = A·B task graph: %d tasks on %s (%d procs)\n\n",
		d.TaskCount(), cl.Name(), cl.Procs())

	for _, variant := range []struct {
		name     string
		strategy rats.Strategy
	}{
		{"HCPA", rats.Baseline},
		{"RATS delta", rats.Delta},
		{"RATS time-cost", rats.TimeCost},
	} {
		s := rats.New(rats.WithCluster(cl), rats.WithStrategy(variant.strategy))
		res, err := s.Schedule(d)
		if err != nil {
			panic(err)
		}
		st := res.Stats()
		fmt.Printf("%-15s makespan %7.3f s  work %7.1f proc·s  free redistributions %d/%d\n",
			variant.name, res.Makespan, res.TotalWork, st.FreeEdges, st.FreeEdges+st.PaidEdges)
	}

	fmt.Println("\nGantt of the time-cost schedule:")
	res, err := rats.New(rats.WithCluster(cl), rats.WithStrategy(rats.TimeCost)).
		Schedule(d)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Gantt(90))
}
