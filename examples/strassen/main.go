// Strassen workflow: schedule the 25-task Strassen matrix-multiplication
// graph (the paper's second HPC kernel) on the small chti cluster and show
// how RATS handles a join-heavy DAG: ten concurrent pre-addition tasks
// funnel into seven products and then into the result quadrants, so
// redistributions cluster at the joins.
//
// Run with: go run ./examples/strassen
package main

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/simdag"
)

func main() {
	cl := platform.Chti()
	g := gen.Strassen(7)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	allocation := alloc.Compute(g, costs, cl, alloc.DefaultOptions())

	fmt.Printf("Strassen C = A·B task graph: %d tasks on %s (%d procs)\n\n",
		g.RealTaskCount(), cl.Name, cl.P)

	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"HCPA", core.Options{Strategy: core.StrategyNone, SortSecondary: true}},
		{"RATS delta", core.DefaultNaive(core.StrategyDelta)},
		{"RATS time-cost", core.DefaultNaive(core.StrategyTimeCost)},
	} {
		sched := core.Map(g, costs, cl, allocation, variant.opts)
		res, err := simdag.Execute(g, costs, cl, sched)
		if err != nil {
			panic(err)
		}
		// Count the redistributions that became free (identity).
		freeEdges, paidEdges := 0, 0
		for _, e := range g.Edges {
			if g.Tasks[e.From].Virtual || g.Tasks[e.To].Virtual {
				continue
			}
			if res.EdgeFinish[e.ID] <= res.Finish[e.From]+1e-12 {
				freeEdges++
			} else {
				paidEdges++
			}
		}
		fmt.Printf("%-15s makespan %7.3f s  work %7.1f proc·s  free redistributions %d/%d\n",
			variant.name, res.Makespan, sched.TotalWork, freeEdges, freeEdges+paidEdges)
	}

	fmt.Println("\nGantt of the time-cost schedule:")
	sched := core.Map(g, costs, cl, allocation, core.DefaultNaive(core.StrategyTimeCost))
	res, err := simdag.Execute(g, costs, cl, sched)
	if err != nil {
		panic(err)
	}
	fmt.Print(simdag.Gantt(g, sched, res, 90))
}
