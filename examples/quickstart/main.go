// Quickstart: build the paper's Figure 1 situation by hand — three
// moldable tasks whose decoupled allocation forces a redistribution — and
// watch RATS remove it by packing/stretching during mapping.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/rats"
)

func main() {
	// A 3-task chain T1 → T2 → T3 working on 40e6-element datasets. The
	// DAG is finalized by the first Schedule and reusable across
	// schedulers afterwards.
	pipeline := rats.NewDAG()
	for _, name := range []string{"T1", "T2", "T3"} {
		pipeline.Task(name, rats.TaskSpec{
			Elements:  40e6, // dataset elements
			OpsFactor: 200,  // ops = OpsFactor·Elements
			Alpha:     0.05, // non-parallelizable fraction
		})
	}
	pipeline.Edge("T1", "T2").Edge("T2", "T3")

	for _, variant := range []struct {
		name     string
		strategy rats.Strategy
	}{
		{"HCPA baseline", rats.Baseline},
		{"RATS delta", rats.Delta},
		{"RATS time-cost", rats.TimeCost},
	} {
		// A first-step allocation with close-but-different sizes, exactly
		// the situation §I calls out: "subsequent tasks may have close but
		// different allocations that may imply a complex data
		// redistribution that could be avoided".
		s := rats.New(
			rats.WithCluster(rats.Grillon()),
			rats.WithStrategy(variant.strategy),
			rats.WithFixedAllocation(8, 10, 9),
		)
		res, err := s.Schedule(pipeline)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-15s allocations %v  makespan %.3f s  wire traffic %.1f MB\n",
			variant.name, res.Allocations(), res.Makespan, res.RemoteBytes/1e6)
		fmt.Println(res.Gantt(72))
	}
	fmt.Println("RATS stretches T3 onto T2's exact processor set, so the 1-D block")
	fmt.Println("redistribution between them becomes the identity and the wire")
	fmt.Println("traffic halves — a shorter makespan at equal resource use.")
}
