// Quickstart: build the paper's Figure 1 situation by hand — three
// moldable tasks whose decoupled allocation forces a redistribution — and
// watch RATS remove it by packing/stretching during mapping.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/simdag"
)

func main() {
	// A 3-task pipeline T1 → T2 → T3 working on 40e6-element datasets.
	g := dag.NewGraph(3, 2)
	for i := 0; i < 3; i++ {
		g.AddTask(dag.Task{
			Name:  fmt.Sprintf("T%d", i+1),
			M:     40e6, // dataset elements
			A:     200,  // ops = A·M
			Alpha: 0.05, // non-parallelizable fraction
		})
	}
	g.AddEdge(0, 1, g.Tasks[0].Bytes())
	g.AddEdge(1, 2, g.Tasks[1].Bytes())
	if err := g.Validate(); err != nil {
		panic(err)
	}

	cl := platform.Grillon()
	costs := moldable.NewCosts(g, cl.SpeedGFlops)

	// A first-step allocation with close-but-different sizes, exactly the
	// situation §I calls out: "subsequent tasks may have close but
	// different allocations that may imply a complex data redistribution
	// that could be avoided".
	allocation := []int{8, 10, 9}

	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"HCPA baseline", core.Options{Strategy: core.StrategyNone, SortSecondary: true}},
		{"RATS delta", core.DefaultNaive(core.StrategyDelta)},
		{"RATS time-cost", core.DefaultNaive(core.StrategyTimeCost)},
	} {
		sched := core.Map(g, costs, cl, allocation, variant.opts)
		res, err := simdag.Execute(g, costs, cl, sched)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-15s allocations %v  makespan %.3f s  wire traffic %.1f MB\n",
			variant.name, sched.Alloc, res.Makespan, res.RemoteBytes/1e6)
		fmt.Println(simdag.Gantt(g, sched, res, 72))
	}
	fmt.Println("RATS adapts T2/T3 onto their predecessor's processor set, so the")
	fmt.Println("1-D block redistribution between them becomes the identity and the")
	fmt.Println("wire traffic drops to zero — shorter makespan at equal resource use.")
}
