// Package rats is the public API of the repro module: a stable facade over
// the internal reproduction of "Redistribution Aware Two-Step Scheduling
// for Mixed-Parallel Applications" (Hunold, Rauber, Suter — IEEE Cluster
// 2008).
//
// The package exposes the full two-step pipeline — processor allocation
// (CPA / HCPA / MCPA), redistribution-aware mapping (baseline, delta,
// time-cost) and contention-aware simulated execution — behind three
// concepts:
//
//   - a DAG of moldable tasks, built fluently (NewDAG().Task(...).Edge(...))
//     or produced by the paper's workload generators (FFT, Strassen, Random);
//   - a Cluster, one of the paper's presets (Chti, Grillon, Grelon), a
//     production-scale preset (Big512, Big1024) or a custom description
//     (NewCluster);
//   - a Scheduler assembled from functional options (New(WithStrategy(Delta),
//     WithAllocator(HCPA), WithDeltaBounds(-0.5, 0.5), ...)) that turns a DAG
//     into a typed Result: per-task placements, the simulated makespan, wire
//     traffic, a Gantt rendering, post-mortem Stats and JSON marshalling.
//
// # Quickstart
//
//	d := rats.NewDAG().
//		Task("T1", rats.TaskSpec{Elements: 40e6, OpsFactor: 200, Alpha: 0.05}).
//		Task("T2", rats.TaskSpec{Elements: 40e6, OpsFactor: 200, Alpha: 0.05}).
//		Task("T3", rats.TaskSpec{Elements: 40e6, OpsFactor: 200, Alpha: 0.05}).
//		Edge("T1", "T2").
//		Edge("T2", "T3")
//
//	s := rats.New(rats.WithCluster(rats.Grillon()), rats.WithStrategy(rats.Delta))
//	res, err := s.Schedule(d)
//	if err != nil { ... }
//	fmt.Println(res.Makespan, res.RemoteBytes)
//
// See README.md for the full worked example and its output.
//
// # Concurrency
//
// The concurrency contract has three rules:
//
//   - A Scheduler is immutable after New and safe for concurrent use by
//     multiple goroutines; Schedule and ScheduleAll may be called
//     concurrently on the same Scheduler.
//   - A DAG is a single-goroutine builder until it is finalized — by an
//     explicit Build or by its first Schedule/ScheduleAll — and immutable
//     (therefore safe for concurrent use, including appearing several times
//     in one batch) afterwards. Builder methods on a finalized DAG panic.
//   - ScheduleAll(ctx, dags) finalizes every DAG up front on the calling
//     goroutine, then fans the batch out over a bounded worker pool
//     (WithWorkers, default GOMAXPROCS). Results land at the index of their
//     input DAG; the first error cancels the remaining work.
//
// ScheduleAll is the scale-oriented entry point: scheduling is CPU-bound
// and allocation-free of shared state, so throughput scales with cores
// until the batch is exhausted. The contract is exercised under the race
// detector in the package tests.
package rats
