package rats

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/dag"
	"repro/internal/gen"
)

// TaskSpec describes one moldable task under the paper's §II-A cost model:
// the task operates on a dataset of Elements double-precision values,
// performs OpsFactor·Elements floating point operations, and parallelizes
// under Amdahl's law with serial fraction Alpha.
type TaskSpec struct {
	Elements  float64 // dataset size m, in double-precision elements
	OpsFactor float64 // a: total flop = a·m (the paper draws a in [64, 512])
	Alpha     float64 // non-parallelizable fraction, in [0, 1)
}

// DAG is a mixed-parallel application graph: a fluent single-goroutine
// builder until finalized by Build (or a first Schedule/ScheduleAll), and
// an immutable, concurrency-safe workload afterwards. Builder methods
// record the first construction error and return it from Build; calling a
// builder method on a finalized DAG panics.
type DAG struct {
	// Name labels the workload in results and reports. Generators set it;
	// it may be overwritten freely before the DAG is finalized.
	Name string

	g      *dag.Graph
	byName map[string]int

	err      error       // first builder error, surfaced by Build
	frozen   atomic.Bool // set once finalization starts
	once     sync.Once
	buildErr error // result of finalization
}

// NewDAG returns an empty DAG builder.
func NewDAG() *DAG {
	return &DAG{g: dag.NewGraph(8, 8), byName: map[string]int{}}
}

// wrap adopts a generator-produced (already normalized) graph.
func wrap(name string, g *dag.Graph) *DAG {
	d := &DAG{Name: name, g: g, byName: make(map[string]int, g.N())}
	for i := range g.Tasks {
		d.byName[g.Tasks[i].Name] = i
	}
	return d
}

// fail records the first builder error.
func (d *DAG) fail(format string, args ...any) *DAG {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
	return d
}

func (d *DAG) mutable(op string) {
	if d.frozen.Load() {
		panic("rats: " + op + " called on a finalized DAG")
	}
}

// Task appends a moldable task. Names must be unique within the DAG;
// Elements and OpsFactor must be positive and Alpha in [0, 1).
func (d *DAG) Task(name string, spec TaskSpec) *DAG {
	d.mutable("Task")
	if name == "" {
		return d.fail("rats: task name must be non-empty")
	}
	if _, dup := d.byName[name]; dup {
		return d.fail("rats: duplicate task name %q", name)
	}
	if spec.Elements <= 0 || spec.OpsFactor <= 0 {
		return d.fail("rats: task %q needs positive Elements and OpsFactor (got %g, %g)",
			name, spec.Elements, spec.OpsFactor)
	}
	if spec.Alpha < 0 || spec.Alpha >= 1 {
		return d.fail("rats: task %q has Alpha %g outside [0, 1)", name, spec.Alpha)
	}
	id := d.g.AddTask(dag.Task{
		Name:  name,
		M:     spec.Elements,
		A:     spec.OpsFactor,
		Alpha: spec.Alpha,
	})
	d.byName[name] = id
	return d
}

// Edge adds a data dependence carrying the producer's full dataset (the
// paper's model: the communicated volume equals the dataset element count).
func (d *DAG) Edge(from, to string) *DAG {
	d.mutable("Edge")
	src, ok := d.byName[from]
	if !ok {
		return d.fail("rats: edge source %q is not a task", from)
	}
	return d.EdgeBytes(from, to, d.g.Tasks[src].Bytes())
}

// EdgeBytes adds a data dependence with an explicit payload in bytes,
// overriding the default full-dataset volume.
func (d *DAG) EdgeBytes(from, to string, bytes float64) *DAG {
	d.mutable("EdgeBytes")
	src, ok := d.byName[from]
	if !ok {
		return d.fail("rats: edge source %q is not a task", from)
	}
	dst, ok := d.byName[to]
	if !ok {
		return d.fail("rats: edge target %q is not a task", to)
	}
	if bytes < 0 {
		return d.fail("rats: edge %s→%s has negative payload %g", from, to, bytes)
	}
	d.g.AddEdge(src, dst, bytes)
	return d
}

// Err returns the first builder error without finalizing the DAG.
func (d *DAG) Err() error { return d.err }

// Build finalizes the DAG: it normalizes the graph to a single entry and
// exit (adding zero-cost virtual connectors when needed), validates its
// structure, and freezes it. Build is idempotent; the first call decides
// the outcome. Schedule and ScheduleAll call it implicitly.
func (d *DAG) Build() error {
	d.once.Do(func() {
		d.frozen.Store(true)
		if d.err != nil {
			d.buildErr = d.err
			return
		}
		if d.g.N() == 0 {
			d.buildErr = dag.ErrEmpty
			return
		}
		d.g.Normalize()
		// Validate also warms the graph's topological-order memo, so every
		// traversal after this point is a pure read — the property the
		// ScheduleAll worker pool relies on.
		d.buildErr = d.g.Validate()
	})
	return d.buildErr
}

// TaskCount returns the number of real (non-virtual) tasks.
func (d *DAG) TaskCount() int { return d.g.RealTaskCount() }

// EdgeCount returns the number of dependence edges, including the
// zero-byte edges of virtual connectors added by normalization.
func (d *DAG) EdgeCount() int { return len(d.g.Edges) }

// MaxWidth returns the maximum task parallelism: the size of the largest
// precedence level, counting real tasks only.
func (d *DAG) MaxWidth() int { return d.g.MaxWidth() }

// WriteDOT renders the graph in Graphviz DOT format.
func (d *DAG) WriteDOT(w io.Writer) error { return d.g.WriteDOT(w) }

// MarshalJSON implements json.Marshaler with the task/edge schema shared
// with cmd/dagger.
func (d *DAG) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Name  string     `json:"name,omitempty"`
		Graph *dag.Graph `json:"graph"`
	}{Name: d.Name, Graph: d.g})
}

// UnmarshalJSON implements json.Unmarshaler. The decoded DAG is a fresh
// builder: not yet finalized, with adjacency rebuilt from the edge list.
// Like every builder method, it must not run against a finalized DAG —
// that would mutate a graph concurrent schedulers may be reading — but
// being an error-returning interface it reports the misuse instead of
// panicking.
func (d *DAG) UnmarshalJSON(data []byte) error {
	if d.frozen.Load() {
		return fmt.Errorf("rats: UnmarshalJSON called on a finalized DAG")
	}
	var raw struct {
		Name  string     `json:"name"`
		Graph *dag.Graph `json:"graph"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Graph == nil {
		return fmt.Errorf("rats: DAG JSON misses the graph field")
	}
	*d = DAG{Name: raw.Name, g: raw.Graph, byName: make(map[string]int, raw.Graph.N())}
	for i := range raw.Graph.Tasks {
		d.byName[raw.Graph.Tasks[i].Name] = i
	}
	return nil
}

// RandomSpec parameterizes the daggen-style random workload generator of
// the paper's evaluation (§IV-A, Table III).
type RandomSpec struct {
	N          int     // number of computation tasks
	Width      float64 // maximum parallelism, in (0, 1]
	Regularity float64 // uniformity of level sizes, in [0, 1]
	Density    float64 // edge probability between consecutive levels, in (0, 1]
	Jump       int     // jump-edge length; ≤ 1 means no jump edges
	Layered    bool    // layered graphs share one cost draw per level
	Seed       int64   // deterministic generator seed
}

// Random generates a random mixed-parallel application DAG. An invalid
// spec yields a DAG whose Build (and scheduling) fails with the cause.
func Random(spec RandomSpec) *DAG {
	kind := "irregular"
	if spec.Layered {
		kind = "layered"
	}
	name := fmt.Sprintf("%s(n=%d,seed=%d)", kind, spec.N, spec.Seed)
	if spec.N < 1 {
		d := NewDAG()
		d.Name = name
		return d.fail("rats: RandomSpec.N must be ≥ 1, got %d", spec.N)
	}
	return wrap(name, gen.Random(gen.RandomParams{
		N:          spec.N,
		Width:      spec.Width,
		Regularity: spec.Regularity,
		Density:    spec.Density,
		Jump:       spec.Jump,
		Layered:    spec.Layered,
		Seed:       spec.Seed,
	}))
}

// FFT generates the Fast Fourier Transform task graph over k data points
// (k must be a power of two ≥ 2), one of the paper's two HPC kernels.
func FFT(k int, seed int64) *DAG {
	name := fmt.Sprintf("fft(k=%d,seed=%d)", k, seed)
	if k < 2 || k&(k-1) != 0 {
		d := NewDAG()
		d.Name = name
		return d.fail("rats: FFT requires a power-of-two k ≥ 2, got %d", k)
	}
	return wrap(name, gen.FFT(k, seed))
}

// Strassen generates the 25-task Strassen matrix-multiplication graph, the
// paper's second HPC kernel.
func Strassen(seed int64) *DAG {
	return wrap(fmt.Sprintf("strassen(seed=%d)", seed), gen.Strassen(seed))
}
