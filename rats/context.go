package rats

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
)

// Context is a reusable scheduler context: it owns the mapping engine's
// cluster-sized scratch, the redistribution estimator with its memo and
// the receiver-alignment engine for one cluster, so a stream of Schedule
// calls amortizes the per-run setup a fresh scheduler pays. Contexts are
// the unit a scheduling service pools.
//
// A Context is bound to a cluster and is NOT safe for concurrent use:
// serialize ScheduleIn calls on one context (pool several for
// parallelism). Schedules produced through a context are byte-identical
// to the per-request path — the context retains only scratch, never
// anything a Result references.
type Context struct {
	cl *Cluster
	mc *core.MapContext
}

// NewContext returns a scheduler context bound to the given cluster.
func NewContext(c *Cluster) (*Context, error) {
	if c == nil {
		return nil, errors.New("rats: NewContext(nil cluster)")
	}
	return &Context{cl: c, mc: core.NewMapContext(c.pc)}, nil
}

// Cluster returns the cluster the context is bound to.
func (c *Context) Cluster() *Cluster { return c.cl }

// compatible reports whether the context can serve a scheduler targeting
// cluster pc: the platform parameters must be structurally identical
// (identical parameters ⇒ identical estimates ⇒ identical schedules).
func (c *Context) compatible(other *Cluster) bool {
	return c.cl.pc == other.pc || platform.Equal(c.cl.pc, other.pc)
}

// ScheduleIn is Schedule running the mapping phase in the reusable
// context instead of building per-run state from scratch. The context's
// cluster must match the scheduler's (structurally — two Grelon() values
// are compatible). The result is byte-identical to Schedule's.
func (s *Scheduler) ScheduleIn(sc *Context, d *DAG) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if sc == nil {
		return nil, errors.New("rats: ScheduleIn(nil context)")
	}
	if !sc.compatible(s.cluster) {
		return nil, fmt.Errorf("rats: context bound to cluster %s cannot serve scheduler targeting %s",
			sc.cl.Name(), s.cluster.Name())
	}
	if d == nil {
		return nil, errors.New("rats: ScheduleIn(nil DAG)")
	}
	if err := d.Build(); err != nil {
		return nil, err
	}
	return s.run(d, sc)
}
