package rats

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// FlowSolver selects the fluid-network rate solver used by the
// contention-aware replay that measures every schedule.
type FlowSolver int

const (
	// FlowNet is the incremental solver (default): flows sharing a route
	// and rate cap aggregate into weighted super-flows, and the max-min
	// bottleneck structure is repaired across population changes instead
	// of re-solved from scratch. Identical rates, far cheaper on the
	// 512/1024-node presets.
	FlowNet FlowSolver = iota
	// MaxMinReference re-solves the max-min rates from scratch on every
	// flow arrival and completion. It is the oracle FlowNet is verified
	// against; use it to cross-check results or bisect solver issues.
	MaxMinReference
)

// String implements fmt.Stringer; the returned name round-trips through
// ParseFlowSolver. Out-of-range values render as "FlowSolver(n)".
func (f FlowSolver) String() string {
	switch f {
	case FlowNet:
		return "flownet"
	case MaxMinReference:
		return "maxmin"
	}
	return fmt.Sprintf("FlowSolver(%d)", int(f))
}

// ParseFlowSolver converts a solver name (case-insensitive: "flownet",
// "maxmin", plus the aliases "max-min" and "reference") into a FlowSolver.
func ParseFlowSolver(name string) (FlowSolver, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "flownet":
		return FlowNet, nil
	case "maxmin", "max-min", "reference":
		return MaxMinReference, nil
	}
	return 0, fmt.Errorf("rats: unknown flow solver %q (want flownet or maxmin)", name)
}

// coreFlowSolver maps the public FlowSolver onto the internal enum.
func (f FlowSolver) coreFlowSolver() (core.FlowSolver, error) {
	switch f {
	case FlowNet:
		return core.FlowSolverNet, nil
	case MaxMinReference:
		return core.FlowSolverMaxMin, nil
	}
	return 0, fmt.Errorf("rats: invalid flow solver %v", f)
}

// WithFlowSolver selects the replay's rate solver (default: FlowNet).
func WithFlowSolver(f FlowSolver) Option {
	return func(s *Scheduler) { s.flowSolver = f }
}

// FlowSolver returns the configured replay solver.
func (s *Scheduler) FlowSolver() FlowSolver { return s.flowSolver }
