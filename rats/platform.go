package rats

import (
	"fmt"

	"repro/internal/platform"
)

// Cluster is an immutable description of a homogeneous commodity cluster
// (§II-B of the paper): P identical single-core nodes with private
// full-duplex gigabit links, optionally grouped into cabinets behind a
// hierarchical switch. Clusters are safe for concurrent use.
type Cluster struct {
	pc *platform.Cluster
}

// Chti returns the paper's chti cluster (Lille): 20 nodes at 4.311
// GFlop/s behind a single gigabit switch.
func Chti() *Cluster { return &Cluster{pc: platform.Chti()} }

// Grillon returns the paper's grillon cluster (Nancy): 47 nodes at 3.379
// GFlop/s behind a single gigabit switch.
func Grillon() *Cluster { return &Cluster{pc: platform.Grillon()} }

// Grelon returns the paper's grelon cluster (Nancy): 120 nodes at 3.185
// GFlop/s in five 24-node cabinets behind a hierarchical switch.
func Grelon() *Cluster { return &Cluster{pc: platform.Grelon()} }

// Big512 returns a synthetic production-scale cluster: 512 nodes at 8
// GFlop/s in sixteen 32-node cabinets behind a 40 Gb/s backbone. It
// extrapolates the paper's hierarchical layout to the scale where the
// time-cost strategy's estimates are most accurate (§IV-D).
func Big512() *Cluster { return &Cluster{pc: platform.Big512()} }

// Big1024 returns a synthetic 1024-node cluster: thirty-two 32-node
// cabinets with the same links as Big512.
func Big1024() *Cluster { return &Cluster{pc: platform.Big1024()} }

// GrelonHet returns the heterogeneous grelon variant: the last two of the
// five cabinets hold half-speed nodes behind gigabit uplinks — a 2-tier
// speed/bandwidth mix at paper scale.
func GrelonHet() *Cluster { return &Cluster{pc: platform.GrelonHet()} }

// Big512Het returns the heterogeneous big512 variant: the second half of
// the cabinets holds half-speed nodes and the last four reach the
// backbone over 10 Gb/s uplinks instead of 40 Gb/s.
func Big512Het() *Cluster { return &Cluster{pc: platform.Big512Het()} }

// ClusterByName returns the preset cluster with the given name (one of
// ClusterNames).
func ClusterByName(name string) (*Cluster, error) {
	pc, err := platform.ByName(name)
	if err != nil {
		return nil, err
	}
	return &Cluster{pc: pc}, nil
}

// ClusterNames returns the preset names ClusterByName accepts, in display
// order — for CLI flag help and error messages.
func ClusterNames() []string { return platform.Names() }

// ClusterSpec describes a custom cluster. Zero-valued link fields default
// to the paper's gigabit-Ethernet figures; a zero WMax defaults to the 4
// MiB TCP window used throughout the reproduction.
type ClusterSpec struct {
	Name        string
	Procs       int     // number of single-core nodes
	SpeedGFlops float64 // per-node compute speed

	LinkLatency   float64 // private link latency, seconds
	LinkBandwidth float64 // private link bandwidth, bytes/second

	// CabinetSize > 0 selects the hierarchical topology: nodes are grouped
	// into cabinets of this size, connected by uplinks to a top switch.
	CabinetSize     int
	UplinkLatency   float64
	UplinkBandwidth float64

	WMax float64 // TCP window bound for the empirical per-flow bandwidth

	// NodeSpeeds, when non-empty, gives every node its own compute speed
	// in GFlop/s and must have exactly Procs entries, each positive and
	// finite. SpeedGFlops may then be left zero (it defaults to the
	// slowest entry); when set it still provides the uniform baseline the
	// vector deviates from.
	NodeSpeeds []float64

	// NodeBandwidths, when non-empty, gives node i's private link its own
	// bandwidth in bytes/second (applied to both the up and the down
	// direction); exactly Procs entries, each positive and finite.
	NodeBandwidths []float64

	// UplinkBandwidths, when non-empty, gives cabinet k's uplink its own
	// bandwidth in bytes/second (both directions); exactly one entry per
	// cabinet, each positive and finite. Requires CabinetSize > 0.
	UplinkBandwidths []float64
}

// NewCluster builds and validates a custom cluster.
func NewCluster(spec ClusterSpec) (*Cluster, error) {
	pc := &platform.Cluster{
		Name:            spec.Name,
		P:               spec.Procs,
		SpeedGFlops:     spec.SpeedGFlops,
		LinkLatency:     spec.LinkLatency,
		LinkBandwidth:   spec.LinkBandwidth,
		CabinetSize:     spec.CabinetSize,
		UplinkLatency:   spec.UplinkLatency,
		UplinkBandwidth: spec.UplinkBandwidth,
		WMax:            spec.WMax,
	}
	if pc.Name == "" {
		pc.Name = fmt.Sprintf("custom-%d", spec.Procs)
	}
	if pc.LinkBandwidth == 0 {
		pc.LinkBandwidth = platform.GigabitBandwidth
	}
	if pc.LinkLatency == 0 {
		pc.LinkLatency = platform.GigabitLatency
	}
	if pc.CabinetSize > 0 {
		if pc.UplinkBandwidth == 0 {
			pc.UplinkBandwidth = 10 * platform.GigabitBandwidth
		}
		if pc.UplinkLatency == 0 {
			pc.UplinkLatency = platform.GigabitLatency
		}
	}
	if pc.WMax == 0 {
		pc.WMax = platform.DefaultWMax
	}
	if len(spec.NodeSpeeds) > 0 {
		pc.NodeSpeeds = append([]float64(nil), spec.NodeSpeeds...)
		if pc.SpeedGFlops == 0 && len(pc.NodeSpeeds) > 0 {
			// The uniform baseline is unused once a full vector is present;
			// seed it from the vector so validation of the scalar field
			// doesn't reject a spec that only provides per-node speeds.
			pc.SpeedGFlops = pc.NodeSpeeds[0]
		}
	}
	if len(spec.NodeBandwidths) > 0 {
		if len(spec.NodeBandwidths) != pc.P {
			return nil, fmt.Errorf("rats: NodeBandwidths has %d entries, want Procs = %d", len(spec.NodeBandwidths), pc.P)
		}
		pc.LinkBandwidths = make(map[platform.LinkID]float64, 2*pc.P)
		for i, bw := range spec.NodeBandwidths {
			pc.LinkBandwidths[pc.NodeUpLink(i)] = bw
			pc.LinkBandwidths[pc.NodeDownLink(i)] = bw
		}
	}
	if len(spec.UplinkBandwidths) > 0 {
		if !pc.Hierarchical() {
			return nil, fmt.Errorf("rats: UplinkBandwidths given but CabinetSize is 0 (flat clusters have no uplinks)")
		}
		if len(spec.UplinkBandwidths) != pc.Cabinets() {
			return nil, fmt.Errorf("rats: UplinkBandwidths has %d entries, want one per cabinet = %d", len(spec.UplinkBandwidths), pc.Cabinets())
		}
		if pc.LinkBandwidths == nil {
			pc.LinkBandwidths = make(map[platform.LinkID]float64, 2*pc.Cabinets())
		}
		for cab, bw := range spec.UplinkBandwidths {
			pc.LinkBandwidths[pc.CabUpLink(cab)] = bw
			pc.LinkBandwidths[pc.CabDownLink(cab)] = bw
		}
	}
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{pc: pc}, nil
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.pc.Name }

// Procs returns the number of processors (nodes).
func (c *Cluster) Procs() int { return c.pc.P }

// SpeedGFlops returns the per-node compute speed in GFlop/s.
func (c *Cluster) SpeedGFlops() float64 { return c.pc.SpeedGFlops }

// Hierarchical reports whether the cluster uses the cabinet topology.
func (c *Cluster) Hierarchical() bool { return c.pc.Hierarchical() }

// Cabinets returns the number of cabinets (1 for flat clusters).
func (c *Cluster) Cabinets() int { return c.pc.Cabinets() }

// LinkBandwidth returns the private per-node link bandwidth in
// bytes/second.
func (c *Cluster) LinkBandwidth() float64 { return c.pc.LinkBandwidth }

// LinkLatency returns the private per-node link latency in seconds.
func (c *Cluster) LinkLatency() float64 { return c.pc.LinkLatency }

// Hetero reports whether the cluster deviates from uniformity — a
// per-node speed vector and/or per-link bandwidth overrides.
func (c *Cluster) Hetero() bool { return c.pc.Hetero() }

// NodeSpeed returns the compute speed of one node in GFlop/s
// (SpeedGFlops on uniform clusters).
func (c *Cluster) NodeSpeed(node int) float64 { return c.pc.NodeSpeed(node) }
