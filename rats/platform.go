package rats

import (
	"fmt"

	"repro/internal/platform"
)

// Cluster is an immutable description of a homogeneous commodity cluster
// (§II-B of the paper): P identical single-core nodes with private
// full-duplex gigabit links, optionally grouped into cabinets behind a
// hierarchical switch. Clusters are safe for concurrent use.
type Cluster struct {
	pc *platform.Cluster
}

// Chti returns the paper's chti cluster (Lille): 20 nodes at 4.311
// GFlop/s behind a single gigabit switch.
func Chti() *Cluster { return &Cluster{pc: platform.Chti()} }

// Grillon returns the paper's grillon cluster (Nancy): 47 nodes at 3.379
// GFlop/s behind a single gigabit switch.
func Grillon() *Cluster { return &Cluster{pc: platform.Grillon()} }

// Grelon returns the paper's grelon cluster (Nancy): 120 nodes at 3.185
// GFlop/s in five 24-node cabinets behind a hierarchical switch.
func Grelon() *Cluster { return &Cluster{pc: platform.Grelon()} }

// Big512 returns a synthetic production-scale cluster: 512 nodes at 8
// GFlop/s in sixteen 32-node cabinets behind a 40 Gb/s backbone. It
// extrapolates the paper's hierarchical layout to the scale where the
// time-cost strategy's estimates are most accurate (§IV-D).
func Big512() *Cluster { return &Cluster{pc: platform.Big512()} }

// Big1024 returns a synthetic 1024-node cluster: thirty-two 32-node
// cabinets with the same links as Big512.
func Big1024() *Cluster { return &Cluster{pc: platform.Big1024()} }

// ClusterByName returns the preset cluster with the given name ("chti",
// "grillon", "grelon", "big512" or "big1024").
func ClusterByName(name string) (*Cluster, error) {
	pc, err := platform.ByName(name)
	if err != nil {
		return nil, err
	}
	return &Cluster{pc: pc}, nil
}

// ClusterSpec describes a custom cluster. Zero-valued link fields default
// to the paper's gigabit-Ethernet figures; a zero WMax defaults to the 4
// MiB TCP window used throughout the reproduction.
type ClusterSpec struct {
	Name        string
	Procs       int     // number of single-core nodes
	SpeedGFlops float64 // per-node compute speed

	LinkLatency   float64 // private link latency, seconds
	LinkBandwidth float64 // private link bandwidth, bytes/second

	// CabinetSize > 0 selects the hierarchical topology: nodes are grouped
	// into cabinets of this size, connected by uplinks to a top switch.
	CabinetSize     int
	UplinkLatency   float64
	UplinkBandwidth float64

	WMax float64 // TCP window bound for the empirical per-flow bandwidth
}

// NewCluster builds and validates a custom cluster.
func NewCluster(spec ClusterSpec) (*Cluster, error) {
	pc := &platform.Cluster{
		Name:            spec.Name,
		P:               spec.Procs,
		SpeedGFlops:     spec.SpeedGFlops,
		LinkLatency:     spec.LinkLatency,
		LinkBandwidth:   spec.LinkBandwidth,
		CabinetSize:     spec.CabinetSize,
		UplinkLatency:   spec.UplinkLatency,
		UplinkBandwidth: spec.UplinkBandwidth,
		WMax:            spec.WMax,
	}
	if pc.Name == "" {
		pc.Name = fmt.Sprintf("custom-%d", spec.Procs)
	}
	if pc.LinkBandwidth == 0 {
		pc.LinkBandwidth = platform.GigabitBandwidth
	}
	if pc.LinkLatency == 0 {
		pc.LinkLatency = platform.GigabitLatency
	}
	if pc.CabinetSize > 0 {
		if pc.UplinkBandwidth == 0 {
			pc.UplinkBandwidth = 10 * platform.GigabitBandwidth
		}
		if pc.UplinkLatency == 0 {
			pc.UplinkLatency = platform.GigabitLatency
		}
	}
	if pc.WMax == 0 {
		pc.WMax = platform.DefaultWMax
	}
	if err := pc.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{pc: pc}, nil
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.pc.Name }

// Procs returns the number of processors (nodes).
func (c *Cluster) Procs() int { return c.pc.P }

// SpeedGFlops returns the per-node compute speed in GFlop/s.
func (c *Cluster) SpeedGFlops() float64 { return c.pc.SpeedGFlops }

// Hierarchical reports whether the cluster uses the cabinet topology.
func (c *Cluster) Hierarchical() bool { return c.pc.Hierarchical() }

// Cabinets returns the number of cabinets (1 for flat clusters).
func (c *Cluster) Cabinets() int { return c.pc.Cabinets() }

// LinkBandwidth returns the private per-node link bandwidth in
// bytes/second.
func (c *Cluster) LinkBandwidth() float64 { return c.pc.LinkBandwidth }

// LinkLatency returns the private per-node link latency in seconds.
func (c *Cluster) LinkLatency() float64 { return c.pc.LinkLatency }
