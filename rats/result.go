package rats

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/simdag"
	"repro/internal/trace"
)

// Placement is the outcome of scheduling one real task: the processors it
// ran on (in data rank order: rank r holds block r of the task's 1-D
// block-distributed dataset) and its simulated execution interval.
type Placement struct {
	Task   int     `json:"task"`   // task ID within the DAG
	Name   string  `json:"name"`   // task name
	Procs  []int   `json:"procs"`  // processor set, rank order
	Start  float64 `json:"start"`  // simulated start time, seconds
	Finish float64 `json:"finish"` // simulated finish time, seconds
}

// Phases records the wall-clock duration of each pipeline phase of one
// scheduling run: first-step allocation, redistribution-aware mapping, and
// the contention-aware replay. The service layer surfaces these per
// request; they are measurements, not part of the versioned wire format.
type Phases struct {
	Alloc time.Duration
	Map   time.Duration
	Sim   time.Duration
}

// Total returns the summed pipeline time.
func (p Phases) Total() time.Duration { return p.Alloc + p.Map + p.Sim }

// Result is the typed outcome of one scheduling run. All fields are
// immutable; a Result is safe for concurrent use.
type Result struct {
	DAGName   string // the workload's DAG.Name
	Cluster   string // target cluster name
	Strategy  Strategy
	Allocator Allocator

	// Phases holds the wall-clock phase timings of this run.
	Phases Phases

	// Counters aggregates the run's engine-level observability counters
	// across all three phases (allocation refinement, mapping, replay).
	// Diagnostics only: never an input to any scheduling decision. Like
	// Phases, counters are measurements, not part of the versioned wire
	// format — lane scheduling makes memo and steal counts vary run to
	// run under parallel mapping, and the wire document is guaranteed
	// byte-identical at every worker count. The service layer carries
	// them per request in its own envelope (serve.RequestMetrics).
	Counters Counters

	Makespan    float64 // simulated, contention-aware makespan, seconds
	Estimate    float64 // the mapping engine's own contention-free estimate
	TotalWork   float64 // Σ p·T(t, p) resource consumption, processor-seconds
	RemoteBytes float64 // redistribution bytes that crossed the network
	LocalBytes  float64 // redistribution bytes kept on-node
	FlowCount   int     // point-to-point wire flows simulated

	// Placements lists every real task in task-ID order.
	Placements []Placement

	g     *dag.Graph
	sched *core.Schedule
	sim   *simdag.Result
}

func newResult(d *DAG, s *Scheduler, sched *core.Schedule, sim *simdag.Result) *Result {
	r := &Result{
		DAGName:     d.Name,
		Cluster:     s.cluster.Name(),
		Strategy:    s.strategy,
		Allocator:   s.allocator,
		Makespan:    sim.Makespan,
		Estimate:    sched.EstMakespan(),
		TotalWork:   sched.TotalWork,
		RemoteBytes: sim.RemoteBytes,
		LocalBytes:  sim.LocalBytes,
		FlowCount:   sim.FlowCount,
		g:           d.g,
		sched:       sched,
		sim:         sim,
	}
	for t := range d.g.Tasks {
		if d.g.Tasks[t].Virtual {
			continue
		}
		r.Placements = append(r.Placements, Placement{
			Task:   t,
			Name:   d.g.Tasks[t].Name,
			Procs:  append([]int(nil), sched.Procs[t]...),
			Start:  sim.Start[t],
			Finish: sim.Finish[t],
		})
	}
	return r
}

// Allocations returns the final processor count of every real task, in
// Placements order — after any RATS packing or stretching.
func (r *Result) Allocations() []int {
	out := make([]int, len(r.Placements))
	for i, p := range r.Placements {
		out[i] = len(p.Procs)
	}
	return out
}

// Gantt renders a plain-text Gantt chart of the simulated execution, one
// line per processor, using width character cells for the makespan.
func (r *Result) Gantt(width int) string {
	return simdag.Gantt(r.g, r.sched, r.sim, width)
}

// ChromeTrace writes the simulated execution in the Chrome trace-event
// JSON format (load via chrome://tracing or Perfetto), with one timeline
// row per processor plus one per network redistribution.
func (r *Result) ChromeTrace(w io.Writer) error {
	return trace.ChromeTrace(w, r.g, r.sched, r.sim)
}

// Stats summarizes a replayed schedule: utilization, redistribution
// exposure and how many dependence edges turned out communication-free.
type Stats struct {
	Makespan float64 `json:"makespan"`
	// BusyTime is Σ duration·|procs| over tasks, in processor-seconds.
	BusyTime float64 `json:"busy_time"`
	// Utilization is BusyTime / (ProcsUsed · Makespan).
	Utilization float64 `json:"utilization"`
	ProcsUsed   int     `json:"procs_used"`
	// RedistExposure sums, over edges, the interval between producer
	// finish and redistribution completion — the serialized communication
	// cost the schedule actually paid.
	RedistExposure float64 `json:"redist_exposure"`
	// CriticalWait is the largest single redistribution exposure.
	CriticalWait float64 `json:"critical_wait"`
	// FreeEdges counts real edges whose redistribution completed the
	// instant the producer finished; PaidEdges counts the rest.
	FreeEdges int `json:"free_edges"`
	PaidEdges int `json:"paid_edges"`
}

// Stats derives post-mortem statistics from the simulated execution.
func (r *Result) Stats() Stats {
	st := trace.Compute(r.g, r.sched, r.sim)
	return Stats{
		Makespan:       st.Makespan,
		BusyTime:       st.BusyTime,
		Utilization:    st.Utilization,
		ProcsUsed:      st.PUsed,
		RedistExposure: st.RedistExposure,
		CriticalWait:   st.CriticalWait,
		FreeEdges:      st.FreeEdges,
		PaidEdges:      st.PaidEdges,
	}
}

// String renders the stats as a compact human-readable block.
func (st Stats) String() string {
	return trace.Stats{
		Makespan:       st.Makespan,
		BusyTime:       st.BusyTime,
		Utilization:    st.Utilization,
		PUsed:          st.ProcsUsed,
		RedistExposure: st.RedistExposure,
		CriticalWait:   st.CriticalWait,
		FreeEdges:      st.FreeEdges,
		PaidEdges:      st.PaidEdges,
	}.String()
}

// ResultSchemaV1 identifies version 1 of the Result wire format. Every
// Result marshals with this value in its "schema" field; DecodeResult
// refuses documents that carry a different (or no) version, so consumers
// of ratsd responses fail loudly on a format they do not understand
// instead of silently reading zero values.
const ResultSchemaV1 = "rats.result/v1"

// WireResult is the versioned serialization schema of a Result: enums as
// their round-trippable names, everything else verbatim. It is the
// document a ratsd response carries and what DecodeResult returns —
// a plain data mirror of Result, without the replay internals that back
// Gantt or ChromeTrace rendering.
type WireResult struct {
	Schema      string      `json:"schema"`
	DAG         string      `json:"dag,omitempty"`
	Cluster     string      `json:"cluster"`
	Strategy    string      `json:"strategy"`
	Allocator   string      `json:"allocator"`
	Makespan    float64     `json:"makespan"`
	Estimate    float64     `json:"estimate"`
	TotalWork   float64     `json:"total_work"`
	RemoteBytes float64     `json:"remote_bytes"`
	LocalBytes  float64     `json:"local_bytes"`
	FlowCount   int         `json:"flow_count"`
	Placements  []Placement `json:"placements"`
	Stats       Stats       `json:"stats"`
}

// MarshalJSON implements json.Marshaler — the wire schema ratsd responses
// carry. Strategy and allocator serialize as their ParseStrategy /
// ParseAllocator round-trippable names; the schema field is always
// ResultSchemaV1.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(WireResult{
		Schema:      ResultSchemaV1,
		DAG:         r.DAGName,
		Cluster:     r.Cluster,
		Strategy:    r.Strategy.String(),
		Allocator:   r.Allocator.String(),
		Makespan:    r.Makespan,
		Estimate:    r.Estimate,
		TotalWork:   r.TotalWork,
		RemoteBytes: r.RemoteBytes,
		LocalBytes:  r.LocalBytes,
		FlowCount:   r.FlowCount,
		Placements:  r.Placements,
		Stats:       r.Stats(),
	})
}

// DecodeResult parses a marshaled Result (a ratsd response body's result
// document) and validates its schema version. Unknown or missing versions
// are an error.
func DecodeResult(data []byte) (*WireResult, error) {
	var w WireResult
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("rats: decoding result: %w", err)
	}
	if w.Schema != ResultSchemaV1 {
		return nil, fmt.Errorf("rats: result schema %q is not %q", w.Schema, ResultSchemaV1)
	}
	return &w, nil
}
