package rats

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/simdag"
)

func chainDAG(t *testing.T) *DAG {
	t.Helper()
	d := NewDAG()
	for _, name := range []string{"T1", "T2", "T3"} {
		d.Task(name, TaskSpec{Elements: 40e6, OpsFactor: 200, Alpha: 0.05})
	}
	d.Edge("T1", "T2").Edge("T2", "T3")
	if err := d.Err(); err != nil {
		t.Fatalf("chain builder error: %v", err)
	}
	return d
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]*DAG{
		"empty name": NewDAG().Task("", TaskSpec{Elements: 1e7, OpsFactor: 64}),
		"duplicate name": NewDAG().
			Task("a", TaskSpec{Elements: 1e7, OpsFactor: 64}).
			Task("a", TaskSpec{Elements: 1e7, OpsFactor: 64}),
		"non-positive elements": NewDAG().Task("a", TaskSpec{OpsFactor: 64}),
		"alpha out of range":    NewDAG().Task("a", TaskSpec{Elements: 1e7, OpsFactor: 64, Alpha: 1}),
		"unknown edge source": NewDAG().
			Task("a", TaskSpec{Elements: 1e7, OpsFactor: 64}).
			Edge("nope", "a"),
		"unknown edge target": NewDAG().
			Task("a", TaskSpec{Elements: 1e7, OpsFactor: 64}).
			Edge("a", "nope"),
		"negative payload": NewDAG().
			Task("a", TaskSpec{Elements: 1e7, OpsFactor: 64}).
			Task("b", TaskSpec{Elements: 1e7, OpsFactor: 64}).
			EdgeBytes("a", "b", -1),
		"empty graph": NewDAG(),
		"bad fft k":   FFT(3, 1),
		"bad random":  Random(RandomSpec{N: 0}),
	}
	for name, d := range cases {
		if err := d.Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", name)
		}
		if _, err := New().Schedule(d); err == nil {
			t.Errorf("%s: Schedule succeeded, want error", name)
		}
	}
}

func TestBuilderKeepsFirstError(t *testing.T) {
	d := NewDAG().
		Task("", TaskSpec{}).
		Task("ok", TaskSpec{Elements: 1e7, OpsFactor: 64})
	if err := d.Err(); err == nil || !strings.Contains(err.Error(), "non-empty") {
		t.Fatalf("Err() = %v, want the first (empty-name) error", d.Err())
	}
}

func TestBuilderPanicsAfterFinalize(t *testing.T) {
	d := chainDAG(t)
	if err := d.Build(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Task on a finalized DAG did not panic")
		}
	}()
	d.Task("late", TaskSpec{Elements: 1e7, OpsFactor: 64})
}

func TestCyclicDAGFailsValidation(t *testing.T) {
	d := NewDAG().
		Task("a", TaskSpec{Elements: 1e7, OpsFactor: 64}).
		Task("b", TaskSpec{Elements: 1e7, OpsFactor: 64}).
		Edge("a", "b").Edge("b", "a")
	if err := d.Build(); err == nil {
		t.Fatal("cyclic DAG built successfully")
	}
}

func TestStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Baseline, Delta, TimeCost} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	for name, want := range map[string]Strategy{
		"hcpa": Baseline, "none": Baseline, "BASELINE": Baseline,
		"timecost": TimeCost, "tc": TimeCost, " delta ": Delta,
	} {
		if got, err := ParseStrategy(name); err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted bogus name")
	}
	if Strategy(42).String() != "Strategy(42)" {
		t.Errorf("out-of-range Strategy stringified to %q", Strategy(42).String())
	}
	if _, err := New(WithStrategy(Strategy(42))).Schedule(chainDAG(t)); err == nil {
		t.Error("Schedule accepted an out-of-range strategy")
	}
}

func TestAllocatorRoundTrip(t *testing.T) {
	for _, a := range []Allocator{CPA, HCPA, MCPA} {
		got, err := ParseAllocator(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAllocator(%q) = %v, %v; want %v", a.String(), got, err, a)
		}
	}
	if _, err := ParseAllocator("bogus"); err == nil {
		t.Error("ParseAllocator accepted bogus name")
	}
	if Allocator(7).String() != "Allocator(7)" {
		t.Errorf("out-of-range Allocator stringified to %q", Allocator(7).String())
	}
	if _, err := New(WithAllocator(Allocator(7))).Schedule(chainDAG(t)); err == nil {
		t.Error("Schedule accepted an out-of-range allocator")
	}
}

func TestClusterPresets(t *testing.T) {
	for _, tc := range []struct {
		c     *Cluster
		name  string
		procs int
	}{
		{Chti(), "chti", 20},
		{Grillon(), "grillon", 47},
		{Grelon(), "grelon", 120},
		{Big512(), "big512", 512},
		{Big1024(), "big1024", 1024},
	} {
		if tc.c.Name() != tc.name || tc.c.Procs() != tc.procs {
			t.Errorf("preset %s: got (%s, %d)", tc.name, tc.c.Name(), tc.c.Procs())
		}
		byName, err := ClusterByName(tc.name)
		if err != nil || byName.Procs() != tc.procs {
			t.Errorf("ClusterByName(%s) = %v, %v", tc.name, byName, err)
		}
	}
	if !Grelon().Hierarchical() || Grelon().Cabinets() != 5 {
		t.Error("grelon should be hierarchical with 5 cabinets")
	}
	if !Big512().Hierarchical() || Big512().Cabinets() != 16 {
		t.Error("big512 should be hierarchical with 16 cabinets")
	}
	if !Big1024().Hierarchical() || Big1024().Cabinets() != 32 {
		t.Error("big1024 should be hierarchical with 32 cabinets")
	}
	if _, err := ClusterByName("bogus"); err == nil {
		t.Error("ClusterByName accepted bogus name")
	}
}

func TestNewClusterDefaultsAndValidation(t *testing.T) {
	c, err := NewCluster(ClusterSpec{Procs: 10, SpeedGFlops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.LinkBandwidth() != platform.GigabitBandwidth || c.LinkLatency() != platform.GigabitLatency {
		t.Error("NewCluster did not default to gigabit link figures")
	}
	if c.Name() == "" {
		t.Error("NewCluster left the name empty")
	}
	if _, err := NewCluster(ClusterSpec{Procs: 0, SpeedGFlops: 2}); err == nil {
		t.Error("NewCluster accepted zero processors")
	}
	if _, err := NewCluster(ClusterSpec{Procs: 4, SpeedGFlops: -1}); err == nil {
		t.Error("NewCluster accepted negative speed")
	}
	hier, err := NewCluster(ClusterSpec{Procs: 48, SpeedGFlops: 2, CabinetSize: 24})
	if err != nil || !hier.Hierarchical() || hier.Cabinets() != 2 {
		t.Errorf("hierarchical NewCluster = %+v, %v", hier, err)
	}
}

func TestOptionErrors(t *testing.T) {
	nan := math.NaN()
	bad := []*Scheduler{
		New(WithCluster(nil)),
		New(WithDeltaBounds(0.1, 0.5)),
		New(WithDeltaBounds(-0.5, -0.1)),
		New(WithMinRho(0)),
		New(WithMinRho(1.5)),
		New(WithWorkers(0)),
		New(WithFixedAllocation()),
		// NaN makes every ordinary range check vacuously false and ±Inf
		// poisons the δ bounds; both must be configuration errors.
		New(WithDeltaBounds(nan, 0.5)),
		New(WithDeltaBounds(-0.5, nan)),
		New(WithDeltaBounds(math.Inf(-1), 0.5)),
		New(WithDeltaBounds(-0.5, math.Inf(1))),
		New(WithMinRho(nan)),
	}
	for i, s := range bad {
		if _, err := s.Schedule(chainDAG(t)); err == nil {
			t.Errorf("bad option %d: Schedule succeeded, want error", i)
		}
	}
}

func TestFixedAllocationValidation(t *testing.T) {
	for name, s := range map[string]*Scheduler{
		"too short":  New(WithFixedAllocation(8, 10)),
		"too long":   New(WithFixedAllocation(8, 10, 9, 4)),
		"zero procs": New(WithFixedAllocation(8, 0, 9)),
		"over P":     New(WithFixedAllocation(8, 10, 999)),
	} {
		if _, err := s.Schedule(chainDAG(t)); err == nil {
			t.Errorf("%s: Schedule succeeded, want error", name)
		}
	}
}

// TestFacadeMatchesInternalPipeline locks the facade to the reproduction:
// for every strategy, Schedule must produce exactly the makespan, work and
// traffic of the hand-assembled internal pipeline.
func TestFacadeMatchesInternalPipeline(t *testing.T) {
	cl := platform.Grelon()
	for _, tc := range []struct {
		strategy Strategy
		opts     core.Options
	}{
		{Baseline, core.DefaultNaive(core.StrategyNone)},
		{Delta, core.DefaultNaive(core.StrategyDelta)},
		{TimeCost, core.DefaultNaive(core.StrategyTimeCost)},
	} {
		g := gen.FFT(8, 42)
		costs := moldable.NewCosts(g, cl.SpeedGFlops)
		allocation := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
		sched := core.Map(g, costs, cl, allocation, tc.opts)
		want, err := simdag.Execute(g, costs, cl, sched)
		if err != nil {
			t.Fatal(err)
		}

		res, err := New(WithCluster(Grelon()), WithStrategy(tc.strategy)).Schedule(FFT(8, 42))
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != want.Makespan || res.RemoteBytes != want.RemoteBytes ||
			res.TotalWork != sched.TotalWork || res.FlowCount != want.FlowCount {
			t.Errorf("%v: facade (%g s, %g B, %g proc·s, %d flows) != internal (%g s, %g B, %g proc·s, %d flows)",
				tc.strategy, res.Makespan, res.RemoteBytes, res.TotalWork, res.FlowCount,
				want.Makespan, want.RemoteBytes, sched.TotalWork, want.FlowCount)
		}
	}
}

func TestScheduleResultShape(t *testing.T) {
	d := Strassen(7)
	res, err := New(WithCluster(Chti()), WithStrategy(TimeCost)).Schedule(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.Estimate <= 0 || res.TotalWork <= 0 {
		t.Fatalf("non-positive headline metrics: %+v", res)
	}
	if len(res.Placements) != d.TaskCount() {
		t.Fatalf("%d placements for %d real tasks", len(res.Placements), d.TaskCount())
	}
	allocs := res.Allocations()
	for i, p := range res.Placements {
		if len(p.Procs) == 0 || len(p.Procs) != allocs[i] {
			t.Fatalf("placement %d (%s): procs %v vs alloc %d", i, p.Name, p.Procs, allocs[i])
		}
		if p.Finish < p.Start {
			t.Fatalf("placement %d finishes before it starts", i)
		}
	}
	st := res.Stats()
	if st.Makespan != res.Makespan || st.ProcsUsed <= 0 || st.FreeEdges+st.PaidEdges == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if !strings.Contains(st.String(), "makespan") {
		t.Fatalf("Stats.String: %q", st.String())
	}
	if g := res.Gantt(40); !strings.Contains(g, "makespan") {
		t.Fatalf("Gantt output: %q", g)
	}
	var buf bytes.Buffer
	if err := res.ChromeTrace(&buf); err != nil || !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Fatalf("ChromeTrace: %v, %q", err, buf.String())
	}
}

func TestDAGJSONRoundTrip(t *testing.T) {
	orig := FFT(4, 7)
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var decoded DAG
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != orig.Name || decoded.TaskCount() != orig.TaskCount() ||
		decoded.EdgeCount() != orig.EdgeCount() {
		t.Fatalf("round-trip mismatch: %s %d/%d vs %s %d/%d", decoded.Name,
			decoded.TaskCount(), decoded.EdgeCount(), orig.Name, orig.TaskCount(), orig.EdgeCount())
	}
	s := New(WithStrategy(Delta))
	a, err := s.Schedule(orig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Schedule(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("decoded DAG schedules to %g, original to %g", b.Makespan, a.Makespan)
	}
	// A finalized DAG may be read concurrently by schedulers; unmarshaling
	// into it would mutate it in place and must be refused.
	if err := json.Unmarshal(blob, orig); err == nil ||
		!strings.Contains(err.Error(), "finalized") {
		t.Fatalf("Unmarshal into a finalized DAG: %v, want a finalized-DAG error", err)
	}
}

func TestResultJSON(t *testing.T) {
	res, err := New(WithStrategy(Delta), WithAllocator(MCPA)).Schedule(FFT(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		DAG        string  `json:"dag"`
		Cluster    string  `json:"cluster"`
		Strategy   string  `json:"strategy"`
		Allocator  string  `json:"allocator"`
		Makespan   float64 `json:"makespan"`
		Placements []struct {
			Name  string `json:"name"`
			Procs []int  `json:"procs"`
		} `json:"placements"`
		Stats Stats `json:"stats"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Strategy != "delta" || decoded.Allocator != "mcpa" ||
		decoded.Cluster != "grillon" || decoded.Makespan != res.Makespan {
		t.Fatalf("JSON headline fields: %+v", decoded)
	}
	if st, err := ParseStrategy(decoded.Strategy); err != nil || st != Delta {
		t.Fatalf("strategy field does not round-trip: %v, %v", st, err)
	}
	if len(decoded.Placements) != len(res.Placements) || decoded.Stats.Makespan != res.Makespan {
		t.Fatalf("JSON payload mismatch: %d placements, stats %+v", len(decoded.Placements), decoded.Stats)
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := chainDAG(t).WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "T1") {
		t.Fatalf("DOT output: %q", out)
	}
}
