package rats

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/simdag"
)

// Option configures a Scheduler; see the With* constructors.
type Option func(*Scheduler)

// Scheduler runs the two-step pipeline — allocation, redistribution-aware
// mapping, simulated execution — with a fixed configuration. It is
// immutable after New and safe for concurrent use.
type Scheduler struct {
	cluster    *Cluster
	strategy   Strategy
	allocator  Allocator
	flowSolver FlowSolver
	alignment  AlignmentMode
	profile    Profile

	// alignmentSet records an explicit WithAlignment: the user's choice
	// wins over the profile's alignment default (the profile then still
	// controls the remaining knobs).
	alignmentSet bool

	mapOpts   core.Options
	allocOpts alloc.Options
	simOpts   simdag.Options

	fixedAlloc []int
	workers    int

	err error // first configuration error, surfaced by Schedule/ScheduleAll
}

// New assembles a Scheduler from functional options. The zero
// configuration is the paper's default pipeline under the fast profile:
// HCPA allocation with level caps, baseline mapping with the naive RATS
// parameters standing by (mindelta = −0.5, maxdelta = 0.5, minrho = 0.5,
// packing on), ProfileFast's ablation-backed approximation knobs (see
// Profile; WithProfile(ProfileReference) restores the exact pipeline),
// on the grillon cluster. Configuration errors are recorded and returned
// by the first Schedule or ScheduleAll call.
func New(opts ...Option) *Scheduler {
	s := &Scheduler{
		cluster:   Grillon(),
		mapOpts:   core.DefaultNaive(core.StrategyNone),
		allocOpts: alloc.DefaultOptions(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.err == nil {
		cs, err := s.strategy.coreStrategy()
		if err != nil {
			s.err = err
		} else {
			s.mapOpts.Strategy = cs
		}
	}
	if s.err == nil {
		m, err := s.allocator.allocMethod()
		if err != nil {
			s.err = err
		} else {
			s.allocOpts.Method = m
		}
	}
	if s.err == nil {
		fs, err := s.flowSolver.coreFlowSolver()
		if err != nil {
			s.err = err
		} else {
			s.simOpts.Solver = fs
		}
	}
	// The profile resolves before the alignment so an explicit
	// WithAlignment overrides the profile's alignment choice while the
	// profile keeps the remaining knobs.
	if s.err == nil {
		switch s.profile {
		case ProfileFast:
			s.mapOpts.AlignCap = core.FastAlignCap
			s.mapOpts.MemoEps = core.FastMemoEps
			s.simOpts.ScratchThreshold = core.FastScratchThreshold
			if !s.alignmentSet {
				s.alignment = AlignmentAuto
			}
		case ProfileReference:
			// Exact pipeline: zero knobs, Hungarian alignment (the zero
			// AlignmentMode) unless explicitly overridden.
		default:
			s.fail("rats: invalid profile %v", s.profile)
		}
	}
	if s.err == nil {
		am, err := s.alignment.redistAlign()
		if err != nil {
			s.err = err
		} else {
			s.mapOpts.Align = am
		}
	}
	return s
}

func (s *Scheduler) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf(format, args...)
	}
}

// WithCluster selects the target cluster (default: Grillon).
func WithCluster(c *Cluster) Option {
	return func(s *Scheduler) {
		if c == nil {
			s.fail("rats: WithCluster(nil)")
			return
		}
		s.cluster = c
	}
}

// WithStrategy selects the mapping strategy (default: Baseline).
func WithStrategy(st Strategy) Option {
	return func(s *Scheduler) { s.strategy = st }
}

// WithAllocator selects the first-step allocation procedure (default:
// HCPA).
func WithAllocator(a Allocator) Option {
	return func(s *Scheduler) { s.allocator = a }
}

// WithDeltaBounds sets the delta strategy's packing/stretching bounds as
// fractions of a task's allocation: min ≤ 0 bounds packing, max ≥ 0
// bounds stretching (the paper's naive values are −0.5 and 0.5). Both
// bounds must be finite: NaN and ±Inf would silently poison the per-task
// δ bounds, so they are rejected as configuration errors.
func WithDeltaBounds(min, max float64) Option {
	return func(s *Scheduler) {
		if math.IsNaN(min) || math.IsInf(min, 0) || math.IsNaN(max) || math.IsInf(max, 0) {
			s.fail("rats: WithDeltaBounds(%g, %g): bounds must be finite", min, max)
			return
		}
		if min > 0 || max < 0 {
			s.fail("rats: WithDeltaBounds(%g, %g): want min ≤ 0 ≤ max", min, max)
			return
		}
		s.mapOpts.MinDelta, s.mapOpts.MaxDelta = min, max
	}
}

// WithMinRho sets the time-cost strategy's minimum acceptable work ratio
// for a stretch, in (0, 1]. NaN — for which every range check is
// vacuously false — is rejected like any other value outside the interval.
func WithMinRho(rho float64) Option {
	return func(s *Scheduler) {
		if math.IsNaN(rho) || rho <= 0 || rho > 1 {
			s.fail("rats: WithMinRho(%g): want a ratio in (0, 1]", rho)
			return
		}
		s.mapOpts.MinRho = rho
	}
}

// WithPacking enables or disables allocation packing in the time-cost
// strategy (default: enabled, which the paper finds always beneficial).
func WithPacking(enabled bool) Option {
	return func(s *Scheduler) { s.mapOpts.Packing = enabled }
}

// WithEFTGuard enables or disables the delta strategy's fallback to the
// baseline mapping when adopting a predecessor's processors would increase
// the task's own estimated finish time (default: enabled).
func WithEFTGuard(enabled bool) Option {
	return func(s *Scheduler) { s.mapOpts.DeltaEFTGuard = enabled }
}

// WithFixedAllocation bypasses the allocation procedure: procs[i] is the
// processor count of the i-th real task in insertion order (virtual
// connector tasks are skipped). Every count must be ≥ 1 — that is checked
// here, at configuration time, so a service rejects a nonsensical request
// before it reaches a scheduler. The slice length and the upper bound
// (count ≤ cluster size) are checked per scheduled DAG, where both are
// known.
func WithFixedAllocation(procs ...int) Option {
	return func(s *Scheduler) {
		if len(procs) == 0 {
			s.fail("rats: WithFixedAllocation needs at least one entry")
			return
		}
		for i, p := range procs {
			if p < 1 {
				s.fail("rats: WithFixedAllocation: entry %d is %d, want ≥ 1", i, p)
				return
			}
		}
		s.fixedAlloc = append([]int(nil), procs...)
	}
}

// WithWorkers bounds the ScheduleAll worker pool (default: GOMAXPROCS).
// n ≤ 0 — including the tempting "0 means default" — is rejected
// explicitly: a service must not silently translate a malformed request
// into an unbounded pool.
func WithWorkers(n int) Option {
	return func(s *Scheduler) {
		if n <= 0 {
			s.fail("rats: WithWorkers(%d): want ≥ 1", n)
			return
		}
		s.workers = n
	}
}

// WithMapWorkers shards each DAG's candidate evaluation across n worker
// lanes inside the mapping phase (default 1 = serial). The parallel mapper
// is byte-identical to the serial one at any n — schedules never depend on
// this knob, only latency does — so it composes freely with WithWorkers:
// that one spreads a batch across DAGs, this one spreads a single large
// DAG's mapping across cores. n ≤ 0 is rejected like WithWorkers, and for
// the same reason.
func WithMapWorkers(n int) Option {
	return func(s *Scheduler) {
		if n <= 0 {
			s.fail("rats: WithMapWorkers(%d): want ≥ 1", n)
			return
		}
		s.mapOpts.Workers = n
	}
}

// Strategy returns the configured mapping strategy.
func (s *Scheduler) Strategy() Strategy { return s.strategy }

// Allocator returns the configured allocation procedure.
func (s *Scheduler) Allocator() Allocator { return s.allocator }

// Cluster returns the configured target cluster.
func (s *Scheduler) Cluster() *Cluster { return s.cluster }

// Schedule runs the full two-step pipeline on one DAG: first-step
// allocation, redistribution-aware mapping, then a replay in the
// contention-aware flow-level simulator. The DAG is finalized (Build) if
// it has not been already.
func (s *Scheduler) Schedule(d *DAG) (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if d == nil {
		return nil, errors.New("rats: Schedule(nil DAG)")
	}
	if err := d.Build(); err != nil {
		return nil, err
	}
	return s.run(d, nil)
}

// run executes the pipeline on a finalized DAG. With a nil context it only
// reads shared state, which is what makes concurrent batch scheduling
// race-free; with a pooled Context the mapping phase runs in the context's
// reusable scratch (the caller serializes runs per context).
func (s *Scheduler) run(d *DAG, sc *Context) (*Result, error) {
	g, cl := d.g, s.cluster.pc
	t0 := time.Now()
	// Cost against the planning speed: the slowest node's speed on
	// heterogeneous clusters, exactly SpeedGFlops on uniform ones. The
	// mapping/replay phases re-base individual tasks to the slowest member
	// of their concrete processor set.
	costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())

	tracer := s.mapOpts.Tracer
	spanStart := tracer.Begin()
	allocation, err := s.allocationFor(d)
	if err != nil {
		return nil, err
	}
	// Alloc counters land in a per-run copy of the options: the Scheduler
	// itself stays immutable, so concurrent ScheduleAll runs never share a
	// counter sink.
	var allocCnt Counters
	if allocation == nil {
		ao := s.allocOpts
		ao.Obs = &allocCnt
		allocation = alloc.Compute(g, costs, cl, ao)
	}
	tAlloc := time.Now()
	tracer.End(spanStart, "rats", "alloc", int64(g.N()), 0)

	spanStart = tracer.Begin()
	var sched *core.Schedule
	if sc != nil {
		sched = sc.mc.Map(g, costs, allocation, s.mapOpts)
	} else {
		sched = core.Map(g, costs, cl, allocation, s.mapOpts)
	}
	tMap := time.Now()
	tracer.End(spanStart, "rats", "map", int64(g.N()), 0)

	spanStart = tracer.Begin()
	sim, err := simdag.ExecuteOpts(g, costs, cl, sched, s.simOpts)
	if err != nil {
		return nil, fmt.Errorf("rats: %s on %s: %w", d.Name, cl.Name, err)
	}
	tSim := time.Now()
	tracer.End(spanStart, "rats", "sim", int64(g.N()), int64(sim.FlowCount))

	r := newResult(d, s, sched, sim)
	r.Phases = Phases{
		Alloc: tAlloc.Sub(t0),
		Map:   tMap.Sub(tAlloc),
		Sim:   tSim.Sub(tMap),
	}
	r.Counters = allocCnt
	r.Counters.Add(&sched.Counters)
	r.Counters.Add(&sim.Counters)
	return r, nil
}

// allocationFor expands a fixed allocation over the DAG's task IDs, or
// returns nil when the configured allocator should run.
func (s *Scheduler) allocationFor(d *DAG) ([]int, error) {
	if s.fixedAlloc == nil {
		return nil, nil
	}
	g, cl := d.g, s.cluster.pc
	out := make([]int, g.N())
	next := 0
	for t := range g.Tasks {
		if g.Tasks[t].Virtual {
			continue
		}
		if next >= len(s.fixedAlloc) {
			return nil, fmt.Errorf("rats: fixed allocation has %d entries, DAG %s has %d real tasks",
				len(s.fixedAlloc), d.Name, g.RealTaskCount())
		}
		p := s.fixedAlloc[next]
		next++
		if p < 1 || p > cl.P {
			return nil, fmt.Errorf("rats: fixed allocation of %d processors for task %q outside [1, %d]",
				p, g.Tasks[t].Name, cl.P)
		}
		out[t] = p
	}
	if next != len(s.fixedAlloc) {
		return nil, fmt.Errorf("rats: fixed allocation has %d entries, DAG %s has %d real tasks",
			len(s.fixedAlloc), d.Name, g.RealTaskCount())
	}
	return out, nil
}

// ScheduleAll schedules a batch of DAGs concurrently over a bounded worker
// pool and returns one Result per input DAG, at the input's index. Every
// DAG is finalized up front on the calling goroutine, so the concurrent
// phase is read-only and a DAG may appear several times in one batch.
//
// The first failure cancels the remaining work: unprocessed entries stay
// nil and the returned error joins every per-DAG error (context
// cancellation included). The results slice is always returned, so callers
// can inspect the work that did complete.
func (s *Scheduler) ScheduleAll(ctx context.Context, dags []*DAG) ([]*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for i, d := range dags {
		if d == nil {
			return nil, fmt.Errorf("rats: ScheduleAll: dag %d is nil", i)
		}
		if err := d.Build(); err != nil {
			return nil, fmt.Errorf("rats: ScheduleAll: dag %d (%s): %w", i, d.Name, err)
		}
	}

	results := make([]*Result, len(dags))
	errs := make([]error, len(dags))
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dags) {
		workers = len(dags)
	}
	if len(dags) == 0 {
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				r, err := s.run(dags[i], nil)
				if err != nil {
					errs[i] = fmt.Errorf("dag %d (%s): %w", i, dags[i].Name, err)
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range dags {
		work <- i
	}
	close(work)
	wg.Wait()

	return results, errors.Join(errs...)
}
