package rats

import (
	"fmt"
	"strings"
)

// Profile selects the pipeline's exactness/speed trade-off as one named
// bundle instead of individual knobs. Two profiles exist:
//
//   - ProfileFast (the default): the ablation-backed approximation point —
//     size-capped exact alignment (AlignmentAuto at core.FastAlignCap), a
//     small estimator-memo staleness bound, and a raised flownet
//     scratch-solve threshold. The internal/ablate harness measured zero
//     changed schedules and 0.00% makespan delta for this bundle on every
//     scenario class (docs/ablation_pr10.json); the profile's contract is
//     ≤0.5% mean makespan delta against the reference.
//   - ProfileReference: the exact pipeline — full Hungarian alignment,
//     exact memo keying, default scratch threshold. The permanent oracle:
//     golden digests and cross-checks pin it, and
//     TestProfileFastMakespanBound bounds fast against it.
//
// An explicit WithAlignment always wins over the profile's alignment
// choice; the profile then still controls the remaining knobs.
type Profile int

const (
	// ProfileFast is the default speed profile (and the zero value).
	ProfileFast Profile = iota
	// ProfileReference is the exact reference profile.
	ProfileReference
)

// String implements fmt.Stringer; the returned name round-trips through
// ParseProfile. Out-of-range values render as "Profile(n)".
func (p Profile) String() string {
	switch p {
	case ProfileFast:
		return "fast"
	case ProfileReference:
		return "reference"
	}
	return fmt.Sprintf("Profile(%d)", int(p))
}

// ParseProfile converts a profile name (case-insensitive: "fast",
// "reference") into a Profile.
func ParseProfile(name string) (Profile, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "fast":
		return ProfileFast, nil
	case "reference":
		return ProfileReference, nil
	}
	return 0, fmt.Errorf("rats: unknown profile %q (want fast or reference)", name)
}

// WithProfile selects the exactness/speed profile (default: ProfileFast).
// Out-of-range values are configuration errors surfaced by the first
// Schedule or ScheduleAll call.
func WithProfile(p Profile) Option {
	return func(s *Scheduler) { s.profile = p }
}

// Profile returns the configured profile.
func (s *Scheduler) Profile() Profile { return s.profile }
