package rats

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestResultWireRoundTrip pins the versioned wire format (satellite of the
// ratsd service): marshaling a Result and decoding it back must preserve
// every field of the wire document, and the schema version must be
// present.
func TestResultWireRoundTrip(t *testing.T) {
	res, err := New(WithCluster(Grelon()), WithStrategy(TimeCost), WithAllocator(HCPA)).
		Schedule(FFT(8, 42))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	w, err := DecodeResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if w.Schema != ResultSchemaV1 {
		t.Fatalf("decoded schema %q, want %q", w.Schema, ResultSchemaV1)
	}
	if w.DAG != res.DAGName || w.Cluster != res.Cluster ||
		w.Strategy != res.Strategy.String() || w.Allocator != res.Allocator.String() {
		t.Fatalf("identity fields diverge: %+v vs result %s/%s/%v/%v",
			w, res.DAGName, res.Cluster, res.Strategy, res.Allocator)
	}
	if w.Makespan != res.Makespan || w.Estimate != res.Estimate ||
		w.TotalWork != res.TotalWork || w.RemoteBytes != res.RemoteBytes ||
		w.LocalBytes != res.LocalBytes || w.FlowCount != res.FlowCount {
		t.Fatalf("metric fields diverge: %+v", w)
	}
	if !reflect.DeepEqual(w.Placements, res.Placements) {
		t.Fatalf("placements diverge:\n got %+v\nwant %+v", w.Placements, res.Placements)
	}
	if !reflect.DeepEqual(w.Stats, res.Stats()) {
		t.Fatalf("stats diverge: %+v vs %+v", w.Stats, res.Stats())
	}

	// Second round trip: the decoded document re-marshals to the same
	// bytes, so responses can be archived and re-served verbatim.
	blob2, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-marshaled wire document differs:\n%s\nvs\n%s", blob2, blob)
	}
}

func TestDecodeResultRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"missing schema": `{"cluster":"grelon","makespan":1}`,
		"wrong version":  `{"schema":"rats.result/v999","cluster":"grelon"}`,
		"not json":       `{"schema":`,
		"empty":          ``,
	}
	for name, doc := range cases {
		if _, err := DecodeResult([]byte(doc)); err == nil {
			t.Errorf("%s: DecodeResult succeeded, want error", name)
		}
	}
}

// TestServiceOptionValidationTables is the service-hardening table
// (satellite of ratsd): WithWorkers and WithFixedAllocation must reject
// nonsensical values at configuration time with a diagnosable error, not
// defer them to a per-DAG check or, worse, silently accept them.
func TestServiceOptionValidationTables(t *testing.T) {
	cases := []struct {
		name    string
		opt     Option
		wantErr string // substring of the configuration error
	}{
		{"workers zero", WithWorkers(0), "WithWorkers(0)"},
		{"workers negative", WithWorkers(-4), "WithWorkers(-4)"},
		{"fixed alloc empty", WithFixedAllocation(), "at least one entry"},
		{"fixed alloc zero count", WithFixedAllocation(4, 0, 2), "entry 1 is 0"},
		{"fixed alloc negative count", WithFixedAllocation(-3), "entry 0 is -3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The DAG is valid; only the option can be at fault, which
			// proves the rejection happens at configuration time.
			_, err := New(tc.opt).Schedule(chainDAG(t))
			if err == nil {
				t.Fatalf("Schedule succeeded, want configuration error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// Valid values still pass.
	for _, opt := range []Option{WithWorkers(1), WithWorkers(16), WithFixedAllocation(4, 4, 4)} {
		if _, err := New(opt).Schedule(chainDAG(t)); err != nil {
			t.Fatalf("valid option rejected: %v", err)
		}
	}
}
