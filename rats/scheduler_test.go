package rats

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// batch returns a 10-DAG mixed workload: FFTs, Strassens and random
// irregular graphs.
func batch() []*DAG {
	var dags []*DAG
	for _, k := range []int{2, 4, 8} {
		dags = append(dags, FFT(k, 42))
	}
	for seed := int64(1); seed <= 3; seed++ {
		dags = append(dags, Strassen(seed))
	}
	for seed := int64(1); seed <= 4; seed++ {
		dags = append(dags, Random(RandomSpec{
			N: 30, Width: 0.5, Density: 0.2, Regularity: 0.8, Jump: 2, Seed: seed,
		}))
	}
	return dags
}

// TestScheduleAllMatchesSerial schedules ≥ 8 DAGs concurrently and checks
// every result equals the one produced by a serial Schedule of the same
// workload — placement for placement. Run with -race, this is the
// package's concurrency-contract check.
func TestScheduleAllMatchesSerial(t *testing.T) {
	s := New(WithStrategy(Delta))
	dags := batch()
	if len(dags) < 8 {
		t.Fatalf("batch has %d DAGs, want ≥ 8", len(dags))
	}
	results, err := s.ScheduleAll(context.Background(), dags)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(dags) {
		t.Fatalf("%d results for %d DAGs", len(results), len(dags))
	}
	serial := New(WithStrategy(Delta))
	for i, res := range results {
		if res == nil {
			t.Fatalf("result %d is nil", i)
		}
		want, err := serial.Schedule(dags[i])
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != want.Makespan || res.RemoteBytes != want.RemoteBytes {
			t.Errorf("dag %d (%s): concurrent (%g s, %g B) != serial (%g s, %g B)",
				i, dags[i].Name, res.Makespan, res.RemoteBytes, want.Makespan, want.RemoteBytes)
		}
		for j := range res.Placements {
			if res.Placements[j].Start != want.Placements[j].Start ||
				len(res.Placements[j].Procs) != len(want.Placements[j].Procs) {
				t.Errorf("dag %d placement %d differs between concurrent and serial run", i, j)
			}
		}
	}
}

// TestScheduleAllSharedDAG passes the same finalized *DAG several times in
// one batch: the read-only concurrent phase must tolerate aliasing.
func TestScheduleAllSharedDAG(t *testing.T) {
	d := FFT(8, 42)
	dags := []*DAG{d, d, d, d, d, d, d, d}
	results, err := New(WithStrategy(TimeCost), WithWorkers(4)).
		ScheduleAll(context.Background(), dags)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil || res.Makespan != results[0].Makespan {
			t.Fatalf("aliased batch diverged at %d: %+v", i, res)
		}
	}
}

// TestScheduleAllConcurrentSchedulers runs several ScheduleAll calls on
// one Scheduler at once — the Scheduler itself must be share-safe.
func TestScheduleAllConcurrentSchedulers(t *testing.T) {
	s := New(WithStrategy(Delta), WithWorkers(2))
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.ScheduleAll(context.Background(), batch())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent ScheduleAll %d: %v", i, err)
		}
	}
}

func TestScheduleAllEmpty(t *testing.T) {
	results, err := New().ScheduleAll(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty batch: %v, %v", results, err)
	}
}

func TestScheduleAllNilAndInvalidDAGs(t *testing.T) {
	if _, err := New().ScheduleAll(context.Background(), []*DAG{nil}); err == nil {
		t.Error("nil DAG accepted")
	}
	bad := NewDAG() // empty: fails finalization
	if _, err := New().ScheduleAll(context.Background(), []*DAG{FFT(2, 1), bad}); err == nil {
		t.Error("invalid DAG accepted")
	}
}

func TestScheduleAllCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New().ScheduleAll(ctx, batch())
	if err == nil {
		t.Fatal("canceled context did not surface an error")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error %q does not mention cancellation", err)
	}
}

// TestScheduleAllRunError provokes a per-DAG pipeline failure (fixed
// allocation sized for a 3-task chain, applied to a 25-task Strassen) and
// checks partial results plus a joined error.
func TestScheduleAllRunError(t *testing.T) {
	s := New(WithFixedAllocation(8, 10, 9), WithWorkers(1))
	chain := NewDAG()
	for _, name := range []string{"T1", "T2", "T3"} {
		chain.Task(name, TaskSpec{Elements: 40e6, OpsFactor: 200, Alpha: 0.05})
	}
	chain.Edge("T1", "T2").Edge("T2", "T3")

	results, err := s.ScheduleAll(context.Background(), []*DAG{chain, Strassen(1)})
	if err == nil {
		t.Fatal("mismatched fixed allocation did not fail")
	}
	if results[0] == nil {
		t.Error("the valid DAG (scheduled first, single worker) has no result")
	}
	if results[1] != nil {
		t.Error("the failing DAG produced a result")
	}
	if !strings.Contains(err.Error(), "fixed allocation") {
		t.Errorf("error %q does not name the cause", err)
	}
}

func TestSchedulerAccessors(t *testing.T) {
	s := New(WithStrategy(TimeCost), WithAllocator(MCPA), WithCluster(Chti()))
	if s.Strategy() != TimeCost || s.Allocator() != MCPA || s.Cluster().Name() != "chti" {
		t.Fatalf("accessors: %v, %v, %v", s.Strategy(), s.Allocator(), s.Cluster().Name())
	}
}

func TestScheduleNilDAG(t *testing.T) {
	if _, err := New().Schedule(nil); err == nil {
		t.Fatal("Schedule(nil) succeeded")
	}
}
