package rats

import (
	"repro/internal/obs"
)

// Counters is the engine-level observability snapshot of one scheduling
// run: estimator memo effectiveness, candidate evaluation and dedup
// counts, receiver-alignment solve modes, allocation refinement activity,
// and the replay's flow-batch and rate-solver regime counts. It is an
// alias for the internal obs.Counters, so the service layer and the
// public API share one type (and one wire shape).
type Counters = obs.Counters

// Tracer is the scheduler self-tracer: a fixed-capacity span ring
// recording the pipeline's own execution (phase spans, allocation
// refinement grants, per-task placements). A nil *Tracer disables all
// recording at the cost of one pointer test per span site. Export the
// collected spans with WriteChromeTrace, or read them with Spans.
type Tracer = obs.Tracer

// NewTracer returns a self-tracer with the given ring capacity; 0 selects
// a default sized for a few thousand placements.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// WithObserver attaches a self-tracer to the pipeline: the allocation
// refinement loop records one span per grant, the mapping engine one span
// per task placement, and the scheduler one span per pipeline phase.
// Tracing never changes scheduling decisions — observer-on and
// observer-off runs produce byte-identical schedules — and a single
// tracer may be shared across concurrent runs (records are serialized).
// Counters are always collected; see Result.Counters.
func WithObserver(t *Tracer) Option {
	return func(s *Scheduler) {
		s.mapOpts.Tracer = t
		s.allocOpts.Tracer = t
	}
}
