package rats

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestScheduleInMatchesSchedule locks the pooled path to the per-request
// path at the facade level: one reused Context serving a mixed stream of
// strategies and DAGs must produce results that marshal to byte-identical
// JSON (placements, metrics, stats — everything observable).
func TestScheduleInMatchesSchedule(t *testing.T) {
	cluster := Grelon()
	cctx, err := NewContext(cluster)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []Strategy{Baseline, Delta, TimeCost} {
		for _, d := range batch() {
			s := New(WithCluster(cluster), WithStrategy(strategy))
			want, err := s.Schedule(d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.ScheduleIn(cctx, d)
			if err != nil {
				t.Fatal(err)
			}
			wb, _ := json.Marshal(want)
			gb, _ := json.Marshal(got)
			if string(wb) != string(gb) {
				t.Fatalf("%v/%s: pooled result diverges:\n%s\nvs\n%s", strategy, d.Name, gb, wb)
			}
		}
	}
}

// TestScheduleInClusterCompatibility: a context serves any scheduler whose
// cluster is structurally identical (two Grelon() values), and rejects a
// different cluster with a diagnosable error.
func TestScheduleInClusterCompatibility(t *testing.T) {
	cctx, err := NewContext(Grelon())
	if err != nil {
		t.Fatal(err)
	}
	// Distinct *Cluster value, same platform: compatible.
	if _, err := New(WithCluster(Grelon())).ScheduleIn(cctx, FFT(4, 1)); err != nil {
		t.Fatalf("structurally identical cluster rejected: %v", err)
	}
	// Different platform: rejected.
	_, err = New(WithCluster(Chti())).ScheduleIn(cctx, FFT(4, 1))
	if err == nil || !strings.Contains(err.Error(), "grelon") {
		t.Fatalf("cross-cluster ScheduleIn: got %v, want cluster-mismatch error", err)
	}
}

func TestScheduleInValidation(t *testing.T) {
	cctx, err := NewContext(Grillon())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().ScheduleIn(nil, FFT(4, 1)); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := New().ScheduleIn(cctx, nil); err == nil {
		t.Error("nil DAG accepted")
	}
	if _, err := New(WithWorkers(-1)).ScheduleIn(cctx, FFT(4, 1)); err == nil {
		t.Error("configuration error not surfaced by ScheduleIn")
	}
	if _, err := NewContext(nil); err == nil {
		t.Error("NewContext(nil) accepted")
	}
}
