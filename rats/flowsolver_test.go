package rats_test

import (
	"math"
	"testing"

	"repro/rats"
)

func TestParseFlowSolverRoundTrip(t *testing.T) {
	for _, fs := range []rats.FlowSolver{rats.FlowNet, rats.MaxMinReference} {
		got, err := rats.ParseFlowSolver(fs.String())
		if err != nil || got != fs {
			t.Errorf("ParseFlowSolver(%q) = %v, %v; want %v", fs.String(), got, err, fs)
		}
	}
	for _, alias := range []string{"FLOWNET", " maxmin ", "max-min", "reference"} {
		if _, err := rats.ParseFlowSolver(alias); err != nil {
			t.Errorf("ParseFlowSolver(%q) unexpectedly failed: %v", alias, err)
		}
	}
	if _, err := rats.ParseFlowSolver("simgrid"); err == nil {
		t.Error("ParseFlowSolver should reject unknown names")
	}
	if rats.FlowSolver(99).String() != "FlowSolver(99)" {
		t.Error("out-of-range FlowSolver should render as FlowSolver(n)")
	}
}

// TestFlowSolversAgreeEndToEnd schedules the same workloads under both
// replay engines: the incremental flownet solver must reproduce the
// reference engine's makespans and traffic accounting (rates are equal up
// to floating-point accumulation order).
func TestFlowSolversAgreeEndToEnd(t *testing.T) {
	dags := func() []*rats.DAG {
		return []*rats.DAG{
			rats.FFT(8, 3),
			rats.Strassen(11),
			rats.Random(rats.RandomSpec{N: 60, Width: 0.6, Density: 0.5, Regularity: 0.8, Seed: 5, Layered: true}),
		}
	}
	for _, cluster := range []*rats.Cluster{rats.Grillon(), rats.Grelon()} {
		ref := rats.New(rats.WithCluster(cluster), rats.WithStrategy(rats.TimeCost),
			rats.WithFlowSolver(rats.MaxMinReference))
		inc := rats.New(rats.WithCluster(cluster), rats.WithStrategy(rats.TimeCost),
			rats.WithFlowSolver(rats.FlowNet))
		if inc.FlowSolver() != rats.FlowNet || ref.FlowSolver() != rats.MaxMinReference {
			t.Fatal("FlowSolver accessor does not reflect the option")
		}
		refRes, err := ref.ScheduleAll(nil, dags())
		if err != nil {
			t.Fatal(err)
		}
		incRes, err := inc.ScheduleAll(nil, dags())
		if err != nil {
			t.Fatal(err)
		}
		for i := range refRes {
			a, b := refRes[i].Makespan, incRes[i].Makespan
			if math.Abs(a-b) > 1e-9*math.Max(a, 1) {
				t.Errorf("%s %s: makespan %g (flownet) vs %g (maxmin)",
					cluster.Name(), incRes[i].DAGName, b, a)
			}
			if refRes[i].FlowCount != incRes[i].FlowCount || refRes[i].RemoteBytes != incRes[i].RemoteBytes {
				t.Errorf("%s %s: traffic accounting diverged between solvers",
					cluster.Name(), incRes[i].DAGName)
			}
		}
	}
}
