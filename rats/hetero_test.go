package rats

import (
	"math"
	"strings"
	"testing"
)

func TestHeteroClusterPresets(t *testing.T) {
	for _, tc := range []struct {
		c     *Cluster
		name  string
		procs int
	}{
		{GrelonHet(), "grelon-het", 120},
		{Big512Het(), "big512-het", 512},
	} {
		if tc.c.Name() != tc.name || tc.c.Procs() != tc.procs {
			t.Errorf("preset %s: got (%s, %d)", tc.name, tc.c.Name(), tc.c.Procs())
		}
		if !tc.c.Hetero() {
			t.Errorf("%s: Hetero() = false", tc.name)
		}
		byName, err := ClusterByName(tc.name)
		if err != nil || byName.Procs() != tc.procs {
			t.Errorf("ClusterByName(%s) = %v, %v", tc.name, byName, err)
		}
		// 2-tier speed mix surfaces through the accessor.
		if tc.c.NodeSpeed(0) != tc.c.SpeedGFlops() {
			t.Errorf("%s: node 0 not at full speed", tc.name)
		}
		if tc.c.NodeSpeed(tc.procs-1) != tc.c.SpeedGFlops()/2 {
			t.Errorf("%s: last node not at half speed", tc.name)
		}
	}
	names := strings.Join(ClusterNames(), ",")
	for _, want := range []string{"grelon-het", "big512-het"} {
		if !strings.Contains(names, want) {
			t.Errorf("ClusterNames() = %s, missing %s", names, want)
		}
	}
	if Grillon().Hetero() {
		t.Error("grillon must be uniform")
	}
}

func TestNewClusterVectorValidation(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	speeds := func(n int, v float64) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = v
		}
		return s
	}
	bad := []struct {
		name string
		spec ClusterSpec
	}{
		{"speed vector too short", ClusterSpec{Procs: 8, SpeedGFlops: 2, NodeSpeeds: speeds(5, 2)}},
		{"speed vector too long", ClusterSpec{Procs: 8, SpeedGFlops: 2, NodeSpeeds: speeds(9, 2)}},
		{"zero speed entry", ClusterSpec{Procs: 3, SpeedGFlops: 2, NodeSpeeds: []float64{2, 0, 2}}},
		{"negative speed entry", ClusterSpec{Procs: 3, SpeedGFlops: 2, NodeSpeeds: []float64{2, -2, 2}}},
		{"NaN speed entry", ClusterSpec{Procs: 3, SpeedGFlops: 2, NodeSpeeds: []float64{2, nan, 2}}},
		{"Inf speed entry", ClusterSpec{Procs: 3, SpeedGFlops: 2, NodeSpeeds: []float64{2, inf, 2}}},
		{"node bandwidths wrong length", ClusterSpec{Procs: 4, SpeedGFlops: 2, NodeBandwidths: speeds(3, 1e9)}},
		{"zero node bandwidth", ClusterSpec{Procs: 2, SpeedGFlops: 2, NodeBandwidths: []float64{1e9, 0}}},
		{"NaN node bandwidth", ClusterSpec{Procs: 2, SpeedGFlops: 2, NodeBandwidths: []float64{nan, 1e9}}},
		{"Inf node bandwidth", ClusterSpec{Procs: 2, SpeedGFlops: 2, NodeBandwidths: []float64{inf, 1e9}}},
		{"uplinks on flat cluster", ClusterSpec{Procs: 8, SpeedGFlops: 2, UplinkBandwidths: []float64{1e9}}},
		{"uplinks wrong count", ClusterSpec{Procs: 8, SpeedGFlops: 2, CabinetSize: 4, UplinkBandwidths: []float64{1e9}}},
		{"negative uplink bandwidth", ClusterSpec{Procs: 8, SpeedGFlops: 2, CabinetSize: 4, UplinkBandwidths: []float64{1e9, -1e9}}},
	}
	for _, tc := range bad {
		if _, err := NewCluster(tc.spec); err == nil {
			t.Errorf("%s: NewCluster succeeded, want error", tc.name)
		}
	}

	// A well-formed heterogeneous spec is accepted and surfaces its vectors.
	c, err := NewCluster(ClusterSpec{
		Procs: 8, SpeedGFlops: 4, CabinetSize: 4,
		NodeSpeeds:       []float64{4, 4, 4, 4, 2, 2, 2, 2},
		NodeBandwidths:   speeds(8, 1e9),
		UplinkBandwidths: []float64{1e10, 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Hetero() || c.NodeSpeed(0) != 4 || c.NodeSpeed(7) != 2 {
		t.Errorf("hetero spec not honoured: hetero=%v speeds=(%g, %g)",
			c.Hetero(), c.NodeSpeed(0), c.NodeSpeed(7))
	}

	// A vector-only spec may omit the scalar speed; the baseline is seeded
	// from the vector.
	c, err = NewCluster(ClusterSpec{Procs: 3, NodeSpeeds: []float64{5, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if c.SpeedGFlops() != 5 || c.NodeSpeed(1) != 3 {
		t.Errorf("vector-only spec: scalar = %g, node 1 = %g", c.SpeedGFlops(), c.NodeSpeed(1))
	}
}

// TestHeteroSchedule drives the full facade on a heterogeneous preset:
// every strategy must produce a valid result, and the simulated makespan
// must exceed what the same DAG achieves on the uniform parent cluster —
// half the nodes are half as fast, so the machine cannot be faster.
func TestHeteroSchedule(t *testing.T) {
	d := FFT(8, 7)
	var uniform float64
	for _, tc := range []struct {
		cl *Cluster
	}{{Grelon()}, {GrelonHet()}} {
		for _, st := range []Strategy{Baseline, Delta, TimeCost} {
			res, err := New(WithCluster(tc.cl), WithStrategy(st)).Schedule(d)
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.cl.Name(), st, err)
			}
			if res.Makespan <= 0 || math.IsNaN(res.Makespan) {
				t.Fatalf("%s/%v: makespan = %g", tc.cl.Name(), st, res.Makespan)
			}
			if st == Baseline {
				if tc.cl.Hetero() {
					if res.Makespan < uniform {
						t.Errorf("heterogeneous makespan %g beats uniform %g — slow tier ignored",
							res.Makespan, uniform)
					}
				} else {
					uniform = res.Makespan
				}
			}
		}
	}
}
