package rats

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/redist"
)

// TestProfileDefaults pins the profile resolution semantics: the zero
// configuration runs ProfileFast with AlignmentAuto, WithProfile
// (ProfileReference) restores the exact pipeline, and an explicit
// WithAlignment always wins over the profile's alignment while the
// profile keeps the remaining knobs.
func TestProfileDefaults(t *testing.T) {
	s := New()
	if s.Profile() != ProfileFast {
		t.Errorf("default profile = %v, want fast", s.Profile())
	}
	if s.Alignment() != AlignmentAuto {
		t.Errorf("fast-profile alignment = %v, want auto", s.Alignment())
	}
	if s.mapOpts.Align != redist.AlignAuto || s.mapOpts.AlignCap == 0 ||
		s.simOpts.ScratchThreshold == 0 {
		t.Errorf("fast profile left knobs unset: align %v cap %d scratch %d",
			s.mapOpts.Align, s.mapOpts.AlignCap, s.simOpts.ScratchThreshold)
	}

	ref := New(WithProfile(ProfileReference))
	if ref.Profile() != ProfileReference || ref.Alignment() != AlignmentHungarian {
		t.Errorf("reference profile = %v/%v, want reference/hungarian",
			ref.Profile(), ref.Alignment())
	}
	if ref.mapOpts.Align != redist.AlignHungarian || ref.mapOpts.AlignCap != 0 ||
		ref.mapOpts.MemoEps != 0 || ref.simOpts.ScratchThreshold != 0 {
		t.Errorf("reference profile is not the exact pipeline: %+v", ref.mapOpts)
	}

	// Explicit alignment beats the fast profile's auto, in either option
	// order; the profile's other knobs stay.
	for _, opts := range [][]Option{
		{WithAlignment(AlignmentGreedy)},
		{WithAlignment(AlignmentGreedy), WithProfile(ProfileFast)},
		{WithProfile(ProfileFast), WithAlignment(AlignmentGreedy)},
	} {
		o := New(opts...)
		if o.Alignment() != AlignmentGreedy || o.mapOpts.Align != redist.AlignGreedy {
			t.Errorf("opts %d: alignment = %v, want explicit greedy", len(opts), o.Alignment())
		}
		if o.simOpts.ScratchThreshold == 0 {
			t.Errorf("explicit alignment dropped the profile's scratch threshold")
		}
	}

	// Out-of-range profiles are configuration errors, surfaced lazily.
	if _, err := New(WithProfile(Profile(99))).Schedule(FFT(4, 1)); err == nil {
		t.Errorf("Profile(99) accepted")
	}
}

// TestParseProfileRoundTrip pins the name set both ways.
func TestParseProfileRoundTrip(t *testing.T) {
	for _, p := range []Profile{ProfileFast, ProfileReference} {
		got, err := ParseProfile(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProfile(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	if _, err := ParseProfile("exact"); err == nil {
		t.Errorf("ParseProfile accepted %q", "exact")
	}
	if got := Profile(7).String(); got != "Profile(7)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

// TestProfileFastMakespanBound is the randomized contract test: across
// random and FFT workloads on flat, hierarchical and heterogeneous
// clusters, the fast profile's simulated makespan stays within 0.5% of
// the reference profile's. The reference stays the permanent oracle; this
// bound is what licenses fast as the default.
func TestProfileFastMakespanBound(t *testing.T) {
	clusters := []*Cluster{Grillon(), Grelon(), GrelonHet()}
	var dags []*DAG
	for seed := int64(1); seed <= 4; seed++ {
		dags = append(dags,
			Random(RandomSpec{N: 60, Width: 0.8, Density: 0.5, Regularity: 0.8, Seed: seed, Layered: true}),
			Random(RandomSpec{N: 40, Width: 0.5, Density: 0.3, Regularity: 0.6, Seed: seed}),
		)
	}
	dags = append(dags, FFT(16, 9), Strassen(3))

	for _, cl := range clusters {
		for _, st := range []Strategy{Baseline, Delta, TimeCost} {
			fast := New(WithCluster(cl), WithStrategy(st))
			ref := New(WithCluster(cl), WithStrategy(st), WithProfile(ProfileReference))
			for i, d := range dags {
				fr, err := fast.Schedule(d)
				if err != nil {
					t.Fatalf("%s/%v dag %d (fast): %v", cl.Name(), st, i, err)
				}
				rr, err := ref.Schedule(d)
				if err != nil {
					t.Fatalf("%s/%v dag %d (reference): %v", cl.Name(), st, i, err)
				}
				delta := 100 * math.Abs(fr.Makespan-rr.Makespan) / rr.Makespan
				if delta > 0.5 {
					t.Errorf("%s/%v dag %d: fast makespan %g vs reference %g (Δ %.3f%%, bound 0.5%%)",
						cl.Name(), st, i, fr.Makespan, rr.Makespan, delta)
				}
			}
		}
	}
}

// FuzzParseProfile: every parse that succeeds must round-trip through
// String back to the same Profile, and the two canonical names must
// always parse.
func FuzzParseProfile(f *testing.F) {
	for _, s := range []string{"fast", "reference", "FAST", " reference ", "", "exact", "Profile(1)"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		p, err := ParseProfile(name)
		if err != nil {
			return
		}
		back, err := ParseProfile(p.String())
		if err != nil || back != p {
			t.Fatalf("ParseProfile(%q) = %v but String round-trip gives %v, %v", name, p, back, err)
		}
	})
}

// FuzzParseAlignment mirrors FuzzParseProfile for the alignment names.
func FuzzParseAlignment(f *testing.F) {
	for _, s := range []string{"hungarian", "greedy", "none", "auto", "AUTO ", "", "exact"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		m, err := ParseAlignment(name)
		if err != nil {
			return
		}
		back, err := ParseAlignment(m.String())
		if err != nil || back != m {
			t.Fatalf("ParseAlignment(%q) = %v but String round-trip gives %v, %v", name, m, back, err)
		}
	})
}

// ExampleParseProfile documents the wire names.
func ExampleParseProfile() {
	p, _ := ParseProfile("reference")
	fmt.Println(p, New().Profile())
	// Output: reference fast
}
