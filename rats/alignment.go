package rats

import (
	"fmt"
	"strings"

	"repro/internal/redist"
)

// AlignmentMode selects the receiver rank-order optimization applied when
// a redistribution's sender and receiver processor sets intersect (§II-A
// self-communication maximization): the receiver rank order is a free
// variable, and aligning it keeps more of the redistributed bytes on-node.
type AlignmentMode int

const (
	// AlignmentHungarian maximizes the locally-kept bytes optimally with a
	// sparse Hungarian assignment over the banded benefit structure. The
	// default (and the zero value).
	AlignmentHungarian AlignmentMode = iota
	// AlignmentGreedy assigns shared processors to their best free
	// receiver rank in decreasing-benefit order — near-optimal in practice
	// at a fraction of the cost.
	AlignmentGreedy
	// AlignmentNone keeps receiver rank orders unchanged (the ablation
	// baseline: redistributions pay for bytes alignment would have kept
	// local).
	AlignmentNone
	// AlignmentAuto runs the exact Hungarian assignment for receiver
	// counts up to an internal cap and greedy above it, bounding the
	// mapping cost of very wide allocations.
	AlignmentAuto
)

// String implements fmt.Stringer; the returned name round-trips through
// ParseAlignment. Out-of-range values render as "AlignmentMode(n)".
func (m AlignmentMode) String() string {
	switch m {
	case AlignmentHungarian:
		return "hungarian"
	case AlignmentGreedy:
		return "greedy"
	case AlignmentNone:
		return "none"
	case AlignmentAuto:
		return "auto"
	}
	return fmt.Sprintf("AlignmentMode(%d)", int(m))
}

// ParseAlignment converts an alignment name (case-insensitive:
// "hungarian", "greedy", "none", "auto") into an AlignmentMode.
func ParseAlignment(name string) (AlignmentMode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "hungarian":
		return AlignmentHungarian, nil
	case "greedy":
		return AlignmentGreedy, nil
	case "none":
		return AlignmentNone, nil
	case "auto":
		return AlignmentAuto, nil
	}
	return 0, fmt.Errorf("rats: unknown alignment mode %q (want hungarian, greedy, none or auto)", name)
}

// redistAlign maps the public AlignmentMode onto the internal enum.
func (m AlignmentMode) redistAlign() (redist.AlignMode, error) {
	switch m {
	case AlignmentHungarian:
		return redist.AlignHungarian, nil
	case AlignmentGreedy:
		return redist.AlignGreedy, nil
	case AlignmentNone:
		return redist.AlignNone, nil
	case AlignmentAuto:
		return redist.AlignAuto, nil
	}
	return 0, fmt.Errorf("rats: invalid alignment mode %v", m)
}

// WithAlignment selects the receiver rank-order alignment explicitly,
// overriding the profile's choice (ProfileFast defaults to AlignmentAuto,
// ProfileReference to AlignmentHungarian). Out-of-range values are
// configuration errors surfaced by the first Schedule or ScheduleAll call.
func WithAlignment(m AlignmentMode) Option {
	return func(s *Scheduler) { s.alignment, s.alignmentSet = m, true }
}

// Alignment returns the configured alignment mode.
func (s *Scheduler) Alignment() AlignmentMode { return s.alignment }
