package rats_test

import (
	"fmt"

	"repro/rats"
)

// Example reproduces the quickstart (examples/quickstart, README.md): the
// paper's Figure 1 situation, where close-but-different first-step
// allocations force a redistribution that RATS removes during mapping.
// The printed comparison is the package's golden output: it locks the
// facade to the reproduction's exact makespans and wire traffic.
func Example() {
	pipeline := rats.NewDAG()
	for _, name := range []string{"T1", "T2", "T3"} {
		pipeline.Task(name, rats.TaskSpec{Elements: 40e6, OpsFactor: 200, Alpha: 0.05})
	}
	pipeline.Edge("T1", "T2").Edge("T2", "T3")

	for _, variant := range []struct {
		name     string
		strategy rats.Strategy
	}{
		{"HCPA baseline", rats.Baseline},
		{"RATS delta", rats.Delta},
		{"RATS time-cost", rats.TimeCost},
	} {
		s := rats.New(
			rats.WithCluster(rats.Grillon()),
			rats.WithStrategy(variant.strategy),
			rats.WithFixedAllocation(8, 10, 9),
		)
		res, err := s.Schedule(pipeline)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-15s allocations %v  makespan %.3f s  wire traffic %.1f MB\n",
			variant.name, res.Allocations(), res.Makespan, res.RemoteBytes/1e6)
	}
	// Output:
	// HCPA baseline   allocations [8 10 9]  makespan 1.187 s  wire traffic 80.0 MB
	// RATS delta      allocations [8 10 10]  makespan 1.126 s  wire traffic 40.0 MB
	// RATS time-cost  allocations [8 10 10]  makespan 1.126 s  wire traffic 40.0 MB
}

// ExampleScheduler_ScheduleAll schedules a batch of generator workloads
// concurrently and reports one line per result.
func ExampleScheduler_ScheduleAll() {
	dags := []*rats.DAG{
		rats.FFT(4, 42),
		rats.Strassen(7),
		rats.Random(rats.RandomSpec{N: 25, Width: 0.5, Density: 0.2, Regularity: 0.8, Seed: 1, Layered: true}),
	}
	s := rats.New(rats.WithCluster(rats.Chti()), rats.WithStrategy(rats.TimeCost))
	results, err := s.ScheduleAll(nil, dags)
	if err != nil {
		panic(err)
	}
	for _, res := range results {
		fmt.Printf("%-25s %2d tasks  makespan %7.3f s\n",
			res.DAGName, len(res.Placements), res.Makespan)
	}
	// Output:
	// fft(k=4,seed=42)          15 tasks  makespan   5.253 s
	// strassen(seed=7)          25 tasks  makespan  13.801 s
	// layered(n=25,seed=1)      25 tasks  makespan  12.205 s
}
