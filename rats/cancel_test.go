package rats

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestScheduleAllCancelMidBatch cancels the context while a large batch is
// in flight and checks the documented contract: results for DAGs that
// completed before the cancellation are returned, the cancellation error
// is surfaced, and the worker pool winds down without leaking goroutines.
// Run under -race by CI.
func TestScheduleAllCancelMidBatch(t *testing.T) {
	before := runtime.NumGoroutine()

	// A batch large enough that cancellation after a few completions is
	// guaranteed to land mid-batch even on a slow racy runner.
	var dags []*DAG
	for seed := int64(0); seed < 128; seed++ {
		dags = append(dags, Random(RandomSpec{
			N: 40, Width: 0.5, Density: 0.4, Regularity: 0.8, Layered: true, Seed: seed,
		}))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := New(WithCluster(Grelon()), WithStrategy(TimeCost), WithWorkers(2))

	go func() {
		// Let a few DAGs complete, then pull the plug.
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	results, err := s.ScheduleAll(ctx, dags)

	if len(results) != len(dags) {
		t.Fatalf("got %d result slots, want %d", len(results), len(dags))
	}
	completed, skipped := 0, 0
	for i, r := range results {
		if r == nil {
			skipped++
			continue
		}
		completed++
		if r.Makespan <= 0 || len(r.Placements) != dags[i].TaskCount() {
			t.Fatalf("dag %d: completed result is malformed: %+v", i, r)
		}
	}
	t.Logf("completed %d, skipped %d before cancellation", completed, skipped)
	if skipped > 0 {
		// The cancellation landed mid-batch: the error must surface it.
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("results skipped but error is %v, want context.Canceled", err)
		}
	} else if err != nil {
		t.Fatalf("all DAGs completed yet ScheduleAll failed: %v", err)
	}
	if skipped == 0 {
		t.Skip("batch finished before the cancellation; nothing mid-batch to observe")
	}

	// No goroutine leak: the pool must fully wind down. Allow the runtime
	// a moment to retire worker goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
