package rats

import (
	"fmt"
	"strings"

	"repro/internal/alloc"
	"repro/internal/core"
)

// Strategy selects the mapping behaviour of the second scheduling step.
type Strategy int

const (
	// Baseline is the HCPA mapping: allocations are never modified and
	// every task is placed on the earliest-available processors.
	Baseline Strategy = iota
	// Delta packs or stretches a task onto a predecessor's processor set
	// when the allocation difference lies within the bounds configured by
	// WithDeltaBounds (§III of the paper, "delta").
	Delta
	// TimeCost stretches when the work ratio ρ stays above the threshold
	// configured by WithMinRho and packs when the estimated finish time
	// does not degrade (§III, "time-cost").
	TimeCost
)

// String implements fmt.Stringer; the returned name round-trips through
// ParseStrategy. Out-of-range values render as "Strategy(n)".
func (s Strategy) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case Delta:
		return "delta"
	case TimeCost:
		return "time-cost"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy converts a strategy name — as printed by Strategy.String,
// plus the aliases used by the paper and the CLIs — into a Strategy.
// Matching is case-insensitive: "baseline", "hcpa" and "none" map to
// Baseline; "delta" to Delta; "time-cost", "timecost" and "tc" to TimeCost.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "baseline", "hcpa", "none":
		return Baseline, nil
	case "delta":
		return Delta, nil
	case "time-cost", "timecost", "tc":
		return TimeCost, nil
	}
	return 0, fmt.Errorf("rats: unknown strategy %q (want baseline, delta or time-cost)", name)
}

// coreStrategy maps the public Strategy onto the internal engine's enum.
func (s Strategy) coreStrategy() (core.Strategy, error) {
	switch s {
	case Baseline:
		return core.StrategyNone, nil
	case Delta:
		return core.StrategyDelta, nil
	case TimeCost:
		return core.StrategyTimeCost, nil
	}
	return 0, fmt.Errorf("rats: invalid strategy %v", s)
}

// Allocator selects the first-step processor allocation procedure.
type Allocator int

const (
	// HCPA is the paper's default: CPA with the average-area correction
	// that keeps allocations moderate on large clusters. The zero value,
	// so an unconfigured Scheduler allocates as the paper does.
	HCPA Allocator = iota
	// CPA is the original Radulescu & van Gemund procedure.
	CPA
	// MCPA additionally constrains each precedence level to fit on the
	// cluster; the paper notes it suits very regular DAGs.
	MCPA
)

// String implements fmt.Stringer; the returned name round-trips through
// ParseAllocator. Out-of-range values render as "Allocator(n)".
func (a Allocator) String() string {
	switch a {
	case HCPA:
		return "hcpa"
	case CPA:
		return "cpa"
	case MCPA:
		return "mcpa"
	}
	return fmt.Sprintf("Allocator(%d)", int(a))
}

// ParseAllocator converts an allocator name (case-insensitive: "cpa",
// "hcpa", "mcpa") into an Allocator.
func ParseAllocator(name string) (Allocator, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "hcpa":
		return HCPA, nil
	case "cpa":
		return CPA, nil
	case "mcpa":
		return MCPA, nil
	}
	return 0, fmt.Errorf("rats: unknown allocator %q (want cpa, hcpa or mcpa)", name)
}

// allocMethod maps the public Allocator onto the internal enum.
func (a Allocator) allocMethod() (alloc.Method, error) {
	switch a {
	case HCPA:
		return alloc.HCPA, nil
	case CPA:
		return alloc.CPA, nil
	case MCPA:
		return alloc.MCPA, nil
	}
	return 0, fmt.Errorf("rats: invalid allocator %v", a)
}
