package rats

import (
	"strings"
	"testing"
)

// TestAlignmentRoundTrip: every defined mode's name parses back to itself,
// case-insensitively.
func TestAlignmentRoundTrip(t *testing.T) {
	for _, m := range []AlignmentMode{AlignmentHungarian, AlignmentGreedy, AlignmentNone, AlignmentAuto} {
		got, err := ParseAlignment(m.String())
		if err != nil || got != m {
			t.Errorf("ParseAlignment(%q) = (%v, %v), want (%v, nil)", m.String(), got, err, m)
		}
		upper, err := ParseAlignment("  " + strings.ToUpper(m.String()) + " ")
		if err != nil || upper != m {
			t.Errorf("ParseAlignment upper-case round-trip failed for %v", m)
		}
	}
	if _, err := ParseAlignment("optimal"); err == nil {
		t.Error("ParseAlignment must reject unknown names")
	}
	if s := AlignmentMode(42).String(); s != "AlignmentMode(42)" {
		t.Errorf("out-of-range String() = %q", s)
	}
}

// TestWithAlignmentValidation: out-of-range modes are configuration errors
// surfaced by Schedule, like every other invalid option.
func TestWithAlignmentValidation(t *testing.T) {
	s := New(WithAlignment(AlignmentMode(42)))
	if _, err := s.Schedule(chainDAG(t)); err == nil {
		t.Fatal("Schedule must surface an invalid alignment mode")
	}
	ok := New(WithAlignment(AlignmentAuto))
	if ok.Alignment() != AlignmentAuto {
		t.Fatalf("Alignment() = %v, want auto", ok.Alignment())
	}
	if _, err := ok.Schedule(chainDAG(t)); err != nil {
		t.Fatalf("auto alignment schedule failed: %v", err)
	}
}

// TestAlignmentModesSchedule runs the same DAG under every mode: all must
// produce valid results; hungarian and auto coincide on small clusters
// (auto's exact cap is far above any paper-scale allocation), and none
// must never keep more bytes local than hungarian.
func TestAlignmentModesSchedule(t *testing.T) {
	d := Random(RandomSpec{N: 40, Width: 0.6, Density: 0.5, Regularity: 0.8, Layered: true, Seed: 5})
	results := map[AlignmentMode]*Result{}
	for _, m := range []AlignmentMode{AlignmentHungarian, AlignmentGreedy, AlignmentNone, AlignmentAuto} {
		s := New(WithStrategy(TimeCost), WithAlignment(m))
		res, err := s.Schedule(d)
		if err != nil {
			t.Fatalf("mode %v: %v", m, err)
		}
		results[m] = res
	}
	if h, a := results[AlignmentHungarian], results[AlignmentAuto]; h.Makespan != a.Makespan ||
		h.LocalBytes != a.LocalBytes {
		t.Errorf("auto and hungarian diverged below the exact cap: makespan %g vs %g, local %g vs %g",
			a.Makespan, h.Makespan, a.LocalBytes, h.LocalBytes)
	}
	if results[AlignmentNone].LocalBytes > results[AlignmentHungarian].LocalBytes+1e-9 {
		t.Errorf("disabled alignment kept more bytes local (%g) than hungarian (%g)",
			results[AlignmentNone].LocalBytes, results[AlignmentHungarian].LocalBytes)
	}
}
