package simdag

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// Failure injection for the replay layer: malformed schedules must be
// rejected with diagnosable errors before any simulation runs.

func TestRejectsTruncatedSchedule(t *testing.T) {
	cl := platform.Chti()
	g := dag.NewGraph(2, 1)
	g.AddTask(dag.Task{Name: "a", M: 5e6, A: 100})
	g.AddTask(dag.Task{Name: "b", M: 5e6, A: 100})
	g.AddEdge(0, 1, 5e6)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	s := &core.Schedule{
		Alloc: []int{1}, Procs: [][]int{{0}}, Order: []int{0},
		EstStart: []float64{0}, EstFinish: []float64{1},
	}
	_, err := Execute(g, costs, cl, s)
	if err == nil || !strings.Contains(err.Error(), "sized") {
		t.Fatalf("want sizing error, got %v", err)
	}
}

func TestRejectsPrecedenceViolatingOrder(t *testing.T) {
	cl := platform.Chti()
	g := dag.NewGraph(2, 1)
	g.AddTask(dag.Task{Name: "a", M: 5e6, A: 100})
	g.AddTask(dag.Task{Name: "b", M: 5e6, A: 100})
	g.AddEdge(0, 1, 5e6)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	s := &core.Schedule{
		Alloc: []int{1, 1}, Procs: [][]int{{0}, {1}}, Order: []int{1, 0},
		EstStart: make([]float64, 2), EstFinish: make([]float64, 2),
	}
	if _, err := Execute(g, costs, cl, s); err == nil {
		t.Fatal("consumer mapped before producer must be rejected")
	}
}

func TestCrossMappedChainsDoNotDeadlock(t *testing.T) {
	// Two independent chains A1→A2 and B1→B2 mapped crosswise onto two
	// processors (A1,B2 on proc 0; B1,A2 on proc 1) with an assignment
	// order that makes each processor wait for the other chain's producer.
	// The per-processor FIFO + precedence-compatible total order must
	// resolve this without deadlock.
	cl := platform.Chti()
	g := dag.NewGraph(4, 2)
	for i := 0; i < 4; i++ {
		g.AddTask(dag.Task{Name: "t", M: 5e6, A: 100, Alpha: 0})
	}
	g.AddEdge(0, 1, 5e6) // A1 → A2
	g.AddEdge(2, 3, 5e6) // B1 → B2
	g.Normalize()
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	n := g.N()
	s := &core.Schedule{
		Alloc:    make([]int, n),
		Procs:    make([][]int, n),
		Order:    []int{4, 0, 2, 1, 3, 5}, // virtual entry, A1, B1, A2, B2, virtual exit
		EstStart: make([]float64, n), EstFinish: make([]float64, n),
	}
	s.Procs[0], s.Procs[1] = []int{0}, []int{1} // A-chain crosses procs
	s.Procs[2], s.Procs[3] = []int{1}, []int{0} // B-chain crosses back
	for i := 0; i < 4; i++ {
		s.Alloc[i] = 1
	}
	r, err := Execute(g, costs, cl, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan <= 0 {
		t.Fatal("replay produced empty makespan")
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	g := dag.NewGraph(1, 0)
	g.AddVirtual("v")
	s := &core.Schedule{Alloc: []int{0}, Procs: [][]int{nil}, Order: []int{0},
		EstStart: []float64{0}, EstFinish: []float64{0}}
	r := &Result{Start: []float64{0}, Finish: []float64{0}}
	out := Gantt(g, s, r, 40)
	if !strings.Contains(out, "empty") {
		t.Errorf("empty schedule Gantt = %q", out)
	}
}
