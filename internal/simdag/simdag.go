// Package simdag replays a static schedule on a simulated cluster and
// measures its actual makespan under network contention.
//
// This is the evaluation half of the paper's methodology (§IV): the
// scheduling algorithms decide *where* and *in which order* tasks run,
// using contention-free estimates; the replay then executes the schedule
// in the flow-level simulator of internal/sim, where every redistribution
// becomes a set of point-to-point flows sharing link bandwidth under
// max-min fairness. Start dates therefore shift whenever redistributions
// contend, exactly the effect RATS is designed to mitigate.
//
// Replay semantics:
//
//   - Each processor executes its tasks in schedule (mapping) order.
//   - A task starts once (a) it is at the head of the queue of every
//     processor of its set, and (b) the redistribution of every in-edge
//     has completed.
//   - The redistribution of an edge starts as soon as the producer task
//     finishes (communication overlaps unrelated computation: it occupies
//     NICs and links, not CPUs).
//   - Intra-node flows and zero-byte (virtual) edges complete instantly.
//
// Because tasks are mapped in a precedence-compatible total order, the
// per-processor FIFO discipline cannot deadlock.
package simdag

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/redist"
	"repro/internal/sim"
)

// Result reports the outcome of one replay.
type Result struct {
	Start    []float64 // actual start time of each task
	Finish   []float64 // actual finish time of each task
	Makespan float64   // finish time of the exit task

	RemoteBytes float64 // bytes that crossed the network
	LocalBytes  float64 // bytes kept on-node by redistributions
	FlowCount   int     // point-to-point wire flows simulated
	EdgeFinish  []float64
}

// Options configures a replay.
type Options struct {
	// Solver selects the fluid-network engine: the incremental flownet
	// solver (core.FlowSolverNet, zero value) or the from-scratch
	// reference (core.FlowSolverMaxMin).
	Solver core.FlowSolver
}

// Execute replays schedule s of graph g on cluster cl and returns the
// measured times. It returns an error if the schedule is structurally
// invalid or the replay fails to complete every task (which would indicate
// a scheduling bug rather than a property of the workload).
func Execute(g *dag.Graph, costs *moldable.Costs, cl *platform.Cluster, s *core.Schedule) (*Result, error) {
	return ExecuteOpts(g, costs, cl, s, Options{})
}

// ExecuteOpts is Execute with an explicit replay configuration.
func ExecuteOpts(g *dag.Graph, costs *moldable.Costs, cl *platform.Cluster, s *core.Schedule, opts Options) (*Result, error) {
	if err := s.Validate(g, cl); err != nil {
		return nil, err
	}
	n := g.N()
	res := &Result{
		Start:      make([]float64, n),
		Finish:     make([]float64, n),
		EdgeFinish: make([]float64, len(g.Edges)),
	}
	eng := sim.NewWithSolver(cl.LinkCapacities(), opts.Solver)

	// Per-processor task queues in mapping order.
	queues := make([][]int, cl.P)
	for _, t := range s.Order {
		for _, p := range s.Procs[t] {
			queues[p] = append(queues[p], t)
		}
	}
	cursor := make([]int, cl.P)

	edgesLeft := make([]int, n)
	for t := 0; t < n; t++ {
		edgesLeft[t] = len(g.In(t))
	}
	started := make([]bool, n)
	finished := make([]bool, n)
	nFinished := 0

	var tryStart func(t int)
	var onFinish func(t int)

	atHead := func(t int) bool {
		for _, p := range s.Procs[t] {
			q := queues[p]
			if cursor[p] >= len(q) || q[cursor[p]] != t {
				return false
			}
		}
		return true
	}

	startRedist := func(e dag.Edge) {
		to := e.To
		if e.Bytes <= 0 || g.Tasks[e.From].Virtual || g.Tasks[to].Virtual ||
			len(s.Procs[e.From]) == 0 || len(s.Procs[to]) == 0 {
			res.EdgeFinish[e.ID] = eng.Now()
			edgesLeft[to]--
			tryStart(to)
			return
		}
		flows := redist.Flows(e.Bytes, s.Procs[e.From], s.Procs[to])
		pending := 0
		for _, f := range flows {
			if f.SrcProc == f.DstProc {
				res.LocalBytes += f.Bytes
				continue
			}
			pending++
		}
		if pending == 0 {
			res.EdgeFinish[e.ID] = eng.Now()
			edgesLeft[to]--
			tryStart(to)
			return
		}
		eid := e.ID
		remaining := pending
		for _, f := range flows {
			if f.SrcProc == f.DstProc {
				continue
			}
			links, lat := cl.Route(f.SrcProc, f.DstProc)
			rateCap := cl.EffectiveBandwidth(f.SrcProc, f.DstProc)
			res.RemoteBytes += f.Bytes
			res.FlowCount++
			eng.StartFlow(links, rateCap, lat, f.Bytes, func() {
				remaining--
				if remaining == 0 {
					res.EdgeFinish[eid] = eng.Now()
					edgesLeft[to]--
					tryStart(to)
				}
			})
		}
	}

	onFinish = func(t int) {
		res.Finish[t] = eng.Now()
		finished[t] = true
		nFinished++
		for _, p := range s.Procs[t] {
			cursor[p]++
			if cursor[p] < len(queues[p]) {
				tryStart(queues[p][cursor[p]])
			}
		}
		for _, eid := range g.Out(t) {
			startRedist(g.Edges[eid])
		}
	}

	tryStart = func(t int) {
		if started[t] || edgesLeft[t] > 0 || !atHead(t) {
			return
		}
		started[t] = true
		res.Start[t] = eng.Now()
		dur := 0.0
		if !g.Tasks[t].Virtual {
			dur = costs.Time(t, len(s.Procs[t]))
		}
		eng.After(dur, func() { onFinish(t) })
	}

	// Seed: any task with no in-edges can start (typically the entry).
	for t := 0; t < n; t++ {
		if edgesLeft[t] == 0 {
			tryStart(t)
		}
	}
	eng.Run()

	if nFinished != n {
		return nil, fmt.Errorf("simdag: replay stalled with %d/%d tasks finished", nFinished, n)
	}
	for t := 0; t < n; t++ {
		if res.Finish[t] > res.Makespan {
			res.Makespan = res.Finish[t]
		}
	}
	return res, nil
}

// Gantt renders a plain-text Gantt chart of a replay (one line per
// processor), for the CLI and the examples. Width is the number of
// character cells used for the makespan.
func Gantt(g *dag.Graph, s *core.Schedule, r *Result, width int) string {
	if width <= 0 {
		width = 80
	}
	if r.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	// Build per-proc rows.
	nProcs := 0
	for _, ps := range s.Procs {
		for _, p := range ps {
			if p+1 > nProcs {
				nProcs = p + 1
			}
		}
	}
	rows := make([][]byte, nProcs)
	for i := range rows {
		rows[i] = make([]byte, width)
		for j := range rows[i] {
			rows[i][j] = '.'
		}
	}
	glyph := func(t int) byte {
		const alpha = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
		return alpha[t%len(alpha)]
	}
	for t := range g.Tasks {
		if g.Tasks[t].Virtual {
			continue
		}
		lo := int(r.Start[t] / r.Makespan * float64(width))
		hi := int(r.Finish[t] / r.Makespan * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for _, p := range s.Procs[t] {
			for x := lo; x < hi; x++ {
				rows[p][x] = glyph(t)
			}
		}
	}
	out := make([]byte, 0, nProcs*(width+8))
	for p, row := range rows {
		out = append(out, []byte(fmt.Sprintf("p%03d |", p))...)
		out = append(out, row...)
		out = append(out, '\n')
	}
	out = append(out, []byte(fmt.Sprintf("makespan = %.4g s\n", r.Makespan))...)
	return string(out)
}
