// Package simdag replays a static schedule on a simulated cluster and
// measures its actual makespan under network contention.
//
// This is the evaluation half of the paper's methodology (§IV): the
// scheduling algorithms decide *where* and *in which order* tasks run,
// using contention-free estimates; the replay then executes the schedule
// in the flow-level simulator of internal/sim, where every redistribution
// becomes a set of point-to-point flows sharing link bandwidth under
// max-min fairness. Start dates therefore shift whenever redistributions
// contend, exactly the effect RATS is designed to mitigate.
//
// Replay semantics:
//
//   - Each processor executes its tasks in schedule (mapping) order.
//   - A task starts once (a) it is at the head of the queue of every
//     processor of its set, and (b) the redistribution of every in-edge
//     has completed.
//   - The redistribution of an edge starts as soon as the producer task
//     finishes (communication overlaps unrelated computation: it occupies
//     NICs and links, not CPUs).
//   - Intra-node flows and zero-byte (virtual) edges complete instantly.
//
// Because tasks are mapped in a precedence-compatible total order, the
// per-processor FIFO discipline cannot deadlock.
package simdag

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/redist"
	"repro/internal/sim"
)

// Result reports the outcome of one replay.
type Result struct {
	Start    []float64 // actual start time of each task
	Finish   []float64 // actual finish time of each task
	Makespan float64   // finish time of the exit task

	RemoteBytes float64 // bytes that crossed the network
	LocalBytes  float64 // bytes kept on-node by redistributions
	FlowCount   int     // point-to-point wire flows simulated
	EdgeFinish  []float64

	// Counters snapshots the replay engine's observability counters:
	// flow-batch sizes and the rate solver's regime counts.
	Counters obs.Counters
}

// Options configures a replay.
type Options struct {
	// Solver selects the fluid-network engine: the incremental flownet
	// solver (core.FlowSolverNet, zero value) or the from-scratch
	// reference (core.FlowSolverMaxMin).
	Solver core.FlowSolver

	// ScratchThreshold overrides the flownet solver's small-population
	// scratch-solve cutoff (0 = flownet.DefaultScratchThreshold). Every
	// solve regime is exact, so this knob moves replay latency only —
	// simulated makespans are identical at any value. Ignored by the
	// maxmin reference solver.
	ScratchThreshold int
}

// Execute replays schedule s of graph g on cluster cl and returns the
// measured times. It returns an error if the schedule is structurally
// invalid or the replay fails to complete every task (which would indicate
// a scheduling bug rather than a property of the workload).
func Execute(g *dag.Graph, costs *moldable.Costs, cl *platform.Cluster, s *core.Schedule) (*Result, error) {
	return ExecuteOpts(g, costs, cl, s, Options{})
}

// ExecuteOpts is Execute with an explicit replay configuration.
func ExecuteOpts(g *dag.Graph, costs *moldable.Costs, cl *platform.Cluster, s *core.Schedule, opts Options) (*Result, error) {
	if err := s.Validate(g, cl); err != nil {
		return nil, err
	}
	n := g.N()
	rp := &replay{
		g: g, costs: costs, cl: cl, s: s,
		res: &Result{
			Start:      make([]float64, n),
			Finish:     make([]float64, n),
			EdgeFinish: make([]float64, len(g.Edges)),
		},
		eng:       sim.NewWithSolverThreshold(cl.LinkCapacities(), opts.Solver, opts.ScratchThreshold),
		queues:    make([][]int, cl.P),
		cursor:    make([]int, cl.P),
		edgesLeft: make([]int, n),
		started:   make([]bool, n),
	}
	res, eng := rp.res, rp.eng

	// Per-processor task queues in mapping order.
	for _, t := range s.Order {
		for _, p := range s.Procs[t] {
			rp.queues[p] = append(rp.queues[p], t)
		}
	}
	for t := 0; t < n; t++ {
		rp.edgesLeft[t] = len(g.In(t))
	}

	// Seed: any task with no in-edges can start (typically the entry).
	for t := 0; t < n; t++ {
		if rp.edgesLeft[t] == 0 {
			rp.tryStart(t)
		}
	}
	eng.Run()
	res.Counters = eng.Counters()

	if rp.nFinished != n {
		return nil, fmt.Errorf("simdag: replay stalled with %d/%d tasks finished", rp.nFinished, n)
	}
	for t := 0; t < n; t++ {
		if res.Finish[t] > res.Makespan {
			res.Makespan = res.Finish[t]
		}
	}
	return res, nil
}

// replay is the mutable state of one schedule replay. It exists so the
// event handlers are methods instead of a web of mutually recursive
// closures, and so the per-edge completion callbacks and per-flow route
// slices can be pooled: short replays (the FFT scenario classes) used to be
// bounded by this setup machinery — one closure per wire flow, one route
// slice per flow — rather than by rate solving.
type replay struct {
	g     *dag.Graph
	costs *moldable.Costs
	cl    *platform.Cluster
	s     *core.Schedule
	res   *Result
	eng   *sim.Engine

	queues    [][]int // per-processor task queues in mapping order
	cursor    []int
	edgesLeft []int
	started   []bool
	nFinished int

	waitPool []*edgeWait       // recycled edge-completion trackers
	slab     []platform.LinkID // route arena: flows slice one chunked backing array

	// Scratch for startRedist's batched flow launch, reused across edges:
	// the edge's wire-flow specs, their latencies (parallel slice), the
	// distinct latencies in first-appearance order, and the spec group
	// handed to one StartFlowBatch call.
	specBuf  []sim.FlowSpec
	latBuf   []float64
	lats     []float64
	groupBuf []sim.FlowSpec
}

// edgeWait tracks one in-flight redistribution: the pending wire-flow count
// of its edge, plus a prebuilt completion callback handed to every flow.
// Pooling the waits makes the per-flow callback allocation-free — the
// closure is created once per pool entry, not once per flow.
type edgeWait struct {
	rp        *replay
	remaining int
	eid, to   int
	cb        func()
}

func (rp *replay) getWait() *edgeWait {
	if k := len(rp.waitPool); k > 0 {
		w := rp.waitPool[k-1]
		rp.waitPool = rp.waitPool[:k-1]
		return w
	}
	w := &edgeWait{rp: rp}
	w.cb = w.flowDone
	return w
}

func (w *edgeWait) flowDone() {
	w.remaining--
	if w.remaining > 0 {
		return
	}
	rp, eid, to := w.rp, w.eid, w.to
	rp.waitPool = append(rp.waitPool, w) // all flows done: recycle before any restart
	rp.res.EdgeFinish[eid] = rp.eng.Now()
	rp.edgesLeft[to]--
	rp.tryStart(to)
}

// route returns a private route slice carved out of the replay's arena:
// one backing-array allocation per routeChunk links instead of one per
// flow. The sub-slices stay valid for the flows' whole lives (growing the
// arena swaps in a fresh chunk; old chunks are kept alive by their flows).
func (rp *replay) route(src, dst int) ([]platform.LinkID, float64) {
	const routeChunk = 1024
	if cap(rp.slab)-len(rp.slab) < 4 {
		rp.slab = make([]platform.LinkID, 0, routeChunk)
	}
	base := len(rp.slab)
	links, lat := rp.cl.AppendRoute(rp.slab, src, dst)
	rp.slab = links
	return links[base:len(links):len(links)], lat
}

func (rp *replay) atHead(t int) bool {
	for _, p := range rp.s.Procs[t] {
		q := rp.queues[p]
		if rp.cursor[p] >= len(q) || q[rp.cursor[p]] != t {
			return false
		}
	}
	return true
}

// startRedist expands one edge into wire flows. The banded block matrix is
// traversed directly (twice: once to count and account local bytes, once to
// start the flows) — with a validated schedule the processor lists are
// duplicate-free, so the (sender, receiver) pairs are distinct and the
// flow-merging map the old redist.Flows expansion carried was a no-op.
func (rp *replay) startRedist(e dag.Edge) {
	g, s, res, eng := rp.g, rp.s, rp.res, rp.eng
	to := e.To
	if e.Bytes <= 0 || g.Tasks[e.From].Virtual || g.Tasks[to].Virtual ||
		len(s.Procs[e.From]) == 0 || len(s.Procs[to]) == 0 {
		res.EdgeFinish[e.ID] = eng.Now()
		rp.edgesLeft[to]--
		rp.tryStart(to)
		return
	}
	senders, receivers := s.Procs[e.From], s.Procs[to]
	pending := 0
	local := 0.0
	redist.VisitBlocks(e.Bytes, len(senders), len(receivers), func(i, j int, v float64) {
		if senders[i] == receivers[j] {
			local += v
		} else {
			pending++
		}
	})
	res.LocalBytes += local
	if pending == 0 {
		res.EdgeFinish[e.ID] = eng.Now()
		rp.edgesLeft[to]--
		rp.tryStart(to)
		return
	}
	w := rp.getWait()
	w.remaining = pending
	w.eid, w.to = e.ID, to
	// Collect the edge's wire flows, then launch them grouped by latency —
	// one StartFlowBatch per distinct route latency instead of one StartFlow
	// (and one captured closure) per flow. All of an edge's flows register
	// here, inside one timer callback, so their engine timers would have
	// been consecutive; grouping by exact latency in first-appearance order
	// therefore preserves the relative order of the flow starts at every
	// fire time, and with it the rate solver's member order and completion
	// tie-breaks.
	rp.specBuf, rp.latBuf, rp.lats = rp.specBuf[:0], rp.latBuf[:0], rp.lats[:0]
	redist.VisitBlocks(e.Bytes, len(senders), len(receivers), func(i, j int, v float64) {
		src, dst := senders[i], receivers[j]
		if src == dst {
			return
		}
		links, lat := rp.route(src, dst)
		res.RemoteBytes += v
		res.FlowCount++
		rp.specBuf = append(rp.specBuf, sim.FlowSpec{
			Links: links, RateCap: rp.cl.EffectiveBandwidth(src, dst), Bytes: v,
		})
		rp.latBuf = append(rp.latBuf, lat)
		for _, l := range rp.lats {
			if l == lat {
				return
			}
		}
		rp.lats = append(rp.lats, lat)
	})
	for _, l := range rp.lats {
		group := rp.groupBuf[:0]
		for k, lat := range rp.latBuf {
			if lat == l {
				group = append(group, rp.specBuf[k])
			}
		}
		rp.groupBuf = group
		eng.StartFlowBatch(l, group, w.cb)
	}
	// Drop the scratch's route references: the batches hold their own
	// copies, and lingering ones would pin retired arena chunks.
	for k := range rp.specBuf {
		rp.specBuf[k].Links = nil
	}
	for k := range rp.groupBuf {
		rp.groupBuf[k].Links = nil
	}
}

func (rp *replay) onFinish(t int) {
	rp.res.Finish[t] = rp.eng.Now()
	rp.nFinished++
	for _, p := range rp.s.Procs[t] {
		rp.cursor[p]++
		if rp.cursor[p] < len(rp.queues[p]) {
			rp.tryStart(rp.queues[p][rp.cursor[p]])
		}
	}
	for _, eid := range rp.g.Out(t) {
		rp.startRedist(rp.g.Edges[eid])
	}
}

func (rp *replay) tryStart(t int) {
	if rp.started[t] || rp.edgesLeft[t] > 0 || !rp.atHead(t) {
		return
	}
	rp.started[t] = true
	rp.res.Start[t] = rp.eng.Now()
	dur := 0.0
	if !rp.g.Tasks[t].Virtual {
		if rp.cl.HeteroSpeeds() {
			// Data-parallel steps advance at the pace of the slowest
			// member of the assigned set — same rule the mapper's finish
			// estimates use, so estimate and replay agree on durations.
			dur = rp.costs.TimeOn(t, len(rp.s.Procs[t]), rp.cl.MinSpeedOf(rp.s.Procs[t]))
		} else {
			dur = rp.costs.Time(t, len(rp.s.Procs[t]))
		}
	}
	rp.eng.After(dur, func() { rp.onFinish(t) })
}

// Gantt renders a plain-text Gantt chart of a replay (one line per
// processor), for the CLI and the examples. Width is the number of
// character cells used for the makespan.
func Gantt(g *dag.Graph, s *core.Schedule, r *Result, width int) string {
	if width <= 0 {
		width = 80
	}
	if r.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	// Build per-proc rows.
	nProcs := 0
	for _, ps := range s.Procs {
		for _, p := range ps {
			if p+1 > nProcs {
				nProcs = p + 1
			}
		}
	}
	rows := make([][]byte, nProcs)
	for i := range rows {
		rows[i] = make([]byte, width)
		for j := range rows[i] {
			rows[i][j] = '.'
		}
	}
	glyph := func(t int) byte {
		const alpha = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
		return alpha[t%len(alpha)]
	}
	for t := range g.Tasks {
		if g.Tasks[t].Virtual {
			continue
		}
		lo := int(r.Start[t] / r.Makespan * float64(width))
		hi := int(r.Finish[t] / r.Makespan * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		for _, p := range s.Procs[t] {
			for x := lo; x < hi; x++ {
				rows[p][x] = glyph(t)
			}
		}
	}
	out := make([]byte, 0, nProcs*(width+8))
	for p, row := range rows {
		out = append(out, []byte(fmt.Sprintf("p%03d |", p))...)
		out = append(out, row...)
		out = append(out, '\n')
	}
	out = append(out, []byte(fmt.Sprintf("makespan = %.4g s\n", r.Makespan))...)
	return string(out)
}
