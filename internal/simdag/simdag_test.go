package simdag

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// manual builds a schedule by hand for a graph.
func manual(g *dag.Graph, procs [][]int) *core.Schedule {
	n := g.N()
	s := &core.Schedule{
		Alloc:     make([]int, n),
		Procs:     procs,
		Order:     make([]int, 0, n),
		EstStart:  make([]float64, n),
		EstFinish: make([]float64, n),
	}
	order, _ := g.TopoOrder()
	s.Order = order
	for t := 0; t < n; t++ {
		s.Alloc[t] = len(procs[t])
	}
	return s
}

func TestSingleTaskMakespan(t *testing.T) {
	cl := platform.Grillon()
	g := dag.NewGraph(1, 0)
	g.AddTask(dag.Task{Name: "solo", M: 10e6, A: 100, Alpha: 0.2})
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	s := manual(g, [][]int{{0, 1}})
	r, err := Execute(g, costs, cl, s)
	if err != nil {
		t.Fatal(err)
	}
	want := costs.Time(0, 2)
	if math.Abs(r.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %g, want %g", r.Makespan, want)
	}
	if r.RemoteBytes != 0 || r.FlowCount != 0 {
		t.Error("single task should not touch the network")
	}
}

func TestChainSameProcsNoTraffic(t *testing.T) {
	// Two tasks on the same processor set: no redistribution, makespan is
	// the sum of execution times.
	cl := platform.Grillon()
	g := dag.NewGraph(2, 1)
	g.AddTask(dag.Task{Name: "a", M: 10e6, A: 100, Alpha: 0.1})
	g.AddTask(dag.Task{Name: "b", M: 10e6, A: 100, Alpha: 0.1})
	g.AddEdge(0, 1, g.Tasks[0].Bytes())
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	s := manual(g, [][]int{{0, 1, 2}, {0, 1, 2}})
	r, err := Execute(g, costs, cl, s)
	if err != nil {
		t.Fatal(err)
	}
	want := costs.Time(0, 3) + costs.Time(1, 3)
	if math.Abs(r.Makespan-want) > 1e-9 {
		t.Errorf("makespan = %g, want %g", r.Makespan, want)
	}
	if r.RemoteBytes != 0 {
		t.Errorf("RemoteBytes = %g, want 0 (same set, same ranks)", r.RemoteBytes)
	}
	if r.LocalBytes <= 0 {
		t.Error("expected local (free) redistribution bytes")
	}
}

func TestChainDisjointProcsPaysRedistribution(t *testing.T) {
	// 1 → 1 transfer between disjoint processors: the start of the second
	// task is delayed by exactly latency + bytes/β' (single flow, no
	// contention).
	cl := platform.Grillon()
	g := dag.NewGraph(2, 1)
	g.AddTask(dag.Task{Name: "a", M: 10e6, A: 100, Alpha: 0})
	g.AddTask(dag.Task{Name: "b", M: 10e6, A: 100, Alpha: 0})
	g.AddEdge(0, 1, g.Tasks[0].Bytes())
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	s := manual(g, [][]int{{0}, {1}})
	r, err := Execute(g, costs, cl, s)
	if err != nil {
		t.Fatal(err)
	}
	bytes := g.Tasks[0].Bytes()
	_, lat := cl.Route(0, 1)
	rate := math.Min(cl.LinkBandwidth, cl.EffectiveBandwidth(0, 1))
	wantGap := lat + bytes/rate
	gap := r.Start[1] - r.Finish[0]
	if math.Abs(gap-wantGap) > 1e-6 {
		t.Errorf("redistribution gap = %g, want %g", gap, wantGap)
	}
	if math.Abs(r.RemoteBytes-bytes) > 1e-6 {
		t.Errorf("RemoteBytes = %g, want %g", r.RemoteBytes, bytes)
	}
}

func TestContentionSlowsConcurrentRedistributions(t *testing.T) {
	// Fork: one producer on proc 0 sends to two consumers on procs 1 and
	// 2. Both flows leave through proc 0's private link and share its
	// bandwidth, so each takes about twice the solo time.
	cl := platform.Grillon()
	g := dag.NewGraph(3, 2)
	g.AddTask(dag.Task{Name: "src", M: 20e6, A: 100, Alpha: 0})
	g.AddTask(dag.Task{Name: "c1", M: 20e6, A: 100, Alpha: 0})
	g.AddTask(dag.Task{Name: "c2", M: 20e6, A: 100, Alpha: 0})
	g.AddEdge(0, 1, g.Tasks[0].Bytes())
	g.AddEdge(0, 2, g.Tasks[0].Bytes())
	g.Normalize()
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	procs := make([][]int, g.N())
	procs[0], procs[1], procs[2] = []int{0}, []int{1}, []int{2}
	s := manual(g, procs)
	r, err := Execute(g, costs, cl, s)
	if err != nil {
		t.Fatal(err)
	}
	bytes := g.Tasks[0].Bytes()
	_, lat := cl.Route(0, 1)
	solo := lat + bytes/cl.LinkBandwidth
	shared := lat + 2*bytes/cl.LinkBandwidth // both flows on src's uplink
	gap1 := r.Start[1] - r.Finish[0]
	if math.Abs(gap1-shared) > 1e-6 {
		t.Errorf("contended gap = %g, want %g (solo would be %g)", gap1, shared, solo)
	}
}

func TestVirtualEdgesAreFree(t *testing.T) {
	cl := platform.Chti()
	g := gen.Strassen(1)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
	s := core.Map(g, costs, cl, a, core.DefaultNaive(core.StrategyTimeCost))
	r, err := Execute(g, costs, cl, s)
	if err != nil {
		t.Fatal(err)
	}
	// Virtual entry finishes at t=0; all S tasks may start immediately.
	if r.Finish[g.Entry()] != 0 {
		t.Errorf("virtual entry finished at %g, want 0", r.Finish[g.Entry()])
	}
	if r.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
}

func TestInvalidScheduleRejected(t *testing.T) {
	cl := platform.Chti()
	g := dag.NewGraph(1, 0)
	g.AddTask(dag.Task{Name: "x", M: 5e6, A: 100, Alpha: 0})
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	s := manual(g, [][]int{{0, 0}}) // duplicated processor
	if _, err := Execute(g, costs, cl, s); err == nil {
		t.Fatal("duplicate processor in mapping should be rejected")
	}
}

// checkReplayInvariants verifies the fundamental correctness properties of
// a replay: precedence+redistribution respected, no processor overlap,
// durations honoured.
func checkReplayInvariants(t *testing.T, g *dag.Graph, costs *moldable.Costs, s *core.Schedule, r *Result) {
	t.Helper()
	// Durations.
	for i := range g.Tasks {
		var want float64
		if !g.Tasks[i].Virtual {
			want = costs.Time(i, len(s.Procs[i]))
		}
		if math.Abs((r.Finish[i]-r.Start[i])-want) > 1e-6 {
			t.Fatalf("task %d duration %g, want %g", i, r.Finish[i]-r.Start[i], want)
		}
	}
	// Precedence: a task starts no earlier than every predecessor's finish
	// (redistribution only adds on top).
	for _, e := range g.Edges {
		if r.Start[e.To] < r.Finish[e.From]-1e-9 {
			t.Fatalf("edge %d→%d: start %g before producer finish %g",
				e.From, e.To, r.Start[e.To], r.Finish[e.From])
		}
		if r.EdgeFinish[e.ID] > r.Start[e.To]+1e-9 {
			t.Fatalf("edge %d→%d: consumer started before redistribution completed", e.From, e.To)
		}
	}
	// Exclusive processors: intervals on one processor must not overlap.
	type iv struct{ s, f float64 }
	perProc := map[int][]iv{}
	for i := range g.Tasks {
		if g.Tasks[i].Virtual {
			continue
		}
		for _, p := range s.Procs[i] {
			perProc[p] = append(perProc[p], iv{r.Start[i], r.Finish[i]})
		}
	}
	for p, ivs := range perProc {
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].s < ivs[b].s })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].s < ivs[i-1].f-1e-9 {
				t.Fatalf("processor %d double-booked: [%g,%g] overlaps [%g,%g]",
					p, ivs[i-1].s, ivs[i-1].f, ivs[i].s, ivs[i].f)
			}
		}
	}
}

func TestFullPipelineInvariantsAllStrategies(t *testing.T) {
	for _, cl := range platform.PaperClusters() {
		for _, st := range []core.Strategy{core.StrategyNone, core.StrategyDelta, core.StrategyTimeCost} {
			g := gen.Random(gen.RandomParams{N: 50, Width: 0.5, Regularity: 0.2, Density: 0.8, Layered: false, Jump: 2, Seed: 13})
			costs := moldable.NewCosts(g, cl.SpeedGFlops)
			a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
			s := core.Map(g, costs, cl, a, core.DefaultNaive(st))
			r, err := Execute(g, costs, cl, s)
			if err != nil {
				t.Fatalf("%s/%v: %v", cl.Name, st, err)
			}
			checkReplayInvariants(t, g, costs, s, r)
		}
	}
}

// Property: replays of random workloads complete and respect all
// invariants across graph families and strategies.
func TestPropertyReplayInvariants(t *testing.T) {
	cl := platform.Grillon()
	f := func(seed int64, stIdx, kindIdx uint8) bool {
		var g *dag.Graph
		switch int(kindIdx) % 3 {
		case 0:
			g = gen.Random(gen.RandomParams{N: 25, Width: 0.8, Regularity: 0.2, Density: 0.2, Layered: true, Seed: seed})
		case 1:
			g = gen.FFT(4, seed)
		default:
			g = gen.Strassen(seed)
		}
		st := []core.Strategy{core.StrategyNone, core.StrategyDelta, core.StrategyTimeCost}[int(stIdx)%3]
		costs := moldable.NewCosts(g, cl.SpeedGFlops)
		a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
		s := core.Map(g, costs, cl, a, core.DefaultNaive(st))
		r, err := Execute(g, costs, cl, s)
		if err != nil {
			return false
		}
		for _, e := range g.Edges {
			if r.Start[e.To] < r.Finish[e.From]-1e-9 {
				return false
			}
		}
		return r.Makespan > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGanttRendering(t *testing.T) {
	cl := platform.Chti()
	g := gen.FFT(4, 2)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
	s := core.Map(g, costs, cl, a, core.DefaultNaive(core.StrategyDelta))
	r, err := Execute(g, costs, cl, s)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(g, s, r, 60)
	if len(out) == 0 || out[0] != 'p' {
		t.Errorf("unexpected Gantt output: %q", out[:min(40, len(out))])
	}
}

func BenchmarkReplay50TaskIrregular(b *testing.B) {
	cl := platform.Grillon()
	g := gen.Random(gen.RandomParams{N: 50, Width: 0.5, Regularity: 0.2, Density: 0.8, Layered: false, Jump: 2, Seed: 3})
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
	s := core.Map(g, costs, cl, a, core.DefaultNaive(core.StrategyTimeCost))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(g, costs, cl, s); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReplayAllocsBelowPerFlowCost guards the batched flow launch: before
// StartFlowBatch, every wire flow paid at least one allocation (the
// closure StartFlow captures per flow), so a replay's allocs/op was bounded
// below by its FlowCount — measured 2447 allocs for the 1102-flow scenario
// here. Batched, the same replay measures ~1423: the remainder is
// first-use pool growth (solver entities, edge waits, timers) that a fresh
// Execute cannot avoid, comfortably under the per-flow floor.
func TestReplayAllocsBelowPerFlowCost(t *testing.T) {
	cl := platform.Grillon()
	g := gen.Random(gen.RandomParams{N: 50, Width: 0.5, Regularity: 0.2, Density: 0.8, Layered: false, Jump: 2, Seed: 3})
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
	s := core.Map(g, costs, cl, a, core.DefaultNaive(core.StrategyTimeCost))
	r, err := Execute(g, costs, cl, s)
	if err != nil {
		t.Fatal(err)
	}
	if r.FlowCount < 1000 {
		t.Fatalf("scenario too small to discriminate: %d flows", r.FlowCount)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Execute(g, costs, cl, s); err != nil {
			t.Fatal(err)
		}
	})
	if limit := 1.5 * float64(r.FlowCount); allocs >= limit {
		t.Errorf("replay allocates %.0f times for %d flows (limit %.0f): per-flow setup cost is back",
			allocs, r.FlowCount, limit)
	}
}
