package dag

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format. Virtual tasks are drawn
// as points; real tasks are labelled with their name and dataset size.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph G {\n  rankdir=TB;\n  node [shape=box];\n")
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.Virtual {
			fmt.Fprintf(&b, "  t%d [shape=point, label=\"\"];\n", i)
			continue
		}
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		fmt.Fprintf(&b, "  t%d [label=\"%s\\nm=%.3gM a=%.0f α=%.2f\"];\n",
			i, name, t.M/1e6, t.A, t.Alpha)
	}
	for _, e := range g.Edges {
		if e.Bytes > 0 {
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"%.3g MB\"];\n", e.From, e.To, e.Bytes/1e6)
		} else {
			fmt.Fprintf(&b, "  t%d -> t%d [style=dashed];\n", e.From, e.To)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// jsonGraph is the serialization schema for graphs.
type jsonGraph struct {
	Tasks []Task `json:"tasks"`
	Edges []Edge `json:"edges"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonGraph{Tasks: g.Tasks, Edges: g.Edges})
}

// UnmarshalJSON implements json.Unmarshaler, rebuilding adjacency lists.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = Graph{}
	for _, t := range jg.Tasks {
		g.AddTask(t)
	}
	for _, e := range jg.Edges {
		if e.From < 0 || e.From >= g.N() || e.To < 0 || e.To >= g.N() {
			return fmt.Errorf("dag: edge %d has out-of-range endpoints (%d,%d)", e.ID, e.From, e.To)
		}
		g.AddEdge(e.From, e.To, e.Bytes)
	}
	return nil
}
