package dag

import (
	"math/rand"
	"testing"
)

// randomDAG builds a layered random DAG with edges only from lower to
// higher IDs, so it is acyclic by construction.
func randomDAG(rng *rand.Rand, n int) (*Graph, []float64, []float64) {
	g := NewGraph(n, 3*n)
	for i := 0; i < n; i++ {
		g.AddTask(Task{Name: "t", M: 1e7, A: 100, Alpha: 0.1})
	}
	for v := 1; v < n; v++ {
		// At least one parent keeps the graph connected enough to be
		// interesting; extra edges with probability 0.25 each.
		u := rng.Intn(v)
		g.AddEdge(u, v, 1e6)
		for u := 0; u < v; u++ {
			if rng.Float64() < 0.25 {
				g.AddEdge(u, v, 1e6)
			}
		}
	}
	cost := make([]float64, n)
	for i := range cost {
		cost[i] = rng.Float64() * 10
	}
	edge := make([]float64, len(g.Edges))
	for i := range edge {
		edge[i] = rng.Float64()
	}
	return g, cost, edge
}

// TestLevelTrackerMatchesFullRecompute drives random cost updates through a
// LevelTracker and checks after each one that every level is bit-identical
// to a from-scratch BottomLevels/TopLevels pass — the exact contract the
// incremental allocation engine relies on.
func TestLevelTrackerMatchesFullRecompute(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, cost, edge := randomDAG(rng, 40)

		ref := append([]float64(nil), cost...)
		lt := NewLevelTracker(g, cost, edge)
		if lt == nil {
			t.Fatal("NewLevelTracker returned nil for an acyclic graph")
		}
		check := func(step int) {
			t.Helper()
			bl := g.BottomLevels(func(tk int) float64 { return ref[tk] }, func(e int) float64 { return edge[e] })
			tl := g.TopLevels(func(tk int) float64 { return ref[tk] }, func(e int) float64 { return edge[e] })
			for tk := 0; tk < g.N(); tk++ {
				if lt.BottomLevel(tk) != bl[tk] {
					t.Fatalf("seed %d step %d: bottom[%d] = %v, want %v", seed, step, tk, lt.BottomLevel(tk), bl[tk])
				}
				if lt.TopLevel(tk) != tl[tk] {
					t.Fatalf("seed %d step %d: top[%d] = %v, want %v", seed, step, tk, lt.TopLevel(tk), tl[tk])
				}
			}
		}
		check(-1)
		for step := 0; step < 50; step++ {
			x := rng.Intn(g.N())
			c := rng.Float64() * 10
			ref[x] = c
			changed := lt.SetTaskCost(x, c)
			// Every reported change must be real, relative to the tracker's
			// own pre-update state: dedup is per call.
			seen := map[int]bool{}
			for _, tk := range changed {
				if seen[tk] {
					t.Fatalf("seed %d step %d: task %d reported changed twice", seed, step, tk)
				}
				seen[tk] = true
			}
			// Soundness of the cone bound: a cost change at x may only move
			// levels of x itself, its ancestors (bottom levels) and its
			// descendants (top levels) — the sets VisitAncestors and
			// VisitDescendants enumerate.
			cone := map[int]bool{x: true}
			g.VisitAncestors(x, func(u int) { cone[u] = true })
			g.VisitDescendants(x, func(u int) { cone[u] = true })
			for _, tk := range changed {
				if !cone[tk] {
					t.Fatalf("seed %d step %d: task %d changed outside the cone of %d", seed, step, tk, x)
				}
			}
			check(step)
		}
	}
}

// TestLevelTrackerNoChangeOnIdenticalCost checks the fast path: setting the
// same cost reports no changes.
func TestLevelTrackerNoChangeOnIdenticalCost(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, cost, edge := randomDAG(rng, 20)
	lt := NewLevelTracker(g, cost, edge)
	if got := lt.SetTaskCost(5, lt.TaskCost(5)); len(got) != 0 {
		t.Fatalf("identical cost reported %d changes", len(got))
	}
}

// TestLevelTrackerCyclicGraph checks that a cyclic graph yields nil.
func TestLevelTrackerCyclicGraph(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddTask(Task{Name: "a"})
	g.AddTask(Task{Name: "b"})
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 0, 0)
	if lt := NewLevelTracker(g, []float64{1, 1}, []float64{0, 0}); lt != nil {
		t.Fatal("want nil tracker for cyclic graph")
	}
}

// TestVisitConeOrders checks membership and ordering of the ancestor and
// descendant cone iterators on a diamond with a tail.
func TestVisitConeOrders(t *testing.T) {
	// 0 → {1,2} → 3 → 4
	g := NewGraph(5, 6)
	for i := 0; i < 5; i++ {
		g.AddTask(Task{Name: "t"})
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 3, 0)
	g.AddEdge(2, 3, 0)
	g.AddEdge(3, 4, 0)

	var anc []int
	g.VisitAncestors(3, func(u int) { anc = append(anc, u) })
	if len(anc) != 3 {
		t.Fatalf("ancestors of 3 = %v, want {2,1,0}", anc)
	}
	for i := 1; i < len(anc); i++ {
		if anc[i] >= anc[i-1] {
			t.Fatalf("ancestors not in decreasing topological position: %v", anc)
		}
	}

	var desc []int
	g.VisitDescendants(0, func(u int) { desc = append(desc, u) })
	if len(desc) != 4 {
		t.Fatalf("descendants of 0 = %v, want {1,2,3,4}", desc)
	}
	for i := 1; i < len(desc); i++ {
		if desc[i] <= desc[i-1] {
			t.Fatalf("descendants not in increasing topological position: %v", desc)
		}
	}
}
