package dag

// CostFunc gives the (current) execution time of a task, in seconds. The
// allocation procedures re-evaluate it as allocations evolve.
type CostFunc func(task int) float64

// EdgeCostFunc gives the estimated communication time of an edge, in
// seconds. Allocation-time estimates are contention-free.
type EdgeCostFunc func(edge int) float64

// BottomLevels computes, for every task, the length of the longest path
// from that task to the exit, *including* the task's own execution time and
// the edge costs along the path. This is the classic "bottom level" (or
// "blevel") priority used by CPA, HCPA and RATS: the farther a task is from
// the end of the application, the more critical it is.
func (g *Graph) BottomLevels(cost CostFunc, edgeCost EdgeCostFunc) []float64 {
	return g.BottomLevelsInto(nil, cost, edgeCost)
}

// BottomLevelsInto is BottomLevels writing into bl, which is grown when too
// small (pass nil to allocate). Every entry is overwritten; callers reusing
// a buffer across graphs need no clearing. Returns nil on a cyclic graph.
func (g *Graph) BottomLevelsInto(bl []float64, cost CostFunc, edgeCost EdgeCostFunc) []float64 {
	order, ok := g.TopoOrder()
	if !ok {
		return nil
	}
	if cap(bl) < g.N() {
		bl = make([]float64, g.N())
	}
	bl = bl[:g.N()]
	for i := len(order) - 1; i >= 0; i-- {
		t := order[i]
		best := 0.0
		for _, e := range g.out[t] {
			v := edgeCost(e) + bl[g.Edges[e].To]
			if v > best {
				best = v
			}
		}
		bl[t] = cost(t) + best
	}
	return bl
}

// TopLevels computes, for every task, the length of the longest path from
// the entry up to (but excluding) the task itself.
func (g *Graph) TopLevels(cost CostFunc, edgeCost EdgeCostFunc) []float64 {
	order, ok := g.TopoOrder()
	if !ok {
		return nil
	}
	tl := make([]float64, g.N())
	for _, t := range order {
		for _, e := range g.in[t] {
			from := g.Edges[e].From
			v := tl[from] + cost(from) + edgeCost(e)
			if v > tl[t] {
				tl[t] = v
			}
		}
	}
	return tl
}

// CriticalPathLength returns C∞, the length of the critical path: the
// maximum over tasks of bottom level, which for a single-entry DAG is the
// bottom level of the entry.
func (g *Graph) CriticalPathLength(cost CostFunc, edgeCost EdgeCostFunc) float64 {
	bl := g.BottomLevels(cost, edgeCost)
	best := 0.0
	for _, v := range bl {
		if v > best {
			best = v
		}
	}
	return best
}

// CriticalPath returns one critical path as a sequence of task IDs from the
// entry to the exit, following at each step the successor that preserves
// the bottom-level recurrence. The boolean slice marks every task that lies
// on *some* critical path (within a relative tolerance), which is what the
// CPA allocation loop iterates over.
func (g *Graph) CriticalPath(cost CostFunc, edgeCost EdgeCostFunc) (path []int, onCP []bool) {
	bl := g.BottomLevels(cost, edgeCost)
	tl := g.TopLevels(cost, edgeCost)
	if bl == nil {
		return nil, nil
	}
	cp := 0.0
	var start int
	for t, v := range bl {
		if v > cp {
			cp = v
			start = t
		}
	}
	const rel = 1e-9
	tol := cp * rel
	onCP = make([]bool, g.N())
	for t := range onCP {
		// t is on a critical path iff tl(t) + bl(t) == C∞.
		if tl[t]+bl[t] >= cp-tol {
			onCP[t] = true
		}
	}
	// Walk one path greedily.
	t := start
	path = append(path, t)
	for len(g.out[t]) > 0 {
		next := -1
		for _, e := range g.out[t] {
			to := g.Edges[e].To
			if edgeCost(e)+bl[to] >= bl[t]-cost(t)-tol {
				next = to
				break
			}
		}
		if next < 0 {
			break
		}
		t = next
		path = append(path, t)
	}
	return path, onCP
}
