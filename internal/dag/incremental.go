package dag

// This file provides the incremental counterpart of levels.go for the
// allocation refinement loops: a LevelTracker maintains the bottom and top
// levels of every task under point updates of a single task's cost,
// recomputing only the affected ancestor/descendant cone instead of
// re-walking the whole DAG. The recomputation is bit-identical to a full
// BottomLevels/TopLevels pass: every task's level is evaluated with the
// exact same float operations in the exact same edge order, and a task
// outside the cone keeps a value whose inputs did not change.

// LevelTracker maintains bottom levels (longest path to the exit,
// including the task's own cost) and top levels (longest path from the
// entry, excluding the task) under incremental task-cost updates.
//
// The tracker owns the task-cost slice passed to NewLevelTracker and
// mutates it through SetTaskCost; the edge-cost slice is fixed for the
// lifetime of the tracker (allocation procedures never change edge
// estimates during refinement). The graph structure must not change while
// a tracker is live.
type LevelTracker struct {
	cost []float64 // per-task cost, updated via SetTaskCost

	// Flattened adjacency (CSR layout) with edge costs copied inline:
	// successors of t are outTo[outStart[t]:outStart[t+1]], in the same
	// order as Graph.Out(t) so the max-folds visit operands in the same
	// order as BottomLevels/TopLevels. The cone sweeps touch these arrays
	// thousands of times per allocation run; contiguous storage beats the
	// graph's slice-of-slices by a wide margin.
	outStart, inStart []int
	outTo, inFrom     []int
	outCost, inCost   []float64

	bl, tl []float64
	pos    []int // pos[t] = topological position of task t
	byPos  []int // byPos[i] = task at topological position i

	dirty   []bool // pending recomputation marks, indexed by task
	changed []int  // scratch for SetTaskCost's result
}

// NewLevelTracker computes the initial levels for the given per-task and
// per-edge costs and returns a tracker ready for incremental updates. It
// returns nil if the graph is cyclic. len(taskCost) must be g.N() and
// len(edgeCost) must be len(g.Edges).
func NewLevelTracker(g *Graph, taskCost, edgeCost []float64) *LevelTracker {
	order, ok := g.TopoOrder()
	if !ok {
		return nil
	}
	n := g.N()
	lt := &LevelTracker{
		cost:     taskCost,
		outStart: make([]int, n+1),
		inStart:  make([]int, n+1),
		outTo:    make([]int, len(g.Edges)),
		inFrom:   make([]int, len(g.Edges)),
		outCost:  make([]float64, len(g.Edges)),
		inCost:   make([]float64, len(g.Edges)),
		bl:       make([]float64, n),
		tl:       make([]float64, n),
		pos:      make([]int, n),
		byPos:    order,
		dirty:    make([]bool, n),
	}
	k := 0
	for t := 0; t < n; t++ {
		lt.outStart[t] = k
		for _, e := range g.out[t] {
			lt.outTo[k] = g.Edges[e].To
			lt.outCost[k] = edgeCost[e]
			k++
		}
	}
	lt.outStart[n] = k
	k = 0
	for t := 0; t < n; t++ {
		lt.inStart[t] = k
		for _, e := range g.in[t] {
			lt.inFrom[k] = g.Edges[e].From
			lt.inCost[k] = edgeCost[e]
			k++
		}
	}
	lt.inStart[n] = k
	for i, t := range order {
		lt.pos[t] = i
	}
	for i := n - 1; i >= 0; i-- {
		t := order[i]
		lt.bl[t] = lt.recomputeBottom(t)
	}
	for _, t := range order {
		lt.tl[t] = lt.recomputeTop(t)
	}
	return lt
}

// recomputeBottom evaluates the bottom-level recurrence of task t from the
// current levels of its successors, mirroring Graph.BottomLevels exactly.
func (lt *LevelTracker) recomputeBottom(t int) float64 {
	best := 0.0
	for k := lt.outStart[t]; k < lt.outStart[t+1]; k++ {
		if v := lt.outCost[k] + lt.bl[lt.outTo[k]]; v > best {
			best = v
		}
	}
	return lt.cost[t] + best
}

// recomputeTop evaluates the top-level recurrence of task t from the
// current levels of its predecessors, mirroring Graph.TopLevels exactly.
func (lt *LevelTracker) recomputeTop(t int) float64 {
	top := 0.0
	for k := lt.inStart[t]; k < lt.inStart[t+1]; k++ {
		from := lt.inFrom[k]
		if v := lt.tl[from] + lt.cost[from] + lt.inCost[k]; v > top {
			top = v
		}
	}
	return top
}

// SetTaskCost updates the cost of task x and restores both level arrays,
// recomputing only tasks whose value actually changes: the bottom levels
// of x and its ancestors (processed in decreasing topological position, so
// every successor is final before its predecessors), and the top levels of
// x's descendants (increasing position). Propagation stops at any task
// whose recomputed level is bit-identical to its old value, which is what
// keeps the cone narrow on wide DAGs.
//
// The pending recomputations are tracked as dirty flags swept along the
// topological order with a live counter for early exit: for the dense
// cones the refinement loops produce, a flag sweep beats a priority-queue
// worklist by a wide constant factor, and the sweep stops as soon as the
// cone dies out.
//
// It returns the tasks whose bottom or top level changed (the two sets are
// disjoint: bottom changes hit ancestors of x, top changes hit strict
// descendants). The slice is reused by the next SetTaskCost call.
func (lt *LevelTracker) SetTaskCost(x int, c float64) []int {
	lt.changed = lt.changed[:0]
	if lt.cost[x] == c {
		return lt.changed
	}
	lt.cost[x] = c

	// Bottom levels: x seeds the ancestor cone (its own cost term changed).
	lt.dirty[x] = true
	pending := 1
	for i := lt.pos[x]; i >= 0 && pending > 0; i-- {
		t := lt.byPos[i]
		if !lt.dirty[t] {
			continue
		}
		lt.dirty[t] = false
		pending--
		if nb := lt.recomputeBottom(t); nb != lt.bl[t] {
			lt.bl[t] = nb
			lt.changed = append(lt.changed, t)
			for k := lt.inStart[t]; k < lt.inStart[t+1]; k++ {
				if from := lt.inFrom[k]; !lt.dirty[from] {
					lt.dirty[from] = true
					pending++
				}
			}
		}
	}

	// Top levels: the direct successors of x seed the descendant cone
	// (their recurrence reads cost[x]); x's own top level is unaffected.
	pending = 0
	first := len(lt.byPos)
	for k := lt.outStart[x]; k < lt.outStart[x+1]; k++ {
		if to := lt.outTo[k]; !lt.dirty[to] {
			lt.dirty[to] = true
			pending++
			if lt.pos[to] < first {
				first = lt.pos[to]
			}
		}
	}
	for i := first; i < len(lt.byPos) && pending > 0; i++ {
		t := lt.byPos[i]
		if !lt.dirty[t] {
			continue
		}
		lt.dirty[t] = false
		pending--
		if nt := lt.recomputeTop(t); nt != lt.tl[t] {
			lt.tl[t] = nt
			lt.changed = append(lt.changed, t)
			for k := lt.outStart[t]; k < lt.outStart[t+1]; k++ {
				if to := lt.outTo[k]; !lt.dirty[to] {
					lt.dirty[to] = true
					pending++
				}
			}
		}
	}
	return lt.changed
}

// BottomLevel returns the current bottom level of task t.
func (lt *LevelTracker) BottomLevel(t int) float64 { return lt.bl[t] }

// TopLevel returns the current top level of task t.
func (lt *LevelTracker) TopLevel(t int) float64 { return lt.tl[t] }

// TaskCost returns the current cost of task t as seen by the tracker.
func (lt *LevelTracker) TaskCost(t int) float64 { return lt.cost[t] }

// VisitAncestors calls fn for every proper ancestor of task t (tasks from
// which t is reachable), in decreasing topological position. This is the
// cone a bottom-level change at t can propagate through.
func (g *Graph) VisitAncestors(t int, fn func(task int)) {
	order, ok := g.TopoOrder()
	if !ok {
		return
	}
	mark := make([]bool, g.N())
	mark[t] = true
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		if !mark[u] {
			continue
		}
		if u != t {
			fn(u)
		}
		for _, e := range g.in[u] {
			mark[g.Edges[e].From] = true
		}
	}
}

// VisitDescendants calls fn for every proper descendant of task t (tasks
// reachable from t), in increasing topological position. This is the cone
// a top-level change at t can propagate through.
func (g *Graph) VisitDescendants(t int, fn func(task int)) {
	order, ok := g.TopoOrder()
	if !ok {
		return
	}
	mark := make([]bool, g.N())
	mark[t] = true
	for _, u := range order {
		if !mark[u] {
			continue
		}
		if u != t {
			fn(u)
		}
		for _, e := range g.out[u] {
			mark[g.Edges[e].To] = true
		}
	}
}
