package dag

// TopoOrder returns a topological order of the tasks (Kahn's algorithm) and
// whether the graph is acyclic. Ties are broken by ascending task ID so the
// order is deterministic. The result is memoized until the graph changes;
// callers must not mutate the returned slice.
func (g *Graph) TopoOrder() ([]int, bool) {
	if g.topoValid {
		return g.topoCache, g.topoOK
	}
	order, ok := g.topoOrderSlow()
	g.topoCache, g.topoOK, g.topoValid = order, ok, true
	return order, ok
}

func (g *Graph) topoOrderSlow() ([]int, bool) {
	n := g.N()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.in[i])
	}
	// Min-ID frontier kept as a simple ordered insertion into a ready list;
	// for the graph sizes at play (≤ a few hundred tasks) this is cheaper
	// than a heap and keeps the order deterministic.
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		// pop smallest ID
		min := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[min] {
				min = i
			}
		}
		t := ready[min]
		ready[min] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, t)
		for _, e := range g.out[t] {
			to := g.Edges[e].To
			indeg[to]--
			if indeg[to] == 0 {
				ready = append(ready, to)
			}
		}
	}
	return order, len(order) == n
}

// Levels assigns each task its precedence level: entry tasks are at level 0
// and level(t) = 1 + max over predecessors. Virtual tasks participate like
// any other node. The second return value is the number of levels.
func (g *Graph) Levels() ([]int, int) {
	order, ok := g.TopoOrder()
	if !ok {
		return nil, 0
	}
	lvl := make([]int, g.N())
	max := 0
	for _, t := range order {
		for _, e := range g.in[t] {
			from := g.Edges[e].From
			if lvl[from]+1 > lvl[t] {
				lvl[t] = lvl[from] + 1
			}
		}
		if lvl[t] > max {
			max = lvl[t]
		}
	}
	return lvl, max + 1
}

// LevelSets groups task IDs by precedence level.
func (g *Graph) LevelSets() [][]int {
	lvl, n := g.Levels()
	if lvl == nil {
		return nil
	}
	sets := make([][]int, n)
	for t, l := range lvl {
		sets[l] = append(sets[l], t)
	}
	return sets
}

// MaxWidth returns the size of the largest precedence level, i.e. the
// maximum task parallelism of the DAG, counting only non-virtual tasks.
func (g *Graph) MaxWidth() int {
	sets := g.LevelSets()
	w := 0
	for _, s := range sets {
		real := 0
		for _, t := range s {
			if !g.Tasks[t].Virtual {
				real++
			}
		}
		if real > w {
			w = real
		}
	}
	return w
}
