package dag

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds the 4-task diamond 0→{1,2}→3 with unit-ish costs.
func diamond() *Graph {
	g := NewGraph(4, 4)
	for i := 0; i < 4; i++ {
		g.AddTask(Task{Name: "t", M: 4e6, A: 64, Alpha: 0.1})
	}
	g.AddEdge(0, 1, 100)
	g.AddEdge(0, 2, 100)
	g.AddEdge(1, 3, 100)
	g.AddEdge(2, 3, 100)
	return g
}

func TestTopoOrderDiamond(t *testing.T) {
	g := diamond()
	order, ok := g.TopoOrder()
	if !ok {
		t.Fatal("diamond reported cyclic")
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %d->%d violates topological order", e.From, e.To)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddTask(Task{})
	g.AddTask(Task{})
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 0, 0)
	if _, ok := g.TopoOrder(); ok {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate = %v, want ErrCycle", err)
	}
}

func TestValidate(t *testing.T) {
	g := diamond()
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond should validate: %v", err)
	}
	if err := NewGraph(0, 0).Validate(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty graph: got %v", err)
	}
	// Two entries.
	g2 := NewGraph(3, 2)
	g2.AddTask(Task{})
	g2.AddTask(Task{})
	g2.AddTask(Task{})
	g2.AddEdge(0, 2, 0)
	g2.AddEdge(1, 2, 0)
	if err := g2.Validate(); !errors.Is(err, ErrMultipleEntry) {
		t.Fatalf("got %v, want ErrMultipleEntry", err)
	}
}

func TestNormalize(t *testing.T) {
	// fork with 2 entries and 2 exits
	g := NewGraph(4, 0)
	for i := 0; i < 4; i++ {
		g.AddTask(Task{M: 5e6, A: 100})
	}
	g.AddEdge(0, 2, 10)
	g.AddEdge(1, 3, 10)
	entry, exit := g.Normalize()
	if err := g.Validate(); err != nil {
		t.Fatalf("normalized graph invalid: %v", err)
	}
	if !g.Tasks[entry].Virtual || !g.Tasks[exit].Virtual {
		t.Error("normalize should add virtual entry/exit")
	}
	if g.RealTaskCount() != 4 {
		t.Errorf("RealTaskCount = %d, want 4", g.RealTaskCount())
	}
	if g.Entry() != entry || g.Exit() != exit {
		t.Error("Entry/Exit accessors disagree with Normalize")
	}
}

func TestNormalizeIdempotentOnSingleEntryExit(t *testing.T) {
	g := diamond()
	n := g.N()
	entry, exit := g.Normalize()
	if g.N() != n {
		t.Fatalf("normalize changed task count %d -> %d", n, g.N())
	}
	if entry != 0 || exit != 3 {
		t.Fatalf("entry/exit = %d/%d, want 0/3", entry, exit)
	}
}

func TestLevelsAndWidth(t *testing.T) {
	g := diamond()
	lvl, n := g.Levels()
	if n != 3 {
		t.Fatalf("levels = %d, want 3", n)
	}
	want := []int{0, 1, 1, 2}
	for i, w := range want {
		if lvl[i] != w {
			t.Errorf("level[%d] = %d, want %d", i, lvl[i], w)
		}
	}
	if w := g.MaxWidth(); w != 2 {
		t.Errorf("MaxWidth = %d, want 2", w)
	}
}

func TestBottomLevelsChain(t *testing.T) {
	g := NewGraph(3, 2)
	for i := 0; i < 3; i++ {
		g.AddTask(Task{})
	}
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	cost := func(t int) float64 { return float64(t + 1) } // 1,2,3
	ec := func(e int) float64 { return 0.5 }
	bl := g.BottomLevels(cost, ec)
	// bl[2]=3; bl[1]=2+0.5+3=5.5; bl[0]=1+0.5+5.5=7
	want := []float64{7, 5.5, 3}
	for i := range want {
		if diff := bl[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("bl[%d] = %g, want %g", i, bl[i], want[i])
		}
	}
	if cp := g.CriticalPathLength(cost, ec); cp != 7 {
		t.Errorf("C∞ = %g, want 7", cp)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g := diamond()
	cost := func(t int) float64 {
		if t == 1 {
			return 10 // make branch through 1 critical
		}
		return 1
	}
	ec := func(e int) float64 { return 0 }
	path, onCP := g.CriticalPath(cost, ec)
	if len(path) != 3 || path[0] != 0 || path[1] != 1 || path[2] != 3 {
		t.Fatalf("critical path = %v, want [0 1 3]", path)
	}
	wantCP := []bool{true, true, false, true}
	for i, w := range wantCP {
		if onCP[i] != w {
			t.Errorf("onCP[%d] = %v, want %v", i, onCP[i], w)
		}
	}
}

func TestTopLevels(t *testing.T) {
	g := diamond()
	cost := func(t int) float64 { return 1 }
	ec := func(e int) float64 { return 2 }
	tl := g.TopLevels(cost, ec)
	want := []float64{0, 3, 3, 6}
	for i := range want {
		if tl[i] != want[i] {
			t.Errorf("tl[%d] = %g, want %g", i, tl[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := diamond()
	c := g.Clone()
	c.AddTask(Task{Name: "extra"})
	c.AddEdge(3, 4, 1)
	if g.N() != 4 || len(g.Edges) != 4 {
		t.Error("mutating clone affected original")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond()
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var g2 Graph
	if err := json.Unmarshal(data, &g2); err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || len(g2.Edges) != len(g.Edges) {
		t.Fatalf("round trip lost structure: %d/%d tasks, %d/%d edges",
			g2.N(), g.N(), len(g2.Edges), len(g.Edges))
	}
	if got := g2.Succs(0); len(got) != 2 {
		t.Errorf("adjacency not rebuilt: succs(0) = %v", got)
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond()
	g.Tasks[0].Name = "root"
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph G", "root", "t0 -> t1"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

// randomLayeredGraph builds a random layered DAG for property testing.
func randomLayeredGraph(r *rand.Rand) *Graph {
	levels := 2 + r.Intn(5)
	g := NewGraph(0, 0)
	var prev []int
	for l := 0; l < levels; l++ {
		width := 1 + r.Intn(4)
		var cur []int
		for i := 0; i < width; i++ {
			cur = append(cur, g.AddTask(Task{M: 4e6, A: 64}))
		}
		for _, v := range cur {
			if len(prev) == 0 {
				continue
			}
			// at least one parent
			g.AddEdge(prev[r.Intn(len(prev))], v, 1)
			for _, u := range prev {
				if r.Float64() < 0.3 {
					g.AddEdge(u, v, 1)
				}
			}
		}
		prev = cur
	}
	g.Normalize()
	return g
}

func TestPropertyRandomGraphsAcyclicAndOrdered(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(r)
		order, ok := g.TopoOrder()
		if !ok {
			return false
		}
		pos := make([]int, g.N())
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBottomLevelsDecreaseAlongEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLayeredGraph(r)
		cost := func(t int) float64 { return 1 + float64(t%7) }
		ec := func(e int) float64 { return float64(e % 3) }
		bl := g.BottomLevels(cost, ec)
		for _, e := range g.Edges {
			// bl(from) >= cost(from) + ec + bl(to)
			if bl[e.From] < cost(e.From)+ec(e.ID)+bl[e.To]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
