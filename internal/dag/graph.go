// Package dag implements the mixed-parallel application model of the paper:
// a Directed Acyclic Graph G = (N, E) whose nodes are moldable data-parallel
// tasks and whose edges carry the amount of data (in bytes) the producer
// must send to the consumer.
//
// Following §II-A of the paper, every graph is normalized to have a single
// entry and a single exit task. Generators that naturally produce several
// entries or exits (e.g. FFT butterflies, Strassen) add *virtual* tasks:
// zero-cost connector nodes linked with zero-byte edges. Virtual tasks do
// not occupy processors and never induce redistributions; schedulers and
// the simulator treat them as instantaneous.
package dag

import (
	"errors"
	"fmt"
)

// Task is one data-parallel (moldable) node of the application graph.
//
// The cost model follows §II-A: the task operates on a dataset of M double
// precision elements (8 bytes each), performs A*M floating point operations
// (A is drawn in [64, 512] by the generators), and has a non-parallelizable
// fraction Alpha in [0, 0.25] under the Amdahl speedup model.
type Task struct {
	ID      int     // index of the task within the graph
	Name    string  // human-readable label ("fft/bfly/2/3", "strassen/P5", ...)
	M       float64 // dataset size in double-precision elements
	A       float64 // operation factor: total ops = A * M
	Alpha   float64 // non-parallelizable fraction (Amdahl)
	Virtual bool    // true for zero-cost entry/exit connector nodes
}

// Ops returns the total number of floating point operations of the task.
func (t *Task) Ops() float64 {
	if t.Virtual {
		return 0
	}
	return t.A * t.M
}

// Bytes returns the volume of data (in bytes) the task communicates to
// each of its children. Following §II-A literally, this volume "is equal
// to m": the dataset occupies 8·m bytes of memory (m double-precision
// elements, bounding m ≤ 121e6 under the 1 GByte node memory cap), but the
// communicated volume is m bytes. This calibration keeps communications
// significant without letting them drown computation — the regime the
// paper targets ("applications for which the communications cannot be
// neglected").
func (t *Task) Bytes() float64 {
	if t.Virtual {
		return 0
	}
	return t.M
}

// Edge is a data dependence: the producer From must send Bytes bytes to the
// consumer To, redistributed between the 1-D block layouts of the two
// allocations.
type Edge struct {
	ID    int
	From  int
	To    int
	Bytes float64
}

// Graph is a mixed-parallel application DAG. The zero value is an empty
// graph ready for use; add nodes with AddTask and edges with AddEdge.
type Graph struct {
	Tasks []Task
	Edges []Edge

	out [][]int // out[t] = edge IDs leaving task t
	in  [][]int // in[t]  = edge IDs entering task t

	// Topological-order memo: graphs are built once and then traversed
	// thousands of times by the allocation loops, so TopoOrder caches its
	// result until the structure changes.
	topoCache []int
	topoOK    bool
	topoValid bool
}

// NewGraph returns an empty graph with capacity hints.
func NewGraph(tasks, edges int) *Graph {
	return &Graph{
		Tasks: make([]Task, 0, tasks),
		Edges: make([]Edge, 0, edges),
		out:   make([][]int, 0, tasks),
		in:    make([][]int, 0, tasks),
	}
}

// N returns the number of tasks (including virtual connector tasks).
func (g *Graph) N() int { return len(g.Tasks) }

// AddTask appends a task and returns its ID. The ID field of the argument
// is overwritten with the assigned index.
func (g *Graph) AddTask(t Task) int {
	t.ID = len(g.Tasks)
	g.Tasks = append(g.Tasks, t)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.topoValid = false
	return t.ID
}

// AddVirtual appends a zero-cost virtual task with the given name.
func (g *Graph) AddVirtual(name string) int {
	return g.AddTask(Task{Name: name, Virtual: true})
}

// AddEdge appends a dependence edge carrying the given number of bytes and
// returns its ID. It panics if either endpoint is out of range, mirroring
// slice indexing semantics; generators are expected to be correct by
// construction and Validate catches structural mistakes.
func (g *Graph) AddEdge(from, to int, bytes float64) int {
	if from < 0 || from >= len(g.Tasks) || to < 0 || to >= len(g.Tasks) {
		panic(fmt.Sprintf("dag: edge endpoints (%d,%d) out of range [0,%d)", from, to, len(g.Tasks)))
	}
	id := len(g.Edges)
	g.Edges = append(g.Edges, Edge{ID: id, From: from, To: to, Bytes: bytes})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	g.topoValid = false
	return id
}

// Out returns the IDs of the edges leaving task t.
func (g *Graph) Out(t int) []int { return g.out[t] }

// In returns the IDs of the edges entering task t.
func (g *Graph) In(t int) []int { return g.in[t] }

// Succs returns the successor task IDs of t (one per out-edge; a successor
// reached through parallel edges appears once per edge).
func (g *Graph) Succs(t int) []int {
	s := make([]int, len(g.out[t]))
	for i, e := range g.out[t] {
		s[i] = g.Edges[e].To
	}
	return s
}

// Preds returns the predecessor task IDs of t.
func (g *Graph) Preds(t int) []int {
	p := make([]int, len(g.in[t]))
	for i, e := range g.in[t] {
		p[i] = g.Edges[e].From
	}
	return p
}

// Entries returns the IDs of tasks without predecessors.
func (g *Graph) Entries() []int {
	var es []int
	for i := range g.Tasks {
		if len(g.in[i]) == 0 {
			es = append(es, i)
		}
	}
	return es
}

// Exits returns the IDs of tasks without successors.
func (g *Graph) Exits() []int {
	var xs []int
	for i := range g.Tasks {
		if len(g.out[i]) == 0 {
			xs = append(xs, i)
		}
	}
	return xs
}

// Errors returned by Validate.
var (
	ErrCycle         = errors.New("dag: graph contains a cycle")
	ErrMultipleEntry = errors.New("dag: graph has more than one entry task")
	ErrMultipleExit  = errors.New("dag: graph has more than one exit task")
	ErrEmpty         = errors.New("dag: graph has no tasks")
	ErrDisconnected  = errors.New("dag: task unreachable from the entry task")
)

// Validate checks the structural invariants assumed by the schedulers:
// non-empty, acyclic, a single entry, a single exit, and every task
// reachable from the entry. It returns the first violated invariant.
func (g *Graph) Validate() error {
	if g.N() == 0 {
		return ErrEmpty
	}
	order, ok := g.TopoOrder()
	if !ok {
		return ErrCycle
	}
	if len(g.Entries()) != 1 {
		return ErrMultipleEntry
	}
	if len(g.Exits()) != 1 {
		return ErrMultipleExit
	}
	// Reachability from the entry: the first element of a topological order
	// of a single-entry graph is the entry itself.
	reach := make([]bool, g.N())
	reach[order[0]] = true
	for _, t := range order {
		if !reach[t] {
			return fmt.Errorf("%w: task %d (%s)", ErrDisconnected, t, g.Tasks[t].Name)
		}
		for _, e := range g.out[t] {
			reach[g.Edges[e].To] = true
		}
	}
	return nil
}

// Normalize ensures the graph has a single entry and a single exit by
// adding virtual connector tasks when needed. It returns the (possibly new)
// entry and exit task IDs.
func (g *Graph) Normalize() (entry, exit int) {
	entries := g.Entries()
	if len(entries) == 1 {
		entry = entries[0]
	} else {
		entry = g.AddVirtual("virtual-entry")
		for _, t := range entries {
			g.AddEdge(entry, t, 0)
		}
	}
	exits := g.Exits()
	if len(exits) == 1 {
		exit = exits[0]
	} else {
		exit = g.AddVirtual("virtual-exit")
		for _, t := range exits {
			g.AddEdge(t, exit, 0)
		}
	}
	return entry, exit
}

// Entry returns the single entry task ID. It panics if the graph has not
// been normalized to a single entry.
func (g *Graph) Entry() int {
	es := g.Entries()
	if len(es) != 1 {
		panic("dag: Entry called on a graph without a unique entry")
	}
	return es[0]
}

// Exit returns the single exit task ID. It panics if the graph has not
// been normalized to a single exit.
func (g *Graph) Exit() int {
	xs := g.Exits()
	if len(xs) != 1 {
		panic("dag: Exit called on a graph without a unique exit")
	}
	return xs[0]
}

// RealTaskCount returns the number of non-virtual tasks.
func (g *Graph) RealTaskCount() int {
	n := 0
	for i := range g.Tasks {
		if !g.Tasks[i].Virtual {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		Tasks: append([]Task(nil), g.Tasks...),
		Edges: append([]Edge(nil), g.Edges...),
		out:   make([][]int, len(g.out)),
		in:    make([][]int, len(g.in)),
	}
	for i := range g.out {
		c.out[i] = append([]int(nil), g.out[i]...)
		c.in[i] = append([]int(nil), g.in[i]...)
	}
	return c // topo memo intentionally not copied; recomputed on demand
}
