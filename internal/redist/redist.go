// Package redist implements the 1-D block data redistribution model of
// §II-A of the paper.
//
// A task working on an amount of data D mapped onto p processors gives each
// of them D/p contiguous units (one-dimensional block distribution). When a
// successor runs on q processors, the communication matrix M (p×q) is
// obtained by intersecting the two block decompositions: M[i][j] is the
// overlap between sender rank i's interval [i·D/p, (i+1)·D/p) and receiver
// rank j's interval [j·D/q, (j+1)·D/q). Table I of the paper (10 units,
// p=4 → q=5) is reproduced exactly by BlockMatrix and asserted in the
// tests.
//
// Two properties matter to the schedulers:
//
//   - If the successor runs on the *same processor set with the same rank
//     order* (p = q), the matrix is the identity: every transfer is local
//     and the redistribution costs nothing. This is the assumption that
//     RATS exploits by packing/stretching allocations onto a predecessor's
//     exact processor set.
//   - When the sets merely intersect, the receiver rank order is a free
//     variable; AlignReceivers permutes it to maximize the number of bytes
//     that stay on-node ("self communications"), optimally via a Hungarian
//     assignment or greedily.
package redist

import (
	"math/bits"
	"sort"
)

// Matrix is a p×q block-redistribution communication matrix in rank space.
// It is stored banded: row i only overlaps a contiguous range of columns,
// so a p×q matrix holds O(p+q) non-zeros.
type Matrix struct {
	P, Q  int
	Total float64 // total amount of data redistributed (bytes or units)

	rowStart []int // first non-zero column of each row
	rowVals  [][]float64
}

// BlockMatrix builds the communication matrix for redistributing total
// units of data from a p-processor 1-D block layout to a q-processor one.
//
// Overlaps are computed in exact integer arithmetic: scaling positions by
// p·q makes sender rank i cover [i·q, (i+1)·q) and receiver rank j cover
// [j·p, (j+1)·p) in units of total/(p·q).
func BlockMatrix(total float64, p, q int) Matrix {
	if p <= 0 || q <= 0 {
		panic("redist: BlockMatrix requires positive p and q")
	}
	m := Matrix{P: p, Q: q, Total: total,
		rowStart: make([]int, p), rowVals: make([][]float64, p)}
	// Each row's band is contiguous and VisitBlocks emits it in order, so
	// the first entry of a row fixes rowStart and the rest append.
	VisitBlocks(total, p, q, func(i, j int, v float64) {
		if m.rowVals[i] == nil {
			m.rowStart[i] = j
		}
		m.rowVals[i] = append(m.rowVals[i], v)
	})
	return m
}

// VisitBlocks calls fn for every non-zero entry of the p×q block
// communication matrix for total units of data, in row-major order,
// without materializing the matrix. It is the allocation-free equivalent
// of BlockMatrix followed by NonZeros, for hot paths that only need one
// pass over the O(p+q) non-zeros (e.g. the scheduler's redistribution
// estimates).
func VisitBlocks(total float64, p, q int, fn func(i, j int, v float64)) {
	if p <= 0 || q <= 0 {
		panic("redist: VisitBlocks requires positive p and q")
	}
	unit := total / float64(p*q)
	for i := 0; i < p; i++ {
		// Sender i covers scaled interval [i·q, (i+1)·q); receiver j covers
		// [j·p, (j+1)·p), in units of total/(p·q) (see BlockMatrix).
		lo, hi := i*q, (i+1)*q
		jLast := (hi - 1) / p
		for j := lo / p; j <= jLast; j++ {
			rlo, rhi := j*p, (j+1)*p
			if ov := min(hi, rhi) - max(lo, rlo); ov > 0 {
				fn(i, j, float64(ov)*unit)
			}
		}
	}
}

// At returns M[i][j].
func (m *Matrix) At(i, j int) float64 {
	off := j - m.rowStart[i]
	if off < 0 || off >= len(m.rowVals[i]) {
		return 0
	}
	return m.rowVals[i][off]
}

// RowSum returns the amount of data sender rank i ships (its block size,
// total/p, including any locally-kept part).
func (m *Matrix) RowSum(i int) float64 {
	s := 0.0
	for _, v := range m.rowVals[i] {
		s += v
	}
	return s
}

// ColSum returns the amount of data receiver rank j obtains (total/q).
func (m *Matrix) ColSum(j int) float64 {
	s := 0.0
	for i := 0; i < m.P; i++ {
		s += m.At(i, j)
	}
	return s
}

// Sum returns the total data volume in the matrix (= Total).
func (m *Matrix) Sum() float64 {
	s := 0.0
	for i := 0; i < m.P; i++ {
		s += m.RowSum(i)
	}
	return s
}

// NonZeros calls fn for every non-zero entry.
func (m *Matrix) NonZeros(fn func(i, j int, v float64)) {
	for i := 0; i < m.P; i++ {
		for off, v := range m.rowVals[i] {
			if v > 0 {
				fn(i, m.rowStart[i]+off, v)
			}
		}
	}
}

// IsIdentity reports whether the matrix is diagonal (p == q and every rank
// keeps exactly its own block), i.e. the redistribution is free when sender
// and receiver rank r live on the same processor.
func (m *Matrix) IsIdentity() bool {
	if m.P != m.Q {
		return false
	}
	id := true
	m.NonZeros(func(i, j int, v float64) {
		if i != j {
			id = false
		}
	})
	return id
}

// Flow is one point-to-point transfer between physical processors.
// SrcProc == DstProc denotes a local copy (free under the paper's model).
type Flow struct {
	SrcProc, DstProc int
	Bytes            float64
}

// Flows expands the communication matrix for total units of data from the
// physical sender processors (in rank order) to the physical receiver
// processors (in rank order) into point-to-point flows, merging duplicate
// (src,dst) pairs. Local flows are included; callers that only care about
// wire traffic can skip entries with SrcProc == DstProc.
func Flows(total float64, senders, receivers []int) []Flow {
	m := BlockMatrix(total, len(senders), len(receivers))
	var fs []Flow
	seen := make(map[[2]int]int)
	m.NonZeros(func(i, j int, v float64) {
		key := [2]int{senders[i], receivers[j]}
		if k, ok := seen[key]; ok {
			fs[k].Bytes += v
			return
		}
		seen[key] = len(fs)
		fs = append(fs, Flow{SrcProc: senders[i], DstProc: receivers[j], Bytes: v})
	})
	return fs
}

// LocalBytes returns the number of units that stay on-node for the given
// physical rank orders.
func LocalBytes(total float64, senders, receivers []int) float64 {
	local := 0.0
	for _, f := range Flows(total, senders, receivers) {
		if f.SrcProc == f.DstProc {
			local += f.Bytes
		}
	}
	return local
}

// RemoteBytes returns the number of units that must cross the network.
func RemoteBytes(total float64, senders, receivers []int) float64 {
	return total - LocalBytes(total, senders, receivers)
}

// setWords sizes the stack bitsets used for processor-set comparisons:
// P ≤ 1024 fits in 16 machine words, covering every preset up to big1024.
const setWords = 16

// BitsetMaxP is the largest processor id (exclusive) the stack bitsets
// cover; callers with bigger custom clusters need their own fallback to
// stay allocation-free (the generic paths here allocate).
const BitsetMaxP = setWords * 64

// bitset1024 is a fixed-size processor bitset. add reports whether the
// processor was newly inserted; an out-of-range id reports false with ok
// unset, routing the caller to the generic fallback.
type bitset1024 [setWords]uint64

func (s *bitset1024) add(p int) (fresh, ok bool) {
	if uint(p) >= setWords*64 {
		return false, false
	}
	w, bit := p>>6, uint64(1)<<(p&63)
	if s[w]&bit != 0 {
		return false, true
	}
	s[w] |= bit
	return true, true
}

// SameSet reports whether two processor lists contain the same processors
// (as sets). Together with equal lengths this is the paper's zero-cost
// redistribution condition. Duplicate-free lists with processor ids below
// 1024 — every list the schedulers produce — compare branch-free through
// stack bitsets; anything else takes the sort-based multiset path.
func SameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	var aw, bw bitset1024
	for _, p := range a {
		if fresh, ok := aw.add(p); !fresh || !ok {
			return sameMultiset(a, b)
		}
	}
	for _, p := range b {
		if fresh, ok := bw.add(p); !fresh || !ok {
			return sameMultiset(a, b)
		}
	}
	return aw == bw
}

// sameMultiset is the general sort-based comparison, kept for duplicated
// entries and out-of-range ids (custom clusters beyond 1024 processors).
func sameMultiset(a, b []int) bool {
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Overlap counts the distinct processors present in both lists, branch-
// free via word-wise intersection popcounts when the ids fit the stack
// bitsets (falling back to a map for exotic inputs). AlignReceivers uses
// it to skip alignment work for disjoint sender/receiver sets.
func Overlap(a, b []int) int {
	var aw, bw bitset1024
	for _, p := range a {
		if _, ok := aw.add(p); !ok {
			return overlapGeneric(a, b)
		}
	}
	for _, p := range b {
		if _, ok := bw.add(p); !ok {
			return overlapGeneric(a, b)
		}
	}
	n := 0
	for w := range aw {
		n += bits.OnesCount64(aw[w] & bw[w])
	}
	return n
}

func overlapGeneric(a, b []int) int {
	in := make(map[int]bool, len(a))
	for _, p := range a {
		in[p] = true
	}
	n := 0
	for _, p := range b {
		if in[p] {
			n++
			in[p] = false
		}
	}
	return n
}

// Alignment (the §II-A receiver rank-order optimization) lives in align.go.
