package redist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// alignOracleCase runs both alignment engines on one instance and fails on
// the first rank where they diverge: the sparse path must be byte-identical
// to the dense map-and-matrix implementation, not merely equally optimal.
func alignOracleCase(t *testing.T, total float64, senders, receivers []int, mode AlignMode, sc *AlignScratch) {
	t.Helper()
	denseMode := mode
	if denseMode == AlignAuto {
		if len(receivers) <= AlignAutoExactCap {
			denseMode = AlignHungarian
		} else {
			denseMode = AlignGreedy
		}
	}
	want := alignReceiversDense(nil, total, senders, receivers, denseMode)
	got := AlignReceiversScratch(nil, total, senders, receivers, mode, sc)
	if len(got) != len(want) {
		t.Fatalf("aligned length %d, want %d", len(got), len(want))
	}
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("mode %v p=%d q=%d: rank %d = proc %d, dense oracle says %d\nsenders=%v\nreceivers=%v\ngot =%v\nwant=%v",
				mode, len(senders), len(receivers), r, got[r], want[r], senders, receivers, got, want)
		}
	}
}

// TestAlignSparseVsDenseOracle drives the sparse alignment engine against
// the dense oracle over randomized (cluster scale × widths × overlap
// patterns) instances — well over 500 cases per run, every mode.
func TestAlignSparseVsDenseOracle(t *testing.T) {
	scales := []struct {
		name string
		P    int
	}{{"grelon", 120}, {"big512", 512}, {"big1024", 1024}}
	modes := []AlignMode{AlignHungarian, AlignGreedy, AlignAuto}
	var sc AlignScratch // shared across every case: stale state must not leak
	for _, scale := range scales {
		scale := scale
		t.Run(scale.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(scale.P)))
			for trial := 0; trial < 300; trial++ {
				maxW := 48
				if trial%7 == 0 {
					maxW = 160 // wide allocations: drives AlignAuto past its cap
				}
				p := 1 + rng.Intn(maxW)
				q := 1 + rng.Intn(maxW)
				if p > scale.P {
					p = scale.P
				}
				if q > scale.P {
					q = scale.P
				}
				var senders, receivers []int
				switch trial % 3 {
				case 0:
					// Shifted windows: the half-overlapping pattern the
					// mapper's earliest-available selection produces.
					base := 0
					if span := p + q/2; span < scale.P {
						base = rng.Intn(scale.P - span)
					}
					for i := 0; i < p; i++ {
						senders = append(senders, (base+i)%scale.P)
					}
					for j := 0; j < q; j++ {
						receivers = append(receivers, (base+p/2+j)%scale.P)
					}
					receivers = dedupe(receivers)
				case 1:
					// Same set, scrambled: the RATS adoption case.
					perm := rng.Perm(scale.P)
					senders = append(senders, perm[:p]...)
					receivers = append(receivers, perm[:p]...)
					rng.Shuffle(len(receivers), func(i, j int) {
						receivers[i], receivers[j] = receivers[j], receivers[i]
					})
				default:
					// Independent random sets: overlap from none to full.
					perm := rng.Perm(scale.P)
					senders = append(senders, perm[:p]...)
					perm2 := rng.Perm(scale.P)
					receivers = append(receivers, perm2[:q]...)
				}
				total := 1 + rng.Float64()*1e9
				mode := modes[trial%len(modes)]
				alignOracleCase(t, total, senders, receivers, mode, &sc)
			}
		})
	}
}

// dedupe removes repeated processor ids, keeping first occurrences (the
// shifted-window generator can wrap around small clusters).
func dedupe(ids []int) []int {
	seen := map[int]bool{}
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// TestAlignDegenerateTotalMatchesDense: a non-positive byte count makes
// every band benefit ≤ 0; both modes must then leave the receiver order
// untouched, exactly like the dense fallback (the greedy path once pushed
// the non-positive candidates and permuted anyway).
func TestAlignDegenerateTotalMatchesDense(t *testing.T) {
	senders := []int{0, 1, 2, 3}
	receivers := []int{2, 3, 4, 5, 0, 1}
	for _, total := range []float64{0, -8} {
		for _, mode := range []AlignMode{AlignHungarian, AlignGreedy, AlignAuto} {
			alignOracleCase(t, total, senders, receivers, mode, nil)
		}
	}
}

// TestAlignScratchReuseMatchesFresh pins that a reused scratch gives the
// same answers as a fresh one (no state leaks between calls of different
// sizes and modes).
func TestAlignScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var sc AlignScratch
	for trial := 0; trial < 400; trial++ {
		p := 1 + rng.Intn(20)
		q := 1 + rng.Intn(20)
		perm := rng.Perm(64)
		senders := perm[:p]
		perm2 := rng.Perm(64)
		receivers := perm2[:q]
		mode := AlignMode(rng.Intn(4))
		total := 1 + rng.Float64()*1e6
		fresh := AlignReceiversScratch(nil, total, senders, receivers, mode, nil)
		reused := AlignReceiversScratch(nil, total, senders, receivers, mode, &sc)
		for i := range fresh {
			if fresh[i] != reused[i] {
				t.Fatalf("trial %d mode %v: scratch reuse diverged at rank %d: %v vs %v",
					trial, mode, i, reused, fresh)
			}
		}
	}
}

// TestAlignExoticIDsFallBack covers the dense fallback: processor ids the
// indexed scratch refuses (negative or ≥ 2²⁰) must still align correctly.
func TestAlignExoticIDsFallBack(t *testing.T) {
	senders := []int{maxAlignID + 5, 3, maxAlignID + 9}
	receivers := []int{maxAlignID + 9, maxAlignID + 5, 3}
	got := AlignReceiversScratch(nil, 300, senders, receivers, AlignHungarian, &AlignScratch{})
	for r, p := range got {
		if senders[r] != p {
			t.Errorf("rank %d = proc %d, want %d (identity recovery)", r, p, senders[r])
		}
	}
	neg := AlignReceivers(10, []int{-1, 2}, []int{2, -1}, AlignGreedy)
	if !SameSet(neg, []int{2, -1}) {
		t.Errorf("negative-id alignment lost processors: %v", neg)
	}
}

// Property: AlignAuto keeps at least as many bytes local as greedy, which
// keeps at least as many as no alignment, over randomized overlap patterns
// on both sides of the auto cap.
func TestPropertyAutoDominance(t *testing.T) {
	f := func(seed int64, wide bool) bool {
		r := rand.New(rand.NewSource(seed))
		nProcs := 48
		hi := 12
		if wide {
			nProcs = 400
			hi = 180 // q can exceed AlignAutoExactCap: auto takes greedy
		}
		p := 1 + r.Intn(hi)
		q := 1 + r.Intn(hi)
		senders := r.Perm(nProcs)[:p]
		receivers := r.Perm(nProcs)[:q]
		total := 100.0
		auto := AlignReceivers(total, senders, receivers, AlignAuto)
		greedy := AlignReceivers(total, senders, receivers, AlignGreedy)
		if !SameSet(auto, receivers) || !SameSet(greedy, receivers) {
			return false
		}
		lbA := LocalBytes(total, senders, auto)
		lbG := LocalBytes(total, senders, greedy)
		lbN := LocalBytes(total, senders, receivers)
		return lbA >= lbG-1e-9 && lbG >= lbN-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAlignReceiversIntoNeverAliases: every path of the aligner — early
// exits included — must return storage disjoint from receivers, so a
// caller recycling the result as a candidate buffer can never corrupt the
// committed processor set it was aligned against.
func TestAlignReceiversIntoNeverAliases(t *testing.T) {
	cases := []struct {
		name               string
		senders, receivers []int
		mode               AlignMode
	}{
		{"none-mode", []int{0, 1}, []int{1, 0, 2}, AlignNone},
		{"disjoint", []int{0, 1}, []int{5, 6, 7}, AlignHungarian},
		{"overlap-hungarian", []int{0, 1, 2, 3}, []int{7, 2, 8, 1, 9}, AlignHungarian},
		{"overlap-greedy", []int{0, 1, 2, 3}, []int{7, 2, 8, 1, 9}, AlignGreedy},
		{"overlap-auto", []int{0, 1, 2, 3}, []int{7, 2, 8, 1, 9}, AlignAuto},
		{"exotic-ids", []int{maxAlignID + 1, 4}, []int{4, maxAlignID + 1}, AlignHungarian},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			orig := append([]int(nil), c.receivers...)
			for _, dst := range [][]int{nil, make([]int, 0, 64)} {
				got := AlignReceiversInto(dst, 60, c.senders, c.receivers, c.mode)
				if len(got) != len(c.receivers) {
					t.Fatalf("aligned length %d, want %d", len(got), len(c.receivers))
				}
				for i := range got {
					got[i] = -99 // scribble over the result…
				}
				for i, p := range c.receivers { // …receivers must be untouched
					if p != orig[i] {
						t.Fatalf("result aliases receivers: receivers[%d] became %d", i, p)
					}
				}
				copy(c.receivers, orig)
			}
		})
	}
}

func BenchmarkAlignReceivers(b *testing.B) {
	for _, q := range []int{32, 128, 384} {
		senders := make([]int, q)
		receivers := make([]int, q)
		for i := 0; i < q; i++ {
			senders[i] = i
			receivers[i] = q/2 + i
		}
		var sc AlignScratch
		buf := make([]int, 0, q)
		for _, mode := range []AlignMode{AlignHungarian, AlignGreedy, AlignAuto} {
			mode := mode
			b.Run(mode.String()+"/q="+itoa(q), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					buf = AlignReceiversScratch(buf[:0], 1e9, senders, receivers, mode, &sc)
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestAlignAutoCapBoundary pins the AlignAuto demotion boundary: a receiver
// count of exactly the cap still runs the exact Hungarian engine, one above
// demotes to greedy (and counts as capped), both for the default cap and
// for an explicit AlignReceiversCapped override.
func TestAlignAutoCapBoundary(t *testing.T) {
	run := func(t *testing.T, q, cap int) (exact, greedy, capped uint64) {
		t.Helper()
		senders := make([]int, q)
		receivers := make([]int, q)
		for i := range senders {
			senders[i] = i
			receivers[i] = q/2 + i // half-overlapping: alignment has work to do
		}
		var sc AlignScratch
		AlignReceiversCapped(nil, 1e9, senders, receivers, AlignAuto, cap, &sc)
		return sc.NExact, sc.NGreedy, sc.NCapped
	}
	t.Run("default-cap", func(t *testing.T) {
		for _, tc := range []struct {
			q         int
			wantExact bool
		}{
			{AlignAutoExactCap - 1, true},
			{AlignAutoExactCap, true},
			{AlignAutoExactCap + 1, false},
		} {
			exact, greedy, capped := run(t, tc.q, 0)
			if tc.wantExact && (exact != 1 || greedy != 0 || capped != 0) {
				t.Errorf("q=%d: counters (exact=%d greedy=%d capped=%d), want exact engine", tc.q, exact, greedy, capped)
			}
			if !tc.wantExact && (exact != 0 || greedy != 1 || capped != 1) {
				t.Errorf("q=%d: counters (exact=%d greedy=%d capped=%d), want capped greedy", tc.q, exact, greedy, capped)
			}
		}
	})
	t.Run("explicit-cap", func(t *testing.T) {
		const cap = 24
		for _, tc := range []struct {
			q         int
			wantExact bool
		}{
			{cap - 1, true},
			{cap, true},
			{cap + 1, false},
		} {
			exact, greedy, capped := run(t, tc.q, cap)
			if tc.wantExact && (exact != 1 || greedy != 0 || capped != 0) {
				t.Errorf("q=%d cap=%d: counters (exact=%d greedy=%d capped=%d), want exact engine", tc.q, cap, exact, greedy, capped)
			}
			if !tc.wantExact && (exact != 0 || greedy != 1 || capped != 1) {
				t.Errorf("q=%d cap=%d: counters (exact=%d greedy=%d capped=%d), want capped greedy", tc.q, cap, exact, greedy, capped)
			}
		}
	})
	t.Run("explicit-modes-ignore-cap", func(t *testing.T) {
		exact, greedy, _ := run(t, 64, 0)
		if exact != 1 || greedy != 0 {
			t.Fatalf("sanity: auto at q=64 should be exact")
		}
		senders := make([]int, 64)
		receivers := make([]int, 64)
		for i := range senders {
			senders[i] = i
			receivers[i] = 32 + i
		}
		var sc AlignScratch
		AlignReceiversCapped(nil, 1e9, senders, receivers, AlignHungarian, 8, &sc)
		if sc.NExact != 1 || sc.NGreedy != 0 {
			t.Errorf("AlignHungarian with cap 8: (exact=%d greedy=%d), cap must be ignored", sc.NExact, sc.NGreedy)
		}
	})
}
