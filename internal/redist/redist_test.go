package redist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPaperTableI reproduces Table I of the paper exactly: 10 units of
// data redistributed from p=4 to q=5 processors.
func TestPaperTableI(t *testing.T) {
	m := BlockMatrix(10, 4, 5)
	want := [4][5]float64{
		{2, 0.5, 0, 0, 0},
		{0, 1.5, 1, 0, 0},
		{0, 0, 1, 1.5, 0},
		{0, 0, 0, 0.5, 2},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if got := m.At(i, j); math.Abs(got-want[i][j]) > 1e-12 {
				t.Errorf("M[%d][%d] = %g, want %g", i, j, got, want[i][j])
			}
		}
	}
}

func TestIdentityWhenSameCounts(t *testing.T) {
	m := BlockMatrix(100, 6, 6)
	if !m.IsIdentity() {
		t.Fatal("p == q block matrix must be the identity")
	}
	for i := 0; i < 6; i++ {
		if math.Abs(m.At(i, i)-100.0/6) > 1e-9 {
			t.Errorf("diag[%d] = %g", i, m.At(i, i))
		}
	}
	m45 := BlockMatrix(10, 4, 5)
	if m45.IsIdentity() {
		t.Error("4×5 matrix must not be identity")
	}
}

// Property: conservation — rows sum to total/p, columns to total/q, and
// the whole matrix to total.
func TestPropertyConservation(t *testing.T) {
	f := func(pr, qr uint8, tr uint16) bool {
		p := int(pr)%32 + 1
		q := int(qr)%32 + 1
		total := float64(tr)/7 + 1
		m := BlockMatrix(total, p, q)
		if math.Abs(m.Sum()-total) > 1e-9*total {
			return false
		}
		for i := 0; i < p; i++ {
			if math.Abs(m.RowSum(i)-total/float64(p)) > 1e-9*total {
				return false
			}
		}
		for j := 0; j < q; j++ {
			if math.Abs(m.ColSum(j)-total/float64(q)) > 1e-9*total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the band structure holds — each sender talks to at most
// ceil(q/p)+1 receivers.
func TestPropertyBandWidth(t *testing.T) {
	f := func(pr, qr uint8) bool {
		p := int(pr)%64 + 1
		q := int(qr)%64 + 1
		m := BlockMatrix(1000, p, q)
		maxPeers := (q+p-1)/p + 1
		for i := 0; i < p; i++ {
			peers := 0
			m.NonZeros(func(ii, j int, v float64) {
				if ii == i {
					peers++
				}
			})
			if peers > maxPeers {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFlowsMapping(t *testing.T) {
	// 4 senders on procs 10..13, 5 receivers on procs 20..24.
	senders := []int{10, 11, 12, 13}
	receivers := []int{20, 21, 22, 23, 24}
	fs := Flows(10, senders, receivers)
	bytes := 0.0
	for _, f := range fs {
		if f.SrcProc < 10 || f.SrcProc > 13 || f.DstProc < 20 || f.DstProc > 24 {
			t.Errorf("flow endpoints out of range: %+v", f)
		}
		bytes += f.Bytes
	}
	if math.Abs(bytes-10) > 1e-12 {
		t.Errorf("total flow bytes = %g, want 10", bytes)
	}
	// Disjoint sets: no local traffic.
	if lb := LocalBytes(10, senders, receivers); lb != 0 {
		t.Errorf("LocalBytes = %g, want 0 for disjoint sets", lb)
	}
}

func TestSameSetFreeRedistribution(t *testing.T) {
	procs := []int{4, 7, 9}
	if !SameSet(procs, []int{9, 4, 7}) {
		t.Error("SameSet should be order-insensitive")
	}
	if SameSet(procs, []int{4, 7}) || SameSet(procs, []int{4, 7, 8}) {
		t.Error("SameSet false positives")
	}
	// Same set, same order: everything is local.
	if rb := RemoteBytes(99, procs, procs); rb != 0 {
		t.Errorf("RemoteBytes = %g, want 0 on identical rank orders", rb)
	}
}

// TestSameSetBitsetAgreesWithMultiset cross-checks the branch-free bitset
// comparison against the sort-based multiset semantics on random lists,
// including the fallback triggers: duplicated entries and ids ≥ 1024.
func TestSameSetBitsetAgreesWithMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randList := func(n, span int, dup bool) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = rng.Intn(span)
		}
		if !dup { // make entries distinct by offsetting collisions
			seen := map[int]bool{}
			for i := range out {
				for seen[out[i]] {
					out[i] = (out[i] + 1) % span
				}
				seen[out[i]] = true
			}
		}
		return out
	}
	for trial := 0; trial < 2000; trial++ {
		span := 40
		if trial%5 == 0 {
			span = 5000 // out of bitset range: generic path
		}
		n := 1 + rng.Intn(12)
		a := randList(n, span, trial%3 == 0)
		var b []int
		switch trial % 4 {
		case 0: // permutation of a
			b = append([]int(nil), a...)
			rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		case 1: // one entry perturbed
			b = append([]int(nil), a...)
			b[rng.Intn(len(b))]++
		default:
			b = randList(n, span, trial%3 == 0)
		}
		if got, want := SameSet(a, b), sameMultiset(a, b); got != want {
			t.Fatalf("SameSet(%v, %v) = %v, multiset says %v", a, b, got, want)
		}
	}
	// Length mismatch short-circuits.
	if SameSet([]int{1, 2}, []int{1, 2, 3}) {
		t.Error("SameSet must reject different lengths")
	}
	// Duplicates must stay multiset-compared: same set, same length,
	// different multiplicities.
	if SameSet([]int{1, 1, 2}, []int{1, 2, 2}) {
		t.Error("SameSet must distinguish multiplicities")
	}
}

func TestOverlapCounts(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{0, 1, 2, 3}, []int{2, 3, 4, 5}, 2},
		{[]int{0, 1}, []int{2, 3}, 0},
		{[]int{5, 9, 1023}, []int{1023, 5, 9}, 3},
		{nil, []int{1}, 0},
		{[]int{2000, 1, 3000}, []int{3000, 7}, 1}, // generic fallback
	}
	for _, c := range cases {
		if got := Overlap(c.a, c.b); got != c.want {
			t.Errorf("Overlap(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Overlap(c.b, c.a); got != c.want {
			t.Errorf("Overlap(%v, %v) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestAlignReceiversDisjointFastPath(t *testing.T) {
	// Disjoint sender/receiver sets keep the receiver order untouched —
	// the bitset early exit must agree with the full alignment machinery.
	senders := []int{0, 1, 2}
	receivers := []int{10, 11, 12, 13}
	for _, mode := range []AlignMode{AlignHungarian, AlignGreedy} {
		got := AlignReceivers(30, senders, receivers, mode)
		for i, p := range got {
			if p != receivers[i] {
				t.Fatalf("mode %d: disjoint alignment reordered receivers: %v", mode, got)
			}
		}
	}
}

func TestAlignReceiversRecoversIdentity(t *testing.T) {
	// Receiver set equals sender set but scrambled; alignment must recover
	// the fully-local order.
	senders := []int{3, 1, 4, 1 + 4, 9, 2} // procs 3,1,4,5,9,2
	receivers := []int{9, 2, 3, 5, 1, 4}
	for _, mode := range []AlignMode{AlignHungarian, AlignGreedy} {
		got := AlignReceivers(600, senders, receivers, mode)
		for r, p := range got {
			if senders[r] != p {
				t.Errorf("mode %d: rank %d = proc %d, want %d", mode, r, p, senders[r])
			}
		}
		if rb := RemoteBytes(600, senders, got); rb != 0 {
			t.Errorf("mode %d: RemoteBytes = %g after alignment, want 0", mode, rb)
		}
	}
}

func TestAlignReceiversPartialOverlap(t *testing.T) {
	senders := []int{0, 1, 2, 3}
	receivers := []int{7, 2, 8, 1, 9} // shares procs 1 and 2
	aligned := AlignReceivers(10, senders, receivers, AlignHungarian)
	// Alignment must not lose or duplicate processors.
	if !SameSet(aligned, receivers) {
		t.Fatalf("aligned %v is not a permutation of %v", aligned, receivers)
	}
	before := LocalBytes(10, senders, receivers)
	after := LocalBytes(10, senders, aligned)
	if after < before-1e-12 {
		t.Errorf("alignment decreased local bytes: %g -> %g", before, after)
	}
	if after <= 0 {
		t.Errorf("expected some local traffic after alignment, got %g", after)
	}
}

func TestAlignNoneKeepsOrder(t *testing.T) {
	receivers := []int{5, 6, 7}
	got := AlignReceivers(10, []int{5, 6, 7}, receivers, AlignNone)
	for i := range receivers {
		if got[i] != receivers[i] {
			t.Fatalf("AlignNone permuted the receivers: %v", got)
		}
	}
}

// Property: Hungarian alignment is at least as good as greedy, which is at
// least as good as none; and all modes return permutations.
func TestPropertyAlignmentDominance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nProcs := 12
		p := 1 + r.Intn(6)
		q := 1 + r.Intn(6)
		perm := r.Perm(nProcs)
		senders := perm[:p]
		perm2 := r.Perm(nProcs)
		receivers := perm2[:q]
		total := 100.0
		hung := AlignReceivers(total, senders, receivers, AlignHungarian)
		greedy := AlignReceivers(total, senders, receivers, AlignGreedy)
		if !SameSet(hung, receivers) || !SameSet(greedy, receivers) {
			return false
		}
		lbH := LocalBytes(total, senders, hung)
		lbG := LocalBytes(total, senders, greedy)
		lbN := LocalBytes(total, senders, receivers)
		return lbH >= lbG-1e-9 && lbH >= lbN-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBlockMatrix120x120(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BlockMatrix(1e9, 120, 120)
	}
}

func BenchmarkAlignHungarian32(b *testing.B) {
	senders := make([]int, 32)
	receivers := make([]int, 32)
	for i := range senders {
		senders[i] = i
		receivers[i] = 31 - i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AlignReceivers(1e9, senders, receivers, AlignHungarian)
	}
}

// TestVisitBlocksMatchesBlockMatrix: the allocation-free traversal must
// produce exactly the non-zeros of the materialized matrix, in the same
// row-major order.
func TestVisitBlocksMatchesBlockMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		p := 1 + rng.Intn(64)
		q := 1 + rng.Intn(64)
		total := rng.Float64() * 1e9
		m := BlockMatrix(total, p, q)
		type entry struct {
			i, j int
			v    float64
		}
		var want, got []entry
		m.NonZeros(func(i, j int, v float64) { want = append(want, entry{i, j, v}) })
		VisitBlocks(total, p, q, func(i, j int, v float64) { got = append(got, entry{i, j, v}) })
		if len(got) != len(want) {
			t.Fatalf("p=%d q=%d: %d entries, want %d", p, q, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("p=%d q=%d entry %d: %+v, want %+v", p, q, k, got[k], want[k])
			}
		}
	}
}

func TestVisitBlocksPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("VisitBlocks(10, 0, 5) should panic")
		}
	}()
	VisitBlocks(10, 0, 5, func(i, j int, v float64) {})
}
