// Receiver rank-order alignment (§II-A self-communication maximization).
//
// The benefit matrix of an alignment — benefit[s][j] = bytes kept local if
// shared processor s takes receiver rank j — inherits the band structure of
// the 1-D block communication matrix: sender rank r only overlaps a
// contiguous run of ⌈q/p⌉+1 receiver ranks, so the q×q assignment problem
// has O(p+q) non-zeros, not q². The alignment engine enumerates exactly
// that band (the same arithmetic VisitBlocks uses, so weights are
// bit-identical to the materialized matrix), routes the Hungarian mode
// through assign.MaxWeightSparse, and keeps all working state in an
// AlignScratch, which makes the mapper's candidate-evaluation loop
// allocation-free.
package redist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/assign"
)

// AlignMode selects how AlignReceivers orders the receiver ranks.
type AlignMode int

const (
	// AlignHungarian maximizes self-communication bytes optimally.
	AlignHungarian AlignMode = iota
	// AlignGreedy assigns shared processors to their best free receiver
	// rank in decreasing-benefit order (cheap, near-optimal in practice).
	AlignGreedy
	// AlignNone keeps the receiver list order unchanged.
	AlignNone
	// AlignAuto is the size-capped policy: exact Hungarian up to
	// AlignAutoExactCap receiver ranks, deterministic greedy above it. The
	// Hungarian assignment is O(q³) worst case while greedy is
	// O((p+q)·log(p+q)) on the banded benefit structure, and the optimality
	// gap shrinks with q (most band weights tie), so capping trades a
	// vanishing amount of locality for bounded mapping cost on very wide
	// allocations.
	AlignAuto
)

// AlignAutoExactCap is the largest receiver count for which AlignAuto
// still runs the exact Hungarian assignment.
const AlignAutoExactCap = 128

// String implements fmt.Stringer; the returned name round-trips through
// ParseAlignMode. Out-of-range values render as "AlignMode(n)".
func (m AlignMode) String() string {
	switch m {
	case AlignHungarian:
		return "hungarian"
	case AlignGreedy:
		return "greedy"
	case AlignNone:
		return "none"
	case AlignAuto:
		return "auto"
	}
	return fmt.Sprintf("AlignMode(%d)", int(m))
}

// ParseAlignMode converts an alignment name (case-insensitive: "hungarian",
// "greedy", "none", "auto") into an AlignMode.
func ParseAlignMode(name string) (AlignMode, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "hungarian":
		return AlignHungarian, nil
	case "greedy":
		return AlignGreedy, nil
	case "none":
		return AlignNone, nil
	case "auto":
		return AlignAuto, nil
	}
	return 0, fmt.Errorf("redist: unknown alignment mode %q (want hungarian, greedy, none or auto)", name)
}

// maxAlignID bounds the processor ids the indexed scratch path accepts;
// anything negative or beyond it (no cluster preset comes close) takes the
// map-based dense fallback rather than sizing id-indexed slices to an
// arbitrary integer.
const maxAlignID = 1 << 20

// alignCand is one greedy candidate: shared processor proc kept b bytes
// local if it takes receiver rank j.
type alignCand struct {
	proc, j int
	b       float64
}

// alignCands orders candidates by decreasing benefit with (proc, j)
// tie-breaks — the deterministic greedy consumption order. It implements
// sort.Interface on the scratch-held slice so sorting stays allocation-free
// (sort.Slice would allocate its closure and reflect swapper per call).
type alignCands struct{ c []alignCand }

func (a *alignCands) Len() int      { return len(a.c) }
func (a *alignCands) Swap(i, j int) { a.c[i], a.c[j] = a.c[j], a.c[i] }
func (a *alignCands) Less(i, j int) bool {
	if a.c[i].b != a.c[j].b {
		return a.c[i].b > a.c[j].b
	}
	if a.c[i].proc != a.c[j].proc {
		return a.c[i].proc < a.c[j].proc
	}
	return a.c[i].j < a.c[j].j
}

// AlignScratch owns the working state of AlignReceiversScratch: processor-
// indexed rank/assignment slices (replacing the per-call maps), the CSR
// triples of the banded benefit matrix, the receiver-rank occupancy marks,
// the greedy candidate list and the Hungarian solver scratch. Reusing one
// scratch across calls makes alignment allocation-free in steady state.
// The zero value is ready; an AlignScratch is not safe for concurrent use.
type AlignScratch struct {
	rank   []int32 // by processor id: sender rank + 1 (0 = not a sender)
	chosen []int32 // by processor id: assigned receiver rank + 1 (0 = none)
	shared []int   // processors in both sets, in receiver order
	rowPtr []int   // CSR of the banded benefit matrix (rows = shared procs)
	cols   []int
	wts    []float64
	taken  []bool // by receiver rank: slot already filled
	cands  alignCands
	asg    assign.Scratch

	// Solve counters, accumulated across calls sharing this scratch and
	// read by the mapper's observability snapshot: exact Hungarian solves,
	// greedy solves, and the subset of greedy solves that were AlignAuto
	// demotions past AlignAutoExactCap. Early exits (AlignNone, empty or
	// disjoint receiver sets) don't count — nothing was solved.
	NExact  uint64
	NGreedy uint64
	NCapped uint64
}

// ResetCounters zeroes the scratch's solve counters.
func (sc *AlignScratch) ResetCounters() { sc.NExact, sc.NGreedy, sc.NCapped = 0, 0, 0 }

// ensure sizes the id-indexed and rank-indexed slices. Entries of rank and
// chosen are zero outside a call (the epilogue clears exactly the entries
// it set), so growth is the only time they are written wholesale.
func (sc *AlignScratch) ensure(ids, q int) {
	if len(sc.rank) < ids {
		sc.rank = make([]int32, ids)
		sc.chosen = make([]int32, ids)
	}
	if cap(sc.taken) < q {
		sc.taken = make([]bool, q)
	}
	sc.taken = sc.taken[:q]
	for i := range sc.taken {
		sc.taken[i] = false
	}
}

// AlignReceivers returns a permutation of receivers (a rank order) chosen
// to maximize the bytes that stay local given the sender rank order. Only
// processors present in both lists can produce local traffic; the others
// fill the remaining ranks in their original relative order.
func AlignReceivers(total float64, senders, receivers []int, mode AlignMode) []int {
	return AlignReceiversScratch(nil, total, senders, receivers, mode, nil)
}

// AlignReceiversInto is AlignReceivers writing the aligned rank order into
// dst (grown as needed), so hot mapping paths can recycle candidate
// buffers instead of allocating one per evaluated placement. dst must not
// alias receivers. The returned slice always has len(receivers) elements,
// every one of them written, and never shares memory with receivers.
func AlignReceiversInto(dst []int, total float64, senders, receivers []int, mode AlignMode) []int {
	return AlignReceiversScratch(dst, total, senders, receivers, mode, nil)
}

// AlignReceiversScratch is AlignReceiversInto with an explicit reusable
// scratch: with a non-nil sc the call allocates nothing beyond dst growth.
// Passing a nil scratch uses a temporary one.
func AlignReceiversScratch(dst []int, total float64, senders, receivers []int, mode AlignMode, sc *AlignScratch) []int {
	return AlignReceiversCapped(dst, total, senders, receivers, mode, AlignAutoExactCap, sc)
}

// AlignReceiversCapped is AlignReceiversScratch with an explicit AlignAuto
// demotion cap: receiver counts up to autoCap run the exact Hungarian
// assignment, larger ones the deterministic greedy. autoCap ≤ 0 means
// AlignAutoExactCap. The cap only matters for AlignAuto; the explicit modes
// ignore it.
func AlignReceiversCapped(dst []int, total float64, senders, receivers []int, mode AlignMode, autoCap int, sc *AlignScratch) []int {
	capped := false
	if mode == AlignAuto {
		if autoCap <= 0 {
			autoCap = AlignAutoExactCap
		}
		if len(receivers) <= autoCap {
			mode = AlignHungarian
		} else {
			mode = AlignGreedy
			capped = true
		}
	}
	if mode == AlignNone || len(receivers) == 0 {
		return append(dst[:0], receivers...)
	}
	if Overlap(senders, receivers) == 0 {
		// Disjoint sets cannot keep any byte local: nothing to align, and
		// the bitset test skips the rank index and band walk entirely.
		return append(dst[:0], receivers...)
	}
	maxID := 0
	for _, pr := range senders {
		if pr < 0 || pr >= maxAlignID {
			return alignReceiversDense(dst, total, senders, receivers, mode)
		}
		if pr > maxID {
			maxID = pr
		}
	}
	for _, pr := range receivers {
		if pr < 0 || pr >= maxAlignID {
			return alignReceiversDense(dst, total, senders, receivers, mode)
		}
		if pr > maxID {
			maxID = pr
		}
	}
	if sc == nil {
		sc = &AlignScratch{}
	}
	p, q := len(senders), len(receivers)
	sc.ensure(maxID+1, q)
	for r, pr := range senders {
		sc.rank[pr] = int32(r) + 1
	}
	sc.shared = sc.shared[:0]
	for _, pr := range receivers {
		if sc.rank[pr] != 0 {
			sc.shared = append(sc.shared, pr)
		}
	}

	// CSR of the banded benefit matrix: row si holds the non-zero overlaps
	// of shared processor si's sender rank, enumerated with BlockMatrix's
	// exact integer-overlap arithmetic (same expressions, same values).
	sc.rowPtr = append(sc.rowPtr[:0], 0)
	sc.cols = sc.cols[:0]
	sc.wts = sc.wts[:0]
	unit := total / float64(p*q)
	for _, pr := range sc.shared {
		r := int(sc.rank[pr]) - 1
		lo, hi := r*q, (r+1)*q
		jLast := (hi - 1) / p
		for j := lo / p; j <= jLast; j++ {
			rlo, rhi := j*p, (j+1)*p
			if ov := min(hi, rhi) - max(lo, rlo); ov > 0 {
				sc.cols = append(sc.cols, j)
				sc.wts = append(sc.wts, float64(ov)*unit)
			}
		}
		sc.rowPtr = append(sc.rowPtr, len(sc.cols))
	}

	switch mode {
	case AlignHungarian:
		sc.NExact++
		// Square q×q problem: rows are receiver slots; the first
		// len(shared) rows are the shared processors, the rest are
		// implicit all-zero rows the sparse solver never stores.
		asg, _ := assign.MaxWeightSparse(q, sc.rowPtr, sc.cols, sc.wts, &sc.asg)
		for si, pr := range sc.shared {
			sc.chosen[pr] = int32(asg[si]) + 1
		}
	case AlignGreedy:
		sc.NGreedy++
		if capped {
			sc.NCapped++
		}
		sc.cands.c = sc.cands.c[:0]
		for si, pr := range sc.shared {
			for k := sc.rowPtr[si]; k < sc.rowPtr[si+1]; k++ {
				// Positive benefits only, mirroring the dense path: with a
				// degenerate non-positive total the whole band is ≤ 0 and
				// greedy must leave the receiver order untouched.
				if sc.wts[k] > 0 {
					sc.cands.c = append(sc.cands.c, alignCand{proc: pr, j: sc.cols[k], b: sc.wts[k]})
				}
			}
		}
		sort.Sort(&sc.cands)
		for _, c := range sc.cands.c {
			if sc.chosen[c.proc] != 0 || sc.taken[c.j] {
				continue
			}
			sc.chosen[c.proc] = int32(c.j) + 1
			sc.taken[c.j] = true
		}
		for i := range sc.taken {
			sc.taken[i] = false // reused below for the slot fill
		}
	}

	var out []int
	if cap(dst) >= q {
		out = dst[:q]
	} else {
		out = make([]int, q)
	}
	for _, pr := range sc.shared {
		if cr := sc.chosen[pr]; cr != 0 {
			out[cr-1] = pr
			sc.taken[cr-1] = true
		}
	}
	slot := 0
	for _, pr := range receivers {
		if sc.chosen[pr] != 0 {
			continue
		}
		for sc.taken[slot] {
			slot++
		}
		out[slot] = pr
		sc.taken[slot] = true
	}
	for _, pr := range senders {
		sc.rank[pr] = 0
	}
	for _, pr := range sc.shared {
		sc.chosen[pr] = 0
	}
	return out
}

// alignReceiversDense is the original map-and-matrix implementation, kept
// for processor ids outside the indexed-scratch range and as the in-package
// oracle the sparse path is tested against.
func alignReceiversDense(dst []int, total float64, senders, receivers []int, mode AlignMode) []int {
	senderRank := make(map[int]int, len(senders))
	for r, p := range senders {
		senderRank[p] = r
	}
	var shared []int // processors in both sets
	for _, p := range receivers {
		if _, ok := senderRank[p]; ok {
			shared = append(shared, p)
		}
	}
	if len(shared) == 0 {
		return append(dst[:0], receivers...)
	}
	m := BlockMatrix(total, len(senders), len(receivers))
	q := len(receivers)

	// benefit[s][j]: bytes kept local if shared proc s takes receiver rank j.
	benefit := func(proc, j int) float64 { return m.At(senderRank[proc], j) }

	rankOf := make(map[int]int, len(shared)) // proc -> chosen receiver rank
	switch mode {
	case AlignHungarian:
		// Square |q|×|q| problem: rows are receiver slots; the first
		// len(shared) rows are the shared processors, the rest are dummy
		// (zero benefit everywhere).
		w := make([][]float64, q)
		for i := range w {
			w[i] = make([]float64, q)
		}
		for si, p := range shared {
			for j := 0; j < q; j++ {
				w[si][j] = benefit(p, j)
			}
		}
		asg, _ := assign.MaxWeight(w)
		for si, p := range shared {
			rankOf[p] = asg[si]
		}
	case AlignGreedy:
		var cands []alignCand
		for _, p := range shared {
			for j := 0; j < q; j++ {
				if b := benefit(p, j); b > 0 {
					cands = append(cands, alignCand{p, j, b})
				}
			}
		}
		sort.Sort(&alignCands{cands})
		usedRank := make([]bool, q)
		for _, c := range cands {
			if _, done := rankOf[c.proc]; done || usedRank[c.j] {
				continue
			}
			rankOf[c.proc] = c.j
			usedRank[c.j] = true
		}
	}

	var out []int
	if cap(dst) >= q {
		out = dst[:q]
	} else {
		out = make([]int, q)
	}
	taken := make([]bool, q)
	placed := make(map[int]bool, len(rankOf))
	for p, r := range rankOf {
		out[r] = p
		taken[r] = true
		placed[p] = true
	}
	slot := 0
	for _, p := range receivers {
		if placed[p] {
			continue
		}
		for taken[slot] {
			slot++
		}
		out[slot] = p
		taken[slot] = true
	}
	return out
}
