package redist_test

import (
	"fmt"

	"repro/internal/redist"
)

// ExampleBlockMatrix reproduces Table I of the paper: redistributing 10
// units of data from a 4-processor 1-D block layout to a 5-processor one.
func ExampleBlockMatrix() {
	m := redist.BlockMatrix(10, 4, 5)
	for i := 0; i < 4; i++ {
		row := ""
		for j := 0; j < 5; j++ {
			row += fmt.Sprintf(" %4.1f", m.At(i, j))
		}
		fmt.Println(row)
	}
	// Output:
	//   2.0  0.5  0.0  0.0  0.0
	//   0.0  1.5  1.0  0.0  0.0
	//   0.0  0.0  1.0  1.5  0.0
	//   0.0  0.0  0.0  0.5  2.0
}

// ExampleAlignReceivers shows the self-communication maximization of
// §II-A: when producer and consumer share processors, the consumer's rank
// order is permuted so data stays local.
func ExampleAlignReceivers() {
	senders := []int{3, 7, 9, 11}
	receivers := []int{9, 3, 11, 7} // same set, scrambled
	aligned := redist.AlignReceivers(100, senders, receivers, redist.AlignHungarian)
	fmt.Println("aligned ranks:", aligned)
	fmt.Println("remote bytes :", redist.RemoteBytes(100, senders, aligned))
	// Output:
	// aligned ranks: [3 7 9 11]
	// remote bytes : 0
}

// ExampleFlows expands a redistribution into the point-to-point transfers
// the simulator executes.
func ExampleFlows() {
	for _, f := range redist.Flows(12, []int{0, 1}, []int{1, 2, 3}) {
		fmt.Printf("proc %d -> proc %d: %g\n", f.SrcProc, f.DstProc, f.Bytes)
	}
	// Output:
	// proc 0 -> proc 1: 4
	// proc 0 -> proc 2: 2
	// proc 1 -> proc 2: 2
	// proc 1 -> proc 3: 4
}
