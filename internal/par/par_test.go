package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	var counts [n]int32
	ForEach(n, 8, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEachSequentialFallback(t *testing.T) {
	order := []int{}
	ForEach(5, 1, func(i int) { order = append(order, i) }) // workers=1: in order
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential ForEach out of order: %v", order)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(i int) { called = true })
	ForEach(-3, 4, func(i int) { called = true })
	if called {
		t.Error("ForEach should not invoke fn for non-positive n")
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var total int64
	ForEach(100, 0, func(i int) { atomic.AddInt64(&total, int64(i)) })
	if total != 4950 {
		t.Errorf("sum = %d, want 4950", total)
	}
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers must be at least 1")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	out := Map(50, 4, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestPoolVisitsEveryIndexOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 500
	// Three back-to-back batches on one pool: reuse must not drop or
	// double-run indices.
	for round := 0; round < 3; round++ {
		var counts [n]int32
		p.Run(n, func(w, i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("round %d: index %d visited %d times", round, i, c)
			}
		}
	}
}

func TestPoolWorkerIDsStayInRange(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	defer p.Close()
	var hit [workers]int32
	p.Run(200, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d out of range", w)
			return
		}
		atomic.AddInt32(&hit[w], 1)
	})
	var total int32
	for _, h := range hit {
		total += h
	}
	if total != 200 {
		t.Fatalf("ran %d of 200 indices", total)
	}
	if hit[0] == 0 {
		t.Error("the calling goroutine (worker 0) must participate")
	}
}

func TestPoolSingleWorkerRunsInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	order := []int{}
	p.Run(6, func(w, i int) {
		if w != 0 {
			t.Errorf("worker %d in a width-1 pool", w)
		}
		order = append(order, i) // safe: single worker, no goroutines
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("width-1 pool out of order: %v", order)
		}
	}
}

func TestPoolMoreWorkersThanItems(t *testing.T) {
	p := NewPool(16)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 3} {
		var count int32
		p.Run(n, func(w, i int) { atomic.AddInt32(&count, 1) })
		if int(count) != n {
			t.Fatalf("n=%d: ran %d indices", n, count)
		}
	}
}

func TestPoolClampsWidth(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
	ran := false
	p.Run(1, func(w, i int) { ran = true })
	if !ran {
		t.Fatal("clamped pool did not run")
	}
}

// Property: a pooled sum over any (n, width) equals the serial sum.
func TestPropertyPoolEquivalence(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw) % 128
		w := int(wRaw)%8 + 1
		p := NewPool(w)
		defer p.Close()
		var got int64
		p.Run(n, func(_, i int) { atomic.AddInt64(&got, int64(3*i+1)) })
		want := int64(0)
		for i := 0; i < n; i++ {
			want += int64(3*i + 1)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Map with any worker count equals the sequential map.
func TestPropertyMapEquivalence(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw) % 64
		w := int(wRaw)%8 + 1
		got := Map(n, w, func(i int) int { return 3*i + 1 })
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != 3*i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
