package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 1000
	var counts [n]int32
	ForEach(n, 8, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEachSequentialFallback(t *testing.T) {
	order := []int{}
	ForEach(5, 1, func(i int) { order = append(order, i) }) // workers=1: in order
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential ForEach out of order: %v", order)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(i int) { called = true })
	ForEach(-3, 4, func(i int) { called = true })
	if called {
		t.Error("ForEach should not invoke fn for non-positive n")
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var total int64
	ForEach(100, 0, func(i int) { atomic.AddInt64(&total, int64(i)) })
	if total != 4950 {
		t.Errorf("sum = %d, want 4950", total)
	}
	if DefaultWorkers() < 1 {
		t.Error("DefaultWorkers must be at least 1")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	out := Map(50, 4, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// Property: Map with any worker count equals the sequential map.
func TestPropertyMapEquivalence(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw) % 64
		w := int(wRaw)%8 + 1
		got := Map(n, w, func(i int) int { return 3*i + 1 })
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != 3*i+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
