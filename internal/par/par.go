// Package par provides small parallel-execution utilities used by the
// experiment harness to fan simulation scenarios out across CPU cores and
// by the mapping engine to shard candidate evaluation.
//
// The helpers deliberately avoid any external dependency: a bounded worker
// pool over a work channel, a ForEach convenience wrapper with
// deterministic result ordering (results land at their input index, so
// parallel runs produce byte-identical reports), and a reusable Pool for
// callers that fan out many small batches and cannot afford per-batch
// goroutine churn.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default worker count: GOMAXPROCS, at least 1.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) using at most workers goroutines.
// If workers <= 0, DefaultWorkers() is used. ForEach returns once all calls
// have completed. fn must be safe for concurrent invocation on distinct
// indices.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Map applies fn to every index in [0, n) in parallel and collects the
// results in input order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// Pool is a reusable sharded-evaluation pool: NewPool spawns workers−1
// goroutines once, and every Run call fans one batch of indices out over
// them plus the calling goroutine. It exists for callers that run many
// small batches back to back (the mapping engine evaluates a handful of
// candidates per task, thousands of tasks per run): ForEach would pay one
// goroutine spawn per batch item-set, a Pool pays it once per lifetime.
//
// Indices are claimed dynamically from a shared atomic cursor, so the
// index→worker assignment is nondeterministic — callers needing
// deterministic output must make fn(w, i)'s effect independent of w
// (per-worker scratch only) and reduce results by index afterwards.
//
// A Pool is owned by one driver goroutine: Run must not be called
// concurrently, and Close must be called exactly once when done (idle
// workers block on a channel and would otherwise leak).
type Pool struct {
	workers int
	n       int64
	fn      func(worker, i int)
	next    atomic.Int64
	cmds    []chan struct{}
	wg      sync.WaitGroup
	// laneN[w] counts indices lane w claimed over the pool's lifetime.
	// Each slot is written only by its own lane (single-writer, plain
	// stores), so reading them is safe whenever no Run is in flight.
	laneN []int64
}

// NewPool creates a pool of the given total width (the caller counts as
// worker 0; workers−1 goroutines are spawned). Widths below 1 are clamped
// to 1, which degenerates to inline execution.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers, cmds: make([]chan struct{}, workers-1), laneN: make([]int64, workers)}
	for i := range p.cmds {
		ch := make(chan struct{}, 1)
		p.cmds[i] = ch
		id := i + 1
		go func() {
			for range ch {
				p.work(id)
				p.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's total width, including the caller.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(worker, i) for every i in [0, n), with worker ∈
// [0, Workers()) identifying which lane ran the call (stable scratch
// binding: two concurrent calls never share a worker id). Run returns when
// every index has been processed. fn must be safe for concurrent
// invocation on distinct indices.
func (p *Pool) Run(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	p.fn = fn
	p.n = int64(n)
	p.next.Store(0)
	// Never wake more helpers than there are indices beyond the caller's
	// first claim: a starved worker would only bump the cursor and leave.
	extra := p.workers - 1
	if extra > n-1 {
		extra = n - 1
	}
	p.wg.Add(extra)
	for i := 0; i < extra; i++ {
		p.cmds[i] <- struct{}{}
	}
	p.work(0)
	p.wg.Wait()
	p.fn = nil
}

func (p *Pool) work(worker int) {
	for {
		i := p.next.Add(1) - 1
		if i >= p.n {
			return
		}
		p.laneN[worker]++
		p.fn(worker, int(i))
	}
}

// LaneCounts returns how many indices each lane claimed over the pool's
// lifetime (index 0 is the calling goroutine's lane). The returned slice
// is a copy; call between Run invocations, not during one.
func (p *Pool) LaneCounts() []int64 {
	out := make([]int64, len(p.laneN))
	copy(out, p.laneN)
	return out
}

// Close releases the pool's goroutines. The pool must not be used after.
func (p *Pool) Close() {
	for _, ch := range p.cmds {
		close(ch)
	}
}
