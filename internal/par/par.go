// Package par provides small parallel-execution utilities used by the
// experiment harness to fan simulation scenarios out across CPU cores.
//
// The helpers deliberately avoid any external dependency: a bounded worker
// pool over a work channel, plus a ForEach convenience wrapper with
// deterministic result ordering (results land at their input index, so
// parallel runs produce byte-identical reports).
package par

import (
	"runtime"
	"sync"
)

// DefaultWorkers returns the default worker count: GOMAXPROCS, at least 1.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) using at most workers goroutines.
// If workers <= 0, DefaultWorkers() is used. ForEach returns once all calls
// have completed. fn must be safe for concurrent invocation on distinct
// indices.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Map applies fn to every index in [0, n) in parallel and collects the
// results in input order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
