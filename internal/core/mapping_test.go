package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/redist"
)

// chain builds an n-task chain with uniform costs.
func chain(n int, m float64) *dag.Graph {
	g := dag.NewGraph(n, n-1)
	for i := 0; i < n; i++ {
		g.AddTask(dag.Task{Name: "c", M: m, A: 128, Alpha: 0.1})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, g.Tasks[i-1].Bytes())
	}
	return g
}

func setup(g *dag.Graph, cl *platform.Cluster) (*moldable.Costs, []int) {
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
	return costs, a
}

func TestBaselineScheduleValidates(t *testing.T) {
	cl := platform.Grillon()
	g := gen.Random(gen.RandomParams{N: 50, Width: 0.5, Regularity: 0.8, Density: 0.2, Layered: true, Seed: 4})
	costs, a := setup(g, cl)
	s := Map(g, costs, cl, a, DefaultNaive(StrategyNone))
	if err := s.Validate(g, cl); err != nil {
		t.Fatal(err)
	}
	if s.EstMakespan() <= 0 {
		t.Error("estimated makespan should be positive")
	}
	// Baseline never modifies the allocation.
	for i := range a {
		if s.Alloc[i] != a[i] {
			t.Errorf("baseline changed allocation of task %d: %d -> %d", i, a[i], s.Alloc[i])
		}
	}
}

func TestChainOnSameProcsHasNoRedistribution(t *testing.T) {
	// Equal allocations down a chain: the delta strategy (δ+=0) must snap
	// each task to its predecessor's exact processor set, making every
	// estimated start equal to the predecessor's finish (no redistribution
	// delay in the estimates).
	cl := platform.Grillon()
	g := chain(5, 40e6)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := make([]int, g.N())
	for i := range a {
		a[i] = 8
	}
	s := Map(g, costs, cl, a, DefaultNaive(StrategyDelta))
	for i := 1; i < g.N(); i++ {
		if !redist.SameSet(s.Procs[i], s.Procs[i-1]) {
			t.Fatalf("task %d not snapped to predecessor's processors", i)
		}
		if math.Abs(s.EstStart[i]-s.EstFinish[i-1]) > 1e-9 {
			t.Errorf("task %d starts %g after predecessor finish (want 0)",
				i, s.EstStart[i]-s.EstFinish[i-1])
		}
	}
	// Baseline, by contrast, pays redistribution estimates? Not on a chain:
	// earliest-available procs are the predecessor's (they free first), so
	// the sets coincide. This is why RATS gains appear on less trivial
	// graphs; here we only check the baseline is not *worse*.
	sb := Map(g, costs, cl, a, DefaultNaive(StrategyNone))
	if sb.EstMakespan() < s.EstMakespan()-1e-9 {
		t.Errorf("delta (%g) worse than baseline (%g) on a chain", s.EstMakespan(), sb.EstMakespan())
	}
}

func TestDeltaStretchesWithinBound(t *testing.T) {
	// Chain: pred alloc 10, task alloc 8, maxdelta 0.25 ⇒ δmax = 2 ⇒ the
	// stretch to 10 procs is allowed (δ+ = 2).
	cl := platform.Grillon()
	g := chain(2, 40e6)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	opts := DefaultNaive(StrategyDelta)
	opts.MaxDelta = 0.25
	s := Map(g, costs, cl, []int{10, 8}, opts)
	if s.Alloc[1] != 10 || !redist.SameSet(s.Procs[1], s.Procs[0]) {
		t.Errorf("expected stretch 8→10; got alloc %d", s.Alloc[1])
	}
	// maxdelta 0.1 ⇒ δmax = 0 ⇒ no stretch allowed; keep original 8.
	opts.MaxDelta = 0.1
	opts.MinDelta = 0
	s = Map(g, costs, cl, []int{10, 8}, opts)
	if s.Alloc[1] != 8 {
		t.Errorf("stretch should be rejected; alloc = %d", s.Alloc[1])
	}
}

func TestDeltaPacksWithinBound(t *testing.T) {
	// Pred alloc 7, task alloc 8, mindelta −0.25 ⇒ δmin = −2 ⇒ pack to 7
	// (the saved redistribution outweighs the slightly longer execution,
	// so the finish-time guard accepts it).
	cl := platform.Grillon()
	g := chain(2, 40e6)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	opts := DefaultNaive(StrategyDelta)
	opts.MinDelta = -0.25
	opts.MaxDelta = 0 // forbid stretching
	s := Map(g, costs, cl, []int{7, 8}, opts)
	if s.Alloc[1] != 7 || !redist.SameSet(s.Procs[1], s.Procs[0]) {
		t.Errorf("expected pack 8→7; got alloc %d", s.Alloc[1])
	}
	// mindelta −0.1 ⇒ δmin = 0 ⇒ packing by 1 rejected.
	opts.MinDelta = -0.1
	s = Map(g, costs, cl, []int{7, 8}, opts)
	if s.Alloc[1] != 8 {
		t.Errorf("pack should be rejected; alloc = %d", s.Alloc[1])
	}
}

func TestDeltaEFTGuardRejectsDelayingSnap(t *testing.T) {
	// Pack 8→4 doubles the parallel part of the execution time; the saved
	// redistribution is far smaller, so with the guard the original
	// allocation must be kept, and without it the snap goes through.
	cl := platform.Grillon()
	g := chain(2, 40e6)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	opts := DefaultNaive(StrategyDelta)
	opts.MinDelta, opts.MaxDelta = -0.5, 0
	s := Map(g, costs, cl, []int{4, 8}, opts)
	if s.Alloc[1] != 8 {
		t.Errorf("guarded delta should keep alloc 8, got %d", s.Alloc[1])
	}
	opts.DeltaEFTGuard = false
	s = Map(g, costs, cl, []int{4, 8}, opts)
	if s.Alloc[1] != 4 {
		t.Errorf("unguarded delta should pack to 4, got %d", s.Alloc[1])
	}
}

func TestDeltaPrefersSmallestModification(t *testing.T) {
	// Join: {t0, t1} → t2, with a virtual entry added by Normalize so the
	// two parents keep their first-step allocations (no real predecessors
	// to snap to). t0 gets 10 procs, t1 gets 5, t2 has 6:
	// δ+ = 4 (t0), δ− = −1 (t1) ⇒ packing onto t1 wins (|−1| < 4).
	cl := platform.Grillon()
	g := dag.NewGraph(3, 2)
	for i := 0; i < 3; i++ {
		g.AddTask(dag.Task{Name: "d", M: 40e6, A: 128, Alpha: 0.1})
	}
	g.AddEdge(0, 2, g.Tasks[0].Bytes())
	g.AddEdge(1, 2, g.Tasks[1].Bytes())
	g.Normalize()
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	opts := DefaultNaive(StrategyDelta)
	opts.MinDelta, opts.MaxDelta = -1, 1
	s := Map(g, costs, cl, []int{10, 5, 6, 0}, opts)
	if s.Alloc[0] != 10 || s.Alloc[1] != 5 {
		t.Fatalf("parents should keep their allocations, got %d/%d", s.Alloc[0], s.Alloc[1])
	}
	if s.Alloc[2] != 5 || !redist.SameSet(s.Procs[2], s.Procs[1]) {
		t.Errorf("t2 should pack onto t1's 5 procs; got %d procs %v", s.Alloc[2], s.Procs[2])
	}
}

func TestTimeCostStretchRespectsRho(t *testing.T) {
	// α = 0.25: stretching 1 → 16 costs a lot of work.
	// ρ(16) = W(1)/W(16) = T/( 16·T·(0.25+0.75/16) ) = 1/(16·0.296875) = 0.2105.
	cl := platform.Grillon()
	g := chain(2, 40e6)
	g.Tasks[1].Alpha = 0.25
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	opts := DefaultNaive(StrategyTimeCost)
	opts.Packing = false
	opts.MinRho = 0.5 // stricter than 0.2105 ⇒ refuse
	s := Map(g, costs, cl, []int{16, 1}, opts)
	if s.Alloc[1] != 1 {
		t.Errorf("stretch should be refused at minrho=0.5; alloc = %d", s.Alloc[1])
	}
	opts.MinRho = 0.2 // looser ⇒ accept
	s = Map(g, costs, cl, []int{16, 1}, opts)
	if s.Alloc[1] != 16 || !redist.SameSet(s.Procs[1], s.Procs[0]) {
		t.Errorf("stretch should be accepted at minrho=0.2; alloc = %d", s.Alloc[1])
	}
}

func TestTimeCostPackingNeverDegradesEstimatedFinish(t *testing.T) {
	cl := platform.Grillon()
	g := gen.Random(gen.RandomParams{N: 50, Width: 0.8, Regularity: 0.2, Density: 0.2, Layered: false, Jump: 2, Seed: 8})
	costs, a := setup(g, cl)
	optsNoPack := DefaultNaive(StrategyTimeCost)
	optsNoPack.Packing = false
	optsPack := DefaultNaive(StrategyTimeCost)

	sp := Map(g, costs, cl, a, optsPack)
	if err := sp.Validate(g, cl); err != nil {
		t.Fatal(err)
	}
	snp := Map(g, costs, cl, a, optsNoPack)
	if err := snp.Validate(g, cl); err != nil {
		t.Fatal(err)
	}
	// Packing decisions are local (finish-time non-degrading), so the
	// schedule-wide estimate should rarely degrade; allow a small slack
	// for interaction effects but catch gross regressions.
	if sp.EstMakespan() > snp.EstMakespan()*1.25 {
		t.Errorf("packing degraded estimate %g -> %g", snp.EstMakespan(), sp.EstMakespan())
	}
}

func TestVirtualTasksHoldNoProcessors(t *testing.T) {
	cl := platform.Chti()
	g := gen.Strassen(3) // virtual entry and exit
	costs, a := setup(g, cl)
	for _, st := range []Strategy{StrategyNone, StrategyDelta, StrategyTimeCost} {
		s := Map(g, costs, cl, a, DefaultNaive(st))
		if err := s.Validate(g, cl); err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		entry, exit := g.Entry(), g.Exit()
		if len(s.Procs[entry]) != 0 || len(s.Procs[exit]) != 0 {
			t.Errorf("%v: virtual tasks were mapped", st)
		}
	}
}

func TestSecondarySortDelta(t *testing.T) {
	// Two ready tasks engineered to share the exact same bottom level
	// (α = 0 and A chosen so T(t1, 4) = T(t2, 7)); t2 needs the smaller δ
	// (δ+ = 1 vs 4) and must be mapped first despite its larger task ID.
	cl := platform.Grillon()
	g := dag.NewGraph(4, 4)
	g.AddTask(dag.Task{Name: "s0", M: 40e6, A: 128, Alpha: 0})
	g.AddTask(dag.Task{Name: "s1", M: 40e6, A: 128, Alpha: 0}) // T(·,4) = 32·m/s
	g.AddTask(dag.Task{Name: "s2", M: 40e6, A: 224, Alpha: 0}) // T(·,7) = 32·m/s
	g.AddTask(dag.Task{Name: "s3", M: 40e6, A: 128, Alpha: 0})
	g.AddEdge(0, 1, g.Tasks[0].Bytes())
	g.AddEdge(0, 2, g.Tasks[0].Bytes())
	g.AddEdge(1, 3, g.Tasks[1].Bytes())
	g.AddEdge(2, 3, g.Tasks[2].Bytes())
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	// t0 has 8 procs; δ(t1) = 8−4 = 4, δ(t2) = 8−7 = 1.
	opts := DefaultNaive(StrategyDelta)
	opts.MaxDelta, opts.MinDelta = 1, -1
	s := Map(g, costs, cl, []int{8, 4, 7, 4}, opts)
	pos := map[int]int{}
	for i, tk := range s.Order {
		pos[tk] = i
	}
	if pos[2] > pos[1] {
		t.Errorf("secondary δ sort violated: order %v", s.Order)
	}
}

func TestSecondarySortTimeCost(t *testing.T) {
	// Equal bottom levels (α = 0, T(t1, 8) = T(t2, 4) by construction);
	// gain(t1) = 0 (predecessor allocation equals its own) while
	// gain(t2) = T(t2,4) − T(t2,8) > 0, so t2 must be mapped first.
	cl := platform.Grillon()
	g := dag.NewGraph(4, 4)
	g.AddTask(dag.Task{Name: "s0", M: 40e6, A: 128, Alpha: 0})
	g.AddTask(dag.Task{Name: "s1", M: 40e6, A: 256, Alpha: 0}) // T(·,8) = 32·m/s
	g.AddTask(dag.Task{Name: "s2", M: 40e6, A: 128, Alpha: 0}) // T(·,4) = 32·m/s
	g.AddTask(dag.Task{Name: "s3", M: 40e6, A: 128, Alpha: 0})
	g.AddEdge(0, 1, g.Tasks[0].Bytes())
	g.AddEdge(0, 2, g.Tasks[0].Bytes())
	g.AddEdge(1, 3, g.Tasks[1].Bytes())
	g.AddEdge(2, 3, g.Tasks[2].Bytes())
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	s := Map(g, costs, cl, []int{8, 8, 4, 4}, DefaultNaive(StrategyTimeCost))
	pos := map[int]int{}
	for i, tk := range s.Order {
		pos[tk] = i
	}
	if pos[2] > pos[1] {
		t.Errorf("secondary gain sort violated: order %v", s.Order)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyNone.String() != "hcpa" || StrategyDelta.String() != "delta" ||
		StrategyTimeCost.String() != "time-cost" || Strategy(9).String() != "Strategy(9)" {
		t.Error("Strategy.String mismatch")
	}
}

// Property: all strategies produce valid schedules on random workloads,
// and RATS allocations never leave [1, P].
func TestPropertySchedulesValid(t *testing.T) {
	clusters := platform.PaperClusters()
	f := func(seed int64, stIdx, cIdx uint8) bool {
		cl := clusters[int(cIdx)%3]
		st := []Strategy{StrategyNone, StrategyDelta, StrategyTimeCost}[int(stIdx)%3]
		g := gen.Random(gen.RandomParams{N: 25, Width: 0.5, Regularity: 0.2, Density: 0.8, Layered: false, Jump: 2, Seed: seed})
		costs, a := setup(g, cl)
		s := Map(g, costs, cl, a, DefaultNaive(st))
		return s.Validate(g, cl) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

func TestTruncateOrExtendDedupesBase(t *testing.T) {
	byAvail := []int{0, 1, 2, 3, 4, 5}
	// A duplicated processor in the base set must not double-book a slot.
	got := truncateOrExtend([]int{3, 3, 1}, byAvail, 4)
	want := []int{3, 1, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("truncateOrExtend = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("truncateOrExtend = %v, want %v", got, want)
		}
	}
	// Truncation path: dedupe happens before counting the k slots.
	got = truncateOrExtend([]int{2, 2, 4, 5}, byAvail, 2)
	want = []int{2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("truncateOrExtend (truncate) = %v, want %v", got, want)
		}
	}
	// End-to-end: a schedule built from a predecessor with a duplicated
	// processor set must still validate (distinct processors per task).
	cl := platform.Grillon()
	g := chain(3, 40e6)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	opts := DefaultNaive(StrategyNone)
	opts.PredOverlap = true
	s := Map(g, costs, cl, []int{6, 4, 8}, opts)
	if err := s.Validate(g, cl); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalAvailabilityOrder verifies the invariant behind the
// incrementally-maintained processor ordering: after every commit of a
// mapping run, byAvail must equal the full (availability, ID) sort that
// procsByAvailability used to recompute per candidate evaluation.
func TestIncrementalAvailabilityOrder(t *testing.T) {
	for _, cl := range []*platform.Cluster{platform.Chti(), platform.Grelon()} {
		for _, st := range []Strategy{StrategyNone, StrategyDelta, StrategyTimeCost} {
			g := gen.Random(gen.RandomParams{
				N: 40, Width: 0.8, Regularity: 0.2, Density: 0.5, Jump: 2, Seed: 99})
			costs, a := setup(g, cl)
			c := NewMapContext(cl)
			c.Map(g, costs, a, DefaultNaive(st))
			m := &c.m // avail and byAvail are context scratch, retained after the run
			ref := make([]int, cl.P)
			for i := range ref {
				ref[i] = i
			}
			sort.SliceStable(ref, func(x, y int) bool {
				if m.avail[ref[x]] != m.avail[ref[y]] {
					return m.avail[ref[x]] < m.avail[ref[y]]
				}
				return ref[x] < ref[y]
			})
			for i := range ref {
				if m.byAvail[i] != ref[i] {
					t.Fatalf("%s/%v: byAvail diverged from full sort at %d: %v vs %v",
						cl.Name, st, i, m.byAvail[i], ref[i])
				}
			}
		}
	}
}

func TestEstimatorRedistTime(t *testing.T) {
	cl := platform.Grillon()
	e := NewEstimator(cl)
	// Same set, same size: free.
	if got := e.RedistTime(1e8, []int{0, 1}, []int{1, 0}); got != 0 {
		t.Errorf("same-set redistribution estimated at %g, want 0", got)
	}
	// Disjoint 1→1: bytes/β + latency.
	want := 1e8/cl.LinkBandwidth + 2*cl.LinkLatency
	if got := e.RedistTime(1e8, []int{0}, []int{1}); math.Abs(got-want) > 1e-9 {
		t.Errorf("1→1 redistribution = %g, want %g", got, want)
	}
	// 1→2 disjoint: sender link is the bottleneck (full volume out).
	if got := e.RedistTime(1e8, []int{0}, []int{1, 2}); got < want-1e-9 {
		t.Errorf("1→2 redistribution = %g, should be ≥ %g (sender-bound)", got, want)
	}
	// Zero bytes: free.
	if got := e.RedistTime(0, []int{0}, []int{1}); got != 0 {
		t.Errorf("zero-byte redistribution = %g", got)
	}
}

func BenchmarkMapDelta100Tasks(b *testing.B) {
	cl := platform.Grillon()
	g := gen.Random(gen.RandomParams{N: 100, Width: 0.5, Regularity: 0.8, Density: 0.8, Layered: true, Seed: 1})
	costs, a := setup(g, cl)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(g, costs, cl, a, DefaultNaive(StrategyDelta))
	}
}
