package core

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/platform"
)

// scheduleDigest hashes every field of a schedule that the simulator or a
// caller can observe, with floats rendered exactly (hex), so two schedules
// share a digest iff they are byte-identical.
func scheduleDigest(s *Schedule) string {
	h := fnv.New64a()
	wr := func(ss string) { h.Write([]byte(ss)); h.Write([]byte{0}) }
	for _, a := range s.Alloc {
		wr(strconv.Itoa(a))
	}
	for _, ps := range s.Procs {
		for _, p := range ps {
			wr(strconv.Itoa(p))
		}
		wr(";")
	}
	for _, t := range s.Order {
		wr(strconv.Itoa(t))
	}
	for i := range s.EstStart {
		wr(strconv.FormatFloat(s.EstStart[i], 'x', -1, 64))
		wr(strconv.FormatFloat(s.EstFinish[i], 'x', -1, 64))
	}
	wr(strconv.FormatFloat(s.TotalWork, 'x', -1, 64))
	return fmt.Sprintf("%016x", h.Sum64())
}

func goldenGraph(class string) *dag.Graph {
	switch class {
	case "layered":
		return gen.Random(gen.RandomParams{
			N: 50, Width: 0.5, Regularity: 0.8, Density: 0.5, Layered: true, Seed: 11})
	case "irregular":
		return gen.Random(gen.RandomParams{
			N: 50, Width: 0.8, Regularity: 0.2, Density: 0.2, Jump: 2, Seed: 23})
	case "fft":
		return gen.FFT(8, 5)
	case "strassen":
		return gen.Strassen(17)
	}
	panic("unknown golden graph class " + class)
}

// TestScheduleGolden pins the exact schedules produced by the mapping
// engine on a cross-section of clusters × graph classes × strategies. All
// ten digests — the big512/big1024 presets were added first — were
// recorded from the pre-overhaul mapper (map/flows estimator, full
// re-sort per candidate evaluation): any divergence means an
// "optimization" changed scheduling decisions, which is a bug.
func TestScheduleGolden(t *testing.T) {
	cases := []struct {
		cl    *platform.Cluster
		class string
		st    Strategy
		want  string
	}{
		{platform.Chti(), "layered", StrategyNone, "ff6f807b44b5b7d5"},
		{platform.Chti(), "strassen", StrategyDelta, "1cc035d5b7bdd568"},
		{platform.Grillon(), "layered", StrategyDelta, "4074fbdbd92e88a0"},
		{platform.Grillon(), "irregular", StrategyTimeCost, "d8ada36e34626bd7"},
		{platform.Grelon(), "fft", StrategyDelta, "e4641bb8606b5fb3"},
		{platform.Grelon(), "irregular", StrategyNone, "e5fdf96203bf1a1d"},
		{platform.Grelon(), "layered", StrategyTimeCost, "781187cd6634af75"},
		{platform.Big512(), "layered", StrategyTimeCost, "e6b8f1d04e8a43a1"},
		{platform.Big512(), "fft", StrategyDelta, "87d5a91dc813a744"},
		{platform.Big1024(), "irregular", StrategyTimeCost, "59f614ea7018788a"},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/%s/%v", c.cl.Name, c.class, c.st), func(t *testing.T) {
			g := goldenGraph(c.class)
			costs, a := setup(g, c.cl)
			s := Map(g, costs, c.cl, a, DefaultNaive(c.st))
			if err := s.Validate(g, c.cl); err != nil {
				t.Fatal(err)
			}
			if got := scheduleDigest(s); got != c.want {
				t.Errorf("schedule digest = %s, want %s (scheduling decisions changed)", got, c.want)
			}
		})
	}
}

// TestScheduleGoldenFast pins the fast-profile schedules (DefaultFast:
// AlignAuto at FastAlignCap, FastMemoEps, the replay threshold living at
// the sim layer) on the same cross-section. Every digest coincides with
// the reference one: the golden graphs' redistributions all sit at or
// under the cap, where AlignAuto solves them exactly — the profiles only
// diverge on redistributions wider than FastAlignCap (the ablation's
// big-scale FFT classes). Both profiles are pinned independently so a
// change to either is a loud diff.
func TestScheduleGoldenFast(t *testing.T) {
	cases := []struct {
		cl    *platform.Cluster
		class string
		st    Strategy
		want  string
	}{
		{platform.Chti(), "layered", StrategyNone, "ff6f807b44b5b7d5"},
		{platform.Chti(), "strassen", StrategyDelta, "1cc035d5b7bdd568"},
		{platform.Grillon(), "layered", StrategyDelta, "4074fbdbd92e88a0"},
		{platform.Grillon(), "irregular", StrategyTimeCost, "d8ada36e34626bd7"},
		{platform.Grelon(), "fft", StrategyDelta, "e4641bb8606b5fb3"},
		{platform.Grelon(), "irregular", StrategyNone, "e5fdf96203bf1a1d"},
		{platform.Grelon(), "layered", StrategyTimeCost, "781187cd6634af75"},
		{platform.Big512(), "layered", StrategyTimeCost, "e6b8f1d04e8a43a1"},
		{platform.Big512(), "fft", StrategyDelta, "87d5a91dc813a744"},
		{platform.Big1024(), "irregular", StrategyTimeCost, "59f614ea7018788a"},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/%s/%v", c.cl.Name, c.class, c.st), func(t *testing.T) {
			g := goldenGraph(c.class)
			costs, a := setup(g, c.cl)
			s := Map(g, costs, c.cl, a, DefaultFast(c.st))
			if err := s.Validate(g, c.cl); err != nil {
				t.Fatal(err)
			}
			if got := scheduleDigest(s); got != c.want {
				t.Errorf("schedule digest = %s, want %s (scheduling decisions changed)", got, c.want)
			}
		})
	}
}
