package core

import "math"

// strategyPlacement implements the redistribution-aware conditions of
// Algorithm 1, line 9: if a predecessor allocation matches the delta or
// time-cost conditions, the task is mapped onto that predecessor's exact
// processor set (inheriting its rank order, which makes the corresponding
// redistribution an identity and therefore free). It returns the adopted
// predecessor alongside the placement, or (nil, −1) when the task should
// fall back to the baseline HCPA mapping (line 14).
//
// Only unclaimed predecessors are candidates: each parent allocation can
// be inherited once (see mapper.claimed).
//
// The placement is returned by value (ok reports whether one was found):
// a pointer would force every candidate through the heap, one allocation
// per evaluated task.
func (m *mapper) strategyPlacement(w *evalWorker, t int) (pl placement, pred int, ok bool) {
	switch m.opts.Strategy {
	case StrategyDelta:
		return m.deltaPlacement(w, t)
	case StrategyTimeCost:
		return m.timeCostPlacement(w, t)
	}
	return placement{}, -1, false
}

// deltaBounds converts the mindelta/maxdelta fractions into per-task
// absolute bounds: with Np(t) = 6 and maxdelta = 0.5 a stretched
// allocation may have at most 9 processors (δmax = 3); with
// mindelta = −0.5 a packed allocation has at least 3 (δmin = −3).
func (m *mapper) deltaBounds(t int) (dMin, dMax int) {
	np := float64(m.alloc[t])
	dMax = int(math.Floor(m.opts.MaxDelta*np + 1e-9))
	dMin = -int(math.Floor(-m.opts.MinDelta*np + 1e-9))
	return dMin, dMax
}

// deltaPlacement implements the delta strategy (§III-A/B):
//
//  1. compute δ+ (closest unclaimed predecessor with a larger-or-equal
//     allocation) and δ− (closest unclaimed predecessor with a smaller
//     allocation);
//  2. keep the candidates within [δmin, δmax];
//  3. adopt the modification with the smallest |δ| (a stretch wins ties,
//     since it also shortens the task), mapping the task onto the selected
//     predecessor's processors.
func (m *mapper) deltaPlacement(w *evalWorker, t int) (placement, int, bool) {
	pred := m.deltaAdoptPred(t)
	if pred < 0 {
		return placement{}, -1, false
	}
	pl := m.evalOn(w, t, append(w.getBuf(), m.procs[pred]...))
	if m.opts.DeltaEFTGuard {
		// The adoption candidate pl doubles as the dedup reference: when
		// the earliest-available set aligns onto exactly the adopted
		// predecessor's rank order, the baseline re-evaluation is skipped.
		base := m.baselinePlacementDedup(w, t, &pl)
		w.putBuf(base.procs)
		if base.eft < pl.eft {
			w.putBuf(pl.procs)
			return placement{}, -1, false
		}
	}
	return pl, pred, true
}

// deltaAdoptPred runs the delta strategy's estimation-free predecessor
// selection (steps 1–3 of deltaPlacement's doc comment) and returns the
// adopted predecessor, or −1 when no inheritable predecessor fits the
// [δmin, δmax] bounds. Shared by the serial engine and the parallel
// coordinator, which must enumerate the same adoption candidate.
func (m *mapper) deltaAdoptPred(t int) int {
	dPlus, predPlus, dMinus, predMinus := m.deltas(t)
	dMin, dMax := m.deltaBounds(t)

	stretchOK := predPlus >= 0 && dPlus <= dMax
	packOK := predMinus >= 0 && dMinus >= dMin

	switch {
	case stretchOK && packOK:
		if dPlus <= -dMinus {
			return predPlus
		}
		return predMinus
	case stretchOK:
		return predPlus
	case packOK:
		return predMinus
	}
	return -1
}

// rho returns the time-cost ratio of Equation 1 for executing t on p'
// processors instead of its original allocation:
//
//	ρ = (T(t, Np(t))·Np(t)) / (T(t, p')·p')
//
// Under the Amdahl model work is non-decreasing in p, so ρ ≤ 1 for a
// stretch; values close to 1 mean the execution-time reduction comes at
// little extra work.
func (m *mapper) rho(t, pPrime int) float64 {
	w := m.costs.Work(t, pPrime)
	if w == 0 {
		return 0
	}
	return m.costs.Work(t, m.alloc[t]) / w
}

// timeCostPlacement implements the time-cost strategy (§III-A/B):
//
//   - Stretch: among unclaimed predecessors with Np(pred) ≥ Np(t), take
//     the one maximizing ρ; accept if ρ ≥ minrho.
//   - Pack (when enabled): an unclaimed predecessor with Np(pred) < Np(t)
//     is accepted only if the estimated finish time is not worse than the
//     baseline mapping's.
//
// When both pass, the candidate with the earliest estimated finish wins.
func (m *mapper) timeCostPlacement(w *evalWorker, t int) (placement, int, bool) {
	var best placement
	haveBest := false
	bestPred := -1
	bestEFT := math.Inf(1)

	// Stretch candidate: maximize ρ over larger-or-equal predecessors.
	if stretchPred := m.timeCostStretchPred(t); stretchPred >= 0 {
		pl := m.evalOn(w, t, append(w.getBuf(), m.procs[stretchPred]...))
		best, haveBest, bestPred, bestEFT = pl, true, stretchPred, pl.eft
	}
	cands := m.inheritablePreds(t)

	// Pack candidates: must not degrade the estimated finish time.
	if m.opts.Packing {
		// An accepted stretch is the dedup reference for the baseline:
		// pack candidates can never coincide with it (their sets are
		// strictly smaller than the allocation), but the stretch —
		// exactly the allocation size when Np(pred) = Np(t) — often does.
		var stretchRef *placement
		if haveBest {
			stretchRef = &best
		}
		baseline := m.baselinePlacementDedup(w, t, stretchRef)
		for _, p := range cands {
			if len(m.procs[p]) >= m.alloc[t] {
				continue
			}
			pl := m.evalOn(w, t, append(w.getBuf(), m.procs[p]...))
			if pl.eft <= baseline.eft && pl.eft < bestEFT {
				if haveBest {
					w.putBuf(best.procs)
				}
				best, haveBest, bestPred, bestEFT = pl, true, p, pl.eft
			} else {
				w.putBuf(pl.procs)
			}
		}
		w.putBuf(baseline.procs)
	}
	return best, bestPred, haveBest
}

// timeCostStretchPred runs the time-cost strategy's estimation-free
// stretch selection — maximize ρ over inheritable predecessors with
// Np(pred) ≥ Np(t), accept when ρ ≥ minrho — and returns the selected
// predecessor, or −1. Shared by the serial engine and the parallel
// coordinator.
func (m *mapper) timeCostStretchPred(t int) int {
	bestRho := -1.0
	stretchPred := -1
	for _, p := range m.inheritablePreds(t) {
		if len(m.procs[p]) < m.alloc[t] {
			continue
		}
		if r := m.rho(t, len(m.procs[p])); r > bestRho {
			bestRho = r
			stretchPred = p
		}
	}
	if stretchPred >= 0 && bestRho >= m.opts.MinRho {
		return stretchPred
	}
	return -1
}
