package core

import "math"

// strategyPlacement implements the redistribution-aware conditions of
// Algorithm 1, line 9: if a predecessor allocation matches the delta or
// time-cost conditions, the task is mapped onto that predecessor's exact
// processor set (inheriting its rank order, which makes the corresponding
// redistribution an identity and therefore free). It returns the adopted
// predecessor alongside the placement, or (nil, −1) when the task should
// fall back to the baseline HCPA mapping (line 14).
//
// Only unclaimed predecessors are candidates: each parent allocation can
// be inherited once (see mapper.claimed).
//
// The placement is returned by value (ok reports whether one was found):
// a pointer would force every candidate through the heap, one allocation
// per evaluated task.
func (m *mapper) strategyPlacement(t int) (pl placement, pred int, ok bool) {
	switch m.opts.Strategy {
	case StrategyDelta:
		return m.deltaPlacement(t)
	case StrategyTimeCost:
		return m.timeCostPlacement(t)
	}
	return placement{}, -1, false
}

// deltaBounds converts the mindelta/maxdelta fractions into per-task
// absolute bounds: with Np(t) = 6 and maxdelta = 0.5 a stretched
// allocation may have at most 9 processors (δmax = 3); with
// mindelta = −0.5 a packed allocation has at least 3 (δmin = −3).
func (m *mapper) deltaBounds(t int) (dMin, dMax int) {
	np := float64(m.alloc[t])
	dMax = int(math.Floor(m.opts.MaxDelta*np + 1e-9))
	dMin = -int(math.Floor(-m.opts.MinDelta*np + 1e-9))
	return dMin, dMax
}

// deltaPlacement implements the delta strategy (§III-A/B):
//
//  1. compute δ+ (closest unclaimed predecessor with a larger-or-equal
//     allocation) and δ− (closest unclaimed predecessor with a smaller
//     allocation);
//  2. keep the candidates within [δmin, δmax];
//  3. adopt the modification with the smallest |δ| (a stretch wins ties,
//     since it also shortens the task), mapping the task onto the selected
//     predecessor's processors.
func (m *mapper) deltaPlacement(t int) (placement, int, bool) {
	dPlus, predPlus, dMinus, predMinus := m.deltas(t)
	dMin, dMax := m.deltaBounds(t)

	stretchOK := predPlus >= 0 && dPlus <= dMax
	packOK := predMinus >= 0 && dMinus >= dMin

	var pred int
	switch {
	case stretchOK && packOK:
		if dPlus <= -dMinus {
			pred = predPlus
		} else {
			pred = predMinus
		}
	case stretchOK:
		pred = predPlus
	case packOK:
		pred = predMinus
	default:
		return placement{}, -1, false
	}
	pl := m.evalOn(t, append(m.getBuf(), m.procs[pred]...))
	if m.opts.DeltaEFTGuard {
		base := m.baselinePlacement(t)
		m.putBuf(base.procs)
		if base.eft < pl.eft {
			m.putBuf(pl.procs)
			return placement{}, -1, false
		}
	}
	return pl, pred, true
}

// rho returns the time-cost ratio of Equation 1 for executing t on p'
// processors instead of its original allocation:
//
//	ρ = (T(t, Np(t))·Np(t)) / (T(t, p')·p')
//
// Under the Amdahl model work is non-decreasing in p, so ρ ≤ 1 for a
// stretch; values close to 1 mean the execution-time reduction comes at
// little extra work.
func (m *mapper) rho(t, pPrime int) float64 {
	w := m.costs.Work(t, pPrime)
	if w == 0 {
		return 0
	}
	return m.costs.Work(t, m.alloc[t]) / w
}

// timeCostPlacement implements the time-cost strategy (§III-A/B):
//
//   - Stretch: among unclaimed predecessors with Np(pred) ≥ Np(t), take
//     the one maximizing ρ; accept if ρ ≥ minrho.
//   - Pack (when enabled): an unclaimed predecessor with Np(pred) < Np(t)
//     is accepted only if the estimated finish time is not worse than the
//     baseline mapping's.
//
// When both pass, the candidate with the earliest estimated finish wins.
func (m *mapper) timeCostPlacement(t int) (placement, int, bool) {
	var best placement
	haveBest := false
	bestPred := -1
	bestEFT := math.Inf(1)

	cands := m.inheritablePreds(t)

	// Stretch candidate: maximize ρ over larger-or-equal predecessors.
	bestRho := -1.0
	stretchPred := -1
	for _, p := range cands {
		if len(m.procs[p]) < m.alloc[t] {
			continue
		}
		if r := m.rho(t, len(m.procs[p])); r > bestRho {
			bestRho = r
			stretchPred = p
		}
	}
	if stretchPred >= 0 && bestRho >= m.opts.MinRho {
		pl := m.evalOn(t, append(m.getBuf(), m.procs[stretchPred]...))
		best, haveBest, bestPred, bestEFT = pl, true, stretchPred, pl.eft
	}

	// Pack candidates: must not degrade the estimated finish time.
	if m.opts.Packing {
		baseline := m.baselinePlacement(t)
		for _, p := range cands {
			if len(m.procs[p]) >= m.alloc[t] {
				continue
			}
			pl := m.evalOn(t, append(m.getBuf(), m.procs[p]...))
			if pl.eft <= baseline.eft && pl.eft < bestEFT {
				if haveBest {
					m.putBuf(best.procs)
				}
				best, haveBest, bestPred, bestEFT = pl, true, p, pl.eft
			} else {
				m.putBuf(pl.procs)
			}
		}
		m.putBuf(baseline.procs)
	}
	return best, bestPred, haveBest
}
