package core

import (
	"repro/internal/platform"
	"repro/internal/redist"
)

// Estimator produces the contention-free time estimates the mapping
// procedures rely on. The paper points out (§IV-D) that these estimates
// deliberately ignore network contention — only the replayed simulation
// accounts for it — and that this is one reason the time-cost strategy
// gets more accurate as clusters grow.
type Estimator struct {
	cl *platform.Cluster
}

// NewEstimator returns an estimator for the given cluster.
func NewEstimator(cl *platform.Cluster) *Estimator { return &Estimator{cl: cl} }

// RedistTime estimates the duration of redistributing bytes from the
// sender processor set to the receiver processor set (both in rank order)
// under the bounded multi-port model without cross-redistribution
// contention:
//
//	max over nodes of (bytes sent / β_out, bytes received / β_in)
//	  capped below by the slowest individual flow at its empirical
//	  bandwidth β', plus the longest route latency involved.
//
// Same-set same-size redistributions cost zero (§II-A).
func (e *Estimator) RedistTime(bytes float64, senders, receivers []int) float64 {
	if bytes <= 0 || len(senders) == 0 || len(receivers) == 0 {
		return 0
	}
	if len(senders) == len(receivers) && redist.SameSet(senders, receivers) {
		return 0
	}
	flows := redist.Flows(bytes, senders, receivers)
	out := make(map[int]float64)
	in := make(map[int]float64)
	t := 0.0
	maxLat := 0.0
	for _, f := range flows {
		if f.SrcProc == f.DstProc {
			continue // local copies are free
		}
		out[f.SrcProc] += f.Bytes
		in[f.DstProc] += f.Bytes
		// An individual flow cannot beat its empirical bandwidth.
		if bw := e.cl.EffectiveBandwidth(f.SrcProc, f.DstProc); bw > 0 {
			if ft := f.Bytes / bw; ft > t {
				t = ft
			}
		}
		if _, lat := e.cl.Route(f.SrcProc, f.DstProc); lat > maxLat {
			maxLat = lat
		}
	}
	beta := e.cl.LinkBandwidth
	for _, b := range out {
		if v := b / beta; v > t {
			t = v
		}
	}
	for _, b := range in {
		if v := b / beta; v > t {
			t = v
		}
	}
	if t == 0 {
		return 0 // everything was local after all
	}
	return t + maxLat
}

// EdgeTimeSimple is the coarse per-edge communication estimate used inside
// bottom-level priorities and by the allocation step, where the mapping is
// still unknown: full volume over one private link plus one route latency.
func (e *Estimator) EdgeTimeSimple(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes/e.cl.LinkBandwidth + 2*e.cl.LinkLatency
}
