package core

import (
	"encoding/binary"

	"repro/internal/platform"
	"repro/internal/redist"
)

// Estimator produces the contention-free time estimates the mapping
// procedures rely on. The paper points out (§IV-D) that these estimates
// deliberately ignore network contention — only the replayed simulation
// accounts for it — and that this is one reason the time-cost strategy
// gets more accurate as clusters grow.
//
// The estimator keeps reusable scratch indexed by processor ID and a
// per-edge memo, so RedistTime is allocation-free in steady state; an
// Estimator is therefore NOT safe for concurrent use. Every mapping run
// creates its own (Map does this), which is what keeps batch scheduling
// race-free.
type Estimator struct {
	cl *platform.Cluster

	// MemoEps, when positive, lets EdgeRedistTime reuse a memo entry whose
	// receiver rank order differs from the probe's in at most ⌊ε·q⌋
	// positions (same length q). Receiver orders are availability-ordered,
	// so the position-diff fraction measures how far the availability
	// inputs moved since the entry was computed; stale reuses are counted
	// separately (obs "memo_stale_hits") and only ever copy values from
	// freshly computed entries, so the approximation error never compounds
	// across chains of reuses. Zero (the default) keeps exact keying.
	MemoEps float64

	// Homogeneous per-pair figures, precomputed once: on these clusters the
	// empirical bandwidth β' and the route latency only depend on whether
	// the two nodes share a cabinet.
	latIntra, latCross float64
	bwIntra, bwCross   float64

	// hetLinks switches RedistTime to per-pair route figures built from the
	// id-indexed link caches below: with bandwidth/latency overrides
	// present the two-figure classification above no longer holds. False on
	// uniform clusters, which keep the precomputed figures.
	hetLinks bool

	// Id-indexed link-figure caches, built once per estimator when
	// hetLinks: per-node up/down capacities and latencies plus per-cabinet
	// uplink figures. RedistTime recombines them with exactly the branch
	// structure of platform.EffectiveBandwidth/RouteLatency (min chain in
	// the same visit order, latencies summed pairwise), so the cached path
	// is bit-identical to the per-pair map lookups it replaces — which were
	// ~2× of the hetero mapping phase's cost (O(blocks) map probes per
	// candidate evaluation).
	bwOverride, latOverride bool
	upCap, downCap          []float64 // by node id
	cabUpCap, cabDownCap    []float64 // by cabinet
	upLat, downLat          []float64 // by node id
	cabUpLat, cabDownLat    []float64 // by cabinet

	// Scratch reused across RedistTime calls, indexed by processor ID and
	// allocated lazily on first use. Entries are zeroed again before each
	// call returns, so the slices never need wholesale clearing.
	outBytes []float64 // bytes leaving each sender node
	inBytes  []float64 // bytes entering each receiver node
	setCnt   []int     // same-set fallback counters for P beyond the bitset range

	// Memo for EdgeRedistTime, keyed by (edge ID, receiver rank order);
	// valid for one mapping run (sender sets are fixed once mapped). The
	// keys live in one shared arena with a chained hash index on top:
	// a map[string]float64 would copy every distinct key into its own
	// allocation on insert, which used to be a measurable slice of the
	// mapping loop's allocation volume. The hash only buckets — equality
	// is always decided on the full key bytes, so collisions cannot change
	// an estimate.
	memoIdx  map[uint64]int32
	memoEnts []memoEntry
	memoKeys []byte
	keyBuf   []byte

	// lastByEdge tracks, per edge, the most recent memo entry whose value
	// was freshly computed (not itself a stale reuse) — the one candidate
	// the MemoEps staleness check compares a missing probe against.
	// Only maintained when MemoEps > 0.
	lastByEdge map[int]int32

	// Memo effectiveness counters (plain stores; each estimator belongs
	// to one evaluation lane). The mapper merges them into the schedule's
	// obs.Counters snapshot at the end of a run.
	memoProbes uint64
	memoHits   uint64
	memoStale  uint64
}

// memoEntry is one memoized estimate: its key bytes in the arena, the
// estimate, and the next entry of the same hash bucket (-1 ends the chain).
type memoEntry struct {
	keyOff, keyLen int32
	next           int32
	val            float64
}

// NewEstimator returns an estimator for the given cluster.
func NewEstimator(cl *platform.Cluster) *Estimator {
	e := &Estimator{cl: cl, hetLinks: cl.HeteroLinks()}
	if cl.P > 1 {
		if !cl.Hierarchical() || cl.CabinetSize > 1 {
			// Nodes 0 and 1 share a switch (or a cabinet).
			e.latIntra = cl.RouteLatency(0, 1)
			e.bwIntra = cl.EffectiveBandwidth(0, 1)
		}
		if cl.Hierarchical() && cl.P > cl.CabinetSize {
			// Nodes 0 and CabinetSize sit in different cabinets.
			e.latCross = cl.RouteLatency(0, cl.CabinetSize)
			e.bwCross = cl.EffectiveBandwidth(0, cl.CabinetSize)
		}
	}
	if e.hetLinks {
		e.bwOverride = len(cl.LinkBandwidths) > 0
		e.latOverride = len(cl.LinkLatencies) > 0
		e.upCap = make([]float64, cl.P)
		e.downCap = make([]float64, cl.P)
		e.upLat = make([]float64, cl.P)
		e.downLat = make([]float64, cl.P)
		for i := 0; i < cl.P; i++ {
			e.upCap[i] = cl.LinkCapacity(cl.NodeUpLink(i))
			e.downCap[i] = cl.LinkCapacity(cl.NodeDownLink(i))
			e.upLat[i] = cl.LinkDelay(cl.NodeUpLink(i))
			e.downLat[i] = cl.LinkDelay(cl.NodeDownLink(i))
		}
		if cl.Hierarchical() {
			cabs := cl.Cabinets()
			e.cabUpCap = make([]float64, cabs)
			e.cabDownCap = make([]float64, cabs)
			e.cabUpLat = make([]float64, cabs)
			e.cabDownLat = make([]float64, cabs)
			for c := 0; c < cabs; c++ {
				e.cabUpCap[c] = cl.LinkCapacity(cl.CabUpLink(c))
				e.cabDownCap[c] = cl.LinkCapacity(cl.CabDownLink(c))
				e.cabUpLat[c] = cl.LinkDelay(cl.CabUpLink(c))
				e.cabDownLat[c] = cl.LinkDelay(cl.CabDownLink(c))
			}
		}
	}
	return e
}

// hetFigures returns the empirical per-flow bandwidth β' and the one-way
// route latency between two distinct nodes from the id-indexed caches,
// replicating platform.EffectiveBandwidth/RouteLatency branch for branch
// (same min-chain visit order, same pairwise latency sums, same WMax cap
// comparison) so the results are bit-identical to the map-consulting
// queries.
func (e *Estimator) hetFigures(src, dst int) (bw, lat float64) {
	cl := e.cl
	cross := cl.CabinetSize > 0 && src/cl.CabinetSize != dst/cl.CabinetSize
	if e.latOverride {
		lat = e.upLat[src] + e.downLat[dst]
		if cross {
			lat += e.cabUpLat[src/cl.CabinetSize] + e.cabDownLat[dst/cl.CabinetSize]
		}
	} else if cross {
		lat = 2*cl.LinkLatency + 2*cl.UplinkLatency
	} else {
		lat = 2 * cl.LinkLatency
	}
	if e.bwOverride {
		bw = e.upCap[src]
		if v := e.downCap[dst]; v < bw {
			bw = v
		}
		if cross {
			if v := e.cabUpCap[src/cl.CabinetSize]; v < bw {
				bw = v
			}
			if v := e.cabDownCap[dst/cl.CabinetSize]; v < bw {
				bw = v
			}
		}
	} else {
		bw = cl.LinkBandwidth
		if cross && cl.UplinkBandwidth < bw {
			bw = cl.UplinkBandwidth
		}
	}
	if rtt := 2 * lat; rtt > 0 {
		if c := cl.WMax / rtt; c < bw {
			bw = c
		}
	}
	return bw, lat
}

// Reset discards the per-run EdgeRedistTime memo while keeping every
// backing allocation (the hash buckets, entry slab, key arena and the
// per-processor scratch), readying the estimator for the next mapping run.
// The memo is keyed by (edge ID, receiver rank order), which only
// determines the estimate within a single run — sender sets change from
// graph to graph — so a pooled context must call Reset between runs.
func (e *Estimator) Reset() {
	clear(e.memoIdx)
	clear(e.lastByEdge)
	e.memoEnts = e.memoEnts[:0]
	e.memoKeys = e.memoKeys[:0]
	e.memoProbes = 0
	e.memoHits = 0
	e.memoStale = 0
}

func (e *Estimator) ensureScratch() {
	if e.outBytes == nil {
		e.outBytes = make([]float64, e.cl.P)
		e.inBytes = make([]float64, e.cl.P)
		if e.cl.P > redist.BitsetMaxP {
			e.setCnt = make([]int, e.cl.P)
		}
	}
}

// sameSet is redist.SameSet with an allocation-free multiset fallback for
// custom clusters beyond the stack-bitset range, so RedistTime stays
// clean on the steady-state path at any P.
func (e *Estimator) sameSet(a, b []int) bool {
	if e.setCnt == nil {
		return redist.SameSet(a, b)
	}
	if len(a) != len(b) {
		return false
	}
	cnt := e.setCnt
	for _, x := range a {
		cnt[x]++
	}
	for _, y := range b {
		cnt[y]--
	}
	eq := true
	for _, x := range a {
		if cnt[x] != 0 {
			eq = false
		}
		cnt[x] = 0
	}
	for _, y := range b {
		if cnt[y] != 0 {
			eq = false
		}
		cnt[y] = 0
	}
	return eq
}

// RedistTime estimates the duration of redistributing bytes from the
// sender processor set to the receiver processor set (both in rank order,
// each duplicate-free) under the bounded multi-port model without
// cross-redistribution contention:
//
//	max over nodes of (bytes sent / β_out, bytes received / β_in)
//	  capped below by the slowest individual flow at its empirical
//	  bandwidth β', plus the longest route latency involved.
//
// Same-set same-size redistributions cost zero (§II-A). The banded block
// matrix is traversed directly (redist.VisitBlocks); nothing is allocated.
func (e *Estimator) RedistTime(bytes float64, senders, receivers []int) float64 {
	if bytes <= 0 || len(senders) == 0 || len(receivers) == 0 {
		return 0
	}
	e.ensureScratch()
	if e.sameSet(senders, receivers) {
		return 0
	}
	out, in := e.outBytes, e.inBytes
	hier := e.cl.Hierarchical()
	cabSize := e.cl.CabinetSize
	t := 0.0
	maxLat := 0.0
	redist.VisitBlocks(bytes, len(senders), len(receivers), func(i, j int, v float64) {
		src, dst := senders[i], receivers[j]
		if src == dst {
			return // local copies are free
		}
		out[src] += v
		in[dst] += v
		var bw, lat float64
		if e.hetLinks {
			bw, lat = e.hetFigures(src, dst)
		} else if hier && src/cabSize != dst/cabSize {
			bw, lat = e.bwCross, e.latCross
		} else {
			bw, lat = e.bwIntra, e.latIntra
		}
		// An individual flow cannot beat its empirical bandwidth.
		if bw > 0 {
			if ft := v / bw; ft > t {
				t = ft
			}
		}
		if lat > maxLat {
			maxLat = lat
		}
	})
	beta := e.cl.LinkBandwidth
	for _, s := range senders {
		if e.hetLinks {
			beta = e.upCap[s]
		}
		if v := out[s] / beta; v > t {
			t = v
		}
		out[s] = 0
	}
	for _, r := range receivers {
		if e.hetLinks {
			beta = e.downCap[r]
		}
		if v := in[r] / beta; v > t {
			t = v
		}
		in[r] = 0
	}
	if t == 0 {
		return 0 // everything was local after all
	}
	return t + maxLat
}

// EdgeRedistTime is RedistTime memoized by (edge, receiver rank order).
// Within one mapping run an edge's sender set is fixed once its source
// task is mapped, so the pair fully determines the estimate; candidate
// placements that revisit a receiver set (baseline re-evaluations, the
// delta EFT guard, time-cost packing) hit the memo instead of re-walking
// the block matrix. Do not reuse one Estimator across mapping runs.
func (e *Estimator) EdgeRedistTime(edge int, bytes float64, senders, receivers []int) float64 {
	if e.memoIdx == nil {
		// Capacity hints sized for a typical mapping run (a few hundred
		// distinct (edge, receiver-order) pairs) keep growth re-allocations
		// to a handful per run.
		e.memoIdx = make(map[uint64]int32, 256)
		e.memoEnts = make([]memoEntry, 0, 256)
		e.memoKeys = make([]byte, 0, 4096)
	}
	key := binary.AppendUvarint(e.keyBuf[:0], uint64(edge))
	for _, r := range receivers {
		key = binary.AppendUvarint(key, uint64(r))
	}
	e.keyBuf = key
	// FNV-1a over the key bytes buckets the chains; stored keys decide.
	h := uint64(14695981039346656037)
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	e.memoProbes++
	head, ok := e.memoIdx[h]
	if ok {
		for i := head; i >= 0; i = e.memoEnts[i].next {
			ent := &e.memoEnts[i]
			if string(e.memoKeys[ent.keyOff:ent.keyOff+ent.keyLen]) == string(key) {
				e.memoHits++
				return ent.val
			}
		}
	} else {
		head = -1
	}
	v, stale := 0.0, false
	if e.MemoEps > 0 {
		v, stale = e.staleNeighbor(edge, receivers)
	}
	if stale {
		e.memoStale++
	} else {
		v = e.RedistTime(bytes, senders, receivers)
	}
	off := int32(len(e.memoKeys))
	e.memoKeys = append(e.memoKeys, key...)
	e.memoEnts = append(e.memoEnts, memoEntry{keyOff: off, keyLen: int32(len(key)), next: head, val: v})
	e.memoIdx[h] = int32(len(e.memoEnts) - 1)
	if e.MemoEps > 0 && !stale {
		// Only freshly computed entries anchor future staleness checks, so
		// a chain of reuses can never wander more than ε from a real
		// estimate. The probe key is still inserted above either way:
		// identical future probes become exact hits.
		if e.lastByEdge == nil {
			e.lastByEdge = make(map[int]int32, 64)
		}
		e.lastByEdge[edge] = int32(len(e.memoEnts) - 1)
	}
	return v
}

// staleNeighbor checks whether the edge's last freshly computed memo entry
// has a receiver rank order close enough to the probe's — same length q,
// at most ⌊MemoEps·q⌋ differing positions — to reuse its estimate. Receiver
// orders are availability-ordered prefixes of the cluster, so the
// position-diff fraction is a direct measure of how far the availability
// inputs moved since the entry was computed.
func (e *Estimator) staleNeighbor(edge int, receivers []int) (float64, bool) {
	idx, ok := e.lastByEdge[edge]
	if !ok {
		return 0, false
	}
	q := len(receivers)
	maxDiff := int(e.MemoEps * float64(q))
	if maxDiff <= 0 {
		return 0, false
	}
	ent := &e.memoEnts[idx]
	key := e.memoKeys[ent.keyOff : ent.keyOff+ent.keyLen]
	_, n := binary.Uvarint(key) // skip the edge id
	key = key[n:]
	diff := 0
	for i := 0; i < q; i++ {
		r, n := binary.Uvarint(key)
		if n <= 0 {
			return 0, false // stored order is shorter: different q
		}
		key = key[n:]
		if int(r) != receivers[i] {
			if diff++; diff > maxDiff {
				return 0, false
			}
		}
	}
	if len(key) != 0 {
		return 0, false // stored order is longer: different q
	}
	return ent.val, true
}

// EdgeTimeSimple is the coarse per-edge communication estimate used inside
// bottom-level priorities and by the allocation step, where the mapping is
// still unknown: full volume over one private link plus one route latency.
func (e *Estimator) EdgeTimeSimple(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes/e.cl.LinkBandwidth + 2*e.cl.LinkLatency
}
