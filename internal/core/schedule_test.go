package core

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// validSchedule builds a well-formed 2-task schedule for the error tests.
func validSchedule(g *dag.Graph) *Schedule {
	return &Schedule{
		Alloc:     []int{2, 2},
		Procs:     [][]int{{0, 1}, {2, 3}},
		Order:     []int{0, 1},
		EstStart:  []float64{0, 1},
		EstFinish: []float64{1, 2},
	}
}

func twoTaskChain() *dag.Graph {
	g := dag.NewGraph(2, 1)
	g.AddTask(dag.Task{Name: "a", M: 5e6, A: 100, Alpha: 0})
	g.AddTask(dag.Task{Name: "b", M: 5e6, A: 100, Alpha: 0})
	g.AddEdge(0, 1, 5e6)
	return g
}

func TestScheduleValidateAcceptsValid(t *testing.T) {
	g := twoTaskChain()
	if err := validSchedule(g).Validate(g, platform.Chti()); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleValidateErrors(t *testing.T) {
	g := twoTaskChain()
	cl := platform.Chti()
	cases := []struct {
		name   string
		mutate func(*Schedule)
		want   string
	}{
		{"short arrays", func(s *Schedule) { s.Alloc = s.Alloc[:1] }, "sized"},
		{"zero alloc", func(s *Schedule) { s.Alloc[0] = 0 }, "outside"},
		{"alloc above P", func(s *Schedule) { s.Alloc[0] = cl.P + 1 }, "outside"},
		{"procs/alloc mismatch", func(s *Schedule) { s.Procs[0] = []int{0} }, "procs"},
		{"invalid processor", func(s *Schedule) { s.Procs[0] = []int{0, cl.P} }, "invalid processor"},
		{"duplicate processor", func(s *Schedule) { s.Procs[0] = []int{3, 3} }, "twice"},
		{"order not a permutation", func(s *Schedule) { s.Order = []int{0, 0} }, "permutation"},
		{"order violates precedence", func(s *Schedule) { s.Order = []int{1, 0} }, "before its predecessor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSchedule(g)
			tc.mutate(s)
			err := s.Validate(g, cl)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestScheduleValidateVirtualWithAllocation(t *testing.T) {
	g := dag.NewGraph(1, 0)
	g.AddVirtual("v")
	s := &Schedule{
		Alloc: []int{1}, Procs: [][]int{{0}}, Order: []int{0},
		EstStart: []float64{0}, EstFinish: []float64{0},
	}
	if err := s.Validate(g, platform.Chti()); err == nil {
		t.Fatal("virtual task with an allocation must be rejected")
	}
}

func TestSortProcs(t *testing.T) {
	in := []int{5, 1, 3}
	out := SortProcs(in)
	if out[0] != 1 || out[1] != 3 || out[2] != 5 {
		t.Errorf("SortProcs = %v", out)
	}
	if in[0] != 5 {
		t.Error("SortProcs must not mutate its input")
	}
}

func TestEstMakespanEmpty(t *testing.T) {
	s := &Schedule{}
	if s.EstMakespan() != 0 {
		t.Error("empty schedule estimate should be 0")
	}
}

func TestNoClaimingAblationAllowsRepeatedAdoption(t *testing.T) {
	// Fork: one parent, three equal-size children. With claiming exactly
	// one child inherits the parent's set; without claiming all children
	// may pile onto it.
	cl := platform.Grillon()
	g := dag.NewGraph(4, 3)
	for i := 0; i < 4; i++ {
		g.AddTask(dag.Task{Name: "f", M: 40e6, A: 128, Alpha: 0})
	}
	for c := 1; c <= 3; c++ {
		g.AddEdge(0, c, g.Tasks[0].Bytes())
	}
	g.Normalize()
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := []int{4, 4, 4, 4, 0}

	opts := DefaultNaive(StrategyDelta)
	opts.DeltaEFTGuard = false // isolate the claiming effect
	s := Map(g, costs, cl, a, opts)
	inherited := 0
	for c := 1; c <= 3; c++ {
		if sameProcs(s.Procs[c], s.Procs[0]) {
			inherited++
		}
	}
	if inherited != 1 {
		t.Errorf("with claiming, exactly one child should inherit; got %d", inherited)
	}

	opts.NoClaiming = true
	s = Map(g, costs, cl, a, opts)
	inherited = 0
	for c := 1; c <= 3; c++ {
		if sameProcs(s.Procs[c], s.Procs[0]) {
			inherited++
		}
	}
	if inherited != 3 {
		t.Errorf("without claiming, all three children should inherit; got %d", inherited)
	}
}

func sameProcs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := SortProcs(a), SortProcs(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
