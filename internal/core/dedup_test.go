package core

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/moldable"
	"repro/internal/platform"
)

func totalEvals(c *MapContext) int {
	n := 0
	for i := range c.m.ws {
		n += c.m.ws[i].nEval
	}
	return n
}

// TestBaselineDedupSkipsEvaluations pins the per-task candidate dedup: on a
// chain whose every task is allocated the whole cluster, the adoption
// candidate (delta) or accepted stretch (time-cost) inherits the
// predecessor's full-cluster rank order, and the baseline — the
// earliest-available set aligned to that same predecessor — lands on the
// identical ordered processor list. The dedup must (a) fire, (b) save
// exactly one estimator evaluation per hit, and (c) leave the schedule
// byte-identical to the dedup-disabled engine.
func TestBaselineDedupSkipsEvaluations(t *testing.T) {
	cl := platform.Grillon()
	g := chain(6, 40e6)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := make([]int, g.N())
	for i := range a {
		a[i] = cl.P
	}

	for _, st := range []Strategy{StrategyDelta, StrategyTimeCost} {
		opts := DefaultNaive(st)

		cDedup := NewMapContext(cl)
		withDedup := cDedup.Map(g, costs, a, opts)
		hits := cDedup.m.nDedup
		evalsDedup := totalEvals(cDedup)

		opts.disableDedup = true
		cPlain := NewMapContext(cl)
		noDedup := cPlain.Map(g, costs, a, opts)
		evalsPlain := totalEvals(cPlain)

		if hits == 0 {
			t.Errorf("%v: dedup never fired on an all-identity chain", st)
		}
		if cPlain.m.nDedup != 0 {
			t.Errorf("%v: disabled engine recorded %d dedup hits", st, cPlain.m.nDedup)
		}
		// Each hit skips exactly one evalOn call — no more, no less.
		if evalsDedup+hits != evalsPlain {
			t.Errorf("%v: evals %d + dedup hits %d != dedup-disabled evals %d",
				st, evalsDedup, hits, evalsPlain)
		}
		if d1, d2 := scheduleDigest(withDedup), scheduleDigest(noDedup); d1 != d2 {
			t.Errorf("%v: dedup changed the schedule: %s != %s", st, d1, d2)
		}
	}
}

// TestDedupDigestIdenticalRandomized sweeps random graphs and confirms the
// dedup is purely an evaluation-count optimization: digests match the
// dedup-disabled engine everywhere, including under PredOverlap and with
// the delta EFT guard off.
func TestDedupDigestIdenticalRandomized(t *testing.T) {
	cl := platform.Grelon()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20; i++ {
		g := randomGraph(rng)
		costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
		a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
		for _, st := range []Strategy{StrategyDelta, StrategyTimeCost} {
			opts := DefaultNaive(st)
			opts.PredOverlap = i%3 == 0
			opts.DeltaEFTGuard = i%4 != 1
			want := scheduleDigest(Map(g, costs, cl, a, opts))
			opts.disableDedup = true
			if got := scheduleDigest(Map(g, costs, cl, a, opts)); got != want {
				t.Fatalf("graph %d %v: dedup-disabled digest %s != dedup digest %s", i, st, got, want)
			}
		}
	}
}
