package core

import (
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// vectorized returns a copy of cl with its uniformity spelled out
// explicitly: an all-equal per-node speed vector and override maps giving
// every single link its class figure. The copy selects every
// heterogeneous code path (set-aware task costs, per-pair route queries,
// per-node link capacities) while describing the same physical machine.
func vectorized(cl *platform.Cluster) *platform.Cluster {
	v := *cl
	v.NodeSpeeds = make([]float64, cl.P)
	for i := range v.NodeSpeeds {
		v.NodeSpeeds[i] = cl.SpeedGFlops
	}
	v.LinkBandwidths = make(map[platform.LinkID]float64, cl.NumLinks())
	v.LinkLatencies = make(map[platform.LinkID]float64, cl.NumLinks())
	for i := 0; i < cl.P; i++ {
		v.LinkBandwidths[cl.NodeUpLink(i)] = cl.LinkBandwidth
		v.LinkBandwidths[cl.NodeDownLink(i)] = cl.LinkBandwidth
		v.LinkLatencies[cl.NodeUpLink(i)] = cl.LinkLatency
		v.LinkLatencies[cl.NodeDownLink(i)] = cl.LinkLatency
	}
	if cl.Hierarchical() {
		for cab := 0; cab < cl.Cabinets(); cab++ {
			v.LinkBandwidths[cl.CabUpLink(cab)] = cl.UplinkBandwidth
			v.LinkBandwidths[cl.CabDownLink(cab)] = cl.UplinkBandwidth
			v.LinkLatencies[cl.CabUpLink(cab)] = cl.UplinkLatency
			v.LinkLatencies[cl.CabDownLink(cab)] = cl.UplinkLatency
		}
	}
	return &v
}

// TestUniformVectorDigestEquivalence pins that the heterogeneous paths
// degrade to the homogeneous oracle: a cluster carrying an explicit
// all-equal speed vector plus all-equal link override maps must produce
// schedules byte-identical (scheduleDigest) to the scalar-field cluster,
// across every preset, mapping strategy and allocation method. Any
// divergence means the hetero code path re-ordered a floating-point
// expression or consulted a different figure — exactly the silent
// mis-costing the layered refactor must not introduce.
func TestUniformVectorDigestEquivalence(t *testing.T) {
	clusters := []*platform.Cluster{
		platform.Chti(), platform.Grillon(), platform.Grelon(),
		platform.Big512(), platform.Big1024(),
	}
	strategies := []Strategy{StrategyNone, StrategyDelta, StrategyTimeCost}
	methods := []alloc.Method{alloc.CPA, alloc.HCPA, alloc.MCPA}
	for _, cl := range clusters {
		class := "layered"
		if cl.Hierarchical() {
			class = "fft" // cross-cabinet routes exercise the uplink overrides
		}
		g := goldenGraph(class)
		vc := vectorized(cl)
		if err := vc.Validate(); err != nil {
			t.Fatalf("%s vectorized: %v", cl.Name, err)
		}
		if !vc.Hetero() {
			t.Fatalf("%s vectorized: hetero paths not selected", cl.Name)
		}
		for _, method := range methods {
			opts := alloc.DefaultOptions()
			opts.Method = method
			for _, st := range strategies {
				name := fmt.Sprintf("%s/%s/%v/%v", cl.Name, class, method, st)
				t.Run(name, func(t *testing.T) {
					costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
					want := scheduleDigest(Map(g, costs, cl, alloc.Compute(g, costs, cl, opts), DefaultNaive(st)))

					vcosts := moldable.NewCosts(g, vc.PlanSpeedGFlops())
					got := scheduleDigest(Map(g, vcosts, vc, alloc.Compute(g, vcosts, vc, opts), DefaultNaive(st)))
					if got != want {
						t.Errorf("vectorized digest = %s, scalar = %s (hetero path diverged from the uniform oracle)", got, want)
					}
				})
			}
		}
	}
}

// TestScheduleGoldenHetero pins the exact schedules of the heterogeneous
// presets — 2-tier speed mixes with throttled uplinks — the way
// TestScheduleGolden pins the homogeneous ones. The digests were recorded
// from the first hetero-aware mapper; any change to them is a change in
// heterogeneous scheduling decisions and needs the same scrutiny as a
// homogeneous digest change.
func TestScheduleGoldenHetero(t *testing.T) {
	cases := []struct {
		cl    *platform.Cluster
		class string
		st    Strategy
		want  string
	}{
		{platform.GrelonHet(), "layered", StrategyNone, "4472acd7f9d13173"},
		{platform.GrelonHet(), "fft", StrategyDelta, "237655b963e329a1"},
		{platform.GrelonHet(), "irregular", StrategyTimeCost, "384a64bca28b06ae"},
		{platform.Big512Het(), "fft", StrategyDelta, "87d5a91dc813a744"},
		{platform.Big512Het(), "layered", StrategyTimeCost, "e6b8f1d04e8a43a1"},
		{platform.Big512Het(), "irregular", StrategyNone, "04a4a81f1c3b960c"},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%s/%s/%v", c.cl.Name, c.class, c.st), func(t *testing.T) {
			g := goldenGraph(c.class)
			costs := moldable.NewCosts(g, c.cl.PlanSpeedGFlops())
			a := alloc.Compute(g, costs, c.cl, alloc.DefaultOptions())
			s := Map(g, costs, c.cl, a, DefaultNaive(c.st))
			if err := s.Validate(g, c.cl); err != nil {
				t.Fatal(err)
			}
			if got := scheduleDigest(s); got != c.want {
				t.Errorf("schedule digest = %s, want %s (heterogeneous scheduling decisions changed)", got, c.want)
			}
		})
	}
}

// TestHeteroFinishEstimatesUseSlowestMember checks the slowest-member
// cost rule end to end in the mapper: on a cluster whose nodes split into
// a fast and a slow half, every committed finish estimate must equal
// est + TimeOn at the speed of the set's slowest node — never the
// planning-speed or fast-node duration for a set touching the slow half.
func TestHeteroFinishEstimatesUseSlowestMember(t *testing.T) {
	cl := platform.GrelonHet()
	g := goldenGraph("layered")
	costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
	a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
	s := Map(g, costs, cl, a, DefaultNaive(StrategyTimeCost))
	if err := s.Validate(g, cl); err != nil {
		t.Fatal(err)
	}
	sawFastSet := false
	for tsk := range g.Tasks {
		if g.Tasks[tsk].Virtual || len(s.Procs[tsk]) == 0 {
			continue
		}
		speed := cl.MinSpeedOf(s.Procs[tsk])
		want := s.EstStart[tsk] + costs.TimeOn(tsk, len(s.Procs[tsk]), speed)
		if s.EstFinish[tsk] != want {
			t.Fatalf("task %d on %v: finish %v, want start %v + TimeOn at %g GFlop/s = %v",
				tsk, s.Procs[tsk], s.EstFinish[tsk], s.EstStart[tsk], speed, want)
		}
		if speed == cl.NodeSpeed(0) {
			sawFastSet = true
		}
	}
	if !sawFastSet {
		t.Error("no task ran at full speed — the schedule never used the fast tier, weak test")
	}
}
