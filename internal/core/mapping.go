package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/platform"
	"repro/internal/redist"
)

// Strategy selects the redistribution-aware mapping behaviour.
type Strategy int

const (
	// StrategyNone is the baseline HCPA mapping: allocations are never
	// modified; every task is placed on the earliest-available processors.
	StrategyNone Strategy = iota
	// StrategyDelta packs/stretches within the ⌈mindelta⌉/⌊maxdelta⌋ bounds
	// (§III, "delta").
	StrategyDelta
	// StrategyTimeCost stretches when the work ratio ρ ≥ minrho and packs
	// when the estimated finish time does not degrade (§III, "time-cost").
	StrategyTimeCost
)

// String implements fmt.Stringer. Values outside the defined set render as
// "Strategy(n)" — the Go convention for out-of-range enums — so that logs
// and error messages stay unambiguous if strategies are ever added or a raw
// integer is cast incorrectly.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "hcpa"
	case StrategyDelta:
		return "delta"
	case StrategyTimeCost:
		return "time-cost"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Options parameterizes the mapping procedures. The zero value is the
// baseline mapping; DefaultNaive returns the paper's §IV-B configuration.
type Options struct {
	Strategy Strategy

	// MinDelta ∈ R−: fraction of the original allocation that packing may
	// remove (−0.5 ⇒ an allocation of 6 may shrink to 3). Delta strategy.
	MinDelta float64
	// MaxDelta ∈ R+: fraction of the original allocation that stretching
	// may add (0.5 ⇒ an allocation of 6 may grow to 9). Delta strategy.
	MaxDelta float64

	// MinRho ∈ (0,1]: minimum acceptable work ratio for a stretch.
	// Time-cost strategy.
	MinRho float64
	// Packing enables allocation packing in the time-cost strategy (the
	// paper finds enabling it always produces shorter schedules, Fig. 5).
	Packing bool

	// SortSecondary disables the stable secondary sort of the ready list
	// when false... kept as an explicit knob for the ablation benches.
	// Default (via the constructors) is true, as in the paper (§III-C).
	SortSecondary bool

	// Align selects the receiver rank-order optimization used when
	// expanding redistributions to flows (§II-A self-communication
	// maximization). Default: Hungarian.
	Align redist.AlignMode

	// AlignCap overrides the receiver count up to which AlignAuto still
	// runs the exact Hungarian assignment (0 = redist.AlignAutoExactCap).
	// Ignored by the explicit alignment modes. One of the renegotiated
	// exactness knobs: the ablation harness sweeps it, the fast profile
	// pins the measured value.
	AlignCap int

	// MemoEps, when positive, lets the estimator's EdgeRedistTime memo
	// answer a probe from an entry whose receiver rank order differs in at
	// most ⌊ε·q⌋ positions instead of re-walking the block matrix (see
	// Estimator.MemoEps). Zero keeps exact memo keying — the reference
	// behaviour.
	MemoEps float64

	// PredOverlap is an ablation of the *baseline* mapping: when true, the
	// earliest-available processor selection is augmented with candidate
	// sets overlapping each predecessor's processors (keeping the fixed
	// allocation size). The paper's baseline does not do this.
	PredOverlap bool

	// DeltaEFTGuard makes the delta strategy fall back to the baseline
	// mapping when adopting the selected predecessor's processors would
	// strictly increase the task's own estimated finish time. Algorithm 1
	// (line 4) computes "delta / estimate execution time" for every ready
	// node, which supports guarding even the delta strategy with the
	// finish-time estimate; without the guard, estimation-free snaps onto
	// late-available processor sets frequently backfire (an effect §IV-D
	// acknowledges on large clusters). Enabled by DefaultNaive.
	DeltaEFTGuard bool

	// NoClaiming is an ablation switch: it disables the one-adoption-per-
	// parent rule (docs/ARCHITECTURE.md, "Design reconstructions"), letting every ready child adopt the
	// same predecessor's processor set. The paper's results are not
	// reproducible in this mode — siblings of popular parents serialize —
	// which is the evidence for the claiming interpretation; the ablation
	// benches quantify it.
	NoClaiming bool

	// Workers fans each task's candidate evaluations out over a pool of
	// that many workers (the calling goroutine included). Values ≤ 1 run
	// the serial engine, which remains the oracle; any larger count
	// produces byte-identical schedules — candidate evaluation is pure
	// given the committed state, every worker owns its own scratch, and
	// the reduction replays the serial comparison order (see parallel.go).
	Workers int

	// Tracer, when non-nil, records one span per task placement
	// (category "map", Arg1 = task ID, Arg2 = candidate evaluations the
	// placement cost across all lanes). Placement decisions are
	// unaffected: the tracer observes, never steers.
	Tracer *obs.Tracer

	// disableDedup turns off the baseline-versus-reference candidate
	// dedup in the serial engine (see baselinePlacementDedup). Test-only:
	// the counter-asserting dedup tests compare both modes.
	disableDedup bool
}

// DefaultNaive returns the naive parameter set of §IV-B for a strategy:
// mindelta = −0.5, maxdelta = 0.5, minrho = 0.5, packing allowed.
func DefaultNaive(s Strategy) Options {
	return Options{
		Strategy:      s,
		MinDelta:      -0.5,
		MaxDelta:      0.5,
		MinRho:        0.5,
		Packing:       true,
		SortSecondary: true,
		Align:         redist.AlignHungarian,
		DeltaEFTGuard: true,
	}
}

// Fast-profile knob values: the renegotiated exactness point measured by
// the internal/ablate harness (docs/ablation_pr10.json). Every value sits
// where the ablation saw zero schedule changes across all scenario classes
// while shaving mapping and replay latency; rats.ProfileFast bundles them
// as the default service configuration, DefaultNaive stays the reference.
const (
	// FastAlignCap is the AlignAuto exact-assignment cap: redistributions
	// wider than this fall back to the greedy alignment. 32 is the sweep's
	// sweet spot — it collapses the Hungarian tail that dominates wide
	// redistributions (reference Map p99 on big512 is ~870 ms, capped ~3 ms)
	// at a worst-case makespan delta of 0.011% across all classes, far
	// inside the 0.5% profile contract.
	FastAlignCap = 32
	// FastMemoEps is the estimator memo staleness bound. The ablation
	// REJECTED a positive ε: across the full sweep the stale-neighbor path
	// fired 2 times in ~78k probes even at ε = 0.15 — mapping either hits
	// the exact memo or moves receiver orders wholesale — while the
	// neighbor comparison slowed big-scale mapping up to 1.6×. The knob
	// stays plumbed (Options.MemoEps) for workloads with jittery
	// availability, but the shipped profile keeps exact memo keying.
	FastMemoEps = 0.0
	// FastScratchThreshold quadruples the flownet scratch-solve cutoff
	// (latency-only: all solve regimes are exact; paper-scale replay p50
	// dropped ~19% in the sweep, big scales were neutral).
	FastScratchThreshold = 64
)

// DefaultFast returns the fast-profile mapping options for a strategy:
// DefaultNaive with the approximation knobs set to the ablation-backed
// values above. Schedules stay within the ≤0.5% makespan-delta bound the
// profile contract promises (the ablation's worst case is 0.011%).
func DefaultFast(s Strategy) Options {
	o := DefaultNaive(s)
	o.Align = redist.AlignAuto
	o.AlignCap = FastAlignCap
	o.MemoEps = FastMemoEps
	return o
}

// Map runs the mapping phase on graph g with the given first-step
// allocation and returns the resulting schedule. The allocation slice is
// not modified (RATS adaptations are recorded in Schedule.Alloc).
//
// Map builds a fresh MapContext per call; callers scheduling a stream of
// DAGs on one cluster should hold a MapContext and call its Map method,
// which reuses the cluster-sized scratch, the estimator and the alignment
// engine across runs.
func Map(g *dag.Graph, costs *moldable.Costs, cl *platform.Cluster, alloc []int, opts Options) *Schedule {
	return NewMapContext(cl).Map(g, costs, alloc, opts)
}

// evalWorker owns the mutable state one evaluation lane needs to score a
// candidate placement: the estimator (redistribution memo + block-walk
// scratch), the receiver-rank alignment scratch, and the candidate-buffer
// pool. The serial engine uses lane 0 only; the parallel engine binds lane
// w to pool worker w, so concurrent evaluations never share scratch.
//
// Every lane's estimator memoizes (edge, receiver rank order)
// independently; RedistTime is a pure function of those inputs plus the
// committed sender sets, so the memos return identical values regardless
// of which lane — or how many — evaluated an edge first.
type evalWorker struct {
	est          *Estimator
	alignScratch redist.AlignScratch
	bufPool      [][]int

	// nEval counts evalOn calls on this lane within the current run
	// (diagnostics; the dedup tests assert on the sum across lanes).
	nEval int
}

// getBuf returns an empty processor-set buffer from the lane's pool. A pool
// miss returns nil on purpose: the subsequent append (or AlignReceiversInto)
// sizes the allocation to the candidate itself, not to the cluster, so
// committed sets never pin cluster-sized backing arrays.
func (w *evalWorker) getBuf() []int {
	if n := len(w.bufPool); n > 0 {
		b := w.bufPool[n-1][:0]
		w.bufPool = w.bufPool[:n-1]
		return b
	}
	return nil
}

// putBuf returns a discarded candidate buffer to the lane's pool. Callers
// must only pass buffers that lost their placement race — a committed
// buffer is owned by the schedule.
func (w *evalWorker) putBuf(b []int) {
	if cap(b) > 0 {
		w.bufPool = append(w.bufPool, b)
	}
}

// mapper holds the mutable state of one mapping run.
type mapper struct {
	g     *dag.Graph
	costs *moldable.Costs
	cl    *platform.Cluster
	opts  Options

	// hetSpeeds routes execution-time queries through the set-aware cost
	// path (slowest member of the candidate processor set) instead of the
	// count-only oracle. False on uniform clusters, where the count-only
	// path is bit-identical and cheaper.
	hetSpeeds bool

	// Escaping per-run state: alloc, procs, start, finish and order are
	// handed to the returned Schedule (the schedule-ownership handoff), so
	// they are allocated fresh on every run even under a pooled MapContext.
	alloc  []int     // working allocation (modified by RATS)
	procs  [][]int   // assigned processor sets, rank order
	start  []float64 // estimated start times
	finish []float64 // estimated finish times
	order  []int

	// Reusable per-run scratch, sized by the graph and fully rewritten (or
	// cleared) at the start of each run.
	avail     []float64 // processor availability
	mapped    []bool
	bl        []float64 // static bottom-level priorities
	predsLeft []int
	readyBuf  []int

	// byAvail holds all processor IDs sorted by (availability, ID). A
	// commit only changes the availability of the ≤k processors the task
	// occupies, so the order is repaired incrementally (reorderAvail)
	// instead of re-sorted from scratch on every candidate evaluation.
	byAvail      []int
	availKept    []int  // reorderAvail scratch: untouched entries
	availTouched []int  // reorderAvail scratch: committed processors
	touchedMark  []bool // reorderAvail scratch, indexed by processor ID

	// Per-call scratch of the predecessor enumerations and the ready-list
	// sort. predsBuf and inhBuf are distinct because timeCostPlacement
	// iterates inheritablePreds' result while baselinePlacement re-runs
	// realPreds underneath it; sortKey is indexed by task ID; sorter is the
	// reusable sort.Stable adapter (sort.SliceStable would allocate its
	// closure and reflect swapper on every wave re-sort).
	predsBuf []int
	inhBuf   []int
	sortKey  []float64
	sorter   readySorter

	// ws holds the per-lane evaluation scratch (estimator memo, alignment
	// scratch, candidate-buffer pool). Lane 0 always exists and serves the
	// serial engine; ensureWorkers grows the slice when Options.Workers
	// asks for more lanes and resets every estimator at the start of a run.
	ws []evalWorker

	// nDedup counts candidate evaluations skipped by the serial engine's
	// baseline-versus-reference dedup in the current run (see
	// baselinePlacementDedup).
	nDedup int

	// Parallel-engine state (nil/unused when Options.Workers ≤ 1): the
	// per-run worker pool, the per-task candidate list, and the prebuilt
	// dispatch closure with the task it currently evaluates. parFn is
	// built once per mapper so pool.Run does not allocate a closure per
	// task.
	pool     *par.Pool
	parCands []parCand
	parT     int
	parFn    func(worker, i int)

	// claimed[p] is set once a task has inherited predecessor p's
	// processor set. Each parent allocation can be adopted by at most one
	// child — the delta strategy "aims at avoiding one data redistribution
	// per task" (§IV-B) — otherwise every sibling of a popular parent
	// would pile onto the same processors and serialize. When a claim
	// happens, the δ/gain values of the remaining ready tasks that were
	// computed against that parent are recomputed and the list re-sorted
	// (Algorithm 1, lines 11–12).
	claimed []bool
}

// ensureWorkers grows the lane slice to n entries and readies lanes
// [0, n) for a fresh run: estimator memos are dropped (they are keyed per
// run — sender sets change from graph to graph) and the evaluation
// counters cleared. Lanes beyond n keep stale memos; they are reset here
// before any later run uses them.
func (m *mapper) ensureWorkers(n int) {
	for len(m.ws) < n {
		m.ws = append(m.ws, evalWorker{est: NewEstimator(m.cl)})
	}
	for i := 0; i < n; i++ {
		m.ws[i].est.Reset()
		m.ws[i].est.MemoEps = m.opts.MemoEps
		m.ws[i].nEval = 0
		m.ws[i].alignScratch.ResetCounters()
	}
	m.nDedup = 0
}

// evalSum returns total evalOn calls across the first n lanes this run.
func (m *mapper) evalSum(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += m.ws[i].nEval
	}
	return s
}

func (m *mapper) run() *Schedule {
	workers := m.opts.Workers
	if workers < 1 {
		workers = 1
	}
	m.ensureWorkers(workers)
	if workers > 1 {
		// The pool is per-run: a persistent pool on a pooled MapContext
		// would leak its goroutines (contexts have no Close). Spawning
		// workers−1 goroutines costs far less than one mapping run.
		m.pool = par.NewPool(workers)
		defer func() {
			m.pool.Close()
			m.pool = nil
		}()
		if m.parFn == nil {
			m.parFn = func(worker, i int) {
				m.evalCand(worker, m.parT, &m.parCands[i])
			}
		}
	}
	n := m.g.N()
	// Escaping arrays: owned by the returned Schedule, fresh every run.
	m.procs = make([][]int, n)
	m.start = make([]float64, n)
	m.finish = make([]float64, n)
	m.order = make([]int, 0, n)
	// Task-sized scratch, grown (never shrunk) and cleared per run.
	// sortKey needs no clearing: sortReady writes every ready task's key
	// before the secondary sort reads it.
	m.mapped = growCleared(m.mapped, n)
	m.claimed = growCleared(m.claimed, n)
	if cap(m.sortKey) < n {
		m.sortKey = make([]float64, n)
	}
	m.sortKey = m.sortKey[:n]
	// Cluster-sized scratch: restore the initial all-idle state.
	for i := range m.avail {
		m.avail[i] = 0
	}
	for i := range m.byAvail {
		m.byAvail[i] = i // all availabilities are 0: sorted by ID
	}

	// Static priorities: bottom levels over allocated execution times and
	// contention-free edge estimates (§II-C).
	m.bl = m.g.BottomLevelsInto(m.bl,
		func(t int) float64 {
			if m.g.Tasks[t].Virtual {
				return 0
			}
			return m.costs.Time(t, m.alloc[t])
		},
		func(e int) float64 { return m.ws[0].est.EdgeTimeSimple(m.g.Edges[e].Bytes) },
	)

	remaining := n
	if cap(m.predsLeft) < n {
		m.predsLeft = make([]int, n)
	}
	predsLeft := m.predsLeft[:n]
	for t := 0; t < n; t++ {
		predsLeft[t] = len(m.g.In(t))
	}
	ready := m.readyBuf[:0]
	for remaining > 0 {
		// Wave: every unmapped task whose predecessors are all mapped
		// (Algorithm 1, lines 3–6).
		ready = ready[:0]
		for t := 0; t < n; t++ {
			if !m.mapped[t] && predsLeft[t] == 0 {
				ready = append(ready, t)
			}
		}
		if len(ready) == 0 {
			panic("core: no ready task but tasks remain (cyclic graph?)")
		}
		m.sortReady(ready)
		for head := 0; head < len(ready); head++ {
			t := ready[head]
			var spanStart int64
			var evalsBefore int
			if tracer := m.opts.Tracer; tracer != nil {
				spanStart = tracer.Begin()
				evalsBefore = m.evalSum(workers)
			}
			claimedPred := m.place(t)
			if tracer := m.opts.Tracer; tracer != nil {
				tracer.End(spanStart, "map", "place", int64(t), int64(m.evalSum(workers)-evalsBefore))
			}
			m.mapped[t] = true
			m.order = append(m.order, t)
			remaining--
			for _, e := range m.g.Out(t) {
				predsLeft[m.g.Edges[e].To]--
			}
			// Algorithm 1, lines 11–12: a mapping that adopted a parent
			// allocation invalidates the δ/gain values of the ready tasks
			// that shared this parent; recompute by re-sorting the rest.
			if rest := ready[head+1:]; claimedPred >= 0 && len(rest) > 1 {
				m.sortReady(rest)
			}
		}
	}
	m.readyBuf = ready

	sched := &Schedule{
		Alloc:     m.alloc,
		Procs:     m.procs,
		Order:     m.order,
		EstStart:  m.start,
		EstFinish: m.finish,
		TotalWork: m.totalWork(),
	}
	m.snapshotCounters(&sched.Counters, workers)
	return sched
}

// snapshotCounters merges the run's lane-local counters — estimator memo,
// evaluation counts, alignment solves, pool lane claims — into c. It runs
// once per mapping run, after the last wave and before the pool closes,
// so every lane is quiescent and plain reads are safe.
func (m *mapper) snapshotCounters(c *obs.Counters, workers int) {
	for i := 0; i < workers; i++ {
		w := &m.ws[i]
		c.MemoProbes += w.est.memoProbes
		c.MemoHits += w.est.memoHits
		c.MemoStale += w.est.memoStale
		c.CandEvals += uint64(w.nEval)
		c.AlignExact += w.alignScratch.NExact
		c.AlignGreedy += w.alignScratch.NGreedy
		c.AlignCapped += w.alignScratch.NCapped
	}
	c.DedupSkips = uint64(m.nDedup)
	if m.pool != nil {
		for lane, claimed := range m.pool.LaneCounts() {
			c.ParTasks += uint64(claimed)
			if lane >= 1 {
				c.ParSteals += uint64(claimed)
			}
		}
	}
}

// growCleared returns a length-n all-false slice, reusing buf's storage
// when it is large enough.
func growCleared(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

func (m *mapper) totalWork() float64 {
	w := 0.0
	for t := range m.g.Tasks {
		if m.g.Tasks[t].Virtual {
			continue
		}
		if m.hetSpeeds {
			w += m.costs.WorkOn(t, m.alloc[t], m.cl.MinSpeedOf(m.procs[t]))
			continue
		}
		w += m.costs.Work(t, m.alloc[t])
	}
	return w
}

// taskTime returns the execution time of t on a concrete processor set:
// the count-only Amdahl model on uniform clusters, the same model paced
// by the set's slowest member on heterogeneous ones.
func (m *mapper) taskTime(t int, procs []int) float64 {
	if m.hetSpeeds {
		return m.costs.TimeOn(t, len(procs), m.cl.MinSpeedOf(procs))
	}
	return m.costs.Time(t, len(procs))
}

// readySorter adapts a wave's ready list to sort.Stable without per-call
// closures. The two phases of sortReady share it: the primary pass orders
// by (bottom level desc, task ID asc); the secondary pass re-orders groups
// of near-equal bottom level by the strategy key in m.sortKey. sort.Stable
// runs the same stable algorithm as sort.SliceStable, so the resulting
// permutations — and hence the schedules — are unchanged.
type readySorter struct {
	m         *mapper
	list      []int
	secondary bool
}

func (s *readySorter) Len() int      { return len(s.list) }
func (s *readySorter) Swap(i, j int) { s.list[i], s.list[j] = s.list[j], s.list[i] }

func (s *readySorter) Less(i, j int) bool {
	m := s.m
	a, b := s.list[i], s.list[j]
	if !s.secondary {
		if m.bl[a] != m.bl[b] {
			return m.bl[a] > m.bl[b]
		}
		return a < b
	}
	const rel = 1e-12
	ba, bb := m.bl[a], m.bl[b]
	tol := rel * math.Max(math.Abs(ba), math.Abs(bb))
	if math.Abs(ba-bb) > tol {
		return ba > bb
	}
	return m.sortKey[a] < m.sortKey[b]
}

// sortReady orders a wave: primary decreasing bottom level; secondary
// (stable, §III-C) increasing δ(t) for delta, decreasing gain(t) for
// time-cost. Task ID is the final deterministic tie-break.
func (m *mapper) sortReady(ready []int) {
	// Primary sort must itself be stable relative to task IDs.
	m.sorter.list = ready
	m.sorter.secondary = false
	sort.Stable(&m.sorter)
	if !m.opts.SortSecondary || m.opts.Strategy == StrategyNone {
		m.sorter.list = nil
		return
	}
	switch m.opts.Strategy {
	case StrategyDelta:
		// increasing δ(t) = min(δ+, −δ−): fewer modifications first.
		for _, t := range ready {
			dPlus, _, dMinus, _ := m.deltas(t)
			v := math.Inf(1)
			if dPlus >= 0 {
				v = float64(dPlus)
			}
			if dMinus <= 0 && -float64(dMinus) < v {
				v = -float64(dMinus)
			}
			m.sortKey[t] = v
		}
	case StrategyTimeCost:
		// decreasing gain(t): larger potential time reduction first.
		for _, t := range ready {
			m.sortKey[t] = -m.gain(t)
		}
	}
	// Stable secondary sort within groups of equal bottom level.
	m.sorter.secondary = true
	sort.Stable(&m.sorter)
	m.sorter.list = nil
}

// realPreds returns the non-virtual predecessors of t that own processors
// (one entry per in-edge, like the adjacency). The result lives in a
// mapper-owned scratch buffer, overwritten by the next realPreds call.
func (m *mapper) realPreds(t int) []int {
	ps := m.predsBuf[:0]
	for _, e := range m.g.In(t) {
		if p := m.g.Edges[e].From; !m.g.Tasks[p].Virtual && len(m.procs[p]) > 0 {
			ps = append(ps, p)
		}
	}
	m.predsBuf = ps
	return ps
}

// inheritablePreds returns the predecessors whose processor sets are still
// available for adoption (not yet claimed by another child). The result
// lives in its own scratch buffer — distinct from realPreds' — because the
// time-cost placement iterates it across nested baselinePlacement calls.
func (m *mapper) inheritablePreds(t int) []int {
	ps := m.inhBuf[:0]
	for _, p := range m.realPreds(t) {
		if m.opts.NoClaiming || !m.claimed[p] {
			ps = append(ps, p)
		}
	}
	m.inhBuf = ps
	return ps
}

// deltas returns δ+ (and the predecessor attaining it) over predecessors
// with Np(pred) ≥ Np(t), and δ− (and its predecessor) over predecessors
// with Np(pred) < Np(t). A missing side is signalled by δ+ = −1 /
// δ− = +1.
func (m *mapper) deltas(t int) (dPlus, predPlus, dMinus, predMinus int) {
	dPlus, predPlus = -1, -1
	dMinus, predMinus = +1, -1
	np := m.alloc[t]
	for _, p := range m.inheritablePreds(t) {
		d := len(m.procs[p]) - np
		if d >= 0 {
			if dPlus < 0 || d < dPlus {
				dPlus, predPlus = d, p
			}
		} else {
			if dMinus > 0 || d > dMinus {
				dMinus, predMinus = d, p
			}
		}
	}
	return
}

// gain returns gain(t) = max over predecessors of
// T(t, Np(t)) − T(t, Np(pred)) (Equation 2).
func (m *mapper) gain(t int) float64 {
	if m.g.Tasks[t].Virtual {
		return 0
	}
	base := m.costs.Time(t, m.alloc[t])
	g := math.Inf(-1)
	for _, p := range m.inheritablePreds(t) {
		if v := base - m.costs.Time(t, len(m.procs[p])); v > g {
			g = v
		}
	}
	if math.IsInf(g, -1) {
		return 0
	}
	return g
}

// placement is a candidate mapping of one task.
type placement struct {
	procs []int
	est   float64 // earliest start time
	eft   float64 // estimated finish time
}

// place decides the processor set of task t (Algorithm 1, lines 8–15) and
// returns the ID of the predecessor whose allocation was adopted, or −1
// when the task was mapped with the baseline procedure.
func (m *mapper) place(t int) int {
	if m.g.Tasks[t].Virtual {
		// Virtual tasks are instantaneous and hold no processors: they
		// start when their last predecessor finishes.
		est := 0.0
		for _, e := range m.g.In(t) {
			if f := m.finish[m.g.Edges[e].From]; f > est {
				est = f
			}
		}
		m.start[t], m.finish[t] = est, est
		return -1
	}
	if m.pool != nil {
		return m.placeParallel(t)
	}
	w := &m.ws[0]
	best, pred, ok := m.strategyPlacement(w, t)
	if !ok {
		best = m.baselinePlacement(w, t)
		pred = -1
	}
	if pred >= 0 {
		m.claimed[pred] = true
	}
	m.commit(t, best)
	return pred
}

func (m *mapper) commit(t int, pl placement) {
	m.alloc[t] = len(pl.procs)
	m.procs[t] = pl.procs
	m.start[t] = pl.est
	m.finish[t] = pl.eft
	for _, p := range pl.procs {
		m.avail[p] = pl.eft
	}
	m.reorderAvail(pl.procs, pl.eft)
}

// reorderAvail restores the (availability, ID) invariant of byAvail after
// the processors in procs had their availability set to eft. The untouched
// entries keep their relative order, so removing the touched ones and
// merging them back (as one equal-availability block sorted by ID) repairs
// the order in O(P + k log k) — the full re-sort this replaces cost
// O(P log P) on every candidate placement evaluation, not just per commit.
func (m *mapper) reorderAvail(procs []int, eft float64) {
	touched := append(m.availTouched[:0], procs...)
	sort.Ints(touched)
	m.availTouched = touched
	for _, p := range touched {
		m.touchedMark[p] = true
	}
	kept := m.availKept[:0]
	for _, p := range m.byAvail {
		if !m.touchedMark[p] {
			kept = append(kept, p)
		}
	}
	m.availKept = kept
	out := m.byAvail[:0]
	i, j := 0, 0
	for i < len(kept) && j < len(touched) {
		p, q := kept[i], touched[j]
		if m.avail[p] < eft || (m.avail[p] == eft && p < q) {
			out = append(out, p)
			i++
		} else {
			out = append(out, q)
			j++
		}
	}
	out = append(out, kept[i:]...)
	out = append(out, touched[j:]...)
	m.byAvail = out
	for _, p := range touched {
		m.touchedMark[p] = false
	}
}

// evalOn builds the placement of t on an explicit processor set, using
// lane w's estimator. During one task's evaluation the committed state it
// reads — avail, finish, procs — is immutable (commit happens after the
// winner is chosen), which is what makes concurrent evaluations on
// distinct lanes race-free and value-identical to serial ones.
func (m *mapper) evalOn(w *evalWorker, t int, procs []int) placement {
	w.nEval++
	est := 0.0
	for _, p := range procs {
		if m.avail[p] > est {
			est = m.avail[p]
		}
	}
	for _, e := range m.g.In(t) {
		pred := m.g.Edges[e].From
		rt := 0.0
		if !m.g.Tasks[pred].Virtual {
			// Memoized per lane: the sender set is fixed once pred is
			// mapped, and candidate evaluations revisit the same receiver
			// sets.
			rt = w.est.EdgeRedistTime(e, m.g.Edges[e].Bytes, m.procs[pred], procs)
		}
		if v := m.finish[pred] + rt; v > est {
			est = v
		}
	}
	return placement{procs: procs, est: est, eft: est + m.taskTime(t, procs)}
}

// baselinePlacement is the HCPA mapping: the Np(t) processors that become
// available earliest (ties by processor ID), with the rank order aligned
// to the heaviest predecessor to maximize self-communication. With
// Options.PredOverlap (ablation), predecessor-anchored candidate sets of
// the same size are also evaluated and the best estimated finish wins.
func (m *mapper) baselinePlacement(w *evalWorker, t int) placement {
	return m.baselinePlacementDedup(w, t, nil)
}

// baselinePlacementDedup is baselinePlacement with a candidate dedup
// against an already-evaluated reference placement: the delta EFT guard
// and the time-cost pack comparison both evaluate the baseline right after
// an adoption/stretch candidate, and on graphs where the predecessor's
// processors are exactly the earliest-available set the two candidates
// coincide — same ordered processor list, hence (evalOn being a pure
// function of the list and the committed state) the same est/eft. Skipping
// the duplicate walk halves the evaluation cost of those tasks.
//
// The availability order is read straight from m.byAvail, which commit
// keeps sorted; alignToHeaviestPred copies its input, so no candidate ever
// aliases the maintained ordering.
func (m *mapper) baselinePlacementDedup(w *evalWorker, t int, ref *placement) placement {
	k := m.alloc[t]
	if k > m.cl.P {
		k = m.cl.P
	}
	byAvail := m.byAvail
	cand := m.alignToHeaviestPred(w, t, byAvail[:k])
	var best placement
	if ref != nil && !m.opts.disableDedup && equalInts(cand, ref.procs) {
		m.nDedup++
		best = placement{procs: cand, est: ref.est, eft: ref.eft}
	} else {
		best = m.evalOn(w, t, cand)
	}
	if m.opts.PredOverlap {
		for _, pred := range m.realPreds(t) {
			set := truncateOrExtend(m.procs[pred], byAvail, k)
			pl := m.evalOn(w, t, m.alignToHeaviestPred(w, t, set))
			if pl.eft < best.eft {
				w.putBuf(best.procs)
				best = pl
			} else {
				w.putBuf(pl.procs)
			}
		}
	}
	return best
}

// equalInts reports whether a and b hold the same values in the same
// order. Rank order matters: two placements on the same set in different
// orders redistribute differently.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// truncateOrExtend returns a set of exactly k distinct processors based on
// base, truncated or extended with the earliest-available processors not
// already present. base entries are deduplicated too: a duplicated
// processor in a predecessor set must not double-book a slot, which would
// corrupt the availability bookkeeping on commit.
func truncateOrExtend(base, byAvail []int, k int) []int {
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for _, p := range base {
		if len(out) == k {
			break
		}
		if seen[p] {
			continue
		}
		out = append(out, p)
		seen[p] = true
	}
	for _, p := range byAvail {
		if len(out) == k {
			break
		}
		if !seen[p] {
			out = append(out, p)
			seen[p] = true
		}
	}
	return out
}

// alignToHeaviestPred permutes the rank order of a processor set to
// maximize self-communication with the predecessor contributing the most
// bytes (§II-A). The set itself is unchanged; the returned copy lives in
// a pooled candidate buffer of lane w (see evalWorker.bufPool).
func (m *mapper) alignToHeaviestPred(w *evalWorker, t int, procs []int) []int {
	var heavy int = -1
	var bytes float64
	for _, e := range m.g.In(t) {
		pred := m.g.Edges[e].From
		if m.g.Tasks[pred].Virtual || len(m.procs[pred]) == 0 {
			continue
		}
		if m.g.Edges[e].Bytes > bytes {
			bytes = m.g.Edges[e].Bytes
			heavy = pred
		}
	}
	if heavy < 0 || bytes == 0 {
		return append(w.getBuf(), procs...)
	}
	return redist.AlignReceiversCapped(w.getBuf(), bytes, m.procs[heavy], procs, m.opts.Align, m.opts.AlignCap, &w.alignScratch)
}
