package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/redist"
)

// oracleRedistTime is the pre-overhaul RedistTime implementation, kept
// verbatim as a test oracle: expand the block matrix to []Flow, accumulate
// per-node in/out volumes in maps, cap below by the slowest flow at its
// empirical bandwidth, add the longest route latency.
func oracleRedistTime(cl *platform.Cluster, bytes float64, senders, receivers []int) float64 {
	if bytes <= 0 || len(senders) == 0 || len(receivers) == 0 {
		return 0
	}
	if len(senders) == len(receivers) && redist.SameSet(senders, receivers) {
		return 0
	}
	flows := redist.Flows(bytes, senders, receivers)
	out := make(map[int]float64)
	in := make(map[int]float64)
	t := 0.0
	maxLat := 0.0
	for _, f := range flows {
		if f.SrcProc == f.DstProc {
			continue // local copies are free
		}
		out[f.SrcProc] += f.Bytes
		in[f.DstProc] += f.Bytes
		if bw := cl.EffectiveBandwidth(f.SrcProc, f.DstProc); bw > 0 {
			if ft := f.Bytes / bw; ft > t {
				t = ft
			}
		}
		if _, lat := cl.Route(f.SrcProc, f.DstProc); lat > maxLat {
			maxLat = lat
		}
	}
	beta := cl.LinkBandwidth
	for _, b := range out {
		if v := b / beta; v > t {
			t = v
		}
	}
	for _, b := range in {
		if v := b / beta; v > t {
			t = v
		}
	}
	if t == 0 {
		return 0
	}
	return t + maxLat
}

// randomProcSet draws n distinct processors of cl in random rank order.
func randomProcSet(rng *rand.Rand, cl *platform.Cluster, n int) []int {
	perm := rng.Perm(cl.P)
	return perm[:n]
}

// TestRedistTimeMatchesOracle is the equivalence property of the hot-path
// overhaul: the allocation-free slice/banded-matrix implementation must
// agree exactly with the historical map/flows implementation on random
// sender/receiver sets, on flat and hierarchical clusters alike.
func TestRedistTimeMatchesOracle(t *testing.T) {
	clusters := []*platform.Cluster{
		platform.Chti(),    // flat, small
		platform.Grillon(), // flat
		platform.Grelon(),  // hierarchical, 24-node cabinets
		platform.Big512(),  // hierarchical, 32-node cabinets
	}
	for _, cl := range clusters {
		cl := cl
		t.Run(cl.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(cl.P)))
			est := NewEstimator(cl)
			for iter := 0; iter < 400; iter++ {
				p := 1 + rng.Intn(cl.P)
				q := 1 + rng.Intn(cl.P)
				senders := randomProcSet(rng, cl, p)
				var receivers []int
				switch iter % 4 {
				case 0: // independent draw: overlap by chance
					receivers = randomProcSet(rng, cl, q)
				case 1: // same set, permuted rank order: must be free
					receivers = append([]int(nil), senders...)
					rng.Shuffle(len(receivers), func(i, j int) {
						receivers[i], receivers[j] = receivers[j], receivers[i]
					})
				case 2: // disjoint within the first min(P, p+q) processors
					all := rng.Perm(cl.P)
					senders = all[:p]
					if p+q > cl.P {
						q = cl.P - p
						if q == 0 {
							q = 1
							senders = all[:p-1]
						}
					}
					receivers = all[len(senders) : len(senders)+q]
				case 3: // heavy overlap: receivers are a prefix rotation
					receivers = append([]int(nil), senders...)
					if len(receivers) > 1 {
						r := receivers[0]
						copy(receivers, receivers[1:])
						receivers[len(receivers)-1] = r
					}
				}
				bytes := rng.Float64() * 2e9
				if iter%37 == 0 {
					bytes = 0 // zero-volume edges are free
				}
				want := oracleRedistTime(cl, bytes, senders, receivers)
				got := est.RedistTime(bytes, senders, receivers)
				if got != want && !(math.Abs(got-want) <= 1e-12*math.Max(got, want)) {
					t.Fatalf("iter %d: RedistTime(%g, %v, %v) = %g, oracle %g",
						iter, bytes, senders, receivers, got, want)
				}
			}
		})
	}
}

// TestEdgeRedistTimeMemo checks the per-edge memo: repeated evaluations of
// the same (edge, receiver order) return the identical estimate, and
// different edges or receiver orders do not collide.
func TestEdgeRedistTimeMemo(t *testing.T) {
	cl := platform.Grelon()
	est := NewEstimator(cl)
	senders := []int{0, 1, 2, 3}
	recvA := []int{2, 3, 4, 5}
	recvB := []int{5, 4, 3, 2} // same set, different rank order
	a1 := est.EdgeRedistTime(7, 1e9, senders, recvA)
	b1 := est.EdgeRedistTime(7, 1e9, senders, recvB)
	a2 := est.EdgeRedistTime(7, 1e9, senders, recvA)
	if a1 != a2 {
		t.Errorf("memoized estimate changed: %g vs %g", a1, a2)
	}
	if a1 != est.RedistTime(1e9, senders, recvA) {
		t.Errorf("memo diverges from direct estimate")
	}
	if b1 != est.RedistTime(1e9, senders, recvB) {
		t.Errorf("memo collided across receiver orders: %g", b1)
	}
	// Different edge, same receivers: distinct key, same value.
	if got := est.EdgeRedistTime(8, 1e9, senders, recvA); got != a1 {
		t.Errorf("edge 8 estimate %g, want %g", got, a1)
	}
}

// TestHetFiguresMatchPlatform pins the satellite fix for the hetero Map
// regression: the estimator's id-indexed link-figure caches must reproduce
// platform.EffectiveBandwidth/RouteLatency bit-exactly for every node pair
// — including clusters that override latencies, which the het presets do
// not.
func TestHetFiguresMatchPlatform(t *testing.T) {
	latHet := platform.GrelonHet()
	latHet.Name = "grelon-het-lat"
	latHet.LinkLatencies = map[platform.LinkID]float64{
		latHet.NodeUpLink(7):   250e-6,
		latHet.NodeDownLink(7): 250e-6,
		latHet.CabUpLink(2):    1e-3,
		latHet.CabDownLink(2):  1e-3,
	}
	for _, cl := range []*platform.Cluster{platform.GrelonHet(), platform.Big512Het(), latHet} {
		t.Run(cl.Name, func(t *testing.T) {
			est := NewEstimator(cl)
			if !est.hetLinks {
				t.Fatalf("cluster %s should take the het-links path", cl.Name)
			}
			rng := rand.New(rand.NewSource(7))
			for iter := 0; iter < 5000; iter++ {
				src, dst := rng.Intn(cl.P), rng.Intn(cl.P)
				if src == dst {
					continue
				}
				bw, lat := est.hetFigures(src, dst)
				if wantBW := cl.EffectiveBandwidth(src, dst); bw != wantBW {
					t.Fatalf("hetFigures(%d,%d) bw = %g, platform %g", src, dst, bw, wantBW)
				}
				if wantLat := cl.RouteLatency(src, dst); lat != wantLat {
					t.Fatalf("hetFigures(%d,%d) lat = %g, platform %g", src, dst, lat, wantLat)
				}
			}
		})
	}
}

// TestHetRedistTimeAllocFree asserts the het fast path stays allocation-
// free in steady state — the property that closed the pr7-hetero ~2× Map
// gap (per-block map lookups in EffectiveBandwidth/RouteLatency).
func TestHetRedistTimeAllocFree(t *testing.T) {
	for _, cl := range []*platform.Cluster{platform.GrelonHet(), platform.Big512Het()} {
		t.Run(cl.Name, func(t *testing.T) {
			est := NewEstimator(cl)
			rng := rand.New(rand.NewSource(11))
			senders := randomProcSet(rng, cl, 24)
			receivers := randomProcSet(rng, cl, 48)
			est.RedistTime(1e9, senders, receivers) // warm the scratch
			allocs := testing.AllocsPerRun(50, func() {
				est.RedistTime(1e9, senders, receivers)
			})
			if allocs != 0 {
				t.Errorf("RedistTime on %s allocates %.1f times per call, want 0", cl.Name, allocs)
			}
		})
	}
}

// TestEdgeRedistTimeStale exercises the MemoEps staleness bound: with a
// positive ε, a probe whose receiver order differs from the edge's last
// computed entry in at most ⌊ε·q⌋ positions reuses that entry's value; a
// zero ε (the reference behaviour) never does.
func TestEdgeRedistTimeStale(t *testing.T) {
	cl := platform.Grelon()
	senders := []int{0, 1, 2, 3}
	recvA := []int{10, 11, 12, 13, 14, 15, 16, 17} // q = 8
	recvB := append([]int(nil), recvA...)
	recvB[7] = 18 // one position differs: within ε = 0.2 (⌊0.2·8⌋ = 1)
	recvC := append([]int(nil), recvA...)
	recvC[6], recvC[7] = 19, 20 // two positions differ: beyond the bound

	exact := NewEstimator(cl)
	wantB := exact.RedistTime(1e9, senders, recvB)
	wantC := exact.RedistTime(1e9, senders, recvC)

	est := NewEstimator(cl)
	est.MemoEps = 0.2
	a := est.EdgeRedistTime(3, 1e9, senders, recvA)
	if est.memoStale != 0 {
		t.Fatalf("first probe counted as stale hit")
	}
	if got := est.EdgeRedistTime(3, 1e9, senders, recvB); got != a {
		t.Errorf("stale-eligible probe = %g, want reused %g", got, a)
	}
	if est.memoStale != 1 {
		t.Errorf("memoStale = %d, want 1", est.memoStale)
	}
	// The stale value was re-inserted under recvB's exact key: an identical
	// probe is an exact hit now, not a second stale reuse.
	if got := est.EdgeRedistTime(3, 1e9, senders, recvB); got != a {
		t.Errorf("repeat probe = %g, want %g", got, a)
	}
	if est.memoStale != 1 {
		t.Errorf("memoStale after repeat = %d, want 1", est.memoStale)
	}
	// Two differing positions exceed ⌊0.2·8⌋: computed fresh.
	if got := est.EdgeRedistTime(3, 1e9, senders, recvC); got != wantC {
		t.Errorf("out-of-bound probe = %g, want fresh %g", got, wantC)
	}
	// A different edge has no anchor entry yet: computed fresh.
	if got := est.EdgeRedistTime(4, 1e9, senders, recvB); got != wantB {
		t.Errorf("new-edge probe = %g, want fresh %g", got, wantB)
	}
	// ε = 0 keeps exact keying: recvB is computed, never reused.
	ref := NewEstimator(cl)
	ref.EdgeRedistTime(3, 1e9, senders, recvA)
	if got := ref.EdgeRedistTime(3, 1e9, senders, recvB); got != wantB {
		t.Errorf("ε=0 probe = %g, want exact %g", got, wantB)
	}
	if ref.memoStale != 0 {
		t.Errorf("ε=0 memoStale = %d, want 0", ref.memoStale)
	}
}
