package core

import (
	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// MapContext owns the reusable state of the mapping engine for one
// cluster: the cluster-sized availability bookkeeping, the estimator with
// its redistribution memo, the alignment engine's scratch and the
// candidate-buffer pool. One-shot callers use Map, which builds a context
// and discards it; a service scheduling a stream of DAGs holds a context
// per cluster and calls its Map method, amortizing the ≈200–300
// per-run setup allocations a fresh mapper pays.
//
// The schedule-ownership handoff is what makes reuse safe: everything the
// returned Schedule references — Alloc, Procs (and each per-task processor
// set), Order, EstStart, EstFinish — is allocated fresh inside the run and
// owned by the schedule, while everything the context retains is scratch
// that no schedule can observe. Consequently a reused context produces
// schedules byte-identical to fresh construction (pinned by
// TestMapContextReuseDigestIdentical).
//
// A MapContext is NOT safe for concurrent use: callers serialize runs (a
// pool of contexts is the intended concurrency model).
type MapContext struct {
	m mapper
}

// NewMapContext returns a mapping context bound to cl.
func NewMapContext(cl *platform.Cluster) *MapContext {
	c := &MapContext{}
	m := &c.m
	m.cl = cl
	m.hetSpeeds = cl.HeteroSpeeds()
	// Lane 0 serves the serial engine; Options.Workers > 1 grows the
	// slice on demand (ensureWorkers), so a context pooled for serial
	// traffic pays for exactly one estimator.
	m.ws = []evalWorker{{est: NewEstimator(cl)}}
	m.avail = make([]float64, cl.P)
	m.byAvail = make([]int, cl.P)
	m.availKept = make([]int, 0, cl.P)
	m.availTouched = make([]int, 0, cl.P)
	m.touchedMark = make([]bool, cl.P)
	m.sorter.m = m
	return c
}

// Cluster returns the cluster the context is bound to.
func (c *MapContext) Cluster() *platform.Cluster { return c.m.cl }

// Map runs the mapping phase on graph g with the given first-step
// allocation, exactly like the package-level Map on the context's cluster,
// and returns a schedule that owns all of its arrays. The allocation slice
// is not modified. Runs on one context must be serialized.
func (c *MapContext) Map(g *dag.Graph, costs *moldable.Costs, alloc []int, opts Options) *Schedule {
	m := &c.m
	m.g, m.costs, m.opts = g, costs, opts
	// Estimator memos are reset inside run (ensureWorkers), covering
	// every lane the run provisions.
	m.alloc = append([]int(nil), alloc...)
	sched := m.run()
	// Drop every reference that escaped into the schedule (plus the
	// request's graph and costs), so an idle pooled context pins nothing
	// but its own scratch.
	m.g, m.costs = nil, nil
	m.alloc, m.procs, m.start, m.finish, m.order = nil, nil, nil, nil, nil
	return sched
}
