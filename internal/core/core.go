package core

import "repro/internal/sim"

// FlowSolver selects the fluid-network rate solver used when a schedule is
// replayed under contention (internal/simdag). It is re-exported here —
// the package every layer of the pipeline already imports — so the options
// plumbing (exp.Runner, the rats facade, the CLIs) can pick an engine
// without depending on internal/sim directly.
type FlowSolver = sim.Solver

const (
	// FlowSolverNet replays on the incremental internal/flownet engine:
	// super-flow aggregation per route, bottleneck-level repair across
	// population changes, lazy draining. The default.
	FlowSolverNet = sim.SolverFlowNet
	// FlowSolverMaxMin replays on the reference engine, re-solving
	// max-min rates from scratch on every population change. Kept
	// runnable end to end as the oracle the flownet engine is verified
	// against.
	FlowSolverMaxMin = sim.SolverMaxMin
)
