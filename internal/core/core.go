package core
