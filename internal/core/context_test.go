package core

import (
	"math/rand"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/platform"
)

// randomGraph draws one of the workload classes the service will see:
// layered and irregular random DAGs of varying size plus the two HPC
// kernels.
func randomGraph(rng *rand.Rand) *dag.Graph {
	switch rng.Intn(4) {
	case 0:
		return gen.Random(gen.RandomParams{
			N: 20 + rng.Intn(60), Width: 0.3 + 0.6*rng.Float64(),
			Regularity: rng.Float64(), Density: 0.2 + 0.6*rng.Float64(),
			Layered: true, Seed: rng.Int63()})
	case 1:
		return gen.Random(gen.RandomParams{
			N: 20 + rng.Intn(60), Width: 0.3 + 0.6*rng.Float64(),
			Regularity: rng.Float64(), Density: 0.2 + 0.6*rng.Float64(),
			Jump: 1 + rng.Intn(3), Seed: rng.Int63()})
	case 2:
		return gen.FFT(4<<rng.Intn(3), rng.Int63())
	default:
		return gen.Strassen(rng.Int63())
	}
}

// TestMapContextReuseDigestIdentical is the pooled-context equivalence
// test: a randomized sequence of mixed (cluster, options, DAG) requests
// scheduled through one reused MapContext per cluster must produce
// byte-identical schedules to fresh per-request construction — the digest
// covers every observable field of the schedule, floats rendered exactly.
func TestMapContextReuseDigestIdentical(t *testing.T) {
	clusters := []*platform.Cluster{platform.Chti(), platform.Grelon(), platform.Big512()}
	pooled := make([]*MapContext, len(clusters))
	for i, cl := range clusters {
		pooled[i] = NewMapContext(cl)
	}
	rng := rand.New(rand.NewSource(20260807))
	strategies := []Strategy{StrategyNone, StrategyDelta, StrategyTimeCost}

	const requests = 60
	for i := 0; i < requests; i++ {
		ci := rng.Intn(len(clusters))
		cl := clusters[ci]
		g := randomGraph(rng)
		opts := DefaultNaive(strategies[rng.Intn(len(strategies))])
		if rng.Intn(4) == 0 {
			opts.PredOverlap = true
		}
		if rng.Intn(4) == 0 {
			opts.DeltaEFTGuard = false
		}
		costs, alloc := setup(g, cl)

		fresh := Map(g, costs, cl, alloc, opts)
		reused := pooled[ci].Map(g, costs, alloc, opts)
		want, got := scheduleDigest(fresh), scheduleDigest(reused)
		if got != want {
			t.Fatalf("request %d (%s, %v): reused-context digest %s != fresh digest %s",
				i, cl.Name, opts.Strategy, got, want)
		}
		if err := reused.Validate(g, cl); err != nil {
			t.Fatalf("request %d: reused-context schedule invalid: %v", i, err)
		}
	}
}

// TestMapContextOwnershipHandoff pins the schedule-ownership handoff: a
// schedule produced by a pooled context must stay intact when the context
// is reused for a different DAG — nothing the context retains may alias
// the schedule's arrays.
func TestMapContextOwnershipHandoff(t *testing.T) {
	cl := platform.Grelon()
	c := NewMapContext(cl)
	g1 := gen.FFT(8, 5)
	costs1, a1 := setup(g1, cl)
	opts := DefaultNaive(StrategyTimeCost)
	s1 := c.Map(g1, costs1, a1, opts)
	d1 := scheduleDigest(s1)

	// Hammer the context with different workloads, then re-digest s1.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		g := randomGraph(rng)
		costs, a := setup(g, cl)
		c.Map(g, costs, a, DefaultNaive(StrategyDelta))
	}
	if d := scheduleDigest(s1); d != d1 {
		t.Fatalf("schedule mutated by later context runs: digest %s -> %s", d1, d)
	}
}

// TestMapContextReuseAllocs verifies the point of pooling: steady-state
// runs on a reused context allocate well below a fresh mapper's setup
// cost. The bound is deliberately loose (escaping schedule arrays remain),
// it guards the amortization from silently regressing.
func TestMapContextReuseAllocs(t *testing.T) {
	cl := platform.Big512()
	g := gen.Random(gen.RandomParams{
		N: 60, Width: 0.5, Regularity: 0.8, Density: 0.5, Layered: true, Seed: 11})
	costs, alloc := setup(g, cl)
	opts := DefaultNaive(StrategyTimeCost)

	c := NewMapContext(cl)
	c.Map(g, costs, alloc, opts) // warm the scratch
	reused := testing.AllocsPerRun(10, func() {
		c.Map(g, costs, alloc, opts)
	})
	fresh := testing.AllocsPerRun(10, func() {
		Map(g, costs, cl, alloc, opts)
	})
	if reused >= fresh {
		t.Fatalf("reused context allocates %.0f/run, fresh %.0f/run — pooling buys nothing", reused, fresh)
	}
	t.Logf("allocs/run: fresh %.0f, reused %.0f (%.1fx fewer)", fresh, reused, fresh/reused)
}
