package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/alloc"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// TestParallelMapMatchesSerialOracle is the randomized worker-sweep
// equivalence suite: every (cluster, allocator, strategy) combination maps
// a random graph serially (the oracle) and at a sweep of worker counts;
// each parallel schedule must be byte-identical (scheduleDigest covers
// every observable field, floats rendered exactly). Option variations fold
// the PredOverlap and guard-disabled code paths into the sweep. The full
// {1, 2, 3, 4, 8, GOMAXPROCS} sweep runs on the paper-scale cluster; the
// 512-processor clusters (whose per-run cost dominates) get smaller graphs
// and a thinned sweep so the suite stays race-detector friendly.
func TestParallelMapMatchesSerialOracle(t *testing.T) {
	fullSweep := []int{1, 2, 3, 4, 8, runtime.GOMAXPROCS(0)}
	clusters := []struct {
		cl     *platform.Cluster
		sweep  []int
		bigCap bool
	}{
		{platform.Grelon(), fullSweep, false},
		{platform.Big512(), []int{1, 2, 4, 8}, true},
		{platform.Big512Het(), []int{2, 8}, true},
	}
	allocators := []struct {
		name string
		opts alloc.Options
	}{
		{"cpa", alloc.Options{Method: alloc.CPA}},
		{"hcpa", alloc.DefaultOptions()},
		{"mcpa", alloc.Options{Method: alloc.MCPA}},
	}
	strategies := []Strategy{StrategyNone, StrategyDelta, StrategyTimeCost}

	rng := rand.New(rand.NewSource(8))
	combo := 0
	for _, cc := range clusters {
		cl, workerCounts := cc.cl, cc.sweep
		for _, al := range allocators {
			for _, st := range strategies {
				combo++
				var g *dag.Graph
				if cc.bigCap {
					g = gen.Random(gen.RandomParams{
						N: 18 + rng.Intn(10), Width: 0.3 + 0.6*rng.Float64(),
						Regularity: rng.Float64(), Density: 0.2 + 0.6*rng.Float64(),
						Layered: true, Seed: rng.Int63()})
				} else {
					g = randomGraph(rng)
				}
				costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
				a := alloc.Compute(g, costs, cl, al.opts)
				opts := DefaultNaive(st)
				if combo%3 == 0 {
					opts.PredOverlap = true
				}
				if combo%4 == 1 {
					opts.DeltaEFTGuard = false
				}
				want := scheduleDigest(Map(g, costs, cl, a, opts))
				for _, w := range workerCounts {
					opts.Workers = w
					s := Map(g, costs, cl, a, opts)
					if err := s.Validate(g, cl); err != nil {
						t.Fatalf("%s/%s/%v workers=%d: invalid schedule: %v", cl.Name, al.name, st, w, err)
					}
					if got := scheduleDigest(s); got != want {
						t.Errorf("%s/%s/%v workers=%d: digest %s != serial oracle %s",
							cl.Name, al.name, st, w, got, want)
					}
				}
			}
		}
	}
}

// FuzzMapParallel fuzzes the parallel engine against the serial oracle
// over random workloads, worker counts and option combinations. The seed
// corpus runs as a regular test; `go test -fuzz=FuzzMapParallel
// ./internal/core/` explores further.
func FuzzMapParallel(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0), uint8(0))
	f.Add(int64(42), uint8(7), uint8(1), uint8(1))
	f.Add(int64(99), uint8(14), uint8(2), uint8(2))
	f.Add(int64(-7), uint8(3), uint8(2), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, workersRaw, stRaw, kindRaw uint8) {
		workers := 2 + int(workersRaw)%15
		st := []Strategy{StrategyNone, StrategyDelta, StrategyTimeCost}[int(stRaw)%3]
		var g *dag.Graph
		switch int(kindRaw) % 3 {
		case 0:
			g = gen.Random(gen.RandomParams{
				N: 25, Width: 0.8, Regularity: 0.2, Density: 0.4, Layered: true, Seed: seed})
		case 1:
			g = gen.FFT(4, seed)
		default:
			g = gen.Strassen(seed)
		}
		cl := platform.Grelon()
		costs, a := setup(g, cl)
		opts := DefaultNaive(st)
		if int(kindRaw)%5 == 3 {
			opts.PredOverlap = true
		}
		if int(kindRaw)%7 == 4 {
			opts.DeltaEFTGuard = false
		}
		want := scheduleDigest(Map(g, costs, cl, a, opts))
		opts.Workers = workers
		if got := scheduleDigest(Map(g, costs, cl, a, opts)); got != want {
			t.Fatalf("workers=%d strategy=%v: digest %s != serial %s", workers, st, got, want)
		}
	})
}

// TestMapContextReuseParallelDigestIdentical extends the pooled-context
// equivalence test to the parallel engine: one reused context per cluster
// serves a mixed request stream whose worker counts vary per request
// (including dropping back to serial), and every schedule must match fresh
// serial construction. This exercises lane growth and reuse — a request
// with 8 workers leaves behind 8 lanes the next serial request must not
// trip over.
func TestMapContextReuseParallelDigestIdentical(t *testing.T) {
	clusters := []*platform.Cluster{platform.Grelon(), platform.Big512()}
	pooled := make([]*MapContext, len(clusters))
	for i, cl := range clusters {
		pooled[i] = NewMapContext(cl)
	}
	rng := rand.New(rand.NewSource(20260808))
	strategies := []Strategy{StrategyNone, StrategyDelta, StrategyTimeCost}
	workerChoices := []int{1, 2, 4, 8}

	const requests = 40
	for i := 0; i < requests; i++ {
		ci := rng.Intn(len(clusters))
		cl := clusters[ci]
		g := randomGraph(rng)
		opts := DefaultNaive(strategies[rng.Intn(len(strategies))])
		costs, a := setup(g, cl)

		serial := opts
		serial.Workers = 1
		want := scheduleDigest(Map(g, costs, cl, a, serial))

		opts.Workers = workerChoices[rng.Intn(len(workerChoices))]
		reused := pooled[ci].Map(g, costs, a, opts)
		if got := scheduleDigest(reused); got != want {
			t.Fatalf("request %d (%s, %v, workers=%d): reused-context digest %s != serial %s",
				i, cl.Name, opts.Strategy, opts.Workers, got, want)
		}
		if err := reused.Validate(g, cl); err != nil {
			t.Fatalf("request %d: invalid schedule: %v", i, err)
		}
	}
}

// TestParallelWorkerStarvation is the adversarial sweep: far more workers
// than candidates (a task rarely has more than a handful) and than tasks.
// Starved workers must neither deadlock, nor race, nor perturb the
// schedule.
func TestParallelWorkerStarvation(t *testing.T) {
	solo := dag.NewGraph(1, 0)
	solo.AddTask(dag.Task{Name: "solo", M: 20e6, A: 100, Alpha: 0.2})
	fork := dag.NewGraph(4, 3)
	fork.AddTask(dag.Task{Name: "src", M: 20e6, A: 100, Alpha: 0.1})
	for i := 0; i < 3; i++ {
		fork.AddTask(dag.Task{Name: fmt.Sprintf("c%d", i), M: 10e6, A: 100, Alpha: 0.1})
		fork.AddEdge(0, i+1, fork.Tasks[0].Bytes())
	}
	fork.Normalize()
	graphs := []*dag.Graph{solo, chain(2, 15e6), fork}

	for _, cl := range []*platform.Cluster{platform.Chti(), platform.Grillon()} {
		for gi, g := range graphs {
			costs, a := setup(g, cl)
			for _, st := range []Strategy{StrategyNone, StrategyDelta, StrategyTimeCost} {
				opts := DefaultNaive(st)
				want := scheduleDigest(Map(g, costs, cl, a, opts))
				for _, w := range []int{32, 64} {
					opts.Workers = w
					s := Map(g, costs, cl, a, opts)
					if err := s.Validate(g, cl); err != nil {
						t.Fatalf("%s graph %d %v workers=%d: %v", cl.Name, gi, st, w, err)
					}
					if got := scheduleDigest(s); got != want {
						t.Errorf("%s graph %d %v workers=%d: digest %s != serial %s",
							cl.Name, gi, st, w, got, want)
					}
				}
			}
		}
	}
}
