package core

import "math"

// Parallel candidate evaluation (Options.Workers > 1). place dispatches
// here instead of the serial strategy code; the schedule that comes out is
// byte-identical to the serial engine's at any worker count, which is
// pinned by the worker-sweeping oracle suite and FuzzMapParallel.
//
// Per task the scheme has three phases:
//
//  1. Enumerate. The coordinator lists the candidate placements the
//     serial engine would evaluate, using only the cost model and the
//     committed state (no estimator calls): the strategy's adoption
//     candidate — delta's selected predecessor or time-cost's accepted
//     stretch — plus, exactly when the serial engine would need it, the
//     baseline family (the earliest-available set and, under the
//     PredOverlap ablation, one predecessor-anchored set per in-edge)
//     and the time-cost pack candidates.
//  2. Evaluate. The worker pool scores all candidates concurrently. Each
//     lane materializes the candidate's processor list in its own pooled
//     buffer, aligns with its own scratch and estimates with its own
//     memo. The index→lane assignment is dynamic (work stealing), which
//     cannot perturb the result: during one task's evaluation the
//     committed state is immutable, so a candidate's placement value is
//     a pure function of its spec — identical on every lane.
//  3. Reduce. The coordinator replays the serial comparison order over
//     the indexed results: strict-< first-wins across the baseline
//     family, the delta EFT guard against the reduced baseline, the
//     time-cost pack rule in inheritablePreds order. First-wins ties
//     therefore resolve by candidate index, never by completion order.

// Candidate kinds: how a lane materializes the processor list.
const (
	candAvail   = iota // earliest-available set, rank-aligned
	candOverlap        // truncateOrExtend over a predecessor's set, aligned (PredOverlap)
	candAdopt          // verbatim copy of a predecessor's set (adopt/stretch/pack)
)

// parCand is one candidate of the current task: its spec (written by the
// coordinator), and the evaluated placement plus the lane that owns its
// buffer (written by exactly one worker).
type parCand struct {
	kind int
	pred int // source predecessor for overlap/adopt kinds; −1 for avail
	wkr  int // lane that evaluated: loser buffers return to its pool
	pl   placement
}

// evalCand scores one candidate on lane worker. Called concurrently on
// distinct candidates; reads only committed state.
func (m *mapper) evalCand(worker, t int, c *parCand) {
	w := &m.ws[worker]
	c.wkr = worker
	var procs []int
	switch c.kind {
	case candAvail, candOverlap:
		k := m.alloc[t]
		if k > m.cl.P {
			k = m.cl.P
		}
		set := m.byAvail[:k]
		if c.kind == candOverlap {
			set = truncateOrExtend(m.procs[c.pred], m.byAvail, k)
		}
		procs = m.alignToHeaviestPred(w, t, set)
	default: // candAdopt
		procs = append(w.getBuf(), m.procs[c.pred]...)
	}
	c.pl = m.evalOn(w, t, procs)
}

// placeParallel is place's strategy dispatch for the parallel engine:
// enumerate → evaluate on the pool → reduce in serial order → commit.
// It returns the adopted predecessor or −1, like the serial path.
func (m *mapper) placeParallel(t int) int {
	cands := m.parCands[:0]

	// Phase 1: enumerate. adoptIdx is the strategy's adoption candidate
	// (delta adopt or time-cost stretch); needBase mirrors exactly the
	// serial control flow's baselinePlacement calls, fallback included.
	adoptPred, adoptIdx := -1, -1
	needBase := false
	switch m.opts.Strategy {
	case StrategyDelta:
		if pred := m.deltaAdoptPred(t); pred >= 0 {
			adoptPred, adoptIdx = pred, len(cands)
			cands = append(cands, parCand{kind: candAdopt, pred: pred})
		}
		// The baseline is evaluated for the EFT guard, or as the
		// fallback when no predecessor fits the δ bounds.
		needBase = adoptIdx < 0 || m.opts.DeltaEFTGuard
	case StrategyTimeCost:
		if pred := m.timeCostStretchPred(t); pred >= 0 {
			adoptPred, adoptIdx = pred, len(cands)
			cands = append(cands, parCand{kind: candAdopt, pred: pred})
		}
		// Packing compares against the baseline; without packing the
		// baseline is only the no-stretch fallback.
		needBase = m.opts.Packing || adoptIdx < 0
	default:
		needBase = true
	}
	baseStart, baseEnd := len(cands), len(cands)
	if needBase {
		cands = append(cands, parCand{kind: candAvail, pred: -1})
		if m.opts.PredOverlap {
			for _, pred := range m.realPreds(t) {
				cands = append(cands, parCand{kind: candOverlap, pred: pred})
			}
		}
		baseEnd = len(cands)
	}
	packStart, packEnd := len(cands), len(cands)
	if m.opts.Strategy == StrategyTimeCost && m.opts.Packing {
		for _, p := range m.inheritablePreds(t) {
			if len(m.procs[p]) < m.alloc[t] {
				cands = append(cands, parCand{kind: candAdopt, pred: p})
			}
		}
		packEnd = len(cands)
	}

	// Phase 2: evaluate. The slice header must be published before Run —
	// workers index m.parCands directly (parFn allocates no per-task
	// closure).
	m.parCands = cands
	m.parT = t
	m.pool.Run(len(cands), m.parFn)

	// Phase 3: reduce. reduceBase replays the baseline family's serial
	// loop: candidates in enumeration order, strict < to replace.
	reduceBase := func() int {
		bi := baseStart
		for i := baseStart + 1; i < baseEnd; i++ {
			if cands[i].pl.eft < cands[bi].pl.eft {
				bi = i
			}
		}
		return bi
	}
	winner, pred := -1, -1
	switch {
	case m.opts.Strategy == StrategyDelta && adoptIdx >= 0:
		winner, pred = adoptIdx, adoptPred
		if m.opts.DeltaEFTGuard {
			if bi := reduceBase(); cands[bi].pl.eft < cands[adoptIdx].pl.eft {
				// Guard rejects the adoption. The serial engine falls back
				// to a fresh baselinePlacement; its value equals the
				// reduced baseline here (evalOn is pure), so reuse it.
				winner, pred = bi, -1
			}
		}
	case m.opts.Strategy == StrategyTimeCost:
		best, bestPred := adoptIdx, adoptPred
		bestEFT := math.Inf(1)
		if best >= 0 {
			bestEFT = cands[best].pl.eft
		}
		if m.opts.Packing {
			baseEFT := cands[reduceBase()].pl.eft
			for i := packStart; i < packEnd; i++ {
				if eft := cands[i].pl.eft; eft <= baseEFT && eft < bestEFT {
					best, bestPred, bestEFT = i, cands[i].pred, eft
				}
			}
		}
		if best >= 0 {
			winner, pred = best, bestPred
		} else {
			winner, pred = reduceBase(), -1
		}
	default:
		winner, pred = reduceBase(), -1
	}

	// Losers' buffers return to the lanes that built them; the winner's
	// transfers to the schedule via commit.
	for i := range cands {
		if i != winner {
			m.ws[cands[i].wkr].putBuf(cands[i].pl.procs)
		}
	}
	if pred >= 0 {
		m.claimed[pred] = true
	}
	m.commit(t, cands[winner].pl)
	return pred
}
