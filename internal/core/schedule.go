// Package core implements the paper's contribution: two-step scheduling of
// mixed-parallel applications with a redistribution-aware mapping phase
// (RATS — Redistribution Aware Two-Step scheduling, §III).
//
// The first step (processor allocation) lives in internal/alloc (CPA, HCPA,
// MCPA). This package implements the second step: a list-scheduling mapping
// engine that processes waves of ready tasks in decreasing bottom-level
// order (Algorithm 1 of the paper) and, in the RATS variants, *adapts* the
// allocation of a task while mapping it — packing or stretching it onto the
// exact processor set of one of its predecessors so that the corresponding
// data redistribution disappears.
//
// Three mapping procedures are provided:
//
//   - StrategyNone — the baseline HCPA mapping: allocations fixed, each
//     task placed on the earliest-available processors.
//   - StrategyDelta — §III-A/B "delta": snap to a predecessor's processor
//     set when the allocation difference is within ⌊maxdelta·Np(t)⌋ (stretch)
//     or ⌈mindelta·Np(t)⌉ (pack); ready ties broken by increasing δ(t).
//   - StrategyTimeCost — §III-A/B "time-cost": stretch only when the
//     work ratio ρ ≥ minrho, pack only when the estimated finish time does
//     not degrade; ready ties broken by decreasing gain(t).
package core

import (
	"fmt"
	"sort"

	"repro/internal/dag"
	"repro/internal/obs"
	"repro/internal/platform"
)

// Schedule is the output of the mapping phase: for every task, a processor
// set (in data rank order) plus the scheduler's own contention-free time
// estimates. The authoritative makespan is produced by replaying the
// schedule in internal/simdag, which models network contention.
type Schedule struct {
	// Alloc is the final processor count per task, after any RATS packing
	// or stretching. Virtual tasks have 0.
	Alloc []int
	// Procs is the processor set of each task in rank order (rank r holds
	// block r of the task's 1-D block-distributed dataset).
	Procs [][]int
	// Order lists task IDs in mapping order; the simulator enforces this
	// order on each processor's queue.
	Order []int
	// EstStart and EstFinish are the mapping engine's contention-free
	// estimates, kept for inspection and for ablation studies.
	EstStart, EstFinish []float64
	// TotalWork is Σ alloc(t)·T(t, alloc(t)) over real tasks — the resource
	// consumption metric of Figures 3 and 7.
	TotalWork float64
	// Counters is the mapping run's observability snapshot (estimator
	// memo effectiveness, candidate evaluations, alignment solves, pool
	// lane activity). Pure diagnostics: two schedules are equal when the
	// fields above are equal, whatever the counters say.
	Counters obs.Counters
}

// EstMakespan returns the scheduler's own (contention-free) makespan
// estimate: the maximum estimated finish time.
func (s *Schedule) EstMakespan() float64 {
	m := 0.0
	for _, f := range s.EstFinish {
		if f > m {
			m = f
		}
	}
	return m
}

// Validate checks structural soundness of a schedule against its graph and
// cluster: every real task mapped onto alloc distinct in-range processors,
// virtual tasks unmapped, and the mapping order a permutation consistent
// with precedence (every predecessor ordered before its successors).
func (s *Schedule) Validate(g *dag.Graph, cl *platform.Cluster) error {
	n := g.N()
	if len(s.Alloc) != n || len(s.Procs) != n || len(s.Order) != n {
		return fmt.Errorf("core: schedule arrays sized %d/%d/%d, want %d",
			len(s.Alloc), len(s.Procs), len(s.Order), n)
	}
	for t := 0; t < n; t++ {
		if g.Tasks[t].Virtual {
			if s.Alloc[t] != 0 || len(s.Procs[t]) != 0 {
				return fmt.Errorf("core: virtual task %d has an allocation", t)
			}
			continue
		}
		if s.Alloc[t] < 1 || s.Alloc[t] > cl.P {
			return fmt.Errorf("core: task %d allocation %d outside [1,%d]", t, s.Alloc[t], cl.P)
		}
		if len(s.Procs[t]) != s.Alloc[t] {
			return fmt.Errorf("core: task %d has %d procs, alloc %d", t, len(s.Procs[t]), s.Alloc[t])
		}
		seen := make(map[int]bool, len(s.Procs[t]))
		for _, p := range s.Procs[t] {
			if p < 0 || p >= cl.P {
				return fmt.Errorf("core: task %d mapped on invalid processor %d", t, p)
			}
			if seen[p] {
				return fmt.Errorf("core: task %d mapped twice on processor %d", t, p)
			}
			seen[p] = true
		}
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, t := range s.Order {
		if t < 0 || t >= n || pos[t] >= 0 {
			return fmt.Errorf("core: mapping order is not a permutation")
		}
		pos[t] = i
	}
	for _, e := range g.Edges {
		if pos[e.From] > pos[e.To] {
			return fmt.Errorf("core: task %d mapped before its predecessor %d", e.To, e.From)
		}
	}
	return nil
}

// SortProcs returns a copy of procs sorted ascending (helper for tests and
// set comparisons; schedules keep rank order, which is meaningful).
func SortProcs(procs []int) []int {
	c := append([]int(nil), procs...)
	sort.Ints(c)
	return c
}
