package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus validates Prometheus text exposition format the way
// `promtool check metrics` does, minus the parts that need the upstream
// data model: metric and label name syntax, HELP/TYPE placement, counter
// naming, histogram bucket structure (cumulative counts, a +Inf bucket,
// agreement with _count). It returns every problem found, or nil when the
// exposition is clean. It is vendored here so CI can lint ratsd's
// /metrics output without adding a dependency.
func LintPrometheus(r io.Reader) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type metricInfo struct {
		typ     string
		seen    bool // samples observed
		buckets []bucketSample
		count   uint64
		hasCnt  bool
	}
	metrics := map[string]*metricInfo{}
	get := func(name string) *metricInfo {
		m, ok := metrics[name]
		if !ok {
			m = &metricInfo{}
			metrics[name] = m
		}
		return m
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment: allowed
			}
			if !metricNameRe.MatchString(name) {
				fail(n, "invalid metric name %q in %s", name, kind)
				continue
			}
			m := get(name)
			if kind == "TYPE" {
				if m.seen {
					fail(n, "TYPE for %s after its samples", name)
				}
				if m.typ != "" {
					fail(n, "duplicate TYPE for %s", name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
					m.typ = rest
				default:
					fail(n, "unknown TYPE %q for %s", rest, name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(n, "%v", err)
			continue
		}
		// Counters declare TYPE under their full name (foo_total); histogram
		// samples hang off the family name (foo_bucket under foo). Try the
		// exact name first, then the peeled base.
		base, suffix := name, ""
		if _, ok := metrics[name]; !ok {
			base, suffix = splitSuffix(name)
		}
		m := get(base)
		m.seen = true
		switch m.typ {
		case "":
			fail(n, "sample %s without a preceding TYPE", name)
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				fail(n, "counter sample %s should end in _total", name)
			}
		case "histogram":
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					fail(n, "histogram bucket %s missing le label", name)
					continue
				}
				bound, perr := parseLe(le)
				if perr != nil {
					fail(n, "histogram %s: %v", base, perr)
					continue
				}
				cum, perr := strconv.ParseUint(strings.TrimSuffix(value, ".0"), 10, 64)
				if perr != nil {
					fail(n, "histogram %s: bucket count %q not an integer", base, value)
					continue
				}
				m.buckets = append(m.buckets, bucketSample{bound, cum, n})
			case "_sum":
				if _, perr := strconv.ParseFloat(value, 64); perr != nil {
					fail(n, "histogram %s: _sum %q not a float", base, value)
				}
			case "_count":
				c, perr := strconv.ParseUint(strings.TrimSuffix(value, ".0"), 10, 64)
				if perr != nil {
					fail(n, "histogram %s: _count %q not an integer", base, value)
					continue
				}
				m.count, m.hasCnt = c, true
			default:
				fail(n, "histogram sample %s: want _bucket, _sum or _count", name)
			}
		}
		if _, perr := strconv.ParseFloat(value, 64); perr != nil {
			fail(n, "sample %s: value %q not a float", name, value)
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %v", err))
	}

	names := make([]string, 0, len(metrics))
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := metrics[name]
		if m.typ != "" && !m.seen {
			errs = append(errs, fmt.Errorf("metric %s: TYPE declared but no samples", name))
		}
		if m.typ != "histogram" || len(m.buckets) == 0 {
			continue
		}
		last := m.buckets[len(m.buckets)-1]
		if !isInf(last.le) {
			errs = append(errs, fmt.Errorf("histogram %s: last bucket le=%g, want +Inf", name, last.le))
		}
		for i := 1; i < len(m.buckets); i++ {
			prev, cur := m.buckets[i-1], m.buckets[i]
			if cur.le <= prev.le && !isInf(cur.le) {
				errs = append(errs, fmt.Errorf("line %d: histogram %s: le bounds not increasing", cur.line, name))
			}
			if cur.cum < prev.cum {
				errs = append(errs, fmt.Errorf("line %d: histogram %s: bucket counts not cumulative", cur.line, name))
			}
		}
		if m.hasCnt && isInf(last.le) && last.cum != m.count {
			errs = append(errs, fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", name, last.cum, m.count))
		}
	}
	return errs
}

type bucketSample struct {
	le   float64
	cum  uint64
	line int
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func isInf(f float64) bool { return math.IsInf(f, 1) }

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("le %q not a float", s)
	}
	return f, nil
}

// parseComment splits "# HELP name text" / "# TYPE name kind"; ok=false
// for other comments.
func parseComment(line string) (kind, name, rest string, ok bool) {
	f := strings.Fields(line)
	if len(f) < 3 || f[0] != "#" || (f[1] != "HELP" && f[1] != "TYPE") {
		return "", "", "", false
	}
	return f[1], f[2], strings.Join(f[3:], " "), true
}

// parseSample splits `name{l1="v1",...} value` into its parts, validating
// name and label syntax. Timestamps (a trailing integer) are accepted.
func parseSample(line string) (name string, labels map[string]string, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	labels = map[string]string{}
	if brace >= 0 {
		name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return "", nil, "", fmt.Errorf("sample %q: unterminated label set", line)
		}
		for _, pair := range splitLabels(rest[brace+1 : end]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("sample %q: bad label pair %q", line, pair)
			}
			ln := pair[:eq]
			lv := pair[eq+1:]
			if !labelNameRe.MatchString(ln) {
				return "", nil, "", fmt.Errorf("sample %q: invalid label name %q", line, ln)
			}
			if len(lv) < 2 || lv[0] != '"' || lv[len(lv)-1] != '"' {
				return "", nil, "", fmt.Errorf("sample %q: label %s value not quoted", line, ln)
			}
			labels[ln] = lv[1 : len(lv)-1]
		}
		rest = rest[end+1:]
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample %q: no value", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !metricNameRe.MatchString(name) {
		return "", nil, "", fmt.Errorf("sample %q: invalid metric name %q", line, name)
	}
	f := strings.Fields(rest)
	if len(f) < 1 || len(f) > 2 {
		return "", nil, "", fmt.Errorf("sample %q: want value [timestamp]", line)
	}
	return name, labels, f[0], nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// splitSuffix peels a known sample suffix off a metric name so samples can
// be matched to their TYPE line: foo_total → (foo, _total) for counters,
// foo_bucket/_sum/_count → (foo, suffix) for histograms.
func splitSuffix(name string) (base, suffix string) {
	for _, s := range []string{"_total", "_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			return strings.TrimSuffix(name, s), s
		}
	}
	return name, ""
}
