package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCountersAddEach(t *testing.T) {
	a := Counters{MemoProbes: 10, MemoHits: 4, SolvesScratch: 3}
	b := Counters{MemoProbes: 5, MemoHits: 1, CandEvals: 7}
	a.Add(&b)
	if a.MemoProbes != 15 || a.MemoHits != 5 || a.CandEvals != 7 || a.SolvesScratch != 3 {
		t.Fatalf("Add: got %+v", a)
	}

	// Each must visit every struct field exactly once, in declaration
	// order, under its JSON tag name.
	var names []string
	total := uint64(0)
	a.Each(func(name string, v uint64) {
		names = append(names, name)
		total += v
	})
	rt := reflect.TypeOf(a)
	if len(names) != rt.NumField() {
		t.Fatalf("Each visited %d fields, struct has %d", len(names), rt.NumField())
	}
	for i, name := range names {
		tag, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
		if name != tag {
			t.Errorf("field %d: Each said %q, tag is %q", i, name, tag)
		}
		if tag == "" {
			t.Errorf("field %s has no json tag", rt.Field(i).Name)
		}
	}
	if want := uint64(15 + 5 + 7 + 3); total != want {
		t.Fatalf("Each sum = %d, want %d", total, want)
	}
}

func TestCountersRates(t *testing.T) {
	c := Counters{
		MemoProbes: 200, MemoHits: 50,
		CandEvals: 30, DedupSkips: 10,
		SolvesFull: 1, SolvesIncremental: 3, SolvesScratch: 12,
	}
	if got := c.MemoHitPct(); got != 25 {
		t.Errorf("MemoHitPct = %v, want 25", got)
	}
	if got := c.DedupSkipPct(); got != 25 {
		t.Errorf("DedupSkipPct = %v, want 25", got)
	}
	if got := c.ScratchSolvePct(); got != 75 {
		t.Errorf("ScratchSolvePct = %v, want 75", got)
	}
	var zero Counters
	if zero.MemoHitPct() != 0 || zero.ScratchSolvePct() != 0 {
		t.Errorf("zero counters must report 0%% rates, not NaN")
	}
}

func TestTracerNilNoop(t *testing.T) {
	var tr *Tracer
	start := tr.Begin()
	tr.End(start, "cat", "name", 1, 2) // must not panic
	tr.Reset()
	if tr.Spans() != nil || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report empty state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.End(int64(i), "c", "s", int64(i), 0)
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Newest 4 survive, oldest first.
	for i, sp := range spans {
		if want := int64(6 + i); sp.Arg1 != want {
			t.Errorf("span %d: Arg1 = %d, want %d", i, sp.Arg1, want)
		}
	}

	tr.Reset()
	if tr.Total() != 0 || len(tr.Spans()) != 0 {
		t.Fatal("Reset must empty the ring")
	}
}

func TestTracerRecordsDurations(t *testing.T) {
	tr := NewTracer(8)
	start := tr.Begin()
	tr.End(start, "map", "place", 42, 3)
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	sp := spans[0]
	if sp.Cat != "map" || sp.Name != "place" || sp.Arg1 != 42 || sp.Arg2 != 3 {
		t.Fatalf("span = %+v", sp)
	}
	if sp.Dur < 0 {
		t.Fatalf("negative duration %d", sp.Dur)
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := tr.Begin()
				tr.End(s, "race", "span", int64(g), int64(i))
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 800 {
		t.Fatalf("Total = %d, want 800", tr.Total())
	}
	if len(tr.Spans()) != 64 {
		t.Fatalf("retained %d, want ring capacity 64", len(tr.Spans()))
	}
}

func TestChromeTraceJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.End(1000, "alloc", "grant", 5, 12)
	tr.End(2000, "map", "place", 7, 3)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Cat  string           `json:"cat"`
			Ph   string           `json:"ph"`
			TS   float64          `json:"ts"`
			PID  int              `json:"pid"`
			TID  int              `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid trace JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events", len(out.TraceEvents))
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event phase %q, want X", ev.Ph)
		}
		if ev.PID != 2 {
			t.Errorf("event pid %d, want 2 (scheduler timeline)", ev.PID)
		}
	}
	if out.TraceEvents[0].TID == out.TraceEvents[1].TID {
		t.Error("distinct categories must land on distinct tids")
	}
	if out.TraceEvents[1].Args["arg1"] != 7 {
		t.Errorf("args lost: %+v", out.TraceEvents[1].Args)
	}
}

func TestTracerRecordNoAllocs(t *testing.T) {
	tr := NewTracer(16)
	allocs := testing.AllocsPerRun(100, func() {
		s := tr.Begin()
		tr.End(s, "cat", "name", 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %v per span, want 0", allocs)
	}
}

const validExposition = `# HELP rats_requests_total Requests handled.
# TYPE rats_requests_total counter
rats_requests_total 42
# HELP rats_memo_probes_total Estimator memo probes.
# TYPE rats_memo_probes_total counter
rats_memo_probes_total 1234
# HELP rats_request_seconds Request latency.
# TYPE rats_request_seconds histogram
rats_request_seconds_bucket{le="0.001"} 3
rats_request_seconds_bucket{le="0.01"} 10
rats_request_seconds_bucket{le="+Inf"} 12
rats_request_seconds_sum 0.5
rats_request_seconds_count 12
# TYPE rats_inflight gauge
rats_inflight 0
`

func TestLintPrometheusValid(t *testing.T) {
	errs := LintPrometheus(strings.NewReader(validExposition))
	for _, e := range errs {
		t.Errorf("unexpected lint error: %v", e)
	}
}

func TestLintPrometheusCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"no type", "foo_total 1\n", "without a preceding TYPE"},
		{"counter suffix", "# TYPE foo counter\nfoo 1\n", "_total"},
		{"bad name", "# TYPE 9bad counter\n", "invalid metric name"},
		{"bad value", "# TYPE foo gauge\nfoo abc\n", "not a float"},
		{"non cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n", "cumulative"},
		{"no inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n", "+Inf"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 7\n", "_count"},
		{"le order", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\n", "not increasing"},
		{"unterminated labels", "# TYPE g gauge\ng{le=\"1\" 2\n", "unterminated"},
		{"type after samples", "# TYPE g gauge\ng 1\n# TYPE g gauge\n", "duplicate TYPE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintPrometheus(strings.NewReader(tc.text))
			if len(errs) == 0 {
				t.Fatalf("lint accepted invalid exposition:\n%s", tc.text)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error mentioning %q in %v", tc.want, errs)
			}
		})
	}
}
