// Package obs is the pipeline's observability layer: flat per-run engine
// counters (Counters) and a ring-buffered span tracer (Tracer) recording
// the scheduler's own execution.
//
// The design constraint is zero overhead on the scheduling hot paths.
// Counters are plain uint64 fields owned by each engine context — the
// estimator memo, the mapping lanes, the allocation refinement loop, the
// flownet solver, the replay engine — incremented with ordinary stores (no
// atomics: every owner is single-writer by construction) and merged into
// one Counters value at each run's deterministic reduce points. The tracer
// is opt-in and nil-safe: every record call on a nil *Tracer is an inlined
// no-op, so disabled tracing costs one pointer test per span site and
// allocates nothing.
package obs

import (
	"reflect"
	"strings"
)

// Counters is the flat per-run counter record. Every field counts events
// of one engine context; field groups mirror the pipeline phases. A
// Counters value is data, not a live registry: engines accumulate into
// private fields (or a private Counters) and snapshot here, so reading a
// Counters never races with a run.
type Counters struct {
	// Allocation refinement (internal/alloc): single-processor grants,
	// LevelTracker cone repairs (one per grant that changed levels), the
	// total tasks those cones contained, and how the candidate heap was
	// repaired afterwards — per-entry decrease-key sifts versus one bulk
	// heapify for large cones.
	AllocGrants   uint64 `json:"alloc_grants"`
	ConeRepairs   uint64 `json:"cone_repairs"`
	ConeTasks     uint64 `json:"cone_tasks"`
	HeapSifts     uint64 `json:"heap_sifts"`
	BulkHeapifies uint64 `json:"bulk_heapifies"`

	// Mapping (internal/core): estimator memo probes and hits
	// (EdgeRedistTime), stale-tolerant memo reuses (the MemoEps knob:
	// probes answered from a neighbouring receiver order instead of a
	// fresh block walk), candidate placements evaluated across all lanes,
	// evaluations skipped by the baseline-versus-reference dedup, and the
	// receiver rank-alignment decisions — exact Hungarian solves, greedy
	// solves, and AlignAuto demotions to greedy at the size cap.
	MemoProbes  uint64 `json:"memo_probes"`
	MemoHits    uint64 `json:"memo_hits"`
	MemoStale   uint64 `json:"memo_stale_hits"`
	CandEvals   uint64 `json:"cand_evals"`
	DedupSkips  uint64 `json:"dedup_skips"`
	AlignExact  uint64 `json:"align_exact"`
	AlignGreedy uint64 `json:"align_greedy"`
	AlignCapped uint64 `json:"align_capped"`

	// Parallel mapping lanes (internal/par): indices processed by the
	// pool across all lanes, and the subset claimed by helper lanes
	// (work stolen from the coordinator's serial order).
	ParTasks  uint64 `json:"par_tasks"`
	ParSteals uint64 `json:"par_steals"`

	// Replay rate solving (internal/flownet via internal/sim): how often
	// Solve ran each regime — full rebuild, incremental merge-replay,
	// small-population scratch — plus merge-replay checkpoint restores
	// and old bottleneck levels orphaned by stale shares.
	SolvesFull        uint64 `json:"solves_full"`
	SolvesIncremental uint64 `json:"solves_incremental"`
	SolvesScratch     uint64 `json:"solves_scratch"`
	CkRestores        uint64 `json:"ck_restores"`
	OrphanLevels      uint64 `json:"orphan_levels"`

	// Replay event loop (internal/sim): StartFlowBatch calls and the wire
	// flows they carried (mean batch size = FlowBatchFlows/FlowBatches).
	FlowBatches    uint64 `json:"flow_batches"`
	FlowBatchFlows uint64 `json:"flow_batch_flows"`
}

// Add accumulates o into c field by field.
func (c *Counters) Add(o *Counters) {
	cv := reflect.ValueOf(c).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < cv.NumField(); i++ {
		cv.Field(i).SetUint(cv.Field(i).Uint() + ov.Field(i).Uint())
	}
}

// Each calls fn for every counter field in declaration order, with the
// field's snake_case wire name (its JSON tag). It is the single source of
// truth the Prometheus exposition and the report modes iterate, so adding
// a field to Counters automatically surfaces it everywhere.
func (c *Counters) Each(fn func(name string, value uint64)) {
	v := reflect.ValueOf(c).Elem()
	t := v.Type()
	for i := 0; i < v.NumField(); i++ {
		name, _, _ := strings.Cut(t.Field(i).Tag.Get("json"), ",")
		fn(name, v.Field(i).Uint())
	}
}

// ratio returns num/den as a percentage, or 0 when den is 0.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// MemoHitPct returns the estimator memo hit rate in percent.
func (c *Counters) MemoHitPct() float64 { return ratio(c.MemoHits, c.MemoProbes) }

// DedupSkipPct returns the share of baseline candidate walks skipped by
// the dedup, relative to all evaluation opportunities (evals + skips).
func (c *Counters) DedupSkipPct() float64 {
	return ratio(c.DedupSkips, c.CandEvals+c.DedupSkips)
}

// ScratchSolvePct returns the share of rate solves that took the
// small-population scratch path.
func (c *Counters) ScratchSolvePct() float64 {
	return ratio(c.SolvesScratch, c.SolvesFull+c.SolvesIncremental+c.SolvesScratch)
}
