package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one recorded interval of the scheduler's own execution: a phase,
// one allocation refinement grant, one task placement. Times are
// nanoseconds since the tracer's epoch; Arg1/Arg2 carry the span kind's
// two detail numbers (task id and candidate count for placements, granted
// task and cone size for grants) without per-span allocations.
type Span struct {
	Cat   string `json:"cat"`
	Name  string `json:"name"`
	Start int64  `json:"start_ns"`
	Dur   int64  `json:"dur_ns"`
	Arg1  int64  `json:"arg1"`
	Arg2  int64  `json:"arg2"`
}

// Tracer records spans into a fixed-capacity ring: the newest spans win,
// total memory is bounded at construction, and recording never allocates.
// A nil *Tracer is the disabled state — Begin and End are no-ops on it —
// so instrumentation sites call unconditionally and pay one pointer test
// when tracing is off.
//
// Record calls are mutex-serialized, which keeps a tracer attached to a
// batch-scheduling run race-free; the lock is uncontended (and irrelevant)
// in the serial pipeline.
type Tracer struct {
	epoch time.Time

	mu    sync.Mutex
	ring  []Span
	next  int    // ring slot the next span lands in
	total uint64 // spans ever recorded (total - len(ring) = dropped)
}

// DefaultTraceCapacity is the ring size NewTracer(0) selects: enough for
// every placement of a few thousand-task DAGs plus the phase spans.
const DefaultTraceCapacity = 8192

// NewTracer returns a tracer with the given ring capacity (0 or negative
// selects DefaultTraceCapacity). The ring is allocated up front so the
// record path stays allocation-free.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{epoch: time.Now(), ring: make([]Span, 0, capacity)}
}

// Begin returns the span start mark: nanoseconds since the tracer epoch.
// On a nil tracer it returns 0 without reading the clock.
func (t *Tracer) Begin() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// End records a span begun at start (a Begin result). On a nil tracer it
// is a no-op; the caller needs no guard beyond passing the mark through.
func (t *Tracer) End(start int64, cat, name string, arg1, arg2 int64) {
	if t == nil {
		return
	}
	now := int64(time.Since(t.epoch))
	sp := Span{Cat: cat, Name: name, Start: start, Dur: now - start, Arg1: arg1, Arg2: arg2}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sp)
	} else {
		t.ring[t.next] = sp
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns a copy of the retained spans in recording order (oldest
// first). A nil tracer returns nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring...)
	}
	return out
}

// Total returns how many spans were ever recorded; Dropped how many fell
// out of the ring. Both are 0 on a nil tracer.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns the number of spans the ring evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.ring))
}

// Reset empties the ring (capacity and epoch are kept).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.total = 0
	t.mu.Unlock()
}

// chromeSpan is one Chrome trace-event record ("X" = complete event),
// mirroring internal/trace's replay export so both traces load in the
// same viewer. The scheduler's own timeline uses pid 2 (the replay export
// uses 0 for processors and 1 for the network) with one tid per category.
type chromeSpan struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`  // microseconds
	Dur  float64          `json:"dur"` // microseconds
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChromeTrace exports the retained spans as Chrome trace-event JSON
// (load via chrome://tracing or Perfetto). Categories map to rows: each
// distinct Cat gets its own tid in first-appearance order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	tids := map[string]int{}
	events := make([]chromeSpan, 0, len(spans))
	for _, sp := range spans {
		tid, ok := tids[sp.Cat]
		if !ok {
			tid = len(tids)
			tids[sp.Cat] = tid
		}
		events = append(events, chromeSpan{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS: float64(sp.Start) / 1e3, Dur: float64(sp.Dur) / 1e3,
			PID: 2, TID: tid,
			Args: map[string]int64{"arg1": sp.Arg1, "arg2": sp.Arg2},
		})
	}
	return json.NewEncoder(w).Encode(struct {
		TraceEvents []chromeSpan `json:"traceEvents"`
	}{events})
}
