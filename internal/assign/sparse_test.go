package assign

import (
	"math/rand"
	"testing"
)

// denseOf materializes the dense matrix a CSR triple list describes.
func denseOf(n int, rowPtr, cols []int, weights []float64) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for r := 0; r+1 < len(rowPtr); r++ {
		for k := rowPtr[r]; k < rowPtr[r+1]; k++ {
			w[r][cols[k]] = weights[k]
		}
	}
	return w
}

// randBanded builds a random banded CSR instance: each of the first s rows
// carries one contiguous band of positive weights, the rest are empty —
// the shape AlignReceiversInto generates from the block-overlap structure.
func randBanded(rng *rand.Rand, n int) (rowPtr, cols []int, weights []float64) {
	s := rng.Intn(n + 1)
	rowPtr = []int{0}
	for r := 0; r < s; r++ {
		start := rng.Intn(n)
		width := 1 + rng.Intn(4)
		if rng.Intn(6) == 0 {
			width = 0 // the occasional empty row inside the prefix
		}
		for j := start; j < start+width && j < n; j++ {
			cols = append(cols, j)
			// Small integer grid so equal-weight ties are common: the
			// tie-breaking agreement is the risky part of the equivalence.
			weights = append(weights, float64(1+rng.Intn(4))/4)
		}
		rowPtr = append(rowPtr, len(cols))
	}
	return rowPtr, cols, weights
}

// TestMaxWeightSparseMatchesDense drives the sparse solver against the
// dense oracle on random banded instances, requiring the exact same
// assignment (not merely the same total): the alignment path needs
// bit-identical rank choices for the golden schedules to survive.
func TestMaxWeightSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var sc Scratch
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(24)
		rowPtr, cols, weights := randBanded(rng, n)
		wantAsg, wantTotal := MaxWeight(denseOf(n, rowPtr, cols, weights))
		gotAsg, gotTotal := MaxWeightSparse(n, rowPtr, cols, weights, &sc)
		if len(gotAsg) != len(wantAsg) {
			t.Fatalf("trial %d: assignment length %d, want %d", trial, len(gotAsg), len(wantAsg))
		}
		for i := range wantAsg {
			if gotAsg[i] != wantAsg[i] {
				t.Fatalf("trial %d (n=%d): row %d assigned to %d, dense oracle says %d\nrowPtr=%v cols=%v w=%v",
					trial, n, i, gotAsg[i], wantAsg[i], rowPtr, cols, weights)
			}
		}
		if gotTotal != wantTotal {
			t.Fatalf("trial %d: total %g, dense oracle %g", trial, gotTotal, wantTotal)
		}
	}
}

// TestMaxWeightSparseLargeBand covers the production shape: a big512-sized
// problem with every row banded (no empty suffix), once with a shared
// scratch and once with nil.
func TestMaxWeightSparseLargeBand(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	rowPtr := []int{0}
	var cols []int
	var weights []float64
	for r := 0; r < n; r++ {
		start := (r * n) / (n + 3)
		for j := start; j < start+3 && j < n; j++ {
			cols = append(cols, j)
			weights = append(weights, rng.Float64())
		}
		rowPtr = append(rowPtr, len(cols))
	}
	wantAsg, _ := MaxWeight(denseOf(n, rowPtr, cols, weights))
	gotAsg, _ := MaxWeightSparse(n, rowPtr, cols, weights, nil)
	for i := range wantAsg {
		if gotAsg[i] != wantAsg[i] {
			t.Fatalf("row %d assigned to %d, dense oracle says %d", i, gotAsg[i], wantAsg[i])
		}
	}
}

func TestMaxWeightSparseEdgeCases(t *testing.T) {
	if asg, total := MaxWeightSparse(0, nil, nil, nil, nil); asg != nil || total != 0 {
		t.Errorf("empty problem: got (%v, %g)", asg, total)
	}
	// All-empty rows: any permutation is optimal; must match dense exactly.
	wantAsg, _ := MaxWeight([][]float64{{0, 0}, {0, 0}})
	gotAsg, _ := MaxWeightSparse(2, []int{0}, nil, nil, nil)
	for i := range wantAsg {
		if gotAsg[i] != wantAsg[i] {
			t.Fatalf("all-zero: row %d → %d, dense oracle %d", i, gotAsg[i], wantAsg[i])
		}
	}
	for _, bad := range []func(){
		func() { MaxWeightSparse(2, []int{1, 2}, []int{0, 1}, []float64{1, 1}, nil) }, // rowPtr[0] != 0
		func() { MaxWeightSparse(2, []int{0, 1}, []int{0}, []float64{1, 1}, nil) },    // weights mismatch
		func() { MaxWeightSparse(2, []int{0, 2}, []int{1, 0}, []float64{1, 1}, nil) }, // unsorted
		func() { MaxWeightSparse(2, []int{0, 1}, []int{5}, []float64{1}, nil) },       // out of range
		func() { MaxWeightSparse(1, []int{0, 1, 1}, []int{0}, []float64{1}, nil) },    // too many rows
		func() { MaxWeightSparse(2, []int{0, 2}, []int{0, 0}, []float64{1, 1}, nil) }, // duplicate col
		func() { MaxWeightSparse(2, []int{0, 1}, []int{-1}, []float64{1}, nil) },      // negative col
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("malformed CSR input must panic")
				}
			}()
			bad()
		}()
	}
}

// TestScratchReuseAcrossSizes: a scratch grown by a large problem must
// still solve small ones exactly (stale state cleared per call).
func TestScratchReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var sc Scratch
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		rowPtr, cols, weights := randBanded(rng, n)
		wantAsg, _ := MaxWeight(denseOf(n, rowPtr, cols, weights))
		gotAsg, _ := MaxWeightSparse(n, rowPtr, cols, weights, &sc)
		for i := range wantAsg {
			if gotAsg[i] != wantAsg[i] {
				t.Fatalf("trial %d: scratch reuse diverged at row %d", trial, i)
			}
		}
	}
}

// FuzzMaxWeightSparse fuzzes the sparse solver against the dense oracle on
// arbitrary banded instances derived from the fuzz input bytes.
func FuzzMaxWeightSparse(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(99), uint8(16))
	f.Add(int64(-7), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%24 + 1
		rowPtr, cols, weights := randBanded(rng, n)
		wantAsg, _ := MaxWeight(denseOf(n, rowPtr, cols, weights))
		gotAsg, _ := MaxWeightSparse(n, rowPtr, cols, weights, nil)
		for i := range wantAsg {
			if gotAsg[i] != wantAsg[i] {
				t.Fatalf("row %d assigned to %d, dense oracle says %d", i, gotAsg[i], wantAsg[i])
			}
		}
	})
}
