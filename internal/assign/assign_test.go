package assign

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinCostKnown(t *testing.T) {
	// Classic 3×3 example; optimum is 5 (0→1? let's verify: choose 1,2,0 →
	// 2+3+2=7; 0,1,2 → 1+4+6=11; 1,0,2 → 2+2? ...). Matrix:
	cost := [][]float64{
		{1, 2, 3},
		{2, 4, 6},
		{3, 6, 9},
	}
	// Optimal: row0→col2 (3), row1→col1 (4), row2→col0 (3) = 10.
	asg, total := MinCost(cost)
	if total != 10 {
		t.Fatalf("total = %g, want 10 (assignment %v)", total, asg)
	}
}

func TestMinCostRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 1, 10, 10},
		{10, 10, 1, 10},
	}
	asg, total := MinCost(cost)
	if total != 2 || asg[0] != 1 || asg[1] != 2 {
		t.Fatalf("asg = %v total = %g, want [1 2] / 2", asg, total)
	}
}

func TestMaxWeightKnown(t *testing.T) {
	w := [][]float64{
		{5, 0, 0},
		{0, 5, 0},
		{1, 1, 4},
	}
	asg, total := MaxWeight(w)
	if total != 14 {
		t.Fatalf("total = %g, want 14 (asg %v)", total, asg)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if asg[i] != want[i] {
			t.Fatalf("asg = %v, want %v", asg, want)
		}
	}
}

func TestEmptyMatrix(t *testing.T) {
	if asg, total := MinCost(nil); asg != nil || total != 0 {
		t.Error("empty MinCost should be nil/0")
	}
	if asg, total := MaxWeight(nil); asg != nil || total != 0 {
		t.Error("empty MaxWeight should be nil/0")
	}
}

// bruteForceMax enumerates all permutations for small n.
func bruteForceMax(w [][]float64) float64 {
	n := len(w)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(-1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			s := 0.0
			for i, j := range perm {
				s += w[i][j]
			}
			if s > best {
				best = s
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// Property: Hungarian total equals brute-force optimum for random small
// matrices, and the assignment is a valid permutation.
func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = math.Floor(r.Float64()*100) / 10
			}
		}
		asg, total := MaxWeight(w)
		seen := make([]bool, n)
		for _, j := range asg {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return math.Abs(total-bruteForceMax(w)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMaxWeight64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	n := 64
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxWeight(w)
	}
}
