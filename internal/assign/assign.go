// Package assign implements the linear assignment problem (Hungarian
// algorithm, O(n³) with potentials).
//
// The redistribution layer uses it to choose the receiver rank order that
// maximizes self-communication when the sender and receiver processor sets
// of a redistribution intersect (§II-A of the paper: "our redistribution
// algorithm tries to maximize the amount of self communications").
//
// Two solvers are provided: the dense MinCost/MaxWeight pair, and
// MaxWeightSparse, which solves the same square problem over CSR triples
// with a reusable Scratch and no matrix materialization. The sparse solver
// is bit-identical to the dense one — same algorithm, same row order, same
// floating-point expressions — which the hot alignment path depends on;
// the dense solver is kept as its oracle.
package assign

import "math"

// MinCost solves the rectangular assignment problem for an n×m cost matrix
// with n ≤ m: it returns rowToCol (length n, the column assigned to each
// row, all distinct) and the total cost of the assignment. It panics if
// n > m; callers should transpose first (see MaxWeight for an example).
func MinCost(cost [][]float64) (rowToCol []int, total float64) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	m := len(cost[0])
	if n > m {
		panic("assign: MinCost requires rows ≤ cols")
	}
	// Hungarian algorithm with potentials, 1-indexed internals.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)   // p[j] = row matched to column j (0 = none)
	way := make([]int, m+1) // way[j] = previous column on the alternating path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowToCol = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][rowToCol[i]]
	}
	return rowToCol, total
}

// MaxWeight solves the square maximum-weight assignment problem: it returns
// rowToCol maximizing Σ weight[i][rowToCol[i]] and the achieved total.
// The matrix must be square.
func MaxWeight(weight [][]float64) (rowToCol []int, total float64) {
	n := len(weight)
	if n == 0 {
		return nil, 0
	}
	if len(weight[0]) != n {
		panic("assign: MaxWeight requires a square matrix")
	}
	neg := make([][]float64, n)
	for i := range weight {
		neg[i] = make([]float64, n)
		for j := range weight[i] {
			neg[i][j] = -weight[i][j]
		}
	}
	rowToCol, negTotal := MinCost(neg)
	return rowToCol, -negTotal
}
