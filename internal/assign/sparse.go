package assign

import "math"

// Scratch holds the working state of MaxWeightSparse: Hungarian potentials,
// matching arrays, the per-row minimum slack, and the visited-column bitset.
// Reusing one Scratch across calls makes the solver allocation-free in
// steady state (slices grow to the largest problem seen and stay). A
// Scratch is not safe for concurrent use; the zero value is ready.
type Scratch struct {
	u, v, minv []float64
	p, way     []int32
	used       []uint64 // visited-column bitset, 1 bit per column (1-indexed)
	rowToCol   []int
}

// grow sizes the scratch for an n×n problem (1-indexed internals).
func (s *Scratch) grow(n int) {
	m := n + 1
	if cap(s.u) < m {
		s.u = make([]float64, m)
		s.v = make([]float64, m)
		s.minv = make([]float64, m)
		s.p = make([]int32, m)
		s.way = make([]int32, m)
	}
	s.u = s.u[:m]
	s.v = s.v[:m]
	s.minv = s.minv[:m]
	s.p = s.p[:m]
	s.way = s.way[:m]
	for i := range s.u {
		s.u[i] = 0
		s.v[i] = 0
		s.p[i] = 0
		s.way[i] = 0
	}
	w := (m + 63) / 64
	if cap(s.used) < w {
		s.used = make([]uint64, w)
	}
	s.used = s.used[:w]
	if cap(s.rowToCol) < n {
		s.rowToCol = make([]int, n)
	}
	s.rowToCol = s.rowToCol[:n]
}

func (s *Scratch) visit(j int)        { s.used[j>>6] |= 1 << (uint(j) & 63) }
func (s *Scratch) visited(j int) bool { return s.used[j>>6]&(1<<(uint(j)&63)) != 0 }

func (s *Scratch) clearVisited() {
	for i := range s.used {
		s.used[i] = 0
	}
}

// MaxWeightSparse solves the square n×n maximum-weight assignment problem
// over a CSR triple list: row i's non-zero entries are (cols[k], weights[k])
// for k in [rowPtr[i], rowPtr[i+1]), with cols sorted strictly ascending
// within each row; every entry not listed is zero. Rows past the last
// rowPtr segment are empty (all-zero), so callers only describe the rows
// that carry weight.
//
// The result is bit-identical to MaxWeight on the equivalent dense matrix:
// the solver runs the same Hungarian algorithm with potentials, in the same
// row order, with the same floating-point expressions — the entry lookup is
// the only thing that changed, so tie-breaking between equal-benefit
// columns resolves exactly as the dense oracle does. The randomized
// equivalence tests pin this.
//
// The returned rowToCol slice is owned by the scratch and valid until the
// next call with the same Scratch. Passing a nil scratch allocates a
// temporary one.
func MaxWeightSparse(n int, rowPtr, cols []int, weights []float64, sc *Scratch) (rowToCol []int, total float64) {
	if n == 0 {
		return nil, 0
	}
	if len(rowPtr) == 0 || rowPtr[0] != 0 || len(rowPtr) > n+1 {
		panic("assign: MaxWeightSparse rowPtr must start at 0 and describe at most n rows")
	}
	if last := rowPtr[len(rowPtr)-1]; last != len(cols) || len(cols) != len(weights) {
		panic("assign: MaxWeightSparse cols/weights must match the rowPtr extent")
	}
	for r := 0; r+1 < len(rowPtr); r++ {
		for k := rowPtr[r]; k < rowPtr[r+1]; k++ {
			if cols[k] < 0 || cols[k] >= n {
				panic("assign: MaxWeightSparse column out of range")
			}
			if k > rowPtr[r] && cols[k] <= cols[k-1] {
				panic("assign: MaxWeightSparse columns must be strictly ascending per row")
			}
		}
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.grow(n)
	u, v, minv, p, way := sc.u, sc.v, sc.minv, sc.p, sc.way

	// Hungarian algorithm with potentials on the negated weights, exactly
	// as MaxWeight → MinCost runs it (1-indexed, square): rows are inserted
	// in order; each insertion grows the matching along a shortest
	// augmenting path. cost(i, j) = -weight[i][j], fetched from the CSR
	// band on the fly instead of a materialized matrix.
	for i := 1; i <= n; i++ {
		var rowCols []int
		var rowWts []float64
		if i < len(rowPtr) {
			rowCols = cols[rowPtr[i-1]:rowPtr[i]]
			rowWts = weights[rowPtr[i-1]:rowPtr[i]]
		}
		p[0] = int32(i)
		j0 := 0
		sc.clearVisited()
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			sc.visit(j0)
			i0 := int(p[j0])
			delta := math.Inf(1)
			j1 := -1
			// The path's cost terms reference row i0 — the row matched to
			// the visited column — which is an earlier row once the
			// alternating path leaves the freshly inserted one.
			c0, w0 := rowCols, rowWts
			if i0 != i {
				c0, w0 = rowOf(rowPtr, cols, weights, i0)
			}
			k := 0
			for j := 1; j <= n; j++ {
				if sc.visited(j) {
					continue
				}
				cost := 0.0
				for k < len(c0) && c0[k] < j-1 {
					k++
				}
				if k < len(c0) && c0[k] == j-1 {
					cost = -w0[k]
				}
				cur := cost - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = int32(j0)
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if sc.visited(j) {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := int(way[j0])
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowToCol = sc.rowToCol
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		c, w := rowOf(rowPtr, cols, weights, i+1)
		j := rowToCol[i]
		for k := range c {
			if c[k] == j {
				total += w[k]
				break
			}
		}
	}
	return rowToCol, total
}

// rowOf returns the CSR slice of 1-indexed row i (empty past the rowPtr
// extent).
func rowOf(rowPtr, cols []int, weights []float64, i int) ([]int, []float64) {
	if i >= len(rowPtr) {
		return nil, nil
	}
	return cols[rowPtr[i-1]:rowPtr[i]], weights[rowPtr[i-1]:rowPtr[i]]
}
