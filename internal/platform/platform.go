// Package platform models the homogeneous commodity clusters of §II-B of
// the paper.
//
// A cluster has P identical single-core nodes, each with a private
// full-duplex network link (latency λ, bandwidth β) attached to a switch.
// Small clusters hang every node off one switch (chti, grillon); larger
// ones group nodes into cabinets whose switches connect to a top-level
// switch (grelon: five 24-node cabinets), forming a hierarchical network.
//
// Communications follow the bounded multi-port model: a node may exchange
// data with several peers at once, but the bandwidth of its private link is
// shared among the flows (max-min fairness, implemented in internal/sim).
// As in SimGrid, an empirical per-flow bandwidth β' = min(β, Wmax/RTT)
// accounts for the TCP window, with RTT twice the sum of link latencies
// along the route.
package platform

import "fmt"

// Link identifiers are dense integers so the max-min solver can use slice
// indexing. Every node contributes an up (node→switch) and a down
// (switch→node) directed link; every cabinet contributes an up and a down
// uplink to the top switch.
type LinkID = int

// Cluster describes one homogeneous cluster.
type Cluster struct {
	Name        string
	P           int     // number of nodes (= processors; one core per node)
	SpeedGFlops float64 // per-node compute speed, GFlop/s (HPL-measured)

	LinkLatency   float64 // λ of each private link, seconds
	LinkBandwidth float64 // β of each private link, bytes/second

	// CabinetSize > 0 switches the interconnect to the hierarchical layout:
	// nodes [k·CabinetSize, (k+1)·CabinetSize) share cabinet k, and
	// cross-cabinet routes traverse both cabinet uplinks.
	CabinetSize     int
	UplinkLatency   float64 // λ of a cabinet uplink, seconds
	UplinkBandwidth float64 // β of a cabinet uplink, bytes/second

	// WMax is the maximum TCP window size in bytes, used for the empirical
	// bandwidth β' = min(β, WMax/RTT). The paper does not report SimGrid's
	// setting; the presets use 4 MiB (non-binding on single-switch routes,
	// mildly binding on long hierarchical routes), and it is configurable.
	WMax float64
}

// Gigabit Ethernet figures used throughout the paper's experiments.
const (
	GigabitBandwidth = 1e9 / 8 // 1 Gb/s in bytes/second
	GigabitLatency   = 100e-6  // 100 µs
	DefaultWMax      = 4 << 20 // 4 MiB TCP window
)

// Chti returns the chti cluster (Lille): 20 nodes at 4.311 GFlop/s behind a
// single gigabit switch (Table II).
func Chti() *Cluster {
	return &Cluster{
		Name: "chti", P: 20, SpeedGFlops: 4.311,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// Grillon returns the grillon cluster (Nancy): 47 nodes at 3.379 GFlop/s
// behind a single gigabit switch (Table II).
func Grillon() *Cluster {
	return &Cluster{
		Name: "grillon", P: 47, SpeedGFlops: 3.379,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// Grelon returns the grelon cluster (Nancy): 120 nodes at 3.185 GFlop/s in
// five 24-node cabinets behind a hierarchical switch (Table II). The paper
// does not give the cabinet uplink bandwidth; 10 Gb/s (Grid'5000-era
// backbone) is used and can be overridden.
func Grelon() *Cluster {
	return &Cluster{
		Name: "grelon", P: 120, SpeedGFlops: 3.185,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		CabinetSize:   24,
		UplinkLatency: GigabitLatency, UplinkBandwidth: 10 * GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// PaperClusters returns the three clusters in the order the paper's tables
// report them: chti / grillon / grelon.
func PaperClusters() []*Cluster {
	return []*Cluster{Chti(), Grillon(), Grelon()}
}

// Big512 returns a synthetic 512-node production-scale cluster: sixteen
// 32-node cabinets of 8 GFlop/s nodes with private gigabit links behind a
// 40 Gb/s backbone. It extrapolates the paper's grelon layout (§II-B) to
// the scale where the time-cost strategy's contention-free estimates are
// most accurate (§IV-D) and where scheduler cost, not simulation fidelity,
// becomes the binding constraint.
func Big512() *Cluster {
	return &Cluster{
		Name: "big512", P: 512, SpeedGFlops: 8,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		CabinetSize:   32,
		UplinkLatency: GigabitLatency, UplinkBandwidth: 40 * GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// Big1024 returns a synthetic 1024-node cluster: thirty-two 32-node
// cabinets with the same per-node links and 40 Gb/s backbone as Big512.
func Big1024() *Cluster {
	return &Cluster{
		Name: "big1024", P: 1024, SpeedGFlops: 8,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		CabinetSize:   32,
		UplinkLatency: GigabitLatency, UplinkBandwidth: 40 * GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// ByName returns the preset cluster with the given name.
func ByName(name string) (*Cluster, error) {
	switch name {
	case "chti":
		return Chti(), nil
	case "grillon":
		return Grillon(), nil
	case "grelon":
		return Grelon(), nil
	case "big512":
		return Big512(), nil
	case "big1024":
		return Big1024(), nil
	}
	return nil, fmt.Errorf("platform: unknown cluster %q (want chti, grillon, grelon, big512 or big1024)", name)
}

// Hierarchical reports whether the cluster uses the cabinet topology.
func (c *Cluster) Hierarchical() bool { return c.CabinetSize > 0 }

// Cabinets returns the number of cabinets (1 for flat clusters).
func (c *Cluster) Cabinets() int {
	if !c.Hierarchical() {
		return 1
	}
	return (c.P + c.CabinetSize - 1) / c.CabinetSize
}

// Cabinet returns the cabinet index of a node (0 for flat clusters).
func (c *Cluster) Cabinet(node int) int {
	if !c.Hierarchical() {
		return 0
	}
	return node / c.CabinetSize
}

// NumLinks returns the total number of directed links (node up/down pairs
// plus cabinet uplink pairs).
func (c *Cluster) NumLinks() int {
	n := 2 * c.P
	if c.Hierarchical() {
		n += 2 * c.Cabinets()
	}
	return n
}

// Link ID layout.
func (c *Cluster) nodeUp(node int) LinkID   { return 2 * node }
func (c *Cluster) nodeDown(node int) LinkID { return 2*node + 1 }
func (c *Cluster) cabUp(cab int) LinkID     { return 2*c.P + 2*cab }
func (c *Cluster) cabDown(cab int) LinkID   { return 2*c.P + 2*cab + 1 }

// LinkCapacity returns the bandwidth in bytes/second of a directed link.
func (c *Cluster) LinkCapacity(l LinkID) float64 {
	if l < 2*c.P {
		return c.LinkBandwidth
	}
	return c.UplinkBandwidth
}

// LinkCapacities returns the capacity vector indexed by LinkID, ready for
// the max-min solver.
func (c *Cluster) LinkCapacities() []float64 {
	caps := make([]float64, c.NumLinks())
	for l := range caps {
		caps[l] = c.LinkCapacity(l)
	}
	return caps
}

// Route returns the directed links traversed by a flow from node src to
// node dst and the one-way latency of the route (sum of link latencies).
// A self-route (src == dst) is empty with zero latency: intra-node copies
// are free, which implements the paper's "no redistribution cost on the
// same processor" assumption at the flow level.
func (c *Cluster) Route(src, dst int) (links []LinkID, latency float64) {
	return c.AppendRoute(nil, src, dst)
}

// AppendRoute appends the route's links to buf and returns the extended
// slice with the one-way latency — the amortized-allocation companion of
// Route for replay loops that start thousands of flows (callers keep the
// links in an arena instead of one slice allocation per flow). Routes have
// at most four links.
func (c *Cluster) AppendRoute(buf []LinkID, src, dst int) (links []LinkID, latency float64) {
	if src == dst {
		return buf, 0
	}
	lat := c.RouteLatency(src, dst)
	if !c.Hierarchical() || c.Cabinet(src) == c.Cabinet(dst) {
		return append(buf, c.nodeUp(src), c.nodeDown(dst)), lat
	}
	return append(buf,
		c.nodeUp(src),
		c.cabUp(c.Cabinet(src)),
		c.cabDown(c.Cabinet(dst)),
		c.nodeDown(dst),
	), lat
}

// RouteLatency returns the one-way latency of the route from src to dst
// without materializing the link list — the allocation-free companion of
// Route for hot paths that only need the latency.
func (c *Cluster) RouteLatency(src, dst int) float64 {
	if src == dst {
		return 0
	}
	if !c.Hierarchical() || c.Cabinet(src) == c.Cabinet(dst) {
		return 2 * c.LinkLatency
	}
	return 2*c.LinkLatency + 2*c.UplinkLatency
}

// RTT returns the round-trip time between two nodes: twice the sum of the
// latencies of the links on the (symmetric) route, as in SimGrid.
func (c *Cluster) RTT(src, dst int) float64 {
	return 2 * c.RouteLatency(src, dst)
}

// EffectiveBandwidth returns the empirical per-flow bandwidth
// β' = min(β, WMax/RTT) between two nodes, where β is the narrowest link on
// the route. It is used both as the per-flow rate cap in the simulator and
// by the schedulers' contention-free redistribution estimates.
func (c *Cluster) EffectiveBandwidth(src, dst int) float64 {
	if src == dst {
		return 0 // self-flow: instantaneous, no bandwidth meaning
	}
	beta := c.LinkBandwidth
	if c.Hierarchical() && c.Cabinet(src) != c.Cabinet(dst) && c.UplinkBandwidth < beta {
		beta = c.UplinkBandwidth
	}
	if rtt := c.RTT(src, dst); rtt > 0 {
		if cap := c.WMax / rtt; cap < beta {
			return cap
		}
	}
	return beta
}

// Validate checks the cluster description for consistency.
func (c *Cluster) Validate() error {
	switch {
	case c.P <= 0:
		return fmt.Errorf("platform %s: P = %d, must be positive", c.Name, c.P)
	case c.SpeedGFlops <= 0:
		return fmt.Errorf("platform %s: speed = %g GFlop/s, must be positive", c.Name, c.SpeedGFlops)
	case c.LinkBandwidth <= 0 || c.LinkLatency < 0:
		return fmt.Errorf("platform %s: invalid private link (β=%g, λ=%g)", c.Name, c.LinkBandwidth, c.LinkLatency)
	case c.Hierarchical() && (c.UplinkBandwidth <= 0 || c.UplinkLatency < 0):
		return fmt.Errorf("platform %s: invalid cabinet uplink (β=%g, λ=%g)", c.Name, c.UplinkBandwidth, c.UplinkLatency)
	case c.WMax <= 0:
		return fmt.Errorf("platform %s: WMax = %g, must be positive", c.Name, c.WMax)
	}
	return nil
}
