// Package platform models the homogeneous commodity clusters of §II-B of
// the paper.
//
// A cluster has P identical single-core nodes, each with a private
// full-duplex network link (latency λ, bandwidth β) attached to a switch.
// Small clusters hang every node off one switch (chti, grillon); larger
// ones group nodes into cabinets whose switches connect to a top-level
// switch (grelon: five 24-node cabinets), forming a hierarchical network.
//
// Communications follow the bounded multi-port model: a node may exchange
// data with several peers at once, but the bandwidth of its private link is
// shared among the flows (max-min fairness, implemented in internal/sim).
// As in SimGrid, an empirical per-flow bandwidth β' = min(β, Wmax/RTT)
// accounts for the TCP window, with RTT twice the sum of link latencies
// along the route.
//
// # Heterogeneity
//
// A cluster is uniform by default: one SpeedGFlops for every node, one
// bandwidth/latency figure per link class. Heterogeneous platforms are
// expressed as sparse deviations from that baseline — an optional
// per-node speed vector (NodeSpeeds) and per-link override maps
// (LinkBandwidths, LinkLatencies) keyed by LinkID. Nil vectors/maps mean
// "uniform", and every query (LinkCapacity, RouteLatency,
// EffectiveBandwidth) keeps its closed-form fast path in that case; only
// when overrides are present does it consult the maps. The override
// representation keeps the homogeneous paper presets byte-identical to
// their pre-heterogeneity behaviour while letting custom clusters slow
// down individual nodes, throttle single uplinks, or model asymmetric
// links.
package platform

import (
	"fmt"
	"maps"
	"math"
	"slices"
	"strings"
)

// Link identifiers are dense integers so the max-min solver can use slice
// indexing. Every node contributes an up (node→switch) and a down
// (switch→node) directed link; every cabinet contributes an up and a down
// uplink to the top switch.
type LinkID = int

// Cluster describes one homogeneous cluster.
type Cluster struct {
	Name        string
	P           int     // number of nodes (= processors; one core per node)
	SpeedGFlops float64 // per-node compute speed, GFlop/s (HPL-measured)

	LinkLatency   float64 // λ of each private link, seconds
	LinkBandwidth float64 // β of each private link, bytes/second

	// CabinetSize > 0 switches the interconnect to the hierarchical layout:
	// nodes [k·CabinetSize, (k+1)·CabinetSize) share cabinet k, and
	// cross-cabinet routes traverse both cabinet uplinks.
	CabinetSize     int
	UplinkLatency   float64 // λ of a cabinet uplink, seconds
	UplinkBandwidth float64 // β of a cabinet uplink, bytes/second

	// WMax is the maximum TCP window size in bytes, used for the empirical
	// bandwidth β' = min(β, WMax/RTT). The paper does not report SimGrid's
	// setting; the presets use 4 MiB (non-binding on single-switch routes,
	// mildly binding on long hierarchical routes), and it is configurable.
	WMax float64

	// NodeSpeeds, when non-nil, gives node i its own compute speed in
	// GFlop/s and must have exactly P entries, every one positive and
	// finite. Nil means every node runs at SpeedGFlops.
	NodeSpeeds []float64

	// LinkBandwidths and LinkLatencies override the bandwidth (bytes/s)
	// and latency (seconds) of individual directed links, keyed by LinkID
	// (see NodeUpLink/NodeDownLink/CabUpLink/CabDownLink for the layout).
	// Links absent from the maps keep the uniform class figure. Nil maps
	// mean a fully uniform interconnect and keep every route query on its
	// closed-form fast path.
	LinkBandwidths map[LinkID]float64
	LinkLatencies  map[LinkID]float64
}

// Gigabit Ethernet figures used throughout the paper's experiments.
const (
	GigabitBandwidth = 1e9 / 8 // 1 Gb/s in bytes/second
	GigabitLatency   = 100e-6  // 100 µs
	DefaultWMax      = 4 << 20 // 4 MiB TCP window
)

// Chti returns the chti cluster (Lille): 20 nodes at 4.311 GFlop/s behind a
// single gigabit switch (Table II).
func Chti() *Cluster {
	return &Cluster{
		Name: "chti", P: 20, SpeedGFlops: 4.311,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// Grillon returns the grillon cluster (Nancy): 47 nodes at 3.379 GFlop/s
// behind a single gigabit switch (Table II).
func Grillon() *Cluster {
	return &Cluster{
		Name: "grillon", P: 47, SpeedGFlops: 3.379,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// Grelon returns the grelon cluster (Nancy): 120 nodes at 3.185 GFlop/s in
// five 24-node cabinets behind a hierarchical switch (Table II). The paper
// does not give the cabinet uplink bandwidth; 10 Gb/s (Grid'5000-era
// backbone) is used and can be overridden.
func Grelon() *Cluster {
	return &Cluster{
		Name: "grelon", P: 120, SpeedGFlops: 3.185,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		CabinetSize:   24,
		UplinkLatency: GigabitLatency, UplinkBandwidth: 10 * GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// PaperClusters returns the three clusters in the order the paper's tables
// report them: chti / grillon / grelon.
func PaperClusters() []*Cluster {
	return []*Cluster{Chti(), Grillon(), Grelon()}
}

// Big512 returns a synthetic 512-node production-scale cluster: sixteen
// 32-node cabinets of 8 GFlop/s nodes with private gigabit links behind a
// 40 Gb/s backbone. It extrapolates the paper's grelon layout (§II-B) to
// the scale where the time-cost strategy's contention-free estimates are
// most accurate (§IV-D) and where scheduler cost, not simulation fidelity,
// becomes the binding constraint.
func Big512() *Cluster {
	return &Cluster{
		Name: "big512", P: 512, SpeedGFlops: 8,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		CabinetSize:   32,
		UplinkLatency: GigabitLatency, UplinkBandwidth: 40 * GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// Big1024 returns a synthetic 1024-node cluster: thirty-two 32-node
// cabinets with the same per-node links and 40 Gb/s backbone as Big512.
func Big1024() *Cluster {
	return &Cluster{
		Name: "big1024", P: 1024, SpeedGFlops: 8,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		CabinetSize:   32,
		UplinkLatency: GigabitLatency, UplinkBandwidth: 40 * GigabitBandwidth,
		WMax: DefaultWMax,
	}
}

// GrelonHet returns a heterogeneous variant of grelon: the last two of
// the five cabinets hold half-speed nodes and sit behind gigabit uplinks
// instead of the 10 Gb/s backbone — a 2-tier mix in the shape of a
// cluster extended with an older generation of hardware. It exercises
// both heterogeneity axes (speed vector + link overrides) at paper scale.
func GrelonHet() *Cluster {
	c := Grelon()
	c.Name = "grelon-het"
	speeds := make([]float64, c.P)
	for i := range speeds {
		speeds[i] = c.SpeedGFlops
		if c.Cabinet(i) >= 3 {
			speeds[i] = c.SpeedGFlops / 2
		}
	}
	c.NodeSpeeds = speeds
	c.LinkBandwidths = make(map[LinkID]float64, 4)
	for cab := 3; cab < c.Cabinets(); cab++ {
		c.LinkBandwidths[c.CabUpLink(cab)] = GigabitBandwidth
		c.LinkBandwidths[c.CabDownLink(cab)] = GigabitBandwidth
	}
	return c
}

// Big512Het returns a heterogeneous variant of big512: the second half of
// the sixteen cabinets holds half-speed (4 GFlop/s) nodes, and the last
// four cabinets reach the backbone over 10 Gb/s uplinks instead of
// 40 Gb/s — production-scale 2-tier heterogeneity.
func Big512Het() *Cluster {
	c := Big512()
	c.Name = "big512-het"
	speeds := make([]float64, c.P)
	for i := range speeds {
		speeds[i] = c.SpeedGFlops
		if c.Cabinet(i) >= 8 {
			speeds[i] = c.SpeedGFlops / 2
		}
	}
	c.NodeSpeeds = speeds
	c.LinkBandwidths = make(map[LinkID]float64, 8)
	for cab := 12; cab < c.Cabinets(); cab++ {
		c.LinkBandwidths[c.CabUpLink(cab)] = 10 * GigabitBandwidth
		c.LinkBandwidths[c.CabDownLink(cab)] = 10 * GigabitBandwidth
	}
	return c
}

// presets maps every preset name to its constructor, in the order Names
// reports them.
var presets = []struct {
	name string
	make func() *Cluster
}{
	{"chti", Chti},
	{"grillon", Grillon},
	{"grelon", Grelon},
	{"grelon-het", GrelonHet},
	{"big512", Big512},
	{"big512-het", Big512Het},
	{"big1024", Big1024},
}

// Names returns the preset cluster names ByName accepts, in display
// order. CLI flag help and error messages should use this instead of
// hard-coding the list.
func Names() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.name
	}
	return out
}

// ByName returns the preset cluster with the given name.
func ByName(name string) (*Cluster, error) {
	for _, p := range presets {
		if p.name == name {
			return p.make(), nil
		}
	}
	return nil, fmt.Errorf("platform: unknown cluster %q (valid presets: %s)", name, strings.Join(Names(), ", "))
}

// Hierarchical reports whether the cluster uses the cabinet topology.
func (c *Cluster) Hierarchical() bool { return c.CabinetSize > 0 }

// Cabinets returns the number of cabinets (1 for flat clusters).
func (c *Cluster) Cabinets() int {
	if !c.Hierarchical() {
		return 1
	}
	return (c.P + c.CabinetSize - 1) / c.CabinetSize
}

// Cabinet returns the cabinet index of a node (0 for flat clusters).
func (c *Cluster) Cabinet(node int) int {
	if !c.Hierarchical() {
		return 0
	}
	return node / c.CabinetSize
}

// NumLinks returns the total number of directed links (node up/down pairs
// plus cabinet uplink pairs).
func (c *Cluster) NumLinks() int {
	n := 2 * c.P
	if c.Hierarchical() {
		n += 2 * c.Cabinets()
	}
	return n
}

// Link ID layout: node up/down pairs first, then cabinet uplink pairs.
// Exported so override maps can be keyed without duplicating the layout.
func (c *Cluster) NodeUpLink(node int) LinkID   { return 2 * node }
func (c *Cluster) NodeDownLink(node int) LinkID { return 2*node + 1 }
func (c *Cluster) CabUpLink(cab int) LinkID     { return 2*c.P + 2*cab }
func (c *Cluster) CabDownLink(cab int) LinkID   { return 2*c.P + 2*cab + 1 }

func (c *Cluster) nodeUp(node int) LinkID   { return c.NodeUpLink(node) }
func (c *Cluster) nodeDown(node int) LinkID { return c.NodeDownLink(node) }
func (c *Cluster) cabUp(cab int) LinkID     { return c.CabUpLink(cab) }
func (c *Cluster) cabDown(cab int) LinkID   { return c.CabDownLink(cab) }

// HeteroSpeeds reports whether the cluster carries a per-node speed
// vector (even an all-equal one — presence, not spread, selects the
// vector-aware cost paths).
func (c *Cluster) HeteroSpeeds() bool { return c.NodeSpeeds != nil }

// HeteroLinks reports whether any link overrides are present.
func (c *Cluster) HeteroLinks() bool {
	return len(c.LinkBandwidths) > 0 || len(c.LinkLatencies) > 0
}

// Hetero reports whether the cluster deviates from uniformity on either
// axis.
func (c *Cluster) Hetero() bool { return c.HeteroSpeeds() || c.HeteroLinks() }

// NodeSpeed returns the compute speed of one node in GFlop/s.
func (c *Cluster) NodeSpeed(node int) float64 {
	if c.NodeSpeeds == nil {
		return c.SpeedGFlops
	}
	return c.NodeSpeeds[node]
}

// MinSpeedOf returns the speed of the slowest node in procs — the speed a
// data-parallel task runs at when spread over that set, since its
// synchronous steps advance at the pace of the slowest member.
func (c *Cluster) MinSpeedOf(procs []int) float64 {
	if c.NodeSpeeds == nil || len(procs) == 0 {
		return c.PlanSpeedGFlops()
	}
	s := c.NodeSpeeds[procs[0]]
	for _, p := range procs[1:] {
		if sp := c.NodeSpeeds[p]; sp < s {
			s = sp
		}
	}
	return s
}

// PlanSpeedGFlops returns the speed the planning phases (allocation,
// priority computation) cost tasks at: the cluster-wide minimum node
// speed. Planning at the conservative bound keeps estimates feasible on
// any processor set the mapper may pick; on a uniform cluster it is
// exactly SpeedGFlops, so homogeneous schedules are untouched.
func (c *Cluster) PlanSpeedGFlops() float64 {
	if c.NodeSpeeds == nil {
		return c.SpeedGFlops
	}
	s := c.NodeSpeeds[0]
	for _, sp := range c.NodeSpeeds[1:] {
		if sp < s {
			s = sp
		}
	}
	return s
}

// LinkCapacity returns the bandwidth in bytes/second of a directed link.
func (c *Cluster) LinkCapacity(l LinkID) float64 {
	if bw, ok := c.LinkBandwidths[l]; ok {
		return bw
	}
	if l < 2*c.P {
		return c.LinkBandwidth
	}
	return c.UplinkBandwidth
}

// LinkDelay returns the latency in seconds of a directed link, consulting
// the override map — the latency counterpart of LinkCapacity, exported so
// estimator-side caches can be built per link id without duplicating the
// override lookup.
func (c *Cluster) LinkDelay(l LinkID) float64 { return c.linkLatency(l) }

// linkLatency returns the latency of a directed link, consulting the
// override map. Only hetero paths call it; uniform routes stay on the
// closed forms.
func (c *Cluster) linkLatency(l LinkID) float64 {
	if lat, ok := c.LinkLatencies[l]; ok {
		return lat
	}
	if l < 2*c.P {
		return c.LinkLatency
	}
	return c.UplinkLatency
}

// LinkCapacities returns the capacity vector indexed by LinkID, ready for
// the max-min solver.
func (c *Cluster) LinkCapacities() []float64 {
	caps := make([]float64, c.NumLinks())
	for l := range caps {
		caps[l] = c.LinkCapacity(l)
	}
	return caps
}

// Route returns the directed links traversed by a flow from node src to
// node dst and the one-way latency of the route (sum of link latencies).
// A self-route (src == dst) is empty with zero latency: intra-node copies
// are free, which implements the paper's "no redistribution cost on the
// same processor" assumption at the flow level.
func (c *Cluster) Route(src, dst int) (links []LinkID, latency float64) {
	return c.AppendRoute(nil, src, dst)
}

// AppendRoute appends the route's links to buf and returns the extended
// slice with the one-way latency — the amortized-allocation companion of
// Route for replay loops that start thousands of flows (callers keep the
// links in an arena instead of one slice allocation per flow). Routes have
// at most four links.
func (c *Cluster) AppendRoute(buf []LinkID, src, dst int) (links []LinkID, latency float64) {
	if src == dst {
		return buf, 0
	}
	lat := c.RouteLatency(src, dst)
	if !c.Hierarchical() || c.Cabinet(src) == c.Cabinet(dst) {
		return append(buf, c.nodeUp(src), c.nodeDown(dst)), lat
	}
	return append(buf,
		c.nodeUp(src),
		c.cabUp(c.Cabinet(src)),
		c.cabDown(c.Cabinet(dst)),
		c.nodeDown(dst),
	), lat
}

// RouteLatency returns the one-way latency of the route from src to dst
// without materializing the link list — the allocation-free companion of
// Route for hot paths that only need the latency.
func (c *Cluster) RouteLatency(src, dst int) float64 {
	if src == dst {
		return 0
	}
	if len(c.LinkLatencies) > 0 {
		// Summed pairwise — (up+down) + (cabUp+cabDown) — so an all-equal
		// override map reproduces the closed forms below bit-exactly
		// (x+x ≡ 2*x in IEEE arithmetic).
		lat := c.linkLatency(c.NodeUpLink(src)) + c.linkLatency(c.NodeDownLink(dst))
		if c.Hierarchical() && c.Cabinet(src) != c.Cabinet(dst) {
			lat += c.linkLatency(c.CabUpLink(c.Cabinet(src))) + c.linkLatency(c.CabDownLink(c.Cabinet(dst)))
		}
		return lat
	}
	if !c.Hierarchical() || c.Cabinet(src) == c.Cabinet(dst) {
		return 2 * c.LinkLatency
	}
	return 2*c.LinkLatency + 2*c.UplinkLatency
}

// RTT returns the round-trip time between two nodes: twice the sum of the
// latencies of the links on the (symmetric) route, as in SimGrid.
func (c *Cluster) RTT(src, dst int) float64 {
	return 2 * c.RouteLatency(src, dst)
}

// EffectiveBandwidth returns the empirical per-flow bandwidth
// β' = min(β, WMax/RTT) between two nodes, where β is the narrowest link on
// the route. It is used both as the per-flow rate cap in the simulator and
// by the schedulers' contention-free redistribution estimates.
func (c *Cluster) EffectiveBandwidth(src, dst int) float64 {
	if src == dst {
		return 0 // self-flow: instantaneous, no bandwidth meaning
	}
	var beta float64
	if len(c.LinkBandwidths) > 0 {
		// Narrowest link on the route. For an all-equal override map the
		// running min visits the same values the closed form compares, so
		// the result is bit-identical to the uniform path.
		beta = c.LinkCapacity(c.NodeUpLink(src))
		if bw := c.LinkCapacity(c.NodeDownLink(dst)); bw < beta {
			beta = bw
		}
		if c.Hierarchical() && c.Cabinet(src) != c.Cabinet(dst) {
			if bw := c.LinkCapacity(c.CabUpLink(c.Cabinet(src))); bw < beta {
				beta = bw
			}
			if bw := c.LinkCapacity(c.CabDownLink(c.Cabinet(dst))); bw < beta {
				beta = bw
			}
		}
	} else {
		beta = c.LinkBandwidth
		if c.Hierarchical() && c.Cabinet(src) != c.Cabinet(dst) && c.UplinkBandwidth < beta {
			beta = c.UplinkBandwidth
		}
	}
	if rtt := c.RTT(src, dst); rtt > 0 {
		if cap := c.WMax / rtt; cap < beta {
			return cap
		}
	}
	return beta
}

// Validate checks the cluster description for consistency.
func (c *Cluster) Validate() error {
	switch {
	case c.P <= 0:
		return fmt.Errorf("platform %s: P = %d, must be positive", c.Name, c.P)
	case c.SpeedGFlops <= 0:
		return fmt.Errorf("platform %s: speed = %g GFlop/s, must be positive", c.Name, c.SpeedGFlops)
	case c.LinkBandwidth <= 0 || c.LinkLatency < 0:
		return fmt.Errorf("platform %s: invalid private link (β=%g, λ=%g)", c.Name, c.LinkBandwidth, c.LinkLatency)
	case c.Hierarchical() && (c.UplinkBandwidth <= 0 || c.UplinkLatency < 0):
		return fmt.Errorf("platform %s: invalid cabinet uplink (β=%g, λ=%g)", c.Name, c.UplinkBandwidth, c.UplinkLatency)
	case c.WMax <= 0:
		return fmt.Errorf("platform %s: WMax = %g, must be positive", c.Name, c.WMax)
	}
	if c.NodeSpeeds != nil {
		if len(c.NodeSpeeds) != c.P {
			return fmt.Errorf("platform %s: speed vector has %d entries, want P = %d", c.Name, len(c.NodeSpeeds), c.P)
		}
		for i, s := range c.NodeSpeeds {
			if !(s > 0) || math.IsInf(s, 0) { // !(s>0) also catches NaN
				return fmt.Errorf("platform %s: node %d speed = %g GFlop/s, must be positive and finite", c.Name, i, s)
			}
		}
	}
	for l, bw := range c.LinkBandwidths {
		if l < 0 || l >= c.NumLinks() {
			return fmt.Errorf("platform %s: bandwidth override for link %d outside [0, %d)", c.Name, l, c.NumLinks())
		}
		if !(bw > 0) || math.IsInf(bw, 0) {
			return fmt.Errorf("platform %s: bandwidth override for link %d = %g B/s, must be positive and finite", c.Name, l, bw)
		}
	}
	for l, lat := range c.LinkLatencies {
		if l < 0 || l >= c.NumLinks() {
			return fmt.Errorf("platform %s: latency override for link %d outside [0, %d)", c.Name, l, c.NumLinks())
		}
		if !(lat >= 0) || math.IsInf(lat, 0) {
			return fmt.Errorf("platform %s: latency override for link %d = %g s, must be non-negative and finite", c.Name, l, lat)
		}
	}
	return nil
}

// Equal reports whether two cluster descriptions are structurally
// identical: same scalar parameters, same speed vector, same link
// overrides. Identical descriptions produce identical estimates and so
// identical schedules, which is what context pooling keys on. (Cluster
// stopped being ==-comparable when it gained vector fields.)
func Equal(a, b *Cluster) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	return a.Name == b.Name && a.P == b.P && a.SpeedGFlops == b.SpeedGFlops &&
		a.LinkLatency == b.LinkLatency && a.LinkBandwidth == b.LinkBandwidth &&
		a.CabinetSize == b.CabinetSize &&
		a.UplinkLatency == b.UplinkLatency && a.UplinkBandwidth == b.UplinkBandwidth &&
		a.WMax == b.WMax &&
		slices.Equal(a.NodeSpeeds, b.NodeSpeeds) &&
		maps.Equal(a.LinkBandwidths, b.LinkBandwidths) &&
		maps.Equal(a.LinkLatencies, b.LinkLatencies)
}
