package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperPresetsTableII(t *testing.T) {
	cases := []struct {
		c     *Cluster
		p     int
		speed float64
	}{
		{Chti(), 20, 4.311},
		{Grillon(), 47, 3.379},
		{Grelon(), 120, 3.185},
	}
	for _, tc := range cases {
		if tc.c.P != tc.p || tc.c.SpeedGFlops != tc.speed {
			t.Errorf("%s: got (%d, %g), want (%d, %g)",
				tc.c.Name, tc.c.P, tc.c.SpeedGFlops, tc.p, tc.speed)
		}
		if err := tc.c.Validate(); err != nil {
			t.Errorf("%s: %v", tc.c.Name, err)
		}
	}
	if len(PaperClusters()) != 3 {
		t.Error("PaperClusters should return the three Table II clusters")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"chti", "grillon", "grelon", "big512", "big1024"} {
		c, err := ByName(name)
		if err != nil || c.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should reject unknown clusters")
	}
}

func TestBigPresets(t *testing.T) {
	cases := []struct {
		c       *Cluster
		p, cabs int
	}{
		{Big512(), 512, 16},
		{Big1024(), 1024, 32},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); err != nil {
			t.Errorf("%s: %v", tc.c.Name, err)
		}
		if tc.c.P != tc.p {
			t.Errorf("%s: P = %d, want %d", tc.c.Name, tc.c.P, tc.p)
		}
		if !tc.c.Hierarchical() || tc.c.Cabinets() != tc.cabs {
			t.Errorf("%s: %d cabinets, want %d", tc.c.Name, tc.c.Cabinets(), tc.cabs)
		}
		// Cross-cabinet routes must traverse the backbone uplinks.
		links, _ := tc.c.Route(0, tc.c.P-1)
		if len(links) != 4 {
			t.Errorf("%s: cross-cabinet route has %d links, want 4", tc.c.Name, len(links))
		}
		if got := tc.c.LinkCapacity(links[1]); got != 40*GigabitBandwidth {
			t.Errorf("%s: uplink capacity = %g, want 40 Gb/s", tc.c.Name, got)
		}
	}
}

func TestGrelonCabinets(t *testing.T) {
	g := Grelon()
	if !g.Hierarchical() {
		t.Fatal("grelon must be hierarchical")
	}
	if got := g.Cabinets(); got != 5 {
		t.Errorf("cabinets = %d, want 5", got)
	}
	if g.Cabinet(0) != 0 || g.Cabinet(23) != 0 || g.Cabinet(24) != 1 || g.Cabinet(119) != 4 {
		t.Error("cabinet boundaries wrong")
	}
}

func TestFlatRoute(t *testing.T) {
	c := Grillon()
	links, lat := c.Route(3, 7)
	if len(links) != 2 {
		t.Fatalf("flat route has %d links, want 2", len(links))
	}
	if links[0] != 6 || links[1] != 15 { // up(3)=6, down(7)=15
		t.Errorf("route links = %v, want [6 15]", links)
	}
	if math.Abs(lat-200e-6) > 1e-12 {
		t.Errorf("latency = %g, want 200µs", lat)
	}
	if rtt := c.RTT(3, 7); math.Abs(rtt-400e-6) > 1e-12 {
		t.Errorf("RTT = %g, want 400µs", rtt)
	}
}

func TestSelfRoute(t *testing.T) {
	c := Chti()
	links, lat := c.Route(5, 5)
	if len(links) != 0 || lat != 0 {
		t.Errorf("self route = %v, %g; want empty, 0", links, lat)
	}
}

func TestHierarchicalRoute(t *testing.T) {
	g := Grelon()
	// same cabinet: 2 links
	links, lat := g.Route(0, 10)
	if len(links) != 2 || math.Abs(lat-200e-6) > 1e-12 {
		t.Errorf("intra-cabinet: %d links, lat %g", len(links), lat)
	}
	// cross cabinet: 4 links
	links, lat = g.Route(0, 30)
	if len(links) != 4 {
		t.Fatalf("cross-cabinet route has %d links, want 4", len(links))
	}
	if math.Abs(lat-400e-6) > 1e-12 {
		t.Errorf("cross-cabinet latency = %g, want 400µs", lat)
	}
	// uplink capacity differs from node links
	if got := g.LinkCapacity(links[1]); got != 10*GigabitBandwidth {
		t.Errorf("uplink capacity = %g, want 10 Gb/s", got)
	}
	if got := g.LinkCapacity(links[0]); got != GigabitBandwidth {
		t.Errorf("node link capacity = %g, want 1 Gb/s", got)
	}
}

func TestEffectiveBandwidthCap(t *testing.T) {
	c := Grillon()
	// RTT flat = 400µs; WMax/RTT with 4MiB = 10.5 GB/s >> β ⇒ β' = β.
	if got := c.EffectiveBandwidth(0, 1); got != GigabitBandwidth {
		t.Errorf("β' = %g, want β = %g", got, GigabitBandwidth)
	}
	// Shrink WMax so the window binds: WMax = 20000 B, RTT = 400µs ⇒ 50 MB/s.
	c.WMax = 20000
	want := 20000 / 400e-6
	if got := c.EffectiveBandwidth(0, 1); math.Abs(got-want) > 1e-6 {
		t.Errorf("β' = %g, want %g", got, want)
	}
}

func TestLinkCapacitiesVector(t *testing.T) {
	g := Grelon()
	caps := g.LinkCapacities()
	if len(caps) != g.NumLinks() {
		t.Fatalf("len(caps) = %d, want %d", len(caps), g.NumLinks())
	}
	if g.NumLinks() != 2*120+2*5 {
		t.Errorf("NumLinks = %d, want 250", g.NumLinks())
	}
	if caps[0] != GigabitBandwidth || caps[len(caps)-1] != 10*GigabitBandwidth {
		t.Error("capacity layout wrong")
	}
}

// Property: routes are symmetric in length and latency, and all link IDs
// are in range.
func TestPropertyRouteSymmetry(t *testing.T) {
	g := Grelon()
	f := func(a, b uint8) bool {
		src := int(a) % g.P
		dst := int(b) % g.P
		l1, lat1 := g.Route(src, dst)
		l2, lat2 := g.Route(dst, src)
		if len(l1) != len(l2) || math.Abs(lat1-lat2) > 1e-15 {
			return false
		}
		for _, l := range l1 {
			if l < 0 || l >= g.NumLinks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadClusters(t *testing.T) {
	bad := []*Cluster{
		{Name: "p0", P: 0, SpeedGFlops: 1, LinkBandwidth: 1, WMax: 1},
		{Name: "speed", P: 1, SpeedGFlops: 0, LinkBandwidth: 1, WMax: 1},
		{Name: "link", P: 1, SpeedGFlops: 1, LinkBandwidth: 0, WMax: 1},
		{Name: "wmax", P: 1, SpeedGFlops: 1, LinkBandwidth: 1, WMax: 0},
		{Name: "uplink", P: 30, SpeedGFlops: 1, LinkBandwidth: 1, WMax: 1, CabinetSize: 10},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("cluster %q should fail validation", c.Name)
		}
	}
}

// Property: the closed-form RouteLatency / EffectiveBandwidth fast paths
// agree with walking the materialized route, on flat and hierarchical
// clusters (including a degenerate 1-node-per-cabinet layout).
func TestPropertyRouteFastPaths(t *testing.T) {
	tiny := &Cluster{Name: "tiny-cabs", P: 8, SpeedGFlops: 1,
		LinkLatency: GigabitLatency, LinkBandwidth: GigabitBandwidth,
		CabinetSize:   1,
		UplinkLatency: 3 * GigabitLatency, UplinkBandwidth: GigabitBandwidth / 2,
		WMax: DefaultWMax}
	for _, c := range []*Cluster{Grillon(), Grelon(), Big1024(), tiny} {
		f := func(a, b uint16) bool {
			src := int(a) % c.P
			dst := int(b) % c.P
			links, lat := c.Route(src, dst)
			if c.RouteLatency(src, dst) != lat {
				return false
			}
			if len(links) == 0 {
				return c.EffectiveBandwidth(src, dst) == 0
			}
			beta := c.LinkCapacity(links[0])
			for _, l := range links[1:] {
				if bw := c.LinkCapacity(l); bw < beta {
					beta = bw
				}
			}
			if rtt := 2 * lat; rtt > 0 {
				if cap := c.WMax / rtt; cap < beta {
					beta = cap
				}
			}
			return c.EffectiveBandwidth(src, dst) == beta
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}
