package platform_test

import (
	"fmt"

	"repro/internal/platform"
)

// ExampleCluster_Route shows the two route shapes of the cluster model:
// flat clusters traverse two private links; grelon's hierarchical network
// adds the cabinet uplinks for cross-cabinet flows.
func ExampleCluster_Route() {
	g := platform.Grelon()
	intra, latIntra := g.Route(0, 5)  // same cabinet
	inter, latInter := g.Route(0, 30) // cabinet 0 -> cabinet 1
	fmt.Printf("intra-cabinet: %d links, %.0f µs\n", len(intra), latIntra*1e6)
	fmt.Printf("cross-cabinet: %d links, %.0f µs\n", len(inter), latInter*1e6)
	// Output:
	// intra-cabinet: 2 links, 200 µs
	// cross-cabinet: 4 links, 400 µs
}
