package platform

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNamesListsAllPresets(t *testing.T) {
	want := []string{"chti", "grillon", "grelon", "grelon-het", "big512", "big512-het", "big1024"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range got {
		c, err := ByName(name)
		if err != nil || c.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestByNameErrorListsPresets(t *testing.T) {
	_, err := ByName("gre1on")
	if err == nil {
		t.Fatal("ByName should reject unknown clusters")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention preset %q", err, name)
		}
	}
}

func TestHeteroPresets(t *testing.T) {
	cases := []struct {
		c         *Cluster
		slowCab   int     // first slow cabinet
		throttCab int     // first throttled-uplink cabinet
		slowBW    float64 // throttled uplink bandwidth
	}{
		{GrelonHet(), 3, 3, GigabitBandwidth},
		{Big512Het(), 8, 12, 10 * GigabitBandwidth},
	}
	for _, tc := range cases {
		c := tc.c
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if !c.HeteroSpeeds() || !c.HeteroLinks() || !c.Hetero() {
			t.Errorf("%s: hetero flags = (%v, %v, %v), want all true",
				c.Name, c.HeteroSpeeds(), c.HeteroLinks(), c.Hetero())
		}
		// 2-tier speed mix: full speed before the slow cabinets, half after.
		if got := c.NodeSpeed(0); got != c.SpeedGFlops {
			t.Errorf("%s: node 0 speed = %g, want %g", c.Name, got, c.SpeedGFlops)
		}
		if got := c.NodeSpeed(c.P - 1); got != c.SpeedGFlops/2 {
			t.Errorf("%s: node %d speed = %g, want %g", c.Name, c.P-1, got, c.SpeedGFlops/2)
		}
		firstSlow := tc.slowCab * c.CabinetSize
		if c.NodeSpeed(firstSlow-1) != c.SpeedGFlops || c.NodeSpeed(firstSlow) != c.SpeedGFlops/2 {
			t.Errorf("%s: speed tier boundary not at node %d", c.Name, firstSlow)
		}
		// Planning speed is the conservative (slow-tier) bound.
		if got := c.PlanSpeedGFlops(); got != c.SpeedGFlops/2 {
			t.Errorf("%s: PlanSpeedGFlops = %g, want %g", c.Name, got, c.SpeedGFlops/2)
		}
		// Throttled uplinks on the listed cabinets, class figure elsewhere.
		if got := c.LinkCapacity(c.CabUpLink(0)); got != c.UplinkBandwidth {
			t.Errorf("%s: cabinet 0 uplink = %g, want %g", c.Name, got, c.UplinkBandwidth)
		}
		for cab := tc.throttCab; cab < c.Cabinets(); cab++ {
			if got := c.LinkCapacity(c.CabUpLink(cab)); got != tc.slowBW {
				t.Errorf("%s: cabinet %d uplink = %g, want %g", c.Name, cab, got, tc.slowBW)
			}
			if got := c.LinkCapacity(c.CabDownLink(cab)); got != tc.slowBW {
				t.Errorf("%s: cabinet %d downlink = %g, want %g", c.Name, cab, got, tc.slowBW)
			}
		}
	}
}

func TestHeteroPresetEffectiveBandwidth(t *testing.T) {
	c := GrelonHet()
	// Route into a throttled cabinet narrows to the 1 Gb/s uplink — same
	// figure as the node links here, so the route is still gigabit-bound…
	if got := c.EffectiveBandwidth(0, c.P-1); got != GigabitBandwidth {
		t.Errorf("into throttled cabinet: β' = %g, want %g", got, GigabitBandwidth)
	}
	// …while a fast-tier cross-cabinet route keeps its node-link bound.
	if got := c.EffectiveBandwidth(0, 2*c.CabinetSize); got != GigabitBandwidth {
		t.Errorf("fast-tier cross-cabinet: β' = %g, want %g", got, GigabitBandwidth)
	}
	// Widen the node links so the throttled uplink becomes the bottleneck.
	for i := 0; i < c.P; i++ {
		c.LinkBandwidths[c.NodeUpLink(i)] = 10 * GigabitBandwidth
		c.LinkBandwidths[c.NodeDownLink(i)] = 10 * GigabitBandwidth
	}
	if got := c.EffectiveBandwidth(0, c.P-1); got != GigabitBandwidth {
		t.Errorf("throttled uplink should bind: β' = %g, want %g", got, GigabitBandwidth)
	}
	if got := c.EffectiveBandwidth(0, 2*c.CabinetSize); got != 10*GigabitBandwidth {
		t.Errorf("fast-tier route should widen: β' = %g, want %g", got, 10*GigabitBandwidth)
	}
}

func TestMinSpeedOf(t *testing.T) {
	uni := Grelon()
	if got := uni.MinSpeedOf([]int{0, 50, 119}); got != uni.SpeedGFlops {
		t.Errorf("uniform MinSpeedOf = %g, want %g", got, uni.SpeedGFlops)
	}
	het := GrelonHet()
	if got := het.MinSpeedOf(nil); got != het.PlanSpeedGFlops() {
		t.Errorf("empty set MinSpeedOf = %g, want planning speed %g", got, het.PlanSpeedGFlops())
	}
	if got := het.MinSpeedOf([]int{0, 1, 2}); got != het.SpeedGFlops {
		t.Errorf("fast-tier set MinSpeedOf = %g, want %g", got, het.SpeedGFlops)
	}
	if got := het.MinSpeedOf([]int{0, het.P - 1}); got != het.SpeedGFlops/2 {
		t.Errorf("mixed set MinSpeedOf = %g, want slowest member %g", got, het.SpeedGFlops/2)
	}
}

func TestRouteLatencyOverrides(t *testing.T) {
	c := Grelon()
	c.LinkLatencies = map[LinkID]float64{
		c.NodeUpLink(0):   5 * GigabitLatency,
		c.CabDownLink(4):  7 * GigabitLatency,
		c.NodeDownLink(1): 0, // a zero-latency override is legal
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intra-cabinet from the overridden node: 5λ + λ.
	if got, want := c.RouteLatency(0, 2), 6*GigabitLatency; math.Abs(got-want) > 1e-15 {
		t.Errorf("intra route latency = %g, want %g", got, want)
	}
	// Cross-cabinet into cabinet 4: 5λ (up) + λ (cabUp) + 7λ (cabDown) + λ (down).
	if got, want := c.RouteLatency(0, c.P-1), 14*GigabitLatency; math.Abs(got-want) > 1e-15 {
		t.Errorf("cross route latency = %g, want %g", got, want)
	}
	// Zero-latency down link: λ (up) + 0.
	if got, want := c.RouteLatency(2, 1), GigabitLatency; math.Abs(got-want) > 1e-15 {
		t.Errorf("zero-override route latency = %g, want %g", got, want)
	}
}

func TestValidateRejectsBadHetero(t *testing.T) {
	base := func() *Cluster { return Grelon() }
	cases := []struct {
		name   string
		mutate func(*Cluster)
	}{
		{"short speed vector", func(c *Cluster) { c.NodeSpeeds = []float64{1, 2, 3} }},
		{"long speed vector", func(c *Cluster) { c.NodeSpeeds = make([]float64, c.P+1) }},
		{"zero speed", func(c *Cluster) {
			c.NodeSpeeds = uniformSpeeds(c)
			c.NodeSpeeds[5] = 0
		}},
		{"negative speed", func(c *Cluster) {
			c.NodeSpeeds = uniformSpeeds(c)
			c.NodeSpeeds[0] = -1
		}},
		{"NaN speed", func(c *Cluster) {
			c.NodeSpeeds = uniformSpeeds(c)
			c.NodeSpeeds[c.P-1] = math.NaN()
		}},
		{"Inf speed", func(c *Cluster) {
			c.NodeSpeeds = uniformSpeeds(c)
			c.NodeSpeeds[1] = math.Inf(1)
		}},
		{"bandwidth key out of range", func(c *Cluster) {
			c.LinkBandwidths = map[LinkID]float64{c.NumLinks(): GigabitBandwidth}
		}},
		{"negative bandwidth key", func(c *Cluster) {
			c.LinkBandwidths = map[LinkID]float64{-1: GigabitBandwidth}
		}},
		{"zero bandwidth", func(c *Cluster) {
			c.LinkBandwidths = map[LinkID]float64{0: 0}
		}},
		{"NaN bandwidth", func(c *Cluster) {
			c.LinkBandwidths = map[LinkID]float64{0: math.NaN()}
		}},
		{"Inf bandwidth", func(c *Cluster) {
			c.LinkBandwidths = map[LinkID]float64{0: math.Inf(1)}
		}},
		{"latency key out of range", func(c *Cluster) {
			c.LinkLatencies = map[LinkID]float64{c.NumLinks() + 3: GigabitLatency}
		}},
		{"negative latency", func(c *Cluster) {
			c.LinkLatencies = map[LinkID]float64{0: -1e-6}
		}},
		{"NaN latency", func(c *Cluster) {
			c.LinkLatencies = map[LinkID]float64{0: math.NaN()}
		}},
		{"Inf latency", func(c *Cluster) {
			c.LinkLatencies = map[LinkID]float64{0: math.Inf(1)}
		}},
	}
	for _, tc := range cases {
		c := base()
		tc.mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func uniformSpeeds(c *Cluster) []float64 {
	s := make([]float64, c.P)
	for i := range s {
		s[i] = c.SpeedGFlops
	}
	return s
}

func TestEqual(t *testing.T) {
	if !Equal(GrelonHet(), GrelonHet()) {
		t.Error("two GrelonHet() instances must compare equal")
	}
	if Equal(Grelon(), GrelonHet()) {
		t.Error("grelon and grelon-het must differ")
	}
	a, b := GrelonHet(), GrelonHet()
	b.NodeSpeeds[0] *= 2
	if Equal(a, b) {
		t.Error("differing speed vectors must not compare equal")
	}
	c, d := GrelonHet(), GrelonHet()
	d.LinkBandwidths[d.CabUpLink(0)] = GigabitBandwidth
	if Equal(c, d) {
		t.Error("differing link overrides must not compare equal")
	}
	if Equal(Grelon(), nil) || !Equal((*Cluster)(nil), nil) {
		t.Error("nil handling wrong")
	}
}

// Property: on heterogeneous clusters too, the RouteLatency /
// EffectiveBandwidth shortcuts agree with walking the materialized route —
// the same invariant TestPropertyRouteFastPaths pins for uniform presets.
func TestPropertyHeteroRouteFastPaths(t *testing.T) {
	for _, c := range []*Cluster{GrelonHet(), Big512Het()} {
		f := func(a, b uint16) bool {
			src := int(a) % c.P
			dst := int(b) % c.P
			links, lat := c.Route(src, dst)
			if c.RouteLatency(src, dst) != lat {
				return false
			}
			if len(links) == 0 {
				return c.EffectiveBandwidth(src, dst) == 0
			}
			beta := c.LinkCapacity(links[0])
			for _, l := range links[1:] {
				if bw := c.LinkCapacity(l); bw < beta {
					beta = bw
				}
			}
			if rtt := 2 * lat; rtt > 0 {
				if cap := c.WMax / rtt; cap < beta {
					beta = cap
				}
			}
			return c.EffectiveBandwidth(src, dst) == beta
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}
