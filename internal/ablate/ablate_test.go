package ablate

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/redist"
)

// microOptions is a seconds-scale ablation: one tiny class on chti, the
// naive algorithms, and three configurations exercising the delta
// baseline, a knob bundle, and the forced-replay scratch path.
func microOptions() Options {
	scens := []exp.Scenario{
		{Kind: exp.Layered, Params: gen.RandomParams{N: 25, Width: 0.5, Density: 0.5, Regularity: 0.8, Jump: 1, Layered: true}},
		{Kind: exp.FFT, K: 4},
	}
	return Options{
		Classes: []Class{{Name: "micro", Cluster: platform.Chti(), Scens: scens}},
		Configs: []Config{Reference(), Fast(), {Name: "scratch128", Knobs: Knobs{Align: redist.AlignHungarian, ScratchThreshold: 128}}},
		Algos:   exp.NaiveAlgos(),
	}
}

func TestRunMicro(t *testing.T) {
	rep, err := Run(microOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 1 {
		t.Fatalf("classes = %d, want 1", len(rep.Classes))
	}
	c := rep.Classes[0]
	if len(c.Configs) != 3 {
		t.Fatalf("configs = %d, want 3", len(c.Configs))
	}
	ref := c.Configs[0]
	if ref.Name != "reference" {
		t.Fatalf("first config = %q, want reference", ref.Name)
	}
	if ref.MaxAbsDeltaPct != 0 || ref.ChangedSchedules != 0 || ref.MeanDeltaPct != 0 {
		t.Errorf("reference deltas must be zero: %+v", ref)
	}
	if ref.Runs != 2*3 {
		t.Errorf("reference runs = %d, want 6", ref.Runs)
	}
	if ref.FreshReplays == 0 || ref.MapP50Ns <= 0 || ref.MapP99Ns < ref.MapP50Ns {
		t.Errorf("reference stats implausible: %+v", ref)
	}
	if ref.Counters.CandEvals == 0 || ref.Counters.MemoProbes == 0 {
		t.Errorf("reference counters empty: %+v", ref.Counters)
	}
	fast := c.Configs[1]
	if fast.MaxAbsDeltaPct > 0.5 {
		t.Errorf("fast profile max |Δ| = %.3f%%, beyond the 0.5%% contract", fast.MaxAbsDeltaPct)
	}
	// The scratch configuration replays at a distinct threshold, so its
	// replays cannot be memo hits from the reference — and the threshold
	// is latency-only, so its makespans must match exactly.
	scratch := c.Configs[2]
	if scratch.FreshReplays == 0 {
		t.Errorf("scratch config reused reference replays; want forced fresh replays")
	}
	if scratch.MaxAbsDeltaPct != 0 || scratch.ChangedSchedules != 0 {
		t.Errorf("scratch threshold changed outcomes: maxΔ %.4f%%, changed %d",
			scratch.MaxAbsDeltaPct, scratch.ChangedSchedules)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(round.Classes) != 1 || round.Classes[0].Configs[1].Name != "fast" {
		t.Errorf("round-tripped report lost structure")
	}
	buf.Reset()
	rep.WriteSummary(&buf)
	if buf.Len() == 0 {
		t.Errorf("summary is empty")
	}
}

// TestRunRejectsMissingReference pins the configs contract: deltas are
// measured against configs[0], which must be the reference.
func TestRunRejectsMissingReference(t *testing.T) {
	o := microOptions()
	o.Configs = []Config{Fast()}
	if _, err := Run(o); err == nil {
		t.Fatal("Run accepted a sweep without the leading reference config")
	}
}

// TestConfigsShape pins the full sweep's invariants without running it.
func TestConfigsShape(t *testing.T) {
	cfgs := Configs()
	if cfgs[0].Name != "reference" {
		t.Errorf("Configs()[0] = %q, want reference", cfgs[0].Name)
	}
	names := map[string]bool{}
	for _, c := range cfgs {
		if names[c.Name] {
			t.Errorf("duplicate config name %q", c.Name)
		}
		names[c.Name] = true
	}
	for _, want := range []string{"fast", "align-greedy", "auto-cap16", "eps0.05", "scratch128"} {
		if !names[want] {
			t.Errorf("Configs() missing %q", want)
		}
	}
	for _, smoke := range []bool{false, true} {
		for _, cl := range Classes(smoke) {
			if len(cl.Scens) == 0 {
				t.Errorf("class %s (smoke=%v) has no scenarios", cl.Name, smoke)
			}
			if cl.Cluster == nil {
				t.Errorf("class %s (smoke=%v) has no cluster", cl.Name, smoke)
			}
		}
	}
}
