// Package ablate is the exactness-renegotiation harness: it runs every
// scenario class (paper-scale grelon, the big512/big1024 production
// scales, and both heterogeneous presets) under all five strategy ×
// allocator combinations while sweeping the pipeline's approximation
// knobs — the receiver rank-alignment mode and its AlignAuto exact cap,
// the estimator memo's staleness bound ε, and the flownet scratch-solve
// threshold — and reports, per knob configuration, the makespan delta
// against the exact reference, mapping-latency percentiles, replay
// latency where the configuration forces fresh replays, and the summed
// engine counters from internal/obs.
//
// The report is the evidence base for rats.ProfileFast: the shipped fast
// profile pins exactly the knob values the ablation shows to be
// schedule-preserving (zero changed schedules, 0.00% makespan delta)
// while reducing latency. Re-run it with `expdriver -ablate` whenever a
// knob's semantics change; `-ablate -smoke` is the CI-sized subset.
package ablate

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exp"
	"repro/internal/moldable"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/redist"
	"repro/internal/simdag"
)

// Knobs is one point in the approximation-knob space. The zero value is
// NOT the reference configuration (AlignHungarian happens to be the zero
// AlignMode, but use Reference() for intent).
type Knobs struct {
	// Align is the receiver rank-order alignment mode.
	Align redist.AlignMode
	// AlignCap bounds AlignAuto's exact Hungarian assignment
	// (0 = redist.AlignAutoExactCap). Ignored by explicit modes.
	AlignCap int
	// MemoEps is the estimator memo staleness bound (0 = exact keying).
	MemoEps float64
	// ScratchThreshold is the flownet scratch-solve cutoff
	// (0 = flownet.DefaultScratchThreshold). Latency-only: every solve
	// regime is exact, so replays agree bit-for-bit at any value.
	ScratchThreshold int
}

// apply overlays the knobs on a mapping configuration.
func (k Knobs) apply(o core.Options) core.Options {
	o.Align = k.Align
	o.AlignCap = k.AlignCap
	o.MemoEps = k.MemoEps
	return o
}

// Config is a named knob configuration.
type Config struct {
	Name  string
	Knobs Knobs
}

// Reference returns the exact configuration: Hungarian alignment, exact
// memo keying, default scratch threshold. It is the delta baseline of
// every report and the knob content of rats.ProfileReference.
func Reference() Config {
	return Config{Name: "reference", Knobs: Knobs{Align: redist.AlignHungarian}}
}

// Fast returns the shipped fast-profile configuration (the knob content
// of rats.ProfileFast): AlignAuto under the measured cap, a small memo
// staleness bound, and a raised scratch threshold.
func Fast() Config {
	return Config{Name: "fast", Knobs: Knobs{
		Align:            redist.AlignAuto,
		AlignCap:         core.FastAlignCap,
		MemoEps:          core.FastMemoEps,
		ScratchThreshold: core.FastScratchThreshold,
	}}
}

// Configs enumerates the full knob sweep: the reference, each alignment
// mode in isolation, the AlignAuto cap ladder, the memo staleness ladder
// (on the exact Hungarian base so ε is the only variable), the scratch
// threshold ladder, and the combined fast candidate.
func Configs() []Config {
	h := redist.AlignHungarian
	return []Config{
		Reference(),
		{Name: "align-none", Knobs: Knobs{Align: redist.AlignNone}},
		{Name: "align-greedy", Knobs: Knobs{Align: redist.AlignGreedy}},
		{Name: "auto-cap128", Knobs: Knobs{Align: redist.AlignAuto, AlignCap: 128}},
		{Name: "auto-cap64", Knobs: Knobs{Align: redist.AlignAuto, AlignCap: 64}},
		{Name: "auto-cap32", Knobs: Knobs{Align: redist.AlignAuto, AlignCap: 32}},
		{Name: "auto-cap16", Knobs: Knobs{Align: redist.AlignAuto, AlignCap: 16}},
		{Name: "eps0.05", Knobs: Knobs{Align: h, MemoEps: 0.05}},
		{Name: "eps0.15", Knobs: Knobs{Align: h, MemoEps: 0.15}},
		{Name: "scratch64", Knobs: Knobs{Align: h, ScratchThreshold: 64}},
		{Name: "scratch128", Knobs: Knobs{Align: h, ScratchThreshold: 128}},
		Fast(),
	}
}

// Class pairs a scenario subset with the cluster it runs on.
type Class struct {
	Name    string
	Cluster *platform.Cluster
	Scens   []exp.Scenario
	// Note documents what the class caps away (the big replays cost
	// seconds to minutes each; silent truncation would read as full
	// coverage).
	Note string
}

// pick selects scenarios by index, preserving order.
func pick(scens []exp.Scenario, idx ...int) []exp.Scenario {
	out := make([]exp.Scenario, 0, len(idx))
	for _, i := range idx {
		out = append(out, scens[i])
	}
	return out
}

// Classes enumerates the scenario classes of the ablation. The paper
// class runs on grelon (the hierarchical paper preset — ScalePaper's
// default grillon is flat, which would blind the sweep to the cabinet
// links); the big classes keep one scenario per application shape
// because a single 400-task replay costs ~13 s on this harness's
// reference hardware and the knob deltas stabilize immediately.
func Classes(smoke bool) []Class {
	paper := exp.Scenarios()
	if smoke {
		return []Class{
			{
				Name:    "grelon",
				Cluster: platform.Grelon(),
				Scens:   pick(paper, 0, 474),
				Note:    "smoke: 2 of 557 paper scenarios (one layered, one FFT)",
			},
			{
				Name:    "grelon-het",
				Cluster: platform.GrelonHet(),
				Scens:   pick(exp.ScenariosAt(exp.ScaleGrelonHet), 0, 32),
				Note:    "smoke: 2 of 36 het scenarios (one layered, one FFT)",
			},
		}
	}
	big512 := exp.ScenariosAt(exp.ScaleBig512)
	big512Het := exp.ScenariosAt(exp.ScaleBig512Het)
	big1024 := exp.ScenariosAt(exp.ScaleBig1024)
	return []Class{
		{
			Name:    "grelon",
			Cluster: platform.Grelon(),
			Scens:   exp.Subsample(paper, 79),
			Note:    "8 of 557 paper scenarios (stride 79: covers all four application kinds)",
		},
		{
			Name:    "grelon-het",
			Cluster: platform.GrelonHet(),
			Scens:   append(pick(exp.ScenariosAt(exp.ScaleGrelonHet), 32), exp.Subsample(exp.ScenariosAt(exp.ScaleGrelonHet), 6)...),
			Note:    "7 of 36 het scenarios (stride 6 plus one FFT)",
		},
		{
			Name:    "big512",
			Cluster: platform.Big512(),
			Scens:   pick(big512, 0, 16, 32),
			Note:    "3 of 36 big512 scenarios (layered n=200, irregular n=200, FFT k=32; n=400 randoms dropped — minutes per replay)",
		},
		{
			Name:    "big512-het",
			Cluster: platform.Big512Het(),
			Scens:   pick(big512Het, 0, 16, 32),
			Note:    "3 of 36 big512-het scenarios (same shapes as big512)",
		},
		{
			Name:    "big1024",
			Cluster: platform.Big1024(),
			Scens:   pick(big1024, 32, 33),
			Note:    "2 of 36 big1024 scenarios (FFT k=64 only; n=400/800 randoms dropped — minutes per replay)",
		},
	}
}

// Options configures a Run. Zero values select the full sweep.
type Options struct {
	// Smoke shrinks everything to the CI-sized subset: two paper-scale
	// classes, two scenarios each, the three naive algorithms, and only
	// the reference and fast configurations.
	Smoke bool
	// Configs overrides the knob sweep (nil = Configs(), or
	// {Reference(), Fast()} in smoke mode). The first entry must be the
	// reference — deltas are measured against it.
	Configs []Config
	// Classes overrides the scenario classes (nil = Classes(Smoke)).
	Classes []Class
	// Algos overrides the algorithm set (nil = exp.ExtendedAlgos(), or
	// exp.NaiveAlgos() in smoke mode).
	Algos []exp.AlgoSpec
	// Log, when non-nil, receives one progress line per (class, config).
	Log io.Writer
}

// Report is the machine-readable ablation outcome.
type Report struct {
	Mode    string        `json:"mode"` // "full" or "smoke"
	Classes []ClassReport `json:"classes"`
}

// ClassReport aggregates one scenario class.
type ClassReport struct {
	Class     string         `json:"class"`
	Cluster   string         `json:"cluster"`
	Note      string         `json:"note,omitempty"`
	Scenarios []string       `json:"scenarios"`
	Algos     []string       `json:"algos"`
	Configs   []ConfigReport `json:"configs"`
}

// ConfigReport is one knob configuration's measurements on one class.
// Latencies are wall-clock nanoseconds on the run's hardware; deltas are
// relative to the class's reference configuration.
type ConfigReport struct {
	Name             string  `json:"name"`
	Align            string  `json:"align"`
	AlignCap         int     `json:"align_cap"`
	MemoEps          float64 `json:"memo_eps"`
	ScratchThreshold int     `json:"scratch_threshold"`

	Runs int `json:"runs"` // scenario × algorithm pairs

	MapMeanNs int64 `json:"map_mean_ns"`
	MapP50Ns  int64 `json:"map_p50_ns"`
	MapP99Ns  int64 `json:"map_p99_ns"`
	// MapSpeedup is reference MapMeanNs over this configuration's.
	MapSpeedup float64 `json:"map_speedup_vs_reference"`

	// Replay latency over the replays this configuration actually ran
	// fresh (schedule signatures unseen at its scratch threshold);
	// configurations whose schedules all collapse onto already-replayed
	// signatures report zeros here.
	FreshReplays int   `json:"fresh_replays"`
	ReplayP50Ns  int64 `json:"replay_p50_ns"`
	ReplayP99Ns  int64 `json:"replay_p99_ns"`

	MeanDeltaPct   float64 `json:"mean_makespan_delta_pct"`
	MaxAbsDeltaPct float64 `json:"max_abs_makespan_delta_pct"`
	// ChangedSchedules counts (scenario, algorithm) pairs whose schedule
	// signature diverged from the reference configuration's.
	ChangedSchedules int `json:"changed_schedules"`

	// Counters sums the mapping counters of every run plus the replay
	// counters of the fresh replays.
	Counters obs.Counters `json:"counters"`
}

// scenState caches the per-scenario inputs shared by every configuration:
// the graph, the cost oracle, and one allocation per algorithm spec.
type scenState struct {
	g      *dag.Graph
	costs  *moldable.Costs
	allocs [][]int
}

// signature serializes the replay-relevant parts of a schedule, mirroring
// the exp runner's memo key: identical signatures replay identically.
func signature(s *core.Schedule) string {
	var b []byte
	for _, procs := range s.Procs {
		b = binary.AppendVarint(b, int64(len(procs)))
		for _, p := range procs {
			b = binary.AppendVarint(b, int64(p))
		}
	}
	for _, t := range s.Order {
		b = binary.AppendVarint(b, int64(t))
	}
	return string(b)
}

// percentile returns the p-th percentile (nearest-rank) of sorted ns.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func stats(ns []int64) (mean, p50, p99 int64) {
	if len(ns) == 0 {
		return 0, 0, 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	return sum / int64(len(sorted)), percentile(sorted, 50), percentile(sorted, 99)
}

// Run executes the ablation and returns the report. Mapping runs are
// serial on one pooled MapContext per class (latency measurements need an
// unloaded core more than the sweep needs wall-clock); replays are
// memoized per (scenario, scratch threshold, schedule signature), so knob
// configurations that do not change schedules pay no replay cost beyond
// the reference — except the scratch-threshold configurations, whose
// distinct threshold forces fresh replays on purpose: replay latency at
// that threshold is exactly what they measure.
func Run(opts Options) (*Report, error) {
	classes := opts.Classes
	if classes == nil {
		classes = Classes(opts.Smoke)
	}
	configs := opts.Configs
	if configs == nil {
		if opts.Smoke {
			configs = []Config{Reference(), Fast()}
		} else {
			configs = Configs()
		}
	}
	if len(configs) == 0 || configs[0].Name != Reference().Name {
		return nil, fmt.Errorf("ablate: configs must start with the reference (got %d configs)", len(configs))
	}
	algos := opts.Algos
	if algos == nil {
		if opts.Smoke {
			algos = exp.NaiveAlgos()
		} else {
			algos = exp.ExtendedAlgos()
		}
	}
	logf := func(format string, a ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format, a...)
		}
	}

	rep := &Report{Mode: "full"}
	if opts.Smoke {
		rep.Mode = "smoke"
	}
	for _, class := range classes {
		cl := class.Cluster
		cr := ClassReport{Class: class.Name, Cluster: cl.Name, Note: class.Note}
		for _, s := range class.Scens {
			cr.Scenarios = append(cr.Scenarios, s.Name())
		}
		for _, a := range algos {
			cr.Algos = append(cr.Algos, a.Name)
		}

		// Shared per-scenario inputs and one warm-up pass so the first
		// timed configuration does not absorb the context's cold-start
		// allocations.
		mc := core.NewMapContext(cl)
		states := make([]scenState, len(class.Scens))
		for si, sc := range class.Scens {
			g := sc.Graph()
			costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
			st := scenState{g: g, costs: costs, allocs: make([][]int, len(algos))}
			shared := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
			for ai, spec := range algos {
				if spec.Alloc != nil {
					st.allocs[ai] = alloc.Compute(g, costs, cl, *spec.Alloc)
				} else {
					st.allocs[ai] = shared
				}
				mc.Map(g, costs, st.allocs[ai], spec.Map) // warm-up
			}
			states[si] = st
		}

		type replayRes struct {
			makespan float64
			counters obs.Counters
		}
		replays := map[string]replayRes{}
		refMakespan := make([][]float64, len(algos))
		refSig := make([][]string, len(algos))
		for ai := range algos {
			refMakespan[ai] = make([]float64, len(class.Scens))
			refSig[ai] = make([]string, len(class.Scens))
		}

		var refMapMean int64
		for ci, cfg := range configs {
			start := time.Now()
			var (
				mapNs, replayNs []int64
				counters        obs.Counters
				deltaSum        float64
				maxAbsDelta     float64
				changed, runs   int
				fresh           int
			)
			for si := range class.Scens {
				st := &states[si]
				for ai, spec := range algos {
					mo := cfg.Knobs.apply(spec.Map)
					t0 := time.Now()
					sched := mc.Map(st.g, st.costs, st.allocs[ai], mo)
					mapNs = append(mapNs, time.Since(t0).Nanoseconds())
					counters.Add(&sched.Counters)
					runs++

					sig := signature(sched)
					key := fmt.Sprintf("%d|%d|%s", si, cfg.Knobs.ScratchThreshold, sig)
					res, ok := replays[key]
					if !ok {
						t1 := time.Now()
						out, err := simdag.ExecuteOpts(st.g, st.costs, cl, sched, simdag.Options{
							Solver:           core.FlowSolverNet,
							ScratchThreshold: cfg.Knobs.ScratchThreshold,
						})
						if err != nil {
							return nil, fmt.Errorf("ablate %s/%s/%s: %w", class.Name, cfg.Name, spec.Name, err)
						}
						replayNs = append(replayNs, time.Since(t1).Nanoseconds())
						res = replayRes{makespan: out.Makespan, counters: out.Counters}
						replays[key] = res
						counters.Add(&res.counters)
						fresh++
					}
					if ci == 0 {
						refMakespan[ai][si] = res.makespan
						refSig[ai][si] = sig
					} else {
						ref := refMakespan[ai][si]
						if ref > 0 {
							d := 100 * (res.makespan - ref) / ref
							deltaSum += d
							if math.Abs(d) > maxAbsDelta {
								maxAbsDelta = math.Abs(d)
							}
						}
						if sig != refSig[ai][si] {
							changed++
						}
					}
				}
			}

			mapMean, mapP50, mapP99 := stats(mapNs)
			_, repP50, repP99 := stats(replayNs)
			if ci == 0 {
				refMapMean = mapMean
			}
			speedup := 0.0
			if mapMean > 0 {
				speedup = float64(refMapMean) / float64(mapMean)
			}
			cfgRep := ConfigReport{
				Name:             cfg.Name,
				Align:            cfg.Knobs.Align.String(),
				AlignCap:         cfg.Knobs.AlignCap,
				MemoEps:          cfg.Knobs.MemoEps,
				ScratchThreshold: cfg.Knobs.ScratchThreshold,
				Runs:             runs,
				MapMeanNs:        mapMean,
				MapP50Ns:         mapP50,
				MapP99Ns:         mapP99,
				MapSpeedup:       speedup,
				FreshReplays:     fresh,
				ReplayP50Ns:      repP50,
				ReplayP99Ns:      repP99,
				MaxAbsDeltaPct:   maxAbsDelta,
				ChangedSchedules: changed,
				Counters:         counters,
			}
			if ci > 0 && runs > 0 {
				cfgRep.MeanDeltaPct = deltaSum / float64(runs)
			}
			cr.Configs = append(cr.Configs, cfgRep)
			logf("ablate %-11s %-12s map p50 %8s  speedup %.2fx  maxΔ %.3f%%  changed %d  (%v)\n",
				class.Name, cfg.Name, time.Duration(mapP50), speedup, maxAbsDelta, changed,
				time.Since(start).Round(time.Millisecond))
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteSummary renders the human-readable per-class tables.
func (r *Report) WriteSummary(w io.Writer) {
	for _, c := range r.Classes {
		fmt.Fprintf(w, "== ablation %s on %s (%d scenarios × %d algorithms) ==\n",
			c.Class, c.Cluster, len(c.Scenarios), len(c.Algos))
		if c.Note != "" {
			fmt.Fprintf(w, "   %s\n", c.Note)
		}
		fmt.Fprintf(w, "%-12s %10s %10s %8s %9s %8s %8s %7s\n",
			"config", "map p50", "map p99", "speedup", "maxΔ%", "repl p50", "repl p99", "changed")
		for _, cfg := range c.Configs {
			fmt.Fprintf(w, "%-12s %10v %10v %7.2fx %9.3f %8v %8v %7d\n",
				cfg.Name,
				time.Duration(cfg.MapP50Ns).Round(time.Microsecond),
				time.Duration(cfg.MapP99Ns).Round(time.Microsecond),
				cfg.MapSpeedup, cfg.MaxAbsDeltaPct,
				time.Duration(cfg.ReplayP50Ns).Round(time.Microsecond),
				time.Duration(cfg.ReplayP99Ns).Round(time.Microsecond),
				cfg.ChangedSchedules)
		}
		fmt.Fprintln(w)
	}
}
