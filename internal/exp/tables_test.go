package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/platform"
)

// microScens returns two scenarios of every application kind, enough to
// exercise the tuned pipelines end to end while staying fast.
func microScens() []Scenario {
	all := Scenarios()
	var out []Scenario
	for _, kind := range AppKinds() {
		ks := ScenariosOf(all, kind)
		out = append(out, ks[0], ks[len(ks)/2])
	}
	return out
}

func TestTableIVAndDownstreamPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning pipeline integration test")
	}
	r := NewRunner()
	clusters := []*platform.Cluster{platform.Chti()}
	scens := microScens()

	tuned, err := RunTableIV(r, scens, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuned.Clusters) != 1 || len(tuned.Values["chti"]) != 4 {
		t.Fatalf("tuned result incomplete: %+v", tuned)
	}
	for kind, v := range tuned.Values["chti"] {
		if v.MaxDelta < 0 || v.MaxDelta > 1 || v.MinDelta > 0 || v.MinDelta < -0.75 {
			t.Errorf("%v: tuned delta pair (%g,%g) outside the sweep grid", kind, v.MinDelta, v.MaxDelta)
		}
		if v.MinRho < 0.2 || v.MinRho > 1 {
			t.Errorf("%v: tuned minrho %g outside the sweep grid", kind, v.MinRho)
		}
	}
	var buf bytes.Buffer
	WriteTableIV(&buf, tuned)
	if !strings.Contains(buf.String(), "chti") {
		t.Error("Table IV formatter missing cluster row")
	}

	// Figures 6/7 with the tuned values.
	fig, err := RunFig6And7(r, scens, clusters[0], tuned.Values["chti"])
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.MakespanRatios) != 2 || len(fig.MakespanRatios[0]) != len(scens) {
		t.Fatalf("fig6/7 series malformed")
	}

	// Tables V and VI.
	tv, tvi, err := RunTableVAndVI(r, scens, clusters, tuned)
	if err != nil {
		t.Fatal(err)
	}
	pw := tv.Pairwise["chti"]
	for i := range pw {
		for j := range pw[i] {
			if i == j {
				continue
			}
			c := pw[i][j]
			if c.Better+c.Equal+c.Worse != len(scens) {
				t.Fatalf("pairwise cell [%d][%d] counts %d scenarios, want %d",
					i, j, c.Better+c.Equal+c.Worse, len(scens))
			}
		}
	}
	deg := tvi.Degradation["chti"]
	if len(deg) != 3 {
		t.Fatalf("want 3 degradation rows, got %d", len(deg))
	}
	buf.Reset()
	WriteTableV(&buf, tv)
	WriteTableVI(&buf, tvi)
	out := buf.String()
	for _, want := range []string{"Table V", "Table VI", "combined", "not best"} {
		if !strings.Contains(out, want) {
			t.Errorf("table formatters missing %q", want)
		}
	}
}

func TestExtendedAlgosSwapAllocation(t *testing.T) {
	algos := ExtendedAlgos()
	if len(algos) != 5 {
		t.Fatalf("want 5 algorithms, got %d", len(algos))
	}
	if algos[0].Alloc == nil || algos[1].Alloc == nil {
		t.Error("CPA/MCPA specs must override the allocation step")
	}
	if algos[2].Alloc != nil {
		t.Error("HCPA spec must use the runner's shared allocation")
	}
	r := NewRunner()
	scens := []Scenario{Scenarios()[532]} // one Strassen
	results, err := r.Run(scens, platform.Chti(), algos)
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if results[i][0].Makespan <= 0 {
			t.Errorf("algo %s produced non-positive makespan", algos[i].Name)
		}
	}
}

func TestDeltaSweepBestPicksGridMinimum(t *testing.T) {
	d := &DeltaSweepResult{
		MinDeltas: []float64{0, -0.5},
		MaxDeltas: []float64{0, 1},
		AvgRel:    [][]float64{{1.0, 0.9}, {0.95, 0.85}},
	}
	minD, maxD, avg := d.Best()
	if minD != -0.5 || maxD != 1 || avg != 0.85 {
		t.Errorf("Best = (%g,%g,%g), want (-0.5,1,0.85)", minD, maxD, avg)
	}
}

func TestRhoSweepBestPicksMinimum(t *testing.T) {
	r := &RhoSweepResult{
		MinRhos:   []float64{0.2, 0.5, 1.0},
		PackingOn: []float64{0.99, 0.91, 0.97},
	}
	rho, avg := r.Best()
	if rho != 0.5 || avg != 0.91 {
		t.Errorf("Best = (%g,%g), want (0.5,0.91)", rho, avg)
	}
}
