package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/platform"
)

// TestScenarioCount557 pins the Table III inventory: 108 layered + 324
// irregular + 100 FFT + 25 Strassen = 557 configurations.
func TestScenarioCount557(t *testing.T) {
	scens := Scenarios()
	counts := map[AppKind]int{}
	for _, s := range scens {
		counts[s.Kind]++
	}
	if counts[Layered] != 108 {
		t.Errorf("layered = %d, want 108", counts[Layered])
	}
	if counts[Irregular] != 324 {
		t.Errorf("irregular = %d, want 324", counts[Irregular])
	}
	if counts[FFT] != 100 {
		t.Errorf("fft = %d, want 100", counts[FFT])
	}
	if counts[Strassen] != 25 {
		t.Errorf("strassen = %d, want 25", counts[Strassen])
	}
	if len(scens) != 557 {
		t.Errorf("total = %d, want 557", len(scens))
	}
	// IDs are dense and names unique.
	names := map[string]bool{}
	for i, s := range scens {
		if s.ID != i {
			t.Fatalf("scenario %d has ID %d", i, s.ID)
		}
		if names[s.Name()] {
			t.Fatalf("duplicate scenario name %q", s.Name())
		}
		names[s.Name()] = true
	}
}

func TestScenarioGraphsDeterministic(t *testing.T) {
	scens := Scenarios()
	for _, idx := range []int{0, 107, 108, 431, 432, 531, 532, 556} {
		s := scens[idx]
		g1 := s.Graph()
		g2 := s.Graph()
		if g1.N() != g2.N() || len(g1.Edges) != len(g2.Edges) {
			t.Errorf("scenario %s not deterministic", s.Name())
		}
		if err := g1.Validate(); err != nil {
			t.Errorf("scenario %s: %v", s.Name(), err)
		}
	}
}

func TestScenarioTaskCountsMatchClass(t *testing.T) {
	scens := Scenarios()
	for _, s := range []Scenario{scens[0], scens[108], scens[432], scens[532]} {
		g := s.Graph()
		switch s.Kind {
		case Layered, Irregular:
			if g.RealTaskCount() != s.Params.N {
				t.Errorf("%s: %d tasks, want %d", s.Name(), g.RealTaskCount(), s.Params.N)
			}
		case FFT:
			if g.RealTaskCount() != 5 { // first FFT scenario has k=2
				t.Errorf("%s: %d tasks, want 5", s.Name(), g.RealTaskCount())
			}
		case Strassen:
			if g.RealTaskCount() != 25 {
				t.Errorf("%s: %d tasks, want 25", s.Name(), g.RealTaskCount())
			}
		}
	}
}

func TestSubsample(t *testing.T) {
	scens := Scenarios()
	sub := Subsample(scens, 50)
	if len(sub) != 12 { // ceil(557/50)
		t.Errorf("subsample size = %d, want 12", len(sub))
	}
	if got := Subsample(scens, 1); len(got) != len(scens) {
		t.Error("stride 1 should be identity")
	}
}

func TestScenariosOf(t *testing.T) {
	scens := Scenarios()
	if got := len(ScenariosOf(scens, FFT)); got != 100 {
		t.Errorf("ScenariosOf(FFT) = %d, want 100", got)
	}
}

// smallScens returns a tiny cross-class scenario set for integration tests.
func smallScens() []Scenario {
	all := Scenarios()
	return []Scenario{
		all[0],   // layered n=25
		all[110], // irregular
		all[432], // fft k=2
		all[535], // strassen
	}
}

func TestRunnerProducesPositiveResults(t *testing.T) {
	r := NewRunner()
	cl := platform.Chti()
	results, err := r.Run(smallScens(), cl, NaiveAlgos())
	if err != nil {
		t.Fatal(err)
	}
	for a := range results {
		for s, res := range results[a] {
			if res.Makespan <= 0 || res.Work <= 0 || res.Estimate <= 0 {
				t.Errorf("algo %d scenario %d: non-positive result %+v", a, s, res)
			}
		}
	}
	// HCPA and RATS share the allocation step, so total work can only
	// differ through RATS packing/stretching — sanity: within 3× of HCPA.
	for a := 1; a < len(results); a++ {
		for s := range results[a] {
			ratio := results[a][s].Work / results[0][s].Work
			if ratio > 3 || ratio < 1.0/3 {
				t.Errorf("algo %d scenario %d: work ratio %.2f out of sane range", a, s, ratio)
			}
		}
	}
}

func TestRunnerDeterministic(t *testing.T) {
	r := NewRunner()
	cl := platform.Chti()
	a, err := r.Run(smallScens(), cl, []AlgoSpec{Baseline()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(smallScens(), cl, []AlgoSpec{Baseline()})
	if err != nil {
		t.Fatal(err)
	}
	for s := range a[0] {
		if a[0][s] != b[0][s] {
			t.Fatalf("scenario %d differs across identical runs: %+v vs %+v", s, a[0][s], b[0][s])
		}
	}
}

func TestFig2And3Small(t *testing.T) {
	r := NewRunner()
	res, err := RunFig2And3(r, smallScens(), platform.Chti())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AlgoNames) != 2 {
		t.Fatalf("want 2 RATS variants, got %v", res.AlgoNames)
	}
	for a := range res.MakespanRatios {
		if len(res.MakespanRatios[a]) != 4 {
			t.Errorf("ratio series length %d, want 4", len(res.MakespanRatios[a]))
		}
		// sorted ascending
		for i := 1; i < len(res.MakespanRatios[a]); i++ {
			if res.MakespanRatios[a][i] < res.MakespanRatios[a][i-1] {
				t.Error("ratio series not sorted")
			}
		}
	}
	var buf bytes.Buffer
	WriteFig23(&buf, "Fig 2/3 (test)", res)
	if !strings.Contains(buf.String(), "makespan") {
		t.Error("formatter output missing content")
	}
	var csvBuf bytes.Buffer
	if err := WriteFig23CSV(&csvBuf, res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csvBuf.String(), "\n"); lines != 5 { // header + 4
		t.Errorf("CSV has %d lines, want 5", lines)
	}
}

func TestDeltaSweepSmall(t *testing.T) {
	r := NewRunner()
	scens := []Scenario{Scenarios()[432], Scenarios()[433]} // two small FFTs
	res, err := RunDeltaSweep(r, scens, platform.Chti(), FFT)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvgRel) != len(MinDeltaGrid) || len(res.AvgRel[0]) != len(MaxDeltaGrid) {
		t.Fatalf("sweep surface %dx%d, want %dx%d",
			len(res.AvgRel), len(res.AvgRel[0]), len(MinDeltaGrid), len(MaxDeltaGrid))
	}
	// (0,0) forbids every allocation-size change; only zero-δ adoptions of
	// equal-size predecessor sets remain, so the ratio stays close to 1
	// (at or slightly below — those adoptions only remove redistributions).
	if res.AvgRel[0][0] > 1+1e-9 || res.AvgRel[0][0] < 0.7 {
		t.Errorf("delta(0,0) ratio = %g, want within (0.7, 1]", res.AvgRel[0][0])
	}
	minD, maxD, avg := res.Best()
	if avg > res.AvgRel[0][0] {
		t.Errorf("Best() (%g,%g)=%g worse than grid corner", minD, maxD, avg)
	}
	var buf bytes.Buffer
	WriteDeltaSweep(&buf, res)
	if !strings.Contains(buf.String(), "best:") {
		t.Error("sweep formatter missing best line")
	}
}

func TestRhoSweepSmall(t *testing.T) {
	r := NewRunner()
	scens := []Scenario{Scenarios()[110], Scenarios()[111]}
	res, err := RunRhoSweep(r, scens, platform.Chti(), Irregular)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PackingOn) != len(MinRhoGrid) || len(res.PackingOff) != len(MinRhoGrid) {
		t.Fatal("rho sweep has wrong arity")
	}
	var buf bytes.Buffer
	WriteRhoSweep(&buf, res)
	if !strings.Contains(buf.String(), "packing") {
		t.Error("rho formatter missing content")
	}
}

func TestTableFormatters(t *testing.T) {
	var buf bytes.Buffer
	WriteTableII(&buf, platform.PaperClusters())
	out := buf.String()
	for _, want := range []string{"chti", "grillon", "grelon", "4.311", "5 cabinets"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q", want)
		}
	}
	buf.Reset()
	WriteTableIII(&buf, Scenarios())
	if !strings.Contains(buf.String(), "557") {
		t.Error("Table III output missing total")
	}
}

func TestAppKindString(t *testing.T) {
	if Layered.String() != "layered" || Irregular.String() != "irregular" ||
		FFT.String() != "fft" || Strassen.String() != "strassen" || AppKind(9).String() != "unknown" {
		t.Error("AppKind.String mismatch")
	}
	if len(AppKinds()) != 4 {
		t.Error("AppKinds should list 4 classes")
	}
}
