package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/platform"
)

// WriteFig23 renders a Fig23Result as text: summaries in the paper's
// vocabulary plus deciles of the sorted ratio curves.
func WriteFig23(w io.Writer, title string, res *Fig23Result) {
	fmt.Fprintf(w, "== %s (cluster %s) ==\n", title, res.Cluster)
	for a, name := range res.AlgoNames {
		ms := res.MakespanSummary[a]
		ws := res.WorkSummary[a]
		fmt.Fprintf(w, "%-22s makespan: mean ratio %.3f (%.1f%% shorter on avg), shorter in %.1f%% of %d scenarios\n",
			name, ms.Mean, ms.MeanImprovementPercent(), ms.ShorterPercent(), ms.N)
		fmt.Fprintf(w, "%-22s     work: mean ratio %.3f, lower in %.1f%% of scenarios\n",
			"", ws.Mean, 100*float64(ws.ShorterCount)/float64(max(ws.N, 1)))
		fmt.Fprintf(w, "%-22s makespan ratio deciles:", "")
		curve := res.MakespanRatios[a]
		for d := 0; d <= 10; d++ {
			idx := d * (len(curve) - 1) / 10
			fmt.Fprintf(w, " %.2f", curve[idx])
		}
		fmt.Fprintln(w)
	}
}

// WriteFig23CSV emits the full sorted ratio curves (one row per rank), the
// machine-readable form of Figures 2/3/6/7.
func WriteFig23CSV(w io.Writer, res *Fig23Result) error {
	cw := csv.NewWriter(w)
	header := []string{"rank"}
	for _, n := range res.AlgoNames {
		header = append(header, n+"_makespan_ratio", n+"_work_ratio")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	n := 0
	if len(res.MakespanRatios) > 0 {
		n = len(res.MakespanRatios[0])
	}
	for i := 0; i < n; i++ {
		row := []string{strconv.Itoa(i)}
		for a := range res.AlgoNames {
			row = append(row,
				strconv.FormatFloat(res.MakespanRatios[a][i], 'f', 6, 64),
				strconv.FormatFloat(res.WorkRatios[a][i], 'f', 6, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDeltaSweep renders Figure 4's surface as a table: rows = mindelta,
// columns = maxdelta, cells = average makespan relative to HCPA.
func WriteDeltaSweep(w io.Writer, res *DeltaSweepResult) {
	fmt.Fprintf(w, "== Fig 4: delta sweep, %s DAGs on %s (avg makespan relative to HCPA) ==\n",
		res.Kind, res.Cluster)
	fmt.Fprintf(w, "%10s", "min\\max")
	for _, xd := range res.MaxDeltas {
		fmt.Fprintf(w, " %8.2f", xd)
	}
	fmt.Fprintln(w)
	for i, md := range res.MinDeltas {
		fmt.Fprintf(w, "%10.2f", md)
		for j := range res.MaxDeltas {
			fmt.Fprintf(w, " %8.4f", res.AvgRel[i][j])
		}
		fmt.Fprintln(w)
	}
	minD, maxD, avg := res.Best()
	fmt.Fprintf(w, "best: mindelta=%g maxdelta=%g (avg ratio %.4f)\n", minD, maxD, avg)
}

// WriteRhoSweep renders Figure 5's two curves.
func WriteRhoSweep(w io.Writer, res *RhoSweepResult) {
	fmt.Fprintf(w, "== Fig 5: minrho sweep, %s DAGs on %s (avg makespan relative to HCPA) ==\n",
		res.Kind, res.Cluster)
	fmt.Fprintf(w, "%8s %12s %12s\n", "minrho", "packing on", "packing off")
	for i, rho := range res.MinRhos {
		fmt.Fprintf(w, "%8.2f %12.4f %12.4f\n", rho, res.PackingOn[i], res.PackingOff[i])
	}
	rho, avg := res.Best()
	fmt.Fprintf(w, "best: minrho=%g with packing (avg ratio %.4f)\n", rho, avg)
}

// WriteTableIV renders the tuned-parameter table in the paper's layout:
// one row per cluster, one column per application type, cells holding
// (mindelta, maxdelta, minrho).
func WriteTableIV(w io.Writer, res *TableIVResult) {
	fmt.Fprintln(w, "== Table IV: tuned (mindelta, maxdelta, minrho) per application type and cluster ==")
	fmt.Fprintf(w, "%-10s", "")
	for _, k := range res.Kinds {
		fmt.Fprintf(w, " %-22s", k)
	}
	fmt.Fprintln(w)
	for _, cl := range res.Clusters {
		fmt.Fprintf(w, "%-10s", cl)
		for _, k := range res.Kinds {
			t := res.Values[cl][k]
			fmt.Fprintf(w, " (%5.2f, %.2f, %.2f)    ", t.MinDelta, t.MaxDelta, t.MinRho)
		}
		fmt.Fprintln(w)
	}
}

// WriteTableV renders the pairwise comparison table: each cell holds the
// chti / grillon / grelon counts, matching the paper's presentation.
func WriteTableV(w io.Writer, res *TableVResult) {
	fmt.Fprintln(w, "== Table V: pair-wise comparison (cells: "+joinClusters(res.Clusters)+") ==")
	names := res.AlgoNames
	for i, row := range names {
		fmt.Fprintf(w, "%-10s\n", row)
		for _, rel := range []string{"better", "equal", "worse"} {
			fmt.Fprintf(w, "  %-8s", rel)
			for j, col := range names {
				if i == j {
					fmt.Fprintf(w, " %-22s", "XXX")
					continue
				}
				var vals []string
				for _, cl := range res.Clusters {
					c := res.Pairwise[cl][i][j]
					switch rel {
					case "better":
						vals = append(vals, strconv.Itoa(c.Better))
					case "equal":
						vals = append(vals, strconv.Itoa(c.Equal))
					default:
						vals = append(vals, strconv.Itoa(c.Worse))
					}
				}
				fmt.Fprintf(w, " %-22s", join3(vals))
				_ = col
			}
			// combined column (percent).
			var vals []string
			for _, cl := range res.Clusters {
				cp := res.Combined[cl][i]
				switch rel {
				case "better":
					vals = append(vals, fmt.Sprintf("%.1f", cp.Better))
				case "equal":
					vals = append(vals, fmt.Sprintf("%.1f", cp.Equal))
				default:
					vals = append(vals, fmt.Sprintf("%.1f", cp.Worse))
				}
			}
			fmt.Fprintf(w, " | combined %% %s", join3(vals))
			fmt.Fprintln(w)
		}
	}
}

// WriteTableVI renders the degradation-from-best table.
func WriteTableVI(w io.Writer, res *TableVIResult) {
	fmt.Fprintln(w, "== Table VI: average degradation from best ==")
	fmt.Fprintf(w, "%-10s %-18s", "cluster", "metric")
	for _, n := range res.AlgoNames {
		fmt.Fprintf(w, " %12s", n)
	}
	fmt.Fprintln(w)
	for _, cl := range res.Clusters {
		deg := res.Degradation[cl]
		fmt.Fprintf(w, "%-10s %-18s", cl, "avg over all exp.")
		for _, d := range deg {
			fmt.Fprintf(w, " %11.2f%%", d.AvgOverAll)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s %-18s", "", "# not best")
		for _, d := range deg {
			fmt.Fprintf(w, " %12d", d.NotBest)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-10s %-18s", "", "avg over not best")
		for _, d := range deg {
			fmt.Fprintf(w, " %11.2f%%", d.AvgOverNotBest)
		}
		fmt.Fprintln(w)
	}
}

// WriteTableII echoes the cluster presets (Table II is an input, not a
// result; echoing it documents what the simulator ran on).
func WriteTableII(w io.Writer, clusters []*platform.Cluster) {
	fmt.Fprintln(w, "== Table II: cluster characteristics ==")
	fmt.Fprintf(w, "%-10s %8s %12s %10s\n", "cluster", "#proc", "GFlop/s", "topology")
	for _, c := range clusters {
		topo := "flat switch"
		if c.Hierarchical() {
			topo = fmt.Sprintf("%d cabinets×%d", c.Cabinets(), c.CabinetSize)
		}
		fmt.Fprintf(w, "%-10s %8d %12.3f %10s\n", c.Name, c.P, c.SpeedGFlops, topo)
	}
}

// WriteTableIII echoes the scenario inventory with per-class counts.
func WriteTableIII(w io.Writer, scens []Scenario) {
	fmt.Fprintln(w, "== Table III: application configurations ==")
	counts := map[AppKind]int{}
	for _, s := range scens {
		counts[s.Kind]++
	}
	for _, k := range []AppKind{Layered, Irregular, FFT, Strassen} {
		fmt.Fprintf(w, "%-10s %4d\n", k, counts[k])
	}
	fmt.Fprintf(w, "%-10s %4d\n", "total", len(scens))
}

func join3(vals []string) string {
	out := ""
	for i, v := range vals {
		if i > 0 {
			out += " / "
		}
		out += v
	}
	return out
}

func joinClusters(cs []string) string { return join3(cs) }
