// Package exp is the evaluation harness: it enumerates the application
// configurations of the paper's Table III (plus production-scale
// extensions), runs the two-step scheduling pipeline (HCPA allocation →
// {HCPA, RATS-delta, RATS-time-cost} mapping → contended replay) over the
// simulated clusters of Table II, and formats every figure and table of
// §IV.
//
// # Scenario classes
//
// Each scenario class reproduces one workload family of §IV-A:
//
//   - Layered (108 configs) — daggen-style random DAGs where every task of
//     a precedence level draws the same (m, a, α) cost triple: the
//     homogeneous data-parallel phases typical of regular scientific
//     codes. Axes: 25/50/100 tasks, width 0.2/0.5/0.8, density 0.2/0.8,
//     regularity 0.2/0.8, three samples each.
//
//   - Irregular (324 configs) — the same generator with per-task costs and
//     jump edges (length 1/2/4) that skip levels, breaking the layered
//     structure: the adversarial case for level-based allocation caps
//     (and the reason the paper calls MCPA applicable only to very
//     regular DAGs).
//
//   - FFT (100 configs) — the k-point fast Fourier transform task graph
//     (k = 2/4/8/16, 25 samples each): maximally regular, with butterfly
//     stages whose width doubles level to level — the best case for
//     allocation adoption, since consecutive stages want equal
//     allocations.
//
//   - Strassen (25 configs) — the Strassen matrix-multiplication recursion:
//     a deep series-parallel graph with seven-way fan-outs, exercising
//     packing (many small siblings per level) rather than stretching.
//
// The class is the unit the tuning methodology operates on: Table IV picks
// one (mindelta, maxdelta, minrho) triple per class, and RunDeltaSweep /
// RunRhoSweep reproduce the per-class sweeps of Figures 4 and 5.
//
// # Production scales
//
// ScenariosAt extends the inventory beyond the paper: ScaleBig512 and
// ScaleBig1024 enumerate 200–800-task DAGs and 32/64-point FFTs matched
// to the synthetic big512/big1024 cluster presets, so the harness
// exercises the scale the presets unlock (the paper-scale workloads
// saturate at most a few cabinets of those machines). They follow the
// same deterministic seeding as the Table III inventory.
//
// # Pipeline
//
// Runner.Run executes scenarios in parallel with per-scenario reuse of
// the graph, the cost oracle and the shared first-step allocation;
// replays are memoized on the schedule signature because neighbouring
// sweep points frequently produce identical schedules. Makespans come
// from the contention-aware simdag replay, never from the scheduler's own
// estimates (the paper's point is precisely that those estimates ignore
// contention).
package exp
