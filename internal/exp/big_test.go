package exp

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// TestBigScenarioInventory pins the production-scale inventories: 36
// configurations per scale, valid graphs, unique names, deterministic
// regeneration.
func TestBigScenarioInventory(t *testing.T) {
	for _, sc := range []Scale{ScaleBig512, ScaleBig1024} {
		scens := ScenariosAt(sc)
		if len(scens) != 36 {
			t.Fatalf("%v: %d scenarios, want 36", sc, len(scens))
		}
		names := map[string]bool{}
		for i, s := range scens {
			if s.ID != i {
				t.Fatalf("%v: scenario %d has ID %d", sc, i, s.ID)
			}
			if names[s.Name()] {
				t.Fatalf("%v: duplicate scenario name %s", sc, s.Name())
			}
			names[s.Name()] = true
		}
		// Spot-check one graph per kind (building all 800-task graphs per
		// test run is wasteful; determinism is covered below).
		for _, idx := range []int{0, 16, 32} {
			g := scens[idx].Graph()
			if err := g.Validate(); err != nil {
				t.Fatalf("%v scenario %s: %v", sc, scens[idx].Name(), err)
			}
			if got := g.RealTaskCount(); got < 100 {
				t.Fatalf("%v scenario %s: only %d real tasks — not a big scenario", sc, scens[idx].Name(), got)
			}
		}
	}
	if got := len(ScenariosAt(ScalePaper)); got != 557 {
		t.Fatalf("ScalePaper: %d scenarios, want 557", got)
	}
}

// TestScaleClusterPairing checks the preset pairing the expdriver relies
// on.
func TestScaleClusterPairing(t *testing.T) {
	if ScaleBig512.Cluster().P != 512 || ScaleBig1024.Cluster().P != 1024 {
		t.Fatal("big scales must pair with the matching presets")
	}
	if ScalePaper.Cluster().Name != platform.Grillon().Name {
		t.Fatal("paper scale defaults to grillon")
	}
	if ScalePaper.String() != "paper" || ScaleBig512.String() != "big512" || ScaleBig1024.String() != "big1024" {
		t.Fatal("Scale.String mismatch")
	}
}

// TestBigScenarioPipelineSmoke runs the smallest big512 scenarios end to
// end (allocation → mapping → contended replay) on the big512 preset and
// checks that RATS still schedules and that the result is sane. The
// 400-task and big1024 classes follow the same code path but take minutes
// under the flow-level simulator, so the smoke stays at the small end —
// cmd/expdriver -only big runs the full set.
func TestBigScenarioPipelineSmoke(t *testing.T) {
	cl := ScaleBig512.Cluster()
	var small []Scenario
	for _, s := range ScenariosAt(ScaleBig512) {
		if s.Kind == Layered && s.Params.N == 200 && s.Params.Density == 0.2 {
			small = append(small, s)
		}
	}
	if len(small) < 2 {
		t.Fatal("expected at least two small layered big512 scenarios")
	}
	small = small[:2]
	r := NewRunner()
	results, err := r.Run(small, cl, NaiveAlgos())
	if err != nil {
		t.Fatal(err)
	}
	for a := range results {
		for s, res := range results[a] {
			if res.Makespan <= 0 || res.Work <= 0 {
				t.Fatalf("algo %d scenario %s: degenerate result %+v", a, small[s].Name(), res)
			}
		}
	}
	// The big DAGs must actually exercise the preset: the shared HCPA
	// allocation should spread far beyond one 32-node cabinet.
	g := small[0].Graph()
	costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
	allocation := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
	maxAlloc := 0
	for _, v := range allocation {
		if v > maxAlloc {
			maxAlloc = v
		}
	}
	if maxAlloc <= 1 {
		t.Fatal("big scenario never parallelizes a task — does not exercise big512")
	}
}
