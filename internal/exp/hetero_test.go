package exp

import (
	"testing"
)

// TestHeteroScenarioInventory pins the heterogeneous-scale inventories the
// way TestBigScenarioInventory pins the big ones: 36 configurations per
// scale, unique names, valid graphs, and the cluster pairing the expdriver
// relies on.
func TestHeteroScenarioInventory(t *testing.T) {
	for _, tc := range []struct {
		sc    Scale
		name  string
		procs int
	}{
		{ScaleGrelonHet, "grelon-het", 120},
		{ScaleBig512Het, "big512-het", 512},
	} {
		if tc.sc.String() != tc.name {
			t.Fatalf("Scale.String() = %s, want %s", tc.sc.String(), tc.name)
		}
		cl := tc.sc.Cluster()
		if cl.Name != tc.name || cl.P != tc.procs {
			t.Fatalf("%v pairs with (%s, %d), want (%s, %d)", tc.sc, cl.Name, cl.P, tc.name, tc.procs)
		}
		if !cl.Hetero() {
			t.Fatalf("%v: paired cluster is uniform", tc.sc)
		}
		scens := ScenariosAt(tc.sc)
		if len(scens) != 36 {
			t.Fatalf("%v: %d scenarios, want 36", tc.sc, len(scens))
		}
		names := map[string]bool{}
		for i, s := range scens {
			if s.ID != i {
				t.Fatalf("%v: scenario %d has ID %d", tc.sc, i, s.ID)
			}
			if names[s.Name()] {
				t.Fatalf("%v: duplicate scenario name %s", tc.sc, s.Name())
			}
			names[s.Name()] = true
		}
		for _, idx := range []int{0, 16, 32} {
			g := scens[idx].Graph()
			if err := g.Validate(); err != nil {
				t.Fatalf("%v scenario %s: %v", tc.sc, scens[idx].Name(), err)
			}
		}
	}
	// grelon-het stays within the Table III graph envelope — heterogeneity,
	// not graph scale, is the variable there.
	for _, s := range ScenariosAt(ScaleGrelonHet) {
		if s.Kind == Layered || s.Kind == Irregular {
			if s.Params.N > 100 {
				t.Fatalf("grelon-het random scenario %s exceeds Table III sizes", s.Name())
			}
		}
	}
}

// TestHeteroScenarioPipelineSmoke runs two small grelon-het scenarios end
// to end (allocation → mapping → contended replay) on the heterogeneous
// preset and checks all three naive algorithms survive and produce sane
// results.
func TestHeteroScenarioPipelineSmoke(t *testing.T) {
	cl := ScaleGrelonHet.Cluster()
	var small []Scenario
	for _, s := range ScenariosAt(ScaleGrelonHet) {
		if s.Kind == Layered && s.Params.N == 50 && s.Params.Density == 0.2 {
			small = append(small, s)
		}
	}
	if len(small) < 2 {
		t.Fatal("expected at least two small layered grelon-het scenarios")
	}
	small = small[:2]
	r := NewRunner()
	results, err := r.Run(small, cl, NaiveAlgos())
	if err != nil {
		t.Fatal(err)
	}
	for a := range results {
		for s, res := range results[a] {
			if res.Makespan <= 0 || res.Work <= 0 {
				t.Fatalf("algo %d scenario %s: degenerate result %+v", a, small[s].Name(), res)
			}
		}
	}
}
