package exp

import (
	"repro/internal/metrics"
	"repro/internal/platform"
)

// Fig23Result carries the data behind the relative-makespan/relative-work
// scatter figures: Figures 2 and 3 (naive parameters) and Figures 6 and 7
// (tuned parameters). Ratios are against the HCPA baseline and sorted
// independently, as in the paper.
type Fig23Result struct {
	Cluster   string
	AlgoNames []string // the two RATS variants

	MakespanRatios [][]float64 // [algo][scenario], sorted ascending
	WorkRatios     [][]float64

	MakespanSummary []metrics.Summary
	WorkSummary     []metrics.Summary
}

// relativeFig assembles a Fig23Result from a raw result matrix whose
// algorithm 0 is the baseline.
func relativeFig(cl *platform.Cluster, algos []AlgoSpec, results [][]RunResult) *Fig23Result {
	ms := Makespans(results)
	wk := Works(results)
	out := &Fig23Result{Cluster: cl.Name}
	for a := 1; a < len(algos); a++ {
		mr := metrics.Relative(ms[a], ms[0])
		wr := metrics.Relative(wk[a], wk[0])
		out.AlgoNames = append(out.AlgoNames, algos[a].Name)
		out.MakespanRatios = append(out.MakespanRatios, metrics.Sorted(mr))
		out.WorkRatios = append(out.WorkRatios, metrics.Sorted(wr))
		out.MakespanSummary = append(out.MakespanSummary, metrics.Summarize(mr))
		out.WorkSummary = append(out.WorkSummary, metrics.Summarize(wr))
	}
	return out
}

// RunFig2And3 reproduces Figures 2 and 3: the naive-parameter comparison
// (delta with mindelta = maxdelta = 0.5; time-cost with minrho = 0.5 and
// packing allowed) of RATS against HCPA on one cluster.
func RunFig2And3(r *Runner, scens []Scenario, cl *platform.Cluster) (*Fig23Result, error) {
	algos := NaiveAlgos()
	results, err := r.Run(scens, cl, algos)
	if err != nil {
		return nil, err
	}
	return relativeFig(cl, algos, results), nil
}

// Paper sweep grids (§IV-C).
var (
	// MinDeltaGrid and MaxDeltaGrid are Figure 4's axes. maxdelta also
	// takes 1 ("allowing to remove all the processors of an allocation
	// when packing does not make sense", hence no −1 for mindelta).
	MinDeltaGrid = []float64{0, -0.25, -0.5, -0.75}
	MaxDeltaGrid = []float64{0, 0.25, 0.5, 0.75, 1}
	// MinRhoGrid is Figure 5's axis.
	MinRhoGrid = []float64{0.2, 0.4, 0.5, 0.6, 0.8, 1.0}
)

// DeltaSweepResult is the (mindelta, maxdelta) surface of Figure 4:
// average makespan relative to HCPA.
type DeltaSweepResult struct {
	Cluster   string
	Kind      AppKind
	MinDeltas []float64
	MaxDeltas []float64
	AvgRel    [][]float64 // [iMinDelta][iMaxDelta]
}

// Best returns the (mindelta, maxdelta) pair minimizing the average
// relative makespan.
func (d *DeltaSweepResult) Best() (minDelta, maxDelta, avg float64) {
	best := -1
	bi, bj := 0, 0
	for i := range d.AvgRel {
		for j := range d.AvgRel[i] {
			if best < 0 || d.AvgRel[i][j] < d.AvgRel[bi][bj] {
				best, bi, bj = 1, i, j
			}
		}
	}
	return d.MinDeltas[bi], d.MaxDeltas[bj], d.AvgRel[bi][bj]
}

// RunDeltaSweep reproduces the Figure 4 methodology for any scenario set:
// it evaluates every (mindelta, maxdelta) pair of the paper's grid and
// reports the average makespan relative to HCPA. Figure 4 itself uses FFT
// DAGs on grillon; Table IV applies the same sweep to every application
// type × cluster pair.
func RunDeltaSweep(r *Runner, scens []Scenario, cl *platform.Cluster, kind AppKind) (*DeltaSweepResult, error) {
	algos := []AlgoSpec{Baseline()}
	for _, md := range MinDeltaGrid {
		for _, xd := range MaxDeltaGrid {
			algos = append(algos, Delta(md, xd))
		}
	}
	results, err := r.Run(scens, cl, algos)
	if err != nil {
		return nil, err
	}
	ms := Makespans(results)
	out := &DeltaSweepResult{
		Cluster:   cl.Name,
		Kind:      kind,
		MinDeltas: MinDeltaGrid,
		MaxDeltas: MaxDeltaGrid,
		AvgRel:    make([][]float64, len(MinDeltaGrid)),
	}
	idx := 1
	for i := range MinDeltaGrid {
		out.AvgRel[i] = make([]float64, len(MaxDeltaGrid))
		for j := range MaxDeltaGrid {
			out.AvgRel[i][j] = metrics.Summarize(metrics.Relative(ms[idx], ms[0])).Mean
			idx++
		}
	}
	return out, nil
}

// RhoSweepResult is Figure 5: average relative makespan as minrho varies,
// with and without packing.
type RhoSweepResult struct {
	Cluster    string
	Kind       AppKind
	MinRhos    []float64
	PackingOn  []float64
	PackingOff []float64
}

// Best returns the minrho minimizing the packing-on curve.
func (r *RhoSweepResult) Best() (minRho, avg float64) {
	bi := 0
	for i := range r.PackingOn {
		if r.PackingOn[i] < r.PackingOn[bi] {
			bi = i
		}
	}
	return r.MinRhos[bi], r.PackingOn[bi]
}

// RunRhoSweep reproduces Figure 5's methodology: the time-cost strategy
// across the minrho grid, packing enabled and disabled. Figure 5 itself
// uses irregular random DAGs on grillon.
func RunRhoSweep(r *Runner, scens []Scenario, cl *platform.Cluster, kind AppKind) (*RhoSweepResult, error) {
	algos := []AlgoSpec{Baseline()}
	for _, rho := range MinRhoGrid {
		algos = append(algos, TimeCost(rho, true))
	}
	for _, rho := range MinRhoGrid {
		algos = append(algos, TimeCost(rho, false))
	}
	results, err := r.Run(scens, cl, algos)
	if err != nil {
		return nil, err
	}
	ms := Makespans(results)
	out := &RhoSweepResult{Cluster: cl.Name, Kind: kind, MinRhos: MinRhoGrid}
	for i := range MinRhoGrid {
		on := metrics.Summarize(metrics.Relative(ms[1+i], ms[0])).Mean
		off := metrics.Summarize(metrics.Relative(ms[1+len(MinRhoGrid)+i], ms[0])).Mean
		out.PackingOn = append(out.PackingOn, on)
		out.PackingOff = append(out.PackingOff, off)
	}
	return out, nil
}
