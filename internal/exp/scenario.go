// Package exp is the evaluation harness: it enumerates the paper's 557
// application configurations (Table III), runs the two-step scheduling
// pipeline (HCPA allocation → {HCPA, RATS-delta, RATS-time-cost} mapping →
// contended replay) over the three Grid'5000 clusters of Table II, and
// formats every figure and table of §IV.
package exp

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/xrand"
)

// AppKind is one of the four application classes of §IV-A.
type AppKind int

const (
	Layered AppKind = iota
	Irregular
	FFT
	Strassen
)

// String implements fmt.Stringer.
func (k AppKind) String() string {
	switch k {
	case Layered:
		return "layered"
	case Irregular:
		return "irregular"
	case FFT:
		return "fft"
	case Strassen:
		return "strassen"
	}
	return "unknown"
}

// AppKinds lists the four classes in the paper's column order (Table IV).
func AppKinds() []AppKind { return []AppKind{FFT, Strassen, Layered, Irregular} }

// Scenario identifies one application configuration. Graph construction is
// deterministic: the seed is derived from the scenario name.
type Scenario struct {
	ID     int
	Kind   AppKind
	Params gen.RandomParams // random kinds only
	K      int              // FFT data points
	Sample int
}

// Name returns the stable scenario identifier.
func (s Scenario) Name() string {
	switch s.Kind {
	case FFT:
		return fmt.Sprintf("fft/k=%d/sample=%d", s.K, s.Sample)
	case Strassen:
		return fmt.Sprintf("strassen/sample=%d", s.Sample)
	default:
		return fmt.Sprintf("%s/n=%d/w=%.1f/r=%.1f/d=%.1f/j=%d/sample=%d",
			s.Kind, s.Params.N, s.Params.Width, s.Params.Regularity,
			s.Params.Density, s.Params.Jump, s.Sample)
	}
}

// Graph builds the scenario's task graph (normalized and validated).
func (s Scenario) Graph() *dag.Graph {
	seed := xrand.SeedFromString(s.Name())
	switch s.Kind {
	case FFT:
		return gen.FFT(s.K, seed)
	case Strassen:
		return gen.Strassen(seed)
	default:
		p := s.Params
		p.Seed = seed
		return gen.Random(p)
	}
}

// Table III parameter values.
var (
	taskCounts   = []int{25, 50, 100}
	widths       = []float64{0.2, 0.5, 0.8}
	densities    = []float64{0.2, 0.8}
	regularities = []float64{0.2, 0.8}
	jumps        = []int{1, 2, 4}
	fftPoints    = []int{2, 4, 8, 16}
)

const (
	randomSamples = 3  // per random parameter combination
	fftSamples    = 25 // per k
	strassenCount = 25
)

// Scenarios enumerates all 557 application configurations of Table III:
// 108 layered + 324 irregular + 100 FFT + 25 Strassen.
func Scenarios() []Scenario {
	var out []Scenario
	add := func(s Scenario) {
		s.ID = len(out)
		out = append(out, s)
	}
	for _, n := range taskCounts {
		for _, w := range widths {
			for _, d := range densities {
				for _, r := range regularities {
					for smp := 0; smp < randomSamples; smp++ {
						add(Scenario{Kind: Layered, Sample: smp, Params: gen.RandomParams{
							N: n, Width: w, Density: d, Regularity: r, Jump: 1, Layered: true,
						}})
					}
				}
			}
		}
	}
	for _, n := range taskCounts {
		for _, w := range widths {
			for _, d := range densities {
				for _, r := range regularities {
					for _, j := range jumps {
						for smp := 0; smp < randomSamples; smp++ {
							add(Scenario{Kind: Irregular, Sample: smp, Params: gen.RandomParams{
								N: n, Width: w, Density: d, Regularity: r, Jump: j,
							}})
						}
					}
				}
			}
		}
	}
	for _, k := range fftPoints {
		for smp := 0; smp < fftSamples; smp++ {
			add(Scenario{Kind: FFT, K: k, Sample: smp})
		}
	}
	for smp := 0; smp < strassenCount; smp++ {
		add(Scenario{Kind: Strassen, Sample: smp})
	}
	return out
}

// ScenariosOf filters scenarios by application kind.
func ScenariosOf(all []Scenario, kind AppKind) []Scenario {
	var out []Scenario
	for _, s := range all {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// Subsample keeps every stride-th scenario (minimum one), preserving order.
// The quick evaluation modes use it to bound test/bench runtimes while
// covering all application classes.
func Subsample(all []Scenario, stride int) []Scenario {
	if stride <= 1 {
		return all
	}
	var out []Scenario
	for i := 0; i < len(all); i += stride {
		out = append(out, all[i])
	}
	return out
}
