package exp

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/xrand"
)

// AppKind is one of the four application classes of §IV-A.
type AppKind int

const (
	Layered AppKind = iota
	Irregular
	FFT
	Strassen
)

// String implements fmt.Stringer.
func (k AppKind) String() string {
	switch k {
	case Layered:
		return "layered"
	case Irregular:
		return "irregular"
	case FFT:
		return "fft"
	case Strassen:
		return "strassen"
	}
	return "unknown"
}

// AppKinds lists the four classes in the paper's column order (Table IV).
func AppKinds() []AppKind { return []AppKind{FFT, Strassen, Layered, Irregular} }

// Scenario identifies one application configuration. Graph construction is
// deterministic: the seed is derived from the scenario name.
type Scenario struct {
	ID     int
	Kind   AppKind
	Params gen.RandomParams // random kinds only
	K      int              // FFT data points
	Sample int
}

// Name returns the stable scenario identifier.
func (s Scenario) Name() string {
	switch s.Kind {
	case FFT:
		return fmt.Sprintf("fft/k=%d/sample=%d", s.K, s.Sample)
	case Strassen:
		return fmt.Sprintf("strassen/sample=%d", s.Sample)
	default:
		return fmt.Sprintf("%s/n=%d/w=%.1f/r=%.1f/d=%.1f/j=%d/sample=%d",
			s.Kind, s.Params.N, s.Params.Width, s.Params.Regularity,
			s.Params.Density, s.Params.Jump, s.Sample)
	}
}

// Graph builds the scenario's task graph (normalized and validated).
func (s Scenario) Graph() *dag.Graph {
	seed := xrand.SeedFromString(s.Name())
	switch s.Kind {
	case FFT:
		return gen.FFT(s.K, seed)
	case Strassen:
		return gen.Strassen(seed)
	default:
		p := s.Params
		p.Seed = seed
		return gen.Random(p)
	}
}

// Table III parameter values.
var (
	taskCounts   = []int{25, 50, 100}
	widths       = []float64{0.2, 0.5, 0.8}
	densities    = []float64{0.2, 0.8}
	regularities = []float64{0.2, 0.8}
	jumps        = []int{1, 2, 4}
	fftPoints    = []int{2, 4, 8, 16}
)

const (
	randomSamples = 3  // per random parameter combination
	fftSamples    = 25 // per k
	strassenCount = 25
)

// Scenarios enumerates all 557 application configurations of Table III:
// 108 layered + 324 irregular + 100 FFT + 25 Strassen.
func Scenarios() []Scenario {
	var out []Scenario
	add := func(s Scenario) {
		s.ID = len(out)
		out = append(out, s)
	}
	for _, n := range taskCounts {
		for _, w := range widths {
			for _, d := range densities {
				for _, r := range regularities {
					for smp := 0; smp < randomSamples; smp++ {
						add(Scenario{Kind: Layered, Sample: smp, Params: gen.RandomParams{
							N: n, Width: w, Density: d, Regularity: r, Jump: 1, Layered: true,
						}})
					}
				}
			}
		}
	}
	for _, n := range taskCounts {
		for _, w := range widths {
			for _, d := range densities {
				for _, r := range regularities {
					for _, j := range jumps {
						for smp := 0; smp < randomSamples; smp++ {
							add(Scenario{Kind: Irregular, Sample: smp, Params: gen.RandomParams{
								N: n, Width: w, Density: d, Regularity: r, Jump: j,
							}})
						}
					}
				}
			}
		}
	}
	for _, k := range fftPoints {
		for smp := 0; smp < fftSamples; smp++ {
			add(Scenario{Kind: FFT, K: k, Sample: smp})
		}
	}
	for smp := 0; smp < strassenCount; smp++ {
		add(Scenario{Kind: Strassen, Sample: smp})
	}
	return out
}

// Scale selects a size regime of the scenario inventory: the paper's
// Table III workloads, or the production-scale classes paired with the
// big512/big1024 cluster presets.
type Scale int

const (
	// ScalePaper is the Table III inventory (557 configurations).
	ScalePaper Scale = iota
	// ScaleBig512 pairs with platform.Big512: 200–400-task DAGs and
	// 32-point FFTs, sized so HCPA allocations actually spread across 16
	// cabinets.
	ScaleBig512
	// ScaleBig1024 pairs with platform.Big1024: 400–800-task DAGs and
	// 64-point FFTs.
	ScaleBig1024
	// ScaleGrelonHet pairs with platform.GrelonHet — the 2-tier
	// heterogeneous grelon (half-speed cabinets behind slow uplinks) —
	// using paper-sized DAGs so heterogeneity, not graph scale, is the
	// variable under test.
	ScaleGrelonHet
	// ScaleBig512Het pairs with platform.Big512Het: the big512 inventory
	// on the 2-tier 512-node cluster.
	ScaleBig512Het
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScalePaper:
		return "paper"
	case ScaleBig512:
		return "big512"
	case ScaleBig1024:
		return "big1024"
	case ScaleGrelonHet:
		return "grelon-het"
	case ScaleBig512Het:
		return "big512-het"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// Cluster returns the platform preset a scale is designed to exercise.
func (s Scale) Cluster() *platform.Cluster {
	switch s {
	case ScaleBig512:
		return platform.Big512()
	case ScaleBig1024:
		return platform.Big1024()
	case ScaleGrelonHet:
		return platform.GrelonHet()
	case ScaleBig512Het:
		return platform.Big512Het()
	}
	return platform.Grillon()
}

// bigRandoms enumerates the random-DAG portion of a big scale: wider and
// deeper graphs than Table III (the paper tops out at 100 tasks and width
// 0.8), keeping the Table III axes that matter at scale — density drives
// redistribution fan-in, width drives per-level contention — and fixing
// regularity at 0.8 so level widths stay predictable.
func bigRandoms(add func(Scenario), taskCounts []int) {
	for _, layered := range []bool{true, false} {
		kind, jump := Layered, 1
		if !layered {
			kind, jump = Irregular, 2
		}
		for _, n := range taskCounts {
			for _, w := range []float64{0.5, 0.8} {
				for _, d := range []float64{0.2, 0.8} {
					for smp := 0; smp < 2; smp++ {
						add(Scenario{Kind: kind, Sample: smp, Params: gen.RandomParams{
							N: n, Width: w, Density: d, Regularity: 0.8, Jump: jump, Layered: layered,
						}})
					}
				}
			}
		}
	}
}

// ScenariosAt enumerates the scenario inventory of a scale. ScalePaper
// returns Scenarios() (the 557 Table III configurations); the big scales
// return 36 configurations each — 32 random DAGs via bigRandoms plus four
// large FFT instances. Graph construction stays fully deterministic (the
// seed derives from the scenario name), so big-scale results are exactly
// reproducible like the paper-scale ones.
func ScenariosAt(sc Scale) []Scenario {
	if sc == ScalePaper {
		return Scenarios()
	}
	var out []Scenario
	add := func(s Scenario) {
		s.ID = len(out)
		out = append(out, s)
	}
	switch sc {
	case ScaleBig512:
		bigRandoms(add, []int{200, 400})
		for smp := 0; smp < 4; smp++ {
			add(Scenario{Kind: FFT, K: 32, Sample: smp})
		}
	case ScaleBig1024:
		bigRandoms(add, []int{400, 800})
		for smp := 0; smp < 4; smp++ {
			add(Scenario{Kind: FFT, K: 64, Sample: smp})
		}
	case ScaleGrelonHet:
		// Paper-sized graphs: 2-tier heterogeneity is the variable, so the
		// DAGs stay within Table III's envelope (50–100 tasks, 16-point
		// FFTs spread across the five mixed-speed cabinets).
		bigRandoms(add, []int{50, 100})
		for smp := 0; smp < 4; smp++ {
			add(Scenario{Kind: FFT, K: 16, Sample: smp})
		}
	case ScaleBig512Het:
		bigRandoms(add, []int{200, 400})
		for smp := 0; smp < 4; smp++ {
			add(Scenario{Kind: FFT, K: 32, Sample: smp})
		}
	}
	return out
}

// ScenariosOf filters scenarios by application kind.
func ScenariosOf(all []Scenario, kind AppKind) []Scenario {
	var out []Scenario
	for _, s := range all {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// Subsample keeps every stride-th scenario (minimum one), preserving order.
// The quick evaluation modes use it to bound test/bench runtimes while
// covering all application classes.
func Subsample(all []Scenario, stride int) []Scenario {
	if stride <= 1 {
		return all
	}
	var out []Scenario
	for i := 0; i < len(all); i += stride {
		out = append(out, all[i])
	}
	return out
}
