package exp

import (
	"repro/internal/metrics"
	"repro/internal/platform"
)

// Tuned holds the tuned (mindelta, maxdelta, minrho) triple of one
// application-type × cluster pair (Table IV). Packing is always enabled
// for the tuned time-cost strategy — §IV-C reports it always helps.
type Tuned struct {
	MinDelta, MaxDelta, MinRho float64
}

// TableIVResult maps cluster name → application kind → tuned parameters.
// The full sweep surfaces behind each cell are retained so drivers can
// write the complete Figure-4/5-style record for every pair.
type TableIVResult struct {
	Clusters []string
	Kinds    []AppKind
	Values   map[string]map[AppKind]Tuned

	DeltaSweeps map[string]map[AppKind]*DeltaSweepResult
	RhoSweeps   map[string]map[AppKind]*RhoSweepResult
}

// RunTuningSweep evaluates the full parameter grid of §IV-C for one
// scenario set on one cluster in a single batched run (so the baseline is
// simulated once and identical schedules across sweep points are
// deduplicated): every (mindelta, maxdelta) pair for the delta strategy
// and every minrho (with and without packing) for the time-cost strategy.
func RunTuningSweep(r *Runner, scens []Scenario, cl *platform.Cluster, kind AppKind) (*DeltaSweepResult, *RhoSweepResult, error) {
	algos := []AlgoSpec{Baseline()}
	for _, md := range MinDeltaGrid {
		for _, xd := range MaxDeltaGrid {
			algos = append(algos, Delta(md, xd))
		}
	}
	for _, rho := range MinRhoGrid {
		algos = append(algos, TimeCost(rho, true))
	}
	for _, rho := range MinRhoGrid {
		algos = append(algos, TimeCost(rho, false))
	}
	results, err := r.Run(scens, cl, algos)
	if err != nil {
		return nil, nil, err
	}
	ms := Makespans(results)
	avg := func(a int) float64 {
		return metrics.Summarize(metrics.Relative(ms[a], ms[0])).Mean
	}
	ds := &DeltaSweepResult{
		Cluster:   cl.Name,
		Kind:      kind,
		MinDeltas: MinDeltaGrid,
		MaxDeltas: MaxDeltaGrid,
		AvgRel:    make([][]float64, len(MinDeltaGrid)),
	}
	idx := 1
	for i := range MinDeltaGrid {
		ds.AvgRel[i] = make([]float64, len(MaxDeltaGrid))
		for j := range MaxDeltaGrid {
			ds.AvgRel[i][j] = avg(idx)
			idx++
		}
	}
	rs := &RhoSweepResult{Cluster: cl.Name, Kind: kind, MinRhos: MinRhoGrid}
	for i := range MinRhoGrid {
		rs.PackingOn = append(rs.PackingOn, avg(idx+i))
		rs.PackingOff = append(rs.PackingOff, avg(idx+len(MinRhoGrid)+i))
	}
	return ds, rs, nil
}

// RunTableIV reproduces the paper's tuning methodology (§IV-C): for every
// cluster and application type, sweep the delta grid and the rho grid and
// keep the parameter values achieving the smallest average makespan
// relative to HCPA.
func RunTableIV(r *Runner, scens []Scenario, clusters []*platform.Cluster) (*TableIVResult, error) {
	out := &TableIVResult{
		Kinds:       AppKinds(),
		Values:      map[string]map[AppKind]Tuned{},
		DeltaSweeps: map[string]map[AppKind]*DeltaSweepResult{},
		RhoSweeps:   map[string]map[AppKind]*RhoSweepResult{},
	}
	for _, cl := range clusters {
		out.Clusters = append(out.Clusters, cl.Name)
		perKind := map[AppKind]Tuned{}
		out.DeltaSweeps[cl.Name] = map[AppKind]*DeltaSweepResult{}
		out.RhoSweeps[cl.Name] = map[AppKind]*RhoSweepResult{}
		for _, kind := range out.Kinds {
			ks := ScenariosOf(scens, kind)
			ds, rs, err := RunTuningSweep(r, ks, cl, kind)
			if err != nil {
				return nil, err
			}
			minD, maxD, _ := ds.Best()
			rho, _ := rs.Best()
			perKind[kind] = Tuned{MinDelta: minD, MaxDelta: maxD, MinRho: rho}
			out.DeltaSweeps[cl.Name][kind] = ds
			out.RhoSweeps[cl.Name][kind] = rs
		}
		out.Values[cl.Name] = perKind
	}
	return out, nil
}

// runTunedMatrix evaluates HCPA, tuned delta and tuned time-cost on every
// scenario of one cluster, applying per-application-type parameters. The
// result is indexed [algo][scenario] with algo 0 = HCPA.
func runTunedMatrix(r *Runner, scens []Scenario, cl *platform.Cluster, tuned map[AppKind]Tuned) ([][]RunResult, error) {
	out := make([][]RunResult, 3)
	for a := range out {
		out[a] = make([]RunResult, len(scens))
	}
	for _, kind := range AppKinds() {
		// Indices of this kind within scens.
		var idx []int
		var ks []Scenario
		for i, s := range scens {
			if s.Kind == kind {
				idx = append(idx, i)
				ks = append(ks, s)
			}
		}
		if len(ks) == 0 {
			continue
		}
		tp := tuned[kind]
		algos := []AlgoSpec{
			Baseline(),
			Delta(tp.MinDelta, tp.MaxDelta),
			TimeCost(tp.MinRho, true),
		}
		res, err := r.Run(ks, cl, algos)
		if err != nil {
			return nil, err
		}
		for a := 0; a < 3; a++ {
			for k, i := range idx {
				out[a][i] = res[a][k]
			}
		}
	}
	return out, nil
}

// RunFig6And7 reproduces Figures 6 and 7: the tuned-parameter comparison
// on one cluster, using the per-application-type values of Table IV.
func RunFig6And7(r *Runner, scens []Scenario, cl *platform.Cluster, tuned map[AppKind]Tuned) (*Fig23Result, error) {
	results, err := runTunedMatrix(r, scens, cl, tuned)
	if err != nil {
		return nil, err
	}
	algos := []AlgoSpec{Baseline(), {Name: "delta(tuned)"}, {Name: "time-cost(tuned)"}}
	return relativeFig(cl, algos, results), nil
}

// TableVResult is the pairwise comparison of Table V for every cluster.
type TableVResult struct {
	AlgoNames []string // HCPA, delta, time-cost
	Clusters  []string
	// Pairwise[cluster][i][j] compares algorithm i against j.
	Pairwise map[string][][]metrics.PairwiseCell
	// Combined[cluster][i] is the percentage column.
	Combined map[string][]metrics.CombinedPercent
}

// TableVIResult is the degradation-from-best table for every cluster.
type TableVIResult struct {
	AlgoNames   []string
	Clusters    []string
	Degradation map[string][]metrics.Degradation
}

// RunTableVAndVI reproduces Tables V and VI: tuned RATS variants against
// HCPA on all clusters, counting pairwise wins and measuring degradation
// from the per-scenario best.
func RunTableVAndVI(r *Runner, scens []Scenario, clusters []*platform.Cluster, tuned *TableIVResult) (*TableVResult, *TableVIResult, error) {
	names := []string{"HCPA", "delta", "time-cost"}
	tv := &TableVResult{
		AlgoNames: names,
		Pairwise:  map[string][][]metrics.PairwiseCell{},
		Combined:  map[string][]metrics.CombinedPercent{},
	}
	tvi := &TableVIResult{AlgoNames: names, Degradation: map[string][]metrics.Degradation{}}
	for _, cl := range clusters {
		results, err := runTunedMatrix(r, scens, cl, tuned.Values[cl.Name])
		if err != nil {
			return nil, nil, err
		}
		ms := Makespans(results)
		pw := metrics.Pairwise(ms)
		tv.Clusters = append(tv.Clusters, cl.Name)
		tv.Pairwise[cl.Name] = pw
		var comb []metrics.CombinedPercent
		for i := range names {
			comb = append(comb, metrics.Combined(pw, i))
		}
		tv.Combined[cl.Name] = comb
		tvi.Clusters = append(tvi.Clusters, cl.Name)
		tvi.Degradation[cl.Name] = metrics.DegradationFromBest(ms)
	}
	return tv, tvi, nil
}
