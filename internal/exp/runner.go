package exp

import (
	"encoding/binary"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/moldable"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/platform"
	"repro/internal/redist"
	"repro/internal/simdag"
)

// AlgoSpec names one scheduling configuration. All algorithms in the
// paper's comparison share the HCPA allocation step (§II-C: RATS "relies
// on the allocation procedure of HCPA") and differ only in the mapping
// options; the extended comparison additionally swaps the first step via
// Alloc (CPA and MCPA baselines).
type AlgoSpec struct {
	Name string
	Map  core.Options
	// Alloc overrides the runner's shared allocation options when set.
	Alloc *alloc.Options
}

// Baseline returns the HCPA reference algorithm.
func Baseline() AlgoSpec {
	return AlgoSpec{Name: "HCPA", Map: core.Options{Strategy: core.StrategyNone, SortSecondary: true}}
}

// Delta returns RATS with the delta strategy.
func Delta(mindelta, maxdelta float64) AlgoSpec {
	o := core.DefaultNaive(core.StrategyDelta)
	o.MinDelta, o.MaxDelta = mindelta, maxdelta
	return AlgoSpec{Name: fmt.Sprintf("delta(%g,%g)", mindelta, maxdelta), Map: o}
}

// TimeCost returns RATS with the time-cost strategy.
func TimeCost(minrho float64, packing bool) AlgoSpec {
	o := core.DefaultNaive(core.StrategyTimeCost)
	o.MinRho, o.Packing = minrho, packing
	return AlgoSpec{Name: fmt.Sprintf("time-cost(%g,pack=%v)", minrho, packing), Map: o}
}

// NaiveAlgos returns the §IV-B comparison set: HCPA, delta with
// mindelta = maxdelta = 0.5, time-cost with minrho = 0.5 and packing.
func NaiveAlgos() []AlgoSpec {
	return []AlgoSpec{Baseline(), Delta(-0.5, 0.5), TimeCost(0.5, true)}
}

// CPABaseline returns the original CPA two-step algorithm (§II-C): CPA
// allocation (no area correction, no level cap) with the baseline mapping.
func CPABaseline() AlgoSpec {
	o := alloc.Options{Method: alloc.CPA}
	return AlgoSpec{
		Name:  "CPA",
		Map:   core.Options{Strategy: core.StrategyNone, SortSecondary: true},
		Alloc: &o,
	}
}

// MCPABaseline returns the MCPA two-step algorithm (§II-C): level-budgeted
// allocation with the baseline mapping.
func MCPABaseline() AlgoSpec {
	o := alloc.Options{Method: alloc.MCPA}
	return AlgoSpec{
		Name:  "MCPA",
		Map:   core.Options{Strategy: core.StrategyNone, SortSecondary: true},
		Alloc: &o,
	}
}

// ExtendedAlgos returns the five-way comparison: the three §II-C two-step
// baselines plus the two RATS variants (naive parameters). This extends
// the paper's evaluation, which compares against HCPA only because it had
// been shown at least as good as CPA and more general than MCPA.
func ExtendedAlgos() []AlgoSpec {
	return []AlgoSpec{CPABaseline(), MCPABaseline(), Baseline(), Delta(-0.5, 0.5), TimeCost(0.5, true)}
}

// RunResult is the outcome of one (scenario, algorithm) run.
type RunResult struct {
	Makespan float64 // simulated, contention-aware (seconds)
	Work     float64 // Σ p·T(t,p) resource consumption (processor-seconds)
	Estimate float64 // the scheduler's own contention-free estimate
	// Counters is the run's engine observability snapshot: the mapping
	// counters plus the replay's solver counters. Replays are memoized per
	// schedule signature; a memo hit reuses the cached replay's counters
	// (the replay is deterministic, so they are what a re-run would count).
	Counters obs.Counters
}

// Runner executes scenarios in parallel with per-scenario reuse of the
// graph, the cost oracle and the (shared) HCPA allocation.
type Runner struct {
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// AllocOptions configures the shared first step (default: HCPA with
	// edge costs in the critical path).
	AllocOptions alloc.Options
	// Solver selects the replay's fluid-network engine (default: the
	// incremental flownet solver; core.FlowSolverMaxMin runs the
	// from-scratch reference).
	Solver core.FlowSolver
	// Align, when non-nil, overrides every algorithm's receiver rank-order
	// alignment mode (the expdriver -align ablation switch). Nil keeps the
	// per-spec modes, so configurations that sweep alignment themselves —
	// the root ablation benches — are unaffected.
	Align *redist.AlignMode
	// Fast overlays the fast speed profile (the rats.ProfileFast bundle:
	// size-capped auto alignment, memo staleness bound, raised scratch-solve
	// threshold) on every algorithm's mapping and replay options. Align
	// still wins for the alignment mode when both are set. The zero value
	// keeps each spec's exact reference options, so the package's golden
	// figures and tables stay bit-for-bit reproducible.
	Fast bool
	// MapWorkers shards each scenario's candidate evaluation across this
	// many lanes inside the mapper (0 or 1 = serial; results are
	// byte-identical either way). Composes with Workers, which
	// parallelizes across scenarios: cross-scenario parallelism wins when
	// scenarios are plentiful, mapper lanes when a few huge DAGs dominate.
	MapWorkers int
}

// NewRunner returns a Runner with the paper's defaults.
func NewRunner() *Runner {
	return &Runner{AllocOptions: alloc.DefaultOptions()}
}

// Run evaluates every algorithm on every scenario on one cluster.
// The result is indexed [algo][scenario]. Any replay error aborts the run
// (replay errors indicate scheduling bugs, not workload properties).
//
// Different mapping configurations frequently produce identical schedules
// (a delta sweep point that makes no modification degenerates to the
// baseline, neighbouring sweep points coincide, ...). Replays are therefore
// memoized per scenario on the exact schedule signature — the simulation is
// deterministic, so identical schedules have identical makespans.
func (r *Runner) Run(scens []Scenario, cl *platform.Cluster, algos []AlgoSpec) ([][]RunResult, error) {
	out := make([][]RunResult, len(algos))
	for a := range out {
		out[a] = make([]RunResult, len(scens))
	}
	errs := make([]error, len(scens))
	par.ForEach(len(scens), r.Workers, func(i int) {
		g := scens[i].Graph()
		costs := moldable.NewCosts(g, cl.PlanSpeedGFlops())
		allocation := alloc.Compute(g, costs, cl, r.AllocOptions)
		cache := map[string]replayMemo{} // schedule signature -> replay outcome
		for a, spec := range algos {
			taskAlloc := allocation
			if spec.Alloc != nil {
				taskAlloc = alloc.Compute(g, costs, cl, *spec.Alloc)
			}
			mapOpts := spec.Map
			if r.Fast {
				mapOpts.Align = redist.AlignAuto
				mapOpts.AlignCap = core.FastAlignCap
				mapOpts.MemoEps = core.FastMemoEps
			}
			if r.Align != nil {
				mapOpts.Align = *r.Align
			}
			if r.MapWorkers > 0 {
				mapOpts.Workers = r.MapWorkers
			}
			sched := core.Map(g, costs, cl, taskAlloc, mapOpts)
			sig := scheduleSignature(sched)
			memo, hit := cache[sig]
			if !hit {
				simOpts := simdag.Options{Solver: r.Solver}
				if r.Fast {
					simOpts.ScratchThreshold = core.FastScratchThreshold
				}
				res, err := simdag.ExecuteOpts(g, costs, cl, sched, simOpts)
				if err != nil {
					errs[i] = fmt.Errorf("scenario %s / %s: %w", scens[i].Name(), spec.Name, err)
					return
				}
				memo = replayMemo{makespan: res.Makespan, counters: res.Counters}
				cache[sig] = memo
			}
			rr := RunResult{
				Makespan: memo.makespan,
				Work:     sched.TotalWork,
				Estimate: sched.EstMakespan(),
				Counters: sched.Counters,
			}
			rr.Counters.Add(&memo.counters)
			out[a][i] = rr
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// replayMemo caches one replay's outcome under its schedule signature.
type replayMemo struct {
	makespan float64
	counters obs.Counters
}

// scheduleSignature serializes the replay-relevant parts of a schedule
// (processor sets in rank order plus the mapping order) into a map key.
func scheduleSignature(s *core.Schedule) string {
	var b []byte
	for _, procs := range s.Procs {
		b = binary.AppendVarint(b, int64(len(procs)))
		for _, p := range procs {
			b = binary.AppendVarint(b, int64(p))
		}
	}
	for _, t := range s.Order {
		b = binary.AppendVarint(b, int64(t))
	}
	return string(b)
}

// Makespans extracts the makespan vectors from a result matrix.
func Makespans(results [][]RunResult) [][]float64 {
	out := make([][]float64, len(results))
	for a := range results {
		out[a] = make([]float64, len(results[a]))
		for s := range results[a] {
			out[a][s] = results[a][s].Makespan
		}
	}
	return out
}

// Works extracts the total-work vectors from a result matrix.
func Works(results [][]RunResult) [][]float64 {
	out := make([][]float64, len(results))
	for a := range results {
		out[a] = make([]float64, len(results[a]))
		for s := range results[a] {
			out[a][s] = results[a][s].Work
		}
	}
	return out
}
