package exp

// Integration tests pinning the qualitative reproduction claims of §IV on
// a deterministic scenario subsample (the full 557-configuration run is
// cmd/expdriver's job; these tests keep the *shape* from regressing).

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/platform"
)

// headlineResults runs the naive comparison on a fixed subsample.
func headlineResults(t *testing.T, cl *platform.Cluster, stride int) [][]float64 {
	t.Helper()
	r := NewRunner()
	scens := Subsample(Scenarios(), stride)
	results, err := r.Run(scens, cl, NaiveAlgos())
	if err != nil {
		t.Fatal(err)
	}
	return Makespans(results)
}

// TestReproductionDeltaBeatsHCPAOnGrillon pins Figure 2's headline for the
// delta strategy: shorter schedules than HCPA in a clear majority of
// scenarios and a mean ratio below 1 (the paper reports 9% shorter in 72%
// of scenarios; sub-sampling shifts the numbers but not the direction).
func TestReproductionDeltaBeatsHCPAOnGrillon(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	ms := headlineResults(t, platform.Grillon(), 16)
	s := metrics.Summarize(metrics.Relative(ms[1], ms[0]))
	if s.Mean >= 1.0 {
		t.Errorf("delta mean ratio %.3f, want < 1 (paper: 0.91)", s.Mean)
	}
	if s.ShorterPercent() < 55 {
		t.Errorf("delta shorter in %.0f%%, want a clear majority (paper: 72%%)", s.ShorterPercent())
	}
}

// TestReproductionTimeCostMajorityWins pins the time-cost strategy's
// majority-win property on grillon.
func TestReproductionTimeCostMajorityWins(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	ms := headlineResults(t, platform.Grillon(), 16)
	s := metrics.Summarize(metrics.Relative(ms[2], ms[0]))
	if s.ShorterPercent() < 50 {
		t.Errorf("time-cost shorter in %.0f%%, want a majority (paper: 80%%)", s.ShorterPercent())
	}
}

// TestReproductionTimeCostImprovesWithClusterSize pins the paper's §IV-D
// observation: the time-cost strategy gets relatively better as the
// cluster grows (its estimates ignore contention, and contention matters
// less on big clusters). Compare mean relative makespan on chti (20
// procs) vs grelon (120 procs).
func TestReproductionTimeCostImprovesWithClusterSize(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	small := headlineResults(t, platform.Chti(), 16)
	large := headlineResults(t, platform.Grelon(), 16)
	rSmall := metrics.Summarize(metrics.Relative(small[2], small[0])).Mean
	rLarge := metrics.Summarize(metrics.Relative(large[2], large[0])).Mean
	if rLarge >= rSmall {
		t.Errorf("time-cost mean ratio should improve with cluster size: chti %.3f vs grelon %.3f",
			rSmall, rLarge)
	}
}

// TestReproductionPackingHelps pins Figure 5's packing observation:
// enabling packing in the time-cost strategy does not hurt the average
// relative makespan (the paper reports it always produces shorter
// schedules).
func TestReproductionPackingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	r := NewRunner()
	scens := Subsample(ScenariosOf(Scenarios(), Irregular), 24)
	res, err := RunRhoSweep(r, scens, platform.Grillon(), Irregular)
	if err != nil {
		t.Fatal(err)
	}
	onBetter := 0
	for i := range res.MinRhos {
		if res.PackingOn[i] <= res.PackingOff[i]+1e-9 {
			onBetter++
		}
	}
	if onBetter*2 < len(res.MinRhos) {
		t.Errorf("packing helped at only %d/%d rho values; paper: always", onBetter, len(res.MinRhos))
	}
}

// TestReproductionHCPAWorstInDegradation pins Table VI's ordering: HCPA's
// average degradation from best is the largest of the three algorithms.
func TestReproductionHCPAWorstInDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	ms := headlineResults(t, platform.Grelon(), 16)
	deg := metrics.DegradationFromBest(ms)
	if deg[0].AvgOverAll < deg[1].AvgOverAll || deg[0].AvgOverAll < deg[2].AvgOverAll {
		t.Errorf("HCPA degradation %.2f%% should exceed delta %.2f%% and time-cost %.2f%%",
			deg[0].AvgOverAll, deg[1].AvgOverAll, deg[2].AvgOverAll)
	}
}
