// Package xrand provides deterministic random number helpers used by the
// DAG generators and the experiment harness.
//
// All randomness in this repository flows through an *xrand.Source seeded
// from a scenario identifier, so every experiment is exactly reproducible:
// the same (application type, parameter set, sample index) always yields the
// same task graph and the same costs, on any machine.
package xrand

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand.Rand seeded
// explicitly; it is NOT safe for concurrent use (each goroutine should own
// its Source, which the experiment runner guarantees).
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with the given seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// NewFromString returns a Source seeded from the FNV-1a hash of s.
// It is used to derive independent, stable seeds from scenario names such
// as "layered/n=50/width=0.5/density=0.2/regularity=0.8/sample=1".
func NewFromString(s string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return New(int64(h.Sum64()))
}

// SeedFromString derives a stable int64 seed from a string.
func SeedFromString(s string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return int64(h.Sum64())
}

// Uniform returns a float64 uniformly distributed in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// UniformInt returns an int uniformly distributed in [lo, hi] (inclusive).
func (s *Source) UniformInt(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// Float64 returns a float64 in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns an int in [0, n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle shuffles the first n elements using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.rng.Float64() < p }
