package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterministicBySeed(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield the same stream")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestNewFromStringStable(t *testing.T) {
	if SeedFromString("layered/n=50") != SeedFromString("layered/n=50") {
		t.Error("string seeds must be stable")
	}
	if SeedFromString("a") == SeedFromString("b") {
		t.Error("different strings should hash differently")
	}
	a := NewFromString("scenario-x")
	b := NewFromString("scenario-x")
	if a.Intn(1000) != b.Intn(1000) {
		t.Error("NewFromString must be deterministic")
	}
}

func TestPropertyUniformInRange(t *testing.T) {
	f := func(seed int64, loRaw, spanRaw uint16) bool {
		lo := float64(loRaw)
		hi := lo + float64(spanRaw) + 1
		s := New(seed)
		for i := 0; i < 20; i++ {
			v := s.Uniform(lo, hi)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUniformIntInclusive(t *testing.T) {
	f := func(seed int64, loRaw int8, spanRaw uint8) bool {
		lo := int(loRaw)
		hi := lo + int(spanRaw)
		s := New(seed)
		for i := 0; i < 20; i++ {
			v := s.UniformInt(lo, hi)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniformIntDegenerate(t *testing.T) {
	s := New(1)
	if got := s.UniformInt(5, 5); got != 5 {
		t.Errorf("UniformInt(5,5) = %d", got)
	}
	if got := s.UniformInt(5, 3); got != 5 {
		t.Errorf("UniformInt(5,3) should clamp to lo, got %d", got)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(7)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("Bool(0.3) frequency = %.3f, want ≈0.3", frac)
	}
	if s.Bool(0) {
		t.Error("Bool(0) must be false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(3)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}
