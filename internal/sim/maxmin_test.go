package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMinSingleFlow(t *testing.T) {
	rates := MaxMin([]float64{100}, [][]int{{0}}, nil)
	if rates[0] != 100 {
		t.Errorf("rate = %g, want 100", rates[0])
	}
}

func TestMaxMinEqualSharing(t *testing.T) {
	rates := MaxMin([]float64{100}, [][]int{{0}, {0}, {0}, {0}}, nil)
	for i, r := range rates {
		if math.Abs(r-25) > 1e-9 {
			t.Errorf("rate[%d] = %g, want 25", i, r)
		}
	}
}

// Classic parking-lot / dumbbell: flow A uses links 0 and 1; flow B uses
// link 0 only; flow C uses link 1 only. Link 0 has capacity 10, link 1 has
// capacity 100. Max-min: A and B share link 0 → 5 each; C gets 100−5 = 95.
func TestMaxMinParkingLot(t *testing.T) {
	rates := MaxMin(
		[]float64{10, 100},
		[][]int{{0, 1}, {0}, {1}},
		nil,
	)
	want := []float64{5, 5, 95}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Errorf("rate[%d] = %g, want %g", i, rates[i], want[i])
		}
	}
}

func TestMaxMinFlowCap(t *testing.T) {
	// Two flows on a 100-capacity link; one capped at 10. The capped flow
	// freezes at 10, the other takes the rest (90).
	rates := MaxMin([]float64{100}, [][]int{{0}, {0}}, []float64{10, 0})
	if math.Abs(rates[0]-10) > 1e-9 || math.Abs(rates[1]-90) > 1e-9 {
		t.Errorf("rates = %v, want [10 90]", rates)
	}
}

func TestMaxMinNoLinksNoCap(t *testing.T) {
	rates := MaxMin([]float64{1}, [][]int{nil}, nil)
	if !math.IsInf(rates[0], 1) {
		t.Errorf("unconstrained flow rate = %g, want +Inf", rates[0])
	}
}

func TestMaxMinEmpty(t *testing.T) {
	if rates := MaxMin([]float64{5}, nil, nil); len(rates) != 0 {
		t.Errorf("want empty rates, got %v", rates)
	}
}

// Property: feasibility — the summed rate over each link never exceeds its
// capacity — and positivity.
func TestPropertyMaxMinFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl := 1 + r.Intn(8)
		caps := make([]float64, nl)
		for i := range caps {
			caps[i] = 1 + r.Float64()*99
		}
		nf := 1 + r.Intn(12)
		flows := make([][]int, nf)
		fcaps := make([]float64, nf)
		for i := range flows {
			k := 1 + r.Intn(3)
			seen := map[int]bool{}
			for j := 0; j < k; j++ {
				l := r.Intn(nl)
				if !seen[l] {
					flows[i] = append(flows[i], l)
					seen[l] = true
				}
			}
			if r.Float64() < 0.3 {
				fcaps[i] = 0.5 + r.Float64()*20
			}
		}
		rates := MaxMin(caps, flows, fcaps)
		load := make([]float64, nl)
		for i, ls := range flows {
			if rates[i] < 0 {
				return false
			}
			if fcaps[i] > 0 && rates[i] > fcaps[i]+1e-9 {
				return false
			}
			for _, l := range ls {
				load[l] += rates[i]
			}
		}
		for l := range caps {
			if load[l] > caps[l]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: max-min bottleneck condition — every flow crosses at least one
// saturated link on which it has the maximal rate (or is at its own cap).
func TestPropertyMaxMinBottleneck(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl := 1 + r.Intn(5)
		caps := make([]float64, nl)
		for i := range caps {
			caps[i] = 1 + float64(r.Intn(50))
		}
		nf := 1 + r.Intn(8)
		flows := make([][]int, nf)
		for i := range flows {
			flows[i] = []int{r.Intn(nl)}
			if r.Float64() < 0.4 {
				l2 := r.Intn(nl)
				if l2 != flows[i][0] {
					flows[i] = append(flows[i], l2)
				}
			}
		}
		rates := MaxMin(caps, flows, nil)
		load := make([]float64, nl)
		maxOn := make([]float64, nl)
		for i, ls := range flows {
			for _, l := range ls {
				load[l] += rates[i]
				if rates[i] > maxOn[l] {
					maxOn[l] = rates[i]
				}
			}
		}
		for i, ls := range flows {
			ok := false
			for _, l := range ls {
				saturated := load[l] >= caps[l]-1e-6
				if saturated && rates[i] >= maxOn[l]-1e-6 {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Regression for the defensive no-progress path: a link with infinite
// capacity yields a +Inf share that never wins the strict minimum test, so
// progressive filling can fix nothing. The solver used to return with such
// flows unwritten — silently handing back stale scratch from a previous
// solve — instead of freezing them deterministically at 0.
func TestMaxMinNoProgressFreezesAtZero(t *testing.T) {
	var s maxMinSolver
	// First solve: populate the reused rates scratch with nonzero values.
	warm := s.Solve([]float64{100}, [][]int{{0}, {0}}, nil)
	if warm[0] != 50 || warm[1] != 50 {
		t.Fatalf("warm-up rates = %v, want [50 50]", warm)
	}
	// Second solve on an infinite-capacity link: no bottleneck can be
	// selected. Capped flows freeze at their caps, the rest at exactly 0 —
	// never at the previous solve's 50.
	rates := s.Solve([]float64{math.Inf(1)}, [][]int{{0}, {0}}, []float64{0, 7})
	if rates[0] != 0 {
		t.Errorf("uncapped stalled flow rate = %g, want a deterministic 0", rates[0])
	}
	if rates[1] != 7 {
		t.Errorf("capped stalled flow rate = %g, want its cap 7", rates[1])
	}
}

func BenchmarkMaxMin200Flows(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	nl := 250
	caps := make([]float64, nl)
	for i := range caps {
		caps[i] = 1.25e8
	}
	nf := 200
	flows := make([][]int, nf)
	fcaps := make([]float64, nf)
	for i := range flows {
		flows[i] = []int{r.Intn(nl), r.Intn(nl)}
		fcaps[i] = 1e8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxMin(caps, flows, fcaps)
	}
}
