package sim

// Adversarial timer/flow interleavings: randomized programs of staggered
// arrivals, chained completions and timer-started flows are replayed on
// both engines — the incremental flownet pool and the reference from-
// scratch MaxMin pool — which must agree on every completion time, on the
// completion order (up to floating-point ties) and on the final virtual
// time.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
)

// fuzzEvent is one recorded completion.
type fuzzEvent struct {
	flow int
	at   float64
}

// fuzzProgram is a deterministic random simulation script that can be
// replayed on any engine.
type fuzzProgram struct {
	cl    *platform.Cluster
	seed  int64
	flows int
}

// run replays the program and returns the completion log in callback
// order plus the final time.
func (p fuzzProgram) run(solver Solver) ([]fuzzEvent, float64) {
	rng := rand.New(rand.NewSource(p.seed))
	e := NewWithSolver(p.cl.LinkCapacities(), solver)
	var log []fuzzEvent
	next := 0
	newFlow := func() (links []int, rateCap, bytes float64, id int) {
		src := rng.Intn(p.cl.P)
		dst := rng.Intn(p.cl.P)
		links, _ = p.cl.Route(src, dst)
		rateCap = p.cl.EffectiveBandwidth(src, dst)
		if rng.Intn(8) == 0 {
			rateCap = 0
		}
		bytes = rng.Float64() * 5e8
		id = next
		next++
		return
	}
	for i := 0; i < p.flows; i++ {
		links, rateCap, bytes, id := newFlow()
		latency := rng.Float64() * 3
		chain := rng.Intn(4) == 0
		e.StartFlow(links, rateCap, latency, bytes, func() {
			log = append(log, fuzzEvent{flow: id, at: e.Now()})
			if chain {
				// Completion callbacks may start more flows: the classic
				// redistribution-triggers-successor pattern.
				cl2, cap2, b2, id2 := newFlow()
				e.StartFlow(cl2, cap2, 0, b2, func() {
					log = append(log, fuzzEvent{flow: id2, at: e.Now()})
				})
			}
		})
	}
	// A few bare timers interleave with flow completions.
	for i := 0; i < p.flows/4; i++ {
		at := rng.Float64() * 4
		links, rateCap, bytes, id := newFlow()
		e.At(at, func() {
			e.StartFlow(links, rateCap, 0, bytes, func() {
				log = append(log, fuzzEvent{flow: id, at: e.Now()})
			})
		})
	}
	return log, e.Run()
}

// timeClose allows the ulp-level divergence of the two pools' arithmetic.
func timeClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
}

func TestFuzzEnginesAgree(t *testing.T) {
	clusters := []*platform.Cluster{platform.Grillon(), platform.Grelon(), platform.Big512()}
	const programs = 30
	for _, cl := range clusters {
		for s := 0; s < programs; s++ {
			p := fuzzProgram{cl: cl, seed: int64(100*s + 17), flows: 40 + s%3*60}
			ref, refEnd := p.run(SolverMaxMin)
			got, gotEnd := p.run(SolverFlowNet)
			if !timeClose(refEnd, gotEnd) {
				t.Fatalf("%s seed %d: final time %g (flownet) vs %g (maxmin)", cl.Name, p.seed, gotEnd, refEnd)
			}
			if len(ref) != len(got) {
				t.Fatalf("%s seed %d: %d completions (flownet) vs %d (maxmin)", cl.Name, p.seed, len(got), len(ref))
			}
			// Per-flow completion times agree.
			refAt := make(map[int]float64, len(ref))
			for _, ev := range ref {
				refAt[ev.flow] = ev.at
			}
			for _, ev := range got {
				want, ok := refAt[ev.flow]
				if !ok {
					t.Fatalf("%s seed %d: flow %d completed only under flownet", cl.Name, p.seed, ev.flow)
				}
				if !timeClose(ev.at, want) {
					t.Fatalf("%s seed %d: flow %d completes at %g (flownet) vs %g (maxmin)",
						cl.Name, p.seed, ev.flow, ev.at, want)
				}
			}
			// Completion order agrees wherever times are distinguishable:
			// any strict time separation in the reference must order the
			// flownet log the same way.
			gotPos := make(map[int]int, len(got))
			for i, ev := range got {
				gotPos[ev.flow] = i
			}
			for i := 1; i < len(ref); i++ {
				prev, cur := ref[i-1], ref[i]
				if !timeClose(prev.at, cur.at) && gotPos[prev.flow] > gotPos[cur.flow] {
					t.Fatalf("%s seed %d: flows %d and %d complete in opposite orders",
						cl.Name, p.seed, prev.flow, cur.flow)
				}
			}
		}
	}
}

// TestFuzzEngineDeterminism pins replay determinism: the same program on
// the same solver must reproduce the identical completion log bit for bit.
func TestFuzzEngineDeterminism(t *testing.T) {
	for _, solver := range []Solver{SolverFlowNet, SolverMaxMin} {
		p := fuzzProgram{cl: platform.Grelon(), seed: 321, flows: 120}
		a, aEnd := p.run(solver)
		b, bEnd := p.run(solver)
		if aEnd != bEnd || len(a) != len(b) {
			t.Fatalf("%v: nondeterministic replay (%g/%d vs %g/%d)", solver, aEnd, len(a), bEnd, len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: completion %d differs across identical replays: %+v vs %+v", solver, i, a[i], b[i])
			}
		}
	}
}
