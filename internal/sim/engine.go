package sim

import (
	"fmt"
	"math"

	"repro/internal/flownet"
	"repro/internal/obs"
)

// completionEps is the residual byte count below which a fluid flow is
// considered drained. All transfers in this repository are ≥ kilobytes, so
// a micro-byte tolerance is safely below any meaningful volume.
const completionEps = 1e-6

// Solver selects the fluid-network rate solver backing an Engine.
type Solver int

const (
	// SolverFlowNet is the incremental internal/flownet engine: route
	// aggregation into weighted super-flows, bottleneck-level repair
	// across population changes, lazy draining. The default.
	SolverFlowNet Solver = iota
	// SolverMaxMin re-solves max-min rates from scratch on every
	// population change with the reference MaxMin solver and tracks each
	// flow individually. It is the oracle the flownet engine is tested
	// against, and stays runnable end to end.
	SolverMaxMin
)

// String implements fmt.Stringer.
func (s Solver) String() string {
	switch s {
	case SolverFlowNet:
		return "flownet"
	case SolverMaxMin:
		return "maxmin"
	}
	return fmt.Sprintf("Solver(%d)", int(s))
}

// Engine is the discrete-event core: a virtual clock, a timer queue and a
// set of active fluid flows whose rates are re-solved whenever the flow
// population changes, by the flow pool selected at construction.
//
// The zero value is not usable; create engines with New. Engines are not
// safe for concurrent use (simulations are single-threaded; parallelism in
// the experiment harness is across independent engines).
type Engine struct {
	now       float64
	timers    timerHeap
	seq       int64
	pool      flowPool
	batchPool []*flowBatch // recycled StartFlowBatch carriers

	// Flow-batch counters (plain stores; the engine is single-threaded).
	nBatches    uint64
	nBatchFlows uint64
}

// flowPool owns the in-flight fluid flows: their rates, their residual
// volumes, and the completion bookkeeping. The Engine drives it through
// this interface so the incremental flownet pool and the reference
// from-scratch max-min pool replay identically structured event loops.
type flowPool interface {
	start(links []int, rateCap, bytes float64, done func())
	count() int
	dirty() bool
	recompute()
	// popDrained completes every drained flow at time now, firing their
	// callbacks in arrival order after the pool's own bookkeeping is
	// consistent (callbacks may start new flows). Reports whether any
	// flow completed.
	popDrained(now float64) bool
	// next returns the absolute time of the earliest flow completion
	// after now (+Inf when no flow is draining).
	next(now float64) float64
	advance(dt float64)
	// stats adds the pool's solver counters into c.
	stats(c *obs.Counters)
}

type timer struct {
	at  float64
	seq int64 // FIFO tie-break for simultaneous timers
	fn  func()
}

// timerHeap is a concrete binary min-heap by (at, seq): container/heap
// would box every timer through interface{} on push and pop, one
// allocation each, which at big-cluster replay scales is a third of the
// replay's allocation volume.
type timerHeap []timer

func (h timerHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *timerHeap) push(t timer) {
	*h = append(*h, t)
	hh := *h
	i := len(hh) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !hh.less(i, p) {
			break
		}
		hh[i], hh[p] = hh[p], hh[i]
		i = p
	}
}

func (h *timerHeap) pop() timer {
	hh := *h
	top := hh[0]
	last := len(hh) - 1
	hh[0] = hh[last]
	*h = hh[:last]
	hh = hh[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= len(hh) {
			break
		}
		if r := c + 1; r < len(hh) && hh.less(r, c) {
			c = r
		}
		if !hh.less(c, i) {
			break
		}
		hh[i], hh[c] = hh[c], hh[i]
		i = c
	}
	return top
}

// New creates an engine over links with the given capacities (bytes/s),
// backed by the default flownet solver.
func New(linkCaps []float64) *Engine {
	return NewWithSolver(linkCaps, SolverFlowNet)
}

// NewWithSolver creates an engine with an explicit rate solver choice.
func NewWithSolver(linkCaps []float64, solver Solver) *Engine {
	return NewWithSolverThreshold(linkCaps, solver, 0)
}

// NewWithSolverThreshold is NewWithSolver with an explicit flownet
// scratch-solve threshold (0 = flownet.DefaultScratchThreshold). The
// threshold only selects between exact solve regimes, so simulated times
// are identical at any value; the maxmin reference pool has no scratch
// path and ignores it.
func NewWithSolverThreshold(linkCaps []float64, solver Solver, scratchThreshold int) *Engine {
	e := &Engine{}
	switch solver {
	case SolverMaxMin:
		e.pool = &maxminPool{linkCaps: linkCaps}
	default:
		net := flownet.New(linkCaps)
		net.SetScratchThreshold(scratchThreshold)
		e.pool = &netPool{net: net}
	}
	return e
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute virtual time t (clamped to now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.timers.push(timer{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// StartFlow begins a transfer of bytes over the given links after an
// initial latency, invoking done at completion.
//
// Self-flows (no links) and empty transfers complete after the latency
// alone — this implements the paper's free intra-node copies and zero-byte
// virtual edges. rateCap, if positive, bounds the flow's rate (β').
func (e *Engine) StartFlow(links []int, rateCap, latency, bytes float64, done func()) {
	if len(links) == 0 || bytes <= completionEps {
		e.After(latency, done)
		return
	}
	e.After(latency, func() { e.pool.start(links, rateCap, bytes, done) })
}

// FlowSpec describes one transfer of a StartFlowBatch call: the route, the
// per-flow rate cap (β', if positive) and the volume. A spec with no links
// or a negligible volume completes at batch fire time, mirroring
// StartFlow's self-flow and zero-byte rules.
type FlowSpec struct {
	Links   []int
	RateCap float64
	Bytes   float64
}

// StartFlowBatch begins a group of transfers that share one latency and one
// completion callback, invoked once per spec — exactly equivalent to
// len(specs) consecutive StartFlow calls with the same latency and done,
// including the order in which the flows enter the rate solver and the
// order in which simultaneous completions fire. The batch costs a single
// timer and no per-flow closures, where the equivalent StartFlow sequence
// pays one captured closure per wire flow; at replay scale that closure is
// the last per-flow allocation. The specs slice is copied: callers may
// reuse it immediately.
func (e *Engine) StartFlowBatch(latency float64, specs []FlowSpec, done func()) {
	if len(specs) == 0 {
		return
	}
	e.nBatches++
	e.nBatchFlows += uint64(len(specs))
	var b *flowBatch
	if k := len(e.batchPool); k > 0 {
		b = e.batchPool[k-1]
		e.batchPool = e.batchPool[:k-1]
	} else {
		b = &flowBatch{e: e}
		b.fire = b.run
	}
	b.specs = append(b.specs[:0], specs...)
	b.done = done
	e.After(latency, b.fire)
}

// flowBatch carries one StartFlowBatch call from registration to its fire
// time. The fire closure is bound once per pool entry, so a recycled batch
// reaches the timer heap without allocating.
type flowBatch struct {
	e     *Engine
	specs []FlowSpec
	done  func()
	fire  func()
}

func (b *flowBatch) run() {
	e, done := b.e, b.done
	for i := range b.specs {
		s := &b.specs[i]
		if len(s.Links) == 0 || s.Bytes <= completionEps {
			// Inline completion keeps the spec's position in the batch: a
			// StartFlow sequence would fire this done between the
			// neighboring flow starts via its own same-time timer.
			done()
		} else {
			e.pool.start(s.Links, s.RateCap, s.Bytes, done)
		}
		s.Links = nil // don't pin the caller's route arena past the start
	}
	b.specs = b.specs[:0]
	b.done = nil
	e.batchPool = append(e.batchPool, b)
}

// ActiveFlows returns the number of in-flight fluid flows (post-latency).
func (e *Engine) ActiveFlows() int { return e.pool.count() }

// Counters snapshots the engine's replay counters: flow-batch sizes plus
// the rate solver's regime counts (the flownet pool reports full /
// incremental / scratch solves and level-log events; the reference
// max-min pool reports every recompute as a full solve).
func (e *Engine) Counters() obs.Counters {
	var c obs.Counters
	c.FlowBatches = e.nBatches
	c.FlowBatchFlows = e.nBatchFlows
	e.pool.stats(&c)
	return c
}

// Run advances the simulation until no events remain. It returns the final
// virtual time. Run panics if the simulation cannot make progress (a flow
// with zero rate and no other event), which would indicate a zero-capacity
// link in the platform description.
func (e *Engine) Run() float64 {
	for {
		if e.pool.dirty() {
			e.pool.recompute()
		}
		// Complete drained flows first. A flow also counts as drained when
		// its residual volume cannot advance the clock by even one ULP
		// (now + remaining/rate == now): letting such residues linger
		// would livelock the loop below.
		if e.pool.popDrained(e.now) {
			continue
		}
		// Next flow completion and next timer.
		tFlow := e.pool.next(e.now)
		tTimer := math.Inf(1)
		if len(e.timers) > 0 {
			tTimer = e.timers[0].at
		}
		t := math.Min(tFlow, tTimer)
		if math.IsInf(t, 1) {
			if e.pool.count() > 0 {
				panic(fmt.Sprintf("sim: %d flows stalled with zero rate at t=%g", e.pool.count(), e.now))
			}
			return e.now
		}
		// Drain flows up to t; completions are handled at the top of the
		// next iteration.
		if t > e.now {
			e.pool.advance(t - e.now)
			e.now = t
		}
		// Fire due timers.
		for len(e.timers) > 0 && e.timers[0].at <= e.now {
			it := e.timers.pop()
			it.fn()
		}
	}
}

// netPool backs the engine with the incremental flownet subsystem. Flow
// volumes, rates and completion order live in the Net; the pool only maps
// flownet member ids back to completion callbacks.
type netPool struct {
	net    *flownet.Net
	done   []func() // indexed by flownet member id (ids are recycled)
	firing []func() // scratch: callbacks of the current completion batch
}

func (p *netPool) start(links []int, rateCap, bytes float64, done func()) {
	id := p.net.Start(links, rateCap, bytes)
	for id >= len(p.done) {
		p.done = append(p.done, nil)
	}
	p.done[id] = done
}

func (p *netPool) count() int { return p.net.Flows() }
func (p *netPool) stats(c *obs.Counters) {
	c.SolvesFull += uint64(p.net.FullSolves())
	c.SolvesIncremental += uint64(p.net.IncrementalSolves())
	c.SolvesScratch += uint64(p.net.ScratchSolves())
	c.CkRestores += uint64(p.net.CheckpointRestores())
	c.OrphanLevels += uint64(p.net.OrphanedLevels())
}
func (p *netPool) dirty() bool              { return p.net.Dirty() }
func (p *netPool) recompute()               { p.net.Solve() }
func (p *netPool) advance(dt float64)       { p.net.Advance(dt) }
func (p *netPool) next(now float64) float64 { return p.net.NextDeadline(now) }

func (p *netPool) popDrained(now float64) bool {
	p.firing = p.firing[:0]
	completed := p.net.PopDrained(now, completionEps, func(id int) {
		p.firing = append(p.firing, p.done[id])
		p.done[id] = nil
	})
	if !completed {
		return false
	}
	for i, fn := range p.firing {
		p.firing[i] = nil
		if fn != nil {
			fn()
		}
	}
	return true
}

// maxminPool is the reference pool: one record per flow, rates re-solved
// from scratch by MaxMin on every population change.
type maxminPool struct {
	linkCaps []float64
	flows    []*flow
	stale    bool // flow set changed; rates must be recomputed
	solves   uint64

	// Scratch buffers reused across rate recomputations.
	solver     maxMinSolver
	scratchLnk [][]int
	scratchCap []float64
	firing     []*flow
}

type flow struct {
	links     []int
	rateCap   float64
	remaining float64
	rate      float64
	done      func()
}

func (p *maxminPool) start(links []int, rateCap, bytes float64, done func()) {
	p.flows = append(p.flows, &flow{
		links: links, rateCap: rateCap, remaining: bytes, done: done,
	})
	p.stale = true
}

func (p *maxminPool) count() int { return len(p.flows) }

func (p *maxminPool) dirty() bool { return p.stale }

func (p *maxminPool) stats(c *obs.Counters) { c.SolvesFull += p.solves }

// recompute re-solves the max-min rate allocation from scratch.
func (p *maxminPool) recompute() {
	p.solves++
	n := len(p.flows)
	if cap(p.scratchLnk) < n {
		p.scratchLnk = make([][]int, n)
		p.scratchCap = make([]float64, n)
	}
	flowLinks := p.scratchLnk[:n]
	flowCaps := p.scratchCap[:n]
	for i, f := range p.flows {
		flowLinks[i] = f.links
		flowCaps[i] = f.rateCap
	}
	rates := p.solver.Solve(p.linkCaps, flowLinks, flowCaps)
	// Release the link-slice references once solved: as the flow population
	// shrinks, slots past the next n would otherwise pin completed flows'
	// link slices for the rest of a long simulation.
	for i := range flowLinks {
		flowLinks[i] = nil
	}
	for i, f := range p.flows {
		f.rate = rates[i]
	}
	p.stale = false
}

func (p *maxminPool) popDrained(now float64) bool {
	kept := p.flows[:0]
	p.firing = p.firing[:0]
	for _, f := range p.flows {
		drained := f.remaining <= completionEps ||
			(f.rate > 0 && now+f.remaining/f.rate <= now)
		if drained {
			p.firing = append(p.firing, f)
		} else {
			kept = append(kept, f)
		}
	}
	if len(p.firing) == 0 {
		return false
	}
	p.flows = kept
	p.stale = true
	for i, f := range p.firing {
		p.firing[i] = nil
		if f.done != nil {
			f.done()
		}
	}
	return true
}

func (p *maxminPool) next(now float64) float64 {
	t := math.Inf(1)
	for _, f := range p.flows {
		if f.rate <= 0 {
			continue
		}
		if tt := now + f.remaining/f.rate; tt < t {
			t = tt
		}
	}
	return t
}

func (p *maxminPool) advance(dt float64) {
	for _, f := range p.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}
