package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// completionEps is the residual byte count below which a fluid flow is
// considered drained. All transfers in this repository are ≥ kilobytes, so
// a micro-byte tolerance is safely below any meaningful volume.
const completionEps = 1e-6

// Engine is the discrete-event core: a virtual clock, a timer queue and a
// set of active fluid flows whose rates are re-solved with MaxMin whenever
// the flow population changes.
//
// The zero value is not usable; create engines with New. Engines are not
// safe for concurrent use (simulations are single-threaded; parallelism in
// the experiment harness is across independent engines).
type Engine struct {
	now      float64
	linkCaps []float64
	flows    []*flow
	timers   timerHeap
	seq      int64
	dirty    bool // flow set changed; rates must be recomputed

	// Scratch buffers reused across rate recomputations.
	solver     maxMinSolver
	scratchLnk [][]int
	scratchCap []float64
}

type flow struct {
	links     []int
	rateCap   float64
	remaining float64
	rate      float64
	done      func()
}

type timer struct {
	at  float64
	seq int64 // FIFO tie-break for simultaneous timers
	fn  func()
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// New creates an engine over links with the given capacities (bytes/s).
func New(linkCaps []float64) *Engine {
	return &Engine{linkCaps: linkCaps}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute virtual time t (clamped to now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.timers, timer{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// StartFlow begins a transfer of bytes over the given links after an
// initial latency, invoking done at completion.
//
// Self-flows (no links) and empty transfers complete after the latency
// alone — this implements the paper's free intra-node copies and zero-byte
// virtual edges. rateCap, if positive, bounds the flow's rate (β').
func (e *Engine) StartFlow(links []int, rateCap, latency, bytes float64, done func()) {
	if len(links) == 0 || bytes <= completionEps {
		e.After(latency, done)
		return
	}
	e.After(latency, func() {
		e.flows = append(e.flows, &flow{
			links: links, rateCap: rateCap, remaining: bytes, done: done,
		})
		e.dirty = true
	})
}

// ActiveFlows returns the number of in-flight fluid flows (post-latency).
func (e *Engine) ActiveFlows() int { return len(e.flows) }

// recompute re-solves the max-min rate allocation.
func (e *Engine) recompute() {
	n := len(e.flows)
	if cap(e.scratchLnk) < n {
		e.scratchLnk = make([][]int, n)
		e.scratchCap = make([]float64, n)
	}
	flowLinks := e.scratchLnk[:n]
	flowCaps := e.scratchCap[:n]
	for i, f := range e.flows {
		flowLinks[i] = f.links
		flowCaps[i] = f.rateCap
	}
	rates := e.solver.Solve(e.linkCaps, flowLinks, flowCaps)
	// Release the link-slice references once solved: as the flow population
	// shrinks, slots past the next n would otherwise pin completed flows'
	// link slices for the rest of a long simulation.
	for i := range flowLinks {
		flowLinks[i] = nil
	}
	for i, f := range e.flows {
		f.rate = rates[i]
	}
	e.dirty = false
}

// Run advances the simulation until no events remain. It returns the final
// virtual time. Run panics if the simulation cannot make progress (a flow
// with zero rate and no other event), which would indicate a zero-capacity
// link in the platform description.
func (e *Engine) Run() float64 {
	for {
		if e.dirty {
			e.recompute()
		}
		// Complete drained flows first. A flow also counts as drained when
		// its residual volume cannot advance the clock by even one ULP
		// (now + remaining/rate == now): letting such residues linger
		// would livelock the loop below.
		kept := e.flows[:0]
		var completed []*flow
		for _, f := range e.flows {
			drained := f.remaining <= completionEps ||
				(f.rate > 0 && e.now+f.remaining/f.rate <= e.now)
			if drained {
				completed = append(completed, f)
			} else {
				kept = append(kept, f)
			}
		}
		if len(completed) > 0 {
			e.flows = kept
			e.dirty = true
			for _, f := range completed {
				if f.done != nil {
					f.done()
				}
			}
			continue
		}
		// Next flow completion and next timer.
		tFlow := math.Inf(1)
		for _, f := range e.flows {
			if f.rate <= 0 {
				continue
			}
			if t := e.now + f.remaining/f.rate; t < tFlow {
				tFlow = t
			}
		}
		tTimer := math.Inf(1)
		if len(e.timers) > 0 {
			tTimer = e.timers[0].at
		}
		t := math.Min(tFlow, tTimer)
		if math.IsInf(t, 1) {
			if len(e.flows) > 0 {
				panic(fmt.Sprintf("sim: %d flows stalled with zero rate at t=%g", len(e.flows), e.now))
			}
			return e.now
		}
		// Drain flows up to t; completions are handled at the top of the
		// next iteration.
		if t > e.now {
			dt := t - e.now
			for _, f := range e.flows {
				f.remaining -= f.rate * dt
				if f.remaining < 0 {
					f.remaining = 0
				}
			}
			e.now = t
		}
		// Fire due timers.
		for len(e.timers) > 0 && e.timers[0].at <= e.now {
			it := heap.Pop(&e.timers).(timer)
			it.fn()
		}
	}
}
