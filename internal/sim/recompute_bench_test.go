package sim

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/flownet"
	"repro/internal/platform"
)

// BenchmarkRecompute isolates the steady-state recompute path of the two
// fluid-network pools: a fixed-size random flow population over a
// production-scale cluster where every completion immediately starts a
// replacement flow, so each benchmark op is one population change — the
// rate re-solve plus the completion bookkeeping, without the engine's
// timer machinery or the schedule-replay setup around it. allocs/op is
// the headline: the flownet pool recycles members, entities and solver
// state, while the reference pool pays per-flow allocations on every
// churn cycle. cmd/benchtraj folds the per-cluster allocs/op ratio into
// BENCH_sim.json next to the end-to-end replay speedups.
func BenchmarkRecompute(b *testing.B) {
	const population = 512
	for _, cl := range []*platform.Cluster{platform.Big512(), platform.Big1024()} {
		caps := cl.LinkCapacities()
		for _, eng := range []struct {
			name   string
			solver Solver
		}{
			{"flownet", SolverFlowNet},
			{"maxmin", SolverMaxMin},
		} {
			b.Run(cl.Name+"/"+eng.name, func(b *testing.B) {
				var pool flowPool
				switch eng.solver {
				case SolverMaxMin:
					pool = &maxminPool{linkCaps: caps}
				default:
					pool = &netPool{net: flownet.New(caps)}
				}
				rng := rand.New(rand.NewSource(41))
				// Pre-generated churn: route construction and the shared
				// completion callback live outside the measurement — a
				// per-flow closure or route slice would charge both pools
				// identically and drown out the solver-side difference
				// being measured.
				type churnFlow struct {
					links   []int
					rateCap float64
					volume  float64
				}
				flows := make([]churnFlow, 8192)
				for i := range flows {
					src := rng.Intn(cl.P)
					dst := rng.Intn(cl.P)
					for dst == src {
						dst = rng.Intn(cl.P)
					}
					links, _ := cl.Route(src, dst)
					flows[i] = churnFlow{links: links, rateCap: cl.EffectiveBandwidth(src, dst), volume: 1e5 + rng.Float64()*1e9}
				}
				next := 0
				remaining := b.N
				var startOne func()
				done := func() {
					if remaining > 0 {
						remaining--
						startOne()
					}
				}
				startOne = func() {
					f := &flows[next%len(flows)]
					next++
					pool.start(f.links, f.rateCap, f.volume, done)
				}
				for i := 0; i < population; i++ {
					startOne()
				}
				pool.recompute()
				now := 0.0
				b.ResetTimer()
				b.ReportAllocs()
				var ms0 runtime.MemStats
				runtime.ReadMemStats(&ms0)
				for remaining > 0 && pool.count() > 0 {
					if pool.dirty() {
						pool.recompute()
					}
					t := pool.next(now)
					if math.IsInf(t, 1) {
						b.Fatal("population stalled")
					}
					if t > now {
						pool.advance(t - now)
						now = t
					}
					pool.popDrained(now)
				}
				b.StopTimer()
				// allocs/op rounds to integers; the churn sits near zero on
				// the flownet side, so report the exact fraction too.
				var ms1 runtime.MemStats
				runtime.ReadMemStats(&ms1)
				b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(b.N), "mallocs/op")
			})
		}
	}
}
