package sim

import (
	"math"
	"testing"
)

func TestTimersFireInOrder(t *testing.T) {
	e := New(nil)
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.At(1, func() { got = append(got, 11) }) // same instant, FIFO
	end := e.Run()
	if end != 3 {
		t.Errorf("end time = %g, want 3", end)
	}
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSingleFlowCompletion(t *testing.T) {
	// One link at 100 B/s; 1000 bytes with 0.5 s latency → done at 10.5 s.
	e := New([]float64{100})
	var doneAt float64
	e.StartFlow([]int{0}, 0, 0.5, 1000, func() { doneAt = e.Now() })
	e.Run()
	if math.Abs(doneAt-10.5) > 1e-9 {
		t.Errorf("completion at %g, want 10.5", doneAt)
	}
}

func TestSelfFlowInstant(t *testing.T) {
	e := New(nil)
	var doneAt float64 = -1
	e.StartFlow(nil, 0, 0, 12345, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 0 {
		t.Errorf("self flow completed at %g, want 0", doneAt)
	}
}

func TestFlowRateCap(t *testing.T) {
	// Link at 100 B/s but flow capped at 10 B/s: 100 bytes takes 10 s.
	e := New([]float64{100})
	var doneAt float64
	e.StartFlow([]int{0}, 10, 0, 100, func() { doneAt = e.Now() })
	e.Run()
	if math.Abs(doneAt-10) > 1e-9 {
		t.Errorf("completion at %g, want 10", doneAt)
	}
}

// Two equal flows on one link: both at cap/2 until the first finishes,
// then the survivor speeds up. Flow A = 100 bytes, flow B = 200 bytes,
// link 100 B/s. Phase 1: both at 50 B/s; A done at t=2 (100/50). B has
// 100 bytes left, now alone at 100 B/s → done at t=3.
func TestBandwidthSharingDynamics(t *testing.T) {
	e := New([]float64{100})
	var aDone, bDone float64
	e.StartFlow([]int{0}, 0, 0, 100, func() { aDone = e.Now() })
	e.StartFlow([]int{0}, 0, 0, 200, func() { bDone = e.Now() })
	e.Run()
	if math.Abs(aDone-2) > 1e-9 {
		t.Errorf("A done at %g, want 2", aDone)
	}
	if math.Abs(bDone-3) > 1e-9 {
		t.Errorf("B done at %g, want 3", bDone)
	}
}

// A flow that starts mid-way steals bandwidth from a running one.
func TestLateArrivalResharing(t *testing.T) {
	e := New([]float64{100})
	var aDone, bDone float64
	// A: 300 bytes from t=0. Alone until t=1 (100 transferred), then shares.
	e.StartFlow([]int{0}, 0, 0, 300, func() { aDone = e.Now() })
	// B: arrives at t=1 (latency 1), 100 bytes.
	e.StartFlow([]int{0}, 0, 1, 100, func() { bDone = e.Now() })
	e.Run()
	// From t=1: A has 200 left at 50 B/s; B has 100 at 50 B/s → B done t=3.
	// Then A alone: 100 left at 100 B/s → done t=4.
	if math.Abs(bDone-3) > 1e-9 {
		t.Errorf("B done at %g, want 3", bDone)
	}
	if math.Abs(aDone-4) > 1e-9 {
		t.Errorf("A done at %g, want 4", aDone)
	}
}

func TestChainedCallbacksStartFlows(t *testing.T) {
	e := New([]float64{100})
	var secondDone float64
	e.StartFlow([]int{0}, 0, 0, 100, func() {
		// At t=1 start another flow.
		e.StartFlow([]int{0}, 0, 0, 200, func() { secondDone = e.Now() })
	})
	e.Run()
	if math.Abs(secondDone-3) > 1e-9 {
		t.Errorf("second flow done at %g, want 3", secondDone)
	}
}

func TestParkingLotCompletionTimes(t *testing.T) {
	// Links: 0 (cap 10), 1 (cap 100). Flow A (links 0,1) 100 bytes;
	// flow B (link 0) 100 bytes; flow C (link 1) 950 bytes.
	// Phase 1 rates: A=5, B=5, C=95. A and B finish at t=20 (100/5).
	// C transferred 95·20? No — C is done at 10: 950/95 = 10 s, before A/B.
	// After C finishes at t=10: A and B still share link 0: 5 each. A and B
	// finish at t = 20.
	e := New([]float64{10, 100})
	var aDone, bDone, cDone float64
	e.StartFlow([]int{0, 1}, 0, 0, 100, func() { aDone = e.Now() })
	e.StartFlow([]int{0}, 0, 0, 100, func() { bDone = e.Now() })
	e.StartFlow([]int{1}, 0, 0, 950, func() { cDone = e.Now() })
	e.Run()
	if math.Abs(cDone-10) > 1e-9 {
		t.Errorf("C done at %g, want 10", cDone)
	}
	if math.Abs(aDone-20) > 1e-9 || math.Abs(bDone-20) > 1e-9 {
		t.Errorf("A/B done at %g/%g, want 20/20", aDone, bDone)
	}
}

func TestEngineReportsActiveFlows(t *testing.T) {
	e := New([]float64{1})
	e.StartFlow([]int{0}, 0, 0, 10, nil)
	if e.ActiveFlows() != 0 {
		t.Error("flow should not be active before Run (latency phase)")
	}
	e.Run()
	if e.ActiveFlows() != 0 {
		t.Error("flows should drain by the end of Run")
	}
}

func TestRecomputeReleasesScratchReferences(t *testing.T) {
	// Start many concurrent flows, then let the population shrink to zero:
	// the rate-recomputation scratch of the reference pool must not keep
	// pointing at completed flows' link slices, which would pin them for
	// the rest of a long simulation.
	e := NewWithSolver([]float64{100, 100, 100}, SolverMaxMin)
	for i := 0; i < 8; i++ {
		links := []int{i % 3}
		e.StartFlow(links, 0, 0, float64(100*(i+1)), nil)
	}
	e.Run()
	p := e.pool.(*maxminPool)
	for i, l := range p.scratchLnk {
		if l != nil {
			t.Fatalf("scratchLnk[%d] still references a link slice after Run", i)
		}
	}
	if cap(p.scratchLnk) < 8 {
		t.Fatalf("scratch capacity %d, want ≥ 8 (buffer should be reused, not dropped)", cap(p.scratchLnk))
	}
}
