// Package sim is a flow-level (fluid) discrete-event simulator of cluster
// networks, substituting for the SimGrid toolkit the paper uses (§IV).
//
// The model is the one §IV-A describes: each network link has a latency λ
// and a bandwidth β; concurrent flows share link bandwidth according to
// max-min fairness (progressive filling); and each flow's rate is further
// capped by the empirical TCP-window bandwidth β' = min(β, Wmax/RTT). A
// transfer of S bytes therefore completes after its one-way route latency
// plus the fluid time needed to drain S bytes at the (time-varying)
// max-min rate.
//
// Computations do not share resources (one task per processor, enforced by
// the replay layer), so they are plain timers.
package sim

import (
	"math"
	"sort"
)

// MaxMin computes the max-min fair allocation of flow rates.
//
//   - linkCaps[l] is the capacity of link l (bytes/second).
//   - flowLinks[f] lists the links flow f traverses (possibly empty).
//   - flowCaps[f] is an optional per-flow rate cap (<= 0 means none),
//     implementing the empirical bandwidth β'.
//
// The returned slice holds one rate per flow. A flow with no links and no
// cap receives math.Inf(1).
//
// The algorithm is progressive filling: repeatedly find the most contended
// resource (minimum capacity share among links, or the smallest per-flow
// cap if it is lower), freeze the flows it constrains at that rate, remove
// their consumption, and continue until every flow is frozen. The result
// is the unique max-min fair point: no flow's rate can be increased
// without decreasing the rate of a flow with an equal or smaller rate.
func MaxMin(linkCaps []float64, flowLinks [][]int, flowCaps []float64) []float64 {
	var s maxMinSolver
	return s.Solve(linkCaps, flowLinks, flowCaps)
}

// maxMinSolver holds reusable scratch buffers so steady-state simulations
// do not allocate on every rate recomputation. The zero value is ready to
// use; it is not safe for concurrent use.
type maxMinSolver struct {
	rem       []float64 // remaining capacity per link
	cnt       []int     // unfixed flows per link
	active    []int     // links with cnt > 0 (compacted as they drain)
	fixed     []bool    // per flow
	rates     []float64
	linkFlows [][]int // link -> flows through it (backing reused)
	capOrder  []int   // flow indices sorted by ascending cap
}

func (s *maxMinSolver) Solve(linkCaps []float64, flowLinks [][]int, flowCaps []float64) []float64 {
	nf := len(flowLinks)
	s.rates = resize(s.rates, nf)
	rates := s.rates
	if nf == 0 {
		return rates
	}
	nl := len(linkCaps)
	s.rem = resize(s.rem, nl)
	copy(s.rem, linkCaps)
	s.cnt = resizeInt(s.cnt, nl)
	for i := range s.cnt {
		s.cnt[i] = 0
	}
	if cap(s.linkFlows) < nl {
		s.linkFlows = make([][]int, nl)
	}
	s.linkFlows = s.linkFlows[:nl]
	for l := range s.linkFlows {
		s.linkFlows[l] = s.linkFlows[l][:0]
	}
	s.fixed = resizeBool(s.fixed, nf)

	unfixed := 0
	for f := 0; f < nf; f++ {
		s.fixed[f] = false
		ls := flowLinks[f]
		hasCap := flowCaps != nil && flowCaps[f] > 0
		if len(ls) == 0 && !hasCap {
			rates[f] = math.Inf(1)
			s.fixed[f] = true
			continue
		}
		for _, l := range ls {
			s.cnt[l]++
			s.linkFlows[l] = append(s.linkFlows[l], f)
		}
		unfixed++
	}

	// Active links, compacted in place as they empty.
	s.active = s.active[:0]
	for l := 0; l < nl; l++ {
		if s.cnt[l] > 0 {
			s.active = append(s.active, l)
		}
	}
	// Flows ordered by ascending cap; capPtr advances past fixed flows.
	s.capOrder = s.capOrder[:0]
	if flowCaps != nil {
		for f := 0; f < nf; f++ {
			if !s.fixed[f] && flowCaps[f] > 0 {
				s.capOrder = append(s.capOrder, f)
			}
		}
		sort.Slice(s.capOrder, func(a, b int) bool {
			return flowCaps[s.capOrder[a]] < flowCaps[s.capOrder[b]]
		})
	}
	capPtr := 0

	fix := func(f int, rate float64, ls []int) {
		rates[f] = rate
		s.fixed[f] = true
		unfixed--
		for _, l := range ls {
			s.rem[l] -= rate
			if s.rem[l] < 0 {
				s.rem[l] = 0
			}
			s.cnt[l]--
		}
	}

	for unfixed > 0 {
		// Candidate 1: smallest fair share among active links.
		share := math.Inf(1)
		bottleneck := -1
		w := 0
		for _, l := range s.active {
			if s.cnt[l] == 0 {
				continue // drained; drop from the active list
			}
			s.active[w] = l
			w++
			if sh := s.rem[l] / float64(s.cnt[l]); sh < share {
				share = sh
				bottleneck = l
			}
		}
		s.active = s.active[:w]
		// Candidate 2: smallest cap among unfixed capped flows.
		for capPtr < len(s.capOrder) && s.fixed[s.capOrder[capPtr]] {
			capPtr++
		}
		capFlow := -1
		if capPtr < len(s.capOrder) {
			f := s.capOrder[capPtr]
			if flowCaps[f] < share {
				capFlow = f
			}
		}
		switch {
		case capFlow >= 0:
			fix(capFlow, flowCaps[capFlow], flowLinks[capFlow])
		case bottleneck >= 0:
			if share < 0 {
				share = 0
			}
			// Freeze every unfixed flow through the bottleneck.
			for _, f := range s.linkFlows[bottleneck] {
				if !s.fixed[f] {
					fix(f, share, flowLinks[f])
				}
			}
		default:
			// Defensive no-progress path: no link share beats +Inf (links
			// with infinite capacity never win the strict minimum test)
			// and no capped flow is pending. Freeze the remaining capped
			// flows at their caps, then everything still unfixed at 0 —
			// the rates slice is reused scratch, so leaving stragglers
			// unwritten would silently hand back stale rates from a
			// previous solve.
			for capPtr < len(s.capOrder) {
				f := s.capOrder[capPtr]
				if !s.fixed[f] {
					fix(f, flowCaps[f], flowLinks[f])
				}
				capPtr++
			}
			for f := 0; f < nf && unfixed > 0; f++ {
				if !s.fixed[f] {
					fix(f, 0, flowLinks[f])
				}
			}
			return rates
		}
	}
	return rates
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
