package sim

import (
	"strings"
	"testing"
)

// Failure injection: the engine must fail loudly (panic with context)
// rather than spin when a platform description is broken.

func TestStalledFlowPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("zero-capacity link should panic, not hang")
		}
		if !strings.Contains(r.(string), "stalled") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	e := New([]float64{0}) // broken platform: zero-capacity link
	e.StartFlow([]int{0}, 0, 0, 100, nil)
	e.Run()
}

func TestPastTimerClampsToNow(t *testing.T) {
	e := New(nil)
	var order []string
	e.At(5, func() {
		// Scheduling into the past must fire "now", after the current
		// instant's remaining callbacks, not violate time monotonicity.
		e.At(1, func() { order = append(order, "late") })
		order = append(order, "first")
	})
	end := e.Run()
	if end != 5 {
		t.Errorf("end = %g, want 5", end)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "late" {
		t.Errorf("order = %v", order)
	}
}

func TestSubResolutionResidueCompletes(t *testing.T) {
	// Regression test for the fluid-drain livelock: a flow whose residual
	// drain time is below the clock's floating-point resolution must still
	// complete. Start a big flow, then at a large "now" start a tiny one.
	e := New([]float64{1e8})
	var tinyDone bool
	e.At(1e9, func() { // now is huge: ULP(1e9) ≈ 1.2e-7 s
		// 1 byte at 1e8 B/s needs 1e-8 s < ULP(now).
		e.StartFlow([]int{0}, 0, 0, 1, func() { tinyDone = true })
	})
	e.Run()
	if !tinyDone {
		t.Fatal("sub-resolution flow never completed")
	}
}

func TestManySimultaneousFlows(t *testing.T) {
	// Stress: 500 flows on one link all complete, conserving total bytes.
	e := New([]float64{1000})
	done := 0
	for i := 0; i < 500; i++ {
		e.StartFlow([]int{0}, 0, 0, 10, func() { done++ })
	}
	end := e.Run()
	if done != 500 {
		t.Fatalf("completed %d/500 flows", done)
	}
	// 5000 bytes through a 1000 B/s link: exactly 5 seconds.
	if end < 4.99 || end > 5.01 {
		t.Errorf("end = %g, want ≈5", end)
	}
}
