package sim

import (
	"math"
	"math/rand"
	"testing"
)

// TestStartFlowBatchMatchesStartFlow is the batching oracle: random flow
// populations (mixed routes, rate caps, latencies, plus self-flows and
// zero-byte transfers) are run once as individual StartFlow calls and once
// grouped into per-latency batches. The completion event sequences — every
// timestamp, in firing order — must be identical, which pins the ordering
// contract StartFlowBatch documents: member order into the rate solver and
// tie-break order out of it match the equivalent StartFlow sequence.
func TestStartFlowBatchMatchesStartFlow(t *testing.T) {
	type spec struct {
		links   []int
		rateCap float64
		bytes   float64
		lat     float64
	}
	rng := rand.New(rand.NewSource(11))
	lats := []float64{0, 0.25, 0.5}
	for trial := 0; trial < 40; trial++ {
		caps := make([]float64, 3+rng.Intn(4))
		for i := range caps {
			caps[i] = 50 + 200*rng.Float64()
		}
		specs := make([]spec, 1+rng.Intn(12))
		for i := range specs {
			var links []int
			for l := range caps {
				if rng.Intn(2) == 0 {
					links = append(links, l)
				}
			}
			bytes := 10 + 2000*rng.Float64()
			switch rng.Intn(8) {
			case 0:
				links = nil // self-flow: completes after latency alone
			case 1:
				bytes = 0 // zero-byte virtual edge
			}
			rc := 0.0
			if rng.Intn(2) == 0 {
				rc = 20 + 100*rng.Float64()
			}
			specs[i] = spec{links, rc, bytes, lats[rng.Intn(len(lats))]}
		}

		run := func(batched bool) []float64 {
			e := New(caps)
			var times []float64
			done := func() { times = append(times, e.Now()) }
			if !batched {
				for _, s := range specs {
					e.StartFlow(s.links, s.rateCap, s.lat, s.bytes, done)
				}
			} else {
				// Group by latency in first-appearance order — the same
				// transformation the simdag replay applies per edge.
				var seen []float64
				for _, s := range specs {
					dup := false
					for _, l := range seen {
						if l == s.lat {
							dup = true
							break
						}
					}
					if !dup {
						seen = append(seen, s.lat)
					}
				}
				var group []FlowSpec
				for _, l := range seen {
					group = group[:0]
					for _, s := range specs {
						if s.lat == l {
							group = append(group, FlowSpec{Links: s.links, RateCap: s.rateCap, Bytes: s.bytes})
						}
					}
					e.StartFlowBatch(l, group, done)
				}
			}
			e.Run()
			return times
		}

		individual, batched := run(false), run(true)
		if len(individual) != len(batched) {
			t.Fatalf("trial %d: %d completions batched vs %d individual", trial, len(batched), len(individual))
		}
		for i := range individual {
			if math.Abs(individual[i]-batched[i]) > 1e-12 {
				t.Fatalf("trial %d completion %d: batched at %g, individual at %g",
					trial, i, batched[i], individual[i])
			}
		}
	}
}

// TestStartFlowBatchRecyclesAndChains exercises the batch pool across
// waves: a completion callback launches the next batch, and the engine is
// re-run after going idle. Both reuse paths must hand out clean carriers.
func TestStartFlowBatchRecyclesAndChains(t *testing.T) {
	e := New([]float64{100})
	completions := 0
	var secondWave func()
	secondWave = func() {
		completions++
		if completions == 2 {
			// First wave fully drained: chain a second batch from inside
			// the callback, reusing the recycled carrier.
			e.StartFlowBatch(0.5, []FlowSpec{{Links: []int{0}, Bytes: 100}}, func() { completions++ })
		}
	}
	e.StartFlowBatch(0, []FlowSpec{
		{Links: []int{0}, Bytes: 100},
		{Links: []int{0}, Bytes: 100},
	}, secondWave)
	e.Run()
	if completions != 3 {
		t.Fatalf("completions = %d, want 3", completions)
	}
	// Idle engine, third wave: Run again after quiescence.
	e.StartFlowBatch(0, []FlowSpec{{Bytes: 5}, {Links: []int{0}, Bytes: 50}}, func() { completions++ })
	e.Run()
	if completions != 5 {
		t.Fatalf("completions after re-run = %d, want 5", completions)
	}
	// The caller's spec slice must not be retained.
	reused := []FlowSpec{{Links: []int{0}, Bytes: 70}}
	fired := false
	e.StartFlowBatch(0.1, reused, func() { fired = true })
	reused[0] = FlowSpec{} // clobber before the batch fires
	e.Run()
	if !fired {
		t.Fatal("clobbering the caller's slice reached the batch")
	}
}

// TestStartFlowBatchSteadyStateAllocFree pins the point of batching: once
// the engine's pools are warm (batch carriers, timer heap, solver
// entities), registering and draining a 64-flow batch allocates nothing at
// all. The equivalent StartFlow sequence pays one captured closure per
// flow on every cycle, warm or not.
func TestStartFlowBatchSteadyStateAllocFree(t *testing.T) {
	e := New([]float64{100, 100})
	specs := make([]FlowSpec, 64)
	for i := range specs {
		specs[i] = FlowSpec{Links: []int{i % 2}, Bytes: 100}
	}
	done := func() {}
	for i := 0; i < 3; i++ { // warm every pool on the cycle's path
		e.StartFlowBatch(0.1, specs, done)
		e.Run()
	}
	allocs := testing.AllocsPerRun(50, func() {
		e.StartFlowBatch(0.1, specs, done)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("warm 64-flow batch cycle allocates %.1f times, want 0", allocs)
	}
}
