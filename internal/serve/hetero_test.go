package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/rats"
)

// TestServeHeteroClusterSpec drives a request with an inline heterogeneous
// cluster description (speed vector + per-node and per-uplink bandwidths)
// and checks the served result is byte-identical to the library on the
// same custom cluster.
func TestServeHeteroClusterSpec(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	spec := rats.ClusterSpec{
		Name: "lab-het", Procs: 8, SpeedGFlops: 4, CabinetSize: 4,
		NodeSpeeds:       []float64{4, 4, 4, 4, 2, 2, 2, 2},
		NodeBandwidths:   []float64{1e9, 1e9, 1e9, 1e9, 5e8, 5e8, 5e8, 5e8},
		UplinkBandwidths: []float64{1e10, 1e9},
	}
	cl, err := rats.NewCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rats.New(rats.WithCluster(cl)).Schedule(rats.FFT(8, 9))
	if err != nil {
		t.Fatal(err)
	}
	wantBlob, _ := json.Marshal(want)

	body := scheduleBody(t, rats.FFT(8, 9), map[string]any{
		"cluster_spec": map[string]any{
			"name": "lab-het", "procs": 8, "speed_gflops": 4, "cabinet_size": 4,
			"node_speeds":       spec.NodeSpeeds,
			"node_bandwidths":   spec.NodeBandwidths,
			"uplink_bandwidths": spec.UplinkBandwidths,
		},
	})
	resp, sr := postSchedule(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, sr.Error)
	}
	if string(sr.Result) != string(wantBlob) {
		t.Fatalf("hetero served result diverges:\n%s\nvs\n%s", sr.Result, wantBlob)
	}
}

// TestServeHeteroPresetByName checks the heterogeneous presets are
// reachable through the plain "cluster" field.
func TestServeHeteroPresetByName(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	body := scheduleBody(t, rats.FFT(8, 3), map[string]any{"cluster": "grelon-het"})
	resp, sr := postSchedule(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, sr.Error)
	}
}

// TestServeRejectsBadVectors pins the 400-not-panic contract for malformed
// heterogeneity vectors in inline cluster specs.
func TestServeRejectsBadVectors(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	base := func(over map[string]any) []byte {
		spec := map[string]any{"name": "bad", "procs": 4, "speed_gflops": 2}
		for k, v := range over {
			spec[k] = v
		}
		return scheduleBody(t, rats.FFT(4, 1), map[string]any{"cluster_spec": spec})
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"speed vector wrong length", base(map[string]any{"node_speeds": []float64{2, 2}})},
		{"zero speed entry", base(map[string]any{"node_speeds": []float64{2, 0, 2, 2}})},
		{"negative speed entry", base(map[string]any{"node_speeds": []float64{2, -1, 2, 2}})},
		{"node bandwidths wrong length", base(map[string]any{"node_bandwidths": []float64{1e9}})},
		{"zero node bandwidth", base(map[string]any{"node_bandwidths": []float64{1e9, 1e9, 0, 1e9}})},
		{"uplinks on flat cluster", base(map[string]any{"uplink_bandwidths": []float64{1e9}})},
		{"uplinks wrong count", base(map[string]any{"cabinet_size": 2, "uplink_bandwidths": []float64{1e9}})},
		// NaN cannot transit a JSON number, so the decode layer itself must
		// turn it into a 400 rather than a panic.
		{"NaN speed entry", []byte(`{"cluster_spec":{"name":"bad","procs":4,"speed_gflops":2,"node_speeds":[2,NaN,2,2]},"dag":{"graph":{}}}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, sr := postSchedule(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400 (error %q)", resp.StatusCode, sr.Error)
			}
			if sr.Error == "" {
				t.Fatal("error response carries no message")
			}
		})
	}
}
