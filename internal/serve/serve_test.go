package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/rats"
)

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = quietLog()
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func scheduleBody(t *testing.T, d *rats.DAG, fields map[string]any) []byte {
	t.Helper()
	blob, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	req := map[string]any{"dag": json.RawMessage(blob)}
	for k, v := range fields {
		req[k] = v
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postSchedule(t *testing.T, url string, body []byte) (*http.Response, ScheduleResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr ScheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp, sr
}

// TestServedResultMatchesLibrary is the end-to-end equivalence pin: the
// result document a ratsd response carries must be byte-identical to what
// the library's per-request Schedule produces for the same inputs — the
// batching, pooling and context reuse may not change a single byte.
func TestServedResultMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})

	cases := []struct {
		dag    *rats.DAG
		libOpt []rats.Option
		fields map[string]any
	}{
		{rats.FFT(16, 1),
			[]rats.Option{rats.WithCluster(rats.Grelon()), rats.WithStrategy(rats.TimeCost)},
			map[string]any{"cluster": "grelon", "strategy": "time-cost"}},
		{rats.Strassen(7),
			[]rats.Option{rats.WithCluster(rats.Chti()), rats.WithStrategy(rats.Delta), rats.WithAllocator(rats.CPA)},
			map[string]any{"cluster": "chti", "strategy": "delta", "allocator": "cpa"}},
		{rats.Random(rats.RandomSpec{N: 30, Width: 0.5, Density: 0.4, Regularity: 0.7, Seed: 3, Layered: true}),
			[]rats.Option{rats.WithCluster(rats.Big512()), rats.WithStrategy(rats.TimeCost), rats.WithMinRho(0.7)},
			map[string]any{"cluster": "big512", "strategy": "time-cost", "min_rho": 0.7}},
	}
	for i, tc := range cases {
		want, err := rats.New(tc.libOpt...).Schedule(tc.dag)
		if err != nil {
			t.Fatal(err)
		}
		wantBlob, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}

		resp, sr := postSchedule(t, ts.URL, scheduleBody(t, tc.dag, tc.fields))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("case %d: HTTP %d: %s", i, resp.StatusCode, sr.Error)
		}
		if string(sr.Result) != string(wantBlob) {
			t.Fatalf("case %d: served result diverges from library:\n%s\nvs\n%s",
				i, sr.Result, wantBlob)
		}
		if sr.Serve.TotalMs <= 0 || sr.Serve.BatchSize < 1 || sr.Serve.Tasks != tc.dag.TaskCount() {
			t.Fatalf("case %d: serve metrics malformed: %+v", i, sr.Serve)
		}
		// The carried document passes the versioned decode.
		if _, err := rats.DecodeResult(sr.Result); err != nil {
			t.Fatalf("case %d: served result fails DecodeResult: %v", i, err)
		}
	}
}

// TestServedBatchSharesContext pushes many concurrent identical-config
// requests through the server and verifies each response equals the
// library result — under -race this also proves batch execution and
// context pooling are data-race-free.
func TestServedBatchSharesContext(t *testing.T) {
	s, ts := newTestServer(t, ServerConfig{Batch: Config{MaxBatch: 8, MaxWait: 20 * time.Millisecond}})

	const n = 32
	dags := make([]*rats.DAG, n)
	want := make([][]byte, n)
	for i := range dags {
		dags[i] = rats.Random(rats.RandomSpec{
			N: 20 + i%3, Width: 0.6, Density: 0.5, Regularity: 0.8, Seed: int64(i), Layered: i%2 == 0,
		})
		r, err := rats.New(rats.WithCluster(rats.Grelon()), rats.WithStrategy(rats.TimeCost)).Schedule(dags[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = json.Marshal(r)
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := scheduleBody(t, dags[i], map[string]any{"cluster": "grelon", "strategy": "time-cost"})
			resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var sr ScheduleResponse
			if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d: %s", resp.StatusCode, sr.Error)
				return
			}
			if string(sr.Result) != string(want[i]) {
				errs[i] = fmt.Errorf("dag %d: served result diverges", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	snap := s.Metrics().Snapshot()
	if snap.Completed != n {
		t.Fatalf("collector counted %d completed, want %d", snap.Completed, n)
	}
	if snap.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f: concurrent identical requests never batched", snap.MeanBatchSize)
	}
}

func TestServeSheddingReturns429(t *testing.T) {
	s, ts := newTestServer(t, ServerConfig{
		Batch: Config{MaxBatch: 1, MaxWait: time.Millisecond, MaxQueue: 1, Workers: 1},
	})
	// Flood a single-worker, single-slot queue with expensive requests:
	// while one is being scheduled, later arrivals must be shed.
	body := scheduleBody(t, rats.FFT(64, 1), map[string]any{"cluster": "big512", "strategy": "time-cost"})
	var wg sync.WaitGroup
	codes := make(chan int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After header")
				}
			}
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	shed, ok := 0, 0
	for c := range codes {
		switch c {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK:
			ok++
		}
	}
	if shed == 0 {
		t.Fatal("16 concurrent requests against MaxQueue=1: none shed with 429")
	}
	if ok == 0 {
		t.Fatal("no request succeeded at all")
	}
	if snap := s.Metrics().Snapshot(); snap.Shed == 0 {
		t.Fatal("collector did not count the shed requests")
	}
}

// TestServeDeadlineExpiresInQueue: a request whose deadline passes while
// it waits must come back 504 without being scheduled.
func TestServeDeadlineExpiresInQueue(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{
		// MaxWait far beyond the request deadline: the job expires while
		// grouped, before any worker touches it.
		Batch: Config{MaxBatch: 100, MaxWait: 100 * time.Millisecond},
	})
	body := scheduleBody(t, rats.FFT(8, 1), map[string]any{"timeout_ms": 1})
	resp, sr := postSchedule(t, ts.URL, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d (%s), want 504", resp.StatusCode, sr.Error)
	}
	if sr.Result != nil {
		t.Fatal("expired request still carries a result")
	}
	if sr.Serve.QueueWaitMs <= 0 {
		t.Fatalf("expired request reports no queue wait: %+v", sr.Serve)
	}
}

// TestServeDrainLosesNothing: every request accepted before the drain
// gets a full 200 response; requests after the drain get 503.
func TestServeDrainLosesNothing(t *testing.T) {
	s, ts := newTestServer(t, ServerConfig{Batch: Config{MaxBatch: 4, MaxWait: 5 * time.Millisecond}})
	body := scheduleBody(t, rats.FFT(16, 2), map[string]any{"cluster": "grelon"})

	const n = 24
	var wg sync.WaitGroup
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	time.Sleep(2 * time.Millisecond) // let requests reach the queue
	s.Drain()
	wg.Wait()
	close(codes)

	for c := range codes {
		// Accepted → 200. Refused at the drain boundary → 503. Nothing in
		// between: no hung connection, no dropped accepted request.
		if c != http.StatusOK && c != http.StatusServiceUnavailable {
			t.Fatalf("request finished with %d, want 200 or 503", c)
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Accepted != snap.Completed {
		t.Fatalf("drain lost requests: accepted %d, completed %d", snap.Accepted, snap.Completed)
	}

	// healthz reflects the drained state.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: HTTP %d, want 503", resp.StatusCode)
	}
}

func TestServeRejectsMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", `{`, http.StatusBadRequest},
		{"no dag", `{"cluster":"grelon"}`, http.StatusBadRequest},
		{"bad cluster", `{"cluster":"nope","dag":{"graph":{}}}`, http.StatusBadRequest},
		{"bad strategy", `{"strategy":"nope","dag":{"graph":{}}}`, http.StatusBadRequest},
		{"dag missing graph", `{"dag":{"name":"x"}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, sr := postSchedule(t, ts.URL, []byte(tc.body))
			if resp.StatusCode != tc.want {
				t.Fatalf("HTTP %d, want %d (error %q)", resp.StatusCode, tc.want, sr.Error)
			}
			if sr.Error == "" {
				t.Fatal("error response carries no error message")
			}
		})
	}

	// Method check.
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/schedule: HTTP %d, want 405", resp.StatusCode)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	body := scheduleBody(t, rats.Strassen(1), map[string]any{"cluster": "chti"})
	if resp, sr := postSchedule(t, ts.URL, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule failed: HTTP %d %s", resp.StatusCode, sr.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Completed != 1 || snap.Accepted != 1 {
		t.Fatalf("snapshot counts wrong: %+v", snap)
	}
	if snap.LatencyP50Ms <= 0 || snap.SchedulesPerSecond <= 0 {
		t.Fatalf("latency/throughput not derived: %+v", snap)
	}
	if len(snap.Recent) != 1 || snap.Recent[0].Status != http.StatusOK {
		t.Fatalf("recent ring wrong: %+v", snap.Recent)
	}
}

// TestServeCustomClusterSpec drives a request with an inline cluster
// description and checks it matches the library on the same custom
// cluster.
func TestServeCustomClusterSpec(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	spec := rats.ClusterSpec{Name: "lab", Procs: 24, SpeedGFlops: 5}
	cl, err := rats.NewCluster(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := rats.New(rats.WithCluster(cl)).Schedule(rats.FFT(8, 9))
	if err != nil {
		t.Fatal(err)
	}
	wantBlob, _ := json.Marshal(want)

	body := scheduleBody(t, rats.FFT(8, 9), map[string]any{
		"cluster_spec": map[string]any{"name": "lab", "procs": 24, "speed_gflops": 5},
	})
	resp, sr := postSchedule(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, sr.Error)
	}
	if string(sr.Result) != string(wantBlob) {
		t.Fatalf("custom-cluster served result diverges:\n%s\nvs\n%s", sr.Result, wantBlob)
	}
}

// TestServeMapWorkers covers the map_workers knob end to end: an explicit
// request value produces a result byte-identical to a serial library run
// (the parallel mapper may never change a schedule), a server-wide default
// applies to requests that omit the field, differing lane counts split
// batches, and a negative value is a 400.
func TestServeMapWorkers(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{MapWorkers: 2})
	d := rats.FFT(16, 5)

	want, err := rats.New(rats.WithCluster(rats.Grelon()), rats.WithStrategy(rats.TimeCost)).Schedule(d)
	if err != nil {
		t.Fatal(err)
	}
	wantBlob, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	for _, fields := range []map[string]any{
		{"cluster": "grelon", "strategy": "time-cost", "map_workers": 4}, // explicit
		{"cluster": "grelon", "strategy": "time-cost"},                   // server default (2)
	} {
		resp, sr := postSchedule(t, ts.URL, scheduleBody(t, d, fields))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fields %v: HTTP %d: %s", fields, resp.StatusCode, sr.Error)
		}
		if string(sr.Result) != string(wantBlob) {
			t.Fatalf("fields %v: parallel-mapped served result diverges from serial library run", fields)
		}
	}

	resp, sr := postSchedule(t, ts.URL, scheduleBody(t, d,
		map[string]any{"cluster": "grelon", "map_workers": -1}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("map_workers=-1: HTTP %d (%s), want 400", resp.StatusCode, sr.Error)
	}

	// Lane counts are part of the batch key: the same options with
	// different map_workers must parse to different keys.
	a, err := parseSpec(&ScheduleRequest{Cluster: "grelon", MapWorkers: 2}, 0, rats.ProfileFast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseSpec(&ScheduleRequest{Cluster: "grelon", MapWorkers: 4}, 0, rats.ProfileFast)
	if err != nil {
		t.Fatal(err)
	}
	if a.batchKey == b.batchKey {
		t.Fatalf("map_workers 2 and 4 share batch key %q", a.batchKey)
	}
	c, err := parseSpec(&ScheduleRequest{Cluster: "grelon"}, 2, rats.ProfileFast)
	if err != nil {
		t.Fatal(err)
	}
	if c.batchKey != a.batchKey {
		t.Fatalf("server default 2 keys %q, explicit 2 keys %q — should batch together", c.batchKey, a.batchKey)
	}
}

// TestServedProfileField pins the profile wire field end to end:
// byte-equality with the library under both profiles (explicit alignment
// included), the server-side default, batch-key separation, and the 400
// table for malformed values.
func TestServedProfileField(t *testing.T) {
	_, ts := newTestServer(t, ServerConfig{})
	d := rats.FFT(16, 2)

	for _, tc := range []struct {
		name   string
		libOpt []rats.Option
		fields map[string]any
	}{
		{"absent-defaults-fast",
			[]rats.Option{rats.WithCluster(rats.Grelon()), rats.WithStrategy(rats.TimeCost)},
			map[string]any{"cluster": "grelon", "strategy": "time-cost"}},
		{"explicit-fast",
			[]rats.Option{rats.WithCluster(rats.Grelon()), rats.WithStrategy(rats.TimeCost), rats.WithProfile(rats.ProfileFast)},
			map[string]any{"cluster": "grelon", "strategy": "time-cost", "profile": "fast"}},
		{"reference",
			[]rats.Option{rats.WithCluster(rats.Grelon()), rats.WithStrategy(rats.TimeCost), rats.WithProfile(rats.ProfileReference)},
			map[string]any{"cluster": "grelon", "strategy": "time-cost", "profile": "reference"}},
		{"reference-with-alignment",
			[]rats.Option{rats.WithCluster(rats.Grelon()), rats.WithStrategy(rats.TimeCost), rats.WithProfile(rats.ProfileReference), rats.WithAlignment(rats.AlignmentGreedy)},
			map[string]any{"cluster": "grelon", "strategy": "time-cost", "profile": "reference", "alignment": "greedy"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := rats.New(tc.libOpt...).Schedule(d)
			if err != nil {
				t.Fatal(err)
			}
			wantBlob, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			resp, sr := postSchedule(t, ts.URL, scheduleBody(t, d, tc.fields))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("HTTP %d: %s", resp.StatusCode, sr.Error)
			}
			if string(sr.Result) != string(wantBlob) {
				t.Fatalf("served result diverges from library:\n%s\nvs\n%s", sr.Result, wantBlob)
			}
		})
	}

	// Malformed profiles are 400s, caught before the scheduler.
	for _, bad := range []map[string]any{
		{"profile": "fastest"},
		{"profile": "exact"},
		{"profile": "ref erence"}, // inner spaces do not trim away
		{"profile": 3},            // wrong JSON type fails the decode
	} {
		resp, sr := postSchedule(t, ts.URL, scheduleBody(t, d, bad))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("fields %v: HTTP %d (%s), want 400", bad, resp.StatusCode, sr.Error)
		}
	}

	// The profile is part of the batch key; the alignment slot separates
	// "explicitly pinned" from "inherited from the profile".
	pf, err := parseSpec(&ScheduleRequest{}, 0, rats.ProfileFast)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := parseSpec(&ScheduleRequest{Profile: "reference"}, 0, rats.ProfileFast)
	if err != nil {
		t.Fatal(err)
	}
	if pf.batchKey == pr.batchKey {
		t.Fatalf("fast and reference share batch key %q", pf.batchKey)
	}
	al, err := parseSpec(&ScheduleRequest{Alignment: "auto"}, 0, rats.ProfileFast)
	if err != nil {
		t.Fatal(err)
	}
	if al.batchKey == pf.batchKey {
		t.Fatalf("explicit alignment shares batch key %q with the profile default", al.batchKey)
	}
	// A server default of reference batches with an explicit reference.
	sd, err := parseSpec(&ScheduleRequest{}, 0, rats.ProfileReference)
	if err != nil {
		t.Fatal(err)
	}
	se, err := parseSpec(&ScheduleRequest{Profile: "reference"}, 0, rats.ProfileReference)
	if err != nil {
		t.Fatal(err)
	}
	if sd.batchKey != se.batchKey {
		t.Fatalf("server-default reference keys %q, explicit reference keys %q — should batch together",
			sd.batchKey, se.batchKey)
	}
}
