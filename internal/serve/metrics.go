package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// RequestMetrics is the flat per-request observability record: everything
// the service knows about one scheduling request, in one row — where the
// request waited (queue), how it was amortized (batch size), where the
// pipeline spent its time (alloc/map/sim) and what came out (status).
// Flat scalar fields keep it trivially CSV/JSON/log-line friendly.
type RequestMetrics struct {
	ID        uint64 `json:"id"`
	Cluster   string `json:"cluster"`
	Strategy  string `json:"strategy"`
	Allocator string `json:"allocator"`
	Tasks     int    `json:"tasks"`

	BatchSize   int     `json:"batch_size"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
	AllocMs     float64 `json:"alloc_ms"`
	MapMs       float64 `json:"map_ms"`
	SimMs       float64 `json:"sim_ms"`
	TotalMs     float64 `json:"total_ms"`

	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`

	// Counters carries the run's engine-level observability snapshot
	// (rats.Result.Counters): memo hit rates, solver regimes, alignment
	// modes — per request, so offline analysis can correlate engine
	// behavior with latency.
	Counters obs.Counters `json:"counters"`
}

// ms converts a duration to the milliseconds the wire format carries.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// histogram counts durations in exponential buckets: bucket 0 spans
// [0, histBase), bucket i ≥ 1 spans [histBase·2^(i-1), histBase·2^i), and
// the last bucket is unbounded. With histBase = 50µs the last bucket
// starts at ≈ 28 minutes — far beyond any sane request deadline. sum
// accumulates the raw observations for the Prometheus _sum sample.
type histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    time.Duration
}

const (
	histBase    = 50 * time.Microsecond
	histBuckets = 26
)

func (h *histogram) observe(d time.Duration) {
	i := 0
	for bound := histBase; i < histBuckets-1 && d >= bound; bound *= 2 {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += d
}

// quantile estimates the q-quantile observation by locating its bucket
// and interpolating linearly within it (observations are assumed uniform
// inside a bucket, the standard Prometheus histogram_quantile model).
// The previous implementation returned the bucket's upper bound, which
// overstated the quantile by up to the bucket's full width — a factor of
// 2 with these doubling buckets; interpolation bounds the error by the
// distance between the bucket's uniform model and the true in-bucket
// distribution, which is at most one bucket width and typically far less.
// The unbounded last bucket has no width to interpolate, so its lower
// edge is returned. Returns 0 with no observations.
func (h *histogram) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total-1))
	var seen uint64
	lo := time.Duration(0)
	bound := histBase
	for i := 0; i < histBuckets-1; i++ {
		if cnt := h.counts[i]; seen+cnt > rank {
			// rank falls in this bucket at 0-based in-bucket position
			// rank−seen; +1 places single observations at the bucket's
			// width-fraction rather than its lower edge.
			pos := rank - seen
			return lo + time.Duration(float64(bound-lo)*float64(pos+1)/float64(cnt))
		} else {
			seen += cnt
		}
		lo = bound
		bound *= 2
	}
	return lo
}

// Collector aggregates per-request records into the service-level counters
// and latency distribution the /metrics endpoint serves. All methods are
// safe for concurrent use.
type Collector struct {
	nextID    atomic.Uint64
	mu        sync.Mutex
	started   time.Time
	accepted  uint64
	completed uint64
	failed    uint64 // pipeline or request errors (4xx/5xx except shed)
	shed      uint64 // rejected with 429 at the queue boundary
	expired   uint64 // deadline passed before execution started
	batches   uint64
	batched   uint64 // items summed over batches (mean batch size = batched/batches)
	latency   histogram
	queueWait histogram
	engine    obs.Counters // engine counters summed over recorded requests

	recent [recentRing]RequestMetrics
	nRec   int // total records ever written into the ring
}

const recentRing = 256

// NewCollector returns an empty collector anchored at now.
func NewCollector() *Collector {
	return &Collector{started: time.Now()}
}

// NextID issues the next request ID.
func (c *Collector) NextID() uint64 { return c.nextID.Add(1) }

// Accepted counts a request admitted past the queue boundary.
func (c *Collector) Accepted() {
	c.mu.Lock()
	c.accepted++
	c.mu.Unlock()
}

// Shed counts a request rejected at the queue boundary (429).
func (c *Collector) Shed() {
	c.mu.Lock()
	c.shed++
	c.mu.Unlock()
}

// Batch records one executed batch of the given size.
func (c *Collector) Batch(size int) {
	c.mu.Lock()
	c.batches++
	c.batched += uint64(size)
	c.mu.Unlock()
}

// Record files one finished request.
func (c *Collector) Record(m RequestMetrics) {
	c.mu.Lock()
	switch {
	case m.Status == statusOK:
		c.completed++
	case m.Status == statusTimeout:
		c.expired++
	default:
		c.failed++
	}
	c.latency.observe(time.Duration(m.TotalMs * float64(time.Millisecond)))
	c.queueWait.observe(time.Duration(m.QueueWaitMs * float64(time.Millisecond)))
	c.engine.Add(&m.Counters)
	c.recent[c.nRec%recentRing] = m
	c.nRec++
	c.mu.Unlock()
}

// Snapshot is the /metrics document: counters, throughput, latency
// quantiles and the most recent per-request records (newest first).
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Accepted      uint64  `json:"accepted"`
	Completed     uint64  `json:"completed"`
	Failed        uint64  `json:"failed"`
	Shed          uint64  `json:"shed"`
	Expired       uint64  `json:"expired"`

	Batches       uint64  `json:"batches"`
	MeanBatchSize float64 `json:"mean_batch_size"`

	SchedulesPerSecond float64 `json:"schedules_per_second"`
	LatencyP50Ms       float64 `json:"latency_p50_ms"`
	LatencyP90Ms       float64 `json:"latency_p90_ms"`
	LatencyP99Ms       float64 `json:"latency_p99_ms"`
	QueueWaitP50Ms     float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms     float64 `json:"queue_wait_p99_ms"`

	// Engine sums the engine-level counters over every recorded request:
	// the service-lifetime view of memo effectiveness, solver regimes and
	// alignment decisions.
	Engine obs.Counters `json:"engine"`

	Recent []RequestMetrics `json:"recent"`
}

// Snapshot captures the current aggregate state.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	up := time.Since(c.started).Seconds()
	s := Snapshot{
		UptimeSeconds:  up,
		Accepted:       c.accepted,
		Completed:      c.completed,
		Failed:         c.failed,
		Shed:           c.shed,
		Expired:        c.expired,
		Batches:        c.batches,
		LatencyP50Ms:   ms(c.latency.quantile(0.50)),
		LatencyP90Ms:   ms(c.latency.quantile(0.90)),
		LatencyP99Ms:   ms(c.latency.quantile(0.99)),
		QueueWaitP50Ms: ms(c.queueWait.quantile(0.50)),
		QueueWaitP99Ms: ms(c.queueWait.quantile(0.99)),
		Engine:         c.engine,
	}
	if c.batches > 0 {
		s.MeanBatchSize = float64(c.batched) / float64(c.batches)
	}
	if up > 0 {
		s.SchedulesPerSecond = float64(c.completed) / up
	}
	n := c.nRec
	if n > recentRing {
		n = recentRing
	}
	s.Recent = make([]RequestMetrics, 0, n)
	for i := 0; i < n; i++ {
		s.Recent = append(s.Recent, c.recent[((c.nRec-1-i)%recentRing+recentRing)%recentRing])
	}
	return s
}
