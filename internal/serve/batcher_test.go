package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testJob builds a minimal job for batcher-level tests (no DAG needed:
// the run function is supplied by the test).
func testJob(id uint64, key string) *job {
	return &job{
		id:   id,
		key:  key,
		ctx:  context.Background(),
		enq:  time.Now(),
		resp: make(chan jobResult, 1),
	}
}

func TestBatcherFlushesOnSize(t *testing.T) {
	batches := make(chan []*job, 8)
	b := newBatcher(Config{MaxBatch: 4, MaxWait: time.Hour, Workers: 1},
		func(batch []*job) { batches <- batch })
	defer b.Drain()

	for i := uint64(0); i < 4; i++ {
		if err := b.Submit(testJob(i, "k")); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case batch := <-batches:
		if len(batch) != 4 {
			t.Fatalf("size-triggered batch has %d jobs, want 4", len(batch))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no flush despite MaxBatch submissions (MaxWait is an hour)")
	}
}

func TestBatcherFlushesOnDeadline(t *testing.T) {
	batches := make(chan []*job, 8)
	b := newBatcher(Config{MaxBatch: 100, MaxWait: 10 * time.Millisecond, Workers: 1},
		func(batch []*job) { batches <- batch })
	defer b.Drain()

	if err := b.Submit(testJob(1, "k")); err != nil {
		t.Fatal(err)
	}
	select {
	case batch := <-batches:
		if len(batch) != 1 {
			t.Fatalf("deadline batch has %d jobs, want 1", len(batch))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("lone request never flushed: MaxWait timer did not fire")
	}
}

func TestBatcherSeparatesKeys(t *testing.T) {
	batches := make(chan []*job, 8)
	b := newBatcher(Config{MaxBatch: 2, MaxWait: 10 * time.Millisecond, Workers: 1},
		func(batch []*job) { batches <- batch })
	defer b.Drain()

	b.Submit(testJob(1, "a"))
	b.Submit(testJob(2, "b"))
	b.Submit(testJob(3, "a"))

	got := map[string]int{}
	for i := 0; i < 2; i++ {
		select {
		case batch := <-batches:
			got[batch[0].key] += len(batch)
			for _, j := range batch[1:] {
				if j.key != batch[0].key {
					t.Fatalf("batch mixes keys %q and %q", batch[0].key, j.key)
				}
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d batches arrived, want 2 (one per key)", i)
		}
	}
	if got["a"] != 2 || got["b"] != 1 {
		t.Fatalf("per-key job counts %v, want a:2 b:1", got)
	}
}

func TestBatcherShedsPastMaxQueue(t *testing.T) {
	release := make(chan struct{})
	b := newBatcher(Config{MaxBatch: 1, MaxWait: time.Millisecond, MaxQueue: 2, Workers: 1},
		func(batch []*job) { <-release })
	defer func() { close(release); b.Drain() }()

	// Fill the queue: the single worker blocks on the first batch, so
	// subsequent jobs pile up against MaxQueue.
	if err := b.Submit(testJob(1, "k")); err != nil {
		t.Fatal(err)
	}
	if err := b.Submit(testJob(2, "k")); err != nil {
		t.Fatal(err)
	}
	if err := b.Submit(testJob(3, "k")); err != ErrOverloaded {
		t.Fatalf("third submit past MaxQueue=2: got %v, want ErrOverloaded", err)
	}
}

// TestBatcherDrainAnswersEveryAcceptedJob is the graceful-shutdown
// contract: once Submit returns nil, the job's run is guaranteed, even
// when Drain races with submission.
func TestBatcherDrainAnswersEveryAcceptedJob(t *testing.T) {
	var ran atomic.Int64
	b := newBatcher(Config{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 2},
		func(batch []*job) {
			time.Sleep(200 * time.Microsecond) // make drain race mid-batch
			ran.Add(int64(len(batch)))
		})

	var accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if b.Submit(testJob(uint64(g*100+i), "k")) == nil {
					accepted.Add(1)
				}
			}
		}(g)
	}
	time.Sleep(time.Millisecond) // let some submissions land first
	b.Drain()
	wg.Wait()

	if got, want := ran.Load(), accepted.Load(); got != want {
		t.Fatalf("drain lost work: %d jobs ran, %d were accepted", got, want)
	}
	if accepted.Load() == 0 {
		t.Fatal("no job was accepted before the drain; race never exercised")
	}
	// Post-drain submissions are refused.
	if err := b.Submit(testJob(999, "k")); err != ErrDraining {
		t.Fatalf("post-drain submit: got %v, want ErrDraining", err)
	}
}
