package serve

import (
	"sync"

	"repro/rats"
)

// maxPooledPerKey bounds how many idle contexts a single cluster key
// retains; beyond it returned contexts are dropped for the GC. Matching
// the worker-pool width would be exact, but a small constant is simpler
// and a dropped context costs only its next rebuild.
const maxPooledPerKey = 32

// ctxPool keeps reusable scheduler contexts keyed by cluster. Contexts
// depend only on the target cluster — not on strategy or any other option
// — so pooling per cluster maximizes reuse across differently-configured
// batches.
type ctxPool struct {
	mu   sync.Mutex
	free map[string][]*rats.Context
}

// get pops an idle context for the cluster key, or builds a fresh one.
func (p *ctxPool) get(key string, cl *rats.Cluster) (*rats.Context, error) {
	p.mu.Lock()
	if s := p.free[key]; len(s) > 0 {
		c := s[len(s)-1]
		s[len(s)-1] = nil
		p.free[key] = s[:len(s)-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return rats.NewContext(cl)
}

// put returns a context to the pool once its batch is done.
func (p *ctxPool) put(key string, c *rats.Context) {
	p.mu.Lock()
	if p.free == nil {
		p.free = make(map[string][]*rats.Context)
	}
	if len(p.free[key]) < maxPooledPerKey {
		p.free[key] = append(p.free[key], c)
	}
	p.mu.Unlock()
}

// idle reports the total number of pooled contexts, for observability.
func (p *ctxPool) idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, s := range p.free {
		n += len(s)
	}
	return n
}
