// Package serve implements ratsd: a long-running HTTP+JSON scheduling
// service over the rats facade. Requests are grouped by identical
// (cluster, options) configuration and executed in batches from a pool of
// reusable scheduler contexts, so the per-request cost converges to the
// marginal cost of one mapping run. The service sheds load past a bounded
// queue, honors per-request deadlines, drains gracefully, and reports a
// flat per-request timing record through /metrics.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/rats"
)

const (
	statusOK      = http.StatusOK
	statusTimeout = http.StatusGatewayTimeout
)

// ClusterSpec is the wire form of rats.ClusterSpec for requests that
// target a custom cluster instead of a preset one.
type ClusterSpec struct {
	Name            string  `json:"name,omitempty"`
	Procs           int     `json:"procs"`
	SpeedGFlops     float64 `json:"speed_gflops"`
	LinkLatency     float64 `json:"link_latency,omitempty"`
	LinkBandwidth   float64 `json:"link_bandwidth,omitempty"`
	CabinetSize     int     `json:"cabinet_size,omitempty"`
	UplinkLatency   float64 `json:"uplink_latency,omitempty"`
	UplinkBandwidth float64 `json:"uplink_bandwidth,omitempty"`
	WMax            float64 `json:"wmax,omitempty"`

	// Heterogeneity vectors, validated by rats.NewCluster (length,
	// positivity, finiteness) — a malformed vector is a 400, never a
	// panic. JSON cannot carry NaN/±Inf literals, but a proxy-free client
	// can still send 0 or negative entries.
	NodeSpeeds       []float64 `json:"node_speeds,omitempty"`       // per-node GFlop/s, len == procs
	NodeBandwidths   []float64 `json:"node_bandwidths,omitempty"`   // per-node private-link B/s, len == procs
	UplinkBandwidths []float64 `json:"uplink_bandwidths,omitempty"` // per-cabinet uplink B/s, len == cabinets
}

// ScheduleRequest is the POST /v1/schedule body. Every field but dag is
// optional; omitted fields select the library defaults, and pointer
// fields distinguish "absent" from a legitimate zero.
type ScheduleRequest struct {
	Cluster     string       `json:"cluster,omitempty"`      // preset name; default grillon
	ClusterSpec *ClusterSpec `json:"cluster_spec,omitempty"` // custom cluster; overrides Cluster
	Strategy    string       `json:"strategy,omitempty"`
	Allocator   string       `json:"allocator,omitempty"`
	Alignment   string       `json:"alignment,omitempty"`
	Profile     string       `json:"profile,omitempty"` // "fast" or "reference"; default ServerConfig.Profile
	FlowSolver  string       `json:"flow_solver,omitempty"`
	MinDelta    *float64     `json:"min_delta,omitempty"`
	MaxDelta    *float64     `json:"max_delta,omitempty"`
	MinRho      *float64     `json:"min_rho,omitempty"`
	Packing     *bool        `json:"packing,omitempty"`
	MapWorkers  int          `json:"map_workers,omitempty"` // mapper evaluation lanes; 0 = ServerConfig.MapWorkers
	TimeoutMs   int          `json:"timeout_ms,omitempty"`  // per-request deadline; default ServerConfig.DefaultTimeout

	DAG json.RawMessage `json:"dag"` // rats.DAG wire format (MarshalJSON schema)
}

// ScheduleResponse is the /v1/schedule response envelope. Result is the
// versioned rats wire document (schema rats.result/v1); Serve is the
// service-side timing record for this request. The two are deliberately
// separate fields rather than an embedded Result, whose MarshalJSON would
// otherwise swallow the envelope.
type ScheduleResponse struct {
	Result json.RawMessage `json:"result,omitempty"`
	Serve  RequestMetrics  `json:"serve"`
	Error  string          `json:"error,omitempty"`
}

// requestSpec is a parsed, validated scheduling configuration plus the
// canonical keys it batches and pools under.
type requestSpec struct {
	cluster   *rats.Cluster
	strategy  rats.Strategy
	allocator rats.Allocator
	alignment rats.AlignmentMode
	profile   rats.Profile
	flow      rats.FlowSolver

	// hasAlignment records an explicit alignment request: only then does
	// the spec pass WithAlignment, so an absent field keeps the profile's
	// alignment default instead of pinning Hungarian.
	hasAlignment bool

	minDelta, maxDelta float64
	hasDelta           bool
	minRho             float64
	hasRho             bool
	packing            *bool
	mapWorkers         int // resolved lanes; 0 = library default (serial)

	clusterKey string // context-pool key: cluster identity only
	batchKey   string // batcher key: cluster identity + every option
}

func parseSpec(req *ScheduleRequest, defaultMapWorkers int, defaultProfile rats.Profile) (*requestSpec, error) {
	sp := &requestSpec{}
	switch {
	case req.ClusterSpec != nil:
		c, err := rats.NewCluster(rats.ClusterSpec{
			Name:             req.ClusterSpec.Name,
			Procs:            req.ClusterSpec.Procs,
			SpeedGFlops:      req.ClusterSpec.SpeedGFlops,
			LinkLatency:      req.ClusterSpec.LinkLatency,
			LinkBandwidth:    req.ClusterSpec.LinkBandwidth,
			CabinetSize:      req.ClusterSpec.CabinetSize,
			UplinkLatency:    req.ClusterSpec.UplinkLatency,
			UplinkBandwidth:  req.ClusterSpec.UplinkBandwidth,
			WMax:             req.ClusterSpec.WMax,
			NodeSpeeds:       req.ClusterSpec.NodeSpeeds,
			NodeBandwidths:   req.ClusterSpec.NodeBandwidths,
			UplinkBandwidths: req.ClusterSpec.UplinkBandwidths,
		})
		if err != nil {
			return nil, err
		}
		sp.cluster = c
		// Two custom clusters batch together only when every physical
		// parameter matches, so the key is the full spec, not the name.
		sp.clusterKey = fmt.Sprintf("custom:%+v", *req.ClusterSpec)
	case req.Cluster != "":
		c, err := rats.ClusterByName(req.Cluster)
		if err != nil {
			return nil, err
		}
		sp.cluster = c
		sp.clusterKey = "preset:" + c.Name()
	default:
		sp.cluster = rats.Grillon()
		sp.clusterKey = "preset:" + sp.cluster.Name()
	}

	var err error
	if req.Strategy != "" {
		if sp.strategy, err = rats.ParseStrategy(req.Strategy); err != nil {
			return nil, err
		}
	}
	if req.Allocator != "" {
		if sp.allocator, err = rats.ParseAllocator(req.Allocator); err != nil {
			return nil, err
		}
	}
	if req.Alignment != "" {
		if sp.alignment, err = rats.ParseAlignment(req.Alignment); err != nil {
			return nil, err
		}
		sp.hasAlignment = true
	}
	// Resolve the profile: an explicit request wins over the server
	// default (which itself defaults to the library default, ProfileFast).
	sp.profile = defaultProfile
	if req.Profile != "" {
		if sp.profile, err = rats.ParseProfile(req.Profile); err != nil {
			return nil, err
		}
	}
	if req.FlowSolver != "" {
		if sp.flow, err = rats.ParseFlowSolver(req.FlowSolver); err != nil {
			return nil, err
		}
	}
	if req.MinDelta != nil || req.MaxDelta != nil {
		if req.MinDelta == nil || req.MaxDelta == nil {
			return nil, fmt.Errorf("serve: min_delta and max_delta must be set together")
		}
		sp.minDelta, sp.maxDelta, sp.hasDelta = *req.MinDelta, *req.MaxDelta, true
	}
	if req.MinRho != nil {
		sp.minRho, sp.hasRho = *req.MinRho, true
	}
	sp.packing = req.Packing
	// Resolve the mapper's evaluation-lane count: an explicit request
	// wins, 0 inherits the server default, and negative values are a 400 —
	// the same stance WithMapWorkers takes, but caught before the
	// scheduler so a malformed request cannot fail a whole batch.
	switch {
	case req.MapWorkers < 0:
		return nil, fmt.Errorf("serve: map_workers must be ≥ 0, got %d", req.MapWorkers)
	case req.MapWorkers > 0:
		sp.mapWorkers = req.MapWorkers
	default:
		sp.mapWorkers = defaultMapWorkers
	}

	packing := "default"
	if sp.packing != nil {
		packing = strconv.FormatBool(*sp.packing)
	}
	delta := "default"
	if sp.hasDelta {
		delta = fmt.Sprintf("%g:%g", sp.minDelta, sp.maxDelta)
	}
	rho := "default"
	if sp.hasRho {
		rho = fmt.Sprintf("%g", sp.minRho)
	}
	// The alignment slot distinguishes "explicitly set" from "profile
	// default": an absent field inherits the profile's alignment, so it
	// must not share a batch with a request that pinned the same mode by
	// name under a different profile.
	align := "default"
	if sp.hasAlignment {
		align = sp.alignment.String()
	}
	// mapWorkers and the profile are part of the batch key: requests with
	// different lane counts or exactness profiles must not share a batch,
	// since the batch's one Scheduler carries the setting for every
	// request it executes.
	sp.batchKey = fmt.Sprintf("%s|%s/%s/%s/%s/%s/%s/%s/%s/mw%d",
		sp.clusterKey, sp.strategy, sp.allocator, align, sp.profile, sp.flow,
		delta, rho, packing, sp.mapWorkers)
	return sp, nil
}

// options expands the spec into the rats functional options.
func (sp *requestSpec) options() []rats.Option {
	opts := []rats.Option{
		rats.WithCluster(sp.cluster),
		rats.WithStrategy(sp.strategy),
		rats.WithAllocator(sp.allocator),
		rats.WithProfile(sp.profile),
		rats.WithFlowSolver(sp.flow),
	}
	if sp.hasAlignment {
		opts = append(opts, rats.WithAlignment(sp.alignment))
	}
	if sp.hasDelta {
		opts = append(opts, rats.WithDeltaBounds(sp.minDelta, sp.maxDelta))
	}
	if sp.hasRho {
		opts = append(opts, rats.WithMinRho(sp.minRho))
	}
	if sp.packing != nil {
		opts = append(opts, rats.WithPacking(*sp.packing))
	}
	if sp.mapWorkers > 0 {
		opts = append(opts, rats.WithMapWorkers(sp.mapWorkers))
	}
	return opts
}

// ServerConfig configures a Server. Zero values select the defaults
// noted per field.
type ServerConfig struct {
	Batch Config // batcher bounds; see Config

	// MaxBodyBytes bounds a request body (default 8 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-request deadline applied when a request
	// does not carry timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// MapWorkers is the mapper evaluation-lane count applied to requests
	// that do not carry map_workers (default 0 = serial mapping). The
	// parallel mapper is byte-identical to the serial one, so this knob
	// only trades batch throughput against per-request latency.
	MapWorkers int
	// Profile is the exactness/speed profile applied to requests that do
	// not carry the profile field (default rats.ProfileFast, the library
	// default; set rats.ProfileReference for a service pinned to the
	// exact oracle pipeline).
	Profile rats.Profile
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (default
	// off). Opt-in because profiles expose internals a scheduling service
	// should not serve on an unrestricted port by default.
	EnablePprof bool
	// Log receives structured service logs (default slog.Default()).
	Log *slog.Logger
}

// Server is the ratsd service core: the HTTP handlers, the batcher, the
// context pool and the metrics collector. Create with NewServer, expose
// via Handler, shut down with Drain.
type Server struct {
	cfg      ServerConfig
	log      *slog.Logger
	batcher  *batcher
	pool     ctxPool
	metrics  *Collector
	draining atomic.Bool
}

// NewServer assembles a Server and starts its batcher.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	s := &Server{cfg: cfg, log: cfg.Log, metrics: NewCollector()}
	s.batcher = newBatcher(cfg.Batch, s.runBatch)
	s.log.Info("ratsd serving",
		"max_batch", s.batcher.cfg.MaxBatch,
		"max_wait", s.batcher.cfg.MaxWait,
		"max_queue", s.batcher.cfg.MaxQueue,
		"workers", s.batcher.cfg.Workers)
	return s
}

// Metrics returns the server's collector, for tests and embedding.
func (s *Server) Metrics() *Collector { return s.metrics }

// Drain stops intake (new requests get 503) and blocks until every
// already-accepted request has been executed and answered.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.log.Info("ratsd draining", "queued", s.batcher.Queued())
	s.batcher.Drain()
	s.log.Info("ratsd drained")
}

// Handler returns the service's HTTP routes: POST /v1/schedule,
// GET /healthz, GET /metrics (JSON by default; Prometheus text with
// ?format=prometheus or an Accept: text/plain header), and — when
// ServerConfig.EnablePprof is set — the net/http/pprof profiles under
// /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the response envelope for a request that failed before
// (or instead of) producing a result.
func (s *Server) writeError(w http.ResponseWriter, m RequestMetrics, err error) {
	m.Error = err.Error()
	writeJSON(w, m.Status, ScheduleResponse{Serve: m, Error: m.Error})
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	id := s.metrics.NextID()
	m := RequestMetrics{ID: id}
	enq := time.Now()

	var req ScheduleRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		m.Status = http.StatusBadRequest
		s.writeError(w, m, fmt.Errorf("decoding request: %w", err))
		return
	}
	spec, err := parseSpec(&req, s.cfg.MapWorkers, s.cfg.Profile)
	if err != nil {
		m.Status = http.StatusBadRequest
		s.writeError(w, m, err)
		return
	}
	m.Cluster = spec.cluster.Name()
	m.Strategy = spec.strategy.String()
	m.Allocator = spec.allocator.String()

	if len(req.DAG) == 0 {
		m.Status = http.StatusBadRequest
		s.writeError(w, m, fmt.Errorf("request misses the dag field"))
		return
	}
	d := rats.NewDAG()
	if err := json.Unmarshal(req.DAG, d); err != nil {
		m.Status = http.StatusBadRequest
		s.writeError(w, m, fmt.Errorf("decoding dag: %w", err))
		return
	}
	if err := d.Build(); err != nil {
		m.Status = http.StatusUnprocessableEntity
		s.writeError(w, m, err)
		return
	}
	m.Tasks = d.TaskCount()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	j := &job{
		id:    id,
		key:   spec.batchKey,
		spec:  spec,
		dag:   d,
		tasks: m.Tasks,
		ctx:   ctx,
		enq:   enq,
		resp:  make(chan jobResult, 1),
	}
	if err := s.batcher.Submit(j); err != nil {
		switch err {
		case ErrOverloaded:
			s.metrics.Shed()
			m.Status = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
			s.log.Warn("request shed", "id", id, "queued", s.batcher.Queued())
		case ErrDraining:
			m.Status = http.StatusServiceUnavailable
		default:
			m.Status = http.StatusInternalServerError
		}
		s.writeError(w, m, err)
		return
	}
	s.metrics.Accepted()

	// Submit accepted, so exactly one result is guaranteed to arrive —
	// even through a drain. Waiting unconditionally keeps the executor
	// the single authority on the request's outcome.
	jr := <-j.resp
	if jr.result == nil {
		s.writeError(w, jr.metrics, fmt.Errorf("%s", jr.metrics.Error))
		return
	}
	blob, err := json.Marshal(jr.result)
	if err != nil {
		jr.metrics.Status = http.StatusInternalServerError
		s.writeError(w, jr.metrics, err)
		return
	}
	writeJSON(w, jr.metrics.Status, ScheduleResponse{Result: blob, Serve: jr.metrics})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, text := http.StatusOK, "serving"
	if s.draining.Load() {
		status, text = http.StatusServiceUnavailable, "draining"
	}
	writeJSON(w, status, map[string]any{
		"status": text,
		"queued": s.batcher.Queued(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Prometheus scrapers ask via ?format=prometheus or an explicit
	// text/plain Accept; everything else (curl's */*, browsers, the JSON
	// dashboard) keeps the established JSON document.
	format := r.URL.Query().Get("format")
	accept := r.Header.Get("Accept")
	if format == "prometheus" || (format == "" && strings.HasPrefix(accept, "text/plain")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// runBatch executes one batch: all jobs share a batch key, hence an
// identical configuration, so a single Scheduler plus one pooled context
// serves them all. Every job receives exactly one jobResult.
func (s *Server) runBatch(batch []*job) {
	spec := batch[0].spec
	s.metrics.Batch(len(batch))
	sched := rats.New(spec.options()...)

	cctx, cerr := s.pool.get(spec.clusterKey, spec.cluster)
	for _, j := range batch {
		m := RequestMetrics{
			ID:        j.id,
			Cluster:   spec.cluster.Name(),
			Strategy:  spec.strategy.String(),
			Allocator: spec.allocator.String(),
			Tasks:     j.tasks,
			BatchSize: len(batch),
		}
		start := time.Now()
		m.QueueWaitMs = ms(start.Sub(j.enq))

		switch {
		case cerr != nil:
			m.Status = http.StatusInternalServerError
			m.Error = cerr.Error()
		case j.ctx.Err() != nil:
			// The deadline passed while the job sat in the queue: don't
			// burn scheduler time on an answer nobody is waiting for.
			m.Status = statusTimeout
			m.Error = fmt.Sprintf("deadline passed before execution: %v", j.ctx.Err())
		default:
			res, err := sched.ScheduleIn(cctx, j.dag)
			if err != nil {
				m.Status = http.StatusUnprocessableEntity
				m.Error = err.Error()
			} else {
				m.Status = statusOK
				m.AllocMs = ms(res.Phases.Alloc)
				m.MapMs = ms(res.Phases.Map)
				m.SimMs = ms(res.Phases.Sim)
				m.Counters = res.Counters
				m.TotalMs = ms(time.Since(j.enq))
				s.metrics.Record(m)
				s.log.Debug("scheduled",
					"id", j.id, "dag", j.dag.Name, "cluster", m.Cluster,
					"strategy", m.Strategy, "tasks", m.Tasks,
					"batch", len(batch), "total_ms", m.TotalMs)
				j.resp <- jobResult{result: res, metrics: m}
				continue
			}
		}
		m.TotalMs = ms(time.Since(j.enq))
		s.metrics.Record(m)
		s.log.Warn("request failed",
			"id", j.id, "status", m.Status, "error", m.Error)
		j.resp <- jobResult{metrics: m}
	}
	if cerr == nil {
		s.pool.put(spec.clusterKey, cctx)
	}
}
