package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/rats"
)

// ErrOverloaded is returned by Submit when the bounded queue is full; the
// HTTP layer translates it into 429 with a Retry-After hint.
var ErrOverloaded = errors.New("serve: queue full")

// ErrDraining is returned by Submit once Drain has begun; the HTTP layer
// translates it into 503.
var ErrDraining = errors.New("serve: draining")

// Config bounds the batcher. Zero values select the defaults noted per
// field.
type Config struct {
	// MaxBatch flushes a group as soon as it holds this many requests
	// (default 16).
	MaxBatch int
	// MaxWait flushes a non-empty group this long after its first request
	// arrived, so a lone request never waits for company (default 2ms).
	MaxWait time.Duration
	// MaxQueue bounds the number of accepted-but-unfinished requests;
	// beyond it Submit sheds load (default 1024).
	MaxQueue int
	// Workers is the number of batch executors (default GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// job is one accepted scheduling request traveling through the batcher.
// Exactly one jobResult is delivered on resp for every job Submit accepts
// — including during drain — which is the invariant the graceful-shutdown
// guarantee rests on.
type job struct {
	id    uint64
	key   string // canonical (cluster, options) batch key
	spec  *requestSpec
	dag   *rats.DAG
	tasks int

	ctx context.Context // carries the per-request deadline
	enq time.Time       // when Submit accepted the job

	resp chan jobResult // buffered(1): the executor never blocks sending
}

type jobResult struct {
	result  *rats.Result
	metrics RequestMetrics
}

// batcher groups submitted jobs by their batch key and hands size- or
// deadline-triggered batches to a worker pool running the supplied run
// function. A single collector goroutine owns the grouping state, so it
// needs no locks; Submit and Drain coordinate through a RWMutex that
// makes "send on the intake channel" and "close the intake channel"
// mutually exclusive.
type batcher struct {
	cfg Config
	run func([]*job)

	in     chan *job
	flushq chan []*job
	queued atomic.Int64

	mu       sync.RWMutex // guards draining vs. the in-channel send
	draining bool

	workersWG     sync.WaitGroup
	collectorDone chan struct{}
}

func newBatcher(cfg Config, run func([]*job)) *batcher {
	cfg = cfg.withDefaults()
	b := &batcher{
		cfg: cfg,
		run: run,
		in:  make(chan *job),
		// Capacity MaxQueue: at most MaxQueue jobs are in flight and every
		// batch holds ≥ 1 job, so the collector can always flush without
		// blocking, which in turn keeps Submit prompt.
		flushq:        make(chan []*job, cfg.MaxQueue),
		collectorDone: make(chan struct{}),
	}
	go b.collect()
	b.workersWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go b.workerLoop()
	}
	return b
}

// Submit hands a job to the batcher. It returns ErrDraining after Drain
// has begun and ErrOverloaded when MaxQueue jobs are already in flight;
// on nil return the job's resp channel is guaranteed to receive exactly
// one result.
func (b *batcher) Submit(j *job) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.draining {
		return ErrDraining
	}
	if b.queued.Add(1) > int64(b.cfg.MaxQueue) {
		b.queued.Add(-1)
		return ErrOverloaded
	}
	b.in <- j
	return nil
}

// Queued reports the number of accepted-but-unfinished jobs.
func (b *batcher) Queued() int { return int(b.queued.Load()) }

// Drain stops intake and blocks until every accepted job has been
// executed and answered. It is idempotent only in effect, not in API:
// call it once, from the shutdown path.
func (b *batcher) Drain() {
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	close(b.in)
	<-b.collectorDone
	b.workersWG.Wait()
}

// group is the collector's per-key accumulation state.
type group struct {
	jobs     []*job
	deadline time.Time // enq of the first job + MaxWait
}

// collect is the single goroutine that owns the grouping state. It
// flushes a group when it reaches MaxBatch or when its deadline passes,
// and on intake close it flushes every remainder before closing flushq.
func (b *batcher) collect() {
	defer close(b.collectorDone)
	groups := make(map[string]*group)
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()

	flush := func(key string) {
		g := groups[key]
		delete(groups, key)
		b.flushq <- g.jobs
	}

	for {
		// Arm the timer for the earliest group deadline, if any.
		var wait <-chan time.Time
		if len(groups) > 0 {
			earliest := time.Time{}
			for _, g := range groups {
				if earliest.IsZero() || g.deadline.Before(earliest) {
					earliest = g.deadline
				}
			}
			timer.Reset(time.Until(earliest))
			wait = timer.C
		}

		select {
		case j, ok := <-b.in:
			if !ok {
				for key := range groups {
					flush(key)
				}
				close(b.flushq)
				return
			}
			g := groups[j.key]
			if g == nil {
				g = &group{deadline: time.Now().Add(b.cfg.MaxWait)}
				groups[j.key] = g
			}
			g.jobs = append(g.jobs, j)
			if len(g.jobs) >= b.cfg.MaxBatch {
				flush(j.key)
			}
		case <-wait:
			now := time.Now()
			for key, g := range groups {
				if !g.deadline.After(now) {
					flush(key)
				}
			}
		}

		// Disarm and drain the timer so the next Reset starts clean
		// (go.mod targets a Go version without auto-draining timers).
		if wait != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
}

func (b *batcher) workerLoop() {
	defer b.workersWG.Done()
	for batch := range b.flushq {
		b.run(batch)
		b.queued.Add(-int64(len(batch)))
	}
}
