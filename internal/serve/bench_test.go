package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/rats"
)

// BenchmarkServe measures the served scheduling path end to end — HTTP
// decode, batching, pooled-context pipeline, response encode — under a
// fixed concurrent client load. One op is one completed request. Beyond
// the standard ns/op it reports the client-observed p50-ns and p99-ns
// latency and the aggregate sched/s throughput, which benchtraj's serve
// family records per cluster.
func BenchmarkServe(b *testing.B) {
	for _, tc := range []struct {
		cluster string
		dag     *rats.DAG
	}{
		{"grelon", rats.FFT(32, 1)},
		{"big512", rats.FFT(32, 1)},
	} {
		b.Run(tc.cluster, func(b *testing.B) {
			s := NewServer(ServerConfig{
				Log:   quietLog(),
				Batch: Config{MaxQueue: 1 << 20},
			})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			dagBlob, err := json.Marshal(tc.dag)
			if err != nil {
				b.Fatal(err)
			}
			body, err := json.Marshal(map[string]any{
				"cluster":  tc.cluster,
				"strategy": "time-cost",
				"dag":      json.RawMessage(dagBlob),
			})
			if err != nil {
				b.Fatal(err)
			}

			const workers = 8
			latencies := make([]time.Duration, b.N)
			var next atomic.Int64
			var wg sync.WaitGroup
			client := ts.Client()

			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(next.Add(1)) - 1
						if i >= b.N {
							return
						}
						t0 := time.Now()
						resp, err := client.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("HTTP %d", resp.StatusCode)
							return
						}
						latencies[i] = time.Since(t0)
					}
				}()
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()
			if b.Failed() {
				return
			}

			sort.Slice(latencies, func(x, y int) bool { return latencies[x] < latencies[y] })
			q := func(p float64) float64 {
				return float64(latencies[int(p*float64(len(latencies)-1))])
			}
			b.ReportMetric(q(0.50), "p50-ns")
			b.ReportMetric(q(0.99), "p99-ns")
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "sched/s")
		})
	}
}
