package serve

import (
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// exactQuantile computes the true q-quantile of samples with the same
// nearest-rank convention the histogram uses (rank = q·(n−1)).
func exactQuantile(samples []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[uint64(q*float64(len(s)-1))]
}

// TestQuantileAccuracy pins the satellite fix: quantile interpolates
// within its bucket instead of returning the bucket's upper bound, so the
// estimate must land inside the bucket holding the exact value — within
// one bucket width — rather than up to 2× above it.
func TestQuantileAccuracy(t *testing.T) {
	// Log-uniform samples across four decades exercise many buckets.
	var h histogram
	var samples []time.Duration
	x := 1.0
	for i := 0; i < 1000; i++ {
		d := time.Duration(float64(100*time.Microsecond) * math.Pow(1.01, float64(i%800)) * x)
		samples = append(samples, d)
		h.observe(d)
	}
	for _, q := range []float64{0.50, 0.90, 0.99} {
		got := h.quantile(q)
		exact := exactQuantile(samples, q)
		// The exact value's bucket: [lo, hi).
		lo, hi := time.Duration(0), histBase
		for exact >= hi {
			lo, hi = hi, hi*2
		}
		if got < lo || got > hi {
			t.Errorf("q=%g: quantile %v outside exact value's bucket [%v, %v) (exact %v)",
				q, got, lo, hi, exact)
		}
		// The old implementation returned hi for values in [lo, hi);
		// interpolation must not overstate by the full former error.
		if got > exact*2 {
			t.Errorf("q=%g: quantile %v overstates exact %v by more than 2x", q, got, exact)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	var h histogram
	h.observe(75 * time.Microsecond) // bucket [50µs, 100µs)
	got := h.quantile(0.50)
	if got < 50*time.Microsecond || got > 100*time.Microsecond {
		t.Fatalf("single observation in [50µs,100µs): quantile %v escaped the bucket", got)
	}
	if h.quantile(0.99) != got {
		t.Fatalf("all quantiles of one observation must agree: p50 %v, p99 %v", got, h.quantile(0.99))
	}
}

func TestQuantileEmptyAndOverflow(t *testing.T) {
	var h histogram
	if h.quantile(0.5) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	h.observe(48 * time.Hour) // far beyond the last bounded bucket
	got := h.quantile(0.5)
	want := histBase << (histBuckets - 2) // last bucket's lower edge
	if got != want {
		t.Fatalf("overflow bucket quantile = %v, want lower edge %v", got, want)
	}
}

// TestWritePrometheusLints feeds the exposition through the vendored
// promtool-style validator and spot-checks the engine counters and the
// histogram structure.
func TestWritePrometheusLints(t *testing.T) {
	c := NewCollector()
	c.Accepted()
	c.Batch(2)
	c.Record(RequestMetrics{
		Status: statusOK, TotalMs: 12.5, QueueWaitMs: 0.4,
		Counters: obs.Counters{MemoProbes: 100, MemoHits: 60, SolvesScratch: 7},
	})
	c.Record(RequestMetrics{Status: 422, TotalMs: 0.2, Error: "bad dag"})

	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if errs := obs.LintPrometheus(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("exposition fails lint: %v\n%s", errs, text)
	}
	for _, want := range []string{
		"rats_requests_completed_total 1",
		"rats_requests_failed_total 1",
		"rats_engine_memo_probes_total 100",
		"rats_engine_memo_hits_total 60",
		"rats_engine_solves_scratch_total 7",
		"rats_request_seconds_bucket{le=\"+Inf\"} 2",
		"rats_request_seconds_count 2",
		"rats_queue_wait_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition misses %q", want)
		}
	}
}

// TestCollectorAccumulatesEngineCounters: the snapshot's Engine field sums
// per-request counters.
func TestCollectorAccumulatesEngineCounters(t *testing.T) {
	c := NewCollector()
	c.Record(RequestMetrics{Status: statusOK, Counters: obs.Counters{CandEvals: 10}})
	c.Record(RequestMetrics{Status: statusOK, Counters: obs.Counters{CandEvals: 5, MemoHits: 3}})
	snap := c.Snapshot()
	if snap.Engine.CandEvals != 15 || snap.Engine.MemoHits != 3 {
		t.Fatalf("Engine = %+v, want cand_evals 15, memo_hits 3", snap.Engine)
	}
}
