package serve

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WritePrometheus renders the collector's state in the Prometheus text
// exposition format (version 0.0.4): the request lifecycle counters, the
// engine-level counters summed over recorded requests (one counter per
// obs.Counters field, named rats_engine_<field>_total), and the latency
// and queue-wait distributions as native Prometheus histograms with
// cumulative le buckets in seconds. The output passes the vendored
// obs.LintPrometheus validator; CI scrapes and lints it.
func (c *Collector) WritePrometheus(w io.Writer) error {
	c.mu.Lock()
	up := time.Since(c.started).Seconds()
	accepted, completed, failed := c.accepted, c.completed, c.failed
	shed, expired := c.shed, c.expired
	batches, batched := c.batches, c.batched
	engine := c.engine
	latency := c.latency
	queueWait := c.queueWait
	c.mu.Unlock()

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("rats_requests_accepted_total", "Requests admitted past the queue boundary.", accepted)
	counter("rats_requests_completed_total", "Requests scheduled successfully.", completed)
	counter("rats_requests_failed_total", "Requests that failed in the pipeline or were malformed.", failed)
	counter("rats_requests_shed_total", "Requests rejected with 429 at the queue boundary.", shed)
	counter("rats_requests_expired_total", "Requests whose deadline passed before execution.", expired)
	counter("rats_batches_total", "Scheduling batches executed.", batches)
	counter("rats_batched_requests_total", "Requests summed over executed batches.", batched)
	fmt.Fprintf(&b, "# HELP rats_uptime_seconds Seconds since the collector started.\n"+
		"# TYPE rats_uptime_seconds gauge\nrats_uptime_seconds %g\n", up)

	engine.Each(func(name string, v uint64) {
		counter("rats_engine_"+name+"_total",
			"Engine counter "+name+" summed over recorded requests.", v)
	})

	writeHistogram(&b, "rats_request_seconds",
		"End-to-end request latency (queue wait + pipeline).", &latency)
	writeHistogram(&b, "rats_queue_wait_seconds",
		"Time requests spent queued before execution.", &queueWait)

	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram with cumulative bucket counts. The
// le bounds are each bucket's upper edge in seconds (bucket 0's edge is
// histBase); the unbounded last bucket becomes +Inf.
func writeHistogram(b *strings.Builder, name, help string, h *histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	bound := histBase
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i]
		if i < histBuckets-1 {
			fmt.Fprintf(b, "%s_bucket{le=\"%g\"} %d\n", name, bound.Seconds(), cum)
			bound *= 2
		} else {
			fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		}
	}
	fmt.Fprintf(b, "%s_sum %g\n", name, h.sum.Seconds())
	fmt.Fprintf(b, "%s_count %d\n", name, h.total)
}
