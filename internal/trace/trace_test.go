package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/redist"
	"repro/internal/simdag"
)

func replayFFT(t *testing.T, strategy core.Strategy) (*dag.Graph, *core.Schedule, *simdag.Result) {
	t.Helper()
	cl := platform.Grillon()
	g := gen.FFT(8, 5)
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := alloc.Compute(g, costs, cl, alloc.DefaultOptions())
	s := core.Map(g, costs, cl, a, core.DefaultNaive(strategy))
	r, err := simdag.Execute(g, costs, cl, s)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, r
}

func TestStatsBasicInvariants(t *testing.T) {
	g, s, r := replayFFT(t, core.StrategyTimeCost)
	st := Compute(g, s, r)
	if st.Makespan != r.Makespan {
		t.Errorf("makespan %g, want %g", st.Makespan, r.Makespan)
	}
	if st.Utilization <= 0 || st.Utilization > 1+1e-9 {
		t.Errorf("utilization %g outside (0,1]", st.Utilization)
	}
	if st.PUsed < 1 || st.PUsed > 47 {
		t.Errorf("PUsed = %d", st.PUsed)
	}
	// Every real edge is either free or paid.
	realEdges := 0
	for _, e := range g.Edges {
		if !g.Tasks[e.From].Virtual && !g.Tasks[e.To].Virtual {
			realEdges++
		}
	}
	if st.FreeEdges+st.PaidEdges != realEdges {
		t.Errorf("free %d + paid %d != real edges %d", st.FreeEdges, st.PaidEdges, realEdges)
	}
	if st.RedistExposure < 0 || st.CriticalWait < 0 {
		t.Error("negative exposure")
	}
	if st.CriticalWait > st.RedistExposure+1e-9 {
		t.Error("max wait cannot exceed total exposure")
	}
	if !strings.Contains(st.String(), "makespan") {
		t.Error("String() missing content")
	}
}

func TestRATSIncreasesFreeEdgesOverBaseline(t *testing.T) {
	g, sb, rb := replayFFT(t, core.StrategyNone)
	_, sd, rd := replayFFT(t, core.StrategyDelta)
	base := Compute(g, sb, rb)
	delta := Compute(g, sd, rd)
	if delta.FreeEdges < base.FreeEdges {
		t.Errorf("delta free edges %d < baseline %d; adoption should only add free redistributions",
			delta.FreeEdges, base.FreeEdges)
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	g, s, r := replayFFT(t, core.StrategyDelta)
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, g, s, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	compute, network := 0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
		switch ev.PID {
		case 0:
			compute++
		case 1:
			network++
		}
	}
	if compute == 0 {
		t.Error("no compute events")
	}
	if network == 0 {
		t.Error("no network events (FFT on baseline-sized allocations should pay some redistributions)")
	}
}

func TestStatsEmptySchedule(t *testing.T) {
	g := dag.NewGraph(1, 0)
	g.AddVirtual("only")
	s := &core.Schedule{
		Alloc: []int{0}, Procs: [][]int{nil}, Order: []int{0},
		EstStart: []float64{0}, EstFinish: []float64{0},
	}
	r := &simdag.Result{Start: []float64{0}, Finish: []float64{0}}
	st := Compute(g, s, r)
	if st.BusyTime != 0 || st.PUsed != 0 || st.Utilization != 0 {
		t.Errorf("virtual-only stats should be zero: %+v", st)
	}
}

// TestComputeNoAllocs guards the stack-bitset used-processor set: for
// clusters under redist.BitsetMaxP processors (all presets), Compute must
// not allocate.
func TestComputeNoAllocs(t *testing.T) {
	g, s, r := replayFFT(t, core.StrategyTimeCost)
	if avg := testing.AllocsPerRun(20, func() { Compute(g, s, r) }); avg != 0 {
		t.Errorf("Compute allocates %.1f times per run, want 0", avg)
	}
}

// TestComputeOverflowProcessors exercises the map fallback for processor
// ids at or above the bitset bound: PUsed must still count them.
func TestComputeOverflowProcessors(t *testing.T) {
	g, s, r := replayFFT(t, core.StrategyTimeCost)
	// Relabel one task's processors past the bitset bound; Stats only
	// reads set cardinality, so the replay result stays valid.
	sc := *s
	sc.Procs = append([][]int(nil), s.Procs...)
	for t2 := range sc.Procs {
		if len(sc.Procs[t2]) > 0 {
			shifted := make([]int, len(sc.Procs[t2]))
			for i, p := range sc.Procs[t2] {
				shifted[i] = p + redist.BitsetMaxP
			}
			sc.Procs[t2] = shifted
			break
		}
	}
	want := Compute(g, s, r).PUsed
	got := Compute(g, &sc, r).PUsed
	// The shifted ids are distinct from every in-range id, so the count
	// can only grow (the shifted task's former processors may also be
	// used by other tasks, keeping them counted).
	if got < want {
		t.Errorf("PUsed with overflow ids = %d, want >= %d", got, want)
	}
}
