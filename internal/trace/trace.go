// Package trace derives post-mortem statistics and exportable execution
// traces from a replayed schedule.
//
// Stats quantifies what the scheduling papers argue about: processor
// utilization, time spent waiting on redistributions, and how much of the
// makespan is pure communication exposure. ChromeTrace exports the replay
// in the Chrome trace-event JSON format (load via chrome://tracing or
// Perfetto) with one timeline row per processor plus one per network
// redistribution, which makes the pack/stretch effects of RATS directly
// visible.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"math/bits"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/redist"
	"repro/internal/simdag"
)

// Stats summarizes one replayed schedule.
type Stats struct {
	Makespan float64
	// BusyTime is Σ over tasks of duration·|procs| (processor-seconds of
	// computation).
	BusyTime float64
	// Utilization is BusyTime / (P·Makespan) for the processors that ran
	// at least one task (PUsed).
	Utilization float64
	PUsed       int
	// RedistExposure is Σ over edges of the interval between producer
	// finish and redistribution completion — the serialized communication
	// cost the schedule actually paid (zero for adopted processor sets).
	RedistExposure float64
	// FreeEdges counts real edges whose redistribution completed at the
	// instant the producer finished (local or empty transfers).
	FreeEdges int
	// PaidEdges counts real edges that put traffic on the wire.
	PaidEdges int
	// CriticalWait is the largest single redistribution exposure.
	CriticalWait float64
}

// Compute derives Stats from a schedule and its replay result.
//
// The used-processor set lives in a stack bitset sized like the redist
// comparison sets (processor ids below redist.BitsetMaxP, which covers
// every cluster preset); a map takes over only past that bound, keeping
// the common path allocation-free.
func Compute(g *dag.Graph, s *core.Schedule, r *simdag.Result) Stats {
	st := Stats{Makespan: r.Makespan}
	var bset [redist.BitsetMaxP / 64]uint64
	var overflow map[int]bool
	for t := range g.Tasks {
		if g.Tasks[t].Virtual {
			continue
		}
		dur := r.Finish[t] - r.Start[t]
		st.BusyTime += dur * float64(len(s.Procs[t]))
		for _, p := range s.Procs[t] {
			if uint(p) < redist.BitsetMaxP {
				bset[p>>6] |= 1 << (uint(p) & 63)
			} else {
				if overflow == nil {
					overflow = map[int]bool{}
				}
				overflow[p] = true
			}
		}
	}
	for _, w := range bset {
		st.PUsed += bits.OnesCount64(w)
	}
	st.PUsed += len(overflow)
	if st.PUsed > 0 && st.Makespan > 0 {
		st.Utilization = st.BusyTime / (float64(st.PUsed) * st.Makespan)
	}
	for _, e := range g.Edges {
		if g.Tasks[e.From].Virtual || g.Tasks[e.To].Virtual {
			continue
		}
		wait := r.EdgeFinish[e.ID] - r.Finish[e.From]
		if wait < 1e-12 {
			st.FreeEdges++
			continue
		}
		st.PaidEdges++
		st.RedistExposure += wait
		if wait > st.CriticalWait {
			st.CriticalWait = wait
		}
	}
	return st
}

// String renders the stats as a compact human-readable block.
func (st Stats) String() string {
	return fmt.Sprintf(
		"makespan %.3fs | %d procs used, utilization %.1f%% | redistributions: %d free, %d paid, %.3fs exposure (max %.3fs)",
		st.Makespan, st.PUsed, 100*st.Utilization,
		st.FreeEdges, st.PaidEdges, st.RedistExposure, st.CriticalWait)
}

// chromeEvent is one trace-event record ("X" = complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace writes the replay as Chrome trace-event JSON. Processor
// timelines use pid 0 with one tid per processor; redistribution timelines
// use pid 1 with one tid per consumer task.
func ChromeTrace(w io.Writer, g *dag.Graph, s *core.Schedule, r *simdag.Result) error {
	var events []chromeEvent
	sec := 1e6 // trace timestamps are microseconds
	for t := range g.Tasks {
		if g.Tasks[t].Virtual {
			continue
		}
		name := g.Tasks[t].Name
		if name == "" {
			name = fmt.Sprintf("task %d", t)
		}
		for _, p := range s.Procs[t] {
			events = append(events, chromeEvent{
				Name: name, Cat: "compute", Ph: "X",
				TS: r.Start[t] * sec, Dur: (r.Finish[t] - r.Start[t]) * sec,
				PID: 0, TID: p,
				Args: map[string]string{
					"alloc": fmt.Sprint(len(s.Procs[t])),
				},
			})
		}
	}
	for _, e := range g.Edges {
		if g.Tasks[e.From].Virtual || g.Tasks[e.To].Virtual || e.Bytes <= 0 {
			continue
		}
		dur := r.EdgeFinish[e.ID] - r.Finish[e.From]
		if dur <= 0 {
			continue
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("redist %d→%d", e.From, e.To),
			Cat:  "network", Ph: "X",
			TS: r.Finish[e.From] * sec, Dur: dur * sec,
			PID: 1, TID: e.To,
			Args: map[string]string{"bytes": fmt.Sprintf("%.0f", e.Bytes)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}
