package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompare(t *testing.T) {
	if Compare(1, 2) != -1 || Compare(2, 1) != 1 || Compare(5, 5) != 0 {
		t.Fatal("basic comparisons wrong")
	}
	// Within relative epsilon: equal.
	if Compare(1e6, 1e6*(1+1e-9)) != 0 {
		t.Error("values within RelEpsilon should compare equal")
	}
	if Compare(1, 1+1e-3) != -1 {
		t.Error("values beyond RelEpsilon should differ")
	}
}

func TestRelativeAndSorted(t *testing.T) {
	r := Relative([]float64{9, 20, 10}, []float64{10, 10, 10})
	want := []float64{0.9, 2.0, 1.0}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("ratio[%d] = %g, want %g", i, r[i], want[i])
		}
	}
	s := Sorted(r)
	if s[0] != 0.9 || s[1] != 1.0 || s[2] != 2.0 {
		t.Errorf("Sorted = %v", s)
	}
	// original untouched
	if r[0] != 0.9 || r[1] != 2.0 {
		t.Error("Sorted must not mutate its input")
	}
}

func TestRelativeZeroBaseline(t *testing.T) {
	r := Relative([]float64{1}, []float64{0})
	if !math.IsNaN(r[0]) {
		t.Errorf("ratio with zero baseline = %g, want NaN", r[0])
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.8, 0.9, 1.0, 1.1})
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-0.95) > 1e-12 {
		t.Errorf("Mean = %g, want 0.95", s.Mean)
	}
	if s.ShorterCount != 2 || s.EqualCount != 1 || s.LongerCount != 1 {
		t.Errorf("counts = %d/%d/%d, want 2/1/1", s.ShorterCount, s.EqualCount, s.LongerCount)
	}
	if math.Abs(s.ShorterPercent()-50) > 1e-12 {
		t.Errorf("ShorterPercent = %g", s.ShorterPercent())
	}
	if math.Abs(s.MeanImprovementPercent()-5) > 1e-9 {
		t.Errorf("MeanImprovement = %g, want 5", s.MeanImprovementPercent())
	}
	if math.Abs(s.Median-0.95) > 1e-12 {
		t.Errorf("Median = %g, want 0.95", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.ShorterPercent() != 0 {
		t.Error("empty summary should be zero-valued")
	}
}

func TestPairwiseTwoAlgorithms(t *testing.T) {
	// algo0 better on scenarios 0,1; equal on 2; worse on 3.
	ms := [][]float64{
		{1, 2, 3, 9},
		{2, 3, 3, 4},
	}
	pw := Pairwise(ms)
	c := pw[0][1]
	if c.Better != 2 || c.Equal != 1 || c.Worse != 1 {
		t.Fatalf("cell = %+v", c)
	}
	// Antisymmetry.
	d := pw[1][0]
	if d.Better != c.Worse || d.Worse != c.Better || d.Equal != c.Equal {
		t.Errorf("pairwise not antisymmetric: %+v vs %+v", c, d)
	}
}

func TestCombinedMatchesPaperArithmetic(t *testing.T) {
	// Reconstruct the paper's chti HCPA row: better 154 vs delta and 103
	// vs time-cost out of 557 scenarios each ⇒ combined 23.1%.
	// We fabricate makespans that produce exactly those counts.
	n := 557
	h := make([]float64, n)
	d := make([]float64, n)
	tc := make([]float64, n)
	for i := 0; i < n; i++ {
		h[i] = 100
		switch {
		case i < 154:
			d[i] = 200 // delta worse
		case i < 154+17:
			d[i] = 100 // equal
		default:
			d[i] = 50 // delta better
		}
		switch {
		case i < 103:
			tc[i] = 200
		case i < 103+21:
			tc[i] = 100
		default:
			tc[i] = 50
		}
	}
	pw := Pairwise([][]float64{h, d, tc})
	if pw[0][1].Better != 154 || pw[0][1].Equal != 17 || pw[0][1].Worse != 386 {
		t.Fatalf("HCPA vs delta = %+v", pw[0][1])
	}
	comb := Combined(pw, 0)
	if math.Abs(comb.Better-23.1) > 0.05 {
		t.Errorf("combined better = %.2f%%, want ≈23.1%%", comb.Better)
	}
	if math.Abs(comb.Equal-3.4) > 0.05 {
		t.Errorf("combined equal = %.2f%%, want ≈3.4%%", comb.Equal)
	}
}

func TestDegradationFromBest(t *testing.T) {
	// Two algorithms, two scenarios.
	// s0: a=100 (best), b=150 (deg 50%). s1: a=120, b=100 (a deg 20%).
	ms := [][]float64{
		{100, 120},
		{150, 100},
	}
	d := DegradationFromBest(ms)
	if math.Abs(d[0].AvgOverAll-10) > 1e-9 { // (0+20)/2
		t.Errorf("a.AvgOverAll = %g, want 10", d[0].AvgOverAll)
	}
	if d[0].NotBest != 1 || math.Abs(d[0].AvgOverNotBest-20) > 1e-9 {
		t.Errorf("a not-best stats = %d/%g, want 1/20", d[0].NotBest, d[0].AvgOverNotBest)
	}
	if math.Abs(d[1].AvgOverAll-25) > 1e-9 { // (50+0)/2
		t.Errorf("b.AvgOverAll = %g, want 25", d[1].AvgOverAll)
	}
}

func TestDegradationEmpty(t *testing.T) {
	if d := DegradationFromBest(nil); len(d) != 0 {
		t.Error("nil input should give empty output")
	}
	d := DegradationFromBest([][]float64{{}})
	if len(d) != 1 || d[0].NotBest != 0 {
		t.Error("empty scenarios should give zero degradation")
	}
}

// Property: pairwise counts always sum to the scenario count, and the
// matrix is antisymmetric.
func TestPropertyPairwiseConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nAlgo := 2 + r.Intn(3)
		nScen := 1 + r.Intn(40)
		ms := make([][]float64, nAlgo)
		for a := range ms {
			ms[a] = make([]float64, nScen)
			for s := range ms[a] {
				ms[a][s] = float64(1 + r.Intn(5)) // ties likely
			}
		}
		pw := Pairwise(ms)
		for i := 0; i < nAlgo; i++ {
			for j := 0; j < nAlgo; j++ {
				if i == j {
					continue
				}
				c, d := pw[i][j], pw[j][i]
				if c.Better+c.Equal+c.Worse != nScen {
					return false
				}
				if c.Better != d.Worse || c.Equal != d.Equal {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: degradation is non-negative, zero for the per-scenario best,
// and at least one algorithm has zero degradation per scenario.
func TestPropertyDegradationNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nAlgo := 2 + r.Intn(3)
		nScen := 1 + r.Intn(30)
		ms := make([][]float64, nAlgo)
		for a := range ms {
			ms[a] = make([]float64, nScen)
			for s := range ms[a] {
				ms[a][s] = 1 + 10*r.Float64()
			}
		}
		d := DegradationFromBest(ms)
		for a := range d {
			if d[a].AvgOverAll < 0 || d[a].AvgOverNotBest < 0 {
				return false
			}
			if d[a].NotBest > nScen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
