// Package metrics implements the evaluation metrics of §IV of the paper:
// relative makespan/work series (Figures 2, 3, 6, 7), pairwise
// better/equal/worse counts (Table V) and degradation from best
// (Table VI).
package metrics

import (
	"math"
	"sort"
)

// RelEpsilon is the relative tolerance under which two makespans are
// considered equal — schedule lengths are simulated floating-point values,
// and "equal" in Table V means "the algorithms produced the same
// schedule", which survives tiny numerical noise.
const RelEpsilon = 1e-6

// Compare returns −1 if a < b, +1 if a > b and 0 if they are equal within
// RelEpsilon (relative to their magnitude).
func Compare(a, b float64) int {
	tol := RelEpsilon * math.Max(math.Abs(a), math.Abs(b))
	switch {
	case a < b-tol:
		return -1
	case a > b+tol:
		return +1
	}
	return 0
}

// Relative returns target[i]/baseline[i] for every scenario — the "makespan
// relative to HCPA" series of Figures 2/3/6/7 (values < 1 mean the target
// algorithm is better).
func Relative(target, baseline []float64) []float64 {
	if len(target) != len(baseline) {
		panic("metrics: Relative requires equal-length series")
	}
	out := make([]float64, len(target))
	for i := range target {
		if baseline[i] == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = target[i] / baseline[i]
	}
	return out
}

// Sorted returns an independently sorted copy of a series, matching the
// paper's presentation ("data points are sorted by increasing value of this
// relative makespan. Note that the data sets are sorted independently").
func Sorted(series []float64) []float64 {
	c := append([]float64(nil), series...)
	sort.Float64s(c)
	return c
}

// Summary condenses a relative series the way the paper quotes it
// ("on average 9% shorter", "shorter schedules in 72% of the scenarios").
type Summary struct {
	N            int
	Mean         float64 // mean ratio; 0.91 ⇒ 9% shorter on average
	Median       float64
	P10, P90     float64
	ShorterCount int // ratios < 1 − RelEpsilon
	EqualCount   int
	LongerCount  int
}

// ShorterPercent is the share of scenarios with a strictly shorter result.
func (s Summary) ShorterPercent() float64 {
	if s.N == 0 {
		return 0
	}
	return 100 * float64(s.ShorterCount) / float64(s.N)
}

// MeanImprovementPercent is (1 − mean ratio)·100: positive means shorter
// schedules than the baseline on average.
func (s Summary) MeanImprovementPercent() float64 { return 100 * (1 - s.Mean) }

// Summarize computes a Summary of a relative series.
func Summarize(ratios []float64) Summary {
	s := Summary{N: len(ratios)}
	if s.N == 0 {
		return s
	}
	sorted := Sorted(ratios)
	sum := 0.0
	for _, r := range sorted {
		sum += r
		switch Compare(r, 1) {
		case -1:
			s.ShorterCount++
		case 0:
			s.EqualCount++
		default:
			s.LongerCount++
		}
	}
	s.Mean = sum / float64(s.N)
	q := func(p float64) float64 {
		idx := p * float64(s.N-1)
		lo := int(math.Floor(idx))
		hi := int(math.Ceil(idx))
		frac := idx - float64(lo)
		return sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	s.Median, s.P10, s.P90 = q(0.5), q(0.1), q(0.9)
	return s
}

// PairwiseCell counts scenarios where the row algorithm was better, equal
// or worse than the column algorithm (one cell of Table V).
type PairwiseCell struct {
	Better, Equal, Worse int
}

// Pairwise computes the full pairwise comparison matrix from per-algorithm
// makespan vectors: makespans[a][s] is algorithm a's makespan on scenario
// s. Entry [i][j] compares algorithm i (row) against j (column).
func Pairwise(makespans [][]float64) [][]PairwiseCell {
	n := len(makespans)
	out := make([][]PairwiseCell, n)
	for i := range out {
		out[i] = make([]PairwiseCell, n)
		for j := range out[i] {
			if i == j {
				continue
			}
			for s := range makespans[i] {
				switch Compare(makespans[i][s], makespans[j][s]) {
				case -1:
					out[i][j].Better++ // lower makespan = better
				case 0:
					out[i][j].Equal++
				default:
					out[i][j].Worse++
				}
			}
		}
	}
	return out
}

// CombinedPercent is the "combined" column of Table V: the percentage of
// (scenario, opponent) pairs in which an algorithm is better, equal or
// worse than all other algorithms combined.
type CombinedPercent struct {
	Better, Equal, Worse float64
}

// Combined reduces a pairwise matrix row to the combined percentages.
func Combined(pw [][]PairwiseCell, row int) CombinedPercent {
	var b, e, w int
	for j, cell := range pw[row] {
		if j == row {
			continue
		}
		b += cell.Better
		e += cell.Equal
		w += cell.Worse
	}
	total := b + e + w
	if total == 0 {
		return CombinedPercent{}
	}
	f := 100 / float64(total)
	return CombinedPercent{Better: f * float64(b), Equal: f * float64(e), Worse: f * float64(w)}
}

// Degradation is one row group of Table VI for one algorithm.
type Degradation struct {
	// AvgOverAll is the mean percent distance to the per-scenario best,
	// averaged over every experiment (best cases contribute 0).
	AvgOverAll float64
	// NotBest counts the experiments where the algorithm was not the best.
	NotBest int
	// AvgOverNotBest averages the percent distance over only those
	// experiments (the paper's second method, robust to "often best"
	// algorithms diluting the average).
	AvgOverNotBest float64
}

// DegradationFromBest computes Table VI: for every scenario the best
// makespan across algorithms is the reference; each algorithm's
// degradation is (makespan − best)/best·100.
func DegradationFromBest(makespans [][]float64) []Degradation {
	n := len(makespans)
	out := make([]Degradation, n)
	if n == 0 || len(makespans[0]) == 0 {
		return out
	}
	scenarios := len(makespans[0])
	for s := 0; s < scenarios; s++ {
		best := math.Inf(1)
		for a := 0; a < n; a++ {
			if makespans[a][s] < best {
				best = makespans[a][s]
			}
		}
		for a := 0; a < n; a++ {
			deg := 0.0
			if best > 0 {
				deg = 100 * (makespans[a][s] - best) / best
			}
			out[a].AvgOverAll += deg
			if Compare(makespans[a][s], best) > 0 {
				out[a].NotBest++
				out[a].AvgOverNotBest += deg
			}
		}
	}
	for a := range out {
		out[a].AvgOverAll /= float64(scenarios)
		if out[a].NotBest > 0 {
			out[a].AvgOverNotBest /= float64(out[a].NotBest)
		}
	}
	return out
}
