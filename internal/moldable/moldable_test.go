package moldable

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dag"
)

func TestTimeBasics(t *testing.T) {
	m := Model{SeqTime: 100, Alpha: 0.2}
	if got := m.Time(1); got != 100 {
		t.Errorf("T(1) = %g, want 100", got)
	}
	// T(p→∞) → α·T(1)
	if got := m.Time(1 << 20); math.Abs(got-20) > 0.01 {
		t.Errorf("T(inf) = %g, want ≈20", got)
	}
	// T(2) = 100·(0.2 + 0.8/2) = 60
	if got := m.Time(2); math.Abs(got-60) > 1e-12 {
		t.Errorf("T(2) = %g, want 60", got)
	}
	if got := m.Time(0); got != m.Time(1) {
		t.Errorf("T(0) should clamp to T(1): %g vs %g", got, m.Time(1))
	}
}

func TestWork(t *testing.T) {
	m := Model{SeqTime: 100, Alpha: 0.2}
	if got := m.Work(1); got != 100 {
		t.Errorf("W(1) = %g, want 100", got)
	}
	if got := m.Work(2); math.Abs(got-120) > 1e-12 {
		t.Errorf("W(2) = %g, want 120", got)
	}
}

// Property: T is monotonically non-increasing and W monotonically
// non-decreasing in p, for any valid α.
func TestPropertyMonotonicity(t *testing.T) {
	f := func(seq float64, alphaRaw float64, pRaw uint8) bool {
		seq = math.Abs(seq)
		if math.IsNaN(seq) || math.IsInf(seq, 0) || seq == 0 {
			seq = 1
		}
		alpha := math.Mod(math.Abs(alphaRaw), MaxAlpha)
		p := int(pRaw)%200 + 1
		m := Model{SeqTime: seq, Alpha: alpha}
		return m.Time(p+1) <= m.Time(p)+1e-12*seq &&
			m.Work(p+1) >= m.Work(p)-1e-12*seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: for α=0 the task is perfectly parallel: T(p) = T(1)/p.
func TestPropertyPerfectlyParallel(t *testing.T) {
	f := func(pRaw uint8) bool {
		p := int(pRaw)%100 + 1
		m := Model{SeqTime: 50, Alpha: 0}
		return math.Abs(m.Time(p)-50/float64(p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCostsFromGraph(t *testing.T) {
	g := dag.NewGraph(2, 0)
	g.AddTask(dag.Task{M: 1e7, A: 100, Alpha: 0.1}) // 1e9 ops
	g.AddVirtual("v")
	c := NewCosts(g, 2.0) // 2 GFlop/s
	if got := c.SeqTime(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("SeqTime = %g, want 0.5", got)
	}
	if got := c.Time(1, 64); got != 0 {
		t.Errorf("virtual task time = %g, want 0", got)
	}
	if c.N() != 2 {
		t.Errorf("N = %d, want 2", c.N())
	}
}

func TestTotalWork(t *testing.T) {
	g := dag.NewGraph(3, 0)
	g.AddTask(dag.Task{M: 1e7, A: 100, Alpha: 0}) // seq 0.5s at 2GFlops
	g.AddTask(dag.Task{M: 1e7, A: 100, Alpha: 0})
	g.AddVirtual("v")
	c := NewCosts(g, 2.0)
	// α=0 ⇒ work independent of p: 0.5 + 0.5
	got := c.TotalWork([]int{4, 8, 1})
	if math.Abs(got-1.0) > 1e-12 {
		t.Errorf("TotalWork = %g, want 1.0", got)
	}
}

func TestTaskOpsAndBytes(t *testing.T) {
	task := dag.Task{M: 2e6, A: 64}
	if got := task.Ops(); got != 128e6 {
		t.Errorf("Ops = %g, want 1.28e8", got)
	}
	// Communicated volume equals m (§II-A), not the 8·m-byte dataset size.
	if got := task.Bytes(); got != 2e6 {
		t.Errorf("Bytes = %g, want 2e6", got)
	}
	v := dag.Task{M: 2e6, A: 64, Virtual: true}
	if v.Ops() != 0 || v.Bytes() != 0 {
		t.Error("virtual task should have zero ops/bytes")
	}
}
