// Package moldable implements the moldable data-parallel task cost model of
// §II-A of the paper.
//
// A task operates on a dataset of m double-precision elements and performs
// a·m floating point operations (a ∈ [64, 512], capturing multi-iteration
// kernels such as stencils on a √m×√m domain). Parallel execution follows
// Amdahl's law with a non-parallelizable fraction α ∈ [0, 0.25]:
//
//	T(p) = T(1) · (α + (1−α)/p)
//
// The model is monotonically decreasing in p, while the work ω(p) = p·T(p)
// is monotonically non-decreasing — adding processors always shortens the
// task but always costs resources, which is precisely the trade-off the
// RATS time-cost strategy arbitrates.
package moldable

import "repro/internal/dag"

// Dataset bounds from the paper: processors have at most 1 GByte of memory,
// so m ≤ 121e6 double-precision elements (968 MB); datasets below 4e6
// elements should be aggregated with neighbours instead of scheduled.
const (
	BytesPerElement = 8
	MinElements     = 4e6
	MaxElements     = 121e6
	MinOpsFactor    = 64  // 2^6
	MaxOpsFactor    = 512 // 2^9
	MaxAlpha        = 0.25
)

// Model is the Amdahl execution-time model of one task.
type Model struct {
	SeqTime float64 // T(1), seconds
	Alpha   float64 // non-parallelizable fraction in [0,1]
}

// Time returns T(p), the execution time on p processors. Time(0) is defined
// as +Inf-free: p is clamped to 1 so callers never divide by zero.
func (m Model) Time(p int) float64 {
	if p < 1 {
		p = 1
	}
	return m.SeqTime * (m.Alpha + (1-m.Alpha)/float64(p))
}

// Work returns ω(p) = p · T(p), the resource consumption of the task.
func (m Model) Work(p int) float64 {
	if p < 1 {
		p = 1
	}
	return float64(p) * m.Time(p)
}

// Costs binds a task graph to a processor speed, pre-computing the Amdahl
// model of every task. It is the single cost oracle shared by the
// allocation procedures, the mapping procedures and the simulator, so all
// of them agree on T(t, p) exactly.
//
// On heterogeneous clusters the construction speed is the planning speed
// (the slowest node); TimeOn/WorkOn answer the same Amdahl model
// re-based to the speed of a concrete processor set. TimeOn at the
// construction speed is bit-identical to Time — both evaluate
// t.Ops()/(speed·1e9) and the same Model.Time expression — so routing a
// uniform cluster through either path yields the same floats.
type Costs struct {
	models []Model
	ops    []float64 // raw per-task op counts, for re-basing to another speed
	speed  float64   // construction speed, GFlop/s
}

// NewCosts builds the cost oracle for graph g on processors running at
// speedGFlops·10⁹ floating point operations per second. Virtual tasks get a
// zero model.
func NewCosts(g *dag.Graph, speedGFlops float64) *Costs {
	c := &Costs{
		models: make([]Model, g.N()),
		ops:    make([]float64, g.N()),
		speed:  speedGFlops,
	}
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if t.Virtual {
			continue
		}
		c.ops[i] = t.Ops()
		c.models[i] = Model{
			SeqTime: t.Ops() / (speedGFlops * 1e9),
			Alpha:   t.Alpha,
		}
	}
	return c
}

// Speed returns the speed in GFlop/s the oracle was constructed at.
func (c *Costs) Speed() float64 { return c.speed }

// ModelOn returns the task's Amdahl model re-based to another node speed.
// At the construction speed it reproduces Model(task) bit-exactly.
func (c *Costs) ModelOn(task int, speedGFlops float64) Model {
	return Model{
		SeqTime: c.ops[task] / (speedGFlops * 1e9),
		Alpha:   c.models[task].Alpha,
	}
}

// TimeOn returns T(task, p) with every processor running at speedGFlops —
// the cost of the task on a set whose slowest member runs at that speed.
func (c *Costs) TimeOn(task, p int, speedGFlops float64) float64 {
	return c.ModelOn(task, speedGFlops).Time(p)
}

// WorkOn returns ω(task, p) = p·TimeOn(task, p, speedGFlops).
func (c *Costs) WorkOn(task, p int, speedGFlops float64) float64 {
	return c.ModelOn(task, speedGFlops).Work(p)
}

// Time returns T(task, p) in seconds.
func (c *Costs) Time(task, p int) float64 { return c.models[task].Time(p) }

// Work returns ω(task, p) = p·T(task, p).
func (c *Costs) Work(task, p int) float64 { return c.models[task].Work(p) }

// SeqTime returns T(task, 1).
func (c *Costs) SeqTime(task int) float64 { return c.models[task].SeqTime }

// Model returns the underlying Amdahl model of a task.
func (c *Costs) Model(task int) Model { return c.models[task] }

// N returns the number of tasks covered by the oracle.
func (c *Costs) N() int { return len(c.models) }

// TotalWork returns Σ ω(t, alloc[t]) over non-virtual tasks — the "work"
// metric of Figures 3 and 7 (lower is lower resource consumption).
func (c *Costs) TotalWork(alloc []int) float64 {
	w := 0.0
	for t, p := range alloc {
		if c.models[t].SeqTime == 0 {
			continue
		}
		w += c.Work(t, p)
	}
	return w
}
