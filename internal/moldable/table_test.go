package moldable

import (
	"testing"

	"repro/internal/dag"
)

// TestTableMatchesCostsBitwise checks that memoized lookups are
// bit-identical to the direct oracle for every (task, p), in arbitrary
// access order — the contract the incremental allocation engine relies on.
func TestTableMatchesCostsBitwise(t *testing.T) {
	g := dag.NewGraph(4, 0)
	g.AddTask(dag.Task{Name: "a", M: 50e6, A: 256, Alpha: 0.05})
	g.AddTask(dag.Task{Name: "b", M: 10e6, A: 64, Alpha: 0.2})
	g.AddTask(dag.Task{Name: "v", Virtual: true})
	g.AddTask(dag.Task{Name: "c", M: 121e6, A: 512, Alpha: 0})
	costs := NewCosts(g, 3.0)
	tb := NewTable(costs)

	// Deliberately non-monotone access order, including re-reads and the
	// p<1 clamp.
	order := []struct{ task, p int }{
		{0, 7}, {0, 3}, {1, 1}, {3, 128}, {0, 7}, {2, 5}, {1, 64}, {3, 1}, {0, 0},
	}
	for _, a := range order {
		if got, want := tb.Time(a.task, a.p), costs.Time(a.task, a.p); got != want {
			t.Errorf("Time(%d,%d) = %v, want %v", a.task, a.p, got, want)
		}
		if got, want := tb.Work(a.task, a.p), costs.Work(a.task, a.p); got != want {
			t.Errorf("Work(%d,%d) = %v, want %v", a.task, a.p, got, want)
		}
	}
	// Exhaustive sweep after the lazy fills.
	for task := 0; task < g.N(); task++ {
		for p := 1; p <= 150; p++ {
			if got, want := tb.Time(task, p), costs.Time(task, p); got != want {
				t.Fatalf("Time(%d,%d) = %v, want %v", task, p, got, want)
			}
		}
	}
}
