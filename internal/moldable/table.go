package moldable

// Table is a memoized view of a Costs oracle: T(t, p) and ω(t, p) lookups
// hit a per-task value table instead of re-evaluating the Amdahl formula.
//
// The allocation refinement loops evaluate the same (task, p) pairs over
// and over — every candidate scan reads T(t, Np(t)) and T(t, Np(t)+1), and
// allocations only ever grow by one — so the table fills itself lazily and
// monotonically: memo[t] holds T(t, 1..len(memo[t])) and is extended on
// first access past its current length. Memoized values are produced by
// the exact same Model.Time evaluation Costs performs, so a Table answer
// is bit-identical to the Costs answer for every (task, p).
//
// A Table is not safe for concurrent use; each allocation run creates its
// own (the underlying Costs may be shared).
//
// The table memoizes at the oracle's construction speed only — on
// heterogeneous clusters that is the planning speed the allocation
// procedures cost against. Set-speed lookups (Costs.TimeOn) are not
// memoized here: they are keyed by a continuum of speeds rather than a
// dense (task, p) grid, and the direct Amdahl evaluation is cheaper than
// a keyed probe, so the hetero path never touches (or grows) this memo.
type Table struct {
	c    *Costs
	memo [][]float64 // memo[t][p-1] = Time(t, p)
}

// NewTable returns an empty memo over the given cost oracle.
func NewTable(c *Costs) *Table {
	return &Table{c: c, memo: make([][]float64, c.N())}
}

// Time returns T(task, p), memoized. p values below 1 are clamped like
// Costs.Time.
func (tb *Table) Time(task, p int) float64 {
	if p < 1 {
		p = 1
	}
	row := tb.memo[task]
	if p > len(row) {
		if cap(row) < p {
			grown := make([]float64, len(row), p+p/2+1)
			copy(grown, row)
			row = grown
		}
		m := tb.c.Model(task)
		for q := len(row) + 1; q <= p; q++ {
			row = append(row, m.Time(q))
		}
		tb.memo[task] = row
	}
	return row[p-1]
}

// Work returns ω(task, p) = p·T(task, p), computed from the memoized time
// with the same expression as Model.Work, so it is bit-identical to
// Costs.Work.
func (tb *Table) Work(task, p int) float64 {
	if p < 1 {
		p = 1
	}
	return float64(p) * tb.Time(task, p)
}
