package moldable_test

import (
	"fmt"

	"repro/internal/moldable"
)

// ExampleModel shows the Amdahl speedup model of §II-A: a task with a 20%
// sequential fraction speeds up sub-linearly, and its work (resource
// consumption) grows with the allocation — the trade-off the RATS
// time-cost strategy arbitrates through ρ.
func ExampleModel() {
	m := moldable.Model{SeqTime: 100, Alpha: 0.2}
	for _, p := range []int{1, 2, 4, 8} {
		fmt.Printf("p=%d  T=%5.1fs  work=%5.0f proc·s\n", p, m.Time(p), m.Work(p))
	}
	// Output:
	// p=1  T=100.0s  work=  100 proc·s
	// p=2  T= 60.0s  work=  120 proc·s
	// p=4  T= 40.0s  work=  160 proc·s
	// p=8  T= 30.0s  work=  240 proc·s
}
