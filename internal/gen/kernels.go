package gen

import (
	"fmt"
	"math/bits"

	"repro/internal/dag"
	"repro/internal/xrand"
)

// FFTTaskCount returns the number of computation tasks of an FFT task
// graph over k data points: 2k−1 recursive-call tasks plus k·log2(k)
// butterfly tasks (§IV-A). For the paper's k ∈ {2, 4, 8, 16} this yields
// 5, 15, 39 and 95 tasks.
func FFTTaskCount(k int) int {
	lg := bits.Len(uint(k)) - 1
	return 2*k - 1 + k*lg
}

// FFT generates the Fast Fourier Transform task graph over k data points
// (k must be a power of two ≥ 2). The graph has two parts: a binary tree
// of recursive-call tasks (root = entry) whose k leaves feed log2(k)
// butterfly levels of k tasks each. Tasks of a given level share one cost
// draw, so — as the paper notes — every root-to-exit path is critical.
func FFT(k int, seed int64) *dag.Graph {
	if k < 2 || k&(k-1) != 0 {
		panic(fmt.Sprintf("gen: FFT requires a power-of-two k ≥ 2, got %d", k))
	}
	lg := bits.Len(uint(k)) - 1
	rng := xrand.New(seed)
	g := dag.NewGraph(FFTTaskCount(k)+1, 3*k*lg)

	// Recursive-call tree: level d has 2^d tasks, d = 0..lg.
	tree := make([][]int, lg+1)
	for d := 0; d <= lg; d++ {
		c := drawCost(rng)
		tree[d] = make([]int, 1<<d)
		for i := range tree[d] {
			tree[d][i] = g.AddTask(dag.Task{
				Name: fmt.Sprintf("fft/rec%d_%d", d, i),
				M:    c.m, A: c.a, Alpha: c.alpha,
			})
		}
		if d > 0 {
			for i, id := range tree[d] {
				parent := tree[d-1][i/2]
				g.AddEdge(parent, id, g.Tasks[parent].Bytes())
			}
		}
	}

	// Butterfly stages: lg levels of k tasks. Stage 1 reads the tree
	// leaves; stage s task i reads stage s−1 tasks i and i XOR 2^(s−1).
	prev := tree[lg]
	for s := 1; s <= lg; s++ {
		c := drawCost(rng)
		cur := make([]int, k)
		for i := 0; i < k; i++ {
			cur[i] = g.AddTask(dag.Task{
				Name: fmt.Sprintf("fft/bfly%d_%d", s, i),
				M:    c.m, A: c.a, Alpha: c.alpha,
			})
		}
		for i := 0; i < k; i++ {
			a, b := prev[i], prev[i^(1<<(s-1))]
			g.AddEdge(a, cur[i], g.Tasks[a].Bytes())
			if b != a {
				g.AddEdge(b, cur[i], g.Tasks[b].Bytes())
			}
		}
		prev = cur
	}

	g.Normalize() // k butterfly exits → virtual exit
	return g
}

// StrassenTaskCount is the number of computation tasks of the Strassen
// graph: 10 pre-additions, 7 sub-multiplications and 8 post-additions
// (§IV-A reports 25 tasks).
const StrassenTaskCount = 25

// Strassen generates the task graph of one level of Strassen's matrix
// multiplication C = A·B:
//
//	S1..S10 : quadrant additions/subtractions  (level 1, entries)
//	P1..P7  : the seven recursive products     (level 2)
//	C12, C21, and partial sums A1..A4          (level 3)
//	C11, C22                                   (level 4, exits)
//
// All entry tasks lie on a critical path and tasks of a level share one
// cost draw, as the paper requires. The quadrant dataset size m is common
// to the whole graph (every task manipulates n/2 × n/2 blocks); a and α
// are drawn per level.
func Strassen(seed int64) *dag.Graph {
	rng := xrand.New(seed)
	g := dag.NewGraph(StrassenTaskCount+2, 40)

	base := drawCost(rng)
	level := func() taskCost {
		c := drawCost(rng)
		c.m = base.m // same quadrant size everywhere
		return c
	}

	add := func(name string, c taskCost) int {
		return g.AddTask(dag.Task{Name: "strassen/" + name, M: c.m, A: c.a, Alpha: c.alpha})
	}

	cS := level()
	S := make([]int, 11) // 1-indexed
	for i := 1; i <= 10; i++ {
		S[i] = add(fmt.Sprintf("S%d", i), cS)
	}
	cP := level()
	P := make([]int, 8)
	for i := 1; i <= 7; i++ {
		P[i] = add(fmt.Sprintf("P%d", i), cP)
	}
	// Operand wiring (classic Strassen formulation):
	// P1 = S1·S2, P2 = S3·B11, P3 = A11·S4, P4 = A22·S5,
	// P5 = S6·B22, P6 = S7·S8, P7 = S9·S10.
	wire := [][2]int{1: {1, 2}, 2: {3, 0}, 3: {4, 0}, 4: {5, 0}, 5: {6, 0}, 6: {7, 8}, 7: {9, 10}}
	for i := 1; i <= 7; i++ {
		for _, s := range wire[i] {
			if s != 0 {
				g.AddEdge(S[s], P[i], g.Tasks[S[s]].Bytes())
			}
		}
	}
	c3 := level()
	edge2 := func(name string, a, b int, c taskCost) int {
		id := add(name, c)
		g.AddEdge(a, id, g.Tasks[a].Bytes())
		g.AddEdge(b, id, g.Tasks[b].Bytes())
		return id
	}
	edge2("C12", P[3], P[5], c3)      // C12 = P3 + P5 (exit)
	edge2("C21", P[2], P[4], c3)      // C21 = P2 + P4 (exit)
	a1 := edge2("A1", P[1], P[4], c3) // A1 = P1 + P4
	a2 := edge2("A2", P[7], P[5], c3) // A2 = P7 − P5
	a3 := edge2("A3", P[1], P[2], c3) // A3 = P1 − P2
	a4 := edge2("A4", P[3], P[6], c3) // A4 = P3 + P6
	c4 := level()
	edge2("C11", a1, a2, c4) // C11 = A1 + A2 (exit)
	edge2("C22", a3, a4, c4) // C22 = A3 + A4 (exit)

	g.Normalize() // 10 entries → virtual entry; C11/C12/C21/C22 → virtual exit
	return g
}
