package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/moldable"
)

func TestFFTTaskCountsMatchPaper(t *testing.T) {
	// §IV-A: k ∈ {2, 4, 8, 16} gives 5, 15, 39, 95 tasks.
	want := map[int]int{2: 5, 4: 15, 8: 39, 16: 95}
	for k, n := range want {
		if got := FFTTaskCount(k); got != n {
			t.Errorf("FFTTaskCount(%d) = %d, want %d", k, got, n)
		}
		g := FFT(k, 42)
		if got := g.RealTaskCount(); got != n {
			t.Errorf("FFT(%d) has %d real tasks, want %d", k, got, n)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("FFT(%d): %v", k, err)
		}
	}
}

func TestFFTStructure(t *testing.T) {
	g := FFT(4, 7)
	// Entry is the tree root (real task); exit is virtual (4 butterflies).
	if g.Tasks[g.Entry()].Virtual {
		t.Error("FFT entry should be the real tree root")
	}
	if !g.Tasks[g.Exit()].Virtual {
		t.Error("FFT exit should be virtual (k butterfly exits)")
	}
	// Every path root→exit has the same length (all paths critical):
	// levels tree 0..2 + bfly 1..2 + virtual exit.
	lvl, n := g.Levels()
	if n != 6 {
		t.Fatalf("FFT(4) has %d levels, want 6", n)
	}
	// All real exits (preds of virtual exit) at the same level.
	for _, p := range g.Preds(g.Exit()) {
		if lvl[p] != 4 {
			t.Errorf("butterfly exit %d at level %d, want 4", p, lvl[p])
		}
	}
}

func TestFFTAllPathsCritical(t *testing.T) {
	g := FFT(8, 3)
	cost := func(tk int) float64 {
		if g.Tasks[tk].Virtual {
			return 0
		}
		return g.Tasks[tk].Ops()
	}
	ec := func(e int) float64 { return 0 }
	_, onCP := g.CriticalPath(cost, ec)
	for i := range g.Tasks {
		if !onCP[i] {
			t.Fatalf("task %d (%s) not on a critical path; FFT levels should have uniform costs",
				i, g.Tasks[i].Name)
		}
	}
}

func TestFFTRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FFT(%d) should panic", k)
				}
			}()
			FFT(k, 1)
		}()
	}
}

func TestStrassenShape(t *testing.T) {
	g := Strassen(11)
	if got := g.RealTaskCount(); got != StrassenTaskCount {
		t.Fatalf("Strassen has %d real tasks, want 25", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 10 entry tasks hang off the virtual entry.
	if got := len(g.Succs(g.Entry())); got != 10 {
		t.Errorf("virtual entry has %d children, want 10 (S tasks)", got)
	}
	// 4 result quadrants feed the virtual exit.
	if got := len(g.Preds(g.Exit())); got != 4 {
		t.Errorf("virtual exit has %d parents, want 4 (C quadrants)", got)
	}
	// Common quadrant size across all real tasks.
	m := -1.0
	for i := range g.Tasks {
		if g.Tasks[i].Virtual {
			continue
		}
		if m < 0 {
			m = g.Tasks[i].M
		} else if g.Tasks[i].M != m {
			t.Fatalf("task %s has m=%g, want common %g", g.Tasks[i].Name, g.Tasks[i].M, m)
		}
	}
}

func TestStrassenLevelsShareCosts(t *testing.T) {
	g := Strassen(5)
	lvl, _ := g.Levels()
	byLevel := map[int][2]float64{}
	for i := range g.Tasks {
		if g.Tasks[i].Virtual {
			continue
		}
		key := lvl[i]
		cur, ok := byLevel[key]
		if !ok {
			byLevel[key] = [2]float64{g.Tasks[i].A, g.Tasks[i].Alpha}
			continue
		}
		if cur[0] != g.Tasks[i].A || cur[1] != g.Tasks[i].Alpha {
			t.Fatalf("level %d has heterogeneous costs", key)
		}
	}
}

func TestRandomExactTaskCount(t *testing.T) {
	for _, n := range []int{25, 50, 100} {
		for _, layered := range []bool{true, false} {
			g := Random(RandomParams{N: n, Width: 0.5, Regularity: 0.8, Density: 0.5, Jump: 2, Layered: layered, Seed: 9})
			if got := g.RealTaskCount(); got != n {
				t.Errorf("Random(n=%d, layered=%v) = %d real tasks", n, layered, got)
			}
			if err := g.Validate(); err != nil {
				t.Errorf("Random(n=%d, layered=%v): %v", n, layered, err)
			}
		}
	}
}

func TestRandomWidthShapesDAG(t *testing.T) {
	narrow := Random(RandomParams{N: 100, Width: 0.2, Regularity: 0.8, Density: 0.5, Layered: true, Seed: 1})
	wide := Random(RandomParams{N: 100, Width: 0.8, Regularity: 0.8, Density: 0.5, Layered: true, Seed: 1})
	if narrow.MaxWidth() >= wide.MaxWidth() {
		t.Errorf("width parameter ineffective: narrow max width %d, wide %d",
			narrow.MaxWidth(), wide.MaxWidth())
	}
}

func TestRandomLayeredSharesCostsPerLevel(t *testing.T) {
	g := Random(RandomParams{N: 50, Width: 0.5, Regularity: 0.2, Density: 0.8, Layered: true, Seed: 3})
	lvl, _ := g.Levels()
	type sig struct{ m, a, alpha float64 }
	byLevel := map[int]sig{}
	for i := range g.Tasks {
		if g.Tasks[i].Virtual {
			continue
		}
		s := sig{g.Tasks[i].M, g.Tasks[i].A, g.Tasks[i].Alpha}
		if prev, ok := byLevel[lvl[i]]; ok && prev != s {
			t.Fatalf("layered DAG level %d has differing costs", lvl[i])
		} else if !ok {
			byLevel[lvl[i]] = s
		}
	}
}

func TestRandomIrregularVariesCostsWithinLevel(t *testing.T) {
	g := Random(RandomParams{N: 100, Width: 0.8, Regularity: 0.8, Density: 0.8, Layered: false, Seed: 3})
	lvl, _ := g.Levels()
	byLevel := map[int][]float64{}
	for i := range g.Tasks {
		if !g.Tasks[i].Virtual {
			byLevel[lvl[i]] = append(byLevel[lvl[i]], g.Tasks[i].M)
		}
	}
	varied := false
	for _, ms := range byLevel {
		for i := 1; i < len(ms); i++ {
			if ms[i] != ms[0] {
				varied = true
			}
		}
	}
	if !varied {
		t.Error("irregular DAG should draw per-task costs")
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	p := RandomParams{N: 50, Width: 0.5, Regularity: 0.2, Density: 0.2, Jump: 4, Seed: 77}
	a := Random(p)
	b := Random(p)
	if a.N() != b.N() || len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed must give identical structure")
	}
	for i := range a.Tasks {
		if a.Tasks[i].M != b.Tasks[i].M || a.Tasks[i].A != b.Tasks[i].A {
			t.Fatal("same seed must give identical costs")
		}
	}
	p2 := p
	p2.Seed = 78
	c := Random(p2)
	same := a.N() == c.N() && len(a.Edges) == len(c.Edges)
	if same {
		for i := range a.Tasks {
			if a.Tasks[i].M != c.Tasks[i].M {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should (overwhelmingly) differ")
	}
}

func TestRandomJumpEdgesSkipLevels(t *testing.T) {
	p := RandomParams{N: 100, Width: 0.5, Regularity: 0.8, Density: 0.8, Jump: 4, Seed: 5}
	g := Random(p)
	lvl, _ := g.Levels()
	// With jump=4 and high density at least one edge should span > 1
	// level in the *constructed* hierarchy. (Levels may compress, so just
	// check an edge with span ≥ 2 exists.)
	found := false
	for _, e := range g.Edges {
		if g.Tasks[e.From].Virtual || g.Tasks[e.To].Virtual {
			continue
		}
		if lvl[e.To]-lvl[e.From] >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("jump=4 produced no level-skipping edges")
	}
}

// Property: generated costs always stay inside the paper's bounds and all
// graphs validate.
func TestPropertyRandomCostBounds(t *testing.T) {
	f := func(seed int64, wIdx, dIdx, rIdx uint8) bool {
		widths := []float64{0.2, 0.5, 0.8}
		vals := []float64{0.2, 0.8}
		p := RandomParams{
			N:          25,
			Width:      widths[int(wIdx)%3],
			Density:    vals[int(dIdx)%2],
			Regularity: vals[int(rIdx)%2],
			Jump:       1 + int(seed%3),
			Seed:       seed,
		}
		g := Random(p)
		if g.Validate() != nil {
			return false
		}
		for i := range g.Tasks {
			tk := &g.Tasks[i]
			if tk.Virtual {
				continue
			}
			if tk.M < moldable.MinElements || tk.M > moldable.MaxElements {
				return false
			}
			if tk.A < moldable.MinOpsFactor || tk.A > moldable.MaxOpsFactor {
				return false
			}
			if tk.Alpha < 0 || tk.Alpha > moldable.MaxAlpha {
				return false
			}
		}
		// Edge bytes match producer datasets.
		for _, e := range g.Edges {
			if g.Tasks[e.From].Virtual || g.Tasks[e.To].Virtual {
				continue
			}
			if e.Bytes != g.Tasks[e.From].Bytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParamsName(t *testing.T) {
	p := RandomParams{N: 25, Width: 0.2, Regularity: 0.8, Density: 0.2, Jump: 2, Seed: 4}
	if p.Name() != "irregular/n=25/w=0.2/r=0.8/d=0.2/j=2/seed=4" {
		t.Errorf("Name() = %q", p.Name())
	}
	p.Layered = true
	if p.Name() != "layered/n=25/w=0.2/r=0.8/d=0.2/j=2/seed=4" {
		t.Errorf("Name() = %q", p.Name())
	}
}

func benchGraph(b *testing.B, fn func() *dag.Graph) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fn()
	}
}

func BenchmarkRandom100(b *testing.B) {
	benchGraph(b, func() *dag.Graph {
		return Random(RandomParams{N: 100, Width: 0.5, Regularity: 0.8, Density: 0.8, Jump: 2, Seed: 1})
	})
}

func BenchmarkFFT16(b *testing.B) {
	benchGraph(b, func() *dag.Graph { return FFT(16, 1) })
}
