// Package gen generates the four application classes of the paper's
// evaluation (§IV-A, Table III): layered random DAGs, irregular random
// DAGs with jump edges, FFT task graphs and Strassen matrix-multiplication
// task graphs.
//
// The random generator follows the structure of the authors' daggen tool
// (reference [12]): three shape parameters in [0, 1] — width (maximum
// parallelism), regularity (uniformity of level sizes) and density (edge
// probability between consecutive levels) — plus, for irregular graphs, a
// jump length making edges skip levels. Layered graphs give every task of
// a level identical costs; irregular graphs draw costs per task.
//
// All sampling is driven by a deterministic seed, so the 557-configuration
// evaluation is exactly reproducible.
package gen

import (
	"fmt"
	"math"

	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/xrand"
)

// RandomParams describes one random DAG configuration (Table III).
type RandomParams struct {
	N          int     // number of computation tasks: 25, 50 or 100
	Width      float64 // 0.2, 0.5 or 0.8
	Regularity float64 // 0.2 or 0.8
	Density    float64 // 0.2 or 0.8
	Jump       int     // 1 (= no jumping), 2 or 4; irregular DAGs only
	Layered    bool    // layered: uniform costs within each level
	Seed       int64
}

// Name returns a stable human-readable identifier, also used to derive
// per-configuration seeds in the experiment harness.
func (p RandomParams) Name() string {
	kind := "irregular"
	if p.Layered {
		kind = "layered"
	}
	return fmt.Sprintf("%s/n=%d/w=%.1f/r=%.1f/d=%.1f/j=%d/seed=%d",
		kind, p.N, p.Width, p.Regularity, p.Density, p.Jump, p.Seed)
}

// taskCost is one draw of the §II-A cost model.
type taskCost struct {
	m, a, alpha float64
}

func drawCost(rng *xrand.Source) taskCost {
	return taskCost{
		m:     rng.Uniform(moldable.MinElements, moldable.MaxElements),
		a:     rng.Uniform(moldable.MinOpsFactor, moldable.MaxOpsFactor),
		alpha: rng.Uniform(0, moldable.MaxAlpha),
	}
}

// Random generates a random mixed-parallel application DAG. The returned
// graph is normalized (single entry/exit via virtual connectors when
// needed) and validated by construction.
func Random(p RandomParams) *dag.Graph {
	if p.N < 1 {
		panic("gen: RandomParams.N must be ≥ 1")
	}
	if p.Jump < 1 {
		p.Jump = 1
	}
	rng := xrand.New(p.Seed)
	g := dag.NewGraph(p.N+2, p.N*3)

	// --- Level structure -------------------------------------------------
	// Mean tasks per level grows with width: a chain for width→0, a
	// fork-join for width→1. daggen-style: mean = width · 2√N, perturbed
	// by ±(1 − regularity).
	mean := p.Width * 2 * math.Sqrt(float64(p.N))
	if mean < 1 {
		mean = 1
	}
	var levels [][]int
	placed := 0
	for placed < p.N {
		spread := (1 - p.Regularity) * mean
		sz := int(math.Round(rng.Uniform(mean-spread, mean+spread)))
		if sz < 1 {
			sz = 1
		}
		if placed+sz > p.N {
			sz = p.N - placed
		}
		lvl := make([]int, 0, sz)
		var shared taskCost
		if p.Layered {
			shared = drawCost(rng)
		}
		for i := 0; i < sz; i++ {
			c := shared
			if !p.Layered {
				c = drawCost(rng)
			}
			id := g.AddTask(dag.Task{
				Name:  fmt.Sprintf("t%d_%d", len(levels), i),
				M:     c.m,
				A:     c.a,
				Alpha: c.alpha,
			})
			lvl = append(lvl, id)
		}
		levels = append(levels, lvl)
		placed += sz
	}

	// --- Edges ------------------------------------------------------------
	// Consecutive levels: each (u, v) pair linked with probability density;
	// every non-entry task gets at least one parent in the previous level.
	for l := 1; l < len(levels); l++ {
		prev := levels[l-1]
		for _, v := range levels[l] {
			parents := 0
			for _, u := range prev {
				if rng.Bool(p.Density) {
					g.AddEdge(u, v, g.Tasks[u].Bytes())
					parents++
				}
			}
			if parents == 0 {
				u := prev[rng.Intn(len(prev))]
				g.AddEdge(u, v, g.Tasks[u].Bytes())
			}
		}
	}
	// Jump edges (irregular graphs, jump > 1): edges from level l to level
	// l+jump, drawn with the same density per destination task.
	if p.Jump > 1 {
		for l := 0; l+p.Jump < len(levels); l++ {
			src := levels[l]
			for _, v := range levels[l+p.Jump] {
				if rng.Bool(p.Density) {
					u := src[rng.Intn(len(src))]
					g.AddEdge(u, v, g.Tasks[u].Bytes())
				}
			}
		}
	}

	g.Normalize()
	return g
}
