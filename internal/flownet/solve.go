package flownet

import (
	"math"
	"sort"
)

// level is one progressive-filling event of the bottleneck log: either a
// saturated link (link >= 0) fixing the next nfix entities of the fix log
// at the fair share value, or a rate-cap freeze (link == -1) fixing one
// entity at its cap. Values are nondecreasing along the log — the merge
// replay and the fill both emit events in firing order — which is what
// lets Solve binary-search the log for the share-condition cut.
type level struct {
	link     int32
	nfix     int32
	fixStart int32 // index of the level's first entry in Net.fixes
	value    float64
}

// fixEntry records one entity frozen by a level, with enough of the
// entity inlined (route, weight at fix time) that replaying or
// recommitting the entry streams through the fix log without touching
// the entity structs. gen detects entity-slot reuse across solves, which
// invalidates the entry; nlinks == longRoute routes the rare
// longer-than-inline route through the entity itself.
type fixEntry struct {
	ent    int32
	gen    uint32
	weight int32
	nlinks int8
	links  [maxAggRoute]int32
	rate   float64
}

const longRoute = int8(-1)

// entryLinks returns the fix entry's route, falling back to the entity
// for routes too long to inline (only valid while the entry is).
func (n *Net) entryLinks(f *fixEntry) []int32 {
	if f.nlinks >= 0 {
		return f.links[:f.nlinks]
	}
	return n.ents[f.ent].links
}

// capKey is one pending-cap heap entry: a queued capped entity keyed by
// (cap, entity id) — the candidate order progressive filling consumes
// rate-cap events in. Entities refixed by link events before their cap
// fires are skipped lazily (their fixedEp stamp marks them stale).
type capKey struct {
	cap float64
	eid int32
}

// ckStride is the checkpoint spacing: the solver snapshots the (rem,
// wcnt) state every ckStride levels, so a later solve can restore the
// state at any cut point with one O(links) copy plus at most ckStride
// levels of delta replay instead of re-applying the whole prefix.
const ckStride = 32

// DefaultScratchThreshold is the default adaptive cutoff below which Solve
// re-solves from scratch without any bottleneck-log bookkeeping: for tiny
// populations (the irregular jump=2 scenario classes keep a handful of
// concurrent flows) progressive filling is cheaper than the merge replay's
// fixed costs — checkpoint restore, level/fix logging, snapshot
// maintenance — and the scratch path additionally touches only the live
// links instead of copying full capacity vectors. SetScratchThreshold
// overrides it per network; every solve path computes the same exact
// max-min rates, so the threshold moves latency only, never a rate.
const DefaultScratchThreshold = 16

const noLevel = math.MaxInt32

// Solve repairs the max-min rate allocation after population changes.
//
// Entities fixed in the still-valid part of the bottleneck level log keep
// their rates untouched; Solve merge-replays the log against the changed
// population (mergeReplay), re-running progressive filling only for the
// entities that actually diverged. See the package documentation for the
// validity rules and the full-solve fallback conditions.
func (n *Net) Solve() {
	if !n.dirty {
		return
	}
	n.dirty = false
	nl := len(n.caps)
	n.rem = resizeF(n.rem, nl)
	n.wcnt = resizeI32(n.wcnt, nl)
	n.share = resizeF(n.share, nl)
	if cap(n.wsum) < nl {
		n.wsum = make([]int32, nl)
	}
	n.wsum = n.wsum[:nl]
	n.epoch++
	n.unfixedList = n.unfixedList[:0]
	n.capHeap = n.capHeap[:0]

	// Small populations re-solve from scratch without any log bookkeeping:
	// no levels, no fix entries, no checkpoints, and only the live links'
	// working state restored. The log is declared untrusted, so the next
	// above-threshold solve rebuilds it with one full pass.
	if n.solvable <= n.scratchThreshold() {
		n.scratchSolves++
		for _, l := range n.chLinks {
			// Keep the checkpoint weight base in sync even though the
			// checkpoints themselves are dropped: the next full solve
			// snapshots against current weights, and later drift folds
			// must not double-count the small-era changes.
			n.lastLinkWeight[l] = n.linkWeight[l]
		}
		n.nCk = 0
		n.logOK = false
		n.levels = n.levels[:0]
		n.fixes = n.fixes[:0]
		for _, l := range n.liveLinks {
			n.rem[l] = n.caps[l]
			n.wcnt[l] = n.linkWeight[l]
		}
		for _, eid := range n.active {
			if e := &n.ents[eid]; !e.exempt {
				n.queuePending(eid, e)
			}
		}
		n.unfixed = len(n.unfixedList)
		n.nolog = true
		n.fill()
		n.nolog = false
		n.finishSolve()
		return
	}

	// Checkpoint weight maintenance: snapshots store wcnt relative to the
	// link weights of the solve that took them. Changed links fold the
	// weight drift into every retained snapshot so restores are plain
	// copies.
	for _, l := range n.chLinks {
		if d := n.linkWeight[l] - n.lastLinkWeight[l]; d != 0 {
			for c := 0; c < n.nCk; c++ {
				n.ckWcnt[c*nl+int(l)] += d
			}
			n.lastLinkWeight[l] = n.linkWeight[l]
		}
	}

	// A burst that changes most of the population (a large redistribution
	// fan-out arriving at once) makes log repair pure overhead: nearly
	// every level would be skipped or reinserted. Solve from scratch and
	// let progressive filling rebuild the log in one pass.
	full := !n.logOK || n.nCk == 0 || 2*len(n.chEnts) >= n.solvable
	n.logOK = true // the walk or the fill may drop it again
	if full {
		// Full solve: no trusted log. Start from the raw capacities and
		// seed checkpoint 0 with the initial state.
		n.fullSolves++
		n.levels = n.levels[:0]
		n.fixes = n.fixes[:0]
		copy(n.rem, n.caps)
		copy(n.wcnt, n.linkWeight)
		n.nCk = 1
		n.snapshotCk(0)
		for _, eid := range n.active {
			if e := &n.ents[eid]; !e.exempt {
				n.queuePending(eid, e)
			}
		}
	} else {
		n.incrSolves++
		// Queue the changed entities before the merge walk: events fired
		// during the walk must see them as pending population.
		for _, eid := range n.chEnts {
			e := &n.ents[eid]
			if e.weight > 0 && !e.exempt {
				n.queuePending(eid, e)
			}
		}
		n.mergeReplay()
	}

	// Whatever the walk could not handle goes to progressive filling:
	// entities queued but not fired yet.
	n.unfixed = 0
	for _, eid := range n.unfixedList {
		if n.fixedEp[eid] != n.epoch {
			n.unfixed++
		}
	}
	n.fill()
	n.finishSolve()
}

// finishSolve clears the change tracking every solve path shares.
func (n *Net) finishSolve() {
	for _, l := range n.chLinks {
		n.linkChanged[l] = false
	}
	n.chLinks = n.chLinks[:0]
	for _, eid := range n.chEnts {
		n.ents[eid].changed = false
	}
	n.chEnts = n.chEnts[:0]
	n.pendingCut = noLevel
}

// FullSolves, IncrementalSolves and ScratchSolves report how often Solve
// re-solved from scratch with logging, repaired the level log, or took the
// small-population scratch path (diagnostics and tests).
func (n *Net) FullSolves() int        { return n.fullSolves }
func (n *Net) IncrementalSolves() int { return n.incrSolves }
func (n *Net) ScratchSolves() int     { return n.scratchSolves }

// CheckpointRestores counts merge-replay solves that rewound the level log
// to a stride checkpoint; OrphanedLevels counts old levels dropped because
// their recorded bottleneck share went stale during the merge walk.
func (n *Net) CheckpointRestores() int { return n.ckRestores }
func (n *Net) OrphanedLevels() int     { return n.orphanLevels }

// queuePending moves a live non-exempt entity into the pending set: it
// must be (re)fixed this solve, by a merge-walk event or by the fill.
// Capped entities also enter the pending-cap heap.
func (n *Net) queuePending(eid int32, e *entity) {
	if n.solveEp[eid] == n.epoch {
		return
	}
	n.solveEp[eid] = n.epoch
	n.unfixedList = append(n.unfixedList, eid)
	if e.cap > 0 {
		n.capHeap = append(n.capHeap, capKey{cap: e.cap, eid: eid})
		n.capSiftUp(len(n.capHeap) - 1)
	}
}

// peekCap returns the earliest pending rate-cap event, lazily discarding
// entities already refixed by link events.
func (n *Net) peekCap() (int32, float64) {
	for len(n.capHeap) > 0 {
		top := n.capHeap[0]
		if n.fixedEp[top.eid] != n.epoch {
			return top.eid, top.cap
		}
		last := len(n.capHeap) - 1
		n.capHeap[0] = n.capHeap[last]
		n.capHeap = n.capHeap[:last]
		if last > 0 {
			n.capSiftDown(0)
		}
	}
	return -1, math.Inf(1)
}

func (n *Net) capLess(a, b capKey) bool {
	if a.cap != b.cap {
		return a.cap < b.cap
	}
	return a.eid < b.eid
}

func (n *Net) capSiftUp(i int) {
	h := n.capHeap
	for i > 0 {
		p := (i - 1) / 2
		if !n.capLess(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (n *Net) capSiftDown(i int) {
	h := n.capHeap
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if r := c + 1; r < len(h) && n.capLess(h[r], h[c]) {
			c = r
		}
		if !n.capLess(h[c], h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// mergeReplay rebuilds the level log against the changed population by
// merging two event streams in value order: the old log's levels and the
// pending events of the dirty population (changed links, changed
// entities, and everything orphaned along the way). It works in three
// zones:
//
//  1. Unchecked (below cutLow): provably untouched by any change — below
//     every changed entity's own fix (pendingCut), below every changed
//     link's bottleneck level, and valued strictly below the level-0
//     fair share of every changed link and the cap of every changed
//     capped entity (shares only grow as filling progresses, so the
//     level-0 share is a lower bound on the pending event). Restored
//     from the nearest checkpoint plus pure delta replay.
//
//  2. Merge walk: the old suffix is moved aside and replayed level by
//     level. While an old level fires before every pending dirty event,
//     it is either recommitted — batched link deltas, entities keep
//     their rates — or, when its bottleneck link went dirty (its
//     recorded share is stale), skipped: its entities join the pending
//     set and their links the dirty set. When a dirty event fires first,
//     a new level is inserted in place — the dirty link's fair share
//     freezing every still-unhandled entity crossing it, or a pending
//     entity's rate cap — and the links it drains become dirty in turn.
//     Dirty links live in a lazy min-heap keyed by (fair share, link
//     id); shares only grow during the replay (every committed level
//     runs at or below the pending minimum), so stale keys are valid
//     lower bounds.
//
//  3. Whatever remains pending after the old log is exhausted is left to
//     progressive filling, which appends to the rebuilt log.
func (n *Net) mergeReplay() {
	nl := len(n.caps)
	capPending := math.Inf(1)
	for _, eid := range n.chEnts {
		e := &n.ents[eid]
		if e.weight == 0 || e.exempt || e.cap <= 0 {
			continue
		}
		if e.cap < capPending {
			capPending = e.cap
		}
	}
	cutHard := len(n.levels)
	if int(n.pendingCut) < cutHard {
		cutHard = int(n.pendingCut)
	}
	minPend0 := capPending
	for _, l := range n.chLinks {
		if w := n.linkWeight[l]; w > 0 {
			if sh := n.caps[l] / float64(w); sh < minPend0 {
				minPend0 = sh
			}
		}
		// A changed link that saturated in the log bounds the unchecked
		// zone at its own bottleneck level: the recorded share is stale
		// there.
		if bn := int(n.bnLevel[l]); bn < cutHard && n.levels[bn].link == l {
			cutHard = bn
		}
	}
	cutLow := sort.Search(len(n.levels), func(i int) bool {
		return !(n.levels[i].value < minPend0)
	})
	if cutLow > cutHard {
		cutLow = cutHard
	}

	// Restore the nearest checkpoint at or below cutLow and replay the
	// remaining unchecked levels as pure (rem, wcnt) deltas. Checkpoints
	// above cutLow reflect the old population's trajectory and are
	// dropped; the walk re-snapshots as the rebuilt log passes the
	// stride boundaries.
	ck := cutLow / ckStride
	if ck >= n.nCk {
		ck = n.nCk - 1
	}
	n.ckRestores++
	ckR, ckW := n.ckRem[ck*nl:(ck+1)*nl], n.ckWcnt[ck*nl:(ck+1)*nl]
	for _, l := range n.liveLinks {
		n.rem[l], n.wcnt[l] = ckR[l], ckW[l]
	}
	for _, l := range n.chLinks {
		n.rem[l], n.wcnt[l] = ckR[l], ckW[l]
	}
	for li := ck * ckStride; li < cutLow; li++ {
		n.replayLevel(li)
	}
	if c := cutLow/ckStride + 1; c < n.nCk {
		n.nCk = c
	}

	// Move the old suffix aside; the walk rebuilds the log in place.
	cutFix := len(n.fixes)
	if cutLow < len(n.levels) {
		cutFix = int(n.levels[cutLow].fixStart)
	}
	n.oldLevels = append(n.oldLevels[:0], n.levels[cutLow:]...)
	n.oldFixes = append(n.oldFixes[:0], n.fixes[cutFix:]...)
	for i := range n.oldLevels {
		n.oldLevels[i].fixStart -= int32(cutFix)
	}
	n.levels = n.levels[:cutLow]
	n.fixes = n.fixes[:cutFix]
	cutLow32 := int32(cutLow)

	// Dirty-link heap over the changed links with live weight.
	n.lnHeap = n.lnHeap[:0]
	for _, l := range n.chLinks {
		if n.wcnt[l] > 0 {
			n.lnHeap = append(n.lnHeap, lnKey{share: n.rem[l] / float64(n.wcnt[l]), link: l})
		}
	}
	for i := len(n.lnHeap)/2 - 1; i >= 0; i-- {
		n.lnSiftDown(i)
	}

	for oi := 0; oi < len(n.oldLevels); {
		if i := len(n.levels); i%ckStride == 0 && i/ckStride >= n.nCk {
			n.snapshotCk(i / ckStride)
			n.nCk = i/ckStride + 1
		}
		// Earliest pending link event of the dirty population.
		dShare := math.Inf(1)
		dLink := int32(-1)
		for len(n.lnHeap) > 0 {
			top := n.lnHeap[0]
			if n.wcnt[top.link] == 0 {
				last := len(n.lnHeap) - 1
				n.lnHeap[0] = n.lnHeap[last]
				n.lnHeap = n.lnHeap[:last]
				if last > 0 {
					n.lnSiftDown(0)
				}
				continue
			}
			if cur := n.rem[top.link] / float64(n.wcnt[top.link]); cur != top.share {
				n.lnHeap[0].share = cur
				n.lnSiftDown(0)
				continue
			}
			if !math.IsInf(top.share, 1) {
				dShare, dLink = top.share, top.link
			}
			break
		}
		// Earliest pending rate-cap event.
		capEnt, capVal := n.peekCap()
		minPend := dShare
		if capVal < minPend {
			minPend = capVal
		}
		lv := &n.oldLevels[oi]
		if lv.value < minPend {
			if lv.link >= 0 && n.linkChanged[lv.link] {
				n.skipOldLevel(lv)
			} else {
				n.commitOldLevel(lv)
			}
			oi++
			continue
		}
		// A dirty event fires first: insert it as a new level.
		if capEnt >= 0 && capVal < dShare {
			fixStart := int32(len(n.fixes))
			n.fixMeta(capEnt, capVal)
			n.dirtyFlush(capVal)
			n.levels = append(n.levels, level{link: -1, nfix: 1, fixStart: fixStart, value: capVal})
			continue
		}
		share := dShare
		if share < 0 {
			share = 0
		}
		fixStart := int32(len(n.fixes))
		nfix := int32(0)
		for _, ref := range n.linkEnts[dLink] {
			// Eligible: not yet handled this walk and not fixed in the
			// untouched prefix — prefix entities keep their rates, and
			// their consumption already left wcnt, so fixing them again
			// would corrupt both.
			if n.fixedLevel[ref.ent] >= cutLow32 &&
				n.walkEp[ref.ent] != n.epoch && n.fixedEp[ref.ent] != n.epoch {
				n.fixMeta(ref.ent, share)
				nfix++
			}
		}
		if nfix == 0 {
			// Defensive: live weight with no eligible entity would loop
			// forever. Drop the entry and force a full solve next time.
			last := len(n.lnHeap) - 1
			n.lnHeap[0] = n.lnHeap[last]
			n.lnHeap = n.lnHeap[:last]
			if last > 0 {
				n.lnSiftDown(0)
			}
			n.logOK = false
			continue
		}
		n.dirtyFlush(share)
		n.bnLevel[dLink] = int32(len(n.levels))
		n.levels = append(n.levels, level{link: dLink, nfix: nfix, fixStart: fixStart, value: share})
	}
}

// skipOldLevel drops a level whose recorded bottleneck share went stale:
// its surviving entities join the pending set (their rate must be
// re-derived) and their links the dirty set.
func (n *Net) skipOldLevel(lv *level) {
	n.orphanLevels++
	end := int(lv.fixStart) + int(lv.nfix)
	for fi := int(lv.fixStart); fi < end; fi++ {
		f := &n.oldFixes[fi]
		if n.genByID[f.ent] != f.gen || n.fixedEp[f.ent] == n.epoch {
			continue
		}
		n.queuePending(f.ent, &n.ents[f.ent])
		for _, l := range n.entryLinks(f) {
			if !n.linkChanged[l] {
				n.linkChanged[l] = true
				n.chLinks = append(n.chLinks, l)
				if n.wcnt[l] > 0 {
					n.lnHeap = append(n.lnHeap, lnKey{share: n.rem[l] / float64(n.wcnt[l]), link: l})
					n.lnSiftUp(len(n.lnHeap) - 1)
				}
			}
		}
	}
}

// commitOldLevel re-appends a level whose bottleneck is still clean.
// Entries that diverged (completed flows, slot reuse, pending or already
// refixed entities — all of which also dirtied their links) are dropped;
// the survivors keep their rates, and only their link consumption is
// flushed. Clean links receive exactly the delta of the old trajectory,
// so their fair-share evolution stays bit-identical.
func (n *Net) commitOldLevel(lv *level) {
	end := int(lv.fixStart) + int(lv.nfix)
	fixStart := int32(len(n.fixes))
	nfix := int32(0)
	idx := int32(len(n.levels))
	for fi := int(lv.fixStart); fi < end; fi++ {
		f := &n.oldFixes[fi]
		// Divergent entries drop out: dead or reused slots (gen), entities
		// refixed by an inserted event (fixedEp), and pending entities
		// (solveEp — changed or orphaned; all of these also dirtied their
		// links, so clean links still see the old trajectory's delta).
		if n.genByID[f.ent] != f.gen ||
			n.fixedEp[f.ent] == n.epoch || n.solveEp[f.ent] == n.epoch {
			continue
		}
		n.walkEp[f.ent] = n.epoch
		n.fixedLevel[f.ent] = idx
		n.fixes = append(n.fixes, *f)
		for _, l := range n.entryLinks(f) {
			if n.wsum[l] == 0 {
				n.touchedLn = append(n.touchedLn, l)
			}
			n.wsum[l] += f.weight
		}
		nfix++
	}
	if nfix == 0 {
		return
	}
	n.flushLevel(lv.value, false)
	if lv.link >= 0 {
		n.bnLevel[lv.link] = int32(len(n.levels))
	}
	n.levels = append(n.levels, level{link: lv.link, nfix: nfix, fixStart: fixStart, value: lv.value})
}

// dirtyFlush marks every link touched by an inserted level dirty (its
// trajectory now diverges from the old log) before flushing the level's
// consumption. Newly dirty links enter the heap keyed with their
// pre-flush share — a valid lower bound, since shares only grow.
func (n *Net) dirtyFlush(r float64) {
	for _, l := range n.touchedLn {
		if !n.linkChanged[l] {
			n.linkChanged[l] = true
			n.chLinks = append(n.chLinks, l)
			if n.wcnt[l] > 0 {
				n.lnHeap = append(n.lnHeap, lnKey{share: n.rem[l] / float64(n.wcnt[l]), link: l})
				n.lnSiftUp(len(n.lnHeap) - 1)
			}
		}
	}
	n.flushLevel(r, false)
}

// replayLevel applies one unchecked level's fixes to rem and wcnt only —
// rates of its entities are already correct and stay untouched. It
// accumulates the level's per-link weight exactly like the fill or commit
// that wrote the level (same entry order, same flush order, same single
// multiply-subtract per distinct link), so the replay reproduces the
// solver state bit for bit (entities below the cut are unchanged, hence
// current weights equal fix-time weights).
func (n *Net) replayLevel(li int) {
	lv := n.levels[li]
	end := int(lv.fixStart) + int(lv.nfix)
	for fi := int(lv.fixStart); fi < end; fi++ {
		f := &n.fixes[fi]
		for _, l := range n.entryLinks(f) {
			if n.wsum[l] == 0 {
				n.touchedLn = append(n.touchedLn, l)
			}
			n.wsum[l] += f.weight
		}
	}
	n.flushLevel(lv.value, false)
}

// flushLevel applies one level's accumulated per-link weight at rate r:
// every distinct link gets a single multiply-subtract and weight-count
// decrement regardless of how many entities the level fixed (on the
// hierarchical presets a saturating node link drains its cabinet uplink
// once, not once per receiver). With updateShares set the cached fair
// shares of the touched links are refreshed for the fill's link heap.
func (n *Net) flushLevel(r float64, updateShares bool) {
	for _, l := range n.touchedLn {
		w := n.wsum[l]
		n.wsum[l] = 0
		n.rem[l] -= float64(w) * r
		if n.rem[l] < 0 {
			n.rem[l] = 0
		}
		if n.wcnt[l] -= w; n.wcnt[l] > 0 && updateShares {
			n.share[l] = n.rem[l] / float64(n.wcnt[l])
		}
	}
	n.touchedLn = n.touchedLn[:0]
}

// fixMeta freezes one entity of the level being built: rate, epoch stamps
// and the fix-log entry, with the link consumption deferred to flushLevel.
// In nolog (small-population) mode the fix log is skipped and the entity is
// marked as absent from it.
func (n *Net) fixMeta(eid int32, rate float64) {
	e := &n.ents[eid]
	e.rate = rate
	n.rates[e.pos] = rate
	n.fixedEp[eid] = n.epoch
	n.bumpDeadline(eid, e)
	if n.nolog {
		n.fixedLevel[eid] = noLevel
	} else {
		n.fixedLevel[eid] = int32(len(n.levels))
		f := fixEntry{ent: eid, gen: e.gen, weight: e.weight, rate: rate}
		if len(e.links) <= maxAggRoute {
			f.nlinks = int8(copy(f.links[:], e.links))
		} else {
			f.nlinks = longRoute
		}
		n.fixes = append(n.fixes, f)
	}
	for _, l := range e.links {
		if n.wsum[l] == 0 {
			n.touchedLn = append(n.touchedLn, l)
		}
		n.wsum[l] += e.weight
	}
	n.unfixed--
}

// snapshotCk stores the current (rem, wcnt) as checkpoint c (the state
// before level c*ckStride).
func (n *Net) snapshotCk(c int) {
	nl := len(n.caps)
	need := (c + 1) * nl
	if cap(n.ckRem) < need {
		grown := make([]float64, need, 2*need)
		copy(grown, n.ckRem)
		n.ckRem = grown
		grownW := make([]int32, need, 2*need)
		copy(grownW, n.ckWcnt)
		n.ckWcnt = grownW
	}
	n.ckRem = n.ckRem[:need]
	n.ckWcnt = n.ckWcnt[:need]
	// Links without live weight hold stale scratch (the sparse restore
	// never rewrites them); their canonical state is the full capacity:
	// a link with no live entities has no fixes in the log, hence no
	// prefix consumption (every dead entity's fix entry has been cut or
	// dropped by the walk before a snapshot can see it).
	ckR, ckW := n.ckRem[c*nl:need], n.ckWcnt[c*nl:need]
	copy(ckR, n.caps)
	for i := range ckW {
		ckW[i] = 0
	}
	for _, l := range n.liveLinks {
		ckR[l], ckW[l] = n.rem[l], n.wcnt[l]
	}
}

// applyFix freezes an entity's rate and removes its consumption from the
// working state; only the defensive no-progress path uses it (the level
// fills go through fixMeta + flushLevel).
func (n *Net) applyFix(eid int32, rate float64) {
	e := &n.ents[eid]
	e.rate = rate
	n.rates[e.pos] = rate
	n.bumpDeadline(eid, e)
	n.fixedEp[eid] = n.epoch
	w := float64(e.weight)
	for _, l := range e.links {
		n.rem[l] -= w * rate
		if n.rem[l] < 0 {
			n.rem[l] = 0
		}
		n.wcnt[l] -= e.weight
	}
	n.unfixed--
}

// fill runs weighted progressive filling over the unfixed population,
// appending the levels it discovers to the log and checkpointing the
// state every ckStride levels. It mirrors the reference solver in
// internal/sim: repeatedly take the smallest pending event — the minimum
// fair share remaining/weight over active links, or the smallest unfixed
// rate cap when lower — freeze the constrained entities, remove their
// consumption (batched per level through flushLevel), repeat. Stragglers
// that no event can fix (infinite-capacity links yield +Inf shares that
// never win the strict minimum test) are frozen at their caps and then
// deterministically at 0, invalidating the log.
func (n *Net) fill() {
	if n.unfixed == 0 {
		return
	}
	// The bottleneck candidate comes from a lazy min-heap of the active
	// links keyed by (cached fair share, link id). Fair shares only grow
	// while filling progresses (every fix runs at or below the current
	// minimum), so a stale heap key is a valid lower bound: the top is
	// re-keyed in place when its cached share moved, and discarded when
	// its link saturated. Ties break on the link id, reproducing the
	// reference solver's ascending-id scan exactly.
	n.lnHeap = n.lnHeap[:0]
	for _, l := range n.liveLinks {
		if n.wcnt[l] > 0 {
			sh := n.rem[l] / float64(n.wcnt[l])
			n.share[l] = sh
			n.lnHeap = append(n.lnHeap, lnKey{share: sh, link: l})
		}
	}
	for i := len(n.lnHeap)/2 - 1; i >= 0; i-- {
		n.lnSiftDown(i)
	}
	solveEp, fixedEp, epoch := n.solveEp, n.fixedEp, n.epoch
	wcnt, shares := n.wcnt, n.share

	for n.unfixed > 0 {
		if i := len(n.levels); !n.nolog && i%ckStride == 0 && i/ckStride >= n.nCk {
			n.snapshotCk(i / ckStride)
			n.nCk = i/ckStride + 1
		}
		// Candidate 1: smallest fair share among active links.
		share := math.Inf(1)
		bottleneck := int32(-1)
		for len(n.lnHeap) > 0 {
			top := n.lnHeap[0]
			if wcnt[top.link] == 0 {
				last := len(n.lnHeap) - 1
				n.lnHeap[0] = n.lnHeap[last]
				n.lnHeap = n.lnHeap[:last]
				if last > 0 {
					n.lnSiftDown(0)
				}
				continue
			}
			if cur := shares[top.link]; cur != top.share {
				n.lnHeap[0].share = cur
				n.lnSiftDown(0)
				continue
			}
			// Links with infinite capacity never win the reference
			// solver's strict minimum test; leaving bottleneck unset
			// routes control to the defensive path below.
			if !math.IsInf(top.share, 1) {
				share, bottleneck = top.share, top.link
			}
			break
		}
		// Candidate 2: smallest cap among pending capped entities.
		capEnt, capVal := n.peekCap()
		if capEnt >= 0 && !(capVal < share) {
			capEnt = -1
		}
		switch {
		case capEnt >= 0:
			fixStart := int32(len(n.fixes))
			n.fixMeta(capEnt, capVal)
			n.flushLevel(capVal, true)
			if !n.nolog {
				n.levels = append(n.levels, level{link: -1, nfix: 1, fixStart: fixStart, value: capVal})
			}
		case bottleneck >= 0:
			if share < 0 {
				share = 0
			}
			fixStart := int32(len(n.fixes))
			nfix := int32(0)
			for _, ref := range n.linkEnts[bottleneck] {
				if solveEp[ref.ent] == epoch && fixedEp[ref.ent] != epoch {
					n.fixMeta(ref.ent, share)
					nfix++
				}
			}
			n.flushLevel(share, true)
			if !n.nolog {
				n.bnLevel[bottleneck] = int32(len(n.levels))
				n.levels = append(n.levels, level{link: bottleneck, nfix: nfix, fixStart: fixStart, value: share})
			}
		default:
			// Defensive no-progress path (mirrors the reference solver):
			// freeze the remaining capped entities at their caps, anything
			// left at 0, and drop the log — these events are not ordered
			// levels a later replay could trust.
			for {
				eid, c := n.peekCap()
				if eid < 0 {
					break
				}
				n.applyFix(eid, c)
			}
			if n.unfixed > 0 {
				for _, eid := range n.unfixedList {
					if fixedEp[eid] != epoch {
						n.applyFix(eid, 0)
					}
				}
			}
			n.logOK = false
			return
		}
	}
}

// lnKey is one link-heap entry: the link's fair share at key time (a
// lower bound on its current share) with the link id as tie-break.
type lnKey struct {
	share float64
	link  int32
}

func (n *Net) lnLess(a, b lnKey) bool {
	if a.share != b.share {
		return a.share < b.share
	}
	return a.link < b.link
}

func (n *Net) lnSiftDown(i int) {
	h := n.lnHeap
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if r := c + 1; r < len(h) && n.lnLess(h[r], h[c]) {
			c = r
		}
		if !n.lnLess(h[c], h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

func (n *Net) lnSiftUp(i int) {
	h := n.lnHeap
	for i > 0 {
		p := (i - 1) / 2
		if !n.lnLess(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
