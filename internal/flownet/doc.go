// Package flownet is a stateful fluid-network engine: a fixed set of
// capacitated links and a dynamic population of flows whose transfer rates
// follow max-min fairness (progressive filling), maintained incrementally
// as flows start and complete.
//
// It replaces the from-scratch rate re-solve that internal/sim performed on
// every population change — the pipeline's dominant cost when replaying
// large redistribution fan-outs on the 512/1024-node presets — with three
// cooperating mechanisms:
//
// # Route aggregation (super-flows)
//
// Flows with an identical route and identical rate cap are
// indistinguishable to max-min fairness: progressive filling always
// freezes them together, at the same rate. Start therefore folds such
// flows into one weighted entity (a "super-flow") holding a member count.
// The solver sees one entity consuming weight×rate on each of its links;
// Rate fans the shared per-member rate back out on read. On the
// hierarchical cluster presets a route is fully determined by the
// (source node, destination node) pair — two links inside a cabinet, four
// links (node up, cabinet up, cabinet down, node down) across cabinets —
// so concurrent redistributions that revisit a node pair collapse into one
// solver entity, and the per-(cabinet, cabinet) uplink traffic of a
// fan-out is carried by a bounded set of weighted entities rather than one
// entity per flow.
//
// # Incremental bottleneck repair (merge replay)
//
// Solve keeps the bottleneck level log of the previous solution: the
// ordered sequence of progressive-filling events (a saturated link fixing
// its entities at the fair share, or an entity freezing at its rate cap),
// with nondecreasing rate values, the per-level entity lists (the fix
// log, with each entity's route and weight inlined so replays stream
// through it), and (rem, wcnt) state checkpoints every ckStride levels.
// A population change perturbs only the events that the changed entities
// and links can influence; everything else keeps its rates — literally:
// entities fixed by still-valid levels are not touched at all. Solve
// proceeds in three zones (see mergeReplay):
//
//   - An unchecked prefix, cut by binary search below every changed
//     entity's own fix, every changed link's bottleneck level, and the
//     first level value reaching the changed links' level-0 fair shares
//     (shares only grow as filling progresses, so the level-0 share
//     lower-bounds the pending event). Its state is restored from the
//     nearest checkpoint plus a pure streamed delta replay — no per-entity
//     work.
//
//   - A merge walk over the rest of the log: old levels re-commit as long
//     as they fire before every pending dirty event, as one batched
//     multiply-subtract per distinct touched link. A level whose
//     bottleneck link went dirty is dropped and its entities join the
//     pending set; when a dirty event fires first — a dirty link's fair
//     share, tracked in a lazy min-heap whose stale keys are valid lower
//     bounds, or a pending entity's rate cap from the pending-cap heap —
//     a fresh level is inserted in place and the links it drains become
//     dirty in turn. Divergence thus cascades exactly as far as it
//     physically reaches, instead of invalidating the whole tail.
//
//   - Plain progressive filling for whatever is still pending once the
//     old log is exhausted, appending to the rebuilt log.
//
// Solve falls back to a full solve when no trusted log exists (first
// solve, or after a defensive freeze of stalled entities).
//
// # Lazy fluid draining and the deadline index
//
// Members of an entity always share one rate, so their completion order
// within the entity is fixed at arrival time: each member records its
// virtual finish volume (its transfer volume plus the entity's cumulative
// drained volume at join), and the entity keeps a min-heap of members by
// that static key. Advancing virtual time adds rate·dt to one per-entity
// accumulator instead of decrementing every member. Completions are
// indexed by a lazy deadline heap: an entity's next-completion time stays
// exact while its rate and head member are unchanged (draining is
// linear), so only entities touched by a solve or a completion re-enter
// the heap, and finding work is O(log entities) per event rather than a
// scan of the whole population. The heap only schedules which entities
// are examined — the drained-state test against the eagerly accumulated
// volumes stays authoritative.
//
// The solved rates are exactly the max-min fair point of the underlying
// per-flow population (the aggregation is lossless and the repair exact up
// to floating-point association); internal/sim keeps its from-scratch
// MaxMin solver as the reference oracle, and the randomized tests in this
// package assert agreement within 1e-9 against it across add/remove
// sequences on the paper's and the production-scale topologies.
//
// A Net is not safe for concurrent use; simulations are single-threaded
// and the experiment harness parallelizes across independent engines.
package flownet
