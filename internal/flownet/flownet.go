package flownet

import "math"

// maxAggRoute is the longest route eligible for super-flow aggregation.
// Platform routes have two links (intra-cabinet) or four (cross-cabinet);
// longer routes are legal but each gets a private entity.
const maxAggRoute = 4

// routeKey identifies an aggregation class: an exact link sequence plus
// the per-flow rate cap.
type routeKey struct {
	links [maxAggRoute]int32
	n     int8
	cap   float64
}

// linkRef is one occurrence of an entity on a link's incidence list. occ
// indexes the entity's links slice, so routes visiting a link twice stay
// consistent under swap-removal.
type linkRef struct {
	ent int32
	occ int32
}

// member is one live flow inside an entity. finish is the member's virtual
// finish volume: its transfer volume plus the entity's drained accumulator
// at join time. remaining(t) = finish − entity drained(t), so the key is
// static and orders completions within the entity for the member's whole
// life.
type member struct {
	ent    int32
	seq    int64
	finish float64
}

// entity is a weighted super-flow: weight members sharing one route, one
// rate cap and therefore one max-min rate. The drained accumulator lives
// in Net.drained[pos] (dense by active position, for the per-event scans).
type entity struct {
	links   []int32 // route (dense link ids, repeats allowed)
	linkPos []int32 // position of occurrence i in Net.linkEnts[links[i]]
	cap     float64 // per-member rate cap (<= 0: none)
	weight  int32   // live member count
	rate    float64 // current per-member rate
	heap    []int32 // member ids, min-heap by (finish, seq)
	gen     uint32  // bumped on destroy; stale log entries detect reuse
	pos     int32   // index in Net.active
	agg     bool    // registered in byRoute
	exempt  bool    // no links: rate is cap (or +Inf), never solved

	changed bool // population changed since the last solve
}

// Net maintains the flow population, the rate allocation and the fluid
// volumes. The zero value is not usable; create Nets with New.
type Net struct {
	caps       []float64
	linkWeight []int32 // Σ weight of live entities per link occurrence
	linkEnts   [][]linkRef

	// Links with live weight, swap-maintained: every per-solve pass over
	// link state (checkpoint restore, fill's heap build) walks this list
	// instead of the full link vector, so sparse populations pay for the
	// links they use, not for the cluster size.
	liveLinks []int32
	livePos   []int32 // by link: index in liveLinks, -1 when inactive

	ents    []entity
	entFree []int32
	byRoute map[routeKey]int32

	members  []member
	memFree  []int32
	nMembers int

	active   []int32 // live entity ids (swap-removed; order deterministic)
	solvable int     // live non-exempt entities

	// Dense per-entity state, parallel to active (swap-removed in sync).
	drained []float64 // bytes drained per member since entity (re)creation
	rates   []float64 // mirror of entity.rate
	headFin []float64 // finish volume of the entity's earliest member (+Inf when empty)

	// Completion-deadline index: a lazy min-heap of (absolute deadline,
	// entity, stamp). A deadline stays exact while the entity's rate and
	// head member are unchanged (draining is linear), so only entities
	// touched by a solve or a completion re-enter the heap; stale entries
	// are recognized by their stamp and dropped lazily. The exact eager
	// drained-state test stays authoritative — the heap only selects
	// which entities PopDrained examines.
	dlHeap  []dlKey
	dlStamp []uint32 // by entity id: bumped on every deadline-relevant change

	seq   int64
	dirty bool
	now   float64 // internal clock: the sum of Advance dts

	// Change tracking since the last Solve.
	chLinks     []int32
	linkChanged []bool
	chEnts      []int32
	pendingCut  int32 // min level index invalidated by entity changes

	// Solver state and scratch (solve.go). The per-entity epoch stamps
	// live in dense by-id arrays (not the entity structs): the fill loop
	// walks capList and link incidence lists checking them, and the
	// compact layout keeps those scattered reads in cache.
	genByID        []uint32 // by entity id: mirror of entity.gen for the log streams
	fixedLevel     []int32  // by entity id: index of the entity's fix in the level log
	solveEp        []uint32 // by entity id: == epoch when in the unfixed set
	fixedEp        []uint32 // by entity id: == epoch when fixed this solve
	walkEp         []uint32 // by entity id: == epoch when recommitted by the merge replay
	epoch          uint32
	unfixed        int
	unfixedList    []int32
	rem            []float64
	wcnt           []int32
	share          []float64 // cached rem/wcnt per link, maintained by flushLevel
	wsum           []int32   // per-link weight accumulator of the level being applied
	touchedLn      []int32   // links with nonzero wsum, in first-touch order
	lnHeap         []lnKey   // lazy min-heap of active links by (share, id)
	lastLinkWeight []int32   // linkWeight as of the last Solve (checkpoint base)
	bnLevel        []int32   // level index where the link is the bottleneck
	ckRem          []float64
	ckWcnt         []int32
	oldLevels      []level    // merge-replay scratch: the old log suffix
	oldFixes       []fixEntry // merge-replay scratch: its fix entries
	nCk            int
	capHeap        []capKey // pending capped entities by (cap, id), lazily pruned
	levels         []level
	fixes          []fixEntry
	logOK          bool

	popped []int32

	// nolog suppresses the level/fix/checkpoint bookkeeping for the
	// duration of one small-population scratch solve (see solve.go).
	nolog bool

	fullSolves, incrSolves, scratchSolves int
	ckRestores, orphanLevels              int

	// smallPop, when positive, overrides DefaultScratchThreshold (see
	// SetScratchThreshold).
	smallPop int
}

// SetScratchThreshold sets the population size at or below which Solve
// takes the from-scratch progressive-filling path instead of the
// incremental merge replay. v ≤ 0 restores DefaultScratchThreshold. All
// solve regimes compute the same exact max-min rates — the threshold is a
// latency knob, and moving it can never change a simulated makespan.
func (n *Net) SetScratchThreshold(v int) { n.smallPop = v }

// scratchThreshold returns the active scratch-solve cutoff.
func (n *Net) scratchThreshold() int {
	if n.smallPop > 0 {
		return n.smallPop
	}
	return DefaultScratchThreshold
}

// New creates a network over links with the given capacities (bytes/s).
func New(linkCaps []float64) *Net {
	n := &Net{
		caps:           append([]float64(nil), linkCaps...),
		linkWeight:     make([]int32, len(linkCaps)),
		lastLinkWeight: make([]int32, len(linkCaps)),
		bnLevel:        make([]int32, len(linkCaps)),
		livePos:        make([]int32, len(linkCaps)),
		linkEnts:       make([][]linkRef, len(linkCaps)),
		linkChanged:    make([]bool, len(linkCaps)),
		byRoute:        make(map[routeKey]int32),
		pendingCut:     noLevel,
	}
	for i := range n.bnLevel {
		n.bnLevel[i] = noLevel
		n.livePos[i] = -1
	}
	return n
}

// Flows returns the number of live flows (members, not entities).
func (n *Net) Flows() int { return n.nMembers }

// Entities returns the number of live solver entities (super-flows); the
// aggregation ratio Flows()/Entities() is what the route collapse buys.
func (n *Net) Entities() int { return len(n.active) }

// Dirty reports whether the population changed since the last Solve.
func (n *Net) Dirty() bool { return n.dirty }

// Start adds a flow of volume bytes over the given route. rateCap, if
// positive, bounds the flow's rate (the empirical bandwidth β'). A flow
// with an empty route runs at rateCap (or unboundedly, +Inf, without one).
// The returned id is valid until the flow completes or is removed.
func (n *Net) Start(links []int, rateCap, volume float64) int {
	eid := n.entityFor(links, rateCap)
	mid := n.allocMember()
	e := &n.ents[eid]
	m := &n.members[mid]
	m.ent = eid
	m.seq = n.seq
	n.seq++
	m.finish = volume + n.drained[e.pos]
	n.heapPush(e, mid)
	e.weight++
	for _, l := range e.links {
		if n.linkWeight[l]++; n.linkWeight[l] == 1 && n.livePos[l] < 0 {
			n.livePos[l] = int32(len(n.liveLinks))
			n.liveLinks = append(n.liveLinks, l)
		}
	}
	n.nMembers++
	n.touchEntity(eid)
	n.bumpDeadline(eid, e)
	n.dirty = true
	return int(mid)
}

// Remove deletes a live flow before completion.
func (n *Net) Remove(id int) {
	mid := int32(id)
	eid := n.members[mid].ent
	e := &n.ents[eid]
	for i, h := range e.heap {
		if h == mid {
			n.heapDelete(e, i)
			break
		}
	}
	n.dropMembers(eid, 1)
	if e.weight > 0 {
		n.bumpDeadline(eid, e)
	}
	n.freeMember(mid)
}

// Rate returns the flow's current per-member rate (valid after Solve).
func (n *Net) Rate(id int) float64 { return n.ents[n.members[id].ent].rate }

// Remaining returns the flow's residual volume in bytes.
func (n *Net) Remaining(id int) float64 {
	m := &n.members[id]
	e := &n.ents[m.ent]
	if int(e.pos) < len(n.active) && n.active[e.pos] == m.ent {
		return m.finish - n.drained[e.pos]
	}
	return m.finish // entity already destroyed: nothing drains anymore
}

// Advance drains every flow by rate·dt bytes of virtual time dt and moves
// the network's clock, which the deadline index is anchored to: the now
// arguments of NextDeadline and PopDrained must stay consistent with the
// accumulated Advance time.
func (n *Net) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	n.now += dt
	rates, drained := n.rates, n.drained
	for i := range rates {
		if rates[i] > 0 {
			drained[i] += rates[i] * dt
		}
	}
}

// bumpDeadline invalidates an entity's deadline entry after a rate, head
// or membership change, inserting a fresh one while the entity drains.
func (n *Net) bumpDeadline(eid int32, e *entity) {
	n.dlStamp[eid]++
	if e.weight == 0 || e.rate <= 0 {
		return
	}
	hf := n.headFin[e.pos]
	if math.IsInf(hf, 1) {
		return
	}
	d := n.now + (hf-n.drained[e.pos])/e.rate
	n.dlPush(dlKey{t: d, eid: eid, stamp: n.dlStamp[eid]})
}

// NextDeadline returns the absolute time of the earliest flow completion
// after now, or +Inf when no flow is draining. Flows already due at now
// clamp the result to now — complete them with PopDrained; now must be
// consistent with the accumulated Advance time.
func (n *Net) NextDeadline(now float64) float64 {
	for len(n.dlHeap) > 0 {
		top := n.dlHeap[0]
		if n.dlStamp[top.eid] != top.stamp {
			n.dlPop()
			continue
		}
		if top.t < now {
			return now
		}
		return top.t
	}
	return math.Inf(1)
}

// PopDrained completes every flow that is drained at virtual time now: its
// residual volume is at most eps, or so small that draining it cannot
// advance the clock by one ULP (now + remaining/rate == now). Completed
// flows are yielded in arrival order and their ids recycled; yield must
// not call back into the Net. It reports whether any flow completed.
func (n *Net) PopDrained(now, eps float64, yield func(id int)) bool {
	n.popped = n.popped[:0]
	for len(n.dlHeap) > 0 {
		top := n.dlHeap[0]
		if n.dlStamp[top.eid] != top.stamp {
			n.dlPop()
			continue
		}
		if top.t > now {
			break
		}
		eid := top.eid
		e := &n.ents[eid]
		pos := int(e.pos)
		// Exact drained-state test on the candidate; the heap deadline is
		// only a hint and may run an ULP early.
		rem := n.headFin[pos] - n.drained[pos]
		if !(rem <= eps || (e.rate > 0 && now+rem/e.rate <= now)) {
			n.dlPop()
			n.dlPush(dlKey{t: now + rem/e.rate, eid: eid, stamp: top.stamp})
			continue
		}
		popCount := int32(0)
		for len(e.heap) > 0 {
			head := e.heap[0]
			hrem := n.members[head].finish - n.drained[pos]
			if hrem <= eps || (e.rate > 0 && now+hrem/e.rate <= now) {
				n.heapPop(e)
				n.popped = append(n.popped, head)
				popCount++
				continue
			}
			break
		}
		if popCount == 0 {
			// The head moved without completing (defensive).
			n.dlPop()
			continue
		}
		n.dropMembers(eid, popCount)
		if e.weight > 0 {
			n.bumpDeadline(eid, e)
		}
	}
	if len(n.popped) == 0 {
		return false
	}
	// Arrival order across entities (per-entity pops are already ordered).
	// Insertion sort: completion batches are small, and this stays
	// allocation-free on the per-event path.
	for i := 1; i < len(n.popped); i++ {
		for j := i; j > 0 && n.members[n.popped[j]].seq < n.members[n.popped[j-1]].seq; j-- {
			n.popped[j], n.popped[j-1] = n.popped[j-1], n.popped[j]
		}
	}
	for _, mid := range n.popped {
		yield(int(mid))
		n.freeMember(mid)
	}
	return true
}

// dropMembers unregisters k already-unheaped members from entity eid,
// destroying the entity when it empties. Member slots are freed by the
// caller (PopDrained defers until after the yields).
func (n *Net) dropMembers(eid, k int32) {
	e := &n.ents[eid]
	e.weight -= k
	for _, l := range e.links {
		if n.linkWeight[l] -= k; n.linkWeight[l] == 0 {
			if p := n.livePos[l]; p >= 0 {
				last := int32(len(n.liveLinks) - 1)
				moved := n.liveLinks[last]
				n.liveLinks[p] = moved
				n.livePos[moved] = p
				n.liveLinks = n.liveLinks[:last]
				n.livePos[l] = -1
			}
		}
	}
	n.nMembers -= int(k)
	n.touchEntity(eid)
	n.dirty = true
	if e.weight == 0 {
		n.destroyEntity(eid)
	}
}

// touchEntity marks the entity and its links changed for the incremental
// solver, invalidating the level log from the entity's own fix onward.
func (n *Net) touchEntity(eid int32) {
	e := &n.ents[eid]
	if !e.changed {
		e.changed = true
		n.chEnts = append(n.chEnts, eid)
		if fl := n.fixedLevel[eid]; fl < n.pendingCut {
			n.pendingCut = fl
		}
	}
	for _, l := range e.links {
		if !n.linkChanged[l] {
			n.linkChanged[l] = true
			n.chLinks = append(n.chLinks, l)
		}
	}
}

// entityFor returns the entity aggregating the given route and cap,
// creating it if needed. Routes longer than maxAggRoute get private
// entities.
func (n *Net) entityFor(links []int, rateCap float64) int32 {
	if len(links) <= maxAggRoute {
		var key routeKey
		key.n = int8(len(links))
		key.cap = rateCap
		for i, l := range links {
			key.links[i] = int32(l)
		}
		if eid, ok := n.byRoute[key]; ok {
			return eid
		}
		eid := n.newEntity(links, rateCap, true)
		n.byRoute[key] = eid
		return eid
	}
	return n.newEntity(links, rateCap, false)
}

func (n *Net) newEntity(links []int, rateCap float64, agg bool) int32 {
	var eid int32
	if k := len(n.entFree); k > 0 {
		eid = n.entFree[k-1]
		n.entFree = n.entFree[:k-1]
	} else {
		n.ents = append(n.ents, entity{})
		n.solveEp = append(n.solveEp, 0)
		n.fixedEp = append(n.fixedEp, 0)
		n.walkEp = append(n.walkEp, 0)
		n.genByID = append(n.genByID, 0)
		n.fixedLevel = append(n.fixedLevel, 0)
		n.dlStamp = append(n.dlStamp, 0)
		eid = int32(len(n.ents) - 1)
	}
	e := &n.ents[eid]
	e.links = e.links[:0]
	e.linkPos = e.linkPos[:0]
	e.cap = rateCap
	e.weight = 0
	e.heap = e.heap[:0]
	e.agg = agg
	e.changed = false
	n.solveEp[eid] = 0
	n.fixedEp[eid] = 0
	n.walkEp[eid] = 0
	n.fixedLevel[eid] = noLevel
	e.exempt = len(links) == 0
	switch {
	case !e.exempt:
		e.rate = 0
		n.solvable++
	case rateCap > 0:
		e.rate = rateCap
	default:
		e.rate = math.Inf(1)
	}
	for i, l := range links {
		l32 := int32(l)
		e.links = append(e.links, l32)
		e.linkPos = append(e.linkPos, int32(len(n.linkEnts[l])))
		n.linkEnts[l] = append(n.linkEnts[l], linkRef{ent: eid, occ: int32(i)})
	}
	e.pos = int32(len(n.active))
	n.active = append(n.active, eid)
	n.drained = append(n.drained, 0)
	n.rates = append(n.rates, e.rate)
	n.headFin = append(n.headFin, math.Inf(1))
	return eid
}

func (n *Net) destroyEntity(eid int32) {
	e := &n.ents[eid]
	if e.agg {
		var key routeKey
		key.n = int8(len(e.links))
		key.cap = e.cap
		copy(key.links[:], e.links)
		delete(n.byRoute, key)
	}
	for i := 0; i < len(e.links); i++ {
		l, pos := e.links[i], e.linkPos[i]
		list := n.linkEnts[l]
		last := len(list) - 1
		ref := list[last]
		list[pos] = ref
		n.linkEnts[l] = list[:last]
		n.ents[ref.ent].linkPos[ref.occ] = pos
	}
	last := int32(len(n.active) - 1)
	moved := n.active[last]
	n.active[e.pos] = moved
	n.ents[moved].pos = e.pos
	n.drained[e.pos] = n.drained[last]
	n.rates[e.pos] = n.rates[last]
	n.headFin[e.pos] = n.headFin[last]
	n.active = n.active[:last]
	n.drained = n.drained[:last]
	n.rates = n.rates[:last]
	n.headFin = n.headFin[:last]
	if !e.exempt {
		n.solvable--
	}
	e.gen++
	n.genByID[eid] = e.gen
	n.dlStamp[eid]++
	n.entFree = append(n.entFree, eid)
}

func (n *Net) allocMember() int32 {
	if k := len(n.memFree); k > 0 {
		mid := n.memFree[k-1]
		n.memFree = n.memFree[:k-1]
		return mid
	}
	n.members = append(n.members, member{})
	return int32(len(n.members) - 1)
}

func (n *Net) freeMember(mid int32) {
	n.memFree = append(n.memFree, mid)
}

// Member heap by (finish, seq): completions within an entity in virtual
// finish-volume order, FIFO on exact ties. Manual sift code keeps the hot
// path free of interface allocations. Every mutation refreshes the dense
// headFin mirror.

func (n *Net) memLess(a, b int32) bool {
	ma, mb := &n.members[a], &n.members[b]
	if ma.finish != mb.finish {
		return ma.finish < mb.finish
	}
	return ma.seq < mb.seq
}

func (n *Net) syncHeadFin(e *entity) {
	if len(e.heap) > 0 {
		n.headFin[e.pos] = n.members[e.heap[0]].finish
	} else {
		n.headFin[e.pos] = math.Inf(1)
	}
}

func (n *Net) heapPush(e *entity, mid int32) {
	e.heap = append(e.heap, mid)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !n.memLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
	n.syncHeadFin(e)
}

func (n *Net) heapPop(e *entity) int32 {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		n.siftDown(e, 0)
	}
	n.syncHeadFin(e)
	return top
}

func (n *Net) heapDelete(e *entity, i int) {
	last := len(e.heap) - 1
	e.heap[i] = e.heap[last]
	e.heap = e.heap[:last]
	if i < last {
		n.siftDown(e, i)
		n.siftUp(e, i)
	}
	n.syncHeadFin(e)
}

func (n *Net) siftDown(e *entity, i int) {
	h := e.heap
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if r := c + 1; r < len(h) && n.memLess(h[r], h[c]) {
			c = r
		}
		if !n.memLess(h[c], h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

func (n *Net) siftUp(e *entity, i int) {
	h := e.heap
	for i > 0 {
		p := (i - 1) / 2
		if !n.memLess(h[i], h[p]) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// dlKey is one deadline-heap entry.
type dlKey struct {
	t     float64
	eid   int32
	stamp uint32
}

func (n *Net) dlPush(k dlKey) {
	// Bound the garbage from superseded entries: rebuild once the heap
	// outgrows the live population by enough to matter.
	if len(n.dlHeap) > 4*len(n.active)+64 {
		w := 0
		for _, e := range n.dlHeap {
			if n.dlStamp[e.eid] == e.stamp {
				n.dlHeap[w] = e
				w++
			}
		}
		n.dlHeap = n.dlHeap[:w]
		for i := len(n.dlHeap)/2 - 1; i >= 0; i-- {
			n.dlSiftDown(i)
		}
	}
	n.dlHeap = append(n.dlHeap, k)
	i := len(n.dlHeap) - 1
	h := n.dlHeap
	for i > 0 {
		p := (i - 1) / 2
		if !dlLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (n *Net) dlPop() {
	last := len(n.dlHeap) - 1
	n.dlHeap[0] = n.dlHeap[last]
	n.dlHeap = n.dlHeap[:last]
	if last > 0 {
		n.dlSiftDown(0)
	}
}

// dlLess orders deadline entries by time with (entity, stamp) tie-breaks
// for determinism.
func dlLess(a, b dlKey) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.eid != b.eid {
		return a.eid < b.eid
	}
	return a.stamp < b.stamp
}

func (n *Net) dlSiftDown(i int) {
	h := n.dlHeap
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if r := c + 1; r < len(h) && dlLess(h[r], h[c]) {
			c = r
		}
		if !dlLess(h[c], h[i]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}
