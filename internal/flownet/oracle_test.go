package flownet_test

// Randomized equivalence of the incremental flownet solver against the
// reference from-scratch progressive filling (sim.MaxMin), on the
// topologies the replay actually uses: the paper's grelon cluster and the
// production-scale big512/big1024 presets. Both fresh populations and long
// add/remove sequences (the incremental repair path) are checked — well
// over a thousand solved populations per run.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/flownet"
	"repro/internal/platform"
	"repro/internal/sim"
)

// tolClose checks relative agreement within 1e-9 (with an absolute floor
// for rates near zero).
func tolClose(a, b float64) bool {
	if a == b { // covers ±Inf
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

// oracleFlow mirrors one live flownet member for the reference solver.
type oracleFlow struct {
	id    int
	links []int
	cap   float64
}

type oracleNet struct {
	t     *testing.T
	cl    *platform.Cluster
	caps  []float64
	net   *flownet.Net
	flows []oracleFlow
	rng   *rand.Rand
}

func newOracleNet(t *testing.T, cl *platform.Cluster, seed int64) *oracleNet {
	return &oracleNet{
		t:    t,
		cl:   cl,
		caps: cl.LinkCapacities(),
		net:  flownet.New(cl.LinkCapacities()),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// addRandom starts one flow on a random (src, dst) route of the cluster,
// occasionally with no rate cap or a perturbed one to vary the cap
// ordering.
func (o *oracleNet) addRandom() {
	src := o.rng.Intn(o.cl.P)
	dst := o.rng.Intn(o.cl.P)
	for dst == src {
		dst = o.rng.Intn(o.cl.P)
	}
	links, _ := o.cl.Route(src, dst)
	rateCap := o.cl.EffectiveBandwidth(src, dst)
	switch o.rng.Intn(8) {
	case 0:
		rateCap = 0 // uncapped
	case 1:
		rateCap *= 0.25 + o.rng.Float64() // de-duplicate cap values
	}
	id := o.net.Start(links, rateCap, 1+o.rng.Float64()*1e9)
	o.flows = append(o.flows, oracleFlow{id: id, links: links, cap: rateCap})
}

func (o *oracleNet) removeRandom() {
	if len(o.flows) == 0 {
		return
	}
	i := o.rng.Intn(len(o.flows))
	o.net.Remove(o.flows[i].id)
	o.flows[i] = o.flows[len(o.flows)-1]
	o.flows = o.flows[:len(o.flows)-1]
}

// check solves both sides and compares every live flow's rate.
func (o *oracleNet) check() {
	o.t.Helper()
	o.net.Solve()
	flowLinks := make([][]int, len(o.flows))
	flowCaps := make([]float64, len(o.flows))
	for i, f := range o.flows {
		flowLinks[i] = f.links
		flowCaps[i] = f.cap
	}
	want := sim.MaxMin(o.caps, flowLinks, flowCaps)
	for i, f := range o.flows {
		if got := o.net.Rate(f.id); !tolClose(got, want[i]) {
			o.t.Fatalf("%s: flow %d (route %v cap %g) rate %g, oracle %g (%d flows, %d entities)",
				o.cl.Name, f.id, f.links, f.cap, got, want[i], len(o.flows), o.net.Entities())
		}
	}
}

func oracleClusters() []*platform.Cluster {
	return []*platform.Cluster{platform.Grelon(), platform.Big512(), platform.Big1024()}
}

// TestOracleFreshPopulations solves independent random populations from
// scratch on each topology and compares every rate.
func TestOracleFreshPopulations(t *testing.T) {
	const populations = 250 // ×3 clusters = 750 solved populations
	for _, cl := range oracleClusters() {
		cl := cl
		t.Run(cl.Name, func(t *testing.T) {
			for p := 0; p < populations; p++ {
				o := newOracleNet(t, cl, int64(1000*p+7))
				nf := 1 + o.rng.Intn(300)
				for i := 0; i < nf; i++ {
					o.addRandom()
				}
				o.check()
			}
		})
	}
}

// TestOracleIncrementalSequences drives long add/remove sequences through
// one Net — the level-log repair path — checking against a from-scratch
// oracle solve after every mutation batch.
func TestOracleIncrementalSequences(t *testing.T) {
	const (
		sequences = 40
		steps     = 25 // ×3 clusters ×40 sequences = 3000 incremental checks
	)
	for _, cl := range oracleClusters() {
		cl := cl
		t.Run(cl.Name, func(t *testing.T) {
			for s := 0; s < sequences; s++ {
				o := newOracleNet(t, cl, int64(5000*s+13))
				// Seed population.
				for i := 0; i < 50+o.rng.Intn(150); i++ {
					o.addRandom()
				}
				o.check()
				for step := 0; step < steps; step++ {
					// Small batches keep the repair path active; larger
					// ones exercise the full-solve fallback.
					batch := 1 + o.rng.Intn(4)
					if o.rng.Intn(10) == 0 {
						batch = 40 + o.rng.Intn(40)
					}
					for b := 0; b < batch; b++ {
						if o.rng.Intn(2) == 0 && len(o.flows) > 0 {
							o.removeRandom()
						} else {
							o.addRandom()
						}
					}
					o.check()
				}
			}
		})
	}
}

// TestOracleIncrementalPathTaken pins that the sequences above actually
// run the repair path rather than silently falling back to full solves.
func TestOracleIncrementalPathTaken(t *testing.T) {
	cl := platform.Big512()
	o := newOracleNet(t, cl, 99)
	for i := 0; i < 200; i++ {
		o.addRandom()
	}
	o.check()
	for step := 0; step < 50; step++ {
		o.removeRandom()
		o.addRandom()
		o.check()
	}
	if o.net.IncrementalSolves() < 40 {
		t.Errorf("incremental solves = %d of %d, want the single-flow churn handled incrementally",
			o.net.IncrementalSolves(), o.net.IncrementalSolves()+o.net.FullSolves())
	}
}

// TestOracleDrainEquivalence drains a shared population step by step in
// both a flownet Net and a hand-tracked per-flow mirror using oracle
// rates, checking volumes stay in lockstep.
func TestOracleDrainEquivalence(t *testing.T) {
	cl := platform.Grelon()
	o := newOracleNet(t, cl, 4242)
	for i := 0; i < 120; i++ {
		o.addRandom()
	}
	remaining := map[int]float64{}
	for _, f := range o.flows {
		remaining[f.id] = o.net.Remaining(f.id)
	}
	now := 0.0
	for round := 0; round < 200 && len(o.flows) > 0; round++ {
		o.check()
		d := o.net.NextDeadline(now)
		if math.IsInf(d, 1) {
			t.Fatal("stalled population")
		}
		dt := (d - now) * (0.5 + o.rng.Float64()) // under- and overshoot
		o.net.Advance(dt)
		now += dt
		for _, f := range o.flows {
			remaining[f.id] -= o.net.Rate(f.id) * dt
		}
		drained := map[int]bool{}
		o.net.PopDrained(now, 1e-6, func(id int) { drained[id] = true })
		kept := o.flows[:0]
		for _, f := range o.flows {
			got := o.net.Remaining(f.id)
			if !drained[f.id] {
				if math.Abs(got-remaining[f.id]) > 1e-3+1e-9*math.Abs(remaining[f.id]) {
					t.Fatalf("flow %d: remaining %g, mirror %g", f.id, got, remaining[f.id])
				}
				kept = append(kept, f)
				continue
			}
			if remaining[f.id] > 1e-3 {
				t.Fatalf("flow %d drained with %g bytes left in the mirror", f.id, remaining[f.id])
			}
			delete(remaining, f.id)
		}
		o.flows = kept
	}
}
