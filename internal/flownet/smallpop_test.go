package flownet_test

// Oracle equivalence of the adaptive small-population mode: populations at
// or below the scratch threshold solve without bottleneck-log bookkeeping,
// and must produce exactly the same rates as the reference solver — also
// across transitions into and out of the logged regime.

import (
	"testing"

	"repro/internal/platform"
)

// TestSmallPopulationScratchPathTaken pins that tiny-population churn (the
// irregular jump=2 replay profile) actually runs the scratch path instead
// of the log machinery, and still matches the from-scratch oracle on every
// solve.
func TestSmallPopulationScratchPathTaken(t *testing.T) {
	for _, cl := range []*platform.Cluster{platform.Grelon(), platform.Big1024()} {
		cl := cl
		t.Run(cl.Name, func(t *testing.T) {
			o := newOracleNet(t, cl, 314)
			for i := 0; i < 5; i++ {
				o.addRandom()
			}
			o.check()
			for step := 0; step < 60; step++ {
				if o.rng.Intn(2) == 0 && len(o.flows) > 1 {
					o.removeRandom()
				} else {
					o.addRandom()
				}
				o.check()
			}
			if o.net.ScratchSolves() < 50 {
				t.Errorf("scratch solves = %d (full %d, incremental %d): tiny populations must skip the log bookkeeping",
					o.net.ScratchSolves(), o.net.FullSolves(), o.net.IncrementalSolves())
			}
			if o.net.IncrementalSolves() > 0 {
				t.Errorf("incremental solves = %d below the scratch threshold", o.net.IncrementalSolves())
			}
		})
	}
}

// TestSmallPopulationRegimeTransitions grows a population across the
// scratch threshold and shrinks it back, checking oracle equivalence at
// every step: the first above-threshold solve after a scratch era must
// rebuild the log from scratch (the scratch path leaves it untrusted), and
// dropping back below the threshold must stay exact.
func TestSmallPopulationRegimeTransitions(t *testing.T) {
	cl := platform.Big512()
	for seed := int64(0); seed < 6; seed++ {
		o := newOracleNet(t, cl, 9000+seed)
		// Grow 0 → 120 one flow at a time, solving at every step.
		for i := 0; i < 120; i++ {
			o.addRandom()
			o.check()
		}
		// Churn in the logged regime so the log carries real history.
		for step := 0; step < 20; step++ {
			o.removeRandom()
			o.addRandom()
			o.check()
		}
		// Shrink back through the threshold to a handful of flows.
		for len(o.flows) > 3 {
			o.removeRandom()
			o.check()
		}
		// And grow again: the post-scratch log rebuild must be exact.
		for i := 0; i < 60; i++ {
			o.addRandom()
			o.check()
		}
		if o.net.ScratchSolves() == 0 {
			t.Fatal("transition sequence never exercised the scratch path")
		}
		if o.net.IncrementalSolves() == 0 {
			t.Fatal("transition sequence never exercised the log-repair path")
		}
	}
}
