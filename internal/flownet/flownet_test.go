package flownet

import (
	"math"
	"testing"
)

const eps = 1e-6

func solveRates(n *Net, ids []int) []float64 {
	n.Solve()
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = n.Rate(id)
	}
	return out
}

func TestSingleFlow(t *testing.T) {
	n := New([]float64{100})
	id := n.Start([]int{0}, 0, 1000)
	n.Solve()
	if got := n.Rate(id); got != 100 {
		t.Errorf("rate = %g, want 100", got)
	}
	if got := n.Remaining(id); got != 1000 {
		t.Errorf("remaining = %g, want 1000", got)
	}
}

func TestEqualSharingAggregates(t *testing.T) {
	// Four identical flows must collapse into one weighted entity and each
	// run at a quarter of the link.
	n := New([]float64{100})
	ids := []int{
		n.Start([]int{0}, 0, 10),
		n.Start([]int{0}, 0, 20),
		n.Start([]int{0}, 0, 30),
		n.Start([]int{0}, 0, 40),
	}
	if n.Entities() != 1 {
		t.Fatalf("entities = %d, want 1 (identical routes must aggregate)", n.Entities())
	}
	for i, r := range solveRates(n, ids) {
		if math.Abs(r-25) > 1e-9 {
			t.Errorf("rate[%d] = %g, want 25", i, r)
		}
	}
}

func TestParkingLot(t *testing.T) {
	// Classic dumbbell: A over links 0+1, B over 0, C over 1. Link 0 has
	// capacity 10, link 1 has 100: A=B=5, C=95.
	n := New([]float64{10, 100})
	ids := []int{
		n.Start([]int{0, 1}, 0, 1),
		n.Start([]int{0}, 0, 1),
		n.Start([]int{1}, 0, 1),
	}
	want := []float64{5, 5, 95}
	for i, r := range solveRates(n, ids) {
		if math.Abs(r-want[i]) > 1e-9 {
			t.Errorf("rate[%d] = %g, want %g", i, r, want[i])
		}
	}
}

func TestRateCapAndCapless(t *testing.T) {
	n := New([]float64{100})
	a := n.Start([]int{0}, 10, 1)
	b := n.Start([]int{0}, 0, 1)
	if n.Entities() != 2 {
		t.Fatalf("entities = %d, want 2 (different caps must not aggregate)", n.Entities())
	}
	n.Solve()
	if ra, rb := n.Rate(a), n.Rate(b); math.Abs(ra-10) > 1e-9 || math.Abs(rb-90) > 1e-9 {
		t.Errorf("rates = %g/%g, want 10/90", ra, rb)
	}
}

func TestEmptyRoute(t *testing.T) {
	n := New([]float64{1})
	free := n.Start(nil, 0, 1)
	capped := n.Start(nil, 42, 1)
	n.Solve()
	if !math.IsInf(n.Rate(free), 1) {
		t.Errorf("rate of unconstrained flow = %g, want +Inf", n.Rate(free))
	}
	if n.Rate(capped) != 42 {
		t.Errorf("rate of capped self-flow = %g, want 42", n.Rate(capped))
	}
}

func TestRepeatedLinkCountsTwice(t *testing.T) {
	// A route visiting the same link twice consumes double bandwidth on
	// it, exactly like the reference solver's per-occurrence counters.
	n := New([]float64{100})
	id := n.Start([]int{0, 0}, 0, 1)
	n.Solve()
	if r := n.Rate(id); math.Abs(r-50) > 1e-9 {
		t.Errorf("rate = %g, want 50 (two traversals share one link)", r)
	}
	n.Remove(id)
	other := n.Start([]int{0}, 0, 1)
	n.Solve()
	if r := n.Rate(other); math.Abs(r-100) > 1e-9 {
		t.Errorf("rate after removal = %g, want 100", r)
	}
}

func TestRemoveResharesBandwidth(t *testing.T) {
	n := New([]float64{100})
	a := n.Start([]int{0}, 0, 1)
	b := n.Start([]int{0}, 0, 1)
	n.Solve()
	if r := n.Rate(a); math.Abs(r-50) > 1e-9 {
		t.Fatalf("rate = %g, want 50", r)
	}
	n.Remove(b)
	n.Solve()
	if r := n.Rate(a); math.Abs(r-100) > 1e-9 {
		t.Errorf("rate after removal = %g, want 100", r)
	}
	if n.Flows() != 1 || n.Entities() != 1 {
		t.Errorf("population = %d flows / %d entities, want 1/1", n.Flows(), n.Entities())
	}
}

func TestDrainAndCompletionOrder(t *testing.T) {
	// Two members of one entity complete in volume order; a later third
	// member's baseline accounts for what already drained.
	n := New([]float64{100})
	a := n.Start([]int{0}, 0, 100) // drains at rate 50 alongside b
	b := n.Start([]int{0}, 0, 200)
	n.Solve()
	if d := n.NextDeadline(0); math.Abs(d-2) > 1e-9 {
		t.Fatalf("deadline = %g, want 2 (100 bytes at 50 B/s)", d)
	}
	n.Advance(2)
	var got []int
	n.PopDrained(2, eps, func(id int) { got = append(got, id) })
	if len(got) != 1 || got[0] != a {
		t.Fatalf("completed %v, want [%d]", got, a)
	}
	n.Solve() // b alone now: rate 100, 100 bytes left
	if r := n.Remaining(b); math.Abs(r-100) > 1e-9 {
		t.Fatalf("remaining = %g, want 100", r)
	}
	c := n.Start([]int{0}, 0, 30) // joins b's entity mid-drain
	n.Solve()
	d := n.NextDeadline(2) // c (30 bytes at 50 B/s) finishes first, at 2.6
	if math.Abs(d-2.6) > 1e-9 {
		t.Fatalf("deadline = %g, want 2.6", d)
	}
	n.Advance(d - 2)
	got = got[:0]
	n.PopDrained(d, eps, func(id int) { got = append(got, id) })
	if len(got) != 1 || got[0] != c {
		t.Fatalf("completed %v, want [%d]", got, c)
	}
}

func TestPopDrainedArrivalOrderAcrossEntities(t *testing.T) {
	// Simultaneous completions are yielded in arrival order even when they
	// belong to different entities.
	n := New([]float64{100, 100})
	a := n.Start([]int{0}, 0, 100)
	b := n.Start([]int{1}, 0, 100)
	c := n.Start([]int{0}, 0, 100)
	n.Solve()
	n.Advance(2) // everything drained
	var got []int
	n.PopDrained(2, eps, func(id int) { got = append(got, id) })
	want := []int{a, b, c}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("completion order %v, want %v", got, want)
	}
	if n.Flows() != 0 || n.Entities() != 0 {
		t.Fatalf("population %d/%d after drain, want 0/0", n.Flows(), n.Entities())
	}
}

func TestSubULPResidueDrains(t *testing.T) {
	// A residue whose drain time cannot advance the clock by one ULP must
	// complete (the engine's livelock guard).
	n := New([]float64{1e8})
	id := n.Start([]int{0}, 0, 1) // 1 byte at 1e8 B/s: 1e-8 s << ULP(1e9)
	n.Solve()
	popped := false
	n.PopDrained(1e9, eps, func(got int) { popped = got == id })
	if !popped {
		t.Fatal("sub-ULP residue did not complete")
	}
}

func TestDefensiveFreezeAtZero(t *testing.T) {
	// Infinite-capacity links yield +Inf shares that never win the strict
	// minimum test: the fill must freeze capped entities at their caps and
	// the rest at 0 rather than leave stale rates behind.
	n := New([]float64{math.Inf(1)})
	a := n.Start([]int{0}, 0, 1)
	b := n.Start([]int{0}, 7, 1)
	n.Solve()
	if r := n.Rate(a); r != 0 {
		t.Errorf("uncapped flow on infinite link: rate = %g, want 0 (deterministic freeze)", r)
	}
	if r := n.Rate(b); r != 7 {
		t.Errorf("capped flow on infinite link: rate = %g, want its cap 7", r)
	}
	// The defensive path drops the log; the next solve must recover.
	c := n.Start([]int{0}, 3, 1)
	n.Solve()
	if r := n.Rate(c); r != 3 {
		t.Errorf("post-defensive solve: rate = %g, want 3", r)
	}
}

func TestIncrementalPathIsExercised(t *testing.T) {
	// A big population with small follow-up changes must take the
	// incremental path, not re-solve from scratch every time.
	caps := make([]float64, 64)
	for i := range caps {
		caps[i] = 100
	}
	n := New(caps)
	var ids []int
	for i := 0; i < 64; i++ {
		ids = append(ids, n.Start([]int{i, (i + 7) % 64}, 55, 1))
	}
	n.Solve()
	if n.FullSolves() != 1 {
		t.Fatalf("full solves = %d, want 1", n.FullSolves())
	}
	for i := 0; i < 16; i++ {
		n.Remove(ids[i])
		n.Solve()
	}
	if n.IncrementalSolves() == 0 {
		t.Error("small removals never took the incremental path")
	}
	if n.FullSolves() != 1 {
		t.Errorf("full solves = %d after small removals, want still 1", n.FullSolves())
	}
}

func TestEntityReuseAfterChurn(t *testing.T) {
	// Stress the free lists: repeated start/complete cycles over the same
	// routes must keep the population bookkeeping consistent.
	n := New([]float64{100, 100, 100, 100})
	for round := 0; round < 50; round++ {
		var ids []int
		for i := 0; i < 12; i++ {
			ids = append(ids, n.Start([]int{i % 4, (i + 1) % 4}, 0, float64(10*(i+1))))
		}
		n.Solve()
		for n.Flows() > 0 {
			n.Solve()
			d := n.NextDeadline(0)
			if math.IsInf(d, 1) {
				t.Fatal("stalled population")
			}
			n.Advance(d)
			n.PopDrained(d, eps, func(int) {})
		}
		if n.Entities() != 0 {
			t.Fatalf("round %d: %d entities leaked", round, n.Entities())
		}
		_ = ids
	}
}
