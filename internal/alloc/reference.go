package alloc

import (
	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// ComputeReference is the original full-rewalk allocation procedure: every
// refinement step recomputes the bottom and top levels of the whole DAG,
// re-sums the total work and re-scans all tasks for the best critical-path
// candidate. It is kept verbatim as the semantic oracle for the
// incremental engine in incremental.go — Compute must return byte-identical
// allocations (TestAllocOracleEquivalence), and the root BenchmarkAlloc
// measures the two side by side. Production callers use Compute.
func ComputeReference(g *dag.Graph, costs *moldable.Costs, cl *platform.Cluster, opts Options) []int {
	n := g.N()
	allocs := make([]int, n)
	real := 0
	for t := 0; t < n; t++ {
		if !g.Tasks[t].Virtual {
			allocs[t] = 1
			real++
		}
	}
	if real == 0 {
		return allocs
	}

	denom := float64(cl.P)
	if opts.Method == HCPA || opts.Method == MCPA {
		if real < cl.P {
			denom = float64(real)
		}
	}

	edgeCost := func(e int) float64 { return 0 }
	if opts.IncludeEdgeCosts {
		beta, lat := cl.LinkBandwidth, cl.LinkLatency
		edgeCost = func(e int) float64 {
			b := g.Edges[e].Bytes
			if b <= 0 {
				return 0
			}
			return b/beta + 2*lat
		}
	}
	taskCost := func(t int) float64 {
		if g.Tasks[t].Virtual {
			return 0
		}
		return costs.Time(t, allocs[t])
	}

	// Per-level processor budget for MCPA, and per-task caps for the
	// level-aware HCPA variant.
	var levelOf []int
	var levelUse []int
	taskCap := make([]int, n)
	for t := range taskCap {
		taskCap[t] = cl.P
	}
	if opts.Method == MCPA || opts.LevelCap {
		lvl, nl := g.Levels()
		levelOf = lvl
		levelUse = make([]int, nl)
		width := make([]int, nl)
		for t := 0; t < n; t++ {
			if !g.Tasks[t].Virtual {
				levelUse[lvl[t]]++
				width[lvl[t]]++
			}
		}
		if opts.LevelCap {
			for t := 0; t < n; t++ {
				if g.Tasks[t].Virtual || width[lvl[t]] == 0 {
					continue
				}
				c := (cl.P + width[lvl[t]] - 1) / width[lvl[t]]
				if c < 1 {
					c = 1
				}
				taskCap[t] = c
			}
		}
	}

	totalWork := func() float64 {
		w := 0.0
		for t := 0; t < n; t++ {
			if !g.Tasks[t].Virtual {
				w += costs.Work(t, allocs[t])
			}
		}
		return w
	}

	const rel = 1e-9
	for {
		// One bottom-level and one top-level pass per iteration give both
		// C∞ and the critical-path membership.
		bl := g.BottomLevels(taskCost, edgeCost)
		cInf := 0.0
		for _, v := range bl {
			if v > cInf {
				cInf = v
			}
		}
		area := totalWork() / denom
		if cInf <= area {
			break
		}
		tl := g.TopLevels(taskCost, edgeCost)
		tol := cInf * rel
		onCP := make([]bool, n)
		for t := 0; t < n; t++ {
			onCP[t] = tl[t]+bl[t] >= cInf-tol
		}
		// Give one processor to the critical-path task that benefits the
		// most from the increase (largest execution-time reduction).
		best, bestGain := -1, 0.0
		for t := 0; t < n; t++ {
			if !onCP[t] || g.Tasks[t].Virtual || allocs[t] >= cl.P || allocs[t] >= taskCap[t] {
				continue
			}
			if opts.Method == MCPA && levelUse[levelOf[t]] >= cl.P {
				continue
			}
			gain := costs.Time(t, allocs[t]) - costs.Time(t, allocs[t]+1)
			if gain > bestGain || (gain == bestGain && best >= 0 && allocs[t] < allocs[best]) {
				best, bestGain = t, gain
			}
		}
		if best < 0 || bestGain <= 0 {
			break // critical path saturated; no further benefit possible
		}
		allocs[best]++
		if opts.Method == MCPA {
			levelUse[levelOf[best]]++
		}
	}
	return allocs
}
