package alloc

import (
	"testing"
	"testing/quick"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// chainGraph builds an n-task chain with identical heavy tasks.
func chainGraph(n int) *dag.Graph {
	g := dag.NewGraph(n, n-1)
	for i := 0; i < n; i++ {
		g.AddTask(dag.Task{Name: "c", M: 50e6, A: 256, Alpha: 0.05})
	}
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, g.Tasks[i-1].Bytes())
	}
	return g
}

// forkJoin builds entry → k parallel tasks → exit.
func forkJoin(k int) *dag.Graph {
	g := dag.NewGraph(k+2, 2*k)
	entry := g.AddTask(dag.Task{Name: "in", M: 10e6, A: 64, Alpha: 0.1})
	exit := g.AddTask(dag.Task{Name: "out", M: 10e6, A: 64, Alpha: 0.1})
	for i := 0; i < k; i++ {
		t := g.AddTask(dag.Task{Name: "mid", M: 50e6, A: 256, Alpha: 0.1})
		g.AddEdge(entry, t, g.Tasks[entry].Bytes())
		g.AddEdge(t, exit, g.Tasks[t].Bytes())
	}
	return g
}

func TestChainGetsLargeAllocations(t *testing.T) {
	g := chainGraph(5)
	cl := platform.Grillon()
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := Compute(g, costs, cl, Options{Method: CPA, IncludeEdgeCosts: false})
	for i, v := range a {
		if v < 2 {
			t.Errorf("chain task %d allocation %d; every chain task is critical and should be parallelized", i, v)
		}
	}
}

func TestAllocationsWithinBounds(t *testing.T) {
	g := forkJoin(10)
	for _, cl := range platform.PaperClusters() {
		costs := moldable.NewCosts(g, cl.SpeedGFlops)
		for _, m := range []Method{CPA, HCPA, MCPA} {
			a := Compute(g, costs, cl, Options{Method: m, IncludeEdgeCosts: true})
			for i, v := range a {
				if g.Tasks[i].Virtual {
					if v != 0 {
						t.Errorf("%s/%s: virtual task allocated %d", cl.Name, m, v)
					}
					continue
				}
				if v < 1 || v > cl.P {
					t.Errorf("%s/%s: task %d allocation %d outside [1,%d]", cl.Name, m, i, v, cl.P)
				}
			}
		}
	}
}

func TestTerminationCriterion(t *testing.T) {
	// At the fixpoint either C∞ ≤ W or the critical path is saturated.
	g := gen.Random(gen.RandomParams{N: 50, Width: 0.5, Regularity: 0.8, Density: 0.2, Layered: true, Seed: 21})
	cl := platform.Grillon()
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := Compute(g, costs, cl, DefaultOptions())

	taskCost := func(tk int) float64 {
		if g.Tasks[tk].Virtual {
			return 0
		}
		return costs.Time(tk, a[tk])
	}
	edgeCost := func(e int) float64 { return 0 } // DefaultOptions: computation-only C∞
	cInf := g.CriticalPathLength(taskCost, edgeCost)
	work := 0.0
	real := 0
	for i := range g.Tasks {
		if !g.Tasks[i].Virtual {
			work += costs.Work(i, a[i])
			real++
		}
	}
	denom := float64(cl.P)
	if real < cl.P {
		denom = float64(real)
	}
	// Per-task caps of the level-capped HCPA default.
	lvl, nl := g.Levels()
	width := make([]int, nl)
	for i := range g.Tasks {
		if !g.Tasks[i].Virtual {
			width[lvl[i]]++
		}
	}
	capOf := func(i int) int {
		c := (cl.P + width[lvl[i]] - 1) / width[lvl[i]]
		if c < 1 {
			c = 1
		}
		return c
	}
	if cInf > work/denom {
		// Allowed only if every CP task is saturated (cluster or level
		// cap) or gains nothing from one more processor.
		_, onCP := g.CriticalPath(taskCost, edgeCost)
		for i := range g.Tasks {
			if !onCP[i] || g.Tasks[i].Virtual {
				continue
			}
			if a[i] < cl.P && a[i] < capOf(i) && costs.Time(i, a[i])-costs.Time(i, a[i]+1) > 0 {
				t.Fatalf("allocation stopped early: C∞=%g > W=%g with improvable CP task %d (alloc %d, cap %d)",
					cInf, work/denom, i, a[i], capOf(i))
			}
		}
	}
}

func TestHCPAAllocatesNoMoreThanCPAOnLargeCluster(t *testing.T) {
	// grelon has P=120 > N: HCPA's area denominator min(P, N) stops the
	// loop earlier, so per-task allocations are never larger than CPA's
	// and total work is lower or equal.
	cl := platform.Grelon()
	for seed := int64(0); seed < 5; seed++ {
		g := gen.Random(gen.RandomParams{N: 25, Width: 0.5, Regularity: 0.8, Density: 0.8, Layered: true, Seed: seed})
		costs := moldable.NewCosts(g, cl.SpeedGFlops)
		cpa := Compute(g, costs, cl, Options{Method: CPA, IncludeEdgeCosts: true})
		hcpa := Compute(g, costs, cl, Options{Method: HCPA, IncludeEdgeCosts: true})
		wCPA := costs.TotalWork(cpa)
		wHCPA := costs.TotalWork(hcpa)
		if wHCPA > wCPA+1e-9 {
			t.Errorf("seed %d: HCPA total work %g exceeds CPA %g", seed, wHCPA, wCPA)
		}
	}
}

func TestMCPARespectsLevelBudget(t *testing.T) {
	cl := platform.Chti() // small cluster, easy to exceed
	g := gen.Random(gen.RandomParams{N: 50, Width: 0.8, Regularity: 0.8, Density: 0.8, Layered: true, Seed: 2})
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	a := Compute(g, costs, cl, Options{Method: MCPA, IncludeEdgeCosts: true})
	lvl, n := g.Levels()
	use := make([]int, n)
	for i := range g.Tasks {
		if !g.Tasks[i].Virtual {
			use[lvl[i]] += a[i]
		}
	}
	for l, u := range use {
		if u > cl.P {
			t.Errorf("level %d uses %d processors > P=%d", l, u, cl.P)
		}
	}
}

func TestOneEach(t *testing.T) {
	g := forkJoin(3)
	g.Normalize()
	a := OneEach(g)
	for i := range g.Tasks {
		want := 1
		if g.Tasks[i].Virtual {
			want = 0
		}
		if a[i] != want {
			t.Errorf("OneEach[%d] = %d, want %d", i, a[i], want)
		}
	}
}

func TestMethodString(t *testing.T) {
	if CPA.String() != "cpa" || HCPA.String() != "hcpa" || MCPA.String() != "mcpa" {
		t.Error("Method.String mismatch")
	}
	if Method(99).String() != "Method(99)" {
		t.Error("out-of-range method should stringify to 'Method(99)'")
	}
}

// Property: allocations are deterministic and within bounds across random
// graphs and clusters.
func TestPropertyAllocationSane(t *testing.T) {
	clusters := platform.PaperClusters()
	f := func(seed int64, mIdx, cIdx uint8) bool {
		cl := clusters[int(cIdx)%len(clusters)]
		m := []Method{CPA, HCPA, MCPA}[int(mIdx)%3]
		g := gen.Random(gen.RandomParams{N: 25, Width: 0.5, Regularity: 0.2, Density: 0.2, Layered: false, Jump: 2, Seed: seed})
		costs := moldable.NewCosts(g, cl.SpeedGFlops)
		a1 := Compute(g, costs, cl, Options{Method: m, IncludeEdgeCosts: true})
		a2 := Compute(g, costs, cl, Options{Method: m, IncludeEdgeCosts: true})
		for i := range a1 {
			if a1[i] != a2[i] {
				return false
			}
			if g.Tasks[i].Virtual {
				if a1[i] != 0 {
					return false
				}
			} else if a1[i] < 1 || a1[i] > cl.P {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHCPAAllocation100(b *testing.B) {
	g := gen.Random(gen.RandomParams{N: 100, Width: 0.5, Regularity: 0.8, Density: 0.8, Layered: true, Seed: 1})
	cl := platform.Grelon()
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g, costs, cl, DefaultOptions())
	}
}
