// Package alloc implements the first step of two-step mixed-parallel
// scheduling: deciding how many processors to allocate to each moldable
// task (§II-C of the paper).
//
// # The CPA family
//
// All three procedures share one refinement loop. Every real task starts
// with a single processor; the loop then compares two lower bounds of the
// makespan:
//
//   - C∞, the critical-path length — the longest path through the DAG
//     under the current per-task execution times T(t, Np(t)); and
//   - W, the average area — the total work Σ ω(t, Np(t)) spread over the
//     processor budget.
//
// While C∞ > W the schedule is path-dominated, so the loop grants one
// more processor to the critical-path task whose execution time shrinks
// the most, and repeats. The procedures differ only in the area
// denominator and in an optional per-level budget:
//
//   - CPA (Radulescu & van Gemund) uses W = Σ ω_i / P. On clusters much
//     larger than the application this denominator makes W tiny, the loop
//     runs long, and allocations balloon until tasks monopolize the
//     machine — the large-cluster bias the successors fix.
//
//   - HCPA (N'takpé, Suter & Casanova) keeps the loop but corrects the
//     area: we reconstruct the documented intent as W' = Σ ω_i / min(P, N)
//     (the exact formula of reference [7] is not reproduced in the paper).
//     On small clusters (P ≤ N) this is exactly CPA; on large ones the
//     area is larger, the loop stops earlier and allocations stay
//     moderate, preserving task parallelism. Options.LevelCap additionally
//     bounds each task by ⌈P / width(level)⌉, our reconstruction of the
//     "self-constrained" allocation moderation; see docs/ARCHITECTURE.md, "Design reconstructions".
//
//   - MCPA (Bansal, Kumar & Singh) additionally constrains each precedence
//     level to fit on the cluster (Σ allocations within a level ≤ P),
//     which the paper notes is only applicable to very regular DAGs.
//
// # Refinement invariants
//
// The loop's decisions depend on floating-point comparisons, so any
// optimized implementation must preserve these invariants exactly — they
// are what the incremental engine (incremental.go) maintains and what the
// oracle tests assert against the original full-rewalk procedure
// (reference.go):
//
//  1. Levels follow the recurrences bl(t) = T(t) + max over successors of
//     (edge + bl(succ)) and tl(t) = max over predecessors of (tl(pred) +
//     T(pred) + edge), evaluated with the same operand order as
//     dag.BottomLevels/TopLevels. A single-processor grant changes T of
//     one task only, so bl may change only on that task's ancestors and
//     tl only on its descendants (the "cone"); everything outside keeps
//     bit-identical values.
//  2. C∞ = max bl(t), and a task is a refinement candidate iff
//     tl(t) + bl(t) ≥ C∞ − C∞·1e-9, i.e. it lies on a critical path
//     within relative tolerance.
//  3. Candidates are examined in ascending task ID; the grant goes to the
//     largest gain T(t, Np) − T(t, Np+1), ties resolved toward the
//     smaller current allocation, remaining ties toward the
//     earlier-scanned task.
//  4. The loop stops when C∞ ≤ W (folded left-to-right over task IDs,
//     virtual tasks skipped) or when no candidate can improve: every
//     critical-path task is at the cluster size, at its level cap, out of
//     MCPA level budget, or gains nothing.
//  5. Virtual connector tasks have zero cost, participate in the level
//     recurrences, and never receive processors.
//
// Invariant 1 bounds the per-grant repair work to the affected cone;
// invariants 2–4 are what the engine's lazy max-heaps and cached work
// prefix reproduce without rescanning the graph.
package alloc
