package alloc

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/obs"
	"repro/internal/platform"
)

// Method selects the allocation procedure.
type Method int

const (
	CPA Method = iota
	HCPA
	MCPA
)

// String implements fmt.Stringer. Out-of-range values render as
// "Method(n)", matching core.Strategy's behaviour for invalid enums.
func (m Method) String() string {
	switch m {
	case CPA:
		return "cpa"
	case HCPA:
		return "hcpa"
	case MCPA:
		return "mcpa"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options parameterizes Compute.
type Options struct {
	Method Method
	// IncludeEdgeCosts folds contention-free edge-time estimates into the
	// critical path during allocation. The paper's algorithms do NOT do
	// this ("most of these algorithms do not take data redistributions
	// into account during the allocation step as it is difficult to
	// accurately estimate the redistribution times before tasks are
	// actually mapped", §I) — the default is therefore false, and the
	// flag exists as an ablation the benches exercise.
	IncludeEdgeCosts bool

	// LevelCap bounds each task's allocation by ⌈P / width(level)⌉ so
	// that every precedence level can execute concurrently. This is the
	// allocation-limiting behaviour HCPA's modified area aims for
	// (N'takpé & Suter's "self-constrained" allocations) and is part of
	// our HCPA reconstruction; see docs/ARCHITECTURE.md, "Design reconstructions".
	LevelCap bool

	// Obs, when non-nil, receives the refinement loop's counters (grants,
	// cone repairs, heap-repair strategy) added on top of its current
	// values. The loop accumulates into locals and adds once at the end,
	// so the hot path never writes through the pointer.
	Obs *obs.Counters

	// Tracer, when non-nil, records one span per refinement grant
	// (category "alloc", Arg1 = granted task, Arg2 = repair cone size).
	Tracer *obs.Tracer
}

// DefaultOptions returns the configuration used throughout the evaluation:
// HCPA with a computation-only critical path and level-capped allocations
// (our reconstruction of HCPA's allocation moderation; docs/ARCHITECTURE.md, "Design reconstructions").
func DefaultOptions() Options {
	return Options{Method: HCPA, IncludeEdgeCosts: false, LevelCap: true}
}

// Compute returns the processor allocation of every task (0 for virtual
// tasks). The graph must be validated; the returned slice has length
// g.N().
//
// The refinement loop runs on the incremental engine of incremental.go,
// which maintains levels, the critical-path candidate set and the work
// area under each single-processor grant instead of re-walking the DAG.
// Its output is byte-identical to the original full-rewalk procedure,
// which reference.go preserves as the testing oracle.
func Compute(g *dag.Graph, costs *moldable.Costs, cl *platform.Cluster, opts Options) []int {
	return computeIncremental(g, costs, cl, opts)
}

// OneEach returns the trivial allocation of one processor per real task,
// useful as a degenerate baseline in tests and ablations.
func OneEach(g *dag.Graph) []int {
	a := make([]int, g.N())
	for t := range g.Tasks {
		if !g.Tasks[t].Virtual {
			a[t] = 1
		}
	}
	return a
}
