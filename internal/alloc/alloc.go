// Package alloc implements the first step of two-step mixed-parallel
// scheduling: deciding how many processors to allocate to each moldable
// task (§II-C of the paper).
//
// CPA (Radulescu & van Gemund) balances two lower bounds of the makespan:
// the critical-path length C∞ and the average area W = Σ ω_i / P. Starting
// from one processor per task, it repeatedly gives one more processor to
// the critical-path task that benefits most, until C∞ ≤ W.
//
// HCPA (N'takpé, Suter & Casanova) keeps the same loop but modifies the
// average-area definition to remove the bias induced by large clusters.
// The exact formula of reference [7] is not reproduced in the paper; we
// reconstruct the documented intent by capping the denominator at the
// number of tasks: W' = Σ ω_i / min(P, N). On small clusters (P ≤ N) this
// is exactly CPA; on large ones the area is larger, the loop stops earlier
// and allocations stay moderate, preserving task parallelism — the
// behaviour [7] reports. See DESIGN.md §3 for the full rationale.
//
// MCPA (Bansal, Kumar & Singh) additionally constrains each precedence
// level to fit on the cluster (Σ allocations within a level ≤ P), which the
// paper notes is only applicable to very regular DAGs.
package alloc

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// Method selects the allocation procedure.
type Method int

const (
	CPA Method = iota
	HCPA
	MCPA
)

// String implements fmt.Stringer. Out-of-range values render as
// "Method(n)", matching core.Strategy's behaviour for invalid enums.
func (m Method) String() string {
	switch m {
	case CPA:
		return "cpa"
	case HCPA:
		return "hcpa"
	case MCPA:
		return "mcpa"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options parameterizes Compute.
type Options struct {
	Method Method
	// IncludeEdgeCosts folds contention-free edge-time estimates into the
	// critical path during allocation. The paper's algorithms do NOT do
	// this ("most of these algorithms do not take data redistributions
	// into account during the allocation step as it is difficult to
	// accurately estimate the redistribution times before tasks are
	// actually mapped", §I) — the default is therefore false, and the
	// flag exists as an ablation the benches exercise.
	IncludeEdgeCosts bool

	// LevelCap bounds each task's allocation by ⌈P / width(level)⌉ so
	// that every precedence level can execute concurrently. This is the
	// allocation-limiting behaviour HCPA's modified area aims for
	// (N'takpé & Suter's "self-constrained" allocations) and is part of
	// our HCPA reconstruction; see DESIGN.md §3.
	LevelCap bool
}

// DefaultOptions returns the configuration used throughout the evaluation:
// HCPA with a computation-only critical path and level-capped allocations
// (our reconstruction of HCPA's allocation moderation; DESIGN.md §3).
func DefaultOptions() Options {
	return Options{Method: HCPA, IncludeEdgeCosts: false, LevelCap: true}
}

// Compute returns the processor allocation of every task (0 for virtual
// tasks). The graph must be validated; the returned slice has length
// g.N().
func Compute(g *dag.Graph, costs *moldable.Costs, cl *platform.Cluster, opts Options) []int {
	n := g.N()
	allocs := make([]int, n)
	real := 0
	for t := 0; t < n; t++ {
		if !g.Tasks[t].Virtual {
			allocs[t] = 1
			real++
		}
	}
	if real == 0 {
		return allocs
	}

	denom := float64(cl.P)
	if opts.Method == HCPA || opts.Method == MCPA {
		if real < cl.P {
			denom = float64(real)
		}
	}

	edgeCost := func(e int) float64 { return 0 }
	if opts.IncludeEdgeCosts {
		beta, lat := cl.LinkBandwidth, cl.LinkLatency
		edgeCost = func(e int) float64 {
			b := g.Edges[e].Bytes
			if b <= 0 {
				return 0
			}
			return b/beta + 2*lat
		}
	}
	taskCost := func(t int) float64 {
		if g.Tasks[t].Virtual {
			return 0
		}
		return costs.Time(t, allocs[t])
	}

	// Per-level processor budget for MCPA, and per-task caps for the
	// level-aware HCPA variant.
	var levelOf []int
	var levelUse []int
	taskCap := make([]int, n)
	for t := range taskCap {
		taskCap[t] = cl.P
	}
	if opts.Method == MCPA || opts.LevelCap {
		lvl, nl := g.Levels()
		levelOf = lvl
		levelUse = make([]int, nl)
		width := make([]int, nl)
		for t := 0; t < n; t++ {
			if !g.Tasks[t].Virtual {
				levelUse[lvl[t]]++
				width[lvl[t]]++
			}
		}
		if opts.LevelCap {
			for t := 0; t < n; t++ {
				if g.Tasks[t].Virtual || width[lvl[t]] == 0 {
					continue
				}
				c := (cl.P + width[lvl[t]] - 1) / width[lvl[t]]
				if c < 1 {
					c = 1
				}
				taskCap[t] = c
			}
		}
	}

	totalWork := func() float64 {
		w := 0.0
		for t := 0; t < n; t++ {
			if !g.Tasks[t].Virtual {
				w += costs.Work(t, allocs[t])
			}
		}
		return w
	}

	const rel = 1e-9
	for {
		// One bottom-level and one top-level pass per iteration give both
		// C∞ and the critical-path membership.
		bl := g.BottomLevels(taskCost, edgeCost)
		cInf := 0.0
		for _, v := range bl {
			if v > cInf {
				cInf = v
			}
		}
		area := totalWork() / denom
		if cInf <= area {
			break
		}
		tl := g.TopLevels(taskCost, edgeCost)
		tol := cInf * rel
		onCP := make([]bool, n)
		for t := 0; t < n; t++ {
			onCP[t] = tl[t]+bl[t] >= cInf-tol
		}
		// Give one processor to the critical-path task that benefits the
		// most from the increase (largest execution-time reduction).
		best, bestGain := -1, 0.0
		for t := 0; t < n; t++ {
			if !onCP[t] || g.Tasks[t].Virtual || allocs[t] >= cl.P || allocs[t] >= taskCap[t] {
				continue
			}
			if opts.Method == MCPA && levelUse[levelOf[t]] >= cl.P {
				continue
			}
			gain := costs.Time(t, allocs[t]) - costs.Time(t, allocs[t]+1)
			if gain > bestGain || (gain == bestGain && best >= 0 && allocs[t] < allocs[best]) {
				best, bestGain = t, gain
			}
		}
		if best < 0 || bestGain <= 0 {
			break // critical path saturated; no further benefit possible
		}
		allocs[best]++
		if opts.Method == MCPA {
			levelUse[levelOf[best]]++
		}
	}
	return allocs
}

// OneEach returns the trivial allocation of one processor per real task,
// useful as a degenerate baseline in tests and ablations.
func OneEach(g *dag.Graph) []int {
	a := make([]int, g.N())
	for t := range g.Tasks {
		if !g.Tasks[t].Virtual {
			a[t] = 1
		}
	}
	return a
}
