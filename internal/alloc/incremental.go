package alloc

import (
	"repro/internal/dag"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// This file is the incremental allocation engine behind Compute. The
// CPA-family refinement loop repeats thousands of single-processor grants,
// and each grant only changes the execution time of ONE task — yet the
// original procedure (reference.go) re-walked the entire DAG per step:
// full bottom- and top-level passes, a full work re-summation and a full
// candidate scan, each calling back into the Amdahl cost model. The engine
// replaces every one of those O(V+E) passes with state that is maintained
// under the point update:
//
//   - levels    — a dag.LevelTracker repairs bottom/top levels over the
//     ancestor/descendant cone of the granted task only;
//   - C∞        — the max over the entry tasks' bottom levels: along any
//     predecessor chain the bottom level is non-decreasing (levels add
//     non-negative costs, and IEEE round-to-nearest keeps fl(a+b) ≥ a for
//     b ≥ 0), so an entry always attains the maximum — no scan needed;
//   - candidates — a position-mapped max-heap over tl(t)+bl(t) with one
//     entry per task; every critical-path task sits within tolerance of
//     C∞, so walking the heap's array from the root and descending only
//     into subtrees above the threshold enumerates the candidate set
//     without mutating the heap. Grants only ever shrink levels (costs
//     decrease, and max/plus are monotone even in float arithmetic), so a
//     key update is a decrease-key sift-down that usually stops at the
//     first child comparison;
//   - work area — per-task work values with a cached prefix fold,
//     re-summed only from the index of the task whose allocation grew;
//   - cost model — a moldable.Table memoizes T(t, p) lookups, which the
//     candidate scan hits with the same arguments every step.
//
// Equivalence with the reference is exact, not approximate: every float
// that feeds a decision (C∞, the area, tl+bl, the tolerance, the gains) is
// produced by the same operations on the same operands — or is provably
// the same value, as for C∞ — so all comparisons branch identically and
// the returned allocations are byte-identical. TestAllocOracleEquivalence
// and the golden digests in golden_test.go enforce this.

// candHeap is a position-mapped binary max-heap with exactly one entry
// per task, supporting in-place key updates. key and task are indexed by
// heap slot; slot maps a task back to its current position. Readers may
// traverse the arrays directly (the candidate walk below does), because
// every entry is always current.
type candHeap struct {
	key  []float64
	task []int
	slot []int
}

func newCandHeap(keys []float64) *candHeap {
	n := len(keys)
	h := &candHeap{
		key:  append([]float64(nil), keys...),
		task: make([]int, n),
		slot: make([]int, n),
	}
	for t := 0; t < n; t++ {
		h.task[t] = t
		h.slot[t] = t
	}
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	return h
}

func (h *candHeap) swap(i, j int) {
	h.key[i], h.key[j] = h.key[j], h.key[i]
	h.task[i], h.task[j] = h.task[j], h.task[i]
	h.slot[h.task[i]] = i
	h.slot[h.task[j]] = j
}

func (h *candHeap) siftDown(i int) {
	n := len(h.key)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.key[l] > h.key[best] {
			best = l
		}
		if r < n && h.key[r] > h.key[best] {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *candHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.key[i] <= h.key[p] {
			return
		}
		h.swap(i, p)
		i = p
	}
}

// update sets task t's key and restores the heap order. Refinement only
// ever decreases keys (the sift-down usually stops at the first child
// comparison), but increases are handled too for robustness.
func (h *candHeap) update(t int, k float64) {
	i := h.slot[t]
	old := h.key[i]
	h.key[i] = k
	if k < old {
		h.siftDown(i)
	} else if k > old {
		h.siftUp(i)
	}
}

// set writes task t's key without restoring the heap order; the caller
// must run heapify before the next read. Used for bulk cone updates,
// where one near-linear heapify beats per-entry sift cascades through
// regions of near-equal keys.
func (h *candHeap) set(t int, k float64) {
	h.key[h.slot[t]] = k
}

// heapify restores the heap order after a batch of set calls. On an
// almost-ordered array most sift-downs exit on the first comparison, so
// the pass costs ~1.5n comparisons independent of how many keys moved.
func (h *candHeap) heapify() {
	for i := len(h.key)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// computeIncremental is the engine entry point; Compute delegates to it.
func computeIncremental(g *dag.Graph, costs *moldable.Costs, cl *platform.Cluster, opts Options) []int {
	n := g.N()
	allocs := make([]int, n)
	real := 0
	for t := 0; t < n; t++ {
		if !g.Tasks[t].Virtual {
			allocs[t] = 1
			real++
		}
	}
	if real == 0 {
		return allocs
	}

	denom := float64(cl.P)
	if opts.Method == HCPA || opts.Method == MCPA {
		if real < cl.P {
			denom = float64(real)
		}
	}

	// Per-edge communication estimates are independent of allocations, so
	// they are computed once instead of through a closure per level pass.
	edge := make([]float64, len(g.Edges))
	if opts.IncludeEdgeCosts {
		beta, lat := cl.LinkBandwidth, cl.LinkLatency
		for e := range g.Edges {
			if b := g.Edges[e].Bytes; b > 0 {
				edge[e] = b/beta + 2*lat
			}
		}
	}

	// Per-level processor budget for MCPA, and per-task caps for the
	// level-aware HCPA variant — identical to the reference walk.
	var levelOf []int
	var levelUse []int
	taskCap := make([]int, n)
	for t := range taskCap {
		taskCap[t] = cl.P
	}
	if opts.Method == MCPA || opts.LevelCap {
		lvl, nl := g.Levels()
		levelOf = lvl
		levelUse = make([]int, nl)
		width := make([]int, nl)
		for t := 0; t < n; t++ {
			if !g.Tasks[t].Virtual {
				levelUse[lvl[t]]++
				width[lvl[t]]++
			}
		}
		if opts.LevelCap {
			for t := 0; t < n; t++ {
				if g.Tasks[t].Virtual || width[lvl[t]] == 0 {
					continue
				}
				c := (cl.P + width[lvl[t]] - 1) / width[lvl[t]]
				if c < 1 {
					c = 1
				}
				taskCap[t] = c
			}
		}
	}

	tb := moldable.NewTable(costs)

	// Initial per-task execution times (the tracker takes ownership of the
	// slice and mutates it through SetTaskCost).
	execTime := make([]float64, n)
	for t := 0; t < n; t++ {
		if !g.Tasks[t].Virtual {
			execTime[t] = tb.Time(t, allocs[t])
		}
	}
	lt := dag.NewLevelTracker(g, execTime, edge)
	if lt == nil {
		// Cyclic graph: the reference walk sees nil level slices, takes
		// C∞ = 0 ≤ area and stops at one processor per task.
		return allocs
	}
	entries := g.Entries()

	// Work area with a cached prefix fold: workPrefix[i] is the running
	// sum after folding tasks 0..i-1 left to right (virtual tasks
	// contribute nothing, exactly like the reference's skip), so the total
	// only needs re-folding from the single task whose allocation grew.
	workOf := make([]float64, n)
	workPrefix := make([]float64, n+1)
	for t := 0; t < n; t++ {
		if !g.Tasks[t].Virtual {
			workOf[t] = tb.Work(t, allocs[t])
		}
	}
	refoldWork := func(from int) {
		s := workPrefix[from]
		for t := from; t < n; t++ {
			if !g.Tasks[t].Virtual {
				s += workOf[t]
			}
			workPrefix[t+1] = s
		}
	}
	refoldWork(0)

	// Cached per-task grant gains T(t, Np) − T(t, Np+1): the selection
	// below reads them as plain loads, and a gain only changes when the
	// task's own allocation grows.
	gainOf := make([]float64, n)
	for t := 0; t < n; t++ {
		if !g.Tasks[t].Virtual && allocs[t] < cl.P {
			gainOf[t] = tb.Time(t, allocs[t]) - tb.Time(t, allocs[t]+1)
		}
	}

	// Eligibility bitmap: a task leaves the candidate pool for good when
	// it is virtual, saturated (cluster size or level cap), or — under
	// MCPA — when its whole level's budget is exhausted. All of these are
	// one-way transitions, so the selection tests a single byte.
	eligible := make([]bool, n)
	for t := 0; t < n; t++ {
		eligible[t] = !g.Tasks[t].Virtual && allocs[t] < cl.P && allocs[t] < taskCap[t]
	}
	var levelTasks [][]int
	if opts.Method == MCPA {
		levelTasks = make([][]int, len(levelUse))
		for t := 0; t < n; t++ {
			if !g.Tasks[t].Virtual {
				levelTasks[levelOf[t]] = append(levelTasks[levelOf[t]], t)
			}
		}
		for l, use := range levelUse {
			if use >= cl.P {
				for _, t := range levelTasks[l] {
					eligible[t] = false
				}
			}
		}
	}

	// The candidate priority structure over tl(t) + bl(t).
	pathKey := make([]float64, n)
	for t := 0; t < n; t++ {
		pathKey[t] = lt.TopLevel(t) + lt.BottomLevel(t)
	}
	ph := newCandHeap(pathKey)
	dfs := make([]int, 0, n)

	// Observability: accumulate into locals and fold into opts.Obs once
	// after the loop, so granting stays free of pointer indirection.
	var nGrants, nRepairs, nConeTasks, nSifts, nHeapifies uint64
	tracer := opts.Tracer

	const rel = 1e-9
	for {
		// C∞ = max bottom level, attained at an entry task (see the file
		// comment); the fold mirrors the reference's max-from-zero.
		cInf := 0.0
		for _, t := range entries {
			if v := lt.BottomLevel(t); v > cInf {
				cInf = v
			}
		}
		area := workPrefix[n] / denom
		if cInf <= area {
			break
		}
		tol := cInf * rel

		// Critical-path candidates: every task with tl+bl within tolerance
		// of C∞. The heap array is walked from the root, descending only
		// into subtrees at or above the threshold (entries are always
		// current, so no staleness checks). Selecting the grant inline
		// reproduces the reference's ascending-ID scan: maximize the gain,
		// break ties toward the smaller current allocation, then the
		// smaller task ID.
		best, bestGain := -1, 0.0
		thr := cInf - tol
		dfs = dfs[:0]
		if len(ph.key) > 0 && ph.key[0] >= thr {
			dfs = append(dfs, 0)
		}
		for len(dfs) > 0 {
			i := dfs[len(dfs)-1]
			dfs = dfs[:len(dfs)-1]
			if l := 2*i + 1; l < len(ph.key) && ph.key[l] >= thr {
				dfs = append(dfs, l)
			}
			if r := 2*i + 2; r < len(ph.key) && ph.key[r] >= thr {
				dfs = append(dfs, r)
			}
			t := ph.task[i]
			if !eligible[t] {
				continue
			}
			gain := gainOf[t]
			if gain > bestGain || (gain == bestGain && best >= 0 &&
				(allocs[t] < allocs[best] || (allocs[t] == allocs[best] && t < best))) {
				best, bestGain = t, gain
			}
		}
		if best < 0 || bestGain <= 0 {
			break // critical path saturated; no further benefit possible
		}

		spanStart := tracer.Begin()
		allocs[best]++
		nGrants++
		if opts.Method == MCPA {
			l := levelOf[best]
			levelUse[l]++
			if levelUse[l] >= cl.P {
				for _, t := range levelTasks[l] {
					eligible[t] = false
				}
			}
		}
		if allocs[best] >= cl.P || allocs[best] >= taskCap[best] {
			eligible[best] = false
		}
		newTime := tb.Time(best, allocs[best])
		if allocs[best] < cl.P {
			gainOf[best] = newTime - tb.Time(best, allocs[best]+1)
		} else {
			gainOf[best] = 0
		}
		workOf[best] = tb.Work(best, allocs[best])
		refoldWork(best)
		changed := lt.SetTaskCost(best, newTime)
		if len(changed) > 0 {
			nRepairs++
		}
		nConeTasks += uint64(len(changed))
		if len(changed)*8 > n {
			// Large cone: one near-linear heapify beats per-entry sift
			// cascades through the near-equal critical-path keys.
			for _, t := range changed {
				pathKey[t] = lt.TopLevel(t) + lt.BottomLevel(t)
				ph.set(t, pathKey[t])
			}
			ph.heapify()
			nHeapifies++
		} else {
			for _, t := range changed {
				pathKey[t] = lt.TopLevel(t) + lt.BottomLevel(t)
				ph.update(t, pathKey[t])
			}
			nSifts += uint64(len(changed))
		}
		tracer.End(spanStart, "alloc", "grant", int64(best), int64(len(changed)))
	}
	if opts.Obs != nil {
		opts.Obs.AllocGrants += nGrants
		opts.Obs.ConeRepairs += nRepairs
		opts.Obs.ConeTasks += nConeTasks
		opts.Obs.HeapSifts += nSifts
		opts.Obs.BulkHeapifies += nHeapifies
	}
	return allocs
}
