package alloc

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// allocDigest hashes an allocation vector so two allocations share a
// digest iff they are identical, mirroring core's scheduleDigest.
func allocDigest(a []int) string {
	h := fnv.New64a()
	for _, v := range a {
		h.Write([]byte(strconv.Itoa(v)))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func goldenAllocGraph(class string) *dag.Graph {
	switch class {
	case "layered":
		return gen.Random(gen.RandomParams{
			N: 50, Width: 0.5, Regularity: 0.8, Density: 0.5, Layered: true, Seed: 11})
	case "irregular":
		return gen.Random(gen.RandomParams{
			N: 50, Width: 0.8, Regularity: 0.2, Density: 0.2, Jump: 2, Seed: 23})
	case "fft":
		return gen.FFT(8, 5)
	case "strassen":
		return gen.Strassen(17)
	}
	panic("unknown golden graph class " + class)
}

// TestAllocGolden pins the exact allocations produced on a cross-section
// of clusters × graph classes × methods. All digests were recorded from
// the pre-incremental full-rewalk allocator: any divergence means an
// "optimization" changed allocation decisions, which is a bug. The same
// graph classes feed core's schedule goldens, so an allocation regression
// is caught here before it cascades into mapping digests.
func TestAllocGolden(t *testing.T) {
	cases := []struct {
		cl    *platform.Cluster
		class string
		opts  Options
		want  string
	}{
		{platform.Chti(), "layered", Options{Method: CPA}, "ff1ddc55eee03f95"},
		{platform.Chti(), "strassen", Options{Method: MCPA, IncludeEdgeCosts: true}, "d2c696f1d8c9586f"},
		{platform.Grillon(), "layered", DefaultOptions(), "b6914ef5ad1c26bf"},
		{platform.Grillon(), "irregular", Options{Method: CPA, IncludeEdgeCosts: true}, "674d787fa6300163"},
		{platform.Grelon(), "fft", DefaultOptions(), "0cb4f9064b1a7776"},
		{platform.Grelon(), "irregular", Options{Method: MCPA}, "53486b1a9d5ada3a"},
		{platform.Grelon(), "strassen", Options{Method: HCPA}, "421dd3cfb3469bde"},
		{platform.Big512(), "layered", DefaultOptions(), "42378b2a4198b8bd"},
		{platform.Big512(), "fft", Options{Method: CPA}, "05facf03433c9b31"},
		// The last two digests coincide with the Grelon rows above: with
		// ~50 real tasks the HCPA/MCPA area denominator is min(P, N) = N on
		// both clusters and no cap binds, so the refinement makes the same
		// grants — the digest equality is real, not a copy-paste slip.
		{platform.Big1024(), "irregular", DefaultOptions(), "53486b1a9d5ada3a"},
		{platform.Big1024(), "strassen", Options{Method: MCPA, LevelCap: true}, "421dd3cfb3469bde"},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/%s/%v", c.cl.Name, c.class, c.opts.Method), func(t *testing.T) {
			g := goldenAllocGraph(c.class)
			costs := moldable.NewCosts(g, c.cl.SpeedGFlops)
			a := Compute(g, costs, c.cl, c.opts)
			if got := allocDigest(a); got != c.want {
				t.Errorf("allocation digest = %s, want %s (allocation decisions changed)", got, c.want)
			}
			if ref := allocDigest(ComputeReference(g, costs, c.cl, c.opts)); ref != c.want {
				t.Errorf("reference digest = %s, want %s (the golden was recorded from the reference walk)", ref, c.want)
			}
		})
	}
}
