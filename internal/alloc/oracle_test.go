package alloc

import (
	"testing"

	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
)

// TestAllocOracleEquivalence pits the incremental engine against the
// preserved full-rewalk reference on randomized graphs spanning every
// method, both option flags, all paper clusters and the production-scale
// presets. The contract is byte-identical allocations — the engine must
// reproduce every float comparison of the reference walk exactly, not
// merely approximate it (same methodology as the PR 2 estimator overhaul).
func TestAllocOracleEquivalence(t *testing.T) {
	clusters := []*platform.Cluster{
		platform.Chti(), platform.Grillon(), platform.Grelon(),
		platform.Big512(), platform.Big1024(),
	}
	type shape struct {
		n       int
		width   float64
		reg     float64
		dens    float64
		jump    int
		layered bool
	}
	shapes := []shape{
		{25, 0.2, 0.2, 0.2, 1, true},
		{50, 0.5, 0.8, 0.5, 1, true},
		{100, 0.8, 0.8, 0.8, 1, true},
		{50, 0.5, 0.2, 0.2, 2, false},
		{100, 0.8, 0.2, 0.8, 4, false},
	}
	opts := []Options{
		{Method: CPA},
		{Method: CPA, IncludeEdgeCosts: true},
		{Method: HCPA},
		{Method: HCPA, IncludeEdgeCosts: true, LevelCap: true},
		{Method: HCPA, LevelCap: true},
		{Method: MCPA},
		{Method: MCPA, IncludeEdgeCosts: true},
		{Method: MCPA, LevelCap: true},
	}
	for ci, cl := range clusters {
		for si, sh := range shapes {
			for seed := int64(0); seed < 3; seed++ {
				g := gen.Random(gen.RandomParams{
					N: sh.n, Width: sh.width, Regularity: sh.reg,
					Density: sh.dens, Jump: sh.jump, Layered: sh.layered,
					Seed: seed*31 + int64(ci*7+si),
				})
				costs := moldable.NewCosts(g, cl.SpeedGFlops)
				for oi, o := range opts {
					want := ComputeReference(g, costs, cl, o)
					got := Compute(g, costs, cl, o)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s shape %d seed %d opts %d (%+v): alloc[%d] = %d, want %d",
								cl.Name, si, seed, oi, o, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestAllocOracleEquivalenceStructured covers the regular generators whose
// graphs have the widest levels (FFT) and the deepest chains of identical
// tasks (Strassen) — the two extremes for the cone-repair pruning.
func TestAllocOracleEquivalenceStructured(t *testing.T) {
	clusters := []*platform.Cluster{platform.Grelon(), platform.Big1024()}
	graphs := map[string]func() *dag.Graph{
		"fft16":    func() *dag.Graph { return gen.FFT(16, 3) },
		"strassen": func() *dag.Graph { return gen.Strassen(9) },
	}
	for _, cl := range clusters {
		for name, build := range graphs {
			g := build()
			costs := moldable.NewCosts(g, cl.SpeedGFlops)
			for _, m := range []Method{CPA, HCPA, MCPA} {
				o := Options{Method: m, LevelCap: m == HCPA}
				want := ComputeReference(g, costs, cl, o)
				got := Compute(g, costs, cl, o)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%s/%s: alloc[%d] = %d, want %d", cl.Name, name, m, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestAllocDegenerateGraphs checks the corner cases the engine must not
// mishandle: an all-virtual graph (no refinement at all) and a single
// real task (the whole DAG is the critical path).
func TestAllocDegenerateGraphs(t *testing.T) {
	cl := platform.Grillon()

	gv := dag.NewGraph(2, 1)
	gv.AddVirtual("entry")
	gv.AddVirtual("exit")
	gv.AddEdge(0, 1, 0)
	costs := moldable.NewCosts(gv, cl.SpeedGFlops)
	for i, v := range Compute(gv, costs, cl, DefaultOptions()) {
		if v != 0 {
			t.Errorf("all-virtual: alloc[%d] = %d, want 0", i, v)
		}
	}

	gs := dag.NewGraph(1, 0)
	gs.AddTask(dag.Task{Name: "solo", M: 50e6, A: 256, Alpha: 0.05})
	costs = moldable.NewCosts(gs, cl.SpeedGFlops)
	want := ComputeReference(gs, costs, cl, DefaultOptions())
	got := Compute(gs, costs, cl, DefaultOptions())
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("single-task: alloc[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
