// Command dagger generates mixed-parallel application task graphs (the
// workloads of Table III) and writes them as Graphviz DOT or JSON — a
// reimplementation of the paper's DAG generation program (reference [12]).
//
// Usage:
//
//	dagger -app irregular -n 50 -width 0.5 -density 0.2 -jump 2 -format dot
//	dagger -app fft -k 16 -format json > fft16.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/dag"
	"repro/internal/gen"
)

func main() {
	app := flag.String("app", "layered", "application kind: layered, irregular, fft, strassen")
	n := flag.Int("n", 25, "computation tasks (random kinds)")
	k := flag.Int("k", 8, "FFT data points (power of two)")
	width := flag.Float64("width", 0.5, "width parameter in (0,1]")
	density := flag.Float64("density", 0.2, "density parameter in (0,1]")
	regularity := flag.Float64("regularity", 0.8, "regularity parameter in (0,1]")
	jump := flag.Int("jump", 1, "jump edge length (irregular): 1, 2 or 4")
	seed := flag.Int64("seed", 1, "generator seed")
	format := flag.String("format", "dot", "output format: dot or json")
	flag.Parse()

	var g *dag.Graph
	switch *app {
	case "layered":
		g = gen.Random(gen.RandomParams{N: *n, Width: *width, Density: *density, Regularity: *regularity, Layered: true, Seed: *seed})
	case "irregular":
		g = gen.Random(gen.RandomParams{N: *n, Width: *width, Density: *density, Regularity: *regularity, Jump: *jump, Seed: *seed})
	case "fft":
		g = gen.FFT(*k, *seed)
	case "strassen":
		g = gen.Strassen(*seed)
	default:
		fmt.Fprintf(os.Stderr, "dagger: unknown application kind %q\n", *app)
		os.Exit(1)
	}

	switch *format {
	case "dot":
		if err := g.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dagger:", err)
			os.Exit(1)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(g); err != nil {
			fmt.Fprintln(os.Stderr, "dagger:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "dagger: unknown format %q\n", *format)
		os.Exit(1)
	}
}
