// Command dagger generates mixed-parallel application task graphs (the
// workloads of Table III) and writes them as Graphviz DOT or JSON — a
// reimplementation of the paper's DAG generation program (reference [12]),
// built on the public rats API.
//
// Usage:
//
//	dagger -app irregular -n 50 -width 0.5 -density 0.2 -jump 2 -format dot
//	dagger -app fft -k 16 -format json > fft16.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/rats"
)

func main() {
	app := flag.String("app", "layered", "application kind: layered, irregular, fft, strassen")
	n := flag.Int("n", 25, "computation tasks (random kinds)")
	k := flag.Int("k", 8, "FFT data points (power of two)")
	width := flag.Float64("width", 0.5, "width parameter in (0,1]")
	density := flag.Float64("density", 0.2, "density parameter in (0,1]")
	regularity := flag.Float64("regularity", 0.8, "regularity parameter in (0,1]")
	jump := flag.Int("jump", 1, "jump edge length (irregular): 1, 2 or 4")
	seed := flag.Int64("seed", 1, "generator seed")
	format := flag.String("format", "dot", "output format: dot or json")
	flag.Parse()

	var d *rats.DAG
	switch *app {
	case "layered":
		d = rats.Random(rats.RandomSpec{N: *n, Width: *width, Density: *density,
			Regularity: *regularity, Layered: true, Seed: *seed})
	case "irregular":
		d = rats.Random(rats.RandomSpec{N: *n, Width: *width, Density: *density,
			Regularity: *regularity, Jump: *jump, Seed: *seed})
	case "fft":
		d = rats.FFT(*k, *seed)
	case "strassen":
		d = rats.Strassen(*seed)
	default:
		fmt.Fprintf(os.Stderr, "dagger: unknown application kind %q\n", *app)
		os.Exit(1)
	}
	if err := d.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "dagger:", err)
		os.Exit(1)
	}

	switch *format {
	case "dot":
		if err := d.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "dagger:", err)
			os.Exit(1)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fmt.Fprintln(os.Stderr, "dagger:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "dagger: unknown format %q\n", *format)
		os.Exit(1)
	}
}
