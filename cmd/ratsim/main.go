// Command ratsim schedules one mixed-parallel application on one simulated
// cluster through the public rats API and reports the outcome of every
// algorithm: HCPA baseline, RATS-delta and RATS-time-cost.
//
// Usage:
//
//	ratsim [-app KIND] [-n N] [-k K] [-width W] [-density D] [-regularity R]
//	       [-jump J] [-seed S] [-cluster NAME] [-solver NAME] [-profile NAME]
//	       [-align NAME] [-gantt] [-algo NAME] [-json] [-counters]
//
// -profile picks the speed profile ("fast", the default, or "reference"
// for the exact pipeline); -align, when given, overrides the profile's
// alignment mode.
//
// -counters prints the run's engine counter rates per algorithm (estimator
// memo hits, candidate dedup skips, replay solver regimes). With -trace, a
// second Chrome trace file per algorithm (<prefix>-<name>-sched.json)
// records the scheduler's own execution — allocation grants, per-task
// placements and pipeline phases — next to the simulated application
// timeline.
//
// Examples:
//
//	ratsim -app fft -k 8 -cluster grelon -gantt
//	ratsim -app irregular -n 50 -width 0.5 -density 0.2 -cluster grillon
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/rats"
)

func main() {
	app := flag.String("app", "layered", "application kind: layered, irregular, fft, strassen")
	n := flag.Int("n", 25, "computation tasks (random kinds)")
	k := flag.Int("k", 8, "FFT data points (power of two)")
	width := flag.Float64("width", 0.5, "DAG width parameter (random kinds)")
	density := flag.Float64("density", 0.2, "DAG density parameter")
	regularity := flag.Float64("regularity", 0.8, "DAG regularity parameter")
	jump := flag.Int("jump", 1, "jump edge length (irregular)")
	seed := flag.Int64("seed", 1, "generator seed")
	clusterName := flag.String("cluster", "grillon", "cluster: "+strings.Join(rats.ClusterNames(), ", "))
	gantt := flag.Bool("gantt", false, "print a Gantt chart per algorithm")
	algoFilter := flag.String("algo", "", "run only one algorithm: hcpa, delta, time-cost")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file per algorithm (prefix)")
	solverName := flag.String("solver", "flownet", "replay rate solver: flownet (incremental) or maxmin (reference)")
	alignName := flag.String("align", "", "receiver rank alignment: hungarian, greedy, none or auto (default: the profile's choice)")
	profileName := flag.String("profile", "fast", "speed profile: fast or reference")
	asJSON := flag.Bool("json", false, "emit one JSON result per algorithm instead of text")
	mapWorkers := flag.Int("map-workers", 1, "mapper candidate-evaluation lanes (results identical at any value)")
	counters := flag.Bool("counters", false, "print engine counter rates per algorithm")
	flag.Parse()

	if err := run(*app, *n, *k, *width, *density, *regularity, *jump, *seed,
		*clusterName, *solverName, *alignName, *profileName, *gantt, *algoFilter, *traceOut, *asJSON, *mapWorkers, *counters); err != nil {
		fmt.Fprintln(os.Stderr, "ratsim:", err)
		os.Exit(1)
	}
}

func buildDAG(app string, n, k int, width, density, regularity float64, jump int, seed int64) (*rats.DAG, error) {
	switch app {
	case "layered":
		return rats.Random(rats.RandomSpec{N: n, Width: width, Density: density,
			Regularity: regularity, Layered: true, Seed: seed}), nil
	case "irregular":
		return rats.Random(rats.RandomSpec{N: n, Width: width, Density: density,
			Regularity: regularity, Jump: jump, Seed: seed}), nil
	case "fft":
		return rats.FFT(k, seed), nil
	case "strassen":
		return rats.Strassen(seed), nil
	}
	return nil, fmt.Errorf("unknown application kind %q", app)
}

func run(app string, n, k int, width, density, regularity float64, jump int, seed int64,
	clusterName, solverName, alignName, profileName string, gantt bool, algoFilter, traceOut string, asJSON bool,
	mapWorkers int, counters bool) error {
	if mapWorkers < 1 {
		return fmt.Errorf("-map-workers %d: want ≥ 1", mapWorkers)
	}
	cl, err := rats.ClusterByName(clusterName)
	if err != nil {
		return err
	}
	solver, err := rats.ParseFlowSolver(solverName)
	if err != nil {
		return err
	}
	profile, err := rats.ParseProfile(profileName)
	if err != nil {
		return err
	}
	var align rats.AlignmentMode
	if alignName != "" {
		if align, err = rats.ParseAlignment(alignName); err != nil {
			return err
		}
	}
	// One DAG for the whole run: finalized here, read-only for every
	// algorithm afterwards.
	d, err := buildDAG(app, n, k, width, density, regularity, jump, seed)
	if err != nil {
		return err
	}
	if err := d.Build(); err != nil {
		return err
	}
	var only rats.Strategy
	if algoFilter != "" {
		if only, err = rats.ParseStrategy(algoFilter); err != nil {
			return err
		}
	}

	if !asJSON {
		fmt.Printf("application: %s (%d tasks, %d edges, max width %d)\n",
			app, d.TaskCount(), d.EdgeCount(), d.MaxWidth())
		fmt.Printf("cluster    : %s (%d procs @ %.3f GFlop/s)\n\n",
			cl.Name(), cl.Procs(), cl.SpeedGFlops())
	}

	variants := []struct {
		name     string
		strategy rats.Strategy
	}{
		{"hcpa", rats.Baseline},
		{"delta", rats.Delta},
		{"time-cost", rats.TimeCost},
	}
	var base float64
	enc := json.NewEncoder(os.Stdout)
	for _, v := range variants {
		if algoFilter != "" && v.strategy != only {
			continue
		}
		opts := []rats.Option{rats.WithCluster(cl), rats.WithStrategy(v.strategy),
			rats.WithFlowSolver(solver), rats.WithProfile(profile)}
		if alignName != "" {
			opts = append(opts, rats.WithAlignment(align))
		}
		if mapWorkers > 1 {
			opts = append(opts, rats.WithMapWorkers(mapWorkers))
		}
		// The self-tracer records the scheduler's own execution; it rides
		// along only when the run writes trace files anyway.
		var tracer *rats.Tracer
		if traceOut != "" {
			tracer = rats.NewTracer(0)
			opts = append(opts, rats.WithObserver(tracer))
		}
		s := rats.New(opts...)
		res, err := s.Schedule(d)
		if err != nil {
			return err
		}
		if asJSON {
			if err := enc.Encode(res); err != nil {
				return err
			}
		} else {
			rel := ""
			if v.strategy == rats.Baseline {
				base = res.Makespan
			} else if base > 0 {
				rel = fmt.Sprintf("  (%.3f of HCPA)", res.Makespan/base)
			}
			fmt.Printf("%-10s makespan %8.3f s%s\n", v.name, res.Makespan, rel)
			fmt.Printf("%-10s estimate %8.3f s, work %.1f proc·s, wire %.3g MB in %d flows\n",
				"", res.Estimate, res.TotalWork, res.RemoteBytes/1e6, res.FlowCount)
			fmt.Printf("%-10s %s\n", "", res.Stats())
			if counters {
				c := res.Counters
				fmt.Printf("%-10s counters memo-hit %.1f%% (%d/%d), dedup-skip %.1f%%, scratch-solve %.1f%% (%d/%d), align e/g/c %d/%d/%d\n",
					"", c.MemoHitPct(), c.MemoHits, c.MemoProbes, c.DedupSkipPct(),
					c.ScratchSolvePct(), c.SolvesScratch, c.SolvesFull+c.SolvesIncremental+c.SolvesScratch,
					c.AlignExact, c.AlignGreedy, c.AlignCapped)
			}
			if gantt {
				fmt.Println(res.Gantt(100))
			}
		}
		if traceOut != "" {
			path := fmt.Sprintf("%s-%s.json", traceOut, v.name)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := res.ChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if !asJSON {
				fmt.Printf("%-10s trace written to %s\n", "", path)
			}
			schedPath := fmt.Sprintf("%s-%s-sched.json", traceOut, v.name)
			sf, err := os.Create(schedPath)
			if err != nil {
				return err
			}
			if err := tracer.WriteChromeTrace(sf); err != nil {
				sf.Close()
				return err
			}
			if err := sf.Close(); err != nil {
				return err
			}
			if !asJSON {
				fmt.Printf("%-10s scheduler self-trace written to %s\n", "", schedPath)
			}
			tracer.Reset()
		}
		if !asJSON {
			fmt.Println()
		}
	}
	return nil
}
