// Command ratsim schedules one mixed-parallel application on one simulated
// cluster and reports the outcome of every algorithm: HCPA baseline,
// RATS-delta and RATS-time-cost.
//
// Usage:
//
//	ratsim [-app KIND] [-n N] [-k K] [-width W] [-density D] [-regularity R]
//	       [-jump J] [-seed S] [-cluster NAME] [-gantt] [-algo NAME]
//
// Examples:
//
//	ratsim -app fft -k 8 -cluster grelon -gantt
//	ratsim -app irregular -n 50 -width 0.5 -density 0.2 -cluster grillon
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/gen"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/simdag"
	"repro/internal/trace"
)

func main() {
	app := flag.String("app", "layered", "application kind: layered, irregular, fft, strassen")
	n := flag.Int("n", 25, "computation tasks (random kinds)")
	k := flag.Int("k", 8, "FFT data points (power of two)")
	width := flag.Float64("width", 0.5, "DAG width parameter (random kinds)")
	density := flag.Float64("density", 0.2, "DAG density parameter")
	regularity := flag.Float64("regularity", 0.8, "DAG regularity parameter")
	jump := flag.Int("jump", 1, "jump edge length (irregular)")
	seed := flag.Int64("seed", 1, "generator seed")
	clusterName := flag.String("cluster", "grillon", "cluster: chti, grillon, grelon")
	gantt := flag.Bool("gantt", false, "print a Gantt chart per algorithm")
	algoFilter := flag.String("algo", "", "run only one algorithm: hcpa, delta, time-cost")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file per algorithm (prefix)")
	flag.Parse()

	if err := run(*app, *n, *k, *width, *density, *regularity, *jump, *seed, *clusterName, *gantt, *algoFilter, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "ratsim:", err)
		os.Exit(1)
	}
}

func buildGraph(app string, n, k int, width, density, regularity float64, jump int, seed int64) (*dag.Graph, error) {
	switch app {
	case "layered":
		return gen.Random(gen.RandomParams{N: n, Width: width, Density: density, Regularity: regularity, Layered: true, Seed: seed}), nil
	case "irregular":
		return gen.Random(gen.RandomParams{N: n, Width: width, Density: density, Regularity: regularity, Jump: jump, Seed: seed}), nil
	case "fft":
		return gen.FFT(k, seed), nil
	case "strassen":
		return gen.Strassen(seed), nil
	}
	return nil, fmt.Errorf("unknown application kind %q", app)
}

func run(app string, n, k int, width, density, regularity float64, jump int, seed int64, clusterName string, gantt bool, algoFilter, traceOut string) error {
	cl, err := platform.ByName(clusterName)
	if err != nil {
		return err
	}
	g, err := buildGraph(app, n, k, width, density, regularity, jump, seed)
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return err
	}
	costs := moldable.NewCosts(g, cl.SpeedGFlops)
	allocation := alloc.Compute(g, costs, cl, alloc.DefaultOptions())

	fmt.Printf("application: %s (%d tasks, %d edges, max width %d)\n",
		app, g.RealTaskCount(), len(g.Edges), g.MaxWidth())
	fmt.Printf("cluster    : %s (%d procs @ %.3f GFlop/s)\n\n", cl.Name, cl.P, cl.SpeedGFlops)

	type variant struct {
		name string
		opts core.Options
	}
	variants := []variant{
		{"hcpa", core.Options{Strategy: core.StrategyNone, SortSecondary: true}},
		{"delta", core.DefaultNaive(core.StrategyDelta)},
		{"time-cost", core.DefaultNaive(core.StrategyTimeCost)},
	}
	var base float64
	for _, v := range variants {
		if algoFilter != "" && v.name != algoFilter {
			continue
		}
		sched := core.Map(g, costs, cl, allocation, v.opts)
		res, err := simdag.Execute(g, costs, cl, sched)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		rel := ""
		if v.name == "hcpa" {
			base = res.Makespan
		} else if base > 0 {
			rel = fmt.Sprintf("  (%.3f of HCPA)", res.Makespan/base)
		}
		fmt.Printf("%-10s makespan %8.3f s%s\n", v.name, res.Makespan, rel)
		fmt.Printf("%-10s estimate %8.3f s, work %.1f proc·s, wire %.3g MB in %d flows\n",
			"", sched.EstMakespan(), sched.TotalWork, res.RemoteBytes/1e6, res.FlowCount)
		fmt.Printf("%-10s %s\n", "", trace.Compute(g, sched, res))
		if gantt {
			fmt.Println(simdag.Gantt(g, sched, res, 100))
		}
		if traceOut != "" {
			path := fmt.Sprintf("%s-%s.json", traceOut, v.name)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := trace.ChromeTrace(f, g, sched, res); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("%-10s trace written to %s\n", "", path)
		}
		fmt.Println()
	}
	return nil
}
