// Command ratsd is the batched scheduling service: a long-running
// HTTP+JSON daemon over the rats pipeline. Requests with an identical
// (cluster, options) configuration are grouped into batches and executed
// from a pool of reusable scheduler contexts, so sustained request
// streams pay the marginal cost of one mapping run, not the setup cost of
// a fresh scheduler.
//
// Usage:
//
//	ratsd [-addr :8080] [-max-batch 16] [-max-wait 2ms] [-max-queue 1024]
//	      [-workers N] [-timeout 30s] [-profile fast] [-log-level info]
//	      [-pprof]
//
// -profile sets the default speed profile ("fast" or "reference") for
// requests that do not carry their own "profile" field; per-request
// values always win.
//
// Endpoints:
//
//	POST /v1/schedule  schedule one DAG; see internal/serve.ScheduleRequest
//	GET  /healthz      liveness (503 while draining)
//	GET  /metrics      counters, latency quantiles, recent request records
//	                   (JSON by default; ?format=prometheus or an Accept
//	                   header preferring text/plain selects the Prometheus
//	                   text exposition)
//	GET  /debug/pprof  live profiling, only with -pprof
//
// SIGINT/SIGTERM starts a graceful drain: intake stops with 503, every
// already-accepted request is executed and answered, then the process
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/rats"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxBatch := flag.Int("max-batch", 16, "flush a batch at this many requests")
	maxWait := flag.Duration("max-wait", 2*time.Millisecond, "flush a non-full batch after this long")
	maxQueue := flag.Int("max-queue", 1024, "shed load beyond this many queued requests")
	workers := flag.Int("workers", 0, "batch executor goroutines (0 = GOMAXPROCS)")
	mapWorkers := flag.Int("map-workers", 0, "default mapper evaluation lanes for requests without map_workers (0 = serial)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	profileName := flag.String("profile", "fast", "default speed profile for requests without one: fast or reference")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	pprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "ratsd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	profile, err := rats.ParseProfile(*profileName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ratsd: bad -profile: %v\n", err)
		os.Exit(2)
	}

	srv := serve.NewServer(serve.ServerConfig{
		Batch: serve.Config{
			MaxBatch: *maxBatch,
			MaxWait:  *maxWait,
			MaxQueue: *maxQueue,
			Workers:  *workers,
		},
		DefaultTimeout: *timeout,
		MapWorkers:     *mapWorkers,
		Profile:        profile,
		EnablePprof:    *pprof,
		Log:            log,
	})
	if *pprof {
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		log.Info("ratsd shutting down", "signal", sig.String())
		// Stop intake first (new connections refused, in-flight handlers
		// keep running), then drain the queue so every accepted request
		// is answered before the process exits.
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Drain()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Error("shutdown", "error", err)
		}
	}()

	log.Info("ratsd listening", "addr", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("serve", "error", err)
		os.Exit(1)
	}
	<-done
}
