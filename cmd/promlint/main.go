// Command promlint validates Prometheus text exposition read from stdin
// (or a file argument), in the spirit of `promtool check metrics`. It
// exits 1 and prints one line per problem when the exposition is invalid.
//
// Usage:
//
//	curl -s localhost:8080/metrics?format=prometheus | promlint
//	promlint metrics.txt
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	errs := obs.LintPrometheus(in)
	for _, e := range errs {
		fmt.Fprintln(os.Stderr, "promlint:", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
}
