// Command benchtraj runs a hot-path benchmark family and appends one
// trajectory entry per invocation to a JSON file tracked in the
// repository, so the performance of the scheduling pipeline is recorded PR
// over PR instead of living in commit messages.
//
// Usage:
//
//	benchtraj [-family alloc|sim|map] [-file FILE] [-benchtime 3x] [-label NAME] [-smoke]
//
// The alloc family (default, BENCH_alloc.json) runs the allocation,
// mapping and redistribution-estimation benchmarks; its derived summary is
// the geometric-mean speedup of the incremental allocator over the
// preserved full-rewalk reference, per cluster preset. The sim family
// (BENCH_sim.json) runs the BenchmarkSim replay benches — big512/big1024
// scenario classes replayed under both the incremental flownet engine and
// the from-scratch maxmin reference — and derives per cluster the
// geometric-mean replay speedup and allocation reduction of flownet over
// the reference. The map family (BENCH_map.json) runs the full mapping
// phase (BenchmarkMap, cluster × width) and derives the per-cluster
// geometric means of ns/op and allocs/op — the trajectory of the sparse
// allocation-free alignment path; it also runs the evaluation-lane sweep
// (BenchmarkMapParallel, cluster × workers) and derives each parallel
// point's speedup over its own workers=1 anchor. The parallel points stay
// out of the per-cluster geomeans so the trajectory remains comparable
// across entries.
//
// -smoke runs the suite at -benchtime 1x and prints the entry to stdout
// without touching the file: CI uses it to prove the wiring (benchmarks
// compile, parse, and produce a well-formed entry) without committing
// noise-level measurements from shared runners. Real trajectory points
// are appended locally and committed with the PR that changed the hot
// path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Measurement is one parsed benchmark result line.
type Measurement struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_op"`
	BPerOp    float64 `json:"b_op,omitempty"`
	AllocsOp  float64 `json:"allocs_op,omitempty"`
	MallocsOp float64 `json:"mallocs_op,omitempty"`

	// BenchmarkServe custom metrics (b.ReportMetric units).
	P50Ns       float64 `json:"p50_ns,omitempty"`
	P99Ns       float64 `json:"p99_ns,omitempty"`
	SchedPerSec float64 `json:"sched_per_sec,omitempty"`

	// Engine counter rates (b.ReportMetric units of the map and sim
	// families).
	MemoHitPct    float64 `json:"memo_hit_pct,omitempty"`
	ScratchSolves float64 `json:"scratch_solve_pct,omitempty"`
}

// Entry is one trajectory point.
type Entry struct {
	Label         string             `json:"label"`
	Commit        string             `json:"commit,omitempty"`
	Date          string             `json:"date"`
	GoVersion     string             `json:"go_version"`
	Benchtime     string             `json:"benchtime"`
	RecomputeTime string             `json:"recompute_benchtime,omitempty"`
	AllocSpeed    map[string]float64 `json:"alloc_speedup_geomean,omitempty"`
	SimSpeed      map[string]float64 `json:"sim_speedup_geomean,omitempty"`
	SimAllocRatio map[string]float64 `json:"sim_allocs_ratio_geomean,omitempty"`
	MapNs         map[string]float64 `json:"map_ns_geomean,omitempty"`
	MapAllocs     map[string]float64 `json:"map_allocs_mean,omitempty"`
	MapMemoHit    map[string]float64 `json:"map_memo_hit_pct,omitempty"`
	SimScratch    map[string]float64 `json:"sim_scratch_solve_pct,omitempty"`
	MapParSpeed   map[string]float64 `json:"map_parallel_speedup,omitempty"`
	ServeP50Ms    map[string]float64 `json:"serve_p50_ms,omitempty"`
	ServeP99Ms    map[string]float64 `json:"serve_p99_ms,omitempty"`
	ServeRate     map[string]float64 `json:"serve_sched_per_sec,omitempty"`
	Benchmarks    []Measurement      `json:"benchmarks"`
}

func main() {
	family := flag.String("family", "alloc", "benchmark family: alloc (allocation/mapping/estimation), sim (flow-level replay), map (mapping phase) or serve (ratsd service)")
	file := flag.String("file", "", "trajectory file to append to (default: BENCH_<family>.json)")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	label := flag.String("label", "", "entry label (default: current git short hash)")
	pattern := flag.String("bench", "", "benchmark pattern override (default: the family's pattern)")
	smoke := flag.Bool("smoke", false, "run at -benchtime 1x and print the entry instead of appending")
	flag.Parse()

	if *file == "" {
		*file = "BENCH_" + *family + ".json"
	}
	switch *family {
	case "alloc", "sim", "map", "serve":
	default:
		fmt.Fprintf(os.Stderr, "benchtraj: unknown family %q (want alloc, sim, map or serve)\n", *family)
		os.Exit(1)
	}
	if *pattern == "" {
		switch *family {
		case "alloc":
			*pattern = "^(BenchmarkAlloc|BenchmarkMap|BenchmarkRedistTime)$"
		case "map":
			*pattern = "^(BenchmarkMap|BenchmarkMapParallel)$"
		case "serve":
			*pattern = "^BenchmarkServe$"
		case "sim":
			*pattern = "^BenchmarkSim$"
			if *smoke {
				// Wiring proof only: the sub-second FFT replays parse and
				// derive identically to the full set, without the
				// multi-minute layered replays on shared runners.
				*pattern = "^BenchmarkSim$/.*/^fft-"
			}
		}
	}

	if err := run(*family, *file, *benchtime, *label, *pattern, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(1)
	}
}

func run(family, file, benchtime, label, pattern string, smoke bool) error {
	if smoke {
		benchtime = "1x"
	}
	commit := gitShortHash()
	if label == "" {
		if commit != "" {
			label = commit
		} else {
			label = "local"
		}
	}

	pkg := "."
	if family == "serve" {
		pkg = "./internal/serve/"
	}
	out, err := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", benchtime, "-benchmem", pkg).CombinedOutput()
	if err != nil {
		return fmt.Errorf("go test -bench failed: %w\n%s", err, out)
	}
	ms := parseBenchOutput(string(out))
	if len(ms) == 0 {
		return fmt.Errorf("no benchmark lines parsed from go test output:\n%s", out)
	}
	recomputeBenchtime := ""
	if family == "sim" {
		// The steady-state recompute microbench needs a real iteration
		// count: replay benches run whole simulations per op, this one
		// runs one population change per op, and the allocs/op signal
		// only converges once the entity pools reach steady state.
		rt := "20000x"
		if smoke {
			rt = "2000x"
		}
		rout, err := exec.Command("go", "test", "-run", "^$", "-bench", "^BenchmarkRecompute$",
			"-benchtime", rt, "-benchmem", "./internal/sim/").CombinedOutput()
		if err != nil {
			return fmt.Errorf("go test -bench recompute failed: %w\n%s", err, rout)
		}
		rms := parseBenchOutput(string(rout))
		if len(rms) == 0 {
			return fmt.Errorf("no benchmark lines parsed from recompute output:\n%s", rout)
		}
		ms = append(ms, rms...)
		recomputeBenchtime = rt
	}

	entry := Entry{
		Label:         label,
		Commit:        commit,
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		Benchtime:     benchtime,
		RecomputeTime: recomputeBenchtime,
		Benchmarks:    ms,
	}
	switch family {
	case "alloc":
		entry.AllocSpeed = allocSpeedups(ms)
	case "sim":
		entry.SimSpeed = simRatios(ms, "BenchmarkSim", func(m Measurement) float64 { return m.NsPerOp })
		entry.SimAllocRatio = simRatios(ms, "BenchmarkRecompute", func(m Measurement) float64 { return m.MallocsOp })
		entry.SimScratch = simScratchPcts(ms)
	case "map":
		entry.MapNs = mapGeomeans(ms, func(m Measurement) float64 { return m.NsPerOp })
		entry.MapAllocs = mapMeans(ms, func(m Measurement) float64 { return m.AllocsOp })
		entry.MapMemoHit = mapMeans(ms, func(m Measurement) float64 { return m.MemoHitPct })
		entry.MapParSpeed = mapParSpeedups(ms)
	case "serve":
		entry.ServeP50Ms = serveMetric(ms, func(m Measurement) float64 { return m.P50Ns / 1e6 })
		entry.ServeP99Ms = serveMetric(ms, func(m Measurement) float64 { return m.P99Ns / 1e6 })
		entry.ServeRate = serveMetric(ms, func(m Measurement) float64 { return m.SchedPerSec })
	}

	if smoke {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(entry)
	}
	return appendEntry(file, entry)
}

// gitShortHash returns the current commit's short hash, or "" outside a
// git checkout.
func gitShortHash() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// parseBenchOutput extracts the benchmark lines from `go test -bench`
// output. A line looks like:
//
//	BenchmarkAlloc/big1024/n=400/w=0.5/incremental-8  30  25862661 ns/op  59296 B/op  353 allocs/op
func parseBenchOutput(out string) []Measurement {
	var ms []Measurement
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := Measurement{Name: name}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BPerOp = v
			case "allocs/op":
				m.AllocsOp = v
			case "mallocs/op":
				m.MallocsOp = v
			case "p50-ns":
				m.P50Ns = v
			case "p99-ns":
				m.P99Ns = v
			case "sched/s":
				m.SchedPerSec = v
			case "memo-hit-pct":
				m.MemoHitPct = v
			case "scratch-solve-pct":
				m.ScratchSolves = v
			}
		}
		if m.NsPerOp > 0 {
			ms = append(ms, m)
		}
	}
	return ms
}

// allocSpeedups derives, per cluster, the geometric-mean ratio of the
// reference allocator's ns/op over the incremental engine's across every
// BenchmarkAlloc (cluster, n, width) shape.
func allocSpeedups(ms []Measurement) map[string]float64 {
	type pair struct{ inc, ref float64 }
	pairs := map[string]map[string]*pair{} // cluster -> shape -> times
	for _, m := range ms {
		parts := strings.Split(m.Name, "/")
		// BenchmarkAlloc/<cluster>/n=<n>/w=<w>/<engine>
		if len(parts) != 5 || parts[0] != "BenchmarkAlloc" {
			continue
		}
		cluster, shape, engine := parts[1], parts[2]+"/"+parts[3], parts[4]
		if pairs[cluster] == nil {
			pairs[cluster] = map[string]*pair{}
		}
		if pairs[cluster][shape] == nil {
			pairs[cluster][shape] = &pair{}
		}
		switch engine {
		case "incremental":
			pairs[cluster][shape].inc = m.NsPerOp
		case "reference":
			pairs[cluster][shape].ref = m.NsPerOp
		}
	}
	speed := map[string]float64{}
	for cluster, shapes := range pairs {
		logSum, n := 0.0, 0
		for _, p := range shapes {
			if p.inc > 0 && p.ref > 0 {
				logSum += math.Log(p.ref / p.inc)
				n++
			}
		}
		if n > 0 {
			speed[cluster] = math.Round(math.Exp(logSum/float64(n))*100) / 100
		}
	}
	if len(speed) == 0 {
		return nil
	}
	return speed
}

// simRatios derives, per cluster, the geometric-mean ratio of the maxmin
// reference engine over the flownet engine across a benchmark family's
// (cluster, scenario) shapes — BenchmarkSim/<cluster>/<scenario>/<engine>
// replays measured by ns/op give the end-to-end replay speedup,
// BenchmarkRecompute/<cluster>/<engine> measured by exact mallocs/op
// gives the allocation reduction on the steady-state recompute path.
func simRatios(ms []Measurement, bench string, metric func(Measurement) float64) map[string]float64 {
	type pair struct{ net, ref float64 }
	pairs := map[string]map[string]*pair{} // cluster -> scenario -> values
	for _, m := range ms {
		parts := strings.Split(m.Name, "/")
		if parts[0] != bench {
			continue
		}
		var cluster, scen, engine string
		switch len(parts) {
		case 4:
			cluster, scen, engine = parts[1], parts[2], parts[3]
		case 3:
			cluster, scen, engine = parts[1], "steady-churn", parts[2]
		default:
			continue
		}
		if pairs[cluster] == nil {
			pairs[cluster] = map[string]*pair{}
		}
		if pairs[cluster][scen] == nil {
			pairs[cluster][scen] = &pair{}
		}
		switch engine {
		case "flownet":
			pairs[cluster][scen].net = metric(m)
		case "maxmin":
			pairs[cluster][scen].ref = metric(m)
		}
	}
	ratio := map[string]float64{}
	for cluster, scens := range pairs {
		logSum, n := 0.0, 0
		for _, p := range scens {
			if p.net > 0 && p.ref > 0 {
				logSum += math.Log(p.ref / p.net)
				n++
			}
		}
		if n > 0 {
			ratio[cluster] = math.Round(math.Exp(logSum/float64(n))*100) / 100
		}
	}
	if len(ratio) == 0 {
		return nil
	}
	return ratio
}

// mapGeomeans derives, per cluster, the geometric mean of one metric over
// every BenchmarkMap/<cluster>/w=<w> width shape. Unlike the other
// families there is no in-benchmark reference engine to ratio against —
// the mapping engine is singular and pinned by golden digests — so the
// trajectory compares absolute per-cluster summaries across entries.
// Positive metrics only (ns/op always is).
func mapGeomeans(ms []Measurement, metric func(Measurement) float64) map[string]float64 {
	logSum := map[string]float64{}
	counts := map[string]int{}
	for _, m := range ms {
		cluster, ok := mapCluster(m.Name)
		if !ok {
			continue
		}
		if v := metric(m); v > 0 {
			logSum[cluster] += math.Log(v)
			counts[cluster]++
		}
	}
	out := map[string]float64{}
	for cluster, n := range counts {
		out[cluster] = math.Round(math.Exp(logSum[cluster]/float64(n))*100) / 100
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// mapMeans is the arithmetic counterpart for count metrics that can
// legitimately reach zero (allocs/op — the trajectory's end-goal), which a
// geometric mean would silently drop.
func mapMeans(ms []Measurement, metric func(Measurement) float64) map[string]float64 {
	sum := map[string]float64{}
	counts := map[string]int{}
	for _, m := range ms {
		cluster, ok := mapCluster(m.Name)
		if !ok {
			continue
		}
		sum[cluster] += metric(m)
		counts[cluster]++
	}
	out := map[string]float64{}
	for cluster, n := range counts {
		out[cluster] = math.Round(sum[cluster]/float64(n)*100) / 100
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// serveMetric extracts one BenchmarkServe/<cluster> custom metric per
// cluster. The serve family has exactly one shape per cluster, so no
// averaging is involved — the derivation just lifts the custom-unit
// metrics into the per-cluster summary maps the trajectory compares.
func serveMetric(ms []Measurement, metric func(Measurement) float64) map[string]float64 {
	out := map[string]float64{}
	for _, m := range ms {
		parts := strings.Split(m.Name, "/")
		if len(parts) != 2 || parts[0] != "BenchmarkServe" {
			continue
		}
		if v := metric(m); v > 0 {
			out[parts[1]] = math.Round(v*100) / 100
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// simScratchPcts derives, per cluster, the arithmetic mean of the
// scratch-solve-pct counter rate over the flownet replay shapes (the
// maxmin reference has no scratch path, so its points are skipped). The
// rate tracks how often the incremental engine's small-population scratch
// path fired — a workload-shape property the trajectory watches alongside
// the speedup it buys.
func simScratchPcts(ms []Measurement) map[string]float64 {
	sum := map[string]float64{}
	counts := map[string]int{}
	for _, m := range ms {
		parts := strings.Split(m.Name, "/")
		if len(parts) != 4 || parts[0] != "BenchmarkSim" || parts[3] != "flownet" {
			continue
		}
		sum[parts[1]] += m.ScratchSolves
		counts[parts[1]]++
	}
	out := map[string]float64{}
	for cluster, n := range counts {
		out[cluster] = math.Round(sum[cluster]/float64(n)*100) / 100
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// mapParSpeedups derives, per BenchmarkMapParallel/<cluster>/workers=<n>
// point with n > 1, the ratio of the same cluster's workers=1 time to the
// point's time — the parallel mapper's speedup over the serial engine it
// is byte-identical to. Keys are "<cluster>/workers=<n>". On a
// single-core runner the ratios sit at or below 1 (pure coordination
// overhead); they are recorded as measured.
func mapParSpeedups(ms []Measurement) map[string]float64 {
	base := map[string]float64{}
	for _, m := range ms {
		parts := strings.Split(m.Name, "/")
		if len(parts) == 3 && parts[0] == "BenchmarkMapParallel" &&
			parts[2] == "workers=1" && m.NsPerOp > 0 {
			base[parts[1]] = m.NsPerOp
		}
	}
	out := map[string]float64{}
	for _, m := range ms {
		parts := strings.Split(m.Name, "/")
		if len(parts) != 3 || parts[0] != "BenchmarkMapParallel" || parts[2] == "workers=1" {
			continue
		}
		if b := base[parts[1]]; b > 0 && m.NsPerOp > 0 {
			out[parts[1]+"/"+parts[2]] = math.Round(b/m.NsPerOp*100) / 100
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// mapCluster extracts the aggregation key of a BenchmarkMap sub-benchmark.
// Reference-profile rows (BenchmarkMap/<cluster>/w=<w>) keep the bare
// cluster key so the trajectory stays comparable with entries recorded
// before the speed profiles existed; fast-profile rows
// (BenchmarkMap/<cluster>/w=<w>/fast) aggregate under "<cluster>/fast".
func mapCluster(name string) (string, bool) {
	parts := strings.Split(name, "/")
	if parts[0] != "BenchmarkMap" {
		return "", false
	}
	switch {
	case len(parts) == 3:
		return parts[1], true
	case len(parts) == 4 && parts[3] == "fast":
		return parts[1] + "/fast", true
	}
	return "", false
}

// appendEntry reads the existing trajectory (if any), appends the entry
// and writes the file back with stable formatting and ordering.
func appendEntry(file string, entry Entry) error {
	var entries []Entry
	if data, err := os.ReadFile(file); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", file, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entries = append(entries, entry)
	sort.SliceStable(entry.Benchmarks, func(a, b int) bool {
		return entry.Benchmarks[a].Name < entry.Benchmarks[b].Name
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(file, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("appended %q to %s (%d entries, %d benchmarks)\n",
		entry.Label, file, len(entries), len(entry.Benchmarks))
	return nil
}
