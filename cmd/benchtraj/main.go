// Command benchtraj runs the hot-path benchmarks (allocation, mapping,
// redistribution estimation) and appends one trajectory entry per
// invocation to a JSON file tracked in the repository, so the performance
// of the scheduling pipeline is recorded PR over PR instead of living in
// commit messages.
//
// Usage:
//
//	benchtraj [-file BENCH_alloc.json] [-benchtime 3x] [-label NAME] [-smoke]
//
// Each entry carries the raw ns/op / B/op / allocs/op of every hot-path
// sub-benchmark plus a derived summary: the geometric-mean speedup of the
// incremental allocator over the preserved full-rewalk reference, per
// cluster preset (the headline number the incremental-allocation work is
// held to).
//
// -smoke runs the suite at -benchtime 1x and prints the entry to stdout
// without touching the file: CI uses it to prove the wiring (benchmarks
// compile, parse, and produce a well-formed entry) without committing
// noise-level measurements from shared runners. Real trajectory points
// are appended locally and committed with the PR that changed the hot
// path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Measurement is one parsed benchmark result line.
type Measurement struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_op"`
	BPerOp   float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// Entry is one trajectory point.
type Entry struct {
	Label      string             `json:"label"`
	Commit     string             `json:"commit,omitempty"`
	Date       string             `json:"date"`
	GoVersion  string             `json:"go_version"`
	Benchtime  string             `json:"benchtime"`
	AllocSpeed map[string]float64 `json:"alloc_speedup_geomean,omitempty"`
	Benchmarks []Measurement      `json:"benchmarks"`
}

func main() {
	file := flag.String("file", "BENCH_alloc.json", "trajectory file to append to")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	label := flag.String("label", "", "entry label (default: current git short hash)")
	pattern := flag.String("bench", "^(BenchmarkAlloc|BenchmarkMap|BenchmarkRedistTime)$", "benchmark pattern")
	smoke := flag.Bool("smoke", false, "run at -benchtime 1x and print the entry instead of appending")
	flag.Parse()

	if err := run(*file, *benchtime, *label, *pattern, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "benchtraj:", err)
		os.Exit(1)
	}
}

func run(file, benchtime, label, pattern string, smoke bool) error {
	if smoke {
		benchtime = "1x"
	}
	commit := gitShortHash()
	if label == "" {
		if commit != "" {
			label = commit
		} else {
			label = "local"
		}
	}

	out, err := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchtime", benchtime, "-benchmem", ".").CombinedOutput()
	if err != nil {
		return fmt.Errorf("go test -bench failed: %w\n%s", err, out)
	}
	ms := parseBenchOutput(string(out))
	if len(ms) == 0 {
		return fmt.Errorf("no benchmark lines parsed from go test output:\n%s", out)
	}

	entry := Entry{
		Label:      label,
		Commit:     commit,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Benchtime:  benchtime,
		AllocSpeed: allocSpeedups(ms),
		Benchmarks: ms,
	}

	if smoke {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(entry)
	}
	return appendEntry(file, entry)
}

// gitShortHash returns the current commit's short hash, or "" outside a
// git checkout.
func gitShortHash() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// parseBenchOutput extracts the benchmark lines from `go test -bench`
// output. A line looks like:
//
//	BenchmarkAlloc/big1024/n=400/w=0.5/incremental-8  30  25862661 ns/op  59296 B/op  353 allocs/op
func parseBenchOutput(out string) []Measurement {
	var ms []Measurement
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := Measurement{Name: name}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BPerOp = v
			case "allocs/op":
				m.AllocsOp = v
			}
		}
		if m.NsPerOp > 0 {
			ms = append(ms, m)
		}
	}
	return ms
}

// allocSpeedups derives, per cluster, the geometric-mean ratio of the
// reference allocator's ns/op over the incremental engine's across every
// BenchmarkAlloc (cluster, n, width) shape.
func allocSpeedups(ms []Measurement) map[string]float64 {
	type pair struct{ inc, ref float64 }
	pairs := map[string]map[string]*pair{} // cluster -> shape -> times
	for _, m := range ms {
		parts := strings.Split(m.Name, "/")
		// BenchmarkAlloc/<cluster>/n=<n>/w=<w>/<engine>
		if len(parts) != 5 || parts[0] != "BenchmarkAlloc" {
			continue
		}
		cluster, shape, engine := parts[1], parts[2]+"/"+parts[3], parts[4]
		if pairs[cluster] == nil {
			pairs[cluster] = map[string]*pair{}
		}
		if pairs[cluster][shape] == nil {
			pairs[cluster][shape] = &pair{}
		}
		switch engine {
		case "incremental":
			pairs[cluster][shape].inc = m.NsPerOp
		case "reference":
			pairs[cluster][shape].ref = m.NsPerOp
		}
	}
	speed := map[string]float64{}
	for cluster, shapes := range pairs {
		logSum, n := 0.0, 0
		for _, p := range shapes {
			if p.inc > 0 && p.ref > 0 {
				logSum += math.Log(p.ref / p.inc)
				n++
			}
		}
		if n > 0 {
			speed[cluster] = math.Round(math.Exp(logSum/float64(n))*100) / 100
		}
	}
	if len(speed) == 0 {
		return nil
	}
	return speed
}

// appendEntry reads the existing trajectory (if any), appends the entry
// and writes the file back with stable formatting and ordering.
func appendEntry(file string, entry Entry) error {
	var entries []Entry
	if data, err := os.ReadFile(file); err == nil {
		if err := json.Unmarshal(data, &entries); err != nil {
			return fmt.Errorf("existing %s is not a trajectory file: %w", file, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	entries = append(entries, entry)
	sort.SliceStable(entry.Benchmarks, func(a, b int) bool {
		return entry.Benchmarks[a].Name < entry.Benchmarks[b].Name
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(file, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("appended %q to %s (%d entries, %d benchmarks)\n",
		entry.Label, file, len(entries), len(entry.Benchmarks))
	return nil
}
