// Command expdriver regenerates every table and figure of the paper's
// evaluation section (§IV) and writes them to stdout and to per-experiment
// files under -out.
//
// Usage:
//
//	expdriver [-stride N] [-workers N] [-out DIR] [-only LIST] [-solver NAME]
//	          [-align NAME] [-profile NAME] [-counters]
//	          [-ablate [-smoke] [-o FILE]]
//
// -ablate switches to the exactness-renegotiation ablation (package
// internal/ablate): every scenario class under all strategy × allocator
// combinations, swept across the approximation knobs (alignment mode and
// AlignAuto cap, estimator memo staleness bound, flownet scratch
// threshold), reporting per-configuration makespan deltas, mapping
// latency percentiles and engine counter rates. The machine-readable
// report lands at -o (default <out>/ablation.json); -smoke shrinks the
// sweep to the CI-sized reference-versus-fast check.
//
// -counters switches to a diagnostics report instead of the paper
// experiments: it runs the three naive-parameter algorithms over the
// grelon, big512 and heterogeneous scenario classes and prints the
// engine-level counter rates (estimator memo hit rate, candidate dedup
// skip rate, replay scratch-solve rate, alignment mode mix) summed per
// algorithm. The big classes are capped to a few scenarios — the point is
// rate measurement, not the full comparison.
//
// -stride subsamples the 557 application configurations (stride 1 = the
// full evaluation; stride 4 keeps every 4th configuration) to bound the
// runtime on small machines. -only selects a comma-separated subset of
// {tableI,tableII,tableIII,fig23,fig4,fig5,tableIV,fig67,tableV6,extended,big,het};
// "extended" adds a five-way comparison with the CPA and MCPA baselines,
// which the paper describes (§II-C) but does not evaluate; "big" (never
// part of the default set — the replay of 400–800-task DAGs on the
// big512/big1024 presets takes minutes per scenario) runs the
// production-scale inventories of exp.ScenariosAt on their matched
// cluster presets; "het" (also opt-in) runs the heterogeneous scenario
// classes on the 2-tier grelon-het/big512-het presets. -cluster switches
// the single-cluster experiments (fig23, fig4, fig5, extended) to another
// preset (see platform.Names for the list).
//
// The experiment pipeline is: HCPA allocation (shared) → {HCPA baseline,
// RATS-delta, RATS-time-cost} mapping → contention-aware replay on the
// simulated chti / grillon / grelon clusters. -solver selects the replay's
// rate solver: the incremental flownet engine (default) or the
// from-scratch maxmin reference for cross-checking. -align overrides the
// receiver rank-order alignment of every algorithm (§II-A ablation):
// hungarian (exact), greedy, none, or auto (size-capped exact).
//
// -profile selects the speed profile: "fast" (the default — size-capped
// auto alignment plus the raised scratch-solve threshold, vetted by the
// -ablate sweep to stay within 0.5% of the exact makespans) or
// "reference" (the exact pipeline the golden figures are pinned
// against). An explicit -align wins over the profile's alignment mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ablate"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/redist"
)

func main() {
	stride := flag.Int("stride", 1, "keep every stride-th scenario (1 = full 557-configuration evaluation)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	mapWorkers := flag.Int("map-workers", 0, "mapper candidate-evaluation lanes per scenario (0 = serial; results identical)")
	outDir := flag.String("out", "results", "output directory for per-experiment files")
	only := flag.String("only", "", "comma-separated experiment subset (default: all)")
	solver := flag.String("solver", "flownet", "replay rate solver: flownet (incremental) or maxmin (reference)")
	align := flag.String("align", "", "override receiver rank alignment for every algorithm: hungarian, greedy, none or auto (default: per-algorithm)")
	profile := flag.String("profile", "fast", "speed profile: fast (capped-exact alignment, ablation-vetted) or reference (exact pipeline)")
	cluster := flag.String("cluster", "grillon",
		"cluster preset for the single-cluster experiments: "+strings.Join(platform.Names(), ", "))
	counters := flag.Bool("counters", false, "report engine counter rates per scenario class instead of the paper experiments")
	ablateMode := flag.Bool("ablate", false, "run the exactness-renegotiation ablation (internal/ablate) instead of the paper experiments")
	smoke := flag.Bool("smoke", false, "with -ablate: the CI-sized subset (two paper-scale classes, reference vs fast only)")
	report := flag.String("o", "", "with -ablate: report path (default <out>/ablation.json)")
	flag.Parse()

	if *ablateMode {
		if err := runAblation(*smoke, *outDir, *report); err != nil {
			fmt.Fprintln(os.Stderr, "expdriver:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*stride, *workers, *mapWorkers, *outDir, *only, *solver, *align, *profile, *cluster, *counters); err != nil {
		fmt.Fprintln(os.Stderr, "expdriver:", err)
		os.Exit(1)
	}
}

// runAblation executes the knob sweep and writes the machine-readable
// report plus the human summary.
func runAblation(smoke bool, outDir, reportPath string) error {
	if reportPath == "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		reportPath = filepath.Join(outDir, "ablation.json")
	}
	start := time.Now()
	rep, err := ablate.Run(ablate.Options{Smoke: smoke, Log: os.Stderr})
	if err != nil {
		return err
	}
	rep.WriteSummary(os.Stdout)
	f, err := os.Create(reportPath)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stdout, "-- ablation (%s) done in %v, report: %s --\n",
		rep.Mode, time.Since(start).Round(time.Millisecond), reportPath)
	return nil
}

func run(stride, workers, mapWorkers int, outDir, only, solver, align, profile, cluster string, counters bool) error {
	want := map[string]bool{}
	for _, s := range strings.Split(only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			want[s] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	scens := exp.Subsample(exp.Scenarios(), stride)
	clusters := platform.PaperClusters()
	runner := exp.NewRunner()
	runner.Workers = workers
	runner.MapWorkers = mapWorkers
	switch solver {
	case "", "flownet":
		runner.Solver = core.FlowSolverNet
	case "maxmin", "max-min", "reference":
		runner.Solver = core.FlowSolverMaxMin
	default:
		return fmt.Errorf("unknown -solver %q (want flownet or maxmin)", solver)
	}
	switch profile {
	case "", "fast":
		runner.Fast = true
	case "reference":
	default:
		return fmt.Errorf("unknown -profile %q (want fast or reference)", profile)
	}
	if align != "" {
		mode, err := redist.ParseAlignMode(align)
		if err != nil {
			return err
		}
		runner.Align = &mode
	}
	// The single-cluster experiments default to grillon as in the paper;
	// -cluster redirects them to any preset, the heterogeneous ones
	// included.
	grillon, err := platform.ByName(cluster)
	if err != nil {
		return err
	}

	if counters {
		return emitCounters(runner, stride, outDir)
	}

	emit := func(name string, render func(w io.Writer) error) error {
		start := time.Now()
		f, err := os.Create(filepath.Join(outDir, name+".txt"))
		if err != nil {
			return err
		}
		defer f.Close()
		w := io.MultiWriter(os.Stdout, f)
		if err := render(w); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(os.Stdout, "-- %s done in %v --\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if sel("tableI") {
		if err := emit("tableI", func(w io.Writer) error {
			fmt.Fprintln(w, "== Table I: communication matrix, 10 units, p=4 -> q=5 ==")
			m := redist.BlockMatrix(10, 4, 5)
			fmt.Fprintf(w, "%6s", "")
			for j := 1; j <= 5; j++ {
				fmt.Fprintf(w, " %6s", fmt.Sprintf("q%d", j))
			}
			fmt.Fprintln(w)
			for i := 0; i < 4; i++ {
				fmt.Fprintf(w, "%6s", fmt.Sprintf("p%d", i+1))
				for j := 0; j < 5; j++ {
					if v := m.At(i, j); v > 0 {
						fmt.Fprintf(w, " %6.1f", v)
					} else {
						fmt.Fprintf(w, " %6s", "")
					}
				}
				fmt.Fprintln(w)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if sel("tableII") {
		if err := emit("tableII", func(w io.Writer) error {
			exp.WriteTableII(w, clusters)
			return nil
		}); err != nil {
			return err
		}
	}
	if sel("tableIII") {
		if err := emit("tableIII", func(w io.Writer) error {
			exp.WriteTableIII(w, exp.Scenarios())
			if stride > 1 {
				fmt.Fprintf(w, "(this run subsamples with stride %d: %d scenarios)\n", stride, len(scens))
			}
			return nil
		}); err != nil {
			return err
		}
	}

	if sel("fig23") {
		if err := emit("fig2_fig3", func(w io.Writer) error {
			res, err := exp.RunFig2And3(runner, scens, grillon)
			if err != nil {
				return err
			}
			exp.WriteFig23(w, "Fig 2 (makespan) / Fig 3 (work), naive parameters", res)
			csv, err := os.Create(filepath.Join(outDir, "fig2_fig3.csv"))
			if err != nil {
				return err
			}
			defer csv.Close()
			return exp.WriteFig23CSV(csv, res)
		}); err != nil {
			return err
		}
	}

	if sel("fig4") {
		if err := emit("fig4", func(w io.Writer) error {
			ffts := exp.ScenariosOf(scens, exp.FFT)
			ds, err := exp.RunDeltaSweep(runner, ffts, grillon, exp.FFT)
			if err != nil {
				return err
			}
			exp.WriteDeltaSweep(w, ds)
			return nil
		}); err != nil {
			return err
		}
	}
	if sel("fig5") {
		if err := emit("fig5", func(w io.Writer) error {
			irr := exp.ScenariosOf(scens, exp.Irregular)
			rs, err := exp.RunRhoSweep(runner, irr, grillon, exp.Irregular)
			if err != nil {
				return err
			}
			exp.WriteRhoSweep(w, rs)
			return nil
		}); err != nil {
			return err
		}
	}

	needTuned := sel("tableIV") || sel("fig67") || sel("tableV6")
	var tuned *exp.TableIVResult
	if needTuned {
		if err := emit("tableIV", func(w io.Writer) error {
			var err error
			tuned, err = exp.RunTableIV(runner, scens, clusters)
			if err != nil {
				return err
			}
			exp.WriteTableIV(w, tuned)
			return nil
		}); err != nil {
			return err
		}
		// Preserve the full sweep surfaces behind every Table IV cell
		// (the Fig 4/5 methodology applied to each application type ×
		// cluster pair).
		sweepDir := filepath.Join(outDir, "sweeps")
		if err := os.MkdirAll(sweepDir, 0o755); err != nil {
			return err
		}
		for _, cl := range tuned.Clusters {
			for _, kind := range tuned.Kinds {
				name := fmt.Sprintf("sweep_%s_%s.txt", cl, kind)
				f, err := os.Create(filepath.Join(sweepDir, name))
				if err != nil {
					return err
				}
				exp.WriteDeltaSweep(f, tuned.DeltaSweeps[cl][kind])
				fmt.Fprintln(f)
				exp.WriteRhoSweep(f, tuned.RhoSweeps[cl][kind])
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
	}
	if sel("fig67") {
		if _, ok := tuned.Values[grillon.Name]; !ok {
			return fmt.Errorf("fig67 needs Table IV tuning for %s, which only covers the paper clusters (chti, grillon, grelon)", grillon.Name)
		}
		if err := emit("fig6_fig7", func(w io.Writer) error {
			res, err := exp.RunFig6And7(runner, scens, grillon, tuned.Values[grillon.Name])
			if err != nil {
				return err
			}
			exp.WriteFig23(w, "Fig 6 (makespan) / Fig 7 (work), tuned parameters", res)
			csv, err := os.Create(filepath.Join(outDir, "fig6_fig7.csv"))
			if err != nil {
				return err
			}
			defer csv.Close()
			return exp.WriteFig23CSV(csv, res)
		}); err != nil {
			return err
		}
	}
	if sel("tableV6") {
		if err := emit("tableV_tableVI", func(w io.Writer) error {
			tv, tvi, err := exp.RunTableVAndVI(runner, scens, clusters, tuned)
			if err != nil {
				return err
			}
			exp.WriteTableV(w, tv)
			fmt.Fprintln(w)
			exp.WriteTableVI(w, tvi)
			return nil
		}); err != nil {
			return err
		}
	}
	// Extension beyond the paper: the production-scale comparison on the
	// big512/big1024 presets with their matched scenario inventories
	// (exp.ScenariosAt). Opt-in only (-only big): the flow-level replay of
	// 400–800-task DAGs on 512–1024 nodes takes minutes per scenario.
	if want["big"] {
		for _, sc := range []exp.Scale{exp.ScaleBig512, exp.ScaleBig1024} {
			sc := sc
			if err := emit("big_"+sc.String(), func(w io.Writer) error {
				cl := sc.Cluster()
				bigScens := exp.Subsample(exp.ScenariosAt(sc), stride)
				algos := exp.NaiveAlgos()
				results, err := runner.Run(bigScens, cl, algos)
				if err != nil {
					return err
				}
				ms := exp.Makespans(results)
				fmt.Fprintf(w, "== Production scale (not in the paper): %d scenarios on %s, makespan relative to HCPA ==\n",
					len(bigScens), cl.Name)
				return writeExtended(w, algos, ms)
			}); err != nil {
				return err
			}
		}
	}
	// Extension beyond the paper: the heterogeneous scenario classes on
	// the 2-tier presets (half-speed cabinets, throttled uplinks). Opt-in
	// (-only het) like the big scales, though far cheaper: the grelon-het
	// inventory is paper-sized.
	if want["het"] {
		for _, sc := range []exp.Scale{exp.ScaleGrelonHet, exp.ScaleBig512Het} {
			sc := sc
			if err := emit("het_"+sc.String(), func(w io.Writer) error {
				cl := sc.Cluster()
				hetScens := exp.Subsample(exp.ScenariosAt(sc), stride)
				algos := exp.NaiveAlgos()
				results, err := runner.Run(hetScens, cl, algos)
				if err != nil {
					return err
				}
				ms := exp.Makespans(results)
				fmt.Fprintf(w, "== Heterogeneous platforms (not in the paper): %d scenarios on %s, makespan relative to HCPA ==\n",
					len(hetScens), cl.Name)
				return writeExtended(w, algos, ms)
			}); err != nil {
				return err
			}
		}
	}
	// Extension beyond the paper: five-way comparison adding the CPA and
	// MCPA first-step baselines of §II-C.
	if sel("extended") {
		if err := emit("extended", func(w io.Writer) error {
			algos := exp.ExtendedAlgos()
			results, err := runner.Run(scens, grillon, algos)
			if err != nil {
				return err
			}
			ms := exp.Makespans(results)
			fmt.Fprintf(w, "== Extended comparison on %s (not in the paper): makespan relative to HCPA ==\n", grillon.Name)
			if err := writeExtended(w, algos, ms); err != nil {
				return err
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// counterClassCap bounds the production-scale classes of the -counters
// report: the rates stabilize after a handful of scenarios, and each
// big512 replay costs minutes.
const counterClassCap = 6

// emitCounters renders the -counters diagnostics report: per scenario
// class, the naive-parameter algorithms' summed engine counters as rates.
func emitCounters(runner *exp.Runner, stride int, outDir string) error {
	grelon, err := platform.ByName("grelon")
	if err != nil {
		return err
	}
	capped := func(scens []exp.Scenario) []exp.Scenario {
		if len(scens) > counterClassCap {
			scens = scens[:counterClassCap]
		}
		return scens
	}
	classes := []struct {
		name  string
		scens []exp.Scenario
		cl    *platform.Cluster
	}{
		{"grelon", exp.Subsample(exp.Scenarios(), stride), grelon},
		{"big512", capped(exp.Subsample(exp.ScenariosAt(exp.ScaleBig512), stride)), exp.ScaleBig512.Cluster()},
		{"het", exp.Subsample(exp.ScenariosAt(exp.ScaleGrelonHet), stride), exp.ScaleGrelonHet.Cluster()},
	}
	f, err := os.Create(filepath.Join(outDir, "counters.txt"))
	if err != nil {
		return err
	}
	w := io.MultiWriter(os.Stdout, f)
	algos := exp.NaiveAlgos()
	for _, c := range classes {
		start := time.Now()
		results, err := runner.Run(c.scens, c.cl, algos)
		if err != nil {
			f.Close()
			return fmt.Errorf("counters %s: %w", c.name, err)
		}
		fmt.Fprintf(w, "== Engine counter rates: %s (%d scenarios on %s) ==\n",
			c.name, len(c.scens), c.cl.Name)
		for a, spec := range algos {
			var sum obs.Counters
			for s := range results[a] {
				sum.Add(&results[a][s].Counters)
			}
			fmt.Fprintf(w, "%-22s memo-hit %5.1f%% (%d/%d) | dedup-skip %5.1f%% (%d skipped) | "+
				"scratch-solve %5.1f%% (%d/%d) | align exact/greedy/capped %d/%d/%d\n",
				spec.Name,
				sum.MemoHitPct(), sum.MemoHits, sum.MemoProbes,
				sum.DedupSkipPct(), sum.DedupSkips,
				sum.ScratchSolvePct(), sum.SolvesScratch,
				sum.SolvesFull+sum.SolvesIncremental+sum.SolvesScratch,
				sum.AlignExact, sum.AlignGreedy, sum.AlignCapped)
		}
		fmt.Fprintf(os.Stdout, "-- counters %s done in %v --\n\n",
			c.name, time.Since(start).Round(time.Millisecond))
	}
	return f.Close()
}

// writeExtended prints the summary lines of the extended comparison.
func writeExtended(w io.Writer, algos []exp.AlgoSpec, ms [][]float64) error {
	baseIdx := -1
	for i, a := range algos {
		if a.Name == "HCPA" {
			baseIdx = i
		}
	}
	if baseIdx < 0 {
		return fmt.Errorf("extended comparison needs an HCPA baseline")
	}
	deg := metrics.DegradationFromBest(ms)
	for i, a := range algos {
		s := metrics.Summarize(metrics.Relative(ms[i], ms[baseIdx]))
		fmt.Fprintf(w, "%-22s mean ratio %.3f | shorter than HCPA in %5.1f%% | degradation from best %6.2f%% (not best in %d)\n",
			a.Name, s.Mean, s.ShorterPercent(), deg[i].AvgOverAll, deg[i].NotBest)
	}
	return nil
}
