// Command loadgen drives a running ratsd with a concurrent stream of
// scheduling requests and reports client-side latency percentiles and
// throughput. It is the measurement companion of cmd/ratsd: the server's
// /metrics endpoint reports what the service observed, loadgen reports
// what a client experienced — queueing, batching and HTTP included.
//
// Usage:
//
//	loadgen [-url http://localhost:8080] [-n 200] [-c 8] [-rate 0]
//	        [-cluster grelon] [-strategy time-cost] [-dag fft] [-size 32]
//	        [-timeout-ms 0] [-json] [-out metrics.jsonl]
//
// -rate 0 runs a closed loop: c workers fire requests back to back.
// -rate > 0 runs an open loop at that many requests/second overall,
// spread across the workers, which is the mode that exposes queueing
// behaviour. The exit status is nonzero if any request fails.
//
// -out FILE writes one JSON line per answered request: the server-side
// serve.RequestMetrics record from the response envelope (queue wait,
// batch size, pipeline phase times, engine counters) joined with the
// client-observed latency — the raw rows behind the percentile summary,
// ready for jq or a dataframe.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/rats"
)

type result struct {
	status  int
	latency time.Duration
	err     error
	serve   json.RawMessage // "serve" field of the response envelope, when parsed
}

// row is one -out JSONL record: the server-side per-request metrics joined
// with what this client observed for the same request.
type row struct {
	ClientMs     float64         `json:"client_ms"`
	ClientStatus int             `json:"client_status"`
	Serve        json.RawMessage `json:"serve,omitempty"`
	Error        string          `json:"error,omitempty"`
}

// Summary is the -json report.
type Summary struct {
	Requests  int     `json:"requests"`
	Succeeded int     `json:"succeeded"`
	Shed      int     `json:"shed"` // 429 responses
	Failed    int     `json:"failed"`
	Elapsed   float64 `json:"elapsed_seconds"`

	SchedulesPerSecond float64 `json:"schedules_per_second"`
	P50Ms              float64 `json:"p50_ms"`
	P90Ms              float64 `json:"p90_ms"`
	P99Ms              float64 `json:"p99_ms"`
	MaxMs              float64 `json:"max_ms"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "ratsd base URL")
	n := flag.Int("n", 200, "total number of requests")
	c := flag.Int("c", 8, "concurrent workers")
	rate := flag.Float64("rate", 0, "open-loop request rate in req/s (0 = closed loop)")
	cluster := flag.String("cluster", "grelon", "target cluster preset")
	strategy := flag.String("strategy", "time-cost", "mapping strategy")
	dagKind := flag.String("dag", "fft", "workload: fft, strassen or random")
	size := flag.Int("size", 32, "workload size (fft points or random task count)")
	timeoutMs := flag.Int("timeout-ms", 0, "per-request server-side deadline (0 = server default)")
	jsonOut := flag.Bool("json", false, "print the summary as JSON")
	outPath := flag.String("out", "", "write per-request JSONL records (server metrics + client latency) to this file")
	flag.Parse()
	keepBodies := *outPath != ""

	body, err := requestBody(*dagKind, *size, *cluster, *strategy, *timeoutMs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}

	results := make([]result, *n)
	var next atomic.Int64
	var ticker <-chan time.Time
	if *rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer t.Stop()
		ticker = t.C
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *n {
					return
				}
				if ticker != nil {
					<-ticker
				}
				results[i] = fire(client, *url, body, keepBodies)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := summarize(results, elapsed)
	if *outPath != "" {
		if err := writeRows(*outPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: writing -out: %v\n", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		json.NewEncoder(os.Stdout).Encode(sum)
	} else {
		fmt.Printf("loadgen: %d requests in %.2fs (%d workers, %s/%s on %s)\n",
			sum.Requests, sum.Elapsed, *c, *dagKind, *strategy, *cluster)
		fmt.Printf("  succeeded %d, shed %d, failed %d\n", sum.Succeeded, sum.Shed, sum.Failed)
		fmt.Printf("  throughput %.1f schedules/s\n", sum.SchedulesPerSecond)
		fmt.Printf("  latency p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
			sum.P50Ms, sum.P90Ms, sum.P99Ms, sum.MaxMs)
	}
	if sum.Failed > 0 {
		os.Exit(1)
	}
}

// requestBody builds the constant POST body all workers reuse.
func requestBody(kind string, size int, cluster, strategy string, timeoutMs int) ([]byte, error) {
	var d *rats.DAG
	switch kind {
	case "fft":
		d = rats.FFT(size, 1)
	case "strassen":
		d = rats.Strassen(1)
	case "random":
		d = rats.Random(rats.RandomSpec{
			N: size, Width: 0.5, Density: 0.4, Regularity: 0.7, Layered: true, Seed: 1,
		})
	default:
		return nil, fmt.Errorf("unknown -dag %q (want fft, strassen or random)", kind)
	}
	dagBlob, err := json.Marshal(d)
	if err != nil {
		return nil, err
	}
	req := map[string]any{
		"cluster":  cluster,
		"strategy": strategy,
		"dag":      json.RawMessage(dagBlob),
	}
	if timeoutMs > 0 {
		req["timeout_ms"] = timeoutMs
	}
	return json.Marshal(req)
}

func fire(client *http.Client, url string, body []byte, keepBody bool) result {
	t0 := time.Now()
	resp, err := client.Post(url+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		return result{err: err, latency: time.Since(t0)}
	}
	var serve json.RawMessage
	if keepBody {
		// Pull the server-side metrics record out of the envelope; a body
		// that fails to parse just leaves serve empty in the JSONL row.
		blob, _ := io.ReadAll(resp.Body)
		var env struct {
			Serve json.RawMessage `json:"serve"`
		}
		if json.Unmarshal(blob, &env) == nil {
			serve = env.Serve
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	resp.Body.Close()
	return result{status: resp.StatusCode, latency: time.Since(t0), serve: serve}
}

// writeRows emits one JSON line per request to path, in request order.
func writeRows(path string, results []result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, r := range results {
		rw := row{
			ClientMs:     float64(r.latency) / float64(time.Millisecond),
			ClientStatus: r.status,
			Serve:        r.serve,
		}
		if r.err != nil {
			rw.Error = r.err.Error()
		}
		if err := enc.Encode(rw); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func summarize(results []result, elapsed time.Duration) Summary {
	sum := Summary{Requests: len(results), Elapsed: elapsed.Seconds()}
	var lat []float64
	for _, r := range results {
		switch {
		case r.err != nil:
			sum.Failed++
		case r.status == http.StatusOK:
			sum.Succeeded++
			lat = append(lat, float64(r.latency)/float64(time.Millisecond))
		case r.status == http.StatusTooManyRequests:
			sum.Shed++
		default:
			sum.Failed++
		}
	}
	if sum.Elapsed > 0 {
		sum.SchedulesPerSecond = float64(sum.Succeeded) / sum.Elapsed
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		sum.P50Ms = quantile(lat, 0.50)
		sum.P90Ms = quantile(lat, 0.90)
		sum.P99Ms = quantile(lat, 0.99)
		sum.MaxMs = lat[len(lat)-1]
	}
	return sum
}

// quantile reads the q-quantile from an ascending sample.
func quantile(sorted []float64, q float64) float64 {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
